// Beyond the paper: the VGG family and ternary-weight models.
//
// The paper evaluates VGG-16 only and names "binarized, ternary and
// recurrent networks" as future work.  This bench runs the stride-1 3x3 VGG
// family (11/13/16/19) and the implemented ternary extension through the
// validated performance model on the 256-opt and 512-opt variants —
// demonstrating the claim that new workloads need only software changes.
#include <cstdio>

#include "driver/study.hpp"

using namespace tsca;

namespace {

void row(const core::ArchConfig& cfg, const driver::StudyOptions& opts) {
  const driver::StudyNetwork net = driver::build_study_network(opts);
  const driver::VariantResult r = driver::evaluate_variant(cfg, net);
  double weight_mib = 0.0;
  for (const driver::StudyLayer& layer : net.layers)
    weight_mib += static_cast<double>(layer.packed.total_nonzeros()) *
                  (opts.ternary ? 1.0 : 2.0) / (1024.0 * 1024.0);
  std::printf("%-16s %5.1f G %8.1f %8.1f %8.1f %7.0f%% %9.1f\n",
              net.model_name.c_str(),
              static_cast<double>(r.total_macs) * 1e-9, r.network_gops,
              r.best_gops,
              static_cast<double>(r.total_cycles + r.pad_pool_cycles) /
                  (cfg.clock_mhz * 1e3),
              100.0 * r.mean_efficiency, weight_mib);
}

}  // namespace

int main() {
  std::printf("Network sweep on 256-opt (perf model, 224x224 inputs)\n\n");
  std::printf("%-16s %7s %8s %8s %8s %8s %9s\n", "model", "MACs", "GOPS",
              "peak", "ms/img", "eff", "wMiB");
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  for (const nn::VggVariant variant :
       {nn::VggVariant::kVgg11, nn::VggVariant::kVgg13,
        nn::VggVariant::kVgg16, nn::VggVariant::kVgg19}) {
    row(cfg, {.pruned = false, .variant = variant});
  }
  std::printf("\n");
  for (const nn::VggVariant variant :
       {nn::VggVariant::kVgg11, nn::VggVariant::kVgg13,
        nn::VggVariant::kVgg16, nn::VggVariant::kVgg19}) {
    row(cfg, {.pruned = true, .variant = variant});
  }
  std::printf("\nTernary-weight models (paper future work, 1-byte packed "
              "stream):\n");
  for (const nn::VggVariant variant :
       {nn::VggVariant::kVgg11, nn::VggVariant::kVgg16}) {
    row(cfg, {.ternary = true, .variant = variant});
  }
  std::printf("\n512-opt, VGG-16 family summary:\n");
  const core::ArchConfig big = core::ArchConfig::k512_opt();
  row(big, {.pruned = false});
  row(big, {.pruned = true});
  row(big, {.ternary = true});
  return 0;
}
