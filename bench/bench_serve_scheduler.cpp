// Serving scheduler benchmark: dynamic batching + EDF + expired-request
// shedding vs a batch-size-1 FIFO baseline, under an open-loop Poisson
// offered-load sweep.
//
// The mechanism under test is admission/deadline policy, not raw execution
// speed: under overload the FIFO baseline burns its capacity executing
// head-of-line requests that expired long ago (every execution is late, so
// the latency percentiles over executed requests blow up to the full queue
// wait and goodput collapses), while the batched scheduler sheds expired
// requests before they reach a worker and spends the same capacity on
// requests that can still make their deadline.
//
// Methodology: per offered-load point, each policy gets a fresh Server over
// the same compiled NetworkProgram and an identical deterministic workload
// (same seed ⇒ same Poisson arrival schedule and same inputs).  Per-image
// service time is calibrated on a warm runtime first; rates and the deadline
// are expressed in multiples of it, so the sweep lands in the same regimes
// on any host.  Latency percentiles come from the responses themselves
// (LoadReport), measured over executed requests — late executions count.
//
// Second experiment: SLO classes over the socket front-end.  Two TCP
// clients share one server — a high-priority class offered a fixed 0.4x
// capacity, and a low-priority class that scales the TOTAL offered load to
// 1x and then 3x.  Strict priority + EDF + fair-share admission must
// insulate the high class: under 3x overload its p99 and goodput stay
// within 1.5x of their 1x values, while the low class absorbs the shedding
// and evictions.  This runs the full wire path (encode, TCP, decode,
// callback completion), not the in-process futures.
//
// Third experiment: two-model mixed traffic through a ProgramRegistry.
// The scaled VGG-16 and a MobileNet-style zoo net sit behind one server;
// two TCP clients offer open-loop Poisson traffic, each tagged with its
// own wire model_id.  The server forms single-model batches and restages
// worker contexts when consecutive batches switch programs; the sweep
// records per-model goodput/latency, the per-model serving counters, and
// the restage count.  The gate is behavioral, not a speed bar: both
// models make progress with zero errors and zero unknown-model
// rejections, and at least one context restage occurred (i.e. the models
// genuinely shared workers rather than one of them starving).
//
// Emits BENCH_serve.json into the working directory.  Exit code 1 when the
// overload gate fails: at the highest offered load the batched policy must
// beat the FIFO baseline on BOTH p99 latency and goodput — or when the
// mixed-priority or multi-model gate fails.  --quick shrinks the sweep for
// the tier-1 smoke run.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/program.hpp"
#include "driver/program_registry.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "nn/zoo.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "serve/client.hpp"
#include "serve/load_generator.hpp"
#include "serve/net_server.hpp"
#include "serve/server.hpp"
#include "sim/dma.hpp"
#include "sim/dram.hpp"
#include "util/rng.hpp"

using namespace tsca;

namespace {

constexpr int kWorkers = 2;
constexpr std::size_t kQueueCapacity = 64;
constexpr int kMaxBatch = 8;
constexpr double kDeadlineInT = 30.0;  // deadline = 30 x per-image service time
constexpr double kHighShareX = 0.4;    // high class offered load, x capacity

struct Workload {
  nn::Network net;
  quant::QuantizedModel model;
};

Workload make_workload() {
  Rng rng(2025);
  nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 16, .num_classes = 10});
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  quant::prune_weights(net, weights, quant::vgg16_han_profile());
  nn::FeatureMapF calib(net.input_shape());
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
  quant::QuantizedModel model = quant::quantize_network(net, weights, {calib});
  return Workload{std::move(net), std::move(model)};
}

// Warm per-image service time in the fast path, microseconds: median-ish of
// a few runs on a staged runtime (first run pays staging and is discarded).
std::int64_t calibrate_exec_us(const driver::NetworkProgram& program) {
  core::Accelerator acc(program.config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kFast});
  Rng rng(7);
  nn::FeatureMapI8 input(program.net().input_shape());
  for (std::size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  runtime.run_network(program, input);  // warm-up: stages the weight image
  constexpr int kReps = 5;
  std::int64_t best = 0;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    runtime.run_network(program, input);
    const std::int64_t us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (best == 0 || us < best) best = us;
  }
  return best > 0 ? best : 1;
}

struct Row {
  const char* policy;
  double offered_x = 0.0;  // offered load in multiples of serving capacity
  double rate_rps = 0.0;
  serve::LoadReport report;
};

serve::ServerOptions make_options(bool batched) {
  serve::ServerOptions opts;
  opts.workers = kWorkers;
  opts.queue_capacity = kQueueCapacity;
  opts.mode = driver::ExecMode::kFast;
  if (batched) {
    opts.batch.max_batch = kMaxBatch;
    opts.batch.edf = true;
    opts.batch.cancel_expired = true;
    // min_slack_us is filled in per run from the calibrated service time.
  } else {
    // The naive baseline: one request at a time, submission order, and no
    // notion of deadlines until the response is already computed.
    opts.batch.max_batch = 1;
    opts.batch.max_queue_delay_us = 0;
    opts.batch.edf = false;
    opts.batch.cancel_expired = false;
  }
  return opts;
}

Row run_point(const driver::NetworkProgram& program, bool batched,
              double offered_x, double capacity_rps, double window_s,
              std::int64_t deadline_us, std::int64_t batch_delay_us,
              std::int64_t min_slack_us) {
  serve::ServerOptions opts = make_options(batched);
  if (batched) {
    opts.batch.max_queue_delay_us = batch_delay_us;
    opts.batch.min_slack_us = min_slack_us;
  }
  serve::Server server(program, opts);

  serve::LoadOptions load;
  load.rate_rps = offered_x * capacity_rps;
  load.requests = static_cast<int>(load.rate_rps * window_s);
  if (load.requests < 16) load.requests = 16;
  load.deadline_us = deadline_us;
  load.seed = 11;  // identical arrivals + inputs for both policies

  Row row;
  row.policy = batched ? "batched" : "fifo1";
  row.offered_x = offered_x;
  row.rate_rps = load.rate_rps;
  row.report = serve::run_load(server, load);
  server.stop();
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "  %-8s x%.1f  rate=%7.0f rps  goodput=%7.0f rps  ok=%4d  late=%3d  "
      "shed=%4d  rej=%4d  p50=%6lld us  p99=%6lld us  maxbatch=%d\n",
      r.policy, r.offered_x, r.rate_rps, r.report.goodput_rps, r.report.ok,
      r.report.executed_late,
      r.report.deadline_missed - r.report.executed_late, r.report.rejected,
      static_cast<long long>(r.report.latency_us.p50),
      static_cast<long long>(r.report.latency_us.p99),
      r.report.max_batch_seen);
}

void write_row_json(FILE* out, const Row& r, bool last) {
  std::fprintf(
      out,
      "    {\"policy\": \"%s\", \"offered_x\": %.2f, \"rate_rps\": %.1f, "
      "\"submitted\": %d, \"ok\": %d, \"rejected\": %d, "
      "\"deadline_missed\": %d, \"executed_late\": %d, "
      "\"goodput_rps\": %.2f, \"offered_rps\": %.2f, "
      "\"latency_us\": {\"p50\": %lld, \"p90\": %lld, \"p99\": %lld, "
      "\"max\": %lld}, "
      "\"queued_us\": {\"p50\": %lld, \"p99\": %lld}, "
      "\"max_batch_seen\": %d}%s\n",
      r.policy, r.offered_x, r.rate_rps, r.report.submitted, r.report.ok,
      r.report.rejected, r.report.deadline_missed, r.report.executed_late,
      r.report.goodput_rps, r.report.offered_rps,
      static_cast<long long>(r.report.latency_us.p50),
      static_cast<long long>(r.report.latency_us.p90),
      static_cast<long long>(r.report.latency_us.p99),
      static_cast<long long>(r.report.latency_us.max),
      static_cast<long long>(r.report.queued_us.p50),
      static_cast<long long>(r.report.queued_us.p99),
      r.report.max_batch_seen, last ? "" : ",");
}

// --- Mixed-priority SLO classes over the socket front-end ---------------

struct ClassRow {
  const char* cls;
  double offered_x = 0.0;
  serve::LoadReport report;
  int shed() const { return report.deadline_missed - report.executed_late; }
};

struct MixedPoint {
  double total_x = 0.0;
  ClassRow high;
  ClassRow low;
};

// Effective capacity of the full socket path — encode, TCP, decode,
// admission, batching, execution, response — measured as closed-loop
// goodput against a warm server.  On small hosts this sits far below
// workers/exec_us (the load generator, the per-connection threads, and the
// workers all time-share the cores), and it is the honest scale for the
// mixed experiment's offered-load multiples: "3x" should mean three times
// what this path can actually sustain, not three times an idealized
// runtime-only number that already starves the CPU at "1x".
double calibrate_socket_capacity_rps(const driver::NetworkProgram& program,
                                     std::int64_t batch_delay_us,
                                     std::int64_t min_slack_us) {
  serve::ServerOptions opts = make_options(true);
  opts.batch.max_queue_delay_us = batch_delay_us;
  opts.batch.min_slack_us = min_slack_us;
  serve::Server server(program, opts);
  serve::NetServer net(server);
  serve::NetClient client("127.0.0.1", net.port());
  serve::LoadOptions load;
  load.requests = 192;
  load.concurrency = 2 * kWorkers;
  load.seed = 5;
  const serve::LoadReport r =
      serve::run_load(client, program.net().input_shape(), load);
  client.close();
  net.stop();
  server.stop();
  return r.goodput_rps > 1.0 ? r.goodput_rps : 1.0;
}

// One total-offered-load point: the high class holds kHighShareX x capacity,
// the low class supplies the rest, both as open-loop Poisson streams over
// their own TCP connections to one NetServer.  All timing knobs (deadline,
// batching window, feasibility horizon) come in pre-scaled to the socket
// path's per-image service time.
MixedPoint run_mixed_point(const driver::NetworkProgram& program,
                           double total_x, double capacity_rps,
                           double window_s, std::int64_t deadline_us,
                           std::int64_t batch_delay_us,
                           std::int64_t min_slack_us) {
  serve::ServerOptions opts = make_options(true);
  opts.batch.max_queue_delay_us = batch_delay_us;
  opts.batch.min_slack_us = min_slack_us;
  serve::Server server(program, opts);
  serve::NetServer net(server);
  serve::NetClient high_client("127.0.0.1", net.port());
  serve::NetClient low_client("127.0.0.1", net.port());
  const nn::FmShape shape = program.net().input_shape();

  const auto make_load = [&](double x, int priority, std::uint64_t seed) {
    serve::LoadOptions load;
    load.rate_rps = x * capacity_rps;
    load.requests = std::max(16, static_cast<int>(load.rate_rps * window_s));
    load.deadline_us = deadline_us;
    load.priority = priority;
    load.seed = seed;
    return load;
  };
  const double low_x = std::max(0.0, total_x - kHighShareX);
  const serve::LoadOptions high_load = make_load(kHighShareX, 0, 21);
  const serve::LoadOptions low_load = make_load(low_x, 1, 22);

  MixedPoint point;
  point.total_x = total_x;
  point.high.cls = "high";
  point.high.offered_x = kHighShareX;
  point.low.cls = "low";
  point.low.offered_x = low_x;
  std::thread high_thread([&] {
    point.high.report = serve::run_load(high_client, shape, high_load);
  });
  point.low.report = serve::run_load(low_client, shape, low_load);
  high_thread.join();
  high_client.close();
  low_client.close();
  net.stop();
  server.stop();
  return point;
}

void print_class_row(double total_x, const ClassRow& r) {
  std::printf(
      "  total x%.1f %-4s x%.1f  goodput=%7.0f rps  ok=%4d  late=%3d  "
      "shed=%4d  quota=%3d  p50=%6lld us  p99=%6lld us\n",
      total_x, r.cls, r.offered_x, r.report.goodput_rps, r.report.ok,
      r.report.executed_late, r.shed(), r.report.rejected_quota,
      static_cast<long long>(r.report.latency_us.p50),
      static_cast<long long>(r.report.latency_us.p99));
}

void write_class_json(FILE* out, const ClassRow& r, bool last) {
  std::fprintf(
      out,
      "      {\"class\": \"%s\", \"offered_x\": %.2f, \"submitted\": %d, "
      "\"ok\": %d, \"rejected\": %d, \"rejected_quota\": %d, "
      "\"deadline_missed\": %d, \"executed_late\": %d, \"shed\": %d, "
      "\"errors\": %d, \"goodput_rps\": %.2f, "
      "\"latency_us\": {\"p50\": %lld, \"p99\": %lld}}%s\n",
      r.cls, r.offered_x, r.report.submitted, r.report.ok, r.report.rejected,
      r.report.rejected_quota, r.report.deadline_missed,
      r.report.executed_late, r.shed(), r.report.errors,
      r.report.goodput_rps,
      static_cast<long long>(r.report.latency_us.p50),
      static_cast<long long>(r.report.latency_us.p99), last ? "" : ",");
}

// --- Two-model mixed traffic through the ProgramRegistry ----------------

struct ModelRow {
  const char* id;
  double offered_x = 0.0;
  serve::LoadReport report;
  std::uint64_t completed_metric = 0;
  std::uint64_t missed_metric = 0;
};

struct MultiPoint {
  double total_x = 0.0;
  ModelRow vgg;
  ModelRow mobile;
  std::uint64_t restage = 0;
  std::uint64_t unknown_rejected = 0;
};

// One total-offered-load point, split 50/50 between the two models, each
// stream on its own TCP connection tagging requests with its model_id.
MultiPoint run_multi_model_point(driver::ProgramRegistry& registry,
                                 const nn::FmShape& vgg_shape,
                                 const nn::FmShape& mobile_shape,
                                 double total_x, double capacity_rps,
                                 double window_s, std::int64_t deadline_us,
                                 std::int64_t batch_delay_us,
                                 std::int64_t min_slack_us) {
  serve::ServerOptions opts = make_options(true);
  opts.batch.max_queue_delay_us = batch_delay_us;
  opts.batch.min_slack_us = min_slack_us;
  serve::Server server(registry, "vgg", opts);
  serve::NetServer net(server);
  serve::NetClient vgg_client("127.0.0.1", net.port());
  serve::NetClient mobile_client("127.0.0.1", net.port());

  const auto make_load = [&](double x, std::uint64_t seed) {
    serve::LoadOptions load;
    load.rate_rps = x * capacity_rps;
    load.requests = std::max(16, static_cast<int>(load.rate_rps * window_s));
    load.deadline_us = deadline_us;
    load.seed = seed;
    return load;
  };
  const auto submit_as = [](serve::NetClient& client, const char* id) {
    return [&client, id](nn::FeatureMapI8&& input) {
      serve::SubmitOptions sopts;
      sopts.model_id = id;
      return client.submit(std::move(input), sopts);
    };
  };

  const double half = total_x / 2.0;
  MultiPoint point;
  point.total_x = total_x;
  point.vgg.id = "vgg";
  point.vgg.offered_x = half;
  point.mobile.id = "mobile";
  point.mobile.offered_x = half;
  std::thread vgg_thread([&] {
    point.vgg.report = serve::run_load_with(submit_as(vgg_client, "vgg"),
                                            vgg_shape, make_load(half, 31));
  });
  point.mobile.report = serve::run_load_with(
      submit_as(mobile_client, "mobile"), mobile_shape, make_load(half, 32));
  vgg_thread.join();
  vgg_client.close();
  mobile_client.close();
  net.stop();
  server.stop();
  point.vgg.completed_metric =
      server.metrics().counter("serve.model.vgg.completed").value();
  point.vgg.missed_metric =
      server.metrics().counter("serve.model.vgg.deadline_missed").value();
  point.mobile.completed_metric =
      server.metrics().counter("serve.model.mobile.completed").value();
  point.mobile.missed_metric =
      server.metrics().counter("serve.model.mobile.deadline_missed").value();
  point.restage = server.metrics().counter("serve.model_restage").value();
  point.unknown_rejected =
      server.metrics().counter("serve.rejected_unknown_model").value();
  return point;
}

void print_model_row(double total_x, const ModelRow& r) {
  std::printf(
      "  total x%.1f %-6s x%.1f  goodput=%7.0f rps  ok=%4d  late=%3d  "
      "shed=%4d  rej=%4d  p50=%6lld us  p99=%6lld us  completed=%llu\n",
      total_x, r.id, r.offered_x, r.report.goodput_rps, r.report.ok,
      r.report.executed_late,
      r.report.deadline_missed - r.report.executed_late, r.report.rejected,
      static_cast<long long>(r.report.latency_us.p50),
      static_cast<long long>(r.report.latency_us.p99),
      static_cast<unsigned long long>(r.completed_metric));
}

void write_model_json(FILE* out, const ModelRow& r, bool last) {
  std::fprintf(
      out,
      "      {\"model\": \"%s\", \"offered_x\": %.2f, \"submitted\": %d, "
      "\"ok\": %d, \"rejected\": %d, \"deadline_missed\": %d, "
      "\"executed_late\": %d, \"errors\": %d, \"goodput_rps\": %.2f, "
      "\"latency_us\": {\"p50\": %lld, \"p99\": %lld}, "
      "\"completed_metric\": %llu, \"deadline_missed_metric\": %llu}%s\n",
      r.id, r.offered_x, r.report.submitted, r.report.ok, r.report.rejected,
      r.report.deadline_missed, r.report.executed_late, r.report.errors,
      r.report.goodput_rps,
      static_cast<long long>(r.report.latency_us.p50),
      static_cast<long long>(r.report.latency_us.p99),
      static_cast<unsigned long long>(r.completed_metric),
      static_cast<unsigned long long>(r.missed_metric), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const Workload w = make_workload();
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(w.net, w.model, core::ArchConfig::k256_opt());

  const std::int64_t exec_us = calibrate_exec_us(program);
  // Serving capacity if every cycle went to useful work: workers images per
  // service time.  The sweep is expressed relative to it.
  const double capacity_rps =
      static_cast<double>(kWorkers) * 1e6 / static_cast<double>(exec_us);
  const std::int64_t deadline_us =
      static_cast<std::int64_t>(kDeadlineInT * static_cast<double>(exec_us));
  const std::int64_t batch_delay_us = 2 * exec_us;
  // Feasibility horizon: a request needs about one full batch's service time
  // of slack to come back in time; anything closer to its deadline would
  // execute only to miss it (margin for scheduling + contention jitter).
  const std::int64_t min_slack_us = (kMaxBatch + 4) * exec_us;
  const double window_s = quick ? 0.10 : 0.25;
  const std::vector<double> offered = quick
                                          ? std::vector<double>{3.0}
                                          : std::vector<double>{0.5, 1.5, 3.0};

  std::printf("serve scheduler bench: scaled VGG-16, fast path, %d workers\n",
              kWorkers);
  std::printf("  calibrated exec: %lld us/image -> capacity ~%.0f rps, "
              "deadline %lld us, window %.2fs%s\n",
              static_cast<long long>(exec_us), capacity_rps,
              static_cast<long long>(deadline_us), window_s,
              quick ? " (quick)" : "");

  std::vector<Row> rows;
  for (const double x : offered) {
    for (const bool batched : {false, true}) {
      rows.push_back(run_point(program, batched, x, capacity_rps, window_s,
                               deadline_us, batch_delay_us, min_slack_us));
      print_row(rows.back());
    }
  }

  // Overload gate: at the highest offered load, batching + EDF + shedding
  // must beat the FIFO baseline on both tail latency and goodput.
  const Row& fifo = rows[rows.size() - 2];
  const Row& batched = rows[rows.size() - 1];
  const bool gate_p99 =
      batched.report.latency_us.p99 < fifo.report.latency_us.p99;
  const bool gate_goodput =
      batched.report.goodput_rps > fifo.report.goodput_rps;

  // Mixed-priority sweep over the socket front-end: the same high-class
  // offered load at 1x and 3x total, with every knob rescaled to the
  // socket path's measured capacity and per-image service time.
  const double socket_capacity_rps =
      calibrate_socket_capacity_rps(program, batch_delay_us, min_slack_us);
  const std::int64_t sock_t_us = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(kWorkers) * 1e6 /
                                   socket_capacity_rps));
  const std::int64_t mixed_deadline_us =
      static_cast<std::int64_t>(kDeadlineInT * static_cast<double>(sock_t_us));
  const std::int64_t mixed_delay_us = 2 * sock_t_us;
  const std::int64_t mixed_slack_us = (kMaxBatch + 4) * sock_t_us;
  std::printf("mixed-priority over socket: capacity ~%.0f rps "
              "(T=%lld us/image on the wire path), high class fixed at "
              "x%.1f, deadline %lld us\n",
              socket_capacity_rps, static_cast<long long>(sock_t_us),
              kHighShareX, static_cast<long long>(mixed_deadline_us));
  std::vector<MixedPoint> mixed;
  for (const double total_x : {1.0, 3.0}) {
    mixed.push_back(run_mixed_point(program, total_x, socket_capacity_rps,
                                    window_s, mixed_deadline_us,
                                    mixed_delay_us, mixed_slack_us));
    print_class_row(total_x, mixed.back().high);
    print_class_row(total_x, mixed.back().low);
  }

  // SLO insulation gate: tripling the total load must not degrade the high
  // class beyond 1.5x of its uncontended numbers.  The p99 comparison gets
  // an absolute floor of one batching window plus two service times —
  // below that, the difference is scheduling jitter, not queueing — and
  // the 1.5x bound is rounded up to the metrics histogram's power-of-two
  // bucket resolution: reported p99s are bucket bounds (clipped to the
  // observed max), so a difference inside one bucket is quantization, not
  // queueing.
  const MixedPoint& at1 = mixed.front();
  const MixedPoint& at3 = mixed.back();
  const std::int64_t p99_floor_us = mixed_delay_us + 2 * sock_t_us;
  const std::int64_t high_p99_ref =
      std::max(at1.high.report.latency_us.p99, p99_floor_us);
  const std::int64_t p99_bound_us =
      static_cast<std::int64_t>(std::bit_ceil(
          static_cast<std::uint64_t>(high_p99_ref + high_p99_ref / 2)));
  const bool gate_high_p99 = at3.high.report.latency_us.p99 <= p99_bound_us;
  const bool gate_high_goodput =
      at3.high.report.goodput_rps >= at1.high.report.goodput_rps / 1.5;
  const bool gate_low_absorbs =
      at3.low.shed() + at3.low.report.rejected_quota +
          at3.low.report.rejected >
      0;
  const bool gate_mixed = gate_high_p99 && gate_high_goodput &&
                          gate_low_absorbs;

  // Two-model mixed traffic through the registry, 50/50 split per point.
  // The offered-load multiples are relative to the VGG socket capacity —
  // the MobileNet-style net has its own service time, so the multiples are
  // nominal for that stream; the gate is behavioral (progress + restage),
  // not a latency bar.
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("vgg", w.net, w.model);
  const zoo::ZooModel mobile_zoo = zoo::make_mobile_depthwise(11);
  registry.add_model("mobile", mobile_zoo.net, mobile_zoo.model);
  std::printf("multi-model over socket: vgg + mobile behind one registry, "
              "single-model batches, context restage on model switch\n");
  std::vector<MultiPoint> multi;
  for (const double total_x :
       quick ? std::vector<double>{1.0} : std::vector<double>{1.0, 2.0}) {
    multi.push_back(run_multi_model_point(
        registry, w.net.input_shape(), mobile_zoo.net.input_shape(), total_x,
        socket_capacity_rps, window_s, mixed_deadline_us, mixed_delay_us,
        mixed_slack_us));
    print_model_row(total_x, multi.back().vgg);
    print_model_row(total_x, multi.back().mobile);
    std::printf("  total x%.1f restages=%llu unknown_rejected=%llu\n",
                total_x,
                static_cast<unsigned long long>(multi.back().restage),
                static_cast<unsigned long long>(multi.back().unknown_rejected));
  }
  bool gate_multi = true;
  std::uint64_t total_restages = 0;
  for (const MultiPoint& p : multi) {
    if (p.vgg.report.ok <= 0 || p.mobile.report.ok <= 0) gate_multi = false;
    if (p.vgg.report.errors != 0 || p.mobile.report.errors != 0)
      gate_multi = false;
    if (p.unknown_rejected != 0) gate_multi = false;
    total_restages += p.restage;
  }
  if (total_restages == 0) gate_multi = false;

  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve_scheduler\",\n");
  std::fprintf(out, "  \"network\": \"vgg16_scaled_32px_div16\",\n");
  std::fprintf(out, "  \"exec_mode\": \"fast\",\n");
  std::fprintf(out, "  \"workers\": %d,\n", kWorkers);
  std::fprintf(out, "  \"queue_capacity\": %zu,\n", kQueueCapacity);
  std::fprintf(out, "  \"max_batch\": %d,\n", kMaxBatch);
  std::fprintf(out, "  \"calib_exec_us\": %lld,\n",
               static_cast<long long>(exec_us));
  std::fprintf(out, "  \"capacity_rps\": %.1f,\n", capacity_rps);
  std::fprintf(out, "  \"deadline_us\": %lld,\n",
               static_cast<long long>(deadline_us));
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i)
    write_row_json(out, rows[i], i + 1 == rows.size());
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"overload_gate\": {\"offered_x\": %.1f, "
               "\"fifo_p99_us\": %lld, \"batched_p99_us\": %lld, "
               "\"fifo_goodput_rps\": %.2f, \"batched_goodput_rps\": %.2f, "
               "\"pass\": %s},\n",
               fifo.offered_x,
               static_cast<long long>(fifo.report.latency_us.p99),
               static_cast<long long>(batched.report.latency_us.p99),
               fifo.report.goodput_rps, batched.report.goodput_rps,
               gate_p99 && gate_goodput ? "true" : "false");
  std::fprintf(out, "  \"mixed_priority\": {\n");
  std::fprintf(out, "    \"transport\": \"socket\",\n");
  std::fprintf(out, "    \"high_share_x\": %.2f,\n", kHighShareX);
  std::fprintf(out, "    \"socket_capacity_rps\": %.1f,\n",
               socket_capacity_rps);
  std::fprintf(out, "    \"socket_t_us\": %lld,\n",
               static_cast<long long>(sock_t_us));
  std::fprintf(out, "    \"deadline_us\": %lld,\n",
               static_cast<long long>(mixed_deadline_us));
  std::fprintf(out, "    \"points\": [\n");
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    std::fprintf(out, "      {\"total_x\": %.1f, \"classes\": [\n",
                 mixed[i].total_x);
    write_class_json(out, mixed[i].high, false);
    write_class_json(out, mixed[i].low, true);
    std::fprintf(out, "      ]}%s\n", i + 1 == mixed.size() ? "" : ",");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"gate\": {\"high_p99_1x_us\": %lld, "
               "\"high_p99_3x_us\": %lld, \"p99_floor_us\": %lld, "
               "\"p99_bound_us\": %lld, "
               "\"high_goodput_1x_rps\": %.2f, \"high_goodput_3x_rps\": %.2f, "
               "\"low_absorbed_3x\": %d, \"pass\": %s}\n",
               static_cast<long long>(at1.high.report.latency_us.p99),
               static_cast<long long>(at3.high.report.latency_us.p99),
               static_cast<long long>(p99_floor_us),
               static_cast<long long>(p99_bound_us),
               at1.high.report.goodput_rps, at3.high.report.goodput_rps,
               at3.low.shed() + at3.low.report.rejected_quota +
                   at3.low.report.rejected,
               gate_mixed ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"multi_model\": {\n");
  std::fprintf(out, "    \"transport\": \"socket\",\n");
  std::fprintf(out, "    \"models\": [\"vgg\", \"mobile\"],\n");
  std::fprintf(out, "    \"default_model\": \"vgg\",\n");
  std::fprintf(out, "    \"points\": [\n");
  for (std::size_t i = 0; i < multi.size(); ++i) {
    std::fprintf(out,
                 "      {\"total_x\": %.1f, \"restages\": %llu, "
                 "\"unknown_rejected\": %llu, \"models\": [\n",
                 multi[i].total_x,
                 static_cast<unsigned long long>(multi[i].restage),
                 static_cast<unsigned long long>(multi[i].unknown_rejected));
    write_model_json(out, multi[i].vgg, false);
    write_model_json(out, multi[i].mobile, true);
    std::fprintf(out, "      ]}%s\n", i + 1 == multi.size() ? "" : ",");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"gate\": {\"total_restages\": %llu, \"pass\": %s}\n",
               static_cast<unsigned long long>(total_restages),
               gate_multi ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_serve.json\n");

  bool failed = false;
  if (!gate_p99 || !gate_goodput) {
    std::fprintf(stderr,
                 "FAIL: overload gate: batched p99=%lld us goodput=%.0f rps "
                 "vs fifo p99=%lld us goodput=%.0f rps\n",
                 static_cast<long long>(batched.report.latency_us.p99),
                 batched.report.goodput_rps,
                 static_cast<long long>(fifo.report.latency_us.p99),
                 fifo.report.goodput_rps);
    failed = true;
  } else {
    std::printf("overload gate: batched beats fifo1 on p99 and goodput\n");
  }
  if (!gate_mixed) {
    std::fprintf(stderr,
                 "FAIL: mixed-priority gate: high p99 %lld -> %lld us "
                 "(bound %lld), goodput %.0f -> %.0f rps, low absorbed %d\n",
                 static_cast<long long>(at1.high.report.latency_us.p99),
                 static_cast<long long>(at3.high.report.latency_us.p99),
                 static_cast<long long>(p99_bound_us),
                 at1.high.report.goodput_rps, at3.high.report.goodput_rps,
                 at3.low.shed() + at3.low.report.rejected_quota +
                     at3.low.report.rejected);
    failed = true;
  } else {
    std::printf(
        "mixed-priority gate: high class insulated at 3x total load\n");
  }
  if (!gate_multi) {
    std::fprintf(stderr,
                 "FAIL: multi-model gate: both models must make progress "
                 "with zero errors and zero unknown-model rejections, and "
                 "workers must restage between models (restages=%llu)\n",
                 static_cast<unsigned long long>(total_restages));
    failed = true;
  } else {
    std::printf("multi-model gate: both models served, %llu restages\n",
                static_cast<unsigned long long>(total_restages));
  }
  return failed ? 1 : 0;
}
