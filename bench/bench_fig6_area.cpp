// Fig. 6 — ALM usage by each unit in the accelerator.
//
// Substitution (no Quartus here): the structural area model of model/area.hpp
// replaces synthesis reports; constants were calibrated so 256-opt lands on
// the paper's reported utilization (≈44 % ALM, ≈25 % DSP, ≈49 % M20K of an
// Arria 10 SX660).  The bar heights of Fig. 6 become the per-unit rows below;
// the paper's qualitative claim — convolution, accumulator and data-staging
// dominate because of heavy MUX'ing — should be visible in the shares.
#include <cstdio>

#include "core/config.hpp"
#include "model/area.hpp"
#include "model/fpga.hpp"

using namespace tsca;

int main() {
  const model::FpgaDevice device = model::FpgaDevice::arria10_sx660();
  std::printf("Fig. 6 — per-unit resource estimates (structural model)\n");
  std::printf("Device: %s (%d ALMs, %d DSP, %d M20K)\n\n", device.name.c_str(),
              device.alms, device.dsp_blocks, device.m20k_blocks);

  for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants()) {
    const model::AreaReport report = model::estimate_area(cfg);
    std::printf("=== %s (%d MACs/cycle @ %.0f MHz) ===\n", cfg.name.c_str(),
                cfg.macs_per_cycle(), cfg.clock_mhz);
    std::printf("  %-22s %5s %9s %7s %5s %6s\n", "unit", "inst", "ALMs",
                "share", "DSP", "M20K");
    for (const model::UnitArea& unit : report.units) {
      std::printf("  %-22s %5d %9d %6.1f%% %5d %6d\n", unit.unit.c_str(),
                  unit.instances, unit.alms,
                  100.0 * unit.alms / report.total_alms, unit.dsp_blocks,
                  unit.m20k_blocks);
    }
    std::printf("  %-22s %5s %9d %6s %5d %6d\n", "TOTAL", "", report.total_alms,
                "", report.total_dsp, report.total_m20k);
    std::printf("  utilization: ALM %.1f%%  DSP %.1f%%  M20K %.1f%%\n\n",
                100.0 * report.alm_utilization(device),
                100.0 * report.dsp_utilization(device),
                100.0 * report.m20k_utilization(device));
  }
  std::printf(
      "Paper reference (256-opt): 44%% ALM, 25%% DSP, 49%% RAM blocks;\n"
      "convolution, accumulator and data-staging/control are the largest "
      "units.\n");
  return 0;
}
