// Microarchitecture benchmarks (google-benchmark).
//
// Measures the building blocks of the library itself: FIFO throughput in
// both execution domains, the cycle engine's simulation rate, the datapath
// primitives, the zero-skip packer and the pool micro-op generator.  These
// back the §IV-A discussion (streaming kernels at II=1) with host-side
// numbers for the simulator.
#include <benchmark/benchmark.h>

#include "core/accelerator.hpp"
#include "core/datapath.hpp"
#include "core/poolgen.hpp"
#include "driver/runtime.hpp"
#include "hls/system.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

using namespace tsca;

namespace {

struct Item {
  int value = 0;
  bool last = false;
};

hls::Kernel producer(hls::Domain& d, hls::Fifo<Item>& out, int n) {
  for (int i = 0; i < n; ++i) {
    co_await out.push({i, i == n - 1});
    co_await hls::clk(d);
  }
}

hls::Kernel consumer(hls::Domain& d, hls::Fifo<Item>& in, std::int64_t& sum) {
  for (;;) {
    Item item = co_await in.pop();
    sum += item.value;
    co_await hls::clk(d);
    if (item.last) break;
  }
}

void BM_FifoPipeline(benchmark::State& state, hls::Mode mode) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    hls::System sys(mode);
    auto& q = sys.make_fifo<Item>("q", 16);
    std::int64_t sum = 0;
    sys.spawn("producer", producer(sys.domain(), q, n));
    sys.spawn("consumer", consumer(sys.domain(), q, sum));
    sys.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CycleEngineConvLayer(benchmark::State& state) {
  // Simulation rate of the full 25-kernel accelerator on a mid-size layer.
  Rng rng(1);
  const nn::FmShape in{16, 18, 18};
  nn::FeatureMapI8 input(in);
  for (std::size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<std::int8_t>(rng.next_int(-30, 30));
  nn::FilterBankI8 filters({16, 16, 3, 3});
  for (std::size_t i = 0; i < filters.size(); ++i)
    if (rng.next_double() < 0.4)
      filters.data()[i] = static_cast<std::int8_t>(rng.next_int(1, 20));
  const pack::PackedFilters packed = pack::pack_filters(filters);
  const std::vector<std::int32_t> bias(16, 0);

  std::uint64_t cycles = 0;
  for (auto _ : state) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.bank_words = 8192;
    core::Accelerator acc(cfg);
    sim::Dram dram(16u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    driver::LayerRun run;
    auto out = runtime.run_conv(pack::to_tiled(input), packed, bias,
                                nn::Requant{.shift = 6, .relu = true}, run);
    benchmark::DoNotOptimize(out);
    cycles += run.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_SteerMultiply(benchmark::State& state) {
  Rng rng(2);
  core::Window window;
  for (auto& tile : window.tiles)
    for (auto& v : tile.v) v = static_cast<std::int8_t>(rng.next_int(-50, 50));
  int offset = 0;
  for (auto _ : state) {
    auto products = core::steer_multiply(window, 13, offset);
    benchmark::DoNotOptimize(products);
    offset = (offset + 1) % pack::kTileSize;
  }
  state.SetItemsProcessed(state.iterations() * pack::kTileSize);
}

void BM_PackFilters(benchmark::State& state) {
  Rng rng(3);
  nn::FilterBankI8 bank({64, 64, 3, 3});
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < 0.35)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  for (auto _ : state) {
    auto packed = pack::pack_filters(bank);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bank.size()));
}

void BM_PoolMicroOps(benchmark::State& state) {
  core::PadPoolInstr instr;
  instr.ifm_tiles_x = instr.ifm_tiles_y = 8;
  instr.ifm_h = instr.ifm_w = 32;
  instr.ofm_tiles_x = instr.ofm_tiles_y = 4;
  instr.ofm_h = instr.ofm_w = 16;
  instr.channels = 1;
  instr.win = 2;
  instr.stride = 2;
  for (auto _ : state) {
    for (int oty = 0; oty < instr.ofm_tiles_y; ++oty)
      for (int otx = 0; otx < instr.ofm_tiles_x; ++otx) {
        auto steps = core::make_pool_steps(instr, oty, otx);
        benchmark::DoNotOptimize(steps);
      }
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_FifoPipeline, thread, hls::Mode::kThread)->Arg(10'000);
BENCHMARK_CAPTURE(BM_FifoPipeline, cycle, hls::Mode::kCycle)->Arg(10'000);
BENCHMARK(BM_CycleEngineConvLayer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SteerMultiply);
BENCHMARK(BM_PackFilters);
BENCHMARK(BM_PoolMicroOps);
