// Host-parallel simulation throughput: serial Runtime vs AcceleratorPool.
//
// Two parallelism axes, both on the channel-scaled VGG-16 in cycle mode:
//
//   serve   — whole-network requests fan out one-per-context (the paper's
//             throughput serving scenario); reports images/sec.
//   stripes — a single network pass with small banks, so each layer's
//             stripe loop fans out over the workers.
//   fast    — the SIMD functional fast path, three ways: (1) vs the cycle
//             engine (bit-identical logits, ≥5× p50); (2) a backend matrix —
//             warm single-worker serving under every runtime-dispatched
//             kernel backend (scalar/SSE2/AVX2/AVX-512); (3) the combined
//             configuration — widest backend + batch-major lanes + stripe-
//             parallel pool — which must beat the SSE2 single-thread
//             single-image fast path by ≥3× p50 on an AVX2-capable host.
//
// Every configuration must simulate the exact same cycles and produce the
// exact same logits as the serial runtime — the pool buys wall-clock only.
// Emits BENCH_sim_throughput.json into the working directory (run it from
// the repo root; the JSON is tracked there so the perf trajectory survives
// across PRs).  With --fast, runs only the fast-path sections.
//
// Reading the serve rows: `speedup_vs_1w` below 1.0 at 2/4 workers is a
// host-capacity artifact, not simulator contention, whenever `host_cpus`
// is smaller than the worker count — the worker threads time-share the
// available cores, so extra workers only add scheduling/coordination
// overhead, and per-request `request_wall_us` p50 inflates with queue
// depth because all 16 images are dispatched at once and each request's
// wall clock includes its wait for a core.  The JSON records the verdict
// in `serve_scaling.verdict` ("host-capacity artifact" on starved hosts,
// "contention" only when >= 4 real cores fail to reach 2x), and the exit
// gate below only enforces the speedup when the host can express one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/simd.hpp"

#include "core/accelerator.hpp"
#include "driver/compile_cache.hpp"
#include "driver/pool_runtime.hpp"
#include "driver/program.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "obs/alloc_count.hpp"
#include "obs/metrics.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace tsca;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t total_cycles(const driver::NetworkRun& run) {
  std::uint64_t total = 0;
  for (const driver::LayerRun& layer : run.layers) total += layer.cycles;
  return total;
}

struct Workload {
  nn::Network net;
  quant::QuantizedModel model;
  std::vector<nn::FeatureMapI8> inputs;
};

Workload make_workload(int images) {
  Rng rng(2024);
  nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 8, .num_classes = 10});
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  quant::prune_weights(net, weights, quant::vgg16_han_profile());
  nn::FeatureMapF calib(net.input_shape());
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
  quant::QuantizedModel model = quant::quantize_network(net, weights, {calib});

  std::vector<nn::FeatureMapI8> inputs;
  for (int i = 0; i < images; ++i) {
    nn::FeatureMapI8 fm(net.input_shape());
    for (std::size_t j = 0; j < fm.size(); ++j)
      fm.data()[j] = static_cast<std::int8_t>(rng.next_int(-40, 40));
    inputs.push_back(std::move(fm));
  }
  return Workload{std::move(net), std::move(model), std::move(inputs)};
}

struct Measurement {
  int workers = 0;
  double wall_s = 0.0;
  std::uint64_t sim_cycles = 0;
  double units = 0.0;  // images (serve) or 1 (stripes)
  // Per-request serve latency from the PoolRuntime metrics registry.
  std::int64_t lat_p50_us = 0;
  std::int64_t lat_p95_us = 0;
  std::int64_t lat_max_us = 0;
};

// Host CPU feature flags relevant to the dispatch decision, as one
// space-separated string.
std::string host_cpu_flags() {
  std::string flags;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  const auto append = [&flags](bool has, const char* f) {
    if (!has) return;
    if (!flags.empty()) flags += ' ';
    flags += f;
  };
  append(__builtin_cpu_supports("sse2"), "sse2");
  append(__builtin_cpu_supports("avx2"), "avx2");
  append(__builtin_cpu_supports("avx512f"), "avx512f");
  append(__builtin_cpu_supports("avx512bw"), "avx512bw");
#endif
  return flags;
}

// One warm single-worker serve measurement under a forced kernel backend.
struct BackendRow {
  std::string name;
  int width = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Fast-path measurements: fast-vs-cycle, the per-backend matrix, and the
// combined (widest backend + batch-major + stripe-parallel pool) run.
struct FastSection {
  double cycle_p50_us = 0.0;
  double cycle_p99_us = 0.0;
  std::vector<BackendRow> backends;  // matrix, widest last
  std::string active;                // default dispatch choice
  int active_width = 0;
  double fast_p50_us = 0.0;  // active backend, single worker, single image
  double fast_p99_us = 0.0;
  double speedup_p50 = 0.0;  // cycle / active fast (the 5x gate)
  // Combined configuration.
  int combined_workers = 0;
  int combined_lanes = 0;          // images per batch-major lane group
  double combined_p50_us = 0.0;    // per-image, batched over all requests
  double widen_speedup_p50 = 0.0;  // sse2 single-thread / combined (3x gate)
  bool have_avx2 = false;
  bool ok = false;
};

FastSection run_fast_section(const Workload& w,
                             const core::ArchConfig& cfg,
                             const std::vector<driver::NetworkRun>* reference) {
  FastSection f;
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(w.net, w.model, cfg);

  const std::string entry_backend = core::simd::backend_name();
  f.ok = true;

  // Warm serving under one runtime, timed directly: the per-request serve
  // histogram's log-scale buckets are too coarse to separate kernel
  // backends.  Each measurement serves the whole request set `reps` times;
  // p50 is the median per-image wall time, p99 the worst rep.
  auto time_serve = [&](driver::ExecMode mode, int reps,
                        double& p50_us, double& p99_us) {
    driver::AcceleratorPool pool(cfg, {.workers = 1});
    driver::PoolRuntime runtime(pool, {.mode = mode});
    runtime.serve(program, {w.inputs.front()});  // warm-up, stages weights
    std::vector<driver::NetworkRun> runs;
    std::vector<double> per_image_us;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      runs = runtime.serve(program, w.inputs);
      per_image_us.push_back(seconds_since(t0) * 1e6 /
                             static_cast<double>(w.inputs.size()));
    }
    std::sort(per_image_us.begin(), per_image_us.end());
    p50_us = per_image_us[per_image_us.size() / 2];
    p99_us = per_image_us.back();
    return runs;
  };

  const std::vector<driver::NetworkRun> cycle_runs =
      time_serve(driver::ExecMode::kCycle, 2, f.cycle_p50_us, f.cycle_p99_us);
  if (reference != nullptr)
    for (std::size_t i = 0; i < cycle_runs.size(); ++i)
      if (cycle_runs[i].logits != (*reference)[i].logits) {
        std::fprintf(stderr,
                     "FAIL: fast-section cycle serve diverged on image %zu\n",
                     i);
        f.ok = false;
      }
  std::printf("  cycle    p50=%9.0f us  p99=%9.0f us\n", f.cycle_p50_us,
              f.cycle_p99_us);

  // --- backend matrix: single worker, single image, every backend --------
  double sse2_p50 = 0.0;
  for (const core::simd::SimdBackend* b : core::simd::available_backends()) {
    if (!core::simd::select_backend(b->name)) continue;
    BackendRow row;
    row.name = b->name;
    row.width = b->width;
    const std::vector<driver::NetworkRun> runs =
        time_serve(driver::ExecMode::kFast, 5, row.p50_us, row.p99_us);
    for (std::size_t i = 0; i < runs.size(); ++i)
      if (runs[i].logits != cycle_runs[i].logits) {
        std::fprintf(stderr, "FAIL: %s logits diverged on image %zu\n",
                     b->name, i);
        f.ok = false;
      }
    for (const driver::LayerRun& lr : runs.front().layers)
      if (lr.on_accelerator && !lr.cycles_predicted) {
        std::fprintf(stderr, "FAIL: fast layer %s lacks predicted cycles\n",
                     lr.name.c_str());
        f.ok = false;
      }
    f.backends.push_back(row);
    if (row.name == "sse2") sse2_p50 = row.p50_us;
    if (row.name == "avx2") f.have_avx2 = true;
    std::printf("  %-8s p50=%9.0f us  p99=%9.0f us  (%d lanes)\n",
                b->name, row.p50_us, row.p99_us, b->width);
  }
  core::simd::select_backend(entry_backend.c_str());
  f.active = core::simd::backend_name();
  f.active_width = core::simd::backend().width;
  for (const BackendRow& row : f.backends)
    if (row.name == f.active) {
      f.fast_p50_us = row.p50_us;
      f.fast_p99_us = row.p99_us;
    }
  f.speedup_p50 =
      f.fast_p50_us > 0.0 ? f.cycle_p50_us / f.fast_p50_us : 0.0;
  std::printf("  active backend: %s (%d lanes); fast-vs-cycle p50: %.1fx\n",
              f.active.c_str(), f.active_width, f.speedup_p50);

  // --- combined: widest backend + batch-major lanes + stripe pool --------
  const unsigned cpus = std::thread::hardware_concurrency();
  f.combined_workers =
      static_cast<int>(std::min(4u, cpus == 0 ? 1u : cpus));
  f.combined_lanes = std::min<int>(driver::Runtime::kFastBatchLanes,
                                   static_cast<int>(w.inputs.size()));
  {
    driver::AcceleratorPool serial_pool(cfg, {.workers = 1});
    driver::PoolRuntime serial_runtime(serial_pool,
                                       {.mode = driver::ExecMode::kFast});
    driver::AcceleratorPool pool(cfg, {.workers = f.combined_workers});
    driver::PoolRuntime runtime(pool, {.mode = driver::ExecMode::kFast});
    runtime.ensure_program_staged(program);
    // Paired, interleaved measurement: each rep times one sse2 single-thread
    // serve pass and one combined batch pass back to back, so clock and
    // thermal drift land on both sides of the widen ratio instead of
    // whichever block ran later.  The gate compares the two medians.
    core::simd::select_backend("sse2");
    serial_runtime.serve(program, {w.inputs.front()});  // warm-up + staging
    core::simd::select_backend(entry_backend.c_str());
    driver::BatchNetworkRun batch =
        runtime.run_network_batch(program, w.inputs);  // warm-up
    std::vector<double> serial_us;
    std::vector<double> per_image_us;
    for (int rep = 0; rep < 9; ++rep) {
      core::simd::select_backend("sse2");
      auto t0 = std::chrono::steady_clock::now();
      serial_runtime.serve(program, w.inputs);
      serial_us.push_back(seconds_since(t0) * 1e6 /
                          static_cast<double>(w.inputs.size()));
      core::simd::select_backend(entry_backend.c_str());
      t0 = std::chrono::steady_clock::now();
      batch = runtime.run_network_batch(program, w.inputs);
      per_image_us.push_back(seconds_since(t0) * 1e6 /
                             static_cast<double>(w.inputs.size()));
    }
    for (std::size_t i = 0; i < batch.requests.size(); ++i)
      if (batch.requests[i].logits != cycle_runs[i].logits) {
        std::fprintf(stderr,
                     "FAIL: combined batch logits diverged on image %zu\n", i);
        f.ok = false;
      }
    std::sort(serial_us.begin(), serial_us.end());
    std::sort(per_image_us.begin(), per_image_us.end());
    sse2_p50 = serial_us[serial_us.size() / 2];
    f.combined_p50_us = per_image_us[per_image_us.size() / 2];
  }
  f.widen_speedup_p50 =
      f.combined_p50_us > 0.0 ? sse2_p50 / f.combined_p50_us : 0.0;
  std::printf("  combined (%s, %d lanes/group, %d workers): "
              "p50=%9.0f us/img — %.1fx vs sse2 single-thread\n",
              f.active.c_str(), f.combined_lanes, f.combined_workers,
              f.combined_p50_us, f.widen_speedup_p50);
  return f;
}

void write_fast_json(FILE* out, const FastSection& f) {
  std::fprintf(out,
               "  \"fast\": {\"backend\": \"%s\", \"lane_width\": %d, "
               "\"batch_lanes\": %d, \"cpu_flags\": \"%s\",\n",
               f.active.c_str(), f.active_width, f.combined_lanes,
               host_cpu_flags().c_str());
  std::fprintf(out,
               "    \"cycle_request_us\": {\"p50\": %.1f, \"p99\": %.1f},\n",
               f.cycle_p50_us, f.cycle_p99_us);
  std::fprintf(out, "    \"backends\": [");
  for (std::size_t i = 0; i < f.backends.size(); ++i)
    std::fprintf(out,
                 "%s{\"name\": \"%s\", \"lane_width\": %d, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f}",
                 i == 0 ? "" : ", ", f.backends[i].name.c_str(),
                 f.backends[i].width, f.backends[i].p50_us,
                 f.backends[i].p99_us);
  std::fprintf(out, "],\n");
  std::fprintf(out,
               "    \"fast_request_us\": {\"p50\": %.1f, \"p99\": %.1f}, "
               "\"speedup_p50\": %.2f,\n",
               f.fast_p50_us, f.fast_p99_us, f.speedup_p50);
  std::fprintf(out,
               "    \"combined\": {\"workers\": %d, \"per_image_p50_us\": "
               "%.1f, \"speedup_vs_sse2_p50\": %.2f}}",
               f.combined_workers, f.combined_p50_us, f.widen_speedup_p50);
}

// The ≥3× widen gate applies only where the wider kernels exist to measure.
int check_widen_gate(const FastSection& f, double required) {
  if (!f.have_avx2) {
    std::printf("NOTE: host lacks AVX2; widen gate (%.0fx) not applicable\n",
                required);
    return 0;
  }
  if (f.widen_speedup_p50 < required) {
    std::fprintf(stderr,
                 "FAIL: combined fast path %.1fx vs sse2 single-thread, "
                 "below the %.0fx gate\n",
                 f.widen_speedup_p50, required);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kImages = 16;
  constexpr double kRequiredSpeedup = 5.0;       // fast vs cycle engine
  constexpr double kRequiredWidenSpeedup = 3.0;  // combined vs sse2 1-thread
  bool fast_only = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--fast") == 0) fast_only = true;
  const std::vector<int> kWorkers = {1, 2, 4};
  const unsigned cpus = std::thread::hardware_concurrency();
  const driver::RuntimeOptions options{.mode = driver::ExecMode::kCycle};
  const Workload w = make_workload(kImages);
  std::printf("host cpus: %u\n", cpus);
  if (cpus < 4)
    std::printf("NOTE: fewer than 4 CPUs; worker threads time-share one "
                "core, so wall-clock speedup cannot appear here.\n");

  if (fast_only) {
    std::printf("fast: warm serve latency, fast path vs cycle engine "
                "(1 worker, %d requests)\n",
                kImages);
    const FastSection f =
        run_fast_section(w, core::ArchConfig::k256_opt(), nullptr);
    FILE* out = std::fopen("BENCH_sim_throughput.json", "w");
    if (out == nullptr) {
      std::fprintf(stderr, "FAIL: cannot write BENCH_sim_throughput.json\n");
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"sim_throughput\",\n");
    std::fprintf(out, "  \"network\": \"vgg16_scaled_32px_div8\",\n");
    std::fprintf(out, "  \"images\": %d,\n", kImages);
    std::fprintf(out, "  \"host_cpus\": %u,\n", cpus);
    std::fprintf(out, "  \"sections\": [\"fast\"],\n");
    write_fast_json(out, f);
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_sim_throughput.json\n");
    if (!f.ok) return 1;
    if (f.speedup_p50 < kRequiredSpeedup) {
      std::fprintf(stderr, "FAIL: fast speedup %.1fx below %.0fx\n",
                   f.speedup_p50, kRequiredSpeedup);
      return 1;
    }
    return check_widen_gate(f, kRequiredWidenSpeedup);
  }

  // --- serve: whole-network request parallelism -------------------------
  std::printf("serve: %d scaled-VGG-16 requests, cycle mode\n", kImages);
  const core::ArchConfig serve_cfg = core::ArchConfig::k256_opt();

  // The serial server: one context constructed up front (outside the timed
  // region, like the pool's contexts), a fresh Runtime per request — the
  // exact semantics serve() has per worker.
  core::Accelerator serial_acc(serve_cfg);
  sim::Dram serial_dram(64u << 20);
  sim::DmaEngine serial_dma(serial_dram);
  std::vector<driver::NetworkRun> reference;
  auto t0 = std::chrono::steady_clock::now();
  for (const nn::FeatureMapI8& input : w.inputs) {
    driver::Runtime runtime(serial_acc, serial_dram, serial_dma, options);
    reference.push_back(runtime.run_network(w.net, w.model, input));
  }
  const double serial_serve_s = seconds_since(t0);
  std::uint64_t serve_cycles = 0;
  for (const driver::NetworkRun& run : reference)
    serve_cycles += total_cycles(run);
  std::printf("  %-10s %8.2f s %10.2f img/s %12.0f cyc/s\n", "serial",
              serial_serve_s, kImages / serial_serve_s,
              static_cast<double>(serve_cycles) / serial_serve_s);

  std::vector<Measurement> serve_rows;
  for (const int workers : kWorkers) {
    obs::MetricsRegistry metrics;
    driver::RuntimeOptions pool_options = options;
    pool_options.metrics = &metrics;
    driver::AcceleratorPool pool(serve_cfg, {.workers = workers});
    driver::PoolRuntime runtime(pool, pool_options);
    t0 = std::chrono::steady_clock::now();
    const std::vector<driver::NetworkRun> runs =
        runtime.serve(w.net, w.model, w.inputs);
    const double wall = seconds_since(t0);
    std::uint64_t cycles = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      cycles += total_cycles(runs[i]);
      if (runs[i].logits != reference[i].logits ||
          total_cycles(runs[i]) != total_cycles(reference[i])) {
        std::fprintf(stderr, "FAIL: serve w=%d diverged on image %zu\n",
                     workers, i);
        return 1;
      }
    }
    Measurement m{workers, wall, cycles, double(kImages)};
    const obs::HistogramSnapshot lat =
        metrics.histogram("serve.request_wall_us").snapshot();
    m.lat_p50_us = lat.p50;
    m.lat_p95_us = lat.p95;
    m.lat_max_us = lat.max;
    serve_rows.push_back(m);
    std::printf("  workers=%-3d %8.2f s %10.2f img/s %12.0f cyc/s "
                "(req p50=%lld us p95=%lld us)\n",
                workers, wall, kImages / wall,
                static_cast<double>(cycles) / wall,
                static_cast<long long>(m.lat_p50_us),
                static_cast<long long>(m.lat_p95_us));
  }

  // --- stripes: intra-layer stripe parallelism --------------------------
  std::printf("\nstripes: one pass, small banks force striped layers\n");
  core::ArchConfig stripe_cfg = core::ArchConfig::k256_opt();
  stripe_cfg.bank_words = 128;

  core::Accelerator stripe_acc(stripe_cfg);
  sim::Dram stripe_dram(64u << 20);
  sim::DmaEngine stripe_dma(stripe_dram);
  t0 = std::chrono::steady_clock::now();
  driver::NetworkRun stripe_ref;
  {
    driver::Runtime runtime(stripe_acc, stripe_dram, stripe_dma, options);
    stripe_ref = runtime.run_network(w.net, w.model, w.inputs.front());
  }
  const double serial_stripe_s = seconds_since(t0);
  std::printf("  %-10s %8.2f s %12.0f cyc/s\n", "serial", serial_stripe_s,
              static_cast<double>(total_cycles(stripe_ref)) / serial_stripe_s);

  std::vector<Measurement> stripe_rows;
  for (const int workers : kWorkers) {
    driver::AcceleratorPool pool(stripe_cfg, {.workers = workers});
    driver::PoolRuntime runtime(pool, options);
    t0 = std::chrono::steady_clock::now();
    const driver::NetworkRun run =
        runtime.run_network(w.net, w.model, w.inputs.front());
    const double wall = seconds_since(t0);
    if (run.logits != stripe_ref.logits ||
        total_cycles(run) != total_cycles(stripe_ref)) {
      std::fprintf(stderr, "FAIL: stripes w=%d diverged from serial\n",
                   workers);
      return 1;
    }
    stripe_rows.push_back({workers, wall, total_cycles(run), 1.0});
    std::printf("  workers=%-3d %8.2f s %12.0f cyc/s\n", workers, wall,
                static_cast<double>(total_cycles(run)) / wall);
  }

  const double speedup4 = serve_rows.front().wall_s / serve_rows.back().wall_s;
  std::printf("\nserve speedup, 4 workers vs 1: %.2fx (deterministic: yes)\n",
              speedup4);
  // Classify sub-linear serve scaling so the tracked JSON says whether the
  // numbers mean anything: on a host with fewer cores than workers the
  // threads time-share and sub-1 speedups are expected (see file header).
  const char* serve_verdict =
      cpus >= 4 ? (speedup4 >= 2.0 ? "scales" : "contention")
                : "host-capacity artifact: fewer host cpus than workers, so "
                  "worker threads time-share cores; sub-1 speedup_vs_1w and "
                  "queue-depth-inflated request p50 are expected and do not "
                  "indicate simulator contention";
  std::printf("serve scaling verdict: %s\n", serve_verdict);

  // --- fast path vs cycle engine ----------------------------------------
  std::printf("\nfast: warm serve latency, fast path vs cycle engine "
              "(1 worker)\n");
  const FastSection fast = run_fast_section(w, serve_cfg, &reference);

  // --- compile/execute split: cold vs warm serve ------------------------
  // Cold = NetworkProgram::compile + the first (image-staging-included)
  // request; warm = per-request latency once the program and its weight
  // image are resident.  Warm must be strictly below cold: compilation left
  // the request path.
  std::printf("\ncompile/execute split: cold vs warm serve (1 worker)\n");
  t0 = std::chrono::steady_clock::now();
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(w.net, w.model, serve_cfg);
  const double compile_ms = seconds_since(t0) * 1e3;

  obs::MetricsRegistry warm_metrics;
  driver::RuntimeOptions warm_options = options;
  warm_options.metrics = &warm_metrics;
  driver::AcceleratorPool warm_pool(serve_cfg, {.workers = 1});
  driver::PoolRuntime warm_runtime(warm_pool, warm_options);

  t0 = std::chrono::steady_clock::now();
  const std::vector<driver::NetworkRun> first =
      warm_runtime.serve(program, {w.inputs.front()});
  const double cold_first_ms = compile_ms + seconds_since(t0) * 1e3;
  if (first.front().logits != reference.front().logits) {
    std::fprintf(stderr, "FAIL: cold program serve diverged from serial\n");
    return 1;
  }

  const std::vector<driver::NetworkRun> warm_runs =
      warm_runtime.serve(program, w.inputs);
  for (std::size_t i = 0; i < warm_runs.size(); ++i) {
    if (warm_runs[i].logits != reference[i].logits ||
        total_cycles(warm_runs[i]) != total_cycles(reference[i])) {
      std::fprintf(stderr, "FAIL: warm program serve diverged on image %zu\n",
                   i);
      return 1;
    }
  }
  const obs::HistogramSnapshot warm_lat =
      warm_metrics.histogram("serve.request_wall_us").snapshot();
  const double warm_p50_ms = static_cast<double>(warm_lat.p50) / 1e3;
  const double warm_p95_ms = static_cast<double>(warm_lat.p95) / 1e3;
  const double warm_p99_ms = static_cast<double>(warm_lat.p99) / 1e3;
  std::printf("  compile %8.2f ms\n", compile_ms);
  std::printf("  cold    %8.2f ms (compile + first request)\n", cold_first_ms);
  std::printf("  warm    %8.2f ms p50 / %8.2f ms p95 per request\n",
              warm_p50_ms, warm_p95_ms);
  if (warm_p50_ms >= cold_first_ms) {
    std::fprintf(stderr,
                 "FAIL: warm p50 (%.2f ms) not below cold first request "
                 "(%.2f ms)\n",
                 warm_p50_ms, cold_first_ms);
    return 1;
  }

  // --- persistent compile cache: cached cold start vs in-process compile --
  // A warmed CompileCache turns the compile into a deserialization.  The
  // cached artifact must be bit-exact (same DDR image, same logits) and at
  // least 5x faster to materialize than compiling in process.
  std::printf("\ncompile cache: cached cold start vs in-process compile\n");
  const std::string cache_dir = ".tsca-bench-cache";
  std::filesystem::remove_all(cache_dir);
  double cached_first_ms = 0.0;
  double cache_speedup = 0.0;
  {
    driver::CompileCache cache(cache_dir);
    const std::uint64_t cache_key =
        driver::CompileCache::key(w.net, w.model, serve_cfg);
    if (!cache.store(cache_key, program)) {
      std::fprintf(stderr, "FAIL: compile cache store failed\n");
      return 1;
    }
    t0 = std::chrono::steady_clock::now();
    std::optional<driver::NetworkProgram> cached =
        cache.load(cache_key, w.net, serve_cfg);
    cached_first_ms = seconds_since(t0) * 1e3;
    if (!cached) {
      std::fprintf(stderr, "FAIL: compile cache load missed its own store\n");
      return 1;
    }
    if (cached->ddr_image() != program.ddr_image()) {
      std::fprintf(stderr, "FAIL: cached program DDR image differs\n");
      return 1;
    }
    const std::vector<driver::NetworkRun> cached_run =
        warm_runtime.serve(*cached, {w.inputs.front()});
    if (cached_run.front().logits != reference.front().logits) {
      std::fprintf(stderr, "FAIL: cached program serve diverged\n");
      return 1;
    }
    cache_speedup = compile_ms / cached_first_ms;
    std::printf("  compile  %8.2f ms (in process)\n", compile_ms);
    std::printf("  cached   %8.2f ms (deserialize, %0.1fx faster)\n",
                cached_first_ms, cache_speedup);
  }
  std::filesystem::remove_all(cache_dir);
  if (cache_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: cached cold start only %.1fx faster than compiling "
                 "(need >= 5x)\n",
                 cache_speedup);
    return 1;
  }

  // --- warm-path allocations (TSCA_COUNT_ALLOCS builds only) --------------
  // Serving through the real Server with the hooked allocator: steady-state
  // requests must stay within the small documented per-request constant
  // (-1.0 in the JSON = build without the hooks, nothing measured).
  double warm_allocs_per_request = -1.0;
  if (obs::alloc_counting_enabled()) {
    serve::Server alloc_server(program, {.workers = 1});
    const auto serve_one = [&] {
      serve::Response r = alloc_server.submit(w.inputs.front()).get();
      if (r.status != serve::Status::kOk) std::abort();
    };
    for (int i = 0; i < 9; ++i) serve_one();  // reach steady state
    constexpr int kAllocRequests = 64;
    obs::reset_warm_alloc_stats();
    {
      const obs::WarmPathGuard guard;
      for (int i = 0; i < kAllocRequests; ++i) serve_one();
    }
    warm_allocs_per_request =
        static_cast<double>(obs::warm_alloc_stats().count) / kAllocRequests;
    std::printf("\nwarm-path allocations: %.1f per request (measured)\n",
                warm_allocs_per_request);
  }

  FILE* out = std::fopen("BENCH_sim_throughput.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_sim_throughput.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(out, "  \"network\": \"vgg16_scaled_32px_div8\",\n");
  std::fprintf(out, "  \"mode\": \"cycle\",\n");
  std::fprintf(out, "  \"images\": %d,\n", kImages);
  std::fprintf(out, "  \"host_cpus\": %u,\n", cpus);
  std::fprintf(out, "  \"deterministic\": true,\n");
  std::fprintf(out, "  \"serial_serve_s\": %.4f,\n", serial_serve_s);
  std::fprintf(out, "  \"serve\": [\n");
  for (std::size_t i = 0; i < serve_rows.size(); ++i) {
    const Measurement& m = serve_rows[i];
    std::fprintf(out,
                 "    {\"workers\": %d, \"wall_s\": %.4f, "
                 "\"images_per_s\": %.3f, \"sim_cycles_per_s\": %.0f, "
                 "\"speedup_vs_1w\": %.3f, "
                 "\"request_wall_us\": {\"p50\": %lld, \"p95\": %lld, "
                 "\"max\": %lld}}%s\n",
                 m.workers, m.wall_s, m.units / m.wall_s,
                 static_cast<double>(m.sim_cycles) / m.wall_s,
                 serve_rows.front().wall_s / m.wall_s,
                 static_cast<long long>(m.lat_p50_us),
                 static_cast<long long>(m.lat_p95_us),
                 static_cast<long long>(m.lat_max_us),
                 i + 1 < serve_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"serve_scaling\": {\"speedup_4w_vs_1w\": %.3f, "
               "\"verdict\": \"%s\"},\n",
               speedup4, serve_verdict);
  std::fprintf(out,
               "  \"program\": {\"compile_ms\": %.3f, "
               "\"cold_first_request_ms\": %.3f, "
               "\"warm_request_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
               "\"p99\": %.3f},\n",
               compile_ms, cold_first_ms, warm_p50_ms, warm_p95_ms,
               warm_p99_ms);
  std::fprintf(out,
               "    \"cache\": {\"cached_first_ms\": %.3f, "
               "\"speedup_vs_compile\": %.1f},\n"
               "    \"warm_allocs_per_request\": %.1f},\n",
               cached_first_ms, cache_speedup, warm_allocs_per_request);
  write_fast_json(out, fast);
  std::fprintf(out, ",\n");
  std::fprintf(out, "  \"serial_stripe_s\": %.4f,\n", serial_stripe_s);
  std::fprintf(out, "  \"stripes\": [\n");
  for (std::size_t i = 0; i < stripe_rows.size(); ++i) {
    const Measurement& m = stripe_rows[i];
    std::fprintf(out,
                 "    {\"workers\": %d, \"wall_s\": %.4f, "
                 "\"sim_cycles_per_s\": %.0f, \"speedup_vs_1w\": %.3f}%s\n",
                 m.workers, m.wall_s,
                 static_cast<double>(m.sim_cycles) / m.wall_s,
                 stripe_rows.front().wall_s / m.wall_s,
                 i + 1 < stripe_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_sim_throughput.json\n");
  if (!fast.ok) return 1;
  if (fast.speedup_p50 < kRequiredSpeedup) {
    std::fprintf(stderr, "FAIL: fast speedup %.1fx below %.0fx\n",
                 fast.speedup_p50, kRequiredSpeedup);
    return 1;
  }
  if (const int rc = check_widen_gate(fast, kRequiredWidenSpeedup); rc != 0)
    return rc;
  // Pool speedup is an environment property: it needs >= 4 cores to show up.
  // Determinism failures returned 1 above; a missing speedup on a capable
  // host is the only other failure mode.
  return (cpus < 4 || speedup4 >= 2.0) ? 0 : 2;
}
