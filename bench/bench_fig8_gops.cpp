// Fig. 8 — Absolute effective GOPS across accelerator variants for VGG-16.
//
// "Effective" GOPS counts zero-skipped multiply-accumulates as performed
// (dense MACs / elapsed time); peak is the best single convolutional layer,
// average is the MAC-weighted whole-network number (conv + interleaved
// pad/pool work).  Operations are counted as MACs, matching the paper's
// accounting (512 MACs/cycle × 120 MHz = 61.4 GOPS ideal for 512-opt).
#include <cstdio>

#include "driver/study.hpp"

using namespace tsca;

namespace {

struct PaperRow {
  const char* variant;
  double avg;
  double peak;
};

// Values read off Fig. 8 for the 512-opt variant (stated in the text) and
// approximate bar heights for the others.
constexpr PaperRow kPaperUnpruned[] = {
    {"16-unopt", 0.8, 0.9},
    {"256-unopt", 13.0, 14.0},
    {"256-opt", 35.0, 38.0},
    {"512-opt", 39.5, 61.0},
};
constexpr PaperRow kPaperPruned[] = {
    {"16-unopt", 1.2, 2.0},
    {"256-unopt", 17.0, 31.0},
    {"256-opt", 47.0, 85.0},
    {"512-opt", 53.3, 138.0},
};

}  // namespace

int main() {
  std::printf("Fig. 8 — effective GOPS per variant, VGG-16 (224x224)\n\n");
  const driver::StudyNetwork unpruned =
      driver::build_study_network({.pruned = false});
  const driver::StudyNetwork pruned =
      driver::build_study_network({.pruned = true});

  std::printf("%-14s %8s %8s %8s %8s | %8s %8s\n", "variant", "avg",
              "avg(net)", "avg(dma)", "peak", "pap-avg", "pap-pk");
  std::printf("  (avg = conv only; net = +pad/pool; dma = +serialized DMA —\n"
              "   the paper's measurement lies between net and dma)\n");
  for (int model = 0; model < 2; ++model) {
    const driver::StudyNetwork& net = model == 0 ? unpruned : pruned;
    const PaperRow* paper = model == 0 ? kPaperUnpruned : kPaperPruned;
    for (std::size_t v = 0; v < core::ArchConfig::paper_variants().size();
         ++v) {
      const core::ArchConfig& cfg = core::ArchConfig::paper_variants()[v];
      const driver::VariantResult r = driver::evaluate_variant(cfg, net);
      const std::string label = cfg.name + (model == 1 ? "-pr" : "");
      std::printf("%-14s %8.1f %8.1f %8.1f %8.1f | %8.1f %8.1f\n",
                  label.c_str(), r.mean_gops, r.network_gops,
                  r.network_gops_dma_serial, r.best_gops, paper[v].avg,
                  paper[v].peak);
    }
    std::printf("\n");
  }

  // The paper's headline claims.
  const driver::VariantResult u512 = driver::evaluate_variant(
      core::ArchConfig::k512_opt(), unpruned);
  const driver::VariantResult p512 = driver::evaluate_variant(
      core::ArchConfig::k512_opt(), pruned);
  std::printf("512-opt pruning speedup: avg %.2fx (paper ~1.3x), "
              "peak %.2fx (paper ~2.2x)\n",
              p512.network_gops / u512.network_gops,
              p512.best_gops / u512.best_gops);
  std::printf("Peak effective performance: %.0f GOPS (paper: 138 GOPS)\n",
              p512.best_gops);
  return 0;
}
