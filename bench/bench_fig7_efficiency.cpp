// Fig. 7 — Efficiency of each accelerator variant for VGG-16 inference.
//
// Efficiency = ideal throughput / modelled throughput per convolutional
// layer; "best"/"worst" are the extreme single layers, "mean" is the
// MAC-weighted average.  Pruned-model rows ("-pr") exceed 100 % because
// zero-skipping avoids multiply-accumulates the ideal assumes.
//
// Cycle counts come from the transaction-level performance model, which
// tests hold to within a few percent of the cycle-accurate engine
// (tests/test_perf_model.cpp); pass --simulate to re-measure a spot-check
// layer on the cycle engine here as well.
#include <cstdio>
#include <cstring>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "driver/study.hpp"

using namespace tsca;

namespace {

void spot_check_cycle_engine(const driver::StudyNetwork& net) {
  // Re-measure conv4_1 (deep-ish, still quick) on the cycle-accurate engine
  // and compare with the model.
  for (const driver::StudyLayer& layer : net.layers) {
    if (layer.name != "conv4_1") continue;
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    core::Accelerator acc(cfg);
    sim::Dram dram(256u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    Rng rng(5);
    nn::FeatureMapI8 input(layer.padded_in);
    for (std::size_t i = 0; i < input.size(); ++i)
      input.data()[i] = static_cast<std::int8_t>(rng.next_int(-30, 30));
    driver::LayerRun run;
    const driver::ConvProgram program = driver::compile_study_conv(cfg, layer);
    runtime.run_conv(pack::to_tiled(input), program, run);
    const driver::PerfModel model(cfg);
    const driver::ConvPerf perf = model.conv_layer(layer.padded_in,
                                                   layer.packed);
    std::printf(
        "[spot check] %s/%s: cycle engine %llu cycles, perf model %lld "
        "(%.2f%% error)\n\n",
        net.model_name.c_str(), layer.name.c_str(),
        static_cast<unsigned long long>(run.cycles),
        static_cast<long long>(perf.cycles),
        100.0 * (static_cast<double>(perf.cycles) -
                 static_cast<double>(run.cycles)) /
            static_cast<double>(run.cycles));
    return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool simulate = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--simulate") == 0) simulate = true;

  std::printf("Fig. 7 — efficiency per variant, VGG-16 (224x224)\n\n");
  const driver::StudyNetwork unpruned =
      driver::build_study_network({.pruned = false});
  const driver::StudyNetwork pruned =
      driver::build_study_network({.pruned = true});

  if (simulate) spot_check_cycle_engine(unpruned);

  std::printf("%-14s %8s %8s %8s   (ideal = 1.00, dotted line)\n", "variant",
              "best", "worst", "mean");
  for (const driver::StudyNetwork* net : {&unpruned, &pruned}) {
    for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants()) {
      const driver::VariantResult r = driver::evaluate_variant(cfg, *net);
      const std::string label =
          cfg.name + (net == &pruned ? "-pr" : "");
      std::printf("%-14s %7.1f%% %7.1f%% %7.1f%%\n", label.c_str(),
                  100.0 * r.best_efficiency, 100.0 * r.worst_efficiency,
                  100.0 * r.mean_efficiency);
    }
    std::printf("\n");
  }

  std::printf("Per-layer efficiency, 256-opt:\n%-10s %10s %10s %8s %8s\n",
              "layer", "ideal Mcyc", "model Mcyc", "unpr", "pruned");
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  for (std::size_t i = 0; i < unpruned.layers.size(); ++i) {
    const driver::PerfModel model(cfg);
    const driver::ConvPerf u = model.conv_layer(unpruned.layers[i].padded_in,
                                                unpruned.layers[i].packed);
    const driver::ConvPerf p = model.conv_layer(pruned.layers[i].padded_in,
                                                pruned.layers[i].packed);
    std::printf("%-10s %10.2f %10.2f %7.1f%% %7.1f%%\n",
                unpruned.layers[i].name.c_str(), u.ideal_cycles / 1e6,
                u.cycles / 1e6, 100.0 * u.efficiency(),
                100.0 * p.efficiency());
  }
  std::printf(
      "\nPaper reference: unpruned layers usually within ~10%% of ideal;\n"
      "pruned layers exceed 100%% (zero-skipping); deeper layers are worse\n"
      "(weight-unpack overhead grows with the weight:FM data ratio).\n");
  return 0;
}
