// Autotuner + heterogeneous-fleet benchmark (`src/tune/` end to end).
//
// Runs the seeded design-space search against the validated perf/area/power
// models, then plans and simulates a deadline-aware fleet from the frontier,
// and gates the three contract properties the tune subsystem promises:
//
//   1. frontier_covers_paper — every one of the paper's four variants is
//      weakly dominated by a Pareto-frontier point (the search never does
//      worse than the hand-picked designs; in practice it strictly
//      dominates all four).
//   2. search_reproducible   — two searches with the same seed serialize to
//      byte-identical JSON, independent of worker scheduling.
//   3. hetero_beats_homog    — the slack-routed heterogeneous fleet beats
//      the best homogeneous fleet under the same area/power budget on
//      goodput at 2x and 3x offered load.
//
// The fleet scenario is derived from the frontier itself (deadlines and
// rates are multiples of the fastest variant's service time), so the gate
// self-calibrates if the models are retuned.  Everything is deterministic:
// fixed search seed, seeded Poisson arrivals, integer-microsecond event
// simulation.
//
// Writes a machine-readable summary (default BENCH_autotune.json) and exits
// nonzero if any gate fails.
//
// usage: bench_autotune [--quick] [--out FILE]
//   --quick  small search space + small study network (tier-1 smoke)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/study.hpp"
#include "obs/metrics.hpp"
#include "tune/autotuner.hpp"
#include "tune/fleet.hpp"

namespace {

using tsca::tune::CandidateEval;

struct Scenario {
  tsca::tune::TrafficModel traffic;
  tsca::tune::FleetBudget budget;
};

// Builds the two-class fleet scenario relative to the frontier's fastest
// variant F (by GOPS) and runner-up G:
//   strict — per-request work = one full network, deadline the geometric
//            mean of F's and G's service times, so F is the only variant
//            that can serve it no matter how the frontier is scaled (the
//            small quick-mode network compresses the F/G gap; a fixed
//            multiple of F's service time would not separate them).
//            Rate: 0.225x one F instance's capacity.
//   bulk   — a quarter of the work, deadline 70x F's service time, rate
//            0.56x the bulk-only capacity of a budget-filling homogeneous F
//            fleet — so 2x load overloads the homogeneous baseline while a
//            well-mixed fleet still has headroom.
// The budget (2.6x F's ALMs, 3.1x F's watts) fits two F instances with
// awkward leftover space a heterogeneous mix can use and a homogeneous one
// cannot.
Scenario make_scenario(const std::vector<CandidateEval>& frontier,
                       std::int64_t network_macs, bool quick) {
  const CandidateEval* fastest = &frontier.front();
  for (const CandidateEval& e : frontier)
    if (e.gops > fastest->gops) fastest = &e;
  const CandidateEval* runner_up = nullptr;
  for (const CandidateEval& e : frontier)
    if (e.gops < fastest->gops &&
        (runner_up == nullptr || e.gops > runner_up->gops))
      runner_up = &e;

  tsca::tune::TrafficClass strict{"strict", 0.0, 0, network_macs};
  tsca::tune::TrafficClass bulk{"bulk", 0.0, 0, network_macs / 4};
  const std::int64_t tf_strict = tsca::tune::service_us(*fastest, strict);
  const std::int64_t tf_bulk = tsca::tune::service_us(*fastest, bulk);
  strict.deadline_us =
      runner_up == nullptr
          ? static_cast<std::int64_t>(1.42 * static_cast<double>(tf_strict))
          : std::max(tf_strict,
                     static_cast<std::int64_t>(std::sqrt(
                         static_cast<double>(tf_strict) *
                         static_cast<double>(tsca::tune::service_us(
                             *runner_up, strict)))));
  bulk.deadline_us = 70 * tf_bulk;

  Scenario s;
  s.budget.max_alms = static_cast<int>(2.6 * fastest->area_alms);
  s.budget.max_power_w = 3.1 * fastest->power.fpga_w();
  const int count_f =
      std::min(s.budget.max_alms / fastest->area_alms,
               static_cast<int>(s.budget.max_power_w / fastest->power.fpga_w()));
  const double bulk_capacity =
      static_cast<double>(count_f) * 1e6 / static_cast<double>(tf_bulk);
  bulk.rate_rps = 0.56 * bulk_capacity;
  strict.rate_rps = 0.225 * 1e6 / static_cast<double>(tf_strict);

  s.traffic.classes = {strict, bulk};
  s.traffic.window_s = quick ? 0.25 : 0.5;
  s.traffic.seed = 42;
  return s;
}

void write_plan_json(std::ostream& os,
                     const std::vector<CandidateEval>& frontier,
                     const tsca::tune::FleetPlan& plan) {
  os << "{\"groups\": [";
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    os << (g == 0 ? "" : ", ") << "{\"variant\": \""
       << frontier[plan.groups[g].candidate].config.name
       << "\", \"count\": " << plan.groups[g].count << "}";
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "], \"instances\": %d, \"alms\": %d, \"power_w\": %.2f, "
                "\"planned_rps\": %.0f, \"uncovered_rps\": %.0f}",
                plan.total_instances, plan.total_alms, plan.total_power_w,
                plan.planned_capacity_rps, plan.uncovered_rps);
  os << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_autotune.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  using tsca::driver::StudyOptions;
  namespace tune = tsca::tune;

  StudyOptions sopts;
  sopts.pruned = true;
  sopts.input_extent = quick ? 32 : 64;
  sopts.channel_divisor = quick ? 8 : 4;
  const tsca::driver::StudyNetwork net =
      tsca::driver::build_study_network(sopts);

  tsca::obs::MetricsRegistry metrics;
  tune::TuneOptions topts;
  topts.space = quick ? tune::SearchSpace::quick() : tune::SearchSpace{};
  topts.seed = 2017;
  topts.refine_rounds = quick ? 1 : 2;
  topts.mutations_per_point = quick ? 4 : 8;
  topts.metrics = &metrics;

  // --- search (twice: the second run feeds the reproducibility gate) ---
  const auto t0 = std::chrono::steady_clock::now();
  const tune::TuneResult run1 = tune::Autotuner(net, topts).run();
  const auto search_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  const tune::TuneResult run2 = tune::Autotuner(net, topts).run();

  std::ostringstream json1, json2;
  tune::write_result_json(json1, run1, /*include_evaluated=*/true);
  tune::write_result_json(json2, run2, /*include_evaluated=*/true);
  const bool gate_reproducible = json1.str() == json2.str();

  std::vector<CandidateEval> frontier;
  for (const std::size_t fi : run1.frontier)
    frontier.push_back(run1.evaluated[fi]);

  std::printf("search: %d considered, %d deduped, %d pruned, %zu evaluated, "
              "%zu-point frontier, %lld ms%s\n",
              run1.considered, run1.deduped, run1.pruned,
              run1.evaluated.size(), frontier.size(),
              static_cast<long long>(search_ms), quick ? " (quick)" : "");
  std::ostringstream table;
  tune::write_frontier_table(table, run1);
  std::fputs(table.str().c_str(), stdout);

  // --- paper-variant coverage ---
  struct Coverage {
    CandidateEval eval;
    std::string dominated_by;
    bool weak = false;
    bool strict = false;
  };
  std::vector<Coverage> coverage;
  bool gate_coverage = true;
  for (const tsca::core::ArchConfig& cfg :
       tsca::core::ArchConfig::paper_variants()) {
    Coverage c;
    c.eval = tune::evaluate_config(cfg, net, topts.device, topts.constraints);
    for (const CandidateEval& f : frontier) {
      if (!tune::weakly_dominates(f, c.eval)) continue;
      c.weak = true;
      c.dominated_by = f.config.name;
      c.strict = f.gops > c.eval.gops || f.gops_per_w > c.eval.gops_per_w ||
                 f.area_alms < c.eval.area_alms;
      if (c.strict) break;  // prefer reporting a strict dominator
    }
    gate_coverage = gate_coverage && c.weak;
    std::printf("paper %-12s %7.2f GOPS %6.2f GOPS/W %7d ALMs -> %s by %s\n",
                c.eval.config.name.c_str(), c.eval.gops, c.eval.gops_per_w,
                c.eval.area_alms,
                c.weak ? (c.strict ? "strictly dominated" : "matched")
                       : "NOT COVERED",
                c.weak ? c.dominated_by.c_str() : "-");
    coverage.push_back(std::move(c));
  }

  // --- fleet planning + routed simulation ---
  const Scenario sc =
      make_scenario(frontier, frontier.front().perf.total_macs, quick);
  const tune::FleetPlan hetero =
      tune::plan_fleet(frontier, sc.traffic, sc.budget, {.headroom = 2.0});
  const tune::FleetPlan homog =
      tune::plan_homogeneous(frontier, sc.traffic, sc.budget);

  std::printf("budget: %d ALMs, %.2f W | strict %.0f rps / %lld us | "
              "bulk %.0f rps / %lld us\n",
              sc.budget.max_alms, sc.budget.max_power_w,
              sc.traffic.classes[0].rate_rps,
              static_cast<long long>(sc.traffic.classes[0].deadline_us),
              sc.traffic.classes[1].rate_rps,
              static_cast<long long>(sc.traffic.classes[1].deadline_us));
  std::ostringstream plans;
  plans << "--- heterogeneous plan ---\n";
  tune::write_plan_table(plans, frontier, hetero);
  plans << "--- homogeneous plan ---\n";
  tune::write_plan_table(plans, frontier, homog);
  std::fputs(plans.str().c_str(), stdout);

  const bool plans_in_budget =
      hetero.total_alms <= sc.budget.max_alms &&
      hetero.total_power_w <= sc.budget.max_power_w &&
      homog.total_alms <= sc.budget.max_alms &&
      homog.total_power_w <= sc.budget.max_power_w &&
      hetero.total_instances > 0 && homog.total_instances > 0;

  struct LoadPoint {
    double mult = 0.0;
    tune::FleetReport hetero, homog, naive;
  };
  std::vector<LoadPoint> loads;
  bool gate_fleet = plans_in_budget;
  for (const double mult : {1.0, 2.0, 3.0}) {
    LoadPoint lp;
    lp.mult = mult;
    lp.hetero = tune::simulate_fleet(frontier, hetero, sc.traffic, mult);
    lp.homog = tune::simulate_fleet(frontier, homog, sc.traffic, mult);
    lp.naive = tune::simulate_fleet(frontier, hetero, sc.traffic, mult,
                                    {.slack_routing = false});
    std::printf("x%.1f load: hetero %8.0f rps (shed %5d, util %.2f) | "
                "homog %8.0f rps (shed %5d) | naive-route %8.0f rps "
                "(late %5d)\n",
                mult, lp.hetero.goodput_rps, lp.hetero.shed,
                lp.hetero.utilization, lp.homog.goodput_rps, lp.homog.shed,
                lp.naive.goodput_rps, lp.naive.late);
    if (mult >= 2.0)
      gate_fleet = gate_fleet && lp.hetero.goodput_rps > lp.homog.goodput_rps;
    loads.push_back(std::move(lp));
  }

  const bool pass = gate_coverage && gate_reproducible && gate_fleet;
  std::printf("gates: frontier_covers_paper=%s search_reproducible=%s "
              "hetero_beats_homog=%s -> %s\n",
              gate_coverage ? "pass" : "FAIL",
              gate_reproducible ? "pass" : "FAIL",
              gate_fleet ? "pass" : "FAIL", pass ? "PASS" : "FAIL");

  // --- summary JSON ---
  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"autotune\",\n  \"mode\": \""
     << (quick ? "quick" : "full") << "\",\n  \"workload\": {\"input_extent\": "
     << sopts.input_extent << ", \"channel_divisor\": " << sopts.channel_divisor
     << ", \"total_macs\": " << frontier.front().perf.total_macs << "},\n";
  os << "  \"search\": {\"seed\": " << topts.seed
     << ", \"considered\": " << run1.considered
     << ", \"deduped\": " << run1.deduped << ", \"pruned\": " << run1.pruned
     << ", \"evaluated\": " << run1.evaluated.size()
     << ", \"frontier_size\": " << run1.frontier.size()
     << ", \"wall_ms\": " << search_ms << ", \"configs_evaluated_counter\": "
     << metrics.counter("tune.configs_evaluated").value()
     << ", \"configs_pruned_counter\": "
     << metrics.counter("tune.configs_pruned").value() << "},\n";
  os << "  \"frontier\": [\n";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    os << "    ";
    tune::write_eval_json(os, frontier[i]);
    os << (i + 1 == frontier.size() ? "\n" : ",\n");
  }
  os << "  ],\n  \"paper_variants\": [\n";
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    const Coverage& c = coverage[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"gops\": %.3f, \"gops_per_w\": "
                  "%.3f, \"alms\": %d, \"dominated\": %s, \"strictly\": %s, "
                  "\"by\": \"%s\"}%s\n",
                  c.eval.config.name.c_str(), c.eval.gops, c.eval.gops_per_w,
                  c.eval.area_alms, c.weak ? "true" : "false",
                  c.strict ? "true" : "false", c.dominated_by.c_str(),
                  i + 1 == coverage.size() ? "" : ",");
    os << buf;
  }
  os << "  ],\n  \"fleet\": {\n    \"budget\": {\"max_alms\": "
     << sc.budget.max_alms << ", \"max_power_w\": ";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", sc.budget.max_power_w);
    os << buf;
  }
  os << "},\n    \"traffic\": [";
  for (std::size_t c = 0; c < sc.traffic.classes.size(); ++c) {
    const tune::TrafficClass& cls = sc.traffic.classes[c];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"class\": \"%s\", \"rate_rps\": %.0f, \"deadline_us\": "
                  "%lld, \"macs\": %lld}",
                  c == 0 ? "" : ", ", cls.name.c_str(), cls.rate_rps,
                  static_cast<long long>(cls.deadline_us),
                  static_cast<long long>(cls.macs));
    os << buf;
  }
  os << "],\n    \"hetero_plan\": ";
  write_plan_json(os, frontier, hetero);
  os << ",\n    \"homog_plan\": ";
  write_plan_json(os, frontier, homog);
  os << ",\n    \"loads\": [\n";
  for (std::size_t i = 0; i < loads.size(); ++i) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "      {\"multiplier\": %.1f,\n",
                  loads[i].mult);
    os << buf << "       \"hetero\": ";
    tune::write_fleet_report_json(os, loads[i].hetero);
    os << ",\n       \"homog\": ";
    tune::write_fleet_report_json(os, loads[i].homog);
    os << ",\n       \"hetero_naive_route\": ";
    tune::write_fleet_report_json(os, loads[i].naive);
    os << "}" << (i + 1 == loads.size() ? "\n" : ",\n");
  }
  os << "    ]\n  },\n  \"gates\": {\"frontier_covers_paper\": "
     << (gate_coverage ? "true" : "false") << ", \"search_reproducible\": "
     << (gate_reproducible ? "true" : "false")
     << ", \"hetero_beats_homog\": " << (gate_fleet ? "true" : "false")
     << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
  os.close();
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
