// Table I — power consumption and GOPS/W.
//
// Substitution (no board to instrument): the activity-based power model of
// model/power.hpp, calibrated to the paper's 256-opt measurement, replaces
// the power meter.  Peak power is measured "while running the accelerator on
// the worst-case VGG-16 layer" (peak activity); GOPS/W uses the pruned
// model's average effective GOPS, GOPS/W(peak) the best layer's.
#include <cstdio>

#include "driver/study.hpp"
#include "model/power.hpp"

using namespace tsca;

int main() {
  std::printf("Table I — power consumption (model)\n\n");
  const model::FpgaDevice device = model::FpgaDevice::arria10_sx660();
  const driver::StudyNetwork pruned =
      driver::build_study_network({.pruned = true});

  struct PaperRow {
    const char* name;
    double fpga_peak_mw;
    double fpga_dynamic_mw;
    double board_mw;
    double gops_w;
    double gops_w_peak;
  };
  const PaperRow paper[] = {
      {"256-opt", 2300, 500, 9500, 13.4, 37.4},
      {"512-opt", 3300, 800, 10800, 13.9, 41.8},
  };

  std::printf("%-22s %10s %10s %8s %12s\n", "accelerator variant",
              "peak power", "(dynamic)", "GOPS/W", "GOPS/W(peak)");
  int row = 0;
  for (const core::ArchConfig& cfg :
       {core::ArchConfig::k256_opt(), core::ArchConfig::k512_opt()}) {
    const model::AreaReport area = model::estimate_area(cfg);
    const model::PowerEstimate power = model::estimate_power(
        cfg, area, model::Activity::peak(cfg), device);
    const driver::VariantResult perf = driver::evaluate_variant(cfg, pruned);

    std::printf("%-22s %7.0f mW %7.0f mW %8.1f %12.1f   (FPGA)\n",
                cfg.name.c_str(), power.fpga_w() * 1e3, power.dynamic_w * 1e3,
                perf.network_gops / power.fpga_w(),
                perf.best_gops / power.fpga_w());
    std::printf("%-22s %7.0f mW %10s %8.1f %12.1f   (Board)\n", "",
                power.board_w * 1e3, "", perf.network_gops / power.board_w,
                perf.best_gops / power.board_w);
    std::printf("  paper: FPGA %4.0f mW (%3.0f dyn) %5.1f / %4.1f GOPS/W; "
                "board %5.0f mW\n",
                paper[row].fpga_peak_mw, paper[row].fpga_dynamic_mw,
                paper[row].gops_w, paper[row].gops_w_peak,
                paper[row].board_mw);
    ++row;
  }
  std::printf("\n(dynamic power parenthesized, as in the paper)\n");
  return 0;
}
