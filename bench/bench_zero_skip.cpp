// Zero-skip ablations (paper §III-B.1, §V and the stated future work).
//
//   1. Sparsity sweep: uniform weight density 100 % → 5 %; the cycle-count
//      reduction saturates at the 4-cycle IFM-load floor, i.e. at most
//      (16-4)/16 = 75 % fewer cycles than dense — the paper's bound.
//   2. Filter grouping: sorting filters by non-zero count before grouping
//      (the paper's proposed future work) vs natural order — fewer bubbles.
//   3. Empty-tile-group skipping (library extension, off in the paper):
//      skipping (channel, weight-tile) pairs whose 4 filters are all zero
//      also avoids the IFM loads, breaking the 75 % bound at high sparsity.
#include <cstdio>

#include "driver/perf_model.hpp"
#include "driver/study.hpp"
#include "pack/filter_group.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

using namespace tsca;

namespace {

nn::FilterBankI8 synthetic_filters(nn::FilterShape shape, double density,
                                   Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(
          rng.next_bool() ? rng.next_int(1, 30) : rng.next_int(-30, -1));
  return bank;
}

}  // namespace

int main() {
  const nn::FmShape fm{128, 30, 30};  // conv3-sized test layer (padded)
  const nn::FilterShape fs{128, 128, 3, 3};

  std::printf("Zero-skip sparsity sweep (conv3-like layer, 256-opt)\n");
  std::printf("%-9s %12s %10s %10s %12s\n", "density", "cycles", "speedup",
              "eff", "skip-empty");
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  core::ArchConfig cfg_skip = cfg;
  cfg_skip.skip_empty_tile_groups = true;
  const driver::PerfModel model(cfg);
  const driver::PerfModel model_skip(cfg_skip);

  std::int64_t dense_cycles = 0;
  for (const double density :
       {1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.02}) {
    Rng rng(0xACC ^ static_cast<std::uint64_t>(density * 1000));
    const pack::PackedFilters packed =
        pack::pack_filters(synthetic_filters(fs, density, rng));
    const driver::ConvPerf perf = model.conv_layer(fm, packed);
    const driver::ConvPerf perf_skip = model_skip.conv_layer(fm, packed);
    if (density == 1.0) dense_cycles = perf.cycles;
    std::printf("%8.0f%% %12lld %9.2fx %9.1f%% %11.2fx\n", density * 100,
                static_cast<long long>(perf.cycles),
                static_cast<double>(dense_cycles) /
                    static_cast<double>(perf.cycles),
                100.0 * perf.efficiency(),
                static_cast<double>(dense_cycles) /
                    static_cast<double>(perf_skip.cycles));
  }
  std::printf(
      "Bound for 3x3 kernels: dense 9 weights/tile vs the 4-cycle IFM floor\n"
      "= %.2fx — precisely the paper's observed ~2.2x peak gain.  The\n"
      "paper's 75%% (4.00x) bound applies to full 4x4 weight tiles; skipping\n"
      "all-zero tile groups (library extension) breaks even that bound.\n\n",
      9.0 / 4.0);

  std::printf("Filter grouping ablation (paper future work)\n");
  std::printf("%-9s %16s %16s %9s\n", "density", "natural (cyc)",
              "sorted (cyc)", "gain");
  for (const double density : {0.5, 0.3, 0.2, 0.1}) {
    Rng rng(0xF1F ^ static_cast<std::uint64_t>(density * 1000));
    // Heterogeneous sparsity across filters exaggerates imbalance: half the
    // filters at `density`, half much denser.
    nn::FilterBankI8 bank(fs);
    for (int oc = 0; oc < fs.oc; ++oc) {
      const double d = (oc % 2 == 0) ? density : std::min(1.0, density * 3);
      for (int ic = 0; ic < fs.ic; ++ic)
        for (int ky = 0; ky < fs.kh; ++ky)
          for (int kx = 0; kx < fs.kw; ++kx)
            if (rng.next_double() < d)
              bank.at(oc, ic, ky, kx) = static_cast<std::int8_t>(
                  rng.next_bool() ? rng.next_int(1, 30)
                                  : rng.next_int(-30, -1));
    }
    const pack::PackedFilters packed = pack::pack_filters(bank);
    const std::vector<int> natural =
        pack::group_filters(packed, pack::GroupPolicy::kIdentity);
    const std::vector<int> sorted =
        pack::group_filters(packed, pack::GroupPolicy::kSortByNnz);
    const std::int64_t cyc_nat =
        pack::grouped_weight_cycles(packed, natural);
    const std::int64_t cyc_sort =
        pack::grouped_weight_cycles(packed, sorted);
    std::printf("%8.0f%% %16lld %16lld %8.1f%%\n", density * 100,
                static_cast<long long>(cyc_nat),
                static_cast<long long>(cyc_sort),
                100.0 * (1.0 - static_cast<double>(cyc_sort) /
                                   static_cast<double>(cyc_nat)));
  }

  std::printf("\nVGG-16 (pruned, Han profile) with vs without grouping:\n");
  const driver::StudyNetwork pruned =
      driver::build_study_network({.pruned = true});
  std::int64_t nat_total = 0;
  std::int64_t sort_total = 0;
  for (const driver::StudyLayer& layer : pruned.layers) {
    nat_total += pack::grouped_weight_cycles(
        layer.packed,
        pack::group_filters(layer.packed, pack::GroupPolicy::kIdentity));
    sort_total += pack::grouped_weight_cycles(
        layer.packed,
        pack::group_filters(layer.packed, pack::GroupPolicy::kSortByNnz));
  }
  std::printf("  weight-application cycles: natural %lld, sorted %lld "
              "(%.1f%% fewer bubbles)\n",
              static_cast<long long>(nat_total),
              static_cast<long long>(sort_total),
              100.0 * (1.0 - static_cast<double>(sort_total) /
                                 static_cast<double>(nat_total)));
  std::printf(
      "  (magnitude pruning of i.i.d. synthetic weights balances filters\n"
      "   naturally; the heterogeneous sweep above shows the gain when\n"
      "   real-world per-filter sparsity varies.)\n");
  return 0;
}
