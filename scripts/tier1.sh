#!/usr/bin/env sh
# Tier-1 gate: build + full test suite, in the default configuration, again
# instrumented with AddressSanitizer + UBSan, again with ThreadSanitizer
# over the concurrency-sensitive suites (worker pool + shared NetworkProgram),
# and again with -DTSCA_SIMD=OFF so the scalar fallback of the fast path is
# held to the same bit-exactness as the vectorized build.
# Run from the repo root:
#
#   ./scripts/tier1.sh            # all configurations
#   ./scripts/tier1.sh default    # just the plain build
#   ./scripts/tier1.sh sanitize   # just the asan/ubsan build
#   ./scripts/tier1.sh tsan       # just the tsan pool/program build
#   ./scripts/tier1.sh scalar     # just the TSCA_SIMD=OFF equivalence build
#   ./scripts/tier1.sh backends   # TSCA_FORCE_BACKEND equivalence matrix
#   ./scripts/tier1.sh alloc      # TSCA_COUNT_ALLOCS warm-path alloc bound
#
# Exits non-zero on the first failing build or test.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
which=${1:-all}
jobs=$(nproc 2>/dev/null || echo 4)

run_config() {
  build_dir=$1
  shift
  echo "=== ${build_dir} ($*) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" "$@"
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${root}/${build_dir}" --output-on-failure -j "${jobs}"
  # Serving-scheduler smoke: quick offered-load point; its overload gate
  # (batched beats batch-1 FIFO on p99 and goodput) and mixed-priority gate
  # (the high SLO class stays insulated at 3x load over the socket path)
  # must both hold.
  echo "=== ${build_dir} bench_serve_scheduler --quick ==="
  (cd "${root}/${build_dir}" && ./bench/bench_serve_scheduler --quick)
  # Autotuner smoke: small search space + small study network; its gates
  # (frontier weakly dominates the paper variants, seeded search is
  # byte-reproducible, the slack-routed heterogeneous fleet beats the
  # homogeneous equal-budget baseline at >=2x load) must all hold.
  echo "=== ${build_dir} bench_autotune --quick ==="
  (cd "${root}/${build_dir}" &&
    ./bench/bench_autotune --quick --out /tmp/BENCH_autotune_quick.json)
}

# ThreadSanitizer build, restricted to the suites that exercise cross-thread
# sharing: the accelerator pool, the pooled runtime, the shared
# NetworkProgram serving tests, the serving subsystem (queue, scheduler,
# server, load generator), the socket front-end (per-connection
# reader/writer threads against the admission queue, on ephemeral loopback
# ports), the stripe-parallel fast path (FastStripeWorkers fans
# conv/pool stripes out across pool workers), the multi-model
# ProgramRegistry (concurrent acquire/evict/recompile), the zoo nets
# (slot-threaded batch execution), and the autotuner (parallel candidate
# evaluation across pool workers writing generation-order slots, plus the
# fleet planner/router it feeds).
# (Full-suite TSan is tier 2 — too slow.)
run_tsan() {
  build_dir=build-tsan
  echo "=== ${build_dir} (-DTSCA_SANITIZE=thread, Pool|Program|Serve|FastStripe|Net|Registry|Zoo|Tune|Fleet tests) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" -DTSCA_SANITIZE=thread
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${root}/${build_dir}" --output-on-failure -j "${jobs}" \
    -R 'Pool|Program|Serve|FastStripe|NetProtocol|NetServe|Registry|Zoo|Tune|Fleet'
}

# Forced-backend matrix: the equivalence suites re-run with
# TSCA_FORCE_BACKEND pinning each SIMD backend in turn — scalar and sse2
# unconditionally, avx2/avx512 when the host CPU advertises them (the forced
# selection fails hard on an unsupported host, so the matrix only asks for
# what can actually run).  Uses the default build.
run_backends() {
  build_dir=build
  cmake -B "${root}/${build_dir}" -S "${root}"
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  backends="scalar sse2"
  cpuflags=$(grep -m1 '^flags' /proc/cpuinfo 2>/dev/null || echo "")
  case " ${cpuflags} " in *" avx2 "*) backends="${backends} avx2" ;; esac
  case " ${cpuflags} " in
    *" avx512f "*)
      case " ${cpuflags} " in *" avx512bw "*) backends="${backends} avx512" ;;
      esac ;;
  esac
  for be in ${backends}; do
    echo "=== ${build_dir} (TSCA_FORCE_BACKEND=${be}, equivalence suites) ==="
    TSCA_FORCE_BACKEND="${be}" \
      ctest --test-dir "${root}/${build_dir}" --output-on-failure \
      -j "${jobs}" -R 'EngineEquivalence|SimdBackends|FastStripe|NetworkE2E'
  done
}

# Allocation-counting build: operator new/delete hooked (TSCA_COUNT_ALLOCS)
# so the zero-allocation warm path is measured, not assumed.  Runs the
# warm-alloc bound test plus the compile-cache and serving suites under the
# hooked allocator (the hooks themselves must not perturb correctness).
run_alloc() {
  build_dir=build-alloc
  echo "=== ${build_dir} (-DTSCA_COUNT_ALLOCS=ON, WarmAlloc|CompileCache|Serve suites) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" -DTSCA_COUNT_ALLOCS=ON
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${root}/${build_dir}" --output-on-failure -j "${jobs}" \
    -R 'WarmAlloc|CompileCache|Serve|Registry'
}

# Scalar fast path: the SIMD wrapper compiled with its portable fallback
# (-DTSCA_SIMD=OFF), run over the suites that compare the fast path against
# the cycle engine and the int8 reference bit-for-bit.  Catches any case
# where the vector lanes and the scalar loop could disagree.
run_scalar() {
  build_dir=build-scalar
  echo "=== ${build_dir} (-DTSCA_SIMD=OFF, equivalence suites) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" -DTSCA_SIMD=OFF
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${root}/${build_dir}" --output-on-failure -j "${jobs}" \
    -R 'EngineEquivalence|PerfModelDrift|ConvMatrix|Ternary|NetworkE2E|Fastpath|Registry|Zoo'
}

case "${which}" in
  default) run_config build ;;
  sanitize)
    run_config build-sanitize -DTSCA_SANITIZE=address,undefined ;;
  tsan) run_tsan ;;
  scalar) run_scalar ;;
  backends) run_backends ;;
  alloc) run_alloc ;;
  all)
    run_config build
    run_config build-sanitize -DTSCA_SANITIZE=address,undefined
    run_tsan
    run_scalar
    run_backends
    run_alloc ;;
  *)
    echo "usage: $0 [default|sanitize|tsan|scalar|backends|alloc|all]" >&2
    exit 2 ;;
esac
echo "tier1: all green"
