#!/usr/bin/env sh
# Tier-1 gate: build + full test suite, in the default configuration and
# again instrumented with AddressSanitizer + UBSan.  Run from the repo root:
#
#   ./scripts/tier1.sh            # both configurations
#   ./scripts/tier1.sh default    # just the plain build
#   ./scripts/tier1.sh sanitize   # just the asan/ubsan build
#
# Exits non-zero on the first failing build or test.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
which=${1:-all}
jobs=$(nproc 2>/dev/null || echo 4)

run_config() {
  build_dir=$1
  shift
  echo "=== ${build_dir} ($*) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" "$@"
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  ctest --test-dir "${root}/${build_dir}" --output-on-failure -j "${jobs}"
}

case "${which}" in
  default) run_config build ;;
  sanitize)
    run_config build-sanitize -DTSCA_SANITIZE=address,undefined ;;
  all)
    run_config build
    run_config build-sanitize -DTSCA_SANITIZE=address,undefined ;;
  *)
    echo "usage: $0 [default|sanitize|all]" >&2
    exit 2 ;;
esac
echo "tier1: all green"
