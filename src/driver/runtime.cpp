#include "driver/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/kernels.hpp"
#include "driver/perf_model.hpp"
#include "driver/stripe_exec.hpp"

namespace tsca::driver {

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kCycle:
      return "cycle";
    case ExecMode::kThread:
      return "thread";
    case ExecMode::kFast:
      return "fast";
  }
  return "?";
}

namespace {

// Fast-path artifacts of a striped conv layer.  compile_conv fills them at
// compile time; hand-built ConvPrograms (tests) fall back to decoding and
// predicting here.
struct FastConvArtifacts {
  core::FastConvWeights local;  // only filled when conv.fastw is empty
  std::uint64_t cycles = 0;
  core::CounterSnapshot counters;
};

FastConvArtifacts fast_conv_artifacts(const core::ArchConfig& cfg,
                                      const ConvProgram& conv) {
  FastConvArtifacts art;
  if (!conv.fastw.decoded())
    art.local =
        decode_fast_weights(conv.wimg, conv.plan.in_shape.c, conv.plan.kernel);
  if (conv.predicted_cycles != 0) {
    art.cycles = conv.predicted_cycles;
    art.counters = conv.predicted;
  } else {
    const ConvPerf perf = PerfModel(cfg).conv_plan_perf(conv.plan, conv.wimg);
    art.cycles = static_cast<std::uint64_t>(perf.cycles);
    art.counters.macs_performed = perf.macs_performed;
    art.counters.weight_cmds = perf.weight_cmds;
    art.counters.weight_bubbles = perf.weight_bubbles;
    art.counters.conv_instrs = perf.instructions;
    art.counters.positions = perf.positions;
  }
  return art;
}

// The fast conv executor runs the whole layer as one output-stationary pass;
// that is exact only because every stripe's halo is precisely the rows a
// global pass would read (so stripe-local out-of-grid zeros coincide with
// global out-of-grid zeros).  Assert the planner invariant that guarantees it.
void check_fast_stripe_invariant(const ConvPlan& plan) {
  const int in_rows_total = pack::tiles_for(plan.in_shape.h);
  const int halo =
      (plan.kernel + pack::kTileDim - 1) / pack::kTileDim;  // weight tile rows
  for (const ConvStripe& stripe : plan.stripes) {
    TSCA_CHECK(stripe.in_tile_row0 == stripe.otile_row0,
               "stripe halo starts above its output rows");
    TSCA_CHECK(stripe.in_tile_rows ==
                   std::min(stripe.otile_rows + halo,
                            in_rows_total - stripe.in_tile_row0),
               "stripe halo differs from the global window footprint");
  }
}

}  // namespace

std::vector<std::uint8_t> bank_stripe_bytes(const pack::TiledFm& fm, int lane,
                                            int lanes, int row0, int rows) {
  TSCA_CHECK(row0 >= 0 && rows >= 0 && row0 + rows <= fm.tiles_y(),
             "stripe rows [" << row0 << ", " << row0 + rows << ") of "
                             << fm.tiles_y());
  std::vector<std::uint8_t> bytes;
  for (int c = lane; c < fm.channels(); c += lanes) {
    for (int r = row0; r < row0 + rows; ++r) {
      for (int x = 0; x < fm.tiles_x(); ++x) {
        const sim::Word word = sim::word_from_tile(fm.tile(c, r, x));
        bytes.insert(bytes.end(), word.b.begin(), word.b.end());
      }
    }
  }
  return bytes;
}

void unpack_bank_stripe(pack::TiledFm& fm,
                        const std::vector<std::uint8_t>& bytes, int lane,
                        int lanes, int row0, int rows) {
  TSCA_CHECK(row0 >= 0 && rows >= 0 && row0 + rows <= fm.tiles_y());
  std::size_t pos = 0;
  for (int c = lane; c < fm.channels(); c += lanes) {
    for (int r = row0; r < row0 + rows; ++r) {
      for (int x = 0; x < fm.tiles_x(); ++x) {
        TSCA_CHECK(pos + sim::kWordBytes <= bytes.size(),
                   "short stripe image");
        sim::Word word;
        std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                  bytes.begin() + static_cast<std::ptrdiff_t>(pos) +
                      sim::kWordBytes,
                  word.b.begin());
        fm.tile(c, r, x) = sim::tile_from_word(word);
        pos += sim::kWordBytes;
      }
    }
  }
}

Runtime::Runtime(core::Accelerator& accelerator, sim::Dram& dram,
                 sim::DmaEngine& dma, RuntimeOptions options)
    : acc_(accelerator), dram_(dram), dma_(dma), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    // Resolve every per-layer metric handle once: the registry's handles are
    // stable for its lifetime, so finish_layer records through plain
    // pointers with no name assembly on the warm path.
    obs::MetricsRegistry& m = *options_.metrics;
    rm_.layers = &m.counter("runtime.layers");
    rm_.accel_cycles = &m.counter("runtime.accel_cycles");
    rm_.batches = &m.counter("runtime.batches");
    rm_.stripes = &m.counter("runtime.stripes");
    rm_.macs = &m.counter("runtime.macs");
    rm_.dma_bytes_to_fpga = &m.counter("runtime.dma.bytes_to_fpga");
    rm_.dma_bytes_to_dram = &m.counter("runtime.dma.bytes_to_dram");
    rm_.predicted_layers = &m.counter("runtime.predicted_layers");
    rm_.fast_regions = &m.counter("fastpath.regions");
    rm_.fast_regions_zero = &m.counter("fastpath.regions_zero");
    rm_.fast_mac_tiles = &m.counter("fastpath.mac_tiles");
    rm_.fast_mac_tiles_skipped = &m.counter("fastpath.mac_tiles_skipped");
    rm_.layer_cycles = &m.histogram("runtime.layer_cycles");
  }
}

Runtime::LayerTracer Runtime::begin_layer_trace(int units,
                                                const char* unit_prefix) {
  LayerTracer tracer;
  if (options_.trace == nullptr) return tracer;
  tracer.compute.reserve(static_cast<std::size_t>(units));
  tracer.dma.reserve(static_cast<std::size_t>(units));
  for (int u = 0; u < units; ++u) {
    const std::string base =
        options_.trace_scope + unit_prefix + std::to_string(u);
    obs::Track& compute = options_.trace->track(base);
    obs::Track& dma = options_.trace->track(base + ".dma");
    // Rewind both cursors to the layer start: compute spans then accumulate
    // exactly the unit's batch cycles, so the busiest unit's cursor lands at
    // trace_clock_ + run.cycles — flush with the layer span below.
    compute.set_now(trace_clock_);
    dma.set_now(trace_clock_);
    tracer.compute.push_back(&compute);
    tracer.dma.push_back(&dma);
  }
  return tracer;
}

ExecCtx Runtime::exec_ctx() {
  ExecCtx ctx{acc_, dram_, dma_, ddr_cursor_, engine_mode(options_.mode)};
  ctx.trace_kernels = options_.trace_kernels;
  ctx.resident_stamp = resident_stamp_;
  ctx.program_base = program_base_;
  ctx.ddr_floor = ddr_floor_;
  return ctx;
}

void Runtime::ensure_program_staged(const NetworkProgram& program) {
  if (resident_stamp_ == program.stamp()) return;
  const std::vector<std::uint8_t>& image = program.ddr_image();
  TSCA_CHECK(image.size() <= dram_.size(),
             "program weight image (" << image.size()
                                      << " bytes) larger than DDR");
  // A host write into the modelled DDR — the paper's framework prepares the
  // weight regions before inference starts, so no DMA statistics accrue.
  if (!image.empty()) dram_.write(0, image.data(), image.size());
  adopt_staged_program(program.stamp(), image.size());
}

void Runtime::adopt_staged_program(std::uint64_t stamp,
                                   std::uint64_t ddr_floor) {
  resident_stamp_ = stamp;
  program_base_ = 0;
  ddr_floor_ = ddr_floor;
  ddr_cursor_ = ddr_floor;
}

void Runtime::finish_layer(const LayerRun& run) {
  if (options_.metrics != nullptr) {
    // All through handles cached at construction — no metric-name strings on
    // the per-layer path (see RunMetrics).
    rm_.layers->add(1);
    rm_.accel_cycles->add(static_cast<std::int64_t>(run.cycles));
    rm_.batches->add(run.batches);
    rm_.stripes->add(run.stripes);
    rm_.macs->add(run.macs);
    rm_.dma_bytes_to_fpga->add(static_cast<std::int64_t>(run.dma.bytes_to_fpga));
    rm_.dma_bytes_to_dram->add(static_cast<std::int64_t>(run.dma.bytes_to_dram));
    rm_.layer_cycles->observe(static_cast<std::int64_t>(run.cycles));
    if (run.cycles_predicted) rm_.predicted_layers->add(1);
    if (run.fast.regions != 0) {
      rm_.fast_regions->add(static_cast<std::int64_t>(run.fast.regions));
      rm_.fast_regions_zero->add(
          static_cast<std::int64_t>(run.fast.regions_zero));
      rm_.fast_mac_tiles->add(static_cast<std::int64_t>(run.fast.mac_tiles));
      rm_.fast_mac_tiles_skipped->add(
          static_cast<std::int64_t>(run.fast.mac_tiles_skipped));
    }
  }
  if (options_.trace != nullptr) {
    const std::string label =
        run.name.empty() ? std::string(nn::layer_kind_name(run.kind))
                         : run.name;
    options_.trace->track(options_.trace_scope + "layers")
        .complete(label, "layer", trace_clock_, run.cycles,
                  {{"macs", run.macs},
                   {"stripes", run.stripes},
                   {"batches", run.batches},
                   {"predicted", run.cycles_predicted ? 1 : 0},
                   {"dma_bytes",
                    static_cast<std::int64_t>(run.dma.bytes_to_fpga +
                                              run.dma.bytes_to_dram)}});
  }
  trace_clock_ += run.cycles;
}

pack::TiledFm Runtime::run_conv(const pack::TiledFm& input,
                                const ConvProgram& conv, LayerRun& run) {
  if (options_.mode == ExecMode::kFast)
    return fast_conv_layer(input, conv, run);
  const core::ArchConfig& cfg = acc_.config();
  TSCA_CHECK(conv.plan.in_shape == input.shape(),
             "program compiled for a different input shape");
  TSCA_CHECK(!conv.plan.stripes.empty(),
             "conv program has no striped plan (fused-only layer)");
  pack::TiledFm output(conv.plan.out_shape);

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();
  std::vector<std::uint64_t> instance_cycles(
      static_cast<std::size_t>(cfg.instances), 0);

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv.macs;
  run.stripes = static_cast<int>(conv.plan.stripes.size());

  ExecCtx ctx = exec_ctx();
  const LayerTracer tracer = begin_layer_trace(cfg.instances, "inst");
  for (std::size_t si = 0; si < conv.plan.stripes.size(); ++si) {
    const std::size_t inst = si % static_cast<std::size_t>(cfg.instances);
    if (tracer) {
      ctx.trace = tracer.compute[inst];
      dma_.set_trace(tracer.dma[inst]);
    }
    const StripeOutcome outcome =
        exec_conv_stripe(ctx, conv, conv.plan.stripes[si], input, output);
    instance_cycles[inst] += outcome.cycles;
    run.batches += outcome.batches;
  }
  if (tracer) dma_.set_trace(nullptr);
  run.cycles = *std::max_element(instance_cycles.begin(),
                                 instance_cycles.end());
  run.counters = core::snapshot(acc_.counters()) - counters_before;
  run.dma = dma_.stats() - dma_before;
  finish_layer(run);
  return output;
}

pack::TiledFm Runtime::run_conv(const pack::TiledFm& input,
                                const pack::PackedFilters& packed,
                                const std::vector<std::int32_t>& bias,
                                const nn::Requant& rq, LayerRun& run) {
  return run_conv(
      input, compile_conv(acc_.config(), input.shape(), packed, bias, rq),
      run);
}

pack::TiledFm Runtime::run_pad_pool(const pack::TiledFm& input,
                                    const PoolPlan& plan, LayerRun& run) {
  if (options_.mode == ExecMode::kFast)
    return fast_pad_pool_layer(input, plan, run);
  const core::ArchConfig& cfg = acc_.config();
  TSCA_CHECK(plan.in_shape == input.shape(),
             "plan compiled for a different input shape");
  pack::TiledFm output(plan.out_shape);

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();
  std::vector<std::uint64_t> instance_cycles(
      static_cast<std::size_t>(cfg.instances), 0);

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = plan.op == core::Opcode::kPad ? nn::LayerKind::kPad
                                           : nn::LayerKind::kMaxPool;
  run.stripes = static_cast<int>(plan.stripes.size());

  ExecCtx ctx = exec_ctx();
  const LayerTracer tracer = begin_layer_trace(cfg.instances, "inst");
  for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
    const std::size_t inst = si % static_cast<std::size_t>(cfg.instances);
    if (tracer) {
      ctx.trace = tracer.compute[inst];
      dma_.set_trace(tracer.dma[inst]);
    }
    const StripeOutcome outcome =
        exec_pool_stripe(ctx, plan, plan.stripes[si], input, output);
    instance_cycles[inst] += outcome.cycles;
    run.batches += outcome.batches;
  }
  if (tracer) dma_.set_trace(nullptr);
  run.cycles = *std::max_element(instance_cycles.begin(),
                                 instance_cycles.end());
  run.counters = core::snapshot(acc_.counters()) - counters_before;
  run.dma = dma_.stats() - dma_before;
  finish_layer(run);
  return output;
}

pack::TiledFm Runtime::run_pad_pool(const pack::TiledFm& input,
                                    core::Opcode op,
                                    const nn::FmShape& out_shape, int win,
                                    int stride, int offset_y, int offset_x,
                                    LayerRun& run) {
  return run_pad_pool(input,
                      plan_pool(acc_.config(), input.shape(), out_shape, op,
                                win, stride, offset_y, offset_x),
                      run);
}

std::vector<pack::TiledFm> Runtime::run_conv_batch(
    const std::vector<pack::TiledFm>& inputs, const ConvProgram& conv,
    LayerRun& run) {
  if (options_.mode == ExecMode::kFast)
    return fast_conv_batch(inputs, conv, run);
  TSCA_CHECK(!inputs.empty());
  const core::ArchConfig& cfg = acc_.config();
  for (const pack::TiledFm& input : inputs)
    TSCA_CHECK(input.shape() == inputs.front().shape(),
               "batch images must share a shape");
  TSCA_CHECK(conv.plan.in_shape == inputs.front().shape(),
             "program compiled for a different input shape");

  std::vector<pack::TiledFm> outputs(inputs.size(),
                                     pack::TiledFm(conv.plan.out_shape));

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();
  std::vector<std::uint64_t> instance_cycles(
      static_cast<std::size_t>(cfg.instances), 0);

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv.macs * static_cast<std::int64_t>(inputs.size());
  run.stripes = static_cast<int>(conv.plan.stripes.size());

  ExecCtx ctx = exec_ctx();
  const LayerTracer tracer = begin_layer_trace(cfg.instances, "inst");
  for (std::size_t si = 0; si < conv.plan.stripes.size(); ++si) {
    const ConvStripe& stripe = conv.plan.stripes[si];
    const std::size_t instance = si % static_cast<std::size_t>(cfg.instances);
    if (tracer) {
      ctx.trace = tracer.compute[instance];
      dma_.set_trace(tracer.dma[instance]);
    }
    for (const ConvStripe::Chunk& chunk : stripe.chunks) {
      // Weights once per chunk — the batch's whole point.
      const std::vector<core::Instruction> instrs =
          stage_chunk_weights(ctx, conv, stripe, chunk);
      for (std::size_t img = 0; img < inputs.size(); ++img) {
        const StripeOutcome outcome = exec_batch_image_chunk(
            ctx, conv, stripe, chunk, instrs, inputs[img], outputs[img]);
        instance_cycles[instance] += outcome.cycles;
        run.batches += outcome.batches;
      }
    }
  }
  if (tracer) dma_.set_trace(nullptr);
  run.cycles = *std::max_element(instance_cycles.begin(),
                                 instance_cycles.end());
  run.counters = core::snapshot(acc_.counters()) - counters_before;
  run.dma = dma_.stats() - dma_before;
  finish_layer(run);
  return outputs;
}

std::vector<pack::TiledFm> Runtime::run_conv_batch(
    const std::vector<pack::TiledFm>& inputs,
    const pack::PackedFilters& packed, const std::vector<std::int32_t>& bias,
    const nn::Requant& rq, LayerRun& run) {
  TSCA_CHECK(!inputs.empty());
  return run_conv_batch(
      inputs,
      compile_conv(acc_.config(), inputs.front().shape(), packed, bias, rq),
      run);
}

std::vector<std::int8_t> Runtime::run_fc_as_conv(
    const std::vector<std::int8_t>& input, const ConvProgram& fc_conv,
    LayerRun& run) {
  TSCA_CHECK(!input.empty());
  const int in_dim = static_cast<int>(input.size());
  TSCA_CHECK(fc_conv.plan.in_shape == (nn::FmShape{in_dim, 1, 1}),
             "fc program compiled for a different input width");
  const int out_dim = fc_conv.plan.out_shape.c;

  // 1x1 feature map with in_dim channels; filters are out_dim x in_dim x 1x1.
  nn::FeatureMapI8 fm({in_dim, 1, 1});
  for (int c = 0; c < in_dim; ++c)
    fm.at(c, 0, 0) = input[static_cast<std::size_t>(c)];

  run.name = "fc-as-conv";
  const pack::TiledFm out = run_conv(pack::to_tiled(fm), fc_conv, run);
  run.kind = nn::LayerKind::kFullyConnected;
  const nn::FeatureMapI8 linear = pack::from_tiled(out);
  std::vector<std::int8_t> logits(static_cast<std::size_t>(out_dim));
  for (int o = 0; o < out_dim; ++o)
    logits[static_cast<std::size_t>(o)] = linear.at(o, 0, 0);
  return logits;
}

std::vector<std::int8_t> Runtime::run_fc_as_conv(
    const std::vector<std::int8_t>& input,
    const std::vector<std::int8_t>& weights,
    const std::vector<std::int32_t>& bias, int out_dim, const nn::Requant& rq,
    LayerRun& run) {
  TSCA_CHECK(out_dim > 0 && !input.empty());
  TSCA_CHECK(weights.size() ==
             input.size() * static_cast<std::size_t>(out_dim));
  const int in_dim = static_cast<int>(input.size());
  return run_fc_as_conv(
      input,
      compile_fc_conv(acc_.config(), in_dim, out_dim, weights, bias, rq), run);
}

void Runtime::run_fused_pad_conv(const pack::TiledFm& input,
                                 const ConvProgram& conv,
                                 const FusedPadConvLayout& layout,
                                 pack::TiledFm& output, LayerRun& pad_run,
                                 LayerRun& conv_run) {
  if (options_.mode == ExecMode::kFast) {
    fast_fused_pad_conv(input, conv, layout, output, pad_run, conv_run);
    return;
  }
  const core::ArchConfig& cfg = acc_.config();
  TSCA_CHECK(layout.raw == input.shape(),
             "fused layout compiled for a different input shape");
  const WeightImage& wimg = conv.wimg;
  const nn::FmShape raw = layout.raw;
  const nn::FmShape out_shape = layout.out;
  const int ofm_base = layout.ofm_base;
  const int weight_base = layout.weight_base;
  const int lanes = cfg.lanes;
  pad_run.reset_stats();
  conv_run.reset_stats();

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();

  // Stage the raw input and every weight stream once (from the resident
  // program image when this layer's owner is staged in DDR — identical
  // transfers either way).
  ExecCtx ctx = exec_ctx();
  const bool resident =
      conv.owner != 0 && conv.owner == ctx.resident_stamp;
  const LayerTracer tracer = begin_layer_trace(1, "inst");
  if (tracer) {
    ctx.trace = tracer.compute[0];
    dma_.set_trace(tracer.dma[0]);
  }
  for (int lane = 0; lane < lanes; ++lane) {
    stage_to_bank(ctx, acc_.bank(lane), 0,
                  bank_stripe_bytes(input, lane, lanes, 0,
                                    pack::tiles_for(raw.h)));
    int base = weight_base;
    for (int g = 0; g < wimg.groups(); ++g) {
      const std::vector<std::uint8_t>& bytes = wimg.bytes(g, lane);
      if (resident && !bytes.empty()) {
        dma_.to_bank(acc_.bank(lane), base,
                     ctx.program_base + conv.stream_ddr_offset(g, lane),
                     bytes.size());
      } else {
        stage_to_bank(ctx, acc_.bank(lane), base, bytes);
      }
      base += wimg.aligned_words(g);
    }
  }

  // Batch 1: PAD into the on-chip padded region.  (A separate batch: the
  // dependent CONV may only start once the pad's writes have landed, which
  // the host guarantees by polling completion — exactly what the paper's
  // driver does between dependent instructions.)
  const core::PadPoolInstr pi = make_fused_pad_instr(layout);
  const core::BatchStats pad_stats =
      run_batch_traced(ctx, {core::Instruction::make_pad(pi)}, "fused pad");
  pad_run.on_accelerator = true;
  pad_run.kind = nn::LayerKind::kPad;
  pad_run.cycles = pad_stats.cycles;
  pad_run.stripes = 1;
  pad_run.batches = 1;
  finish_layer(pad_run);

  // Batch 2: all filter groups, reading the padded map in place.
  std::vector<core::Instruction> instrs;
  int base = weight_base;
  for (int g = 0; g < wimg.groups(); ++g) {
    instrs.push_back(
        core::Instruction::make_conv(make_fused_conv_instr(conv, layout, g,
                                                           base)));
    base += wimg.aligned_words(g);
  }
  const core::BatchStats conv_stats =
      run_batch_traced(ctx, instrs, "fused conv");
  conv_run.on_accelerator = true;
  conv_run.kind = nn::LayerKind::kConv;
  conv_run.cycles = conv_stats.cycles;
  conv_run.macs = conv.macs;
  conv_run.stripes = 1;
  conv_run.batches = 1;

  // Read the OFM back.
  output = pack::TiledFm(out_shape);
  for (int lane = 0; lane < lanes; ++lane) {
    const int lane_words =
        core::lane_channel_count(out_shape.c, lane, lanes) *
        pack::tiles_for(out_shape.h) * pack::tiles_for(out_shape.w);
    if (lane_words == 0) continue;
    unpack_bank_stripe(output,
                       stage_from_bank(ctx, acc_.bank(lane), ofm_base,
                                       lane_words),
                       lane, lanes, 0, pack::tiles_for(out_shape.h));
  }
  if (tracer) dma_.set_trace(nullptr);
  conv_run.counters = core::snapshot(acc_.counters()) - counters_before;
  conv_run.dma = dma_.stats() - dma_before;
  finish_layer(conv_run);
}

bool Runtime::run_fused_pad_conv(const pack::TiledFm& input,
                                 const nn::Padding& pad,
                                 const pack::PackedFilters& packed,
                                 const std::vector<std::int32_t>& bias,
                                 const nn::Requant& rq, pack::TiledFm& output,
                                 LayerRun& pad_run, LayerRun& conv_run) {
  const core::ArchConfig& cfg = acc_.config();
  TSCA_CHECK(packed.shape().ic == input.channels());
  TSCA_CHECK(packed.shape().kh == packed.shape().kw);
  const int kernel = packed.shape().kh;
  const nn::FmShape raw = input.shape();
  const nn::FmShape padded{raw.c, raw.h + pad.top + pad.bottom,
                           raw.w + pad.left + pad.right};
  if (padded.h < kernel || padded.w < kernel) return false;
  pad_run.reset_stats();
  conv_run.reset_stats();

  ConvProgram conv;
  conv.wimg = WeightImage(packed, cfg.lanes, cfg.group);
  const std::optional<FusedPadConvLayout> layout = plan_fused_pad_conv(
      cfg, raw, pad, kernel, packed.shape().oc, conv.wimg);
  if (!layout.has_value()) return false;
  conv.bias = bias;
  conv.rq = rq;
  conv.macs = conv_macs(layout->padded, layout->out.c, layout->kernel);
  run_fused_pad_conv(input, conv, *layout, output, pad_run, conv_run);
  return true;
}

pack::TiledFm Runtime::fast_conv_layer(const pack::TiledFm& input,
                                       const ConvProgram& conv,
                                       LayerRun& run) {
  const ConvPlan& plan = conv.plan;
  TSCA_CHECK(plan.in_shape == input.shape(),
             "program compiled for a different input shape");
  TSCA_CHECK(!plan.stripes.empty(),
             "conv program has no striped plan (fused-only layer)");
  check_fast_stripe_invariant(plan);

  const FastConvArtifacts art = fast_conv_artifacts(acc_.config(), conv);
  const core::FastConvWeights& fw =
      conv.fastw.decoded() ? conv.fastw : art.local;

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv.macs;
  run.stripes = static_cast<int>(plan.stripes.size());
  for (const ConvStripe& stripe : plan.stripes)
    run.batches += static_cast<int>(stripe.chunks.size());
  run.cycles = art.cycles;
  run.cycles_predicted = true;
  run.counters = art.counters;

  pack::TiledFm output(plan.out_shape);
  const pack::TiledFm* in = &input;
  pack::TiledFm* out = &output;
  fast_exec_conv(&in, 1, fw, conv, &out, run.fast);
  finish_layer(run);
  return output;
}

void Runtime::fast_exec_conv(const pack::TiledFm* const* inputs, int batch,
                             const core::FastConvWeights& fw,
                             const ConvProgram& conv,
                             pack::TiledFm* const* outputs,
                             core::FastConvStats& stats) {
  core::fast_conv(inputs, batch, fw, conv.bias, conv.rq, outputs, 0,
                  outputs[0]->tiles_y(), &stats, &fast_scratch_);
}

void Runtime::fast_exec_pool(const pack::TiledFm& input, const PoolPlan& plan,
                             pack::TiledFm& output) {
  const bool cached = plan.fastp.size() == plan.stripes.size();
  for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
    const PoolStripe& stripe = plan.stripes[si];
    if (cached)
      core::fast_pad_pool(input, plan.fastp[si], stripe.in_tile_row0,
                          stripe.otile_row0, output);
    else
      core::fast_pad_pool(input, make_pool_instr(plan, stripe),
                          stripe.in_tile_row0, stripe.otile_row0, output);
  }
}

pack::TiledFm Runtime::fast_pad_pool_layer(const pack::TiledFm& input,
                                           const PoolPlan& plan,
                                           LayerRun& run) {
  TSCA_CHECK(plan.in_shape == input.shape(),
             "plan compiled for a different input shape");
  pack::TiledFm output(plan.out_shape);

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = plan.op == core::Opcode::kPad ? nn::LayerKind::kPad
                                           : nn::LayerKind::kMaxPool;
  run.stripes = static_cast<int>(plan.stripes.size());
  run.batches = run.stripes;  // one batch per stripe, like the engine
  fast_exec_pool(input, plan, output);

  if (plan.predicted_cycles != 0) {
    run.cycles = plan.predicted_cycles;
    run.counters.pool_ops = plan.predicted_ops;
  } else {
    const PoolPerf perf = PerfModel(acc_.config()).pool_plan_perf(plan);
    run.cycles = static_cast<std::uint64_t>(perf.cycles);
    run.counters.pool_ops = perf.ops;
  }
  run.cycles_predicted = true;
  if (plan.op == core::Opcode::kPad)
    run.counters.pad_instrs = run.stripes;
  else
    run.counters.pool_instrs = run.stripes;
  finish_layer(run);
  return output;
}

std::vector<pack::TiledFm> Runtime::fast_conv_batch(
    const std::vector<pack::TiledFm>& inputs, const ConvProgram& conv,
    LayerRun& run) {
  std::vector<pack::TiledFm> fms = inputs;
  fast_conv_batch_inplace(fms, conv, run);
  return fms;
}

void Runtime::fast_conv_batch_inplace(std::vector<pack::TiledFm>& fms,
                                      const ConvProgram& conv, LayerRun& run) {
  TSCA_CHECK(!fms.empty());
  for (const pack::TiledFm& fm : fms)
    TSCA_CHECK(fm.shape() == fms.front().shape(),
               "batch images must share a shape");
  const ConvPlan& plan = conv.plan;
  TSCA_CHECK(plan.in_shape == fms.front().shape(),
             "program compiled for a different input shape");
  check_fast_stripe_invariant(plan);

  const FastConvArtifacts art = fast_conv_artifacts(acc_.config(), conv);
  const core::FastConvWeights& fw =
      conv.fastw.decoded() ? conv.fastw : art.local;
  const auto images = static_cast<std::int64_t>(fms.size());

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv.macs * images;
  run.stripes = static_cast<int>(plan.stripes.size());
  for (const ConvStripe& stripe : plan.stripes)
    run.batches += static_cast<int>(stripe.chunks.size() * fms.size());
  // The engine re-runs every chunk's instructions once per image (weights
  // stay staged), so both cycles and work counters scale linearly.
  run.cycles = art.cycles * static_cast<std::uint64_t>(images);
  run.cycles_predicted = true;
  for (std::int64_t img = 0; img < images; ++img) run.counters += art.counters;

  // Outputs land in recycled storage; the final swap hands the old input
  // maps back as the staging pool the next layer's outputs draw from, so a
  // warm runtime runs whole networks without constructing a single map.
  size_fm_vec(batch_out_fms_, fms.size());
  for (pack::TiledFm& out : batch_out_fms_) out.reset(plan.out_shape);
  // Batch-major lane groups: up to kFastBatchLanes images share each weight
  // walk and gathered region.  Per-image outputs are identical to serial
  // single-image runs (the layout only packs more values per vector op).
  for (std::size_t i0 = 0; i0 < fms.size();
       i0 += static_cast<std::size_t>(kFastBatchLanes)) {
    const std::size_t n = std::min(static_cast<std::size_t>(kFastBatchLanes),
                                   fms.size() - i0);
    scratch_ins_.clear();
    scratch_outs_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      scratch_ins_.push_back(&fms[i0 + i]);
      scratch_outs_.push_back(&batch_out_fms_[i0 + i]);
    }
    fast_exec_conv(scratch_ins_.data(), static_cast<int>(n), fw, conv,
                   scratch_outs_.data(), run.fast);
  }
  fms.swap(batch_out_fms_);
  finish_layer(run);
}

void Runtime::fast_fused_pad_conv(const pack::TiledFm& input,
                                  const ConvProgram& conv,
                                  const FusedPadConvLayout& layout,
                                  pack::TiledFm& output, LayerRun& pad_run,
                                  LayerRun& conv_run) {
  TSCA_CHECK(layout.raw == input.shape(),
             "fused layout compiled for a different input shape");
  // Compile-time callers (NetworkProgram) arrive with decoded weights and
  // predictions; the compile-per-call wrapper builds both here.
  ConvProgram conv_local;
  FusedPadConvLayout layout_local;
  const ConvProgram* cp = &conv;
  const FusedPadConvLayout* lp = &layout;
  if (!conv.fastw.decoded() || layout.predicted_conv_cycles == 0) {
    conv_local = conv;
    layout_local = layout;
    fill_fused_predictions(acc_.config(), conv_local, layout_local);
    cp = &conv_local;
    lp = &layout_local;
  }

  pad_run.reset_stats();
  conv_run.reset_stats();
  output = pack::TiledFm(lp->out);
  // The PAD batch never materializes on the host: fast_conv_padded lays the
  // raw pixels shifted into its input planes, bit-identical to padding a
  // TiledFm first.  Fused layers are unstriped by construction — no row
  // bands to fan out — so this stays a direct serial call.
  const pack::TiledFm* in = &input;
  pack::TiledFm* out = &output;
  core::fast_conv_padded(&in, 1, cp->fastw, cp->bias, cp->rq, lp->pad.top,
                         lp->pad.left, &out, 0, output.tiles_y(),
                         &conv_run.fast, &fast_scratch_);

  pad_run.on_accelerator = true;
  pad_run.kind = nn::LayerKind::kPad;
  pad_run.cycles = lp->predicted_pad_cycles;
  pad_run.cycles_predicted = true;
  pad_run.stripes = 1;
  pad_run.batches = 1;
  finish_layer(pad_run);

  conv_run.on_accelerator = true;
  conv_run.kind = nn::LayerKind::kConv;
  conv_run.cycles = lp->predicted_conv_cycles;
  conv_run.cycles_predicted = true;
  conv_run.macs = cp->macs;
  conv_run.stripes = 1;
  conv_run.batches = 1;
  conv_run.counters = lp->predicted;
  finish_layer(conv_run);
}

void Runtime::fast_fused_pad_conv_batch(std::vector<pack::TiledFm>& fms,
                                        const ConvProgram& conv,
                                        const FusedPadConvLayout& layout,
                                        LayerRun& pad_run, LayerRun& conv_run) {
  TSCA_CHECK(conv.fastw.decoded() && layout.predicted_conv_cycles != 0,
             "batched fused fast path needs a compiled program");
  const auto images = static_cast<std::int64_t>(fms.size());
  for (const pack::TiledFm& fm : fms)
    TSCA_CHECK(layout.raw == fm.shape(),
               "fused layout compiled for a different input shape");

  // The engine replays the whole fusion once per image; predictions and
  // counters fold linearly, exactly like the serial per-image loop.
  pad_run.reset_stats();
  pad_run.on_accelerator = true;
  pad_run.kind = nn::LayerKind::kPad;
  pad_run.cycles = layout.predicted_pad_cycles * static_cast<std::uint64_t>(images);
  pad_run.cycles_predicted = true;
  pad_run.stripes = 1;
  pad_run.batches = static_cast<int>(images);

  conv_run.reset_stats();
  conv_run.on_accelerator = true;
  conv_run.kind = nn::LayerKind::kConv;
  conv_run.cycles =
      layout.predicted_conv_cycles * static_cast<std::uint64_t>(images);
  conv_run.cycles_predicted = true;
  conv_run.macs = conv.macs * images;
  conv_run.stripes = 1;
  conv_run.batches = static_cast<int>(images);
  for (std::int64_t img = 0; img < images; ++img)
    conv_run.counters += layout.predicted;

  // Same recycled-output discipline as fast_conv_batch_inplace: outputs
  // reuse pooled maps, the swap donates the old inputs back to the pool.
  size_fm_vec(batch_out_fms_, fms.size());
  for (pack::TiledFm& out : batch_out_fms_) out.reset(layout.out);
  for (std::size_t i0 = 0; i0 < fms.size();
       i0 += static_cast<std::size_t>(kFastBatchLanes)) {
    const std::size_t n = std::min(static_cast<std::size_t>(kFastBatchLanes),
                                   fms.size() - i0);
    scratch_ins_.clear();
    scratch_outs_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      scratch_ins_.push_back(&fms[i0 + i]);
      scratch_outs_.push_back(&batch_out_fms_[i0 + i]);
    }
    core::fast_conv_padded(scratch_ins_.data(), static_cast<int>(n), conv.fastw,
                           conv.bias, conv.rq, layout.pad.top, layout.pad.left,
                           scratch_outs_.data(), 0,
                           batch_out_fms_[i0].tiles_y(), &conv_run.fast,
                           &fast_scratch_);
  }
  fms.swap(batch_out_fms_);
  finish_layer(pad_run);
  finish_layer(conv_run);
}

std::vector<std::int8_t> Runtime::fast_fc(const std::vector<std::int8_t>& in,
                                          const FcProgram& fc) {
  TSCA_CHECK(fc.out_dim > 0);
  TSCA_CHECK(fc.weights.size() ==
             in.size() * static_cast<std::size_t>(fc.out_dim));
  TSCA_CHECK(fc.bias.empty() ||
             static_cast<int>(fc.bias.size()) == fc.out_dim);
  const core::simd::SimdBackend& be = core::simd::backend();
  const int groups = static_cast<int>(in.size()) / 16;
  const std::size_t head = static_cast<std::size_t>(groups) * 16;
  std::vector<std::int8_t> out(static_cast<std::size_t>(fc.out_dim));
  for (int o = 0; o < fc.out_dim; ++o) {
    const std::int8_t* row =
        &fc.weights[static_cast<std::size_t>(o) * in.size()];
    // Wrapping int32 accumulation is order-independent, so the vector dot
    // plus a scalar tail equals nn::fc_i8's sequential sum bit-for-bit.
    std::uint32_t acc = static_cast<std::uint32_t>(
        fc.bias.empty() ? 0 : fc.bias[static_cast<std::size_t>(o)]);
    acc += static_cast<std::uint32_t>(be.dot(in.data(), row, groups));
    for (std::size_t i = head; i < in.size(); ++i)
      acc += static_cast<std::uint32_t>(static_cast<std::int32_t>(row[i]) *
                                        in[i]);
    out[static_cast<std::size_t>(o)] =
        nn::requantize(static_cast<std::int32_t>(acc), fc.rq);
  }
  return out;
}

std::vector<std::vector<std::int8_t>> Runtime::fast_fc_batch(
    const std::vector<std::vector<std::int8_t>>& ins, const FcProgram& fc) {
  std::vector<std::vector<std::int8_t>> outs;
  fast_fc_batch(ins, fc, outs);
  return outs;
}

void Runtime::fast_fc_batch(const std::vector<std::vector<std::int8_t>>& ins,
                            const FcProgram& fc,
                            std::vector<std::vector<std::int8_t>>& outs) {
  TSCA_CHECK(!ins.empty());
  TSCA_CHECK(fc.out_dim > 0);
  const std::size_t in_size = ins.front().size();
  for (const std::vector<std::int8_t>& in : ins)
    TSCA_CHECK(in.size() == in_size, "batch FC inputs must share a size");
  TSCA_CHECK(fc.weights.size() ==
             in_size * static_cast<std::size_t>(fc.out_dim));
  TSCA_CHECK(fc.bias.empty() ||
             static_cast<int>(fc.bias.size()) == fc.out_dim);
  const core::simd::SimdBackend& be = core::simd::backend();
  const int groups = static_cast<int>(in_size) / 16;
  const std::size_t head = static_cast<std::size_t>(groups) * 16;
  // resize() keeps existing capacity both at the batch and per-image level,
  // so a reused `outs` stops allocating once it has seen the widest FC.
  outs.resize(ins.size());
  for (std::vector<std::int8_t>& out : outs)
    out.resize(static_cast<std::size_t>(fc.out_dim));
  for (int o = 0; o < fc.out_dim; ++o) {
    const std::int8_t* row =
        &fc.weights[static_cast<std::size_t>(o) * in_size];
    const std::uint32_t bias0 = static_cast<std::uint32_t>(
        fc.bias.empty() ? 0 : fc.bias[static_cast<std::size_t>(o)]);
    // Image-inner: the row stays cache-hot across the whole batch, and four
    // images at a time share each of the row's register loads (dot4).  The
    // per-image arithmetic is exactly fast_fc's, so outputs are bit-equal.
    std::size_t i = 0;
    for (; i + 4 <= ins.size(); i += 4) {
      const std::int8_t* quad[4] = {ins[i].data(), ins[i + 1].data(),
                                    ins[i + 2].data(), ins[i + 3].data()};
      std::int32_t d4[4];
      be.dot4(row, quad, groups, d4);
      for (int q = 0; q < 4; ++q) {
        const std::vector<std::int8_t>& in = ins[i + q];
        std::uint32_t acc = bias0 + static_cast<std::uint32_t>(d4[q]);
        for (std::size_t k = head; k < in_size; ++k)
          acc += static_cast<std::uint32_t>(static_cast<std::int32_t>(row[k]) *
                                            in[k]);
        outs[i + q][static_cast<std::size_t>(o)] =
            nn::requantize(static_cast<std::int32_t>(acc), fc.rq);
      }
    }
    for (; i < ins.size(); ++i) {
      const std::vector<std::int8_t>& in = ins[i];
      std::uint32_t acc = bias0;
      acc += static_cast<std::uint32_t>(be.dot(in.data(), row, groups));
      for (std::size_t k = head; k < in_size; ++k)
        acc += static_cast<std::uint32_t>(static_cast<std::int32_t>(row[k]) *
                                          in[k]);
      outs[i][static_cast<std::size_t>(o)] =
          nn::requantize(static_cast<std::int32_t>(acc), fc.rq);
    }
  }
}

void Runtime::size_fm_vec(std::vector<pack::TiledFm>& v, std::size_t n) {
  while (v.size() > n) {
    fm_pool_.push_back(std::move(v.back()));
    v.pop_back();
  }
  while (v.size() < n) {
    if (!fm_pool_.empty()) {
      v.push_back(std::move(fm_pool_.back()));
      fm_pool_.pop_back();
    } else {
      v.emplace_back();
    }
  }
}

void Runtime::reserve_warm_scratch(const NetworkProgram& program,
                                   int max_batch) {
  TSCA_CHECK(max_batch > 0);
  // fast_conv sees at most one lane group of images per call.
  const int lanes = std::min(max_batch, kFastBatchLanes);
  nn::FmShape biggest{};
  std::size_t max_tiles = 0;
  const auto note_shape = [&](const nn::FmShape& s) {
    const std::size_t tiles = static_cast<std::size_t>(s.c) *
                              pack::tiles_for(s.h) * pack::tiles_for(s.w);
    if (tiles > max_tiles) {
      max_tiles = tiles;
      biggest = s;
    }
  };
  note_shape(program.net().input_shape());
  for (const NetworkProgram::Step& step : program.steps()) {
    switch (step.exec) {
      case NetworkProgram::Step::Exec::kConv: {
        const ConvProgram& conv = program.conv(step.conv);
        note_shape(conv.plan.in_shape);
        note_shape(conv.plan.out_shape);
        if (conv.fastw.decoded())
          fast_scratch_.reserve_conv(
              lanes, conv.fastw.channels, conv.fastw.out_channels,
              pack::tiles_for(conv.plan.out_shape.h) + conv.fastw.wtiles_y,
              pack::tiles_for(conv.plan.out_shape.w) + conv.fastw.wtiles_x);
        break;
      }
      case NetworkProgram::Step::Exec::kFusedPadConv: {
        const ConvProgram& conv = program.conv(step.conv);
        const FusedPadConvLayout& layout = program.fused(step.fused);
        note_shape(layout.raw);
        note_shape(layout.out);
        if (conv.fastw.decoded())
          fast_scratch_.reserve_conv(
              lanes, conv.fastw.channels, conv.fastw.out_channels,
              pack::tiles_for(layout.out.h) + conv.fastw.wtiles_y,
              pack::tiles_for(layout.out.w) + conv.fastw.wtiles_x);
        break;
      }
      case NetworkProgram::Step::Exec::kPadPool:
      case NetworkProgram::Step::Exec::kGlobalPool: {
        const PoolPlan& plan = program.pool(step.pool);
        note_shape(plan.in_shape);
        note_shape(plan.out_shape);
        break;
      }
      default:
        break;
    }
  }
  // Pre-grow the recycled map pool so the busiest moment of a batch — the
  // current maps plus the output staging maps — never constructs storage.
  // Each pooled map carries capacity for the program's largest feature map;
  // reset() to any smaller shape reuses it.
  const std::size_t want = static_cast<std::size_t>(max_batch) * 2;
  fm_pool_.reserve(want);
  while (fm_pool_.size() + batch_fms_.size() + batch_out_fms_.size() < want)
    fm_pool_.emplace_back(biggest);
  batch_fms_.reserve(static_cast<std::size_t>(max_batch));
  batch_out_fms_.reserve(static_cast<std::size_t>(max_batch));
  batch_flats_.reserve(static_cast<std::size_t>(max_batch));
  batch_flats2_.reserve(static_cast<std::size_t>(max_batch));
  batch_slots_.resize(static_cast<std::size_t>(program.slot_count()));
  scratch_ins_.reserve(static_cast<std::size_t>(kFastBatchLanes));
  scratch_outs_.reserve(static_cast<std::size_t>(kFastBatchLanes));
}

std::size_t Runtime::warm_scratch_bytes() const {
  const auto fm_bytes = [](const pack::TiledFm& fm) {
    return fm.tiles().capacity() * sizeof(pack::Tile);
  };
  std::size_t bytes = fast_scratch_.capacity_bytes();
  for (const pack::TiledFm& fm : fm_pool_) bytes += fm_bytes(fm);
  for (const pack::TiledFm& fm : batch_fms_) bytes += fm_bytes(fm);
  for (const pack::TiledFm& fm : batch_out_fms_) bytes += fm_bytes(fm);
  for (const std::vector<pack::TiledFm>& slot : batch_slots_)
    for (const pack::TiledFm& fm : slot) bytes += fm_bytes(fm);
  for (const std::vector<std::int8_t>& f : batch_flats_) bytes += f.capacity();
  for (const std::vector<std::int8_t>& f : batch_flats2_) bytes += f.capacity();
  return bytes;
}

namespace {

// Microseconds elapsed since `t0` (host wall clock, LayerRun::host_wall_us).
std::int64_t us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Polls the cooperative cancellation flag between network steps.
void check_cancel(const RuntimeOptions& options) {
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed))
    throw RequestCancelled{};
}

// Enforces the per-run cycle budget between network steps.  `spent` is the
// trace-clock advance since the run started (the clock itself persists
// across a serving worker's batches, so the budget is relative).
void check_budget(const RuntimeOptions& options, std::uint64_t spent) {
  if (options.cycle_budget != 0 && spent > options.cycle_budget)
    throw BudgetExceeded{};
}

// Folds one image's layer statistics into the batch-aggregate LayerRun:
// additive fields sum (matching run_conv_batch's per-image linear scaling),
// per-plan fields (stripes) are identical across images and copied through.
void fold_layer_run(LayerRun& agg, const LayerRun& one) {
  agg.on_accelerator = agg.on_accelerator || one.on_accelerator;
  agg.cycles += one.cycles;
  agg.cycles_predicted = agg.cycles_predicted || one.cycles_predicted;
  agg.macs += one.macs;
  agg.stripes = one.stripes;
  agg.batches += one.batches;
  agg.counters += one.counters;
  agg.dma += one.dma;
  agg.fast += one.fast;
  agg.host_wall_us += one.host_wall_us;
}

}  // namespace

NetworkRun Runtime::run_network(const NetworkProgram& program,
                                const nn::FeatureMapI8& input) {
  TSCA_CHECK(input.shape() == program.net().input_shape(),
             "input shape mismatch");
  ensure_program_staged(program);
  const std::vector<nn::LayerSpec>& layers = program.net().layers();
  NetworkRun result;
  pack::TiledFm fm = pack::to_tiled(input);
  std::vector<std::int8_t> flat;
  bool is_flat = false;
  // Residual-skip tensor slots: a step stamped save_slot parks its output
  // here; kEltwiseAdd steps read their right-hand operand back out.
  std::vector<pack::TiledFm> slots(
      static_cast<std::size_t>(program.slot_count()));

  const std::uint64_t clock0 = trace_clock_;
  for (const NetworkProgram::Step& step : program.steps()) {
    check_cancel(options_);
    check_budget(options_, trace_clock_ - clock0);
    const nn::LayerSpec& spec = layers[step.layer];
    const auto step_t0 = std::chrono::steady_clock::now();
    LayerRun run;
    run.name = spec.name;
    run.kind = spec.kind;
    switch (step.exec) {
      case NetworkProgram::Step::Exec::kFusedPadConv: {
        // PAD + following CONV as one on-chip fusion (decided at compile
        // time); the step covers both layers.
        LayerRun conv_run;
        conv_run.name = layers[step.layer + 1].name;
        pack::TiledFm fused_out;
        run_fused_pad_conv(fm, program.conv(step.conv),
                           program.fused(step.fused), fused_out, run,
                           conv_run);
        conv_run.host_wall_us = us_since(step_t0);
        if (options_.keep_activations) {
          // The padded intermediate never left the chip; reconstruct it for
          // callers that asked for every activation.
          result.activations.push_back(
              nn::pad_i8(pack::from_tiled(fm), spec.pad));
        }
        fm = std::move(fused_out);
        if (step.save_slot >= 0)
          slots[static_cast<std::size_t>(step.save_slot)] = fm;
        result.layers.push_back(std::move(run));
        if (options_.keep_activations)
          result.activations.push_back(pack::from_tiled(fm));
        result.layers.push_back(std::move(conv_run));
        continue;
      }
      case NetworkProgram::Step::Exec::kPadPool:
      case NetworkProgram::Step::Exec::kGlobalPool:
        fm = run_pad_pool(fm, program.pool(step.pool), run);
        break;
      case NetworkProgram::Step::Exec::kConv:
        fm = run_conv(fm, program.conv(step.conv), run);
        break;
      case NetworkProgram::Step::Exec::kFlatten: {
        const nn::FeatureMapI8 linear = pack::from_tiled(fm);
        flat.assign(linear.data(), linear.data() + linear.size());
        is_flat = true;
        break;
      }
      case NetworkProgram::Step::Exec::kFc: {
        const FcProgram& fc = program.fc(step.fc);
        flat = options_.mode == ExecMode::kFast
                   ? fast_fc(flat, fc)
                   : nn::fc_i8(flat, fc.weights, fc.bias, fc.out_dim, fc.rq);
        break;
      }
      case NetworkProgram::Step::Exec::kSoftmax:
        break;  // host-side, float domain; logits pass through
      case NetworkProgram::Step::Exec::kEltwiseAdd:
        // Host-side in every ExecMode — one shared kernel, zero cycles,
        // zero counters, so cycle/thread/fast agreement is structural.
        // Adds in place: the combine is element-wise, so aliasing is exact.
        core::fast_eltwise_add(fm,
                               slots[static_cast<std::size_t>(step.rhs_slot)],
                               program.eltwise(step.eltwise), fm);
        break;
    }
    if (step.save_slot >= 0)
      slots[static_cast<std::size_t>(step.save_slot)] = fm;
    run.host_wall_us = us_since(step_t0);
    if (options_.keep_activations && !is_flat)
      result.activations.push_back(pack::from_tiled(fm));
    result.layers.push_back(std::move(run));
  }
  result.flat_output = is_flat;
  if (is_flat)
    result.logits = std::move(flat);
  else
    result.final_fm = pack::from_tiled(fm);
  return result;
}

BatchNetworkRun Runtime::run_network_batch(
    const NetworkProgram& program,
    const std::vector<nn::FeatureMapI8>& inputs) {
  std::vector<const nn::FeatureMapI8*> ptrs;
  ptrs.reserve(inputs.size());
  for (const nn::FeatureMapI8& input : inputs) ptrs.push_back(&input);
  return run_network_batch(program, ptrs.data(), ptrs.size());
}

BatchNetworkRun Runtime::run_network_batch(const NetworkProgram& program,
                                           const nn::FeatureMapI8* const* inputs,
                                           std::size_t n) {
  TSCA_CHECK(n > 0);
  for (std::size_t i = 0; i < n; ++i)
    TSCA_CHECK(inputs[i]->shape() == program.net().input_shape(),
               "input shape mismatch");
  ensure_program_staged(program);
  const std::vector<nn::LayerSpec>& layers = program.net().layers();

  BatchNetworkRun result;
  result.requests.resize(n);
  // Activations, flats and residual slots live in member storage: every
  // vector and map below reuses what the previous batch grew, so a warm
  // runtime's steady state performs no per-batch tensor allocation (see
  // DESIGN.md §15 and reserve_warm_scratch).
  result.layers.reserve(2 * program.steps().size());
  size_fm_vec(batch_fms_, n);
  std::vector<pack::TiledFm>& fms = batch_fms_;
  for (std::size_t i = 0; i < n; ++i) pack::to_tiled(*inputs[i], fms[i]);
  batch_flats_.resize(n);
  batch_flats2_.resize(n);
  // FC reads and writes different flats, so the warm path ping-pongs between
  // two reused buffers instead of allocating the output fresh.
  std::vector<std::vector<std::int8_t>>* flats_cur = &batch_flats_;
  bool is_flat = false;
  // Residual-skip tensor slots, one map per slot per image.
  batch_slots_.resize(static_cast<std::size_t>(program.slot_count()));
  for (std::vector<pack::TiledFm>& slot : batch_slots_) slot.resize(n);
  std::vector<std::vector<pack::TiledFm>>& slots = batch_slots_;

  const std::uint64_t clock0 = trace_clock_;
  for (const NetworkProgram::Step& step : program.steps()) {
    check_cancel(options_);
    check_budget(options_, trace_clock_ - clock0);
    const nn::LayerSpec& spec = layers[step.layer];
    const auto step_t0 = std::chrono::steady_clock::now();
    LayerRun agg;
    agg.name = spec.name;
    agg.kind = spec.kind;
    switch (step.exec) {
      case NetworkProgram::Step::Exec::kFusedPadConv: {
        LayerRun conv_agg;
        conv_agg.name = layers[step.layer + 1].name;
        conv_agg.kind = layers[step.layer + 1].kind;
        if (options_.mode == ExecMode::kFast) {
          // Batch-major: every lane group shares the fused layer's weight
          // walk; aggregate predictions match the per-image loop exactly.
          fast_fused_pad_conv_batch(fms, program.conv(step.conv),
                                    program.fused(step.fused), agg, conv_agg);
          conv_agg.host_wall_us = us_since(step_t0);
        } else {
          for (std::size_t i = 0; i < n; ++i) {
            LayerRun pad_one, conv_one;
            pack::TiledFm fused_out;
            run_fused_pad_conv(fms[i], program.conv(step.conv),
                               program.fused(step.fused), fused_out, pad_one,
                               conv_one);
            fms[i] = std::move(fused_out);
            fold_layer_run(agg, pad_one);
            fold_layer_run(conv_agg, conv_one);
          }
        }
        if (step.save_slot >= 0)
          slots[static_cast<std::size_t>(step.save_slot)] = fms;
        result.layers.push_back(std::move(agg));
        result.layers.push_back(std::move(conv_agg));
        continue;  // two layers pushed
      }
      case NetworkProgram::Step::Exec::kPadPool:
      case NetworkProgram::Step::Exec::kGlobalPool:
        for (std::size_t i = 0; i < n; ++i) {
          LayerRun one;
          fms[i] = run_pad_pool(fms[i], program.pool(step.pool), one);
          fold_layer_run(agg, one);
        }
        break;
      case NetworkProgram::Step::Exec::kConv:
        // The batched path: every weight chunk staged once for all images.
        if (options_.mode == ExecMode::kFast)
          fast_conv_batch_inplace(fms, program.conv(step.conv), agg);
        else
          fms = run_conv_batch(fms, program.conv(step.conv), agg);
        break;
      case NetworkProgram::Step::Exec::kFlatten:
        for (std::size_t i = 0; i < n; ++i) {
          const nn::FeatureMapI8 linear = pack::from_tiled(fms[i]);
          (*flats_cur)[i].assign(linear.data(), linear.data() + linear.size());
        }
        is_flat = true;
        break;
      case NetworkProgram::Step::Exec::kFc: {
        const FcProgram& fc = program.fc(step.fc);
        if (options_.mode == ExecMode::kFast) {
          // Outputs can't alias inputs, so alternate the two reused buffers.
          std::vector<std::vector<std::int8_t>>* next =
              flats_cur == &batch_flats_ ? &batch_flats2_ : &batch_flats_;
          fast_fc_batch(*flats_cur, fc, *next);
          flats_cur = next;
        } else {
          for (std::size_t i = 0; i < n; ++i)
            (*flats_cur)[i] = nn::fc_i8((*flats_cur)[i], fc.weights, fc.bias,
                                        fc.out_dim, fc.rq);
        }
        break;
      }
      case NetworkProgram::Step::Exec::kSoftmax:
        break;  // host-side, float domain; logits pass through
      case NetworkProgram::Step::Exec::kEltwiseAdd: {
        const std::vector<pack::TiledFm>& rhs =
            slots[static_cast<std::size_t>(step.rhs_slot)];
        // In place: fast_eltwise_add's combine is element-wise, so writing
        // the left operand is exact and skips a scratch map per image.
        for (std::size_t i = 0; i < n; ++i)
          core::fast_eltwise_add(fms[i], rhs[i],
                                 program.eltwise(step.eltwise), fms[i]);
        break;
      }
    }
    if (step.save_slot >= 0)
      slots[static_cast<std::size_t>(step.save_slot)] = fms;
    agg.host_wall_us = us_since(step_t0);
    result.layers.push_back(std::move(agg));
  }

  for (std::size_t i = 0; i < n; ++i) {
    result.requests[i].flat_output = is_flat;
    if (is_flat)
      // Moving donates the reused buffer's storage to the result — one small
      // logits-sized allocation per request next batch, part of the warm
      // path's documented constant (DESIGN.md §15).
      result.requests[i].logits = std::move((*flats_cur)[i]);
    else
      result.requests[i].final_fm = pack::from_tiled(fms[i]);
  }
  return result;
}

NetworkRun Runtime::run_network(const nn::Network& net,
                                const quant::QuantizedModel& model,
                                const nn::FeatureMapI8& input) {
  ProgramOptions popts;
  popts.fuse_pad_conv = options_.fuse_pad_conv;
  const NetworkProgram program =
      NetworkProgram::compile(net, model, acc_.config(), popts);
  return run_network(program, input);
}

}  // namespace tsca::driver
