#include "driver/runtime.hpp"

#include <algorithm>
#include <utility>

#include "core/kernels.hpp"
#include "driver/stripe_exec.hpp"

namespace tsca::driver {

std::vector<std::uint8_t> bank_stripe_bytes(const pack::TiledFm& fm, int lane,
                                            int lanes, int row0, int rows) {
  TSCA_CHECK(row0 >= 0 && rows >= 0 && row0 + rows <= fm.tiles_y(),
             "stripe rows [" << row0 << ", " << row0 + rows << ") of "
                             << fm.tiles_y());
  std::vector<std::uint8_t> bytes;
  for (int c = lane; c < fm.channels(); c += lanes) {
    for (int r = row0; r < row0 + rows; ++r) {
      for (int x = 0; x < fm.tiles_x(); ++x) {
        const sim::Word word = sim::word_from_tile(fm.tile(c, r, x));
        bytes.insert(bytes.end(), word.b.begin(), word.b.end());
      }
    }
  }
  return bytes;
}

void unpack_bank_stripe(pack::TiledFm& fm,
                        const std::vector<std::uint8_t>& bytes, int lane,
                        int lanes, int row0, int rows) {
  TSCA_CHECK(row0 >= 0 && rows >= 0 && row0 + rows <= fm.tiles_y());
  std::size_t pos = 0;
  for (int c = lane; c < fm.channels(); c += lanes) {
    for (int r = row0; r < row0 + rows; ++r) {
      for (int x = 0; x < fm.tiles_x(); ++x) {
        TSCA_CHECK(pos + sim::kWordBytes <= bytes.size(),
                   "short stripe image");
        sim::Word word;
        std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                  bytes.begin() + static_cast<std::ptrdiff_t>(pos) +
                      sim::kWordBytes,
                  word.b.begin());
        fm.tile(c, r, x) = sim::tile_from_word(word);
        pos += sim::kWordBytes;
      }
    }
  }
}

Runtime::Runtime(core::Accelerator& accelerator, sim::Dram& dram,
                 sim::DmaEngine& dma, RuntimeOptions options)
    : acc_(accelerator), dram_(dram), dma_(dma), options_(std::move(options)) {}

Runtime::LayerTracer Runtime::begin_layer_trace(int units,
                                                const char* unit_prefix) {
  LayerTracer tracer;
  if (options_.trace == nullptr) return tracer;
  tracer.compute.reserve(static_cast<std::size_t>(units));
  tracer.dma.reserve(static_cast<std::size_t>(units));
  for (int u = 0; u < units; ++u) {
    const std::string base =
        options_.trace_scope + unit_prefix + std::to_string(u);
    obs::Track& compute = options_.trace->track(base);
    obs::Track& dma = options_.trace->track(base + ".dma");
    // Rewind both cursors to the layer start: compute spans then accumulate
    // exactly the unit's batch cycles, so the busiest unit's cursor lands at
    // trace_clock_ + run.cycles — flush with the layer span below.
    compute.set_now(trace_clock_);
    dma.set_now(trace_clock_);
    tracer.compute.push_back(&compute);
    tracer.dma.push_back(&dma);
  }
  return tracer;
}

void Runtime::finish_layer(const LayerRun& run) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    m.counter("runtime.layers").add(1);
    m.counter("runtime.accel_cycles").add(static_cast<std::int64_t>(run.cycles));
    m.counter("runtime.batches").add(run.batches);
    m.counter("runtime.stripes").add(run.stripes);
    m.counter("runtime.macs").add(run.macs);
    m.counter("runtime.dma.bytes_to_fpga")
        .add(static_cast<std::int64_t>(run.dma.bytes_to_fpga));
    m.counter("runtime.dma.bytes_to_dram")
        .add(static_cast<std::int64_t>(run.dma.bytes_to_dram));
    m.histogram("runtime.layer_cycles")
        .observe(static_cast<std::int64_t>(run.cycles));
  }
  if (options_.trace != nullptr) {
    const std::string label =
        run.name.empty() ? std::string(nn::layer_kind_name(run.kind))
                         : run.name;
    options_.trace->track(options_.trace_scope + "layers")
        .complete(label, "layer", trace_clock_, run.cycles,
                  {{"macs", run.macs},
                   {"stripes", run.stripes},
                   {"batches", run.batches},
                   {"dma_bytes",
                    static_cast<std::int64_t>(run.dma.bytes_to_fpga +
                                              run.dma.bytes_to_dram)}});
  }
  trace_clock_ += run.cycles;
}

pack::TiledFm Runtime::run_conv(const pack::TiledFm& input,
                                const pack::PackedFilters& packed,
                                const std::vector<std::int32_t>& bias,
                                const nn::Requant& rq, LayerRun& run) {
  const core::ArchConfig& cfg = acc_.config();
  TSCA_CHECK(packed.shape().ic == input.channels(),
             "filter ic " << packed.shape().ic << " != input channels "
                          << input.channels());
  TSCA_CHECK(packed.shape().kh == packed.shape().kw,
             "square kernels only (paper uses 3x3)");

  const WeightImage wimg(packed, cfg.lanes, cfg.group);
  const ConvPlan plan = plan_conv(cfg, input.shape(), packed.shape().oc,
                                  packed.shape().kh, wimg);
  pack::TiledFm output(plan.out_shape);

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();
  std::vector<std::uint64_t> instance_cycles(
      static_cast<std::size_t>(cfg.instances), 0);

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv_macs(input.shape(), packed.shape().oc, packed.shape().kh);
  run.stripes = static_cast<int>(plan.stripes.size());

  ExecCtx ctx{acc_, dram_, dma_, ddr_cursor_, options_.mode};
  const LayerTracer tracer = begin_layer_trace(cfg.instances, "inst");
  ctx.trace_kernels = options_.trace_kernels;
  for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
    const std::size_t inst = si % static_cast<std::size_t>(cfg.instances);
    if (tracer) {
      ctx.trace = tracer.compute[inst];
      dma_.set_trace(tracer.dma[inst]);
    }
    const StripeOutcome outcome = exec_conv_stripe(
        ctx, plan, plan.stripes[si], wimg, input, bias, rq, output);
    instance_cycles[inst] += outcome.cycles;
    run.batches += outcome.batches;
  }
  if (tracer) dma_.set_trace(nullptr);
  run.cycles = *std::max_element(instance_cycles.begin(),
                                 instance_cycles.end());
  run.counters = core::snapshot(acc_.counters()) - counters_before;
  run.dma = dma_.stats() - dma_before;
  finish_layer(run);
  return output;
}

pack::TiledFm Runtime::run_pad_pool(const pack::TiledFm& input,
                                    core::Opcode op,
                                    const nn::FmShape& out_shape, int win,
                                    int stride, int offset_y, int offset_x,
                                    LayerRun& run) {
  const core::ArchConfig& cfg = acc_.config();
  const PoolPlan plan = plan_pool(cfg, input.shape(), out_shape, op, win,
                                  stride, offset_y, offset_x);
  pack::TiledFm output(out_shape);

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();
  std::vector<std::uint64_t> instance_cycles(
      static_cast<std::size_t>(cfg.instances), 0);

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = op == core::Opcode::kPad ? nn::LayerKind::kPad
                                      : nn::LayerKind::kMaxPool;
  run.stripes = static_cast<int>(plan.stripes.size());

  ExecCtx ctx{acc_, dram_, dma_, ddr_cursor_, options_.mode};
  const LayerTracer tracer = begin_layer_trace(cfg.instances, "inst");
  ctx.trace_kernels = options_.trace_kernels;
  for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
    const std::size_t inst = si % static_cast<std::size_t>(cfg.instances);
    if (tracer) {
      ctx.trace = tracer.compute[inst];
      dma_.set_trace(tracer.dma[inst]);
    }
    const StripeOutcome outcome =
        exec_pool_stripe(ctx, plan, plan.stripes[si], input, output);
    instance_cycles[inst] += outcome.cycles;
    run.batches += outcome.batches;
  }
  if (tracer) dma_.set_trace(nullptr);
  run.cycles = *std::max_element(instance_cycles.begin(),
                                 instance_cycles.end());
  run.counters = core::snapshot(acc_.counters()) - counters_before;
  run.dma = dma_.stats() - dma_before;
  finish_layer(run);
  return output;
}

std::vector<pack::TiledFm> Runtime::run_conv_batch(
    const std::vector<pack::TiledFm>& inputs,
    const pack::PackedFilters& packed, const std::vector<std::int32_t>& bias,
    const nn::Requant& rq, LayerRun& run) {
  TSCA_CHECK(!inputs.empty());
  const core::ArchConfig& cfg = acc_.config();
  for (const pack::TiledFm& input : inputs)
    TSCA_CHECK(input.shape() == inputs.front().shape(),
               "batch images must share a shape");
  TSCA_CHECK(packed.shape().ic == inputs.front().channels());
  TSCA_CHECK(packed.shape().kh == packed.shape().kw);

  const WeightImage wimg(packed, cfg.lanes, cfg.group);
  const ConvPlan plan = plan_conv(cfg, inputs.front().shape(),
                                  packed.shape().oc, packed.shape().kh, wimg);
  std::vector<pack::TiledFm> outputs(inputs.size(),
                                     pack::TiledFm(plan.out_shape));

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();
  std::vector<std::uint64_t> instance_cycles(
      static_cast<std::size_t>(cfg.instances), 0);

  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv_macs(inputs.front().shape(), packed.shape().oc,
                       packed.shape().kh) *
             static_cast<std::int64_t>(inputs.size());
  run.stripes = static_cast<int>(plan.stripes.size());

  ExecCtx ctx{acc_, dram_, dma_, ddr_cursor_, options_.mode};
  const LayerTracer tracer = begin_layer_trace(cfg.instances, "inst");
  ctx.trace_kernels = options_.trace_kernels;
  for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
    const ConvStripe& stripe = plan.stripes[si];
    const std::size_t instance = si % static_cast<std::size_t>(cfg.instances);
    if (tracer) {
      ctx.trace = tracer.compute[instance];
      dma_.set_trace(tracer.dma[instance]);
    }
    for (const ConvStripe::Chunk& chunk : stripe.chunks) {
      // Weights once per chunk — the batch's whole point.
      const std::vector<core::Instruction> instrs =
          stage_chunk_weights(ctx, plan, stripe, chunk, wimg, bias, rq);
      for (std::size_t img = 0; img < inputs.size(); ++img) {
        const StripeOutcome outcome = exec_batch_image_chunk(
            ctx, plan, stripe, chunk, instrs, inputs[img], outputs[img]);
        instance_cycles[instance] += outcome.cycles;
        run.batches += outcome.batches;
      }
    }
  }
  if (tracer) dma_.set_trace(nullptr);
  run.cycles = *std::max_element(instance_cycles.begin(),
                                 instance_cycles.end());
  run.counters = core::snapshot(acc_.counters()) - counters_before;
  run.dma = dma_.stats() - dma_before;
  finish_layer(run);
  return outputs;
}

std::vector<std::int8_t> Runtime::run_fc_as_conv(
    const std::vector<std::int8_t>& input,
    const std::vector<std::int8_t>& weights,
    const std::vector<std::int32_t>& bias, int out_dim, const nn::Requant& rq,
    LayerRun& run) {
  TSCA_CHECK(out_dim > 0 && !input.empty());
  TSCA_CHECK(weights.size() ==
             input.size() * static_cast<std::size_t>(out_dim));
  const int in_dim = static_cast<int>(input.size());

  // 1x1 feature map with in_dim channels; filters are out_dim x in_dim x 1x1.
  nn::FeatureMapI8 fm({in_dim, 1, 1});
  for (int c = 0; c < in_dim; ++c)
    fm.at(c, 0, 0) = input[static_cast<std::size_t>(c)];
  nn::FilterBankI8 bank({out_dim, in_dim, 1, 1});
  for (int o = 0; o < out_dim; ++o)
    for (int c = 0; c < in_dim; ++c)
      bank.at(o, c, 0, 0) =
          weights[static_cast<std::size_t>(o) * input.size() +
                  static_cast<std::size_t>(c)];

  run.name = "fc-as-conv";
  const pack::TiledFm out =
      run_conv(pack::to_tiled(fm), pack::pack_filters(bank), bias, rq, run);
  run.kind = nn::LayerKind::kFullyConnected;
  const nn::FeatureMapI8 linear = pack::from_tiled(out);
  std::vector<std::int8_t> logits(static_cast<std::size_t>(out_dim));
  for (int o = 0; o < out_dim; ++o)
    logits[static_cast<std::size_t>(o)] = linear.at(o, 0, 0);
  return logits;
}

bool Runtime::run_fused_pad_conv(const pack::TiledFm& input,
                                 const nn::Padding& pad,
                                 const pack::PackedFilters& packed,
                                 const std::vector<std::int32_t>& bias,
                                 const nn::Requant& rq, pack::TiledFm& output,
                                 LayerRun& pad_run, LayerRun& conv_run) {
  const core::ArchConfig& cfg = acc_.config();
  TSCA_CHECK(packed.shape().ic == input.channels());
  TSCA_CHECK(packed.shape().kh == packed.shape().kw);
  const int kernel = packed.shape().kh;
  const nn::FmShape raw = input.shape();
  const nn::FmShape padded{raw.c, raw.h + pad.top + pad.bottom,
                           raw.w + pad.left + pad.right};
  if (padded.h < kernel || padded.w < kernel) return false;
  const nn::FmShape out_shape{packed.shape().oc, padded.h - kernel + 1,
                              padded.w - kernel + 1};
  pad_run.reset_stats();
  conv_run.reset_stats();

  // On-chip layout: raw input | padded map | OFM | weight chunk.  Everything
  // must fit unstriped, with all filter groups' weights resident at once.
  const int lanes = cfg.lanes;
  const int slots_in = (raw.c + lanes - 1) / lanes;
  const int slots_out = (out_shape.c + lanes - 1) / lanes;
  const int raw_words =
      slots_in * pack::tiles_for(raw.h) * pack::tiles_for(raw.w);
  const int padded_words =
      slots_in * pack::tiles_for(padded.h) * pack::tiles_for(padded.w);
  const int out_words =
      slots_out * pack::tiles_for(out_shape.h) * pack::tiles_for(out_shape.w);
  const WeightImage wimg(packed, lanes, cfg.group);
  int weight_words = 0;
  for (int g = 0; g < wimg.groups(); ++g)
    weight_words += wimg.aligned_words(g);
  if (raw_words + padded_words + out_words + weight_words > cfg.bank_words)
    return false;

  const int padded_base = raw_words;
  const int ofm_base = raw_words + padded_words;
  const int weight_base = ofm_base + out_words;

  const auto counters_before = core::snapshot(acc_.counters());
  const auto dma_before = dma_.stats();

  // Stage the raw input and every weight stream once.
  ExecCtx ctx{acc_, dram_, dma_, ddr_cursor_, options_.mode};
  const LayerTracer tracer = begin_layer_trace(1, "inst");
  ctx.trace_kernels = options_.trace_kernels;
  if (tracer) {
    ctx.trace = tracer.compute[0];
    dma_.set_trace(tracer.dma[0]);
  }
  for (int lane = 0; lane < lanes; ++lane) {
    stage_to_bank(ctx, acc_.bank(lane), 0,
                  bank_stripe_bytes(input, lane, lanes, 0,
                                    pack::tiles_for(raw.h)));
    int base = weight_base;
    for (int g = 0; g < wimg.groups(); ++g) {
      stage_to_bank(ctx, acc_.bank(lane), base, wimg.bytes(g, lane));
      base += wimg.aligned_words(g);
    }
  }

  // Batch 1: PAD into the on-chip padded region.  (A separate batch: the
  // dependent CONV may only start once the pad's writes have landed, which
  // the host guarantees by polling completion — exactly what the paper's
  // driver does between dependent instructions.)
  core::PadPoolInstr pi;
  pi.ifm_base = 0;
  pi.ifm_tiles_x = pack::tiles_for(raw.w);
  pi.ifm_tiles_y = pack::tiles_for(raw.h);
  pi.ifm_h = raw.h;
  pi.ifm_w = raw.w;
  pi.channels = raw.c;
  pi.ofm_base = padded_base;
  pi.ofm_tiles_x = pack::tiles_for(padded.w);
  pi.ofm_tiles_y = pack::tiles_for(padded.h);
  pi.ofm_h = padded.h;
  pi.ofm_w = padded.w;
  pi.win = 1;
  pi.stride = 1;
  pi.offset_y = -pad.top;
  pi.offset_x = -pad.left;
  const core::BatchStats pad_stats =
      run_batch_traced(ctx, {core::Instruction::make_pad(pi)}, "fused pad");
  pad_run.on_accelerator = true;
  pad_run.kind = nn::LayerKind::kPad;
  pad_run.cycles = pad_stats.cycles;
  pad_run.stripes = 1;
  pad_run.batches = 1;
  finish_layer(pad_run);

  // Batch 2: all filter groups, reading the padded map in place.
  std::vector<core::Instruction> instrs;
  int base = weight_base;
  for (int g = 0; g < wimg.groups(); ++g) {
    core::ConvInstr ci;
    ci.ifm_base = padded_base;
    ci.ifm_tiles_x = pi.ofm_tiles_x;
    ci.ifm_tiles_y = pi.ofm_tiles_y;
    ci.ifm_channels = padded.c;
    ci.weight_base = base;
    ci.ofm_base = ofm_base;
    ci.ofm_tiles_x = pack::tiles_for(out_shape.w);
    ci.ofm_tiles_y = pack::tiles_for(out_shape.h);
    ci.oc0 = g * cfg.group;
    ci.active_filters = wimg.active_filters(g);
    ci.kernel_h = ci.kernel_w = kernel;
    for (int k = 0; k < ci.active_filters; ++k) {
      const std::size_t oc = static_cast<std::size_t>(ci.oc0 + k);
      ci.bias[static_cast<std::size_t>(k)] = oc < bias.size() ? bias[oc] : 0;
    }
    ci.shift = rq.shift;
    ci.relu = rq.relu;
    ci.ternary_weights = wimg.ternary();
    instrs.push_back(core::Instruction::make_conv(ci));
    base += wimg.aligned_words(g);
  }
  const core::BatchStats conv_stats =
      run_batch_traced(ctx, instrs, "fused conv");
  conv_run.on_accelerator = true;
  conv_run.kind = nn::LayerKind::kConv;
  conv_run.cycles = conv_stats.cycles;
  conv_run.macs = conv_macs(padded, out_shape.c, kernel);
  conv_run.stripes = 1;
  conv_run.batches = 1;

  // Read the OFM back.
  output = pack::TiledFm(out_shape);
  for (int lane = 0; lane < lanes; ++lane) {
    const int lane_words =
        core::lane_channel_count(out_shape.c, lane, lanes) *
        pack::tiles_for(out_shape.h) * pack::tiles_for(out_shape.w);
    if (lane_words == 0) continue;
    unpack_bank_stripe(output,
                       stage_from_bank(ctx, acc_.bank(lane), ofm_base,
                                       lane_words),
                       lane, lanes, 0, pack::tiles_for(out_shape.h));
  }
  if (tracer) dma_.set_trace(nullptr);
  conv_run.counters = core::snapshot(acc_.counters()) - counters_before;
  conv_run.dma = dma_.stats() - dma_before;
  finish_layer(conv_run);
  return true;
}

NetworkRun Runtime::run_network(const nn::Network& net,
                                const quant::QuantizedModel& model,
                                const nn::FeatureMapI8& input) {
  TSCA_CHECK(input.shape() == net.input_shape(), "input shape mismatch");
  NetworkRun result;
  pack::TiledFm fm = pack::to_tiled(input);
  std::vector<std::int8_t> flat;
  bool is_flat = false;

  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const nn::LayerSpec& spec = net.layers()[i];
    LayerRun run;
    run.name = spec.name;
    run.kind = spec.kind;
    switch (spec.kind) {
      case nn::LayerKind::kPad: {
        TSCA_CHECK(!is_flat, "pad after flatten");
        // Fuse with a directly following conv when both fit on chip.
        if (options_.fuse_pad_conv && i + 1 < net.layers().size() &&
            net.layers()[i + 1].kind == nn::LayerKind::kConv) {
          LayerRun conv_run;
          conv_run.name = net.layers()[i + 1].name;
          const pack::PackedFilters packed =
              pack::pack_filters(model.weights.conv[i + 1]);
          pack::TiledFm fused_out;
          if (run_fused_pad_conv(fm, spec.pad, packed,
                                 model.weights.conv_bias[i + 1],
                                 model.weights.conv_requant[i + 1], fused_out,
                                 run, conv_run)) {
            if (options_.keep_activations) {
              // The padded intermediate never left the chip; reconstruct it
              // for callers that asked for every activation.
              const nn::FmShape padded{
                  fm.shape().c, fm.shape().h + spec.pad.top + spec.pad.bottom,
                  fm.shape().w + spec.pad.left + spec.pad.right};
              result.activations.push_back(
                  nn::pad_i8(pack::from_tiled(fm), spec.pad));
              (void)padded;
            }
            fm = std::move(fused_out);
            result.layers.push_back(std::move(run));
            if (options_.keep_activations)
              result.activations.push_back(pack::from_tiled(fm));
            result.layers.push_back(std::move(conv_run));
            ++i;  // the conv layer was consumed
            continue;
          }
        }
        const nn::FmShape out{fm.shape().c,
                              fm.shape().h + spec.pad.top + spec.pad.bottom,
                              fm.shape().w + spec.pad.left + spec.pad.right};
        fm = run_pad_pool(fm, core::Opcode::kPad, out, 1, 1, -spec.pad.top,
                          -spec.pad.left, run);
        break;
      }
      case nn::LayerKind::kConv: {
        TSCA_CHECK(!is_flat, "conv after flatten");
        const pack::PackedFilters packed =
            pack::pack_filters(model.weights.conv[i]);
        fm = run_conv(fm, packed, model.weights.conv_bias[i],
                      model.weights.conv_requant[i], run);
        break;
      }
      case nn::LayerKind::kMaxPool: {
        TSCA_CHECK(!is_flat, "pool after flatten");
        const nn::FmShape out{
            fm.shape().c,
            nn::conv_out_extent(fm.shape().h, spec.pool.size,
                                spec.pool.stride),
            nn::conv_out_extent(fm.shape().w, spec.pool.size,
                                spec.pool.stride)};
        fm = run_pad_pool(fm, core::Opcode::kPool, out, spec.pool.size,
                          spec.pool.stride, 0, 0, run);
        break;
      }
      case nn::LayerKind::kFlatten: {
        const nn::FeatureMapI8 linear = pack::from_tiled(fm);
        flat.assign(linear.data(), linear.data() + linear.size());
        is_flat = true;
        break;
      }
      case nn::LayerKind::kFullyConnected:
        TSCA_CHECK(is_flat, "fc before flatten");
        flat = nn::fc_i8(flat, model.weights.fc[i], model.weights.fc_bias[i],
                         spec.fc.out_dim, model.weights.fc_requant[i]);
        break;
      case nn::LayerKind::kSoftmax:
        break;  // host-side, float domain; logits pass through
    }
    if (options_.keep_activations && !is_flat)
      result.activations.push_back(pack::from_tiled(fm));
    result.layers.push_back(std::move(run));
  }
  result.flat_output = is_flat;
  if (is_flat)
    result.logits = std::move(flat);
  else
    result.final_fm = pack::from_tiled(fm);
  return result;
}

}  // namespace tsca::driver
