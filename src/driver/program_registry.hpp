// Multi-model program registry — many compiled networks, one DDR budget.
//
// A serving fleet holds more model recipes than the accelerator's DDR holds
// weight images.  ProgramRegistry owns the recipes (Network + QuantizedModel
// per model id) and materializes compiled NetworkPrograms on demand:
//
//   * acquire(id) returns a ProgramHandle pinning the compiled program in
//     memory for the handle's lifetime (workers hold one per batch);
//   * every compiled program's WeightImages are content-hashed, and streams
//     shared between models (common backbones, tied weights) are charged to
//     the DDR budget once;
//   * when compiling a program would exceed the configured byte budget, the
//     least-recently-acquired programs that are neither pinned nor in use
//     are evicted — their compiled artifact is dropped, the recipe stays,
//     and the next acquire recompiles (new stamp, so runtimes restage).
//
// Thread-safe: acquire/release/stats may race freely.  The registry must
// outlive every handle it issued.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/program.hpp"

namespace tsca::driver {

class CompileCache;

// acquire() of an id that was never added.
class UnknownModelError : public Error {
 public:
  explicit UnknownModelError(const std::string& id)
      : Error("unknown model id: " + id), model_id_(id) {}
  const std::string& model_id() const { return model_id_; }

 private:
  std::string model_id_;
};

// The program's own weight bytes alone exceed the whole DDR budget — no
// amount of eviction can make it fit.
class RegistryBudgetError : public Error {
 public:
  using Error::Error;
};

struct RegistryOptions {
  // Byte budget for resident weight images (0 = unlimited).  Shared streams
  // are charged once; pinned and in-use programs can hold the total above
  // the budget (soft overage), but a single program that alone exceeds it
  // is rejected with RegistryBudgetError.
  std::uint64_t ddr_budget_bytes = 0;
  ProgramOptions program;
  // Optional persistent compile cache: materializations consult it before
  // compiling and store what they compile.  Not owned; must outlive the
  // registry.  Null = compile in-process every time.
  CompileCache* compile_cache = nullptr;
};

struct RegistryStats {
  std::uint64_t compiles = 0;      // programs materialized (incl. recompiles)
  std::uint64_t cache_hits = 0;    // acquires served without compiling
  std::uint64_t evictions = 0;     // programs dropped for budget headroom
  std::uint64_t resident_bytes = 0;    // unique weight bytes currently charged
  std::uint64_t shared_bytes_saved = 0;  // bytes dedup avoided charging
};

class ProgramRegistry;

// Movable RAII lease on a compiled program.  While any handle to a model is
// alive the program cannot be evicted; destruction releases the lease.
class ProgramHandle {
 public:
  ProgramHandle() = default;
  ProgramHandle(ProgramHandle&& other) noexcept;
  ProgramHandle& operator=(ProgramHandle&& other) noexcept;
  ~ProgramHandle();
  ProgramHandle(const ProgramHandle&) = delete;
  ProgramHandle& operator=(const ProgramHandle&) = delete;

  bool valid() const { return program_ != nullptr; }
  const std::string& model_id() const;
  const NetworkProgram& program() const {
    TSCA_CHECK(program_ != nullptr, "empty program handle");
    return *program_;
  }

 private:
  friend class ProgramRegistry;
  struct Entry;
  ProgramHandle(ProgramRegistry* registry, std::shared_ptr<Entry> entry,
                std::shared_ptr<const NetworkProgram> program)
      : registry_(registry),
        entry_(std::move(entry)),
        program_(std::move(program)) {}

  ProgramRegistry* registry_ = nullptr;
  std::shared_ptr<Entry> entry_;
  // The handle's own reference: even if the entry is evicted afterwards,
  // this handle's program stays alive until the handle dies.
  std::shared_ptr<const NetworkProgram> program_;
};

class ProgramRegistry {
 public:
  explicit ProgramRegistry(const core::ArchConfig& cfg,
                           RegistryOptions options = {});
  ~ProgramRegistry();
  ProgramRegistry(const ProgramRegistry&) = delete;
  ProgramRegistry& operator=(const ProgramRegistry&) = delete;

  // Registers a model recipe.  Ids must be unique, non-empty, at most 64
  // bytes, characters [A-Za-z0-9_.-] (they feed metric names and the wire
  // protocol).  Pinned models are never evicted.  Compilation is deferred
  // to the first acquire.
  void add_model(const std::string& id, const nn::Network& net,
                 const quant::QuantizedModel& model, bool pinned = false);

  bool has_model(const std::string& id) const;
  std::vector<std::string> model_ids() const;

  // Returns a lease on the compiled program, compiling (and evicting LRU
  // unpinned idle programs for budget headroom) as needed.  Throws
  // UnknownModelError / RegistryBudgetError.
  ProgramHandle acquire(const std::string& id);

  const core::ArchConfig& config() const { return cfg_; }
  const RegistryOptions& options() const { return options_; }
  RegistryStats stats() const;

  // True when `id`'s program is currently materialized (test/introspection).
  bool resident(const std::string& id) const;

 private:
  friend class ProgramHandle;
  using Entry = ProgramHandle::Entry;

  void release(const std::shared_ptr<Entry>& entry);
  void charge_locked(Entry& entry);
  void discharge_locked(Entry& entry);
  void evict_for_headroom_locked(const Entry& keep);

  core::ArchConfig cfg_;
  RegistryOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  // hash → {bytes, number of resident images sharing it}
  std::map<std::uint64_t, std::pair<std::uint64_t, int>> stream_refs_;
  std::uint64_t tick_ = 0;
  RegistryStats stats_;
};

}  // namespace tsca::driver
