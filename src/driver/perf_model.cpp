#include "driver/perf_model.hpp"

#include <algorithm>
#include <functional>

#include "core/kernels.hpp"
#include "core/poolgen.hpp"
#include "pack/lane_stream.hpp"

namespace tsca::driver {

namespace {

// Parses the serialized stream of (group, lane) back out of a WeightImage —
// roundtrip-exact against the build_lane_stream the image was made from.
pack::LaneStream image_lane_stream(const WeightImage& wimg, int g, int lane,
                                   int in_channels, int wtiles) {
  const int my_channels =
      core::lane_channel_count(in_channels, lane, wimg.lanes());
  return pack::parse_lane_stream(wimg.bytes(g, lane), my_channels, wtiles,
                                 wimg.active_filters(g), wimg.ternary());
}

}  // namespace

PerfModel::PerfModel(core::ArchConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

std::int64_t PerfModel::conv_instr_cycles(
    const core::ConvInstr& instr, const pack::PackedFilters& packed) const {
  return conv_instr_cycles_streams(instr, [&](int lane) {
    return pack::build_lane_stream(packed, instr.oc0, instr.active_filters,
                                   lane, cfg_.lanes, instr.ternary_weights);
  });
}

std::int64_t PerfModel::conv_instr_cycles(const core::ConvInstr& instr,
                                          const WeightImage& wimg,
                                          int g) const {
  const int wtiles = instr.wtiles_y() * instr.wtiles_x();
  return conv_instr_cycles_streams(instr, [&](int lane) {
    return image_lane_stream(wimg, g, lane, instr.ifm_channels, wtiles);
  });
}

std::int64_t PerfModel::conv_instr_cycles_streams(
    const core::ConvInstr& instr,
    const std::function<pack::LaneStream(int)>& stream_for) const {
  const std::int64_t scratch_bytes =
      static_cast<std::int64_t>(cfg_.weight_scratch_words) * 16;

  std::int64_t max_preload = 0;
  std::int64_t max_lane_position = 0;
  for (int lane = 0; lane < cfg_.lanes; ++lane) {
    const int my_channels =
        core::lane_channel_count(instr.ifm_channels, lane, cfg_.lanes);
    if (my_channels == 0) {
      max_lane_position = std::max<std::int64_t>(max_lane_position, 1);
      continue;
    }
    const pack::LaneStream stream = stream_for(lane);
    max_preload = std::max<std::int64_t>(
        max_preload,
        std::min<std::int64_t>(stream.total_words(),
                               cfg_.weight_scratch_words));
    // Fetch (port) and inject (weight command) totals pipeline against each
    // other across the steps of a position — and across positions, since
    // the barrier release hides behind the bundle FIFO — so the sustained
    // per-position cost is the larger of the two totals.
    std::int64_t fetch_total = 0;
    std::int64_t inject_total = 0;
    int steps = 0;
    for (int ci = 0; ci < stream.channels; ++ci) {
      for (int wt = 0; wt < stream.wtiles; ++wt) {
        const pack::LaneTileGroup& group = stream.group(ci, wt);
        if (cfg_.skip_empty_tile_groups &&
            group.total_nnz(instr.active_filters) == 0)
          continue;
        ++steps;
        const std::int64_t spill_begin =
            std::max(group.byte_begin, scratch_bytes);
        const std::int64_t spill_words =
            (std::max<std::int64_t>(0, group.byte_end - spill_begin) + 15) /
            16;
        fetch_total += 4 + spill_words;
        inject_total += std::max(1, group.max_nnz(instr.active_filters));
      }
    }
    // The position barrier sits in the fetch path; it only shows up when
    // fetch is the bottleneck (inject slack hides it otherwise).
    const std::int64_t barrier = cfg_.lanes > 1 ? 1 : 0;
    std::int64_t position = std::max(fetch_total + barrier, inject_total);
    if (steps == 0) position = 1 + barrier;  // empty-marker bundle
    max_lane_position = std::max(max_lane_position, position);
  }

  return constants_.instr_dispatch + max_preload +
         static_cast<std::int64_t>(instr.positions()) * max_lane_position;
}

ConvPerf PerfModel::conv_layer(const nn::FmShape& padded_in,
                               const pack::PackedFilters& packed) const {
  const nn::FilterShape& fs = packed.shape();
  TSCA_CHECK(fs.ic == padded_in.c);
  const WeightImage wimg(packed, cfg_.lanes, cfg_.group);
  const ConvPlan plan = plan_conv(cfg_, padded_in, fs.oc, fs.kh, wimg);
  return conv_plan_perf(plan, wimg);
}

ConvPerf PerfModel::conv_plan_perf(const ConvPlan& plan,
                                   const WeightImage& wimg) const {
  ConvPerf perf;
  perf.macs_dense = conv_macs(plan.in_shape, plan.out_shape.c, plan.kernel);
  perf.stripes = static_cast<int>(plan.stripes.size());
  perf.ideal_cycles =
      (perf.macs_dense + cfg_.macs_per_cycle() - 1) / cfg_.macs_per_cycle();

  std::vector<std::int64_t> instance_cycles(
      static_cast<std::size_t>(cfg_.instances), 0);
  for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
    const ConvStripe& stripe = plan.stripes[si];
    std::int64_t stripe_cycles = 0;
    for (const ConvStripe::Chunk& chunk : stripe.chunks) {
      for (int k = 0; k < chunk.count; ++k) {
        const int g = chunk.g0 + k;
        const core::ConvInstr instr = make_conv_instr(
            plan, stripe, g, plan.weight_base, wimg, {},
            nn::Requant{}, cfg_.group);
        stripe_cycles += conv_instr_cycles(instr, wimg, g);
        ++perf.instructions;
        perf.positions += instr.positions();
      }
    }
    stripe_cycles += static_cast<std::int64_t>(stripe.chunks.size()) *
                     constants_.batch_overhead;
    instance_cycles[si % static_cast<std::size_t>(cfg_.instances)] +=
        stripe_cycles;
    // DMA traffic of this stripe: IFM in, OFM out, weight chunks.
    perf.dma_bytes +=
        16LL * (static_cast<std::int64_t>(plan.in_shape.c) *
                    stripe.in_tile_rows * plan.in_tiles_x +
                static_cast<std::int64_t>(plan.out_shape.c) *
                    stripe.otile_rows * plan.out_tiles_x);
    for (const ConvStripe::Chunk& chunk : stripe.chunks)
      for (int k = 0; k < chunk.count; ++k)
        for (int lane = 0; lane < cfg_.lanes; ++lane)
          perf.dma_bytes += 16LL * wimg.words(chunk.g0 + k, lane);
  }
  perf.cycles = *std::max_element(instance_cycles.begin(),
                                  instance_cycles.end());

  // Zero-skip accounting (independent of striping).  Kept in 64 bits end to
  // end: large feature maps overflow an int position count (tiles_y ×
  // tiles_x alone can exceed 2^31).
  const std::int64_t positions_total = [&] {
    std::int64_t p = 0;
    for (const ConvStripe& s : plan.stripes)
      p += static_cast<std::int64_t>(s.otile_rows) * plan.out_tiles_x;
    return p;
  }();
  const int wt_extent = (plan.kernel + pack::kTileDim - 1) / pack::kTileDim;
  zero_skip_counters(wimg, plan.in_shape.c, wt_extent * wt_extent,
                     positions_total, perf);
  return perf;
}

void PerfModel::zero_skip_counters(const WeightImage& wimg, int in_channels,
                                   int wtiles, std::int64_t positions_total,
                                   ConvPerf& perf) const {
  // Per (group, lane, channel, weight tile), the concurrent filters inject
  // max-nnz commands; slots without an entry are bubbles.
  for (int g = 0; g < wimg.groups(); ++g) {
    const int active = wimg.active_filters(g);
    for (int lane = 0; lane < cfg_.lanes; ++lane) {
      if (core::lane_channel_count(in_channels, lane, cfg_.lanes) == 0) {
        // Channel-less lanes emit one all-bubble end-of-position marker.
        perf.weight_cmds += positions_total;
        perf.weight_bubbles += static_cast<std::int64_t>(active) *
                               positions_total;
        continue;
      }
      const pack::LaneStream stream =
          image_lane_stream(wimg, g, lane, in_channels, wtiles);
      std::int64_t steps = 0;
      for (const pack::LaneTileGroup& group : stream.groups) {
        if (cfg_.skip_empty_tile_groups && group.total_nnz(active) == 0)
          continue;
        ++steps;
        const std::int64_t n = std::max(1, group.max_nnz(active));
        perf.weight_cmds += n * positions_total;
        perf.weight_bubbles +=
            (n * active - group.total_nnz(active)) * positions_total;
        perf.macs_performed += static_cast<std::int64_t>(
                                   group.total_nnz(active)) *
                               pack::kTileSize * positions_total;
      }
      if (steps == 0) {
        perf.weight_cmds += positions_total;
        perf.weight_bubbles += static_cast<std::int64_t>(active) *
                               positions_total;
      }
    }
  }
}

std::int64_t PerfModel::pool_instr_cycles(
    const core::PadPoolInstr& instr) const {
  // Steps per output tile are channel-independent; lanes run their channel
  // slots in parallel.
  const std::int64_t steps_per_channel = core::count_pool_steps(instr);
  std::int64_t worst_lane = 0;
  for (int lane = 0; lane < cfg_.lanes; ++lane)
    worst_lane = std::max<std::int64_t>(
        worst_lane,
        static_cast<std::int64_t>(
            core::lane_channel_count(instr.channels, lane, cfg_.lanes)) *
            steps_per_channel);
  return constants_.instr_dispatch + worst_lane;
}

PoolPerf PerfModel::pool_layer(const nn::FmShape& in_shape,
                               const nn::FmShape& out_shape, core::Opcode op,
                               int win, int stride, int offset_y,
                               int offset_x) const {
  return pool_plan_perf(plan_pool(cfg_, in_shape, out_shape, op, win, stride,
                                  offset_y, offset_x));
}

PoolPerf PerfModel::pool_plan_perf(const PoolPlan& plan) const {
  PoolPerf perf;
  perf.stripes = static_cast<int>(plan.stripes.size());
  std::vector<std::int64_t> instance_cycles(
      static_cast<std::size_t>(cfg_.instances), 0);
  for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
    const core::PadPoolInstr instr =
        make_pool_instr(plan, plan.stripes[si]);
    perf.ops += core::count_pool_steps(instr) * instr.channels;
    instance_cycles[si % static_cast<std::size_t>(cfg_.instances)] +=
        pool_instr_cycles(instr) + constants_.batch_overhead;
  }
  perf.cycles = *std::max_element(instance_cycles.begin(),
                                  instance_cycles.end());
  return perf;
}

}  // namespace tsca::driver
