#include "driver/compiler.hpp"

#include <algorithm>

#include "pack/tile.hpp"

namespace tsca::driver {

WeightImage::WeightImage(const pack::PackedFilters& packed, int lanes,
                         int group) {
  TSCA_CHECK(lanes >= 1 && group >= 1);
  oc_ = packed.shape().oc;
  ternary_ = pack::is_ternary(packed);
  lanes_ = lanes;
  group_size_ = group;
  groups_ = (oc_ + group - 1) / group;
  bytes_.resize(static_cast<std::size_t>(groups_) * lanes_);
  words_.resize(static_cast<std::size_t>(groups_) * lanes_, 0);
  for (int g = 0; g < groups_; ++g) {
    const int oc0 = g * group;
    const int active = std::min(group, oc_ - oc0);
    for (int lane = 0; lane < lanes_; ++lane) {
      const pack::LaneStream stream = pack::build_lane_stream(
          packed, oc0, active, lane, lanes_, ternary_);
      bytes_[index(g, lane)] = pack::serialize_lane_stream(stream);
      words_[index(g, lane)] = static_cast<int>(stream.total_words());
    }
  }
}

int WeightImage::active_filters(int g) const {
  TSCA_CHECK(g >= 0 && g < groups_);
  return std::min(group_size_, oc_ - g * group_size_);
}

int WeightImage::aligned_words(int g) const {
  int w = 0;
  for (int lane = 0; lane < lanes_; ++lane) w = std::max(w, words(g, lane));
  return w;
}

std::int64_t conv_macs(const nn::FmShape& in_shape, int out_channels,
                       int kernel) {
  const int oh = in_shape.h - kernel + 1;
  const int ow = in_shape.w - kernel + 1;
  TSCA_CHECK(oh > 0 && ow > 0);
  return static_cast<std::int64_t>(out_channels) * oh * ow * in_shape.c *
         kernel * kernel;
}

ConvPlan plan_conv(const core::ArchConfig& cfg, const nn::FmShape& in_shape,
                   int out_channels, int kernel, const WeightImage& weights) {
  TSCA_CHECK(out_channels > 0 && kernel > 0);
  TSCA_CHECK(in_shape.h >= kernel && in_shape.w >= kernel,
             "kernel larger than input");
  ConvPlan plan;
  plan.in_shape = in_shape;
  plan.out_shape = {out_channels, in_shape.h - kernel + 1,
                    in_shape.w - kernel + 1};
  plan.kernel = kernel;
  plan.in_tiles_x = pack::tiles_for(in_shape.w);
  plan.out_tiles_x = pack::tiles_for(plan.out_shape.w);

  const int lanes = cfg.lanes;
  const int slots_in = (in_shape.c + lanes - 1) / lanes;
  const int slots_out = (out_channels + lanes - 1) / lanes;
  const int out_rows_total = pack::tiles_for(plan.out_shape.h);
  const int in_rows_total = pack::tiles_for(in_shape.h);
  const int wtiles_y = (kernel + pack::kTileDim - 1) / pack::kTileDim;

  int max_group_words = 0;
  for (int g = 0; g < weights.groups(); ++g)
    max_group_words = std::max(max_group_words, weights.aligned_words(g));

  // Largest stripe (in OFM tile rows) whose regions plus at least one weight
  // group fit in a bank.
  int stripe_rows = out_rows_total;
  int budget = 0;
  for (; stripe_rows >= 1; --stripe_rows) {
    const int in_rows = std::min(stripe_rows + wtiles_y, in_rows_total);
    const std::int64_t in_words = static_cast<std::int64_t>(slots_in) *
                                  in_rows * plan.in_tiles_x;
    const std::int64_t out_words = static_cast<std::int64_t>(slots_out) *
                                   stripe_rows * plan.out_tiles_x;
    const std::int64_t left = cfg.bank_words - in_words - out_words;
    if (left >= max_group_words) {
      budget = static_cast<int>(left);
      break;
    }
  }
  if (stripe_rows < 1)
    throw ConfigError(
        "conv layer does not fit on chip even with single-tile-row stripes "
        "(channels " +
        std::to_string(in_shape.c) + "->" + std::to_string(out_channels) +
        ", width " + std::to_string(in_shape.w) + ")");

  // Balance stripes across instances (512-opt works on separate stripes):
  // round the stripe count up to a multiple of `instances` and split rows
  // evenly, so no instance idles while another finishes a longer tail.
  if (cfg.instances > 1 && out_rows_total > stripe_rows) {
    int n_stripes = (out_rows_total + stripe_rows - 1) / stripe_rows;
    n_stripes = ((n_stripes + cfg.instances - 1) / cfg.instances) *
                cfg.instances;
    stripe_rows = (out_rows_total + n_stripes - 1) / n_stripes;
  } else if (cfg.instances > 1 && out_rows_total >= cfg.instances) {
    stripe_rows = (out_rows_total + cfg.instances - 1) / cfg.instances;
  }

  plan.weight_budget_words = budget;

  for (int row0 = 0; row0 < out_rows_total; row0 += stripe_rows) {
    ConvStripe stripe;
    stripe.otile_row0 = row0;
    stripe.otile_rows = std::min(stripe_rows, out_rows_total - row0);
    stripe.in_tile_row0 = row0;
    stripe.in_tile_rows =
        std::min(stripe.otile_rows + wtiles_y, in_rows_total - row0);
    // Chunk filter groups into the weight budget.
    int g = 0;
    while (g < weights.groups()) {
      ConvStripe::Chunk chunk;
      chunk.g0 = g;
      int used = 0;
      while (g < weights.groups() &&
             used + weights.aligned_words(g) <= budget) {
        used += weights.aligned_words(g);
        ++g;
        ++chunk.count;
      }
      TSCA_CHECK(chunk.count > 0,
                 "weight group too large for budget: " << budget << " words");
      stripe.chunks.push_back(chunk);
    }
    plan.stripes.push_back(std::move(stripe));
  }

  // Region bases: IFM at 0, OFM after the largest IFM stripe, weights last.
  int max_in_words = 0;
  int max_out_words = 0;
  for (const ConvStripe& s : plan.stripes) {
    max_in_words = std::max(max_in_words,
                            slots_in * s.in_tile_rows * plan.in_tiles_x);
    max_out_words = std::max(max_out_words,
                             slots_out * s.otile_rows * plan.out_tiles_x);
  }
  plan.ifm_base = 0;
  plan.ofm_base = max_in_words;
  plan.weight_base = max_in_words + max_out_words;
  TSCA_CHECK(plan.weight_base + max_group_words <= cfg.bank_words,
             "layout overflow");
  return plan;
}

core::ConvInstr make_conv_instr(const ConvPlan& plan, const ConvStripe& stripe,
                                int g, int weight_base_for_group,
                                const WeightImage& weights,
                                const std::vector<std::int32_t>& bias,
                                const nn::Requant& rq, int group_size) {
  core::ConvInstr instr;
  instr.ifm_base = plan.ifm_base;
  instr.ifm_tiles_x = plan.in_tiles_x;
  instr.ifm_tiles_y = stripe.in_tile_rows;
  instr.ifm_channels = plan.in_shape.c;
  instr.weight_base = weight_base_for_group;
  instr.ofm_base = plan.ofm_base;
  instr.ofm_tiles_x = plan.out_tiles_x;
  instr.ofm_tiles_y = stripe.otile_rows;
  instr.oc0 = g * group_size;
  instr.active_filters = weights.active_filters(g);
  instr.kernel_h = plan.kernel;
  instr.kernel_w = plan.kernel;
  for (int k = 0; k < instr.active_filters; ++k) {
    const std::size_t oc = static_cast<std::size_t>(instr.oc0 + k);
    instr.bias[static_cast<std::size_t>(k)] =
        oc < bias.size() ? bias[oc] : 0;
  }
  instr.shift = rq.shift;
  instr.relu = rq.relu;
  instr.ternary_weights = weights.ternary();
  return instr;
}

PoolPlan plan_pool(const core::ArchConfig& cfg, const nn::FmShape& in_shape,
                   const nn::FmShape& out_shape, core::Opcode op, int win,
                   int stride, int offset_y, int offset_x) {
  TSCA_CHECK(op == core::Opcode::kPad || op == core::Opcode::kPool);
  TSCA_CHECK(in_shape.c == out_shape.c, "pad/pool preserves channels");
  PoolPlan plan;
  plan.in_shape = in_shape;
  plan.out_shape = out_shape;
  plan.op = op;
  plan.win = win;
  plan.stride = stride;
  plan.offset_y = offset_y;
  plan.offset_x = offset_x;
  plan.in_tiles_x = pack::tiles_for(in_shape.w);
  plan.out_tiles_x = pack::tiles_for(out_shape.w);

  const int lanes = cfg.lanes;
  const int slots = (in_shape.c + lanes - 1) / lanes;
  const int out_rows_total = pack::tiles_for(out_shape.h);
  const int in_rows_total = pack::tiles_for(in_shape.h);

  // Input tile rows required for out tile rows [r0, r0+rows).
  auto in_row_range = [&](int r0, int rows, int& in_row0, int& in_rows) {
    const int y_first = r0 * pack::kTileDim * stride + offset_y;
    const int y_last = ((r0 + rows) * pack::kTileDim - 1) * stride + offset_y +
                       win - 1;
    const int lo = std::clamp(y_first, 0, in_shape.h - 1) / pack::kTileDim;
    const int hi = std::clamp(y_last, 0, in_shape.h - 1) / pack::kTileDim;
    in_row0 = lo;
    in_rows = std::min(hi - lo + 1, in_rows_total - lo);
  };

  int stripe_rows = out_rows_total;
  for (; stripe_rows >= 1; --stripe_rows) {
    int in_row0 = 0;
    int in_rows = 0;
    in_row_range(0, stripe_rows, in_row0, in_rows);
    const std::int64_t words =
        static_cast<std::int64_t>(slots) *
        (static_cast<std::int64_t>(in_rows) * plan.in_tiles_x +
         static_cast<std::int64_t>(stripe_rows) * plan.out_tiles_x);
    if (words <= cfg.bank_words) break;
  }
  if (stripe_rows < 1)
    throw ConfigError("pad/pool layer does not fit on chip");

  int max_in_words = 0;
  for (int row0 = 0; row0 < out_rows_total; row0 += stripe_rows) {
    PoolStripe stripe;
    stripe.otile_row0 = row0;
    stripe.otile_rows = std::min(stripe_rows, out_rows_total - row0);
    in_row_range(row0, stripe.otile_rows, stripe.in_tile_row0,
                 stripe.in_tile_rows);
    stripe.local_offset_y = offset_y +
                            row0 * pack::kTileDim * stride -
                            stripe.in_tile_row0 * pack::kTileDim;
    plan.stripes.push_back(stripe);
    max_in_words = std::max(
        max_in_words, slots * stripe.in_tile_rows * plan.in_tiles_x);
  }
  plan.ifm_base = 0;
  plan.ofm_base = max_in_words;
  return plan;
}

core::PadPoolInstr make_pool_instr(const PoolPlan& plan,
                                   const PoolStripe& stripe) {
  core::PadPoolInstr instr;
  instr.ifm_base = plan.ifm_base;
  instr.ifm_tiles_x = plan.in_tiles_x;
  instr.ifm_tiles_y = stripe.in_tile_rows;
  // Logical input extent within the stripe (rows past the layer's logical
  // height read as zero anyway, but the generator clips against these).
  instr.ifm_h = std::min(plan.in_shape.h - stripe.in_tile_row0 *
                                               pack::kTileDim,
                         stripe.in_tile_rows * pack::kTileDim);
  instr.ifm_w = plan.in_shape.w;
  instr.channels = plan.in_shape.c;
  instr.ofm_base = plan.ofm_base;
  instr.ofm_tiles_x = plan.out_tiles_x;
  instr.ofm_tiles_y = stripe.otile_rows;
  instr.ofm_h = std::min(plan.out_shape.h - stripe.otile_row0 *
                                                pack::kTileDim,
                         stripe.otile_rows * pack::kTileDim);
  instr.ofm_w = plan.out_shape.w;
  instr.win = plan.win;
  instr.stride = plan.stride;
  instr.offset_y = stripe.local_offset_y;
  instr.offset_x = plan.offset_x;
  return instr;
}

}  // namespace tsca::driver
