// Pluggable per-layer lowering — the compiler's extension point.
//
// NetworkProgram::compile used to be one hard-coded switch over LayerKind;
// every new layer meant editing the compiler.  It is now a walk that
// dispatches each layer to a lowering function looked up by kind in a
// process-wide registry.  A lowering receives a LoweringContext — the
// compile-time cursor (current shape, flat flag, layer index) plus builder
// methods that append artifacts (ConvProgram, PoolPlan, …) and steps to the
// program under construction — and advances the walk by the number of
// layers it consumed (pad→conv fusion consumes two).
//
// The built-in kinds register themselves on first compile; tests and
// downstream code can add kinds (or temporarily override built-ins) without
// touching this file:
//
//   driver::ScopedLowering guard(my_kind, [](driver::LoweringContext& ctx) {
//     auto plan = plan_pool(ctx.cfg(), ctx.fm, ...);
//     NetworkProgram::Step step;
//     step.exec = NetworkProgram::Step::Exec::kPadPool;
//     step.pool = ctx.add_pool(std::move(plan));
//     ctx.push_step(step);
//   });
//
// Residual skips ride on tensor slots: compile() pre-scans kEltwiseAdd
// layers and assigns each distinct skip source a slot id.  The step emitted
// for a source layer is stamped `save_slot`; the eltwise lowering reads
// `slot_for_layer(from)` into its step's `rhs_slot`.  A lowering that hides
// a layer's output inside a fusion must decline when `layer_needs_slot`
// says that output is somebody's skip operand (the pad→conv fusion does).
#pragma once

#include <functional>
#include <map>
#include <mutex>

#include "driver/program.hpp"

namespace tsca::driver {

class LoweringContext;
using LoweringFn = std::function<void(LoweringContext&)>;

// The compile-time cursor handed to each lowering.  Mutable fields are the
// walk state the lowering advances; builder methods append to the program.
class LoweringContext {
 public:
  // Output shape entering this layer; the lowering updates it to the shape
  // leaving the last layer it consumed.
  nn::FmShape fm;
  // Whether the activation has been flattened to a host-side vector.
  bool is_flat = false;
  // How many layers this lowering consumed (default 1; fusion sets 2).
  int consumed = 1;

  const nn::Network& net() const;
  const quant::QuantizedModel& model() const;
  const core::ArchConfig& cfg() const;
  const ProgramOptions& options() const;
  std::size_t index() const { return index_; }
  const nn::LayerSpec& spec() const;

  // Slot bookkeeping for residual skips (see file comment).
  bool layer_needs_slot(std::size_t layer) const;
  int slot_for_layer(std::size_t layer) const;  // -1 when not a skip source

  // Builders: append an artifact, return its index for the Step fields.
  int add_conv(ConvProgram conv);
  int add_pool(PoolPlan plan);  // runs finalize_pool_plan
  int add_fused(FusedPadConvLayout layout);
  int add_fc(FcProgram fc);
  int add_eltwise(nn::EltwiseQ q);

  // Appends a step; `step.layer` is stamped with index() automatically.
  void push_step(NetworkProgram::Step step);

 private:
  friend class NetworkProgram;
  LoweringContext(NetworkProgram& program, const quant::QuantizedModel& model,
                  std::size_t index, const std::map<std::size_t, int>& slots)
      : program_(program), model_(model), index_(index), slots_(slots) {}

  NetworkProgram& program_;
  const quant::QuantizedModel& model_;
  std::size_t index_;
  const std::map<std::size_t, int>& slots_;
};

// Process-wide kind → lowering table.  Keyed by int so tests can register
// kinds outside the LayerKind enum (cast in via add_layer's escape hatch).
class LoweringRegistry {
 public:
  static LoweringRegistry& instance();

  // Installs `fn` for `kind`, returning the previous lowering (null when the
  // kind was unregistered).  A null `fn` unregisters the kind.
  LoweringFn exchange(nn::LayerKind kind, LoweringFn fn);

  // The lowering for `kind`, or null when none is registered.
  LoweringFn find(nn::LayerKind kind) const;

 private:
  mutable std::mutex mu_;
  std::map<int, LoweringFn> map_;
};

// RAII registration: installs a lowering for the guard's lifetime and
// restores whatever was there before (tests override built-ins safely).
class ScopedLowering {
 public:
  ScopedLowering(nn::LayerKind kind, LoweringFn fn)
      : kind_(kind),
        previous_(LoweringRegistry::instance().exchange(kind, std::move(fn))) {}
  ~ScopedLowering() {
    LoweringRegistry::instance().exchange(kind_, std::move(previous_));
  }
  ScopedLowering(const ScopedLowering&) = delete;
  ScopedLowering& operator=(const ScopedLowering&) = delete;

 private:
  nn::LayerKind kind_;
  LoweringFn previous_;
};

// Registers the built-in lowerings (pad, conv, pool, flatten, fc, softmax,
// eltwise add, global pool).  Idempotent; compile() calls it, and it never
// overwrites an already-registered kind, so overrides survive.
void register_builtin_lowerings();

}  // namespace tsca::driver
