#include "driver/study.hpp"

#include <algorithm>

#include "quant/ternary.hpp"

namespace tsca::driver {

StudyNetwork build_study_network(const StudyOptions& options) {
  Rng rng(options.seed);
  const nn::Network net = nn::build_vgg16({
      .variant = options.variant,
      .input_extent = options.input_extent,
      .channel_divisor = options.channel_divisor,
      .include_classifier = false,
  });
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  if (options.pruned && !options.ternary) {
    const quant::PruneProfile profile =
        options.uniform_density >= 0.0
            ? quant::PruneProfile::uniform(options.uniform_density, 13, 3)
            : quant::vgg16_han_profile();
    quant::prune_weights(net, weights, profile);
  } else if (options.uniform_density >= 0.0) {
    quant::prune_weights(
        net, weights,
        quant::PruneProfile::uniform(options.uniform_density, 13, 3));
  }

  StudyNetwork study;
  study.model_name = std::string(nn::vgg_variant_name(options.variant)) +
                     (options.ternary ? "-ternary"
                                      : (options.pruned ? "-pruned" : ""));

  const std::vector<nn::LayerShape> shapes = net.infer_shapes();
  nn::FmShape in = net.input_shape();
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const nn::LayerSpec& spec = net.layers()[i];
    if (spec.kind == nn::LayerKind::kConv) {
      StudyLayer layer;
      layer.name = spec.name;
      layer.padded_in = in;
      if (options.ternary) {
        layer.packed = pack::pack_filters(
            quant::ternarize_filters(weights.conv[i]).weights);
      } else {
        const int w_exp = quant::choose_exponent([&] {
          float m = 0.0f;
          const nn::FilterBankF& bank = weights.conv[i];
          for (std::size_t k = 0; k < bank.size(); ++k)
            m = std::max(m, std::abs(bank.data()[k]));
          return m;
        }());
        layer.packed = pack::pack_filters(
            quant::quantize_filters(weights.conv[i], w_exp));
      }
      const std::int64_t total =
          static_cast<std::int64_t>(weights.conv[i].size());
      layer.density = total == 0
                          ? 0.0
                          : static_cast<double>(layer.packed.total_nonzeros()) /
                                static_cast<double>(total);
      study.layers.push_back(std::move(layer));
    } else if (spec.kind == nn::LayerKind::kPad) {
      study.pad_pool_ops.push_back({core::Opcode::kPad, in, shapes[i].fm, 1,
                                    1, -spec.pad.top});
    } else if (spec.kind == nn::LayerKind::kMaxPool) {
      study.pad_pool_ops.push_back({core::Opcode::kPool, in, shapes[i].fm,
                                    spec.pool.size, spec.pool.stride, 0});
    }
    if (shapes[i].flat_dim == 0) in = shapes[i].fm;
  }
  return study;
}

ConvProgram compile_study_conv(const core::ArchConfig& cfg,
                               const StudyLayer& layer) {
  const std::vector<std::int32_t> bias(
      static_cast<std::size_t>(layer.packed.shape().oc), 0);
  return compile_conv(cfg, layer.padded_in, layer.packed, bias,
                      nn::Requant{.shift = 7, .relu = true});
}

VariantResult evaluate_variant(const core::ArchConfig& cfg,
                               const StudyNetwork& network) {
  const PerfModel model(cfg);
  VariantResult result;
  result.variant = cfg.name;
  result.model_name = network.model_name;
  result.clock_mhz = cfg.clock_mhz;

  double eff_weighted = 0.0;
  for (const StudyLayer& layer : network.layers) {
    LayerResult lr;
    lr.name = layer.name;
    lr.perf = model.conv_layer(layer.padded_in, layer.packed);
    lr.efficiency = lr.perf.efficiency();
    lr.effective_gops = lr.perf.effective_gops(cfg.clock_mhz);
    result.total_cycles += lr.perf.cycles;
    result.total_macs += lr.perf.macs_dense;
    result.dma_cycles += lr.perf.dma_cycles(cfg.clock_mhz);
    eff_weighted += lr.efficiency * static_cast<double>(lr.perf.macs_dense);
    result.layers.push_back(std::move(lr));
  }
  TSCA_CHECK(!result.layers.empty());
  result.best_efficiency = result.worst_efficiency =
      result.layers.front().efficiency;
  result.best_gops = result.layers.front().effective_gops;
  for (const LayerResult& lr : result.layers) {
    result.best_efficiency = std::max(result.best_efficiency, lr.efficiency);
    result.worst_efficiency = std::min(result.worst_efficiency, lr.efficiency);
    result.best_gops = std::max(result.best_gops, lr.effective_gops);
  }
  result.mean_efficiency =
      eff_weighted / static_cast<double>(result.total_macs);
  result.mean_gops = static_cast<double>(result.total_macs) *
                     cfg.clock_mhz * 1e6 /
                     static_cast<double>(result.total_cycles) * 1e-9;
  for (const StudyNetwork::PadPoolOp& op : network.pad_pool_ops)
    result.pad_pool_cycles +=
        model.pool_layer(op.in, op.out, op.op, op.win, op.stride, op.offset,
                         op.offset)
            .cycles;
  result.network_gops =
      static_cast<double>(result.total_macs) * cfg.clock_mhz * 1e6 /
      static_cast<double>(result.total_cycles + result.pad_pool_cycles) *
      1e-9;
  result.network_gops_dma_serial =
      static_cast<double>(result.total_macs) * cfg.clock_mhz * 1e6 /
      static_cast<double>(result.total_cycles + result.pad_pool_cycles +
                          result.dma_cycles) *
      1e-9;
  return result;
}

}  // namespace tsca::driver
