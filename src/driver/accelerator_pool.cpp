#include "driver/accelerator_pool.hpp"

#include "driver/program.hpp"
#include "util/check.hpp"

namespace tsca::driver {

AcceleratorPool::AcceleratorPool(const core::ArchConfig& cfg,
                                 PoolOptions options)
    : cfg_(cfg) {
  TSCA_CHECK(options.workers >= 1, "pool workers=" << options.workers);
  cfg_.validate();
  contexts_.reserve(static_cast<std::size_t>(options.workers));
  for (int i = 0; i < options.workers; ++i) {
    contexts_.push_back(std::make_unique<Context>(cfg_, options.dram_bytes));
    contexts_.back()->worker = i;
  }
  threads_.reserve(contexts_.size());
  for (int i = 0; i < options.workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

AcceleratorPool::~AcceleratorPool() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void AcceleratorPool::worker_loop(int worker) {
  Context& ctx = context(worker);
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    // Claim units until the queue is drained (or a task aborted the job).
    std::exception_ptr local_error;
    for (;;) {
      if (abort_.load(std::memory_order_relaxed)) break;
      const std::size_t index =
          next_.fetch_add(1, std::memory_order_relaxed);
      if (index >= job_n_) break;
      try {
        (*job_)(ctx, index);
      } catch (...) {
        local_error = std::current_exception();
        abort_.store(true, std::memory_order_relaxed);
        break;
      }
    }
    {
      const std::lock_guard<std::mutex> lock(m_);
      if (local_error && !error_) error_ = local_error;
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void AcceleratorPool::parallel_for(std::size_t n, const Task& fn) {
  if (n == 0) return;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(m_);
    TSCA_CHECK(active_ == 0, "reentrant AcceleratorPool::parallel_for");
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = static_cast<int>(contexts_.size());
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void stage_program_in_context(AcceleratorPool::Context& ctx,
                              const NetworkProgram& program) {
  if (ctx.staged_stamp == program.stamp()) return;
  const std::vector<std::uint8_t>& image = program.ddr_image();
  TSCA_CHECK(image.size() <= ctx.dram.size(),
             "program weight image (" << image.size()
                                      << " bytes) larger than DDR");
  if (!image.empty()) ctx.dram.write(0, image.data(), image.size());
  ctx.staged_stamp = program.stamp();
  ctx.ddr_floor = image.size();
  ctx.ddr_cursor = image.size();
}

}  // namespace tsca::driver
