// Layer → instruction-stream compiler (the host-side "framework" of §IV-C).
//
// Decides striping (paper Fig. 2): a layer whose feature maps and packed
// weights do not fit the on-chip banks is split into stripes of OFM tile
// rows, each with the halo of extra IFM tile rows a convolution needs.  A
// stripe's filter groups are further split into weight chunks that fit the
// bank space left after the feature-map regions.
//
// Bank layout per stripe batch (identical base addresses in every bank):
//   [0, ifm_words)                       input stripe
//   [ifm_words, +ofm_words)              output stripe
//   [weight_base, +chunk words)          packed weight streams, one group
//                                        after another at lane-aligned bases
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/fastpath.hpp"
#include "nn/layers.hpp"
#include "core/isa.hpp"
#include "nn/tensor.hpp"
#include "pack/lane_stream.hpp"
#include "pack/weight_pack.hpp"

namespace tsca::driver {

// Pre-serialized per-(group, lane) weight streams of one conv layer.
class WeightImage {
 public:
  // Empty image (no groups); placeholder until a real one is assigned
  // (ConvProgram default-constructs one before compilation fills it in).
  WeightImage() = default;

  // Automatically serializes in the dense 1-byte ternary format when every
  // weight is ±1 (pack::is_ternary).
  WeightImage(const pack::PackedFilters& packed, int lanes, int group);

  bool ternary() const { return ternary_; }

  int groups() const { return groups_; }
  int lanes() const { return lanes_; }
  int group_size() const { return group_size_; }
  int active_filters(int g) const;

  const std::vector<std::uint8_t>& bytes(int g, int lane) const {
    return bytes_[index(g, lane)];
  }
  int words(int g, int lane) const { return words_[index(g, lane)]; }
  // All banks hold group streams at the same base: each group occupies the
  // maximum of its lanes' stream words.
  int aligned_words(int g) const;

 private:
  friend class CompileCache;  // rebuilds images from the on-disk artifact

  std::size_t index(int g, int lane) const {
    TSCA_CHECK(g >= 0 && g < groups_ && lane >= 0 && lane < lanes_);
    return static_cast<std::size_t>(g) * lanes_ + lane;
  }

  int oc_ = 0;
  bool ternary_ = false;
  int groups_ = 0;
  int lanes_ = 0;
  int group_size_ = 0;
  std::vector<std::vector<std::uint8_t>> bytes_;
  std::vector<int> words_;
};

// One stripe of a convolution layer.
struct ConvStripe {
  int otile_row0 = 0;  // first OFM tile row
  int otile_rows = 0;
  int in_tile_row0 = 0;  // first (padded-)IFM tile row DMA'd on chip
  int in_tile_rows = 0;

  // Filter-group chunks executed as separate batches (weights re-DMA'd).
  struct Chunk {
    int g0 = 0;
    int count = 0;
  };
  std::vector<Chunk> chunks;
};

struct ConvPlan {
  nn::FmShape in_shape;   // padded input
  nn::FmShape out_shape;
  int kernel = 3;
  int in_tiles_x = 0;
  int out_tiles_x = 0;
  int ifm_base = 0;
  int ofm_base = 0;
  int weight_base = 0;
  int weight_budget_words = 0;
  std::vector<ConvStripe> stripes;
};

// Plans striping and weight chunking.  Throws ConfigError when even a single
// OFM tile row with one filter group cannot fit on chip.
ConvPlan plan_conv(const core::ArchConfig& cfg, const nn::FmShape& in_shape,
                   int out_channels, int kernel, const WeightImage& weights);

// Builds the CONV instruction for one (stripe, group); `local` geometry is
// stripe-relative.
core::ConvInstr make_conv_instr(const ConvPlan& plan, const ConvStripe& stripe,
                                int g, int weight_base_for_group,
                                const WeightImage& weights,
                                const std::vector<std::int32_t>& bias,
                                const nn::Requant& rq, int group_size);

// One stripe of a PAD or POOL layer.
struct PoolStripe {
  int otile_row0 = 0;
  int otile_rows = 0;
  int in_tile_row0 = 0;
  int in_tile_rows = 0;
  int local_offset_y = 0;  // window offset rewritten into stripe coordinates
};

struct PoolPlan {
  nn::FmShape in_shape;
  nn::FmShape out_shape;
  core::Opcode op = core::Opcode::kPad;
  int win = 1;
  int stride = 1;
  int offset_y = 0;
  int offset_x = 0;
  int in_tiles_x = 0;
  int out_tiles_x = 0;
  int ifm_base = 0;
  int ofm_base = 0;
  std::vector<PoolStripe> stripes;

  // Filled by NetworkProgram::compile (empty for ad-hoc plans, which decode
  // on the fly): one decoded fast-path plan per stripe, plus the PerfModel
  // prediction for the whole layer so fast executions skip re-deriving it.
  std::vector<core::FastPoolPlan> fastp;
  std::uint64_t predicted_cycles = 0;
  std::int64_t predicted_ops = 0;
};

PoolPlan plan_pool(const core::ArchConfig& cfg, const nn::FmShape& in_shape,
                   const nn::FmShape& out_shape, core::Opcode op, int win,
                   int stride, int offset_y, int offset_x);

core::PadPoolInstr make_pool_instr(const PoolPlan& plan,
                                   const PoolStripe& stripe);

// Dense multiply-accumulate count of a convolution (GOPS accounting).
std::int64_t conv_macs(const nn::FmShape& in_shape, int out_channels,
                       int kernel);

}  // namespace tsca::driver
