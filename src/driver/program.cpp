#include "driver/program.hpp"

#include <atomic>
#include <map>
#include <utility>

#include "core/poolgen.hpp"
#include "driver/lowering.hpp"
#include "driver/perf_model.hpp"
#include "pack/tile.hpp"
#include "pack/weight_pack.hpp"

namespace tsca::driver {

std::uint64_t next_program_stamp() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

core::FastConvWeights decode_fast_weights(const WeightImage& wimg,
                                          int in_channels, int kernel) {
  const int wt_extent = (kernel + pack::kTileDim - 1) / pack::kTileDim;
  int out_channels = 0;
  for (int g = 0; g < wimg.groups(); ++g)
    out_channels += wimg.active_filters(g);
  core::FastWeightsBuilder builder(in_channels, wt_extent, wt_extent,
                                   out_channels);
  int oc0 = 0;
  for (int g = 0; g < wimg.groups(); ++g) {
    const int active = wimg.active_filters(g);
    for (int lane = 0; lane < wimg.lanes(); ++lane)
      builder.add_stream(wimg.bytes(g, lane), oc0, active, lane, wimg.lanes(),
                         wimg.ternary());
    oc0 += active;
  }
  return builder.finish();
}

core::PadPoolInstr make_fused_pad_instr(const FusedPadConvLayout& layout) {
  core::PadPoolInstr pi;
  pi.ifm_base = 0;
  pi.ifm_tiles_x = pack::tiles_for(layout.raw.w);
  pi.ifm_tiles_y = pack::tiles_for(layout.raw.h);
  pi.ifm_h = layout.raw.h;
  pi.ifm_w = layout.raw.w;
  pi.channels = layout.raw.c;
  pi.ofm_base = layout.padded_base;
  pi.ofm_tiles_x = pack::tiles_for(layout.padded.w);
  pi.ofm_tiles_y = pack::tiles_for(layout.padded.h);
  pi.ofm_h = layout.padded.h;
  pi.ofm_w = layout.padded.w;
  pi.win = 1;
  pi.stride = 1;
  pi.offset_y = -layout.pad.top;
  pi.offset_x = -layout.pad.left;
  return pi;
}

core::ConvInstr make_fused_conv_instr(const ConvProgram& conv,
                                      const FusedPadConvLayout& layout, int g,
                                      int weight_base_for_group) {
  const WeightImage& wimg = conv.wimg;
  core::ConvInstr ci;
  ci.ifm_base = layout.padded_base;
  ci.ifm_tiles_x = pack::tiles_for(layout.padded.w);
  ci.ifm_tiles_y = pack::tiles_for(layout.padded.h);
  ci.ifm_channels = layout.padded.c;
  ci.weight_base = weight_base_for_group;
  ci.ofm_base = layout.ofm_base;
  ci.ofm_tiles_x = pack::tiles_for(layout.out.w);
  ci.ofm_tiles_y = pack::tiles_for(layout.out.h);
  ci.oc0 = g * wimg.group_size();
  ci.active_filters = wimg.active_filters(g);
  ci.kernel_h = ci.kernel_w = layout.kernel;
  for (int k = 0; k < ci.active_filters; ++k) {
    const std::size_t oc = static_cast<std::size_t>(ci.oc0 + k);
    ci.bias[static_cast<std::size_t>(k)] =
        oc < conv.bias.size() ? conv.bias[oc] : 0;
  }
  ci.shift = conv.rq.shift;
  ci.relu = conv.rq.relu;
  ci.ternary_weights = wimg.ternary();
  return ci;
}

void fill_fused_predictions(const core::ArchConfig& cfg, ConvProgram& conv,
                            FusedPadConvLayout& layout) {
  conv.fastw = decode_fast_weights(conv.wimg, layout.padded.c, layout.kernel);
  const PerfModel model(cfg);
  const core::PadPoolInstr pi = make_fused_pad_instr(layout);
  layout.predicted_pad_cycles = static_cast<std::uint64_t>(
      model.pool_instr_cycles(pi) + model.constants().batch_overhead);

  core::CounterSnapshot& p = layout.predicted;
  p = core::CounterSnapshot{};
  std::int64_t conv_cycles = model.constants().batch_overhead;
  int base = layout.weight_base;
  for (int g = 0; g < conv.wimg.groups(); ++g) {
    const core::ConvInstr ci = make_fused_conv_instr(conv, layout, g, base);
    conv_cycles += model.conv_instr_cycles(ci, conv.wimg, g);
    p.conv_instrs += 1;
    p.positions += ci.positions();
    base += conv.wimg.aligned_words(g);
  }
  layout.predicted_conv_cycles = static_cast<std::uint64_t>(conv_cycles);

  // Counter attribution matches the engine: the whole fusion's work lands on
  // the conv LayerRun (the pad run reports zero counters there too).
  p.pad_instrs = 1;
  p.pool_ops = core::count_pool_steps(pi) * pi.channels;
  const int wt_extent =
      (layout.kernel + pack::kTileDim - 1) / pack::kTileDim;
  const std::int64_t positions_total =
      static_cast<std::int64_t>(pack::tiles_for(layout.out.h)) *
      pack::tiles_for(layout.out.w);
  ConvPerf work;
  model.zero_skip_counters(conv.wimg, layout.padded.c, wt_extent * wt_extent,
                           positions_total, work);
  p.macs_performed = work.macs_performed;
  p.weight_cmds = work.weight_cmds;
  p.weight_bubbles = work.weight_bubbles;
}

// Decodes every stripe's fast-path pool plan and caches the PerfModel
// prediction, so neither executor derives them again per request/image.
void finalize_pool_plan(const core::ArchConfig& cfg, PoolPlan& plan) {
  plan.fastp.reserve(plan.stripes.size());
  for (const PoolStripe& stripe : plan.stripes)
    plan.fastp.push_back(
        core::make_fast_pool_plan(make_pool_instr(plan, stripe)));
  const PoolPerf perf = PerfModel(cfg).pool_plan_perf(plan);
  plan.predicted_cycles = static_cast<std::uint64_t>(perf.cycles);
  plan.predicted_ops = perf.ops;
}

ConvProgram compile_conv(const core::ArchConfig& cfg,
                         const nn::FmShape& in_shape,
                         const pack::PackedFilters& packed,
                         std::vector<std::int32_t> bias,
                         const nn::Requant& rq) {
  TSCA_CHECK(packed.shape().ic == in_shape.c,
             "filter ic " << packed.shape().ic << " != input channels "
                          << in_shape.c);
  TSCA_CHECK(packed.shape().kh == packed.shape().kw,
             "square kernels only (paper uses 3x3)");
  ConvProgram prog;
  prog.wimg = WeightImage(packed, cfg.lanes, cfg.group);
  prog.plan = plan_conv(cfg, in_shape, packed.shape().oc, packed.shape().kh,
                        prog.wimg);
  prog.bias = std::move(bias);
  prog.rq = rq;
  prog.macs = conv_macs(in_shape, packed.shape().oc, packed.shape().kh);
  prog.fastw = decode_fast_weights(prog.wimg, in_shape.c, packed.shape().kh);
  const ConvPerf perf = PerfModel(cfg).conv_plan_perf(prog.plan, prog.wimg);
  prog.predicted_cycles = static_cast<std::uint64_t>(perf.cycles);
  prog.predicted.macs_performed = perf.macs_performed;
  prog.predicted.weight_cmds = perf.weight_cmds;
  prog.predicted.weight_bubbles = perf.weight_bubbles;
  prog.predicted.conv_instrs = perf.instructions;
  prog.predicted.positions = perf.positions;
  return prog;
}

ConvProgram compile_fc_conv(const core::ArchConfig& cfg, int in_dim,
                            int out_dim,
                            const std::vector<std::int8_t>& weights,
                            const std::vector<std::int32_t>& bias,
                            const nn::Requant& rq) {
  TSCA_CHECK(in_dim > 0 && out_dim > 0);
  TSCA_CHECK(weights.size() == static_cast<std::size_t>(in_dim) *
                                   static_cast<std::size_t>(out_dim));
  nn::FilterBankI8 bank({out_dim, in_dim, 1, 1});
  for (int o = 0; o < out_dim; ++o)
    for (int c = 0; c < in_dim; ++c)
      bank.at(o, c, 0, 0) =
          weights[static_cast<std::size_t>(o) *
                      static_cast<std::size_t>(in_dim) +
                  static_cast<std::size_t>(c)];
  return compile_conv(cfg, {in_dim, 1, 1}, pack::pack_filters(bank), bias, rq);
}

std::optional<FusedPadConvLayout> plan_fused_pad_conv(
    const core::ArchConfig& cfg, const nn::FmShape& raw,
    const nn::Padding& pad, int kernel, int out_channels,
    const WeightImage& wimg) {
  FusedPadConvLayout layout;
  layout.pad = pad;
  layout.raw = raw;
  layout.padded = {raw.c, raw.h + pad.top + pad.bottom,
                   raw.w + pad.left + pad.right};
  layout.kernel = kernel;
  if (layout.padded.h < kernel || layout.padded.w < kernel) return std::nullopt;
  layout.out = {out_channels, layout.padded.h - kernel + 1,
                layout.padded.w - kernel + 1};

  // On-chip layout: raw input | padded map | OFM | weight chunk.  Everything
  // must fit unstriped, with all filter groups' weights resident at once.
  const int lanes = cfg.lanes;
  const int slots_in = (raw.c + lanes - 1) / lanes;
  const int slots_out = (layout.out.c + lanes - 1) / lanes;
  const int raw_words =
      slots_in * pack::tiles_for(raw.h) * pack::tiles_for(raw.w);
  const int padded_words = slots_in * pack::tiles_for(layout.padded.h) *
                           pack::tiles_for(layout.padded.w);
  const int out_words = slots_out * pack::tiles_for(layout.out.h) *
                        pack::tiles_for(layout.out.w);
  int weight_words = 0;
  for (int g = 0; g < wimg.groups(); ++g)
    weight_words += wimg.aligned_words(g);
  if (raw_words + padded_words + out_words + weight_words > cfg.bank_words)
    return std::nullopt;

  layout.padded_base = raw_words;
  layout.ofm_base = raw_words + padded_words;
  layout.weight_base = layout.ofm_base + out_words;
  return layout;
}

NetworkProgram NetworkProgram::compile(const nn::Network& net,
                                       const quant::QuantizedModel& model,
                                       const core::ArchConfig& cfg,
                                       const ProgramOptions& options) {
  register_builtin_lowerings();

  NetworkProgram program;
  program.net_ = net;
  program.cfg_ = cfg;
  program.options_ = options;
  program.stamp_ = next_program_stamp();

  // Pre-scan residual skips: each distinct skip source gets a tensor slot
  // the execution keeps live from the source step to its consuming add.
  std::map<std::size_t, int> slots;
  for (const nn::LayerSpec& spec : net.layers()) {
    if (spec.kind != nn::LayerKind::kEltwiseAdd) continue;
    TSCA_CHECK(spec.eltwise.from >= 0, "eltwise skip source unset");
    const std::size_t from = static_cast<std::size_t>(spec.eltwise.from);
    if (slots.find(from) == slots.end())
      slots.emplace(from, static_cast<int>(slots.size()));
  }
  program.slot_count_ = static_cast<int>(slots.size());

  // Walk the layers, dispatching each to its registered lowering.  The
  // lowering appends artifacts/steps through the context and reports how
  // many layers it consumed (pad→conv fusion consumes two).
  nn::FmShape fm = net.input_shape();
  bool is_flat = false;
  for (std::size_t i = 0; i < net.layers().size();) {
    const nn::LayerSpec& spec = net.layers()[i];
    const LoweringFn lowering = LoweringRegistry::instance().find(spec.kind);
    if (!lowering)
      throw ConfigError(std::string("no lowering registered for layer kind ") +
                        nn::layer_kind_name(spec.kind) + " (layer " +
                        spec.name + ")");
    LoweringContext ctx(program, model, i, slots);
    ctx.fm = fm;
    ctx.is_flat = is_flat;
    const std::size_t steps_before = program.steps_.size();
    lowering(ctx);
    TSCA_CHECK(ctx.consumed >= 1, "lowering consumed no layers");
    fm = ctx.fm;
    is_flat = ctx.is_flat;
    // The step carrying the output of the last consumed layer is the one a
    // residual skip reads from; stamp its slot if anybody needs it.
    const std::size_t last = i + static_cast<std::size_t>(ctx.consumed) - 1;
    const auto slot = slots.find(last);
    if (slot != slots.end()) {
      TSCA_CHECK(program.steps_.size() > steps_before,
                 "skip source layer " << last << " produced no step");
      program.steps_.back().save_slot = slot->second;
    }
    i += static_cast<std::size_t>(ctx.consumed);
  }

  // Concatenate every conv layer's serialized streams into the DDR image.
  // Offsets are recorded per (group, lane) so executors can DMA a chunk's
  // streams straight from the resident image.
  for (ConvProgram& conv : program.convs_) {
    conv.owner = program.stamp_;
    conv.ddr_offset.resize(static_cast<std::size_t>(conv.wimg.groups()) *
                           static_cast<std::size_t>(conv.wimg.lanes()));
    for (int g = 0; g < conv.wimg.groups(); ++g) {
      for (int lane = 0; lane < conv.wimg.lanes(); ++lane) {
        const std::vector<std::uint8_t>& bytes = conv.wimg.bytes(g, lane);
        conv.ddr_offset[static_cast<std::size_t>(g) *
                            static_cast<std::size_t>(conv.wimg.lanes()) +
                        static_cast<std::size_t>(lane)] =
            program.ddr_image_.size();
        program.ddr_image_.insert(program.ddr_image_.end(), bytes.begin(),
                                  bytes.end());
      }
    }
  }
  return program;
}

}  // namespace tsca::driver
