#include "driver/compile_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

namespace tsca::driver {

namespace {

constexpr char kMagic[8] = {'T', 'S', 'C', 'A', 'P', 'R', 'O', 'G'};

// ---- byte-stream serialization ------------------------------------------
//
// Little-endian fixed-width writer/reader over a byte vector, mirroring the
// wire protocol's style: every read is bounds-checked, a short or trailing
// file fails parsing (→ cache miss), never memory safety.

class Blob {
 public:
  std::vector<std::uint8_t> bytes;

  void u8(std::uint8_t v) { bytes.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  }
};

// Parse failure: unwinds to load(), which counts it invalid and recompiles.
struct ParseError {};

class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) throw ParseError{};
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= std::uint16_t(u8()) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  const std::uint8_t* take(std::size_t n) {
    if (n > bytes_.size() - pos_) throw ParseError{};
    const std::uint8_t* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }
  // A length prefix may not claim more than the file still holds — a corrupt
  // count fails here instead of driving a giant allocation.
  std::size_t count(std::size_t elem_size) {
    const std::uint64_t n = u64();
    if (elem_size != 0 && n > (bytes_.size() - pos_) / elem_size)
      throw ParseError{};
    return static_cast<std::size_t>(n);
  }
  void done() const {
    if (pos_ != bytes_.size()) throw ParseError{};
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

// ---- per-type put/get helpers -------------------------------------------

template <typename T>
void put_vec_pod(Blob& b, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  b.u64(v.size());
  b.raw(v.data(), v.size() * sizeof(T));
}

template <typename T>
void get_vec_pod(Cursor& c, std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t n = c.count(sizeof(T));
  v.resize(n);
  if (n != 0) std::memcpy(v.data(), c.take(n * sizeof(T)), n * sizeof(T));
}

void put_shape(Blob& b, const nn::FmShape& s) {
  b.i32(s.c);
  b.i32(s.h);
  b.i32(s.w);
}

nn::FmShape get_shape(Cursor& c) {
  nn::FmShape s;
  s.c = c.i32();
  s.h = c.i32();
  s.w = c.i32();
  return s;
}

void put_rq(Blob& b, const nn::Requant& rq) {
  b.i32(rq.shift);
  b.u8(rq.relu ? 1 : 0);
}

nn::Requant get_rq(Cursor& c) {
  nn::Requant rq;
  rq.shift = c.i32();
  rq.relu = c.u8() != 0;
  return rq;
}

void put_counters(Blob& b, const core::CounterSnapshot& s) {
  b.i64(s.weight_cmds);
  b.i64(s.weight_bubbles);
  b.i64(s.macs_performed);
  b.i64(s.ifm_tile_reads);
  b.i64(s.weight_word_reads);
  b.i64(s.weight_spill_reads);
  b.i64(s.ofm_tile_writes);
  b.i64(s.pool_ops);
  b.i64(s.conv_instrs);
  b.i64(s.pad_instrs);
  b.i64(s.pool_instrs);
  b.i64(s.positions);
}

core::CounterSnapshot get_counters(Cursor& c) {
  core::CounterSnapshot s;
  s.weight_cmds = c.i64();
  s.weight_bubbles = c.i64();
  s.macs_performed = c.i64();
  s.ifm_tile_reads = c.i64();
  s.weight_word_reads = c.i64();
  s.weight_spill_reads = c.i64();
  s.ofm_tile_writes = c.i64();
  s.pool_ops = c.i64();
  s.conv_instrs = c.i64();
  s.pad_instrs = c.i64();
  s.pool_instrs = c.i64();
  s.positions = c.i64();
  return s;
}

void put_fastw(Blob& b, const core::FastConvWeights& fw) {
  b.i32(fw.channels);
  b.i32(fw.wtiles_y);
  b.i32(fw.wtiles_x);
  b.i32(fw.out_channels);
  put_vec_pod(b, fw.entries);
  put_vec_pod(b, fw.vnni_idx);
  put_vec_pod(b, fw.vnni_w);
  put_vec_pod(b, fw.vnni_corr);
  put_vec_pod(b, fw.vnni_row);
  put_vec_pod(b, fw.vnni_begin);
  put_vec_pod(b, fw.begin);
}

core::FastConvWeights get_fastw(Cursor& c) {
  core::FastConvWeights fw;
  fw.channels = c.i32();
  fw.wtiles_y = c.i32();
  fw.wtiles_x = c.i32();
  fw.out_channels = c.i32();
  get_vec_pod(c, fw.entries);
  get_vec_pod(c, fw.vnni_idx);
  get_vec_pod(c, fw.vnni_w);
  get_vec_pod(c, fw.vnni_corr);
  get_vec_pod(c, fw.vnni_row);
  get_vec_pod(c, fw.vnni_begin);
  get_vec_pod(c, fw.begin);
  return fw;
}

// ---- key hashing --------------------------------------------------------

class Fnv {
 public:
  void byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= 1099511628211ull;
  }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) byte(b[i]);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  template <typename T>
  void vec_pod(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

std::uint64_t temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CompileCache::CompileCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) dir_ = default_dir();
}

std::string CompileCache::default_dir() {
  if (const char* env = std::getenv("TSCA_CACHE_DIR"); env && *env)
    return env;
  if (const char* home = std::getenv("HOME"); home && *home)
    return std::string(home) + "/.cache/tsca";
  return ".tsca-cache";
}

std::string CompileCache::path_for(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.prog",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

CompileCache::Stats CompileCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t CompileCache::key(const nn::Network& net,
                                const quant::QuantizedModel& model,
                                const core::ArchConfig& cfg,
                                const ProgramOptions& options) {
  Fnv h;
  h.str(kCompileCacheVersion);

  // Architecture: every field compile() can see (name excluded — two
  // configs that plan identically should share artifacts).
  h.i32(cfg.lanes);
  h.i32(cfg.group);
  h.i32(cfg.instances);
  h.i32(cfg.bank_words);
  h.i32(cfg.weight_scratch_words);
  h.i32(cfg.fifo_depth);
  h.byte(cfg.position_barrier ? 1 : 0);
  h.byte(cfg.skip_empty_tile_groups ? 1 : 0);

  h.byte(options.fuse_pad_conv ? 1 : 0);

  // Topology: input shape plus every LayerSpec field that shapes lowering.
  h.i32(net.input_shape().c);
  h.i32(net.input_shape().h);
  h.i32(net.input_shape().w);
  h.u64(net.layers().size());
  for (const nn::LayerSpec& layer : net.layers()) {
    h.i32(static_cast<std::int32_t>(layer.kind));
    h.i32(layer.pad.top);
    h.i32(layer.pad.bottom);
    h.i32(layer.pad.left);
    h.i32(layer.pad.right);
    h.i32(layer.conv.out_c);
    h.i32(layer.conv.kernel);
    h.i32(layer.conv.stride);
    h.byte(layer.conv.relu ? 1 : 0);
    h.byte(layer.conv.depthwise ? 1 : 0);
    h.i32(layer.pool.size);
    h.i32(layer.pool.stride);
    h.i32(layer.fc.out_dim);
    h.byte(layer.fc.relu ? 1 : 0);
    h.i32(layer.eltwise.from);
    h.byte(layer.eltwise.relu ? 1 : 0);
  }

  // Quantized weights: every byte that reaches the compiled artifact.
  const nn::WeightsI8& w = model.weights;
  h.u64(w.conv.size());
  for (const nn::FilterBankI8& bank : w.conv) {
    h.i32(bank.shape().oc);
    h.i32(bank.shape().ic);
    h.i32(bank.shape().kh);
    h.i32(bank.shape().kw);
    h.raw(bank.data(), bank.size());
  }
  h.u64(w.conv_bias.size());
  for (const std::vector<std::int32_t>& bias : w.conv_bias) h.vec_pod(bias);
  h.u64(w.conv_requant.size());
  for (const nn::Requant& rq : w.conv_requant) {
    h.i32(rq.shift);
    h.byte(rq.relu ? 1 : 0);
  }
  h.u64(w.fc.size());
  for (const std::vector<std::int8_t>& weights : w.fc) h.vec_pod(weights);
  h.u64(w.fc_bias.size());
  for (const std::vector<std::int32_t>& bias : w.fc_bias) h.vec_pod(bias);
  h.u64(w.fc_requant.size());
  for (const nn::Requant& rq : w.fc_requant) {
    h.i32(rq.shift);
    h.byte(rq.relu ? 1 : 0);
  }
  h.u64(w.eltwise.size());
  for (const nn::EltwiseQ& e : w.eltwise) {
    h.i32(e.lhs_shift);
    h.i32(e.rhs_shift);
    h.i32(e.rq.shift);
    h.byte(e.rq.relu ? 1 : 0);
  }
  return h.value();
}

bool CompileCache::store(std::uint64_t key, const NetworkProgram& program) {
  Blob b;
  b.raw(kMagic, sizeof(kMagic));
  const std::string version = kCompileCacheVersion;
  b.u64(version.size());
  b.raw(version.data(), version.size());
  b.u64(key);

  // Steps.
  b.u64(program.steps_.size());
  for (const NetworkProgram::Step& step : program.steps_) {
    b.u8(static_cast<std::uint8_t>(step.exec));
    b.u64(step.layer);
    b.i32(step.conv);
    b.i32(step.pool);
    b.i32(step.fused);
    b.i32(step.fc);
    b.i32(step.eltwise);
    b.i32(step.save_slot);
    b.i32(step.rhs_slot);
  }

  // Conv programs.
  b.u64(program.convs_.size());
  for (const ConvProgram& conv : program.convs_) {
    const WeightImage& wimg = conv.wimg;
    b.i32(wimg.oc_);
    b.u8(wimg.ternary_ ? 1 : 0);
    b.i32(wimg.groups_);
    b.i32(wimg.lanes_);
    b.i32(wimg.group_size_);
    b.u64(wimg.bytes_.size());
    for (const std::vector<std::uint8_t>& stream : wimg.bytes_)
      put_vec_pod(b, stream);
    put_vec_pod(b, wimg.words_);

    const ConvPlan& plan = conv.plan;
    put_shape(b, plan.in_shape);
    put_shape(b, plan.out_shape);
    b.i32(plan.kernel);
    b.i32(plan.in_tiles_x);
    b.i32(plan.out_tiles_x);
    b.i32(plan.ifm_base);
    b.i32(plan.ofm_base);
    b.i32(plan.weight_base);
    b.i32(plan.weight_budget_words);
    b.u64(plan.stripes.size());
    for (const ConvStripe& stripe : plan.stripes) {
      b.i32(stripe.otile_row0);
      b.i32(stripe.otile_rows);
      b.i32(stripe.in_tile_row0);
      b.i32(stripe.in_tile_rows);
      put_vec_pod(b, stripe.chunks);
    }

    put_vec_pod(b, conv.bias);
    put_rq(b, conv.rq);
    b.i64(conv.macs);
    b.u8(conv.owner != 0 ? 1 : 0);
    put_vec_pod(b, conv.ddr_offset);
    put_fastw(b, conv.fastw);
    b.u64(conv.predicted_cycles);
    put_counters(b, conv.predicted);
  }

  // Pool plans — geometry only; fastp and predictions are recomputed on
  // load (finalize_pool_plan), keeping FastPoolPlan out of the format.
  b.u64(program.pools_.size());
  for (const PoolPlan& plan : program.pools_) {
    put_shape(b, plan.in_shape);
    put_shape(b, plan.out_shape);
    b.u8(static_cast<std::uint8_t>(plan.op));
    b.i32(plan.win);
    b.i32(plan.stride);
    b.i32(plan.offset_y);
    b.i32(plan.offset_x);
    b.i32(plan.in_tiles_x);
    b.i32(plan.out_tiles_x);
    b.i32(plan.ifm_base);
    b.i32(plan.ofm_base);
    put_vec_pod(b, plan.stripes);
  }

  // Fused pad+conv layouts.
  b.u64(program.fused_.size());
  for (const FusedPadConvLayout& fused : program.fused_) {
    b.i32(fused.pad.top);
    b.i32(fused.pad.bottom);
    b.i32(fused.pad.left);
    b.i32(fused.pad.right);
    put_shape(b, fused.raw);
    put_shape(b, fused.padded);
    put_shape(b, fused.out);
    b.i32(fused.kernel);
    b.i32(fused.padded_base);
    b.i32(fused.ofm_base);
    b.i32(fused.weight_base);
    b.u64(fused.predicted_pad_cycles);
    b.u64(fused.predicted_conv_cycles);
    put_counters(b, fused.predicted);
  }

  // Host FC layers, eltwise constants, slots, DDR image.
  b.u64(program.fcs_.size());
  for (const FcProgram& fc : program.fcs_) {
    put_vec_pod(b, fc.weights);
    put_vec_pod(b, fc.bias);
    put_rq(b, fc.rq);
    b.i32(fc.out_dim);
  }
  b.u64(program.eltwise_.size());
  for (const nn::EltwiseQ& e : program.eltwise_) {
    b.i32(e.lhs_shift);
    b.i32(e.rhs_shift);
    put_rq(b, e.rq);
  }
  b.i32(program.slot_count_);
  put_vec_pod(b, program.ddr_image_);

  // Publish: temp file in the same directory, then atomic rename.  Any I/O
  // failure degrades to "no cache", never to an exception on this path.
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string final_path = path_for(key);
  const std::string tmp_path = final_path + ".tmp." +
                               std::to_string(::getpid()) + "." +
                               std::to_string(temp_suffix());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(b.bytes.data()),
              static_cast<std::streamsize>(b.bytes.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return false;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
  }
  return true;
}

std::optional<NetworkProgram> CompileCache::load(std::uint64_t key,
                                                 const nn::Network& net,
                                                 const core::ArchConfig& cfg,
                                                 const ProgramOptions& options) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path_for(key), std::ios::binary | std::ios::ate);
    if (!in) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
      return std::nullopt;
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    bytes.resize(static_cast<std::size_t>(size));
    if (!in.read(reinterpret_cast<char*>(bytes.data()), size)) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
      ++stats_.invalid;
      return std::nullopt;
    }
  }

  try {
    Cursor c(bytes);
    if (std::memcmp(c.take(sizeof(kMagic)), kMagic, sizeof(kMagic)) != 0)
      throw ParseError{};
    const std::size_t vlen = c.count(1);
    const std::string version(reinterpret_cast<const char*>(c.take(vlen)),
                              vlen);
    if (version != kCompileCacheVersion) throw ParseError{};
    if (c.u64() != key) throw ParseError{};

    // Topology, config, and options are part of the key, never of the file:
    // the caller's copies are authoritative by construction.
    NetworkProgram program;
    program.net_ = net;
    program.cfg_ = cfg;
    program.options_ = options;
    program.stamp_ = next_program_stamp();

    const std::size_t nsteps = c.count(1);
    program.steps_.resize(nsteps);
    for (NetworkProgram::Step& step : program.steps_) {
      const std::uint8_t exec = c.u8();
      if (exec > static_cast<std::uint8_t>(
                     NetworkProgram::Step::Exec::kGlobalPool))
        throw ParseError{};
      step.exec = static_cast<NetworkProgram::Step::Exec>(exec);
      step.layer = static_cast<std::size_t>(c.u64());
      step.conv = c.i32();
      step.pool = c.i32();
      step.fused = c.i32();
      step.fc = c.i32();
      step.eltwise = c.i32();
      step.save_slot = c.i32();
      step.rhs_slot = c.i32();
    }

    const std::size_t nconvs = c.count(1);
    program.convs_.resize(nconvs);
    for (ConvProgram& conv : program.convs_) {
      WeightImage& wimg = conv.wimg;
      wimg.oc_ = c.i32();
      wimg.ternary_ = c.u8() != 0;
      wimg.groups_ = c.i32();
      wimg.lanes_ = c.i32();
      wimg.group_size_ = c.i32();
      if (wimg.groups_ < 0 || wimg.lanes_ < 0) throw ParseError{};
      const std::size_t nstreams = c.count(1);
      if (nstreams != static_cast<std::size_t>(wimg.groups_) *
                          static_cast<std::size_t>(wimg.lanes_))
        throw ParseError{};
      wimg.bytes_.resize(nstreams);
      for (std::vector<std::uint8_t>& stream : wimg.bytes_)
        get_vec_pod(c, stream);
      get_vec_pod(c, wimg.words_);
      if (wimg.words_.size() != nstreams) throw ParseError{};

      ConvPlan& plan = conv.plan;
      plan.in_shape = get_shape(c);
      plan.out_shape = get_shape(c);
      plan.kernel = c.i32();
      plan.in_tiles_x = c.i32();
      plan.out_tiles_x = c.i32();
      plan.ifm_base = c.i32();
      plan.ofm_base = c.i32();
      plan.weight_base = c.i32();
      plan.weight_budget_words = c.i32();
      const std::size_t nstripes = c.count(1);
      plan.stripes.resize(nstripes);
      for (ConvStripe& stripe : plan.stripes) {
        stripe.otile_row0 = c.i32();
        stripe.otile_rows = c.i32();
        stripe.in_tile_row0 = c.i32();
        stripe.in_tile_rows = c.i32();
        get_vec_pod(c, stripe.chunks);
      }

      get_vec_pod(c, conv.bias);
      conv.rq = get_rq(c);
      conv.macs = c.i64();
      conv.owner = c.u8() != 0 ? program.stamp_ : 0;
      get_vec_pod(c, conv.ddr_offset);
      conv.fastw = get_fastw(c);
      conv.predicted_cycles = c.u64();
      conv.predicted = get_counters(c);
    }

    const std::size_t npools = c.count(1);
    program.pools_.resize(npools);
    for (PoolPlan& plan : program.pools_) {
      plan.in_shape = get_shape(c);
      plan.out_shape = get_shape(c);
      const std::uint8_t op = c.u8();
      plan.op = static_cast<core::Opcode>(op);
      plan.win = c.i32();
      plan.stride = c.i32();
      plan.offset_y = c.i32();
      plan.offset_x = c.i32();
      plan.in_tiles_x = c.i32();
      plan.out_tiles_x = c.i32();
      plan.ifm_base = c.i32();
      plan.ofm_base = c.i32();
      get_vec_pod(c, plan.stripes);
    }

    const std::size_t nfused = c.count(1);
    program.fused_.resize(nfused);
    for (FusedPadConvLayout& fused : program.fused_) {
      fused.pad.top = c.i32();
      fused.pad.bottom = c.i32();
      fused.pad.left = c.i32();
      fused.pad.right = c.i32();
      fused.raw = get_shape(c);
      fused.padded = get_shape(c);
      fused.out = get_shape(c);
      fused.kernel = c.i32();
      fused.padded_base = c.i32();
      fused.ofm_base = c.i32();
      fused.weight_base = c.i32();
      fused.predicted_pad_cycles = c.u64();
      fused.predicted_conv_cycles = c.u64();
      fused.predicted = get_counters(c);
    }

    const std::size_t nfcs = c.count(1);
    program.fcs_.resize(nfcs);
    for (FcProgram& fc : program.fcs_) {
      get_vec_pod(c, fc.weights);
      get_vec_pod(c, fc.bias);
      fc.rq = get_rq(c);
      fc.out_dim = c.i32();
    }

    const std::size_t neltwise = c.count(1);
    program.eltwise_.resize(neltwise);
    for (nn::EltwiseQ& e : program.eltwise_) {
      e.lhs_shift = c.i32();
      e.rhs_shift = c.i32();
      e.rq = get_rq(c);
    }
    program.slot_count_ = c.i32();
    get_vec_pod(c, program.ddr_image_);
    c.done();

    // Pool fast-path decodes and PerfModel predictions derive from the plan
    // and cfg in microseconds; recomputing keeps them out of the format.
    for (PoolPlan& plan : program.pools_) finalize_pool_plan(cfg, plan);

    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
    }
    return program;
  } catch (const ParseError&) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    ++stats_.invalid;
    return std::nullopt;
  }
}

NetworkProgram CompileCache::get_or_compile(const nn::Network& net,
                                            const quant::QuantizedModel& model,
                                            const core::ArchConfig& cfg,
                                            const ProgramOptions& options) {
  const std::uint64_t k = key(net, model, cfg, options);
  if (std::optional<NetworkProgram> cached = load(k, net, cfg, options))
    return std::move(*cached);
  NetworkProgram compiled = NetworkProgram::compile(net, model, cfg, options);
  store(k, compiled);
  return compiled;
}

}  // namespace tsca::driver
