// Host-parallel simulation pool.
//
// The paper's 512-opt configuration reaches its throughput by running
// multiple accelerator instances concurrently on independent stripes
// (§IV-D).  The serial Runtime models those instances on one Accelerator
// object, so simulator wall-clock scales with total work.  AcceleratorPool
// gives the simulator the same parallelism the hardware has: N independent
// Accelerator/Dram/DmaEngine contexts, each owned by one std::thread worker,
// fed from a shared work queue (an atomic index over the unit range).
//
// Units of work (stripes, images, whole-network requests) are independent by
// construction, and every context executes a unit through exactly the same
// code path as the serial Runtime (driver/stripe_exec.hpp), so merged
// results are bit-identical to serial execution regardless of which worker
// ran which unit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "core/fastpath.hpp"
#include "sim/dma.hpp"
#include "sim/dram.hpp"

namespace tsca::driver {

class NetworkProgram;

struct PoolOptions {
  int workers = 1;                       // worker threads == contexts
  std::size_t dram_bytes = 64u << 20;    // per-context staging DDR
};

class AcceleratorPool {
 public:
  // One accelerator instance's host-side state.  Workers never share a
  // context; context i belongs to worker i for the lifetime of the pool.
  struct Context {
    Context(const core::ArchConfig& cfg, std::size_t dram_bytes)
        : acc(cfg), dram(dram_bytes), dma(dram) {}
    core::Accelerator acc;
    sim::Dram dram;
    sim::DmaEngine dma;
    std::uint64_t ddr_cursor = 0;  // staging bump allocator
    // NetworkProgram residency (see driver/stripe_exec.hpp ExecCtx): stamp
    // of the program whose weight image is resident at DDR address 0
    // (0 = none) and the first byte past it (where staging may begin).
    std::uint64_t staged_stamp = 0;
    std::uint64_t ddr_floor = 0;
    int worker = 0;                // index of the owning worker thread
    // Serving timeline position (simulated cycles) for tracing: requests a
    // worker serves lay their spans end to end on the worker's tracks.
    std::uint64_t trace_clock = 0;
    // Fast-path conv working set, reused across every stripe and request
    // this context executes.  Safe because a context never runs two units
    // concurrently (one worker owns it for the pool's lifetime).
    core::FastScratch fast_scratch;
  };

  using Task = std::function<void(Context&, std::size_t)>;

  AcceleratorPool(const core::ArchConfig& cfg, PoolOptions options = {});
  ~AcceleratorPool();
  AcceleratorPool(const AcceleratorPool&) = delete;
  AcceleratorPool& operator=(const AcceleratorPool&) = delete;

  int workers() const { return static_cast<int>(contexts_.size()); }
  const core::ArchConfig& config() const { return cfg_; }
  Context& context(int i) { return *contexts_[static_cast<std::size_t>(i)]; }

  // Runs fn(context, index) for every index in [0, n), distributing indices
  // over the workers through a shared queue; blocks until all are done.
  // Rethrows the first task exception (remaining indices are abandoned).
  // Reentrant calls are not allowed (tasks must not call parallel_for).
  void parallel_for(std::size_t n, const Task& fn);

 private:
  void worker_loop(int worker);

  core::ArchConfig cfg_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<std::thread> threads_;

  // Job state, guarded by m_ except next_ (claimed lock-free).
  std::mutex m_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // parallel_for waits for completion
  std::uint64_t generation_ = 0;      // bumped per job
  std::size_t job_n_ = 0;
  const Task* job_ = nullptr;
  std::atomic<std::size_t> next_{0};  // next unclaimed unit
  std::atomic<bool> abort_{false};    // a task threw; stop claiming units
  int active_ = 0;                    // workers still inside the current job
  std::exception_ptr error_;
  bool shutdown_ = false;
};

// Makes `program`'s weight image resident in `ctx`'s DDR (a host write — no
// DMA statistics) and fences the context's bump allocator above it; no-op
// when the image is already staged.  Shared by PoolRuntime (every pool
// context) and the serving layer (every Server worker context).
void stage_program_in_context(AcceleratorPool::Context& ctx,
                              const NetworkProgram& program);

}  // namespace tsca::driver
