#include "driver/host_interface.hpp"

namespace tsca::driver {

HostInterface::HostInterface(core::Accelerator& accelerator, hls::Mode mode)
    : acc_(accelerator), mode_(mode), regs_("accelerator-csr", kNumRegs) {}

void HostInterface::write(int reg, std::uint32_t value) {
  regs_.write(reg, value);
  if (reg == kDoorbell && value != 0) {
    core::EncodedInstruction words{};
    for (int w = 0; w < core::kInstrWords; ++w)
      words[static_cast<std::size_t>(w)] = regs_.peek(w);
    try {
      const core::Instruction instr = core::decode_instruction(words);
      core::validate_instruction(instr, acc_.config());
      queue_.push_back(instr);
      regs_.poke(kStatus, kStatusQueued);
      regs_.poke(kQueued, static_cast<std::uint32_t>(queue_.size()));
    } catch (const InstructionError&) {
      regs_.poke(kStatus, kStatusError);
      throw;
    }
  } else if (reg == kGo && value != 0) {
    last_stats_ = acc_.run_batch(queue_, mode_);
    queue_.clear();
    regs_.poke(kQueued, 0);
    regs_.poke(kStatus, kStatusDone);
    regs_.poke(kCyclesLo,
               static_cast<std::uint32_t>(last_stats_.cycles & 0xffffffffu));
    regs_.poke(kCyclesHi, static_cast<std::uint32_t>(last_stats_.cycles >> 32));
  }
}

void HostInterface::submit(const core::Instruction& instr) {
  const core::EncodedInstruction words = core::encode_instruction(instr);
  for (int w = 0; w < core::kInstrWords; ++w)
    regs_.write(w, words[static_cast<std::size_t>(w)]);
  write(kDoorbell, 1);
}

core::BatchStats HostInterface::go() {
  write(kGo, 1);
  return last_stats_;
}

}  // namespace tsca::driver
