// Per-stripe execution units shared by the serial Runtime and the
// host-parallel AcceleratorPool runtime.
//
// A stripe (or, for batched convolution, one image's pass over a stripe's
// weight chunk) is the unit of independent work the paper's 512-opt variant
// distributes over accelerator instances (§IV-D).  Both runtimes execute
// stripes through these functions, so pooled execution is bit-identical to
// the serial path by construction: same staging, same instructions, same
// cycle counts per unit — only the host-side dispatch differs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/compiler.hpp"
#include "driver/program.hpp"
#include "obs/trace.hpp"
#include "pack/tile.hpp"
#include "sim/dma.hpp"

namespace tsca::driver {

// One accelerator instance's host-side execution context: the accelerator,
// its DDR staging memory, the DMA engine, and the staging bump allocator.
struct ExecCtx {
  core::Accelerator& acc;
  sim::Dram& dram;
  sim::DmaEngine& dma;
  std::uint64_t& ddr_cursor;
  hls::Mode mode;
  // Observability (null disables): the compute track this unit lays its
  // stripe/batch spans on.  trace_kernels additionally records per-kernel
  // busy/stall spans inside every batch (cycle mode only) on sibling tracks
  // "<track name>/<kernel>".
  obs::Track* trace = nullptr;
  bool trace_kernels = false;
  // DDR residency of a NetworkProgram's weight image in this context:
  // `resident_stamp` names the program (0 = none) whose image lives at
  // [program_base, program_base + image size); stage_chunk_weights DMAs a
  // matching layer's streams straight from it instead of re-writing DDR.
  // The staging bump allocator wraps to `ddr_floor` (the first byte past the
  // resident image) instead of 0 so staging never clobbers the image.
  std::uint64_t resident_stamp = 0;
  std::uint64_t program_base = 0;
  std::uint64_t ddr_floor = 0;
};

// DMA helpers: stage bytes through DDR into a bank region and back.
void stage_to_bank(ExecCtx& ctx, sim::SramBank& bank, int word_addr,
                   const std::vector<std::uint8_t>& bytes,
                   bool count_stats = true);
std::vector<std::uint8_t> stage_from_bank(ExecCtx& ctx,
                                          const sim::SramBank& bank,
                                          int word_addr, int words);

struct StripeOutcome {
  std::uint64_t cycles = 0;  // accelerator cycles accumulated by this unit
  int batches = 0;           // instruction batches submitted
};

// Accelerator::run_batch with the context's instrumentation applied: records
// a `label` span of the batch's cycles (with instruction count and stall
// totals as args) on ctx.trace and, when ctx.trace_kernels is set, threads
// the recorder into the cycle engine for per-kernel spans.
core::BatchStats run_batch_traced(ExecCtx& ctx,
                                  const std::vector<core::Instruction>& instrs,
                                  const char* label);

// Stages one weight chunk's per-(group, lane) streams at lane-aligned bases
// and builds the chunk's CONV instructions.  When the conv layer's owning
// program image is resident in the context's DDR the streams are DMA'd from
// it in place (same transfers, same bytes — identical statistics); otherwise
// they are staged through the bump allocator.  `count_stats = false`
// replicates weights without DMA accounting (pooled batch path: the modelled
// hardware stages each chunk once, see account_chunk_weights).
std::vector<core::Instruction> stage_chunk_weights(
    ExecCtx& ctx, const ConvProgram& conv, const ConvStripe& stripe,
    const ConvStripe::Chunk& chunk, bool count_stats = true);

// Stats-only twin of stage_chunk_weights(count_stats = true): accounts the
// chunk's weight-staging DMA exactly once, with the same per-stream transfer
// granularity as the serial path.
void account_chunk_weights(sim::DmaEngine& dma, const ConvStripe::Chunk& chunk,
                           const WeightImage& wimg);

// Executes one convolution stripe end to end: stages the (padded) IFM stripe
// into every bank, runs every weight chunk as an instruction batch, and reads
// the OFM stripe back into `output` (disjoint tile rows per stripe, so
// concurrent stripes never touch the same tiles).
StripeOutcome exec_conv_stripe(ExecCtx& ctx, const ConvProgram& conv,
                               const ConvStripe& stripe,
                               const pack::TiledFm& input,
                               pack::TiledFm& output);

// Executes one PAD/POOL stripe end to end.
StripeOutcome exec_pool_stripe(ExecCtx& ctx, const PoolPlan& plan,
                               const PoolStripe& stripe,
                               const pack::TiledFm& input,
                               pack::TiledFm& output);

// Batched convolution: runs one image through one (stripe, chunk) whose
// weights are already staged (instrs from stage_chunk_weights), reading back
// only the chunk's output-channel slots.
StripeOutcome exec_batch_image_chunk(ExecCtx& ctx, const ConvProgram& conv,
                                     const ConvStripe& stripe,
                                     const ConvStripe::Chunk& chunk,
                                     const std::vector<core::Instruction>& instrs,
                                     const pack::TiledFm& input,
                                     pack::TiledFm& output);

}  // namespace tsca::driver
