#include "driver/stripe_exec.hpp"

#include "core/kernels.hpp"
#include "driver/runtime.hpp"

namespace tsca::driver {

namespace {

// Unpacks a contiguous range of channel slots (slot = channel / lanes) of a
// stripe image — used by batched execution, where each weight chunk reads
// back only the output channels it computed.
void unpack_bank_stripe_slots(pack::TiledFm& fm,
                              const std::vector<std::uint8_t>& bytes,
                              int lane, int lanes, int row0, int rows,
                              int slot0, int slot_count) {
  std::size_t pos = 0;
  for (int slot = slot0; slot < slot0 + slot_count; ++slot) {
    const int c = slot * lanes + lane;
    for (int r = row0; r < row0 + rows; ++r) {
      for (int x = 0; x < fm.tiles_x(); ++x) {
        TSCA_CHECK(pos + sim::kWordBytes <= bytes.size(),
                   "short slot-range stripe image");
        if (c < fm.channels()) {
          sim::Word word;
          std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                    bytes.begin() + static_cast<std::ptrdiff_t>(pos) +
                        sim::kWordBytes,
                    word.b.begin());
          fm.tile(c, r, x) = sim::tile_from_word(word);
        }
        pos += sim::kWordBytes;
      }
    }
  }
}

}  // namespace

core::BatchStats run_batch_traced(ExecCtx& ctx,
                                  const std::vector<core::Instruction>& instrs,
                                  const char* label) {
  core::BatchStats stats;
  if (ctx.trace != nullptr && ctx.trace_kernels &&
      ctx.mode == hls::Mode::kCycle) {
    hls::SystemOptions options = core::Accelerator::default_options();
    options.trace = &ctx.trace->recorder();
    options.trace_scope = ctx.trace->name() + "/";
    options.trace_base_cycle = ctx.trace->now();
    stats = ctx.acc.run_batch(instrs, ctx.mode, options);
  } else {
    stats = ctx.acc.run_batch(instrs, ctx.mode);
  }
  if (ctx.trace != nullptr) {
    ctx.trace->span(
        label, "batch", stats.cycles,
        {{"instructions", static_cast<std::int64_t>(instrs.size())},
         {"fifo_push_stalls", static_cast<std::int64_t>(stats.fifo_push_stalls)},
         {"fifo_pop_stalls", static_cast<std::int64_t>(stats.fifo_pop_stalls)},
         {"port_stalls", static_cast<std::int64_t>(stats.port_stalls)}});
  }
  return stats;
}

void stage_to_bank(ExecCtx& ctx, sim::SramBank& bank, int word_addr,
                   const std::vector<std::uint8_t>& bytes, bool count_stats) {
  if (bytes.empty()) return;
  if (ctx.ddr_cursor + bytes.size() > ctx.dram.size())
    ctx.ddr_cursor = ctx.ddr_floor;
  TSCA_CHECK(ctx.ddr_floor + bytes.size() <= ctx.dram.size(),
             "stripe larger than DDR");
  ctx.dram.write(ctx.ddr_cursor, bytes.data(), bytes.size());
  ctx.dma.to_bank(bank, word_addr, ctx.ddr_cursor, bytes.size(), count_stats);
  ctx.ddr_cursor += bytes.size();
}

std::vector<std::uint8_t> stage_from_bank(ExecCtx& ctx,
                                          const sim::SramBank& bank,
                                          int word_addr, int words) {
  std::vector<std::uint8_t> bytes(
      static_cast<std::size_t>(words) * sim::kWordBytes);
  if (bytes.empty()) return bytes;
  if (ctx.ddr_cursor + bytes.size() > ctx.dram.size())
    ctx.ddr_cursor = ctx.ddr_floor;
  TSCA_CHECK(ctx.ddr_floor + bytes.size() <= ctx.dram.size(),
             "stripe larger than DDR");
  ctx.dma.to_dram(bank, word_addr, ctx.ddr_cursor, bytes.size());
  ctx.dram.read(ctx.ddr_cursor, bytes.data(), bytes.size());
  ctx.ddr_cursor += bytes.size();
  return bytes;
}

std::vector<core::Instruction> stage_chunk_weights(
    ExecCtx& ctx, const ConvProgram& conv, const ConvStripe& stripe,
    const ConvStripe::Chunk& chunk, bool count_stats) {
  const core::ArchConfig& cfg = ctx.acc.config();
  const WeightImage& wimg = conv.wimg;
  // A resident program image serves the streams in place: the same transfer
  // (same byte count) as the staged path, minus the per-call DDR rewrite.
  const bool resident =
      conv.owner != 0 && conv.owner == ctx.resident_stamp;
  std::vector<core::Instruction> instrs;
  int base = conv.plan.weight_base;
  for (int k = 0; k < chunk.count; ++k) {
    const int g = chunk.g0 + k;
    for (int lane = 0; lane < cfg.lanes; ++lane) {
      const std::vector<std::uint8_t>& bytes = wimg.bytes(g, lane);
      if (bytes.empty()) continue;
      if (resident) {
        ctx.dma.to_bank(ctx.acc.bank(lane), base,
                        ctx.program_base + conv.stream_ddr_offset(g, lane),
                        bytes.size(), count_stats);
      } else {
        stage_to_bank(ctx, ctx.acc.bank(lane), base, bytes, count_stats);
      }
    }
    instrs.push_back(core::Instruction::make_conv(make_conv_instr(
        conv.plan, stripe, g, base, wimg, conv.bias, conv.rq, cfg.group)));
    base += wimg.aligned_words(g);
  }
  return instrs;
}

void account_chunk_weights(sim::DmaEngine& dma, const ConvStripe::Chunk& chunk,
                           const WeightImage& wimg) {
  for (int k = 0; k < chunk.count; ++k) {
    const int g = chunk.g0 + k;
    for (int lane = 0; lane < wimg.lanes(); ++lane)
      dma.account_to_fpga(wimg.bytes(g, lane).size());
  }
}

StripeOutcome exec_conv_stripe(ExecCtx& ctx, const ConvProgram& conv,
                               const ConvStripe& stripe,
                               const pack::TiledFm& input,
                               pack::TiledFm& output) {
  const core::ArchConfig& cfg = ctx.acc.config();
  const ConvPlan& plan = conv.plan;
  StripeOutcome out;
  const std::uint64_t trace_begin =
      ctx.trace != nullptr ? ctx.trace->now() : 0;
  // Stage the (padded) IFM stripe into every bank.
  for (int lane = 0; lane < cfg.lanes; ++lane)
    stage_to_bank(ctx, ctx.acc.bank(lane), plan.ifm_base,
                  bank_stripe_bytes(input, lane, cfg.lanes,
                                    stripe.in_tile_row0, stripe.in_tile_rows));
  for (const ConvStripe::Chunk& chunk : stripe.chunks) {
    const std::vector<core::Instruction> instrs =
        stage_chunk_weights(ctx, conv, stripe, chunk);
    const core::BatchStats stats = run_batch_traced(ctx, instrs, "conv chunk");
    out.cycles += stats.cycles;
    ++out.batches;
  }
  if (ctx.trace != nullptr)
    ctx.trace->complete("conv stripe", "stripe", trace_begin, out.cycles,
                        {{"batches", out.batches},
                         {"tile_row0", stripe.otile_row0}});
  // Read the OFM stripe back.
  for (int lane = 0; lane < cfg.lanes; ++lane) {
    const int lane_words =
        core::lane_channel_count(plan.out_shape.c, lane, cfg.lanes) *
        stripe.otile_rows * plan.out_tiles_x;
    if (lane_words == 0) continue;
    unpack_bank_stripe(output,
                       stage_from_bank(ctx, ctx.acc.bank(lane), plan.ofm_base,
                                       lane_words),
                       lane, cfg.lanes, stripe.otile_row0, stripe.otile_rows);
  }
  return out;
}

StripeOutcome exec_pool_stripe(ExecCtx& ctx, const PoolPlan& plan,
                               const PoolStripe& stripe,
                               const pack::TiledFm& input,
                               pack::TiledFm& output) {
  const core::ArchConfig& cfg = ctx.acc.config();
  StripeOutcome out;
  for (int lane = 0; lane < cfg.lanes; ++lane)
    stage_to_bank(ctx, ctx.acc.bank(lane), plan.ifm_base,
                  bank_stripe_bytes(input, lane, cfg.lanes,
                                    stripe.in_tile_row0, stripe.in_tile_rows));
  const core::Instruction instr =
      plan.op == core::Opcode::kPad
          ? core::Instruction::make_pad(make_pool_instr(plan, stripe))
          : core::Instruction::make_pool(make_pool_instr(plan, stripe));
  const char* label =
      plan.op == core::Opcode::kPad ? "pad stripe" : "pool stripe";
  const core::BatchStats stats = run_batch_traced(ctx, {instr}, label);
  out.cycles += stats.cycles;
  ++out.batches;
  for (int lane = 0; lane < cfg.lanes; ++lane) {
    const int lane_words =
        core::lane_channel_count(plan.out_shape.c, lane, cfg.lanes) *
        stripe.otile_rows * plan.out_tiles_x;
    if (lane_words == 0) continue;
    unpack_bank_stripe(output,
                       stage_from_bank(ctx, ctx.acc.bank(lane), plan.ofm_base,
                                       lane_words),
                       lane, cfg.lanes, stripe.otile_row0, stripe.otile_rows);
  }
  return out;
}

StripeOutcome exec_batch_image_chunk(
    ExecCtx& ctx, const ConvProgram& conv, const ConvStripe& stripe,
    const ConvStripe::Chunk& chunk,
    const std::vector<core::Instruction>& instrs, const pack::TiledFm& input,
    pack::TiledFm& output) {
  const core::ArchConfig& cfg = ctx.acc.config();
  const ConvPlan& plan = conv.plan;
  StripeOutcome out;
  for (int lane = 0; lane < cfg.lanes; ++lane)
    stage_to_bank(ctx, ctx.acc.bank(lane), plan.ifm_base,
                  bank_stripe_bytes(input, lane, cfg.lanes,
                                    stripe.in_tile_row0, stripe.in_tile_rows));
  const core::BatchStats stats = run_batch_traced(ctx, instrs, "image chunk");
  out.cycles += stats.cycles;
  ++out.batches;
  // Read back only this chunk's output-channel slots (group g writes slot g,
  // since group == lanes and oc0 is group-aligned).
  const int slot_words = stripe.otile_rows * plan.out_tiles_x;
  for (int lane = 0; lane < cfg.lanes; ++lane) {
    unpack_bank_stripe_slots(
        output,
        stage_from_bank(ctx, ctx.acc.bank(lane),
                        plan.ofm_base + chunk.g0 * slot_words,
                        chunk.count * slot_words),
        lane, cfg.lanes, stripe.otile_row0, stripe.otile_rows, chunk.g0,
        chunk.count);
  }
  return out;
}

}  // namespace tsca::driver
