#include "driver/program_registry.hpp"

#include <algorithm>
#include <utility>

#include "driver/compile_cache.hpp"

namespace tsca::driver {

struct ProgramHandle::Entry {
  std::string id;
  nn::Network net;
  quant::QuantizedModel model;
  bool pinned = false;

  // Materialized state (null program = recipe only; next acquire compiles).
  std::shared_ptr<const NetworkProgram> program;
  // (content hash, byte size) per conv WeightImage of the compiled program.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> images;
  std::uint64_t last_use = 0;
  int in_use = 0;
};

ProgramHandle::ProgramHandle(ProgramHandle&& other) noexcept
    : registry_(std::exchange(other.registry_, nullptr)),
      entry_(std::move(other.entry_)),
      program_(std::move(other.program_)) {}

ProgramHandle& ProgramHandle::operator=(ProgramHandle&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr && entry_ != nullptr) registry_->release(entry_);
    registry_ = std::exchange(other.registry_, nullptr);
    entry_ = std::move(other.entry_);
    program_ = std::move(other.program_);
  }
  return *this;
}

ProgramHandle::~ProgramHandle() {
  if (registry_ != nullptr && entry_ != nullptr) registry_->release(entry_);
}

const std::string& ProgramHandle::model_id() const {
  TSCA_CHECK(entry_ != nullptr, "empty program handle");
  return entry_->id;
}

namespace {

bool valid_model_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// FNV-1a over a WeightImage's serialized streams plus its geometry — two
// images hash equal iff a runtime would DMA identical bytes from them.
std::uint64_t hash_weight_image(const WeightImage& wimg) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix_byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  mix_u64(static_cast<std::uint64_t>(wimg.groups()));
  mix_u64(static_cast<std::uint64_t>(wimg.lanes()));
  mix_u64(static_cast<std::uint64_t>(wimg.group_size()));
  mix_byte(wimg.ternary() ? 1 : 0);
  for (int g = 0; g < wimg.groups(); ++g) {
    mix_u64(static_cast<std::uint64_t>(wimg.active_filters(g)));
    for (int lane = 0; lane < wimg.lanes(); ++lane) {
      const std::vector<std::uint8_t>& bytes = wimg.bytes(g, lane);
      mix_u64(bytes.size());
      for (const std::uint8_t b : bytes) mix_byte(b);
    }
  }
  return h;
}

std::uint64_t image_bytes(const WeightImage& wimg) {
  std::uint64_t total = 0;
  for (int g = 0; g < wimg.groups(); ++g)
    for (int lane = 0; lane < wimg.lanes(); ++lane)
      total += wimg.bytes(g, lane).size();
  return total;
}

}  // namespace

ProgramRegistry::ProgramRegistry(const core::ArchConfig& cfg,
                                 RegistryOptions options)
    : cfg_(cfg), options_(std::move(options)) {}

ProgramRegistry::~ProgramRegistry() = default;

void ProgramRegistry::add_model(const std::string& id, const nn::Network& net,
                                const quant::QuantizedModel& model,
                                bool pinned) {
  TSCA_CHECK(valid_model_id(id),
             "model id must be 1-64 chars of [A-Za-z0-9_.-]: \"" << id << '"');
  std::lock_guard<std::mutex> lock(mu_);
  TSCA_CHECK(entries_.find(id) == entries_.end(),
             "duplicate model id: " << id);
  entries_.emplace(
      id, std::make_shared<Entry>(Entry{id, net, model, pinned, {}, {}, 0, 0}));
}

bool ProgramRegistry::has_model(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(id) != entries_.end();
}

std::vector<std::string> ProgramRegistry::model_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

bool ProgramRegistry::resident(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second->program != nullptr;
}

RegistryStats ProgramRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ProgramRegistry::charge_locked(Entry& entry) {
  for (const auto& [hash, bytes] : entry.images) {
    auto& ref = stream_refs_[hash];
    if (ref.second == 0) {
      ref.first = bytes;
      stats_.resident_bytes += bytes;
    } else {
      stats_.shared_bytes_saved += bytes;
    }
    ++ref.second;
  }
}

void ProgramRegistry::discharge_locked(Entry& entry) {
  for (const auto& [hash, bytes] : entry.images) {
    const auto it = stream_refs_.find(hash);
    TSCA_CHECK(it != stream_refs_.end() && it->second.second > 0,
               "stream refcount underflow");
    if (--it->second.second == 0) {
      stats_.resident_bytes -= it->second.first;
      stream_refs_.erase(it);
    }
  }
}

void ProgramRegistry::evict_for_headroom_locked(const Entry& keep) {
  if (options_.ddr_budget_bytes == 0) return;
  while (stats_.resident_bytes > options_.ddr_budget_bytes) {
    Entry* victim = nullptr;
    for (const auto& [id, entry] : entries_) {
      if (entry.get() == &keep || entry->pinned || entry->in_use > 0 ||
          entry->program == nullptr)
        continue;
      if (victim == nullptr || entry->last_use < victim->last_use)
        victim = entry.get();
    }
    // Nothing evictable left: pinned/in-use programs may hold the total
    // above budget (soft overage) — callers keep working, the next idle
    // release creates headroom naturally.
    if (victim == nullptr) return;
    discharge_locked(*victim);
    victim->program.reset();
    victim->images.clear();
    ++stats_.evictions;
  }
}

ProgramHandle ProgramRegistry::acquire(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) throw UnknownModelError(id);
  const std::shared_ptr<Entry>& entry = it->second;
  entry->last_use = ++tick_;
  if (entry->program == nullptr) {
    // Compile under the lock: registry-level serialization keeps budget
    // accounting simple, and compiles are rare (cold start / post-evict).
    // With a persistent cache attached, a warm cache turns the compile into
    // a deserialization (CompileCache::get_or_compile stores on miss).
    NetworkProgram compiled =
        options_.compile_cache != nullptr
            ? options_.compile_cache->get_or_compile(entry->net, entry->model,
                                                     cfg_, options_.program)
            : NetworkProgram::compile(entry->net, entry->model, cfg_,
                                      options_.program);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> images;
    std::uint64_t own_bytes = 0;  // distinct bytes of this program alone
    {
      std::map<std::uint64_t, std::uint64_t> distinct;
      for (const NetworkProgram::Step& step : compiled.steps()) {
        if (step.conv < 0) continue;
        const WeightImage& wimg = compiled.conv(step.conv).wimg;
        const std::uint64_t hash = hash_weight_image(wimg);
        const std::uint64_t bytes = image_bytes(wimg);
        images.emplace_back(hash, bytes);
        distinct.emplace(hash, bytes);
      }
      for (const auto& [hash, bytes] : distinct) own_bytes += bytes;
    }
    if (options_.ddr_budget_bytes != 0 &&
        own_bytes > options_.ddr_budget_bytes)
      throw RegistryBudgetError(
          "model \"" + id + "\" needs " + std::to_string(own_bytes) +
          " weight bytes alone, budget is " +
          std::to_string(options_.ddr_budget_bytes));
    entry->images = std::move(images);
    entry->program =
        std::make_shared<const NetworkProgram>(std::move(compiled));
    charge_locked(*entry);
    ++stats_.compiles;
    evict_for_headroom_locked(*entry);
  } else {
    ++stats_.cache_hits;
  }
  ++entry->in_use;
  return ProgramHandle(this, entry, entry->program);
}

void ProgramRegistry::release(const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  TSCA_CHECK(entry->in_use > 0, "program handle double release");
  --entry->in_use;
}

}  // namespace tsca::driver
