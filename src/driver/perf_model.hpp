// Transaction-level performance model.
//
// Predicts the cycle-accurate engine's cycle counts analytically, so the
// full-size VGG-16 studies (Figs. 7 and 8 of the paper) can sweep four
// architecture variants × pruned/unpruned models in milliseconds instead of
// simulating tens of millions of cycles.  The model walks the same plan the
// driver executes and applies the pipeline's steady-state cost per
// (channel, weight-tile) step:
//
//     step cycles = max( 4 IFM tile loads + scratchpad-spill words,
//                        max(1, max_g nnz_g) weight injections )
//
// with instruction dispatch, scratchpad preload, per-position barrier
// synchronization and pipeline-drain constants.  test_perf_model.cpp holds
// the model to within a few percent of the cycle engine across a parameter
// grid; the constants below were calibrated there.
#pragma once

#include <cstdint>
#include <functional>

#include "core/config.hpp"
#include "driver/compiler.hpp"
#include "pack/weight_pack.hpp"

namespace tsca::driver {

struct ConvPerf {
  std::int64_t cycles = 0;        // elapsed cycles (max over instances)
  std::int64_t ideal_cycles = 0;  // dense MACs / (macs per cycle, all instances)
  std::int64_t macs_dense = 0;
  std::int64_t macs_performed = 0;  // after zero-skipping
  std::int64_t weight_cmds = 0;
  std::int64_t weight_bubbles = 0;
  std::int64_t dma_bytes = 0;  // stripe FM traffic + per-chunk weight streams
  std::int64_t positions = 0;  // engine `positions` counter (per instruction)
  int stripes = 0;
  int instructions = 0;

  // Accelerator-clock cycles the DMA needs if not overlapped with compute
  // (256-bit bus at the DDR clock).
  std::int64_t dma_cycles(double clock_mhz, double ddr_mhz = 1200.0,
                          int bus_bytes = 32) const {
    const double beats =
        static_cast<double>(dma_bytes) / static_cast<double>(bus_bytes);
    return static_cast<std::int64_t>(beats * clock_mhz / ddr_mhz);
  }

  double efficiency() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(ideal_cycles) /
                             static_cast<double>(cycles);
  }
  // Throughput in effective GMAC/s ("ops" in the paper count skipped MACs
  // as performed).
  double effective_gops(double clock_mhz) const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(macs_dense) * clock_mhz * 1e6 /
                             static_cast<double>(cycles) * 1e-9;
  }
};

struct PoolPerf {
  std::int64_t cycles = 0;
  std::int64_t ops = 0;  // pool/pad micro-ops executed
  int stripes = 0;
};

class PerfModel {
 public:
  explicit PerfModel(core::ArchConfig cfg);

  const core::ArchConfig& config() const { return cfg_; }

  // One CONV instruction (one stripe × one filter group).
  std::int64_t conv_instr_cycles(const core::ConvInstr& instr,
                                 const pack::PackedFilters& packed) const;

  // Same, reading group g's serialized per-lane streams from a WeightImage
  // (parse_lane_stream reproduces build_lane_stream exactly, so both
  // overloads agree bit-for-bit).
  std::int64_t conv_instr_cycles(const core::ConvInstr& instr,
                                 const WeightImage& wimg, int g) const;

  // One PAD or POOL instruction: dispatch plus the worst lane's micro-op
  // steps (batch_overhead is per run_batch, added by the layer models).
  std::int64_t pool_instr_cycles(const core::PadPoolInstr& instr) const;

  // A whole convolution layer: plans stripes/chunks exactly like the driver
  // and sums instruction costs, distributing stripes over instances.
  ConvPerf conv_layer(const nn::FmShape& padded_in,
                      const pack::PackedFilters& packed) const;

  // Same, consuming the driver's own plan + weight image instead of
  // replanning — this is what NetworkProgram::compile stores per ConvProgram
  // so ExecMode::kFast can report statistics without touching the model.
  ConvPerf conv_plan_perf(const ConvPlan& plan, const WeightImage& wimg) const;

  // A whole PAD or POOL layer.
  PoolPerf pool_layer(const nn::FmShape& in_shape,
                      const nn::FmShape& out_shape, core::Opcode op, int win,
                      int stride, int offset_y, int offset_x) const;

  PoolPerf pool_plan_perf(const PoolPlan& plan) const;

  // Zero-skip work counters (weight_cmds / weight_bubbles / macs_performed)
  // over `positions_total` output-tile positions, accumulated into `perf`.
  // These reproduce the engine's counters exactly (not approximately);
  // `wtiles` = weight tiles per channel.
  void zero_skip_counters(const WeightImage& wimg, int in_channels, int wtiles,
                          std::int64_t positions_total, ConvPerf& perf) const;

  // Calibration constants (cycles), held to the cycle engine by
  // test_perf_model.cpp.
  struct Constants {
    int instr_dispatch = 2;  // controller decode + fan-out, per instruction
    int batch_overhead = 6;  // pipeline fill/drain per run_batch
  };
  const Constants& constants() const { return constants_; }

 private:
  std::int64_t conv_instr_cycles_streams(
      const core::ConvInstr& instr,
      const std::function<pack::LaneStream(int)>& stream_for) const;

  core::ArchConfig cfg_;
  Constants constants_;
};

}  // namespace tsca::driver
