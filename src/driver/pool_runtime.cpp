#include "driver/pool_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "driver/stripe_exec.hpp"

namespace tsca::driver {

// Snapshots every context's counters and DMA statistics on construction;
// merge() folds the per-context deltas into a LayerRun.  Sums of identical
// per-unit integer deltas are independent of worker assignment, which is
// what makes the merged statistics bit-identical to the serial path.
struct PoolRuntime::ScopedMerge {
  explicit ScopedMerge(AcceleratorPool& pool) : pool_(pool) {
    counters_before.reserve(static_cast<std::size_t>(pool.workers()));
    dma_before.reserve(static_cast<std::size_t>(pool.workers()));
    for (int i = 0; i < pool.workers(); ++i) {
      counters_before.push_back(core::snapshot(pool.context(i).acc.counters()));
      dma_before.push_back(pool.context(i).dma.stats());
    }
  }

  void merge(LayerRun& run) const {
    for (int i = 0; i < pool_.workers(); ++i) {
      run.counters += core::snapshot(pool_.context(i).acc.counters()) -
                      counters_before[static_cast<std::size_t>(i)];
      run.dma += pool_.context(i).dma.stats() -
                 dma_before[static_cast<std::size_t>(i)];
    }
  }

  AcceleratorPool& pool_;
  std::vector<core::CounterSnapshot> counters_before;
  std::vector<sim::DmaStats> dma_before;
};

namespace {

ExecCtx make_exec_ctx(AcceleratorPool::Context& ctx, hls::Mode mode) {
  ExecCtx ec{ctx.acc, ctx.dram, ctx.dma, ctx.ddr_cursor, mode};
  ec.resident_stamp = ctx.staged_stamp;
  ec.program_base = 0;
  ec.ddr_floor = ctx.ddr_floor;
  return ec;
}

// Serial cycle accounting: unit u's cycles land in instance bucket
// u % instances; a layer's elapsed cycles are the maximum bucket (instances
// work concurrently on separate stripes, §IV-D).
std::uint64_t max_over_instances(const std::vector<std::uint64_t>& per_unit,
                                 int instances) {
  std::vector<std::uint64_t> buckets(static_cast<std::size_t>(instances), 0);
  for (std::size_t u = 0; u < per_unit.size(); ++u)
    buckets[u % static_cast<std::size_t>(instances)] += per_unit[u];
  return *std::max_element(buckets.begin(), buckets.end());
}

}  // namespace

PoolRuntime::PoolRuntime(AcceleratorPool& pool, RuntimeOptions options)
    : Runtime(pool.context(0).acc, pool.context(0).dram, pool.context(0).dma,
              options),
      pool_(pool) {}

pack::TiledFm PoolRuntime::run_conv(const pack::TiledFm& input,
                                    const ConvProgram& conv, LayerRun& run) {
  // The base-class fast body handles statistics/predictions and reaches our
  // fast_exec_conv override for the stripe fan-out.
  if (options_.mode == ExecMode::kFast)
    return Runtime::run_conv(input, conv, run);
  const core::ArchConfig& cfg = pool_.config();
  TSCA_CHECK(conv.plan.in_shape == input.shape(),
             "program compiled for a different input shape");
  TSCA_CHECK(!conv.plan.stripes.empty(),
             "conv program has no striped plan (fused-only layer)");
  const ConvPlan& plan = conv.plan;
  pack::TiledFm output(plan.out_shape);

  const ScopedMerge scope(pool_);
  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv.macs;
  run.stripes = static_cast<int>(plan.stripes.size());

  // One unit per stripe.  Stripes read the shared input and write disjoint
  // tile rows of the shared output, so no unit touches another's data.
  std::vector<StripeOutcome> outcomes(plan.stripes.size());
  const hls::Mode mode = engine_mode(options_.mode);
  const LayerTracer tracer = begin_layer_trace(pool_.workers(), "worker");
  const bool trace_kernels = options_.trace_kernels;
  if (tracer)
    for (int i = 0; i < pool_.workers(); ++i)
      pool_.context(i).dma.set_trace(tracer.dma[static_cast<std::size_t>(i)]);
  pool_.parallel_for(
      plan.stripes.size(),
      [&](AcceleratorPool::Context& ctx, std::size_t si) {
        ExecCtx ec = make_exec_ctx(ctx, mode);
        if (tracer) {
          ec.trace = tracer.compute[static_cast<std::size_t>(ctx.worker)];
          ec.trace_kernels = trace_kernels;
        }
        outcomes[si] =
            exec_conv_stripe(ec, conv, plan.stripes[si], input, output);
      });
  if (tracer)
    for (int i = 0; i < pool_.workers(); ++i)
      pool_.context(i).dma.set_trace(nullptr);

  std::vector<std::uint64_t> per_stripe(outcomes.size());
  for (std::size_t si = 0; si < outcomes.size(); ++si) {
    per_stripe[si] = outcomes[si].cycles;
    run.batches += outcomes[si].batches;
  }
  run.cycles = max_over_instances(per_stripe, cfg.instances);
  scope.merge(run);
  finish_layer(run);
  return output;
}

pack::TiledFm PoolRuntime::run_pad_pool(const pack::TiledFm& input,
                                        const PoolPlan& plan, LayerRun& run) {
  if (options_.mode == ExecMode::kFast)
    return Runtime::run_pad_pool(input, plan, run);
  const core::ArchConfig& cfg = pool_.config();
  TSCA_CHECK(plan.in_shape == input.shape(),
             "plan compiled for a different input shape");
  pack::TiledFm output(plan.out_shape);

  const ScopedMerge scope(pool_);
  run.reset_stats();
  run.on_accelerator = true;
  run.kind = plan.op == core::Opcode::kPad ? nn::LayerKind::kPad
                                           : nn::LayerKind::kMaxPool;
  run.stripes = static_cast<int>(plan.stripes.size());

  std::vector<StripeOutcome> outcomes(plan.stripes.size());
  const hls::Mode mode = engine_mode(options_.mode);
  const LayerTracer tracer = begin_layer_trace(pool_.workers(), "worker");
  const bool trace_kernels = options_.trace_kernels;
  if (tracer)
    for (int i = 0; i < pool_.workers(); ++i)
      pool_.context(i).dma.set_trace(tracer.dma[static_cast<std::size_t>(i)]);
  pool_.parallel_for(
      plan.stripes.size(),
      [&](AcceleratorPool::Context& ctx, std::size_t si) {
        ExecCtx ec = make_exec_ctx(ctx, mode);
        if (tracer) {
          ec.trace = tracer.compute[static_cast<std::size_t>(ctx.worker)];
          ec.trace_kernels = trace_kernels;
        }
        outcomes[si] =
            exec_pool_stripe(ec, plan, plan.stripes[si], input, output);
      });
  if (tracer)
    for (int i = 0; i < pool_.workers(); ++i)
      pool_.context(i).dma.set_trace(nullptr);

  std::vector<std::uint64_t> per_stripe(outcomes.size());
  for (std::size_t si = 0; si < outcomes.size(); ++si) {
    per_stripe[si] = outcomes[si].cycles;
    run.batches += outcomes[si].batches;
  }
  run.cycles = max_over_instances(per_stripe, cfg.instances);
  scope.merge(run);
  finish_layer(run);
  return output;
}

std::vector<pack::TiledFm> PoolRuntime::run_conv_batch(
    const std::vector<pack::TiledFm>& inputs, const ConvProgram& conv,
    LayerRun& run) {
  if (options_.mode == ExecMode::kFast)
    return Runtime::run_conv_batch(inputs, conv, run);
  TSCA_CHECK(!inputs.empty());
  const core::ArchConfig& cfg = pool_.config();
  for (const pack::TiledFm& input : inputs)
    TSCA_CHECK(input.shape() == inputs.front().shape(),
               "batch images must share a shape");
  TSCA_CHECK(conv.plan.in_shape == inputs.front().shape(),
             "program compiled for a different input shape");

  const ConvPlan& plan = conv.plan;
  std::vector<pack::TiledFm> outputs(inputs.size(),
                                     pack::TiledFm(plan.out_shape));

  const ScopedMerge scope(pool_);
  run.reset_stats();
  run.on_accelerator = true;
  run.kind = nn::LayerKind::kConv;
  run.macs = conv.macs * static_cast<std::int64_t>(inputs.size());
  run.stripes = static_cast<int>(plan.stripes.size());

  const LayerTracer tracer = begin_layer_trace(pool_.workers(), "worker");
  const bool trace_kernels = options_.trace_kernels;
  if (tracer)
    for (int i = 0; i < pool_.workers(); ++i)
      pool_.context(i).dma.set_trace(tracer.dma[static_cast<std::size_t>(i)]);

  // The hardware stages each (stripe, chunk)'s weights once and reuses them
  // across the whole image batch; account that DMA once here.  Workers then
  // replicate the streams into their own banks unaccounted.
  for (const ConvStripe& stripe : plan.stripes)
    for (const ConvStripe::Chunk& chunk : stripe.chunks)
      account_chunk_weights(pool_.context(0).dma, chunk, conv.wimg);

  // One unit per image: each image runs the full stripe/chunk schedule on a
  // private context.
  std::vector<std::vector<std::uint64_t>> cycles_by_image_stripe(
      inputs.size(), std::vector<std::uint64_t>(plan.stripes.size(), 0));
  std::vector<int> batches_by_image(inputs.size(), 0);
  const hls::Mode mode = engine_mode(options_.mode);
  pool_.parallel_for(
      inputs.size(), [&](AcceleratorPool::Context& ctx, std::size_t img) {
        ExecCtx ec = make_exec_ctx(ctx, mode);
        if (tracer) {
          ec.trace = tracer.compute[static_cast<std::size_t>(ctx.worker)];
          ec.trace_kernels = trace_kernels;
        }
        for (std::size_t si = 0; si < plan.stripes.size(); ++si) {
          const ConvStripe& stripe = plan.stripes[si];
          for (const ConvStripe::Chunk& chunk : stripe.chunks) {
            const std::vector<core::Instruction> instrs =
                stage_chunk_weights(ec, conv, stripe, chunk,
                                    /*count_stats=*/false);
            const StripeOutcome outcome = exec_batch_image_chunk(
                ec, conv, stripe, chunk, instrs, inputs[img], outputs[img]);
            cycles_by_image_stripe[img][si] += outcome.cycles;
            batches_by_image[img] += outcome.batches;
          }
        }
      });

  // Merge with the serial bucketing: stripe si's cycles (summed over chunks
  // and images) land in instance bucket si % instances.
  if (tracer)
    for (int i = 0; i < pool_.workers(); ++i)
      pool_.context(i).dma.set_trace(nullptr);
  std::vector<std::uint64_t> per_stripe(plan.stripes.size(), 0);
  for (std::size_t img = 0; img < inputs.size(); ++img) {
    for (std::size_t si = 0; si < plan.stripes.size(); ++si)
      per_stripe[si] += cycles_by_image_stripe[img][si];
    run.batches += batches_by_image[img];
  }
  run.cycles = max_over_instances(per_stripe, cfg.instances);
  scope.merge(run);
  finish_layer(run);
  return outputs;
}

void PoolRuntime::fast_exec_conv(const pack::TiledFm* const* inputs, int batch,
                                 const core::FastConvWeights& fw,
                                 const ConvProgram& conv,
                                 pack::TiledFm* const* outputs,
                                 core::FastConvStats& stats) {
  const ConvPlan& plan = conv.plan;
  if (pool_.workers() <= 1 || plan.stripes.size() <= 1) {
    Runtime::fast_exec_conv(inputs, batch, fw, conv, outputs, stats);
    return;
  }
  // The stripes must tile the output rows contiguously for the bands to be
  // a partition of the serial full-height pass.
  int row = 0;
  for (const ConvStripe& stripe : plan.stripes) {
    TSCA_CHECK(stripe.otile_row0 == row, "stripe bands not contiguous");
    row += stripe.otile_rows;
  }
  TSCA_CHECK(row == outputs[0]->tiles_y(), "stripe bands do not cover OFM");
  std::vector<core::FastConvStats> per_stripe(plan.stripes.size());
  pool_.parallel_for(
      plan.stripes.size(),
      [&](AcceleratorPool::Context& ctx, std::size_t si) {
        const ConvStripe& stripe = plan.stripes[si];
        core::fast_conv(inputs, batch, fw, conv.bias, conv.rq, outputs,
                        stripe.otile_row0, stripe.otile_rows,
                        &per_stripe[si], &ctx.fast_scratch);
      });
  // Index-ordered sum: identical to the serial pass, whatever the worker
  // interleaving (each position's regions/MACs are independent of banding).
  for (const core::FastConvStats& s : per_stripe) stats += s;
}

void PoolRuntime::fast_exec_pool(const pack::TiledFm& input,
                                 const PoolPlan& plan, pack::TiledFm& output) {
  if (pool_.workers() <= 1 || plan.stripes.size() <= 1) {
    Runtime::fast_exec_pool(input, plan, output);
    return;
  }
  const bool cached = plan.fastp.size() == plan.stripes.size();
  pool_.parallel_for(
      plan.stripes.size(),
      [&](AcceleratorPool::Context& /*ctx*/, std::size_t si) {
        const PoolStripe& stripe = plan.stripes[si];
        if (cached)
          core::fast_pad_pool(input, plan.fastp[si], stripe.in_tile_row0,
                              stripe.otile_row0, output);
        else
          core::fast_pad_pool(input, make_pool_instr(plan, stripe),
                              stripe.in_tile_row0, stripe.otile_row0, output);
      });
}

void PoolRuntime::ensure_program_staged(const NetworkProgram& program) {
  for (int i = 0; i < pool_.workers(); ++i)
    stage_program_in_context(pool_.context(i), program);
  // Context 0 backs the base runtime's acc_/dram_/dma_: adopt the residency
  // it just received so the base-class bump allocator fences above the image.
  adopt_staged_program(program.stamp(), program.ddr_image().size());
}

std::vector<NetworkRun> PoolRuntime::serve(
    const NetworkProgram& program,
    const std::vector<nn::FeatureMapI8>& inputs) {
  // Stage the shared weight image into every context before fanning out —
  // part of compile/stage time, not of any request's latency.
  ensure_program_staged(program);
  std::vector<NetworkRun> results(inputs.size());
  const RuntimeOptions base = options_;
  obs::MetricsRegistry* const metrics = options_.metrics;
  pool_.parallel_for(
      inputs.size(), [&](AcceleratorPool::Context& ctx, std::size_t i) {
        // A fresh serial Runtime per request: per-request statistics come
        // out exactly as a standalone serial run would report them.  Track
        // names are scoped per worker, and the worker's trace clock carries
        // across requests so their spans lay end to end.  The context's
        // resident image is adopted, so no request re-writes it.
        RuntimeOptions options = base;
        if (options.trace != nullptr)
          options.trace_scope =
              base.trace_scope + "worker" + std::to_string(ctx.worker) + "/";
        Runtime runtime(ctx.acc, ctx.dram, ctx.dma, options);
        runtime.adopt_staged_program(ctx.staged_stamp, ctx.ddr_floor);
        runtime.set_trace_clock(ctx.trace_clock);
        const auto wall0 = std::chrono::steady_clock::now();
        results[i] = runtime.run_network(program, inputs[i]);
        const std::int64_t wall_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        const std::uint64_t sim_cycles =
            runtime.trace_clock() - ctx.trace_clock;
        if (options.trace != nullptr)
          options.trace->track(options.trace_scope + "requests")
              .complete("request " + std::to_string(i), "request",
                        ctx.trace_clock, sim_cycles,
                        {{"layers", static_cast<std::int64_t>(
                                        results[i].layers.size())},
                         {"wall_us", wall_us}});
        ctx.trace_clock = runtime.trace_clock();
        if (metrics != nullptr) {
          metrics->counter("serve.requests").add(1);
          metrics->histogram("serve.request_sim_cycles")
              .observe(static_cast<std::int64_t>(sim_cycles));
          metrics->histogram("serve.request_wall_us").observe(wall_us);
        }
      });
  return results;
}

std::vector<NetworkRun> PoolRuntime::serve(
    const nn::Network& net, const quant::QuantizedModel& model,
    const std::vector<nn::FeatureMapI8>& inputs) {
  ProgramOptions popts;
  popts.fuse_pad_conv = options_.fuse_pad_conv;
  const NetworkProgram program =
      NetworkProgram::compile(net, model, pool_.config(), popts);
  return serve(program, inputs);
}

}  // namespace tsca::driver
