// Memory-mapped host interface ("System II", §IV-D).
//
// The ARM controls the accelerator through Avalon memory-mapped control and
// status registers.  This models that contract: the host writes a 16-word
// encoded instruction into the window, rings the doorbell, and the device
// side decodes and queues it; GO executes the queued batch and publishes
// status/cycle counters in read-back registers.
//
// Register map (32-bit registers):
//   0..15   instruction window (core/encoding.hpp layout)
//   16      DOORBELL — write 1: decode the window, append to the queue
//   17      GO       — write 1: execute the queued batch on the accelerator
//   18      STATUS   — 0 idle, 1 queued, 2 done, 0xE error
//   19      QUEUED   — number of instructions pending
//   20/21   CYCLES   — lo/hi of the last batch's cycle count
#pragma once

#include <vector>

#include "core/accelerator.hpp"
#include "core/encoding.hpp"
#include "sim/mmio.hpp"

namespace tsca::driver {

class HostInterface {
 public:
  static constexpr int kDoorbell = 16;
  static constexpr int kGo = 17;
  static constexpr int kStatus = 18;
  static constexpr int kQueued = 19;
  static constexpr int kCyclesLo = 20;
  static constexpr int kCyclesHi = 21;
  static constexpr int kNumRegs = 22;

  static constexpr std::uint32_t kStatusIdle = 0;
  static constexpr std::uint32_t kStatusQueued = 1;
  static constexpr std::uint32_t kStatusDone = 2;
  static constexpr std::uint32_t kStatusError = 0xE;

  explicit HostInterface(core::Accelerator& accelerator,
                         hls::Mode mode = hls::Mode::kCycle);

  // --- host-side convenience (drives the registers underneath) ---
  void submit(const core::Instruction& instr);
  core::BatchStats go();

  // --- raw register access, as the bus would see it ---
  sim::RegisterFile& regs() { return regs_; }
  // Processes a register write's side effects (doorbell/GO).  The host-side
  // helpers call this automatically.
  void write(int reg, std::uint32_t value);
  std::uint32_t read(int reg) const { return regs_.read(reg); }

  const std::vector<core::Instruction>& queued() const { return queue_; }

 private:
  core::Accelerator& acc_;
  hls::Mode mode_;
  sim::RegisterFile regs_;
  std::vector<core::Instruction> queue_;
  core::BatchStats last_stats_;
};

}  // namespace tsca::driver
