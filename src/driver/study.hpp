// VGG-16 experiment support — shared by the benchmark harness and examples.
//
// Builds the paper's workload (full-size VGG-16, synthetic weights at the
// published pruning densities), packs every convolution layer, and evaluates
// a configuration with the validated performance model.  One LayerResult per
// conv layer carries everything Figs. 7/8 plot: ideal vs modelled cycles,
// efficiency and effective GOPS.
#pragma once

#include <string>
#include <vector>

#include "driver/perf_model.hpp"
#include "driver/program.hpp"
#include "nn/vgg16.hpp"
#include "pack/weight_pack.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"

namespace tsca::driver {

// One prepared convolution layer of the study network.
struct StudyLayer {
  std::string name;
  nn::FmShape padded_in;  // input shape after the preceding PAD
  pack::PackedFilters packed;
  double density = 1.0;  // fraction of non-zero weights
};

// A prepared workload: every conv layer of VGG-16 (or a scaled variant).
struct StudyNetwork {
  std::string model_name;  // "vgg16" / "vgg16-pruned"
  std::vector<StudyLayer> layers;
  // Associated pad/pool geometry for whole-network cycle accounting.
  struct PadPoolOp {
    core::Opcode op;
    nn::FmShape in;
    nn::FmShape out;
    int win = 1;
    int stride = 1;
    int offset = 0;  // offset_y == offset_x for VGG padding
  };
  std::vector<PadPoolOp> pad_pool_ops;
};

struct StudyOptions {
  bool pruned = false;
  // Ternary-weight model (paper future work): overrides pruning; weights
  // become ±1/0 and the packed streams use the dense 1-byte format.
  bool ternary = false;
  nn::VggVariant variant = nn::VggVariant::kVgg16;
  int input_extent = 224;
  int channel_divisor = 1;
  std::uint64_t seed = 2017;
  // Uniform density override; < 0 uses the Han et al. VGG-16 profile when
  // pruned.
  double uniform_density = -1.0;
};

// Builds VGG-16 with deterministic synthetic weights, optionally pruned,
// quantized and packed.
StudyNetwork build_study_network(const StudyOptions& options);

// Compiles one study layer into an executable ConvProgram (zero bias,
// shift-7 ReLU requant — the study's synthetic epilogue), reusing the same
// weight image / stripe plan machinery as full-network programs.
ConvProgram compile_study_conv(const core::ArchConfig& cfg,
                               const StudyLayer& layer);

// Per-layer evaluation of one architecture variant.
struct LayerResult {
  std::string name;
  ConvPerf perf;
  double efficiency = 0.0;      // ideal cycles / modelled cycles
  double effective_gops = 0.0;  // dense MACs / elapsed time
};

struct VariantResult {
  std::string variant;
  std::string model_name;
  double clock_mhz = 0.0;
  std::vector<LayerResult> layers;

  double best_efficiency = 0.0;
  double worst_efficiency = 0.0;
  double mean_efficiency = 0.0;  // MAC-weighted across layers
  double best_gops = 0.0;        // "peak" in the paper
  double mean_gops = 0.0;        // MAC-weighted average, conv cycles only
  double network_gops = 0.0;     // including interleaved pad/pool cycles
  double network_gops_dma_serial = 0.0;  // worst case: DMA not overlapped
  std::int64_t total_cycles = 0;
  std::int64_t dma_cycles = 0;
  std::int64_t pad_pool_cycles = 0;
  std::int64_t total_macs = 0;
};

VariantResult evaluate_variant(const core::ArchConfig& cfg,
                               const StudyNetwork& network);

}  // namespace tsca::driver
