// Host runtime — the software on the embedded ARM (paper §IV-C).
//
// Owns the end-to-end flow: quantized weights are packed offline (§III-B);
// per layer the runtime stages stripes into DDR, DMAs them into the
// accelerator's banks, submits instruction batches, and collects results and
// statistics.  Fully-connected layers and softmax run on the host, as in the
// paper.
//
// With `instances > 1` in the ArchConfig (512-opt), stripes are distributed
// round-robin over the instances; each instance is modelled by the same
// Accelerator object run per stripe, and a layer's elapsed cycles are the
// maximum over instances of their per-instance totals (the instances work
// concurrently on separate stripes, §IV-D).
#pragma once

#include <atomic>
#include <exception>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/fastpath.hpp"
#include "driver/compiler.hpp"
#include "driver/program.hpp"
#include "nn/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pack/tile.hpp"
#include "quant/quantize.hpp"
#include "sim/dma.hpp"

namespace tsca::driver {
struct ExecCtx;
}

namespace tsca::driver {

// How the runtime executes accelerator layers.  kCycle / kThread run the
// simulation engines (hls::Mode); kFast runs the functional fast path
// (core/fastpath.hpp): bit-identical outputs, with cycle counts *predicted*
// by PerfModel instead of measured (LayerRun::cycles_predicted).
enum class ExecMode { kCycle, kThread, kFast };

const char* exec_mode_name(ExecMode mode);

// The simulation engine backing an execution mode (fast-path layers never
// reach an engine; anything that does falls back to the cycle engine).
inline hls::Mode engine_mode(ExecMode mode) {
  return mode == ExecMode::kThread ? hls::Mode::kThread : hls::Mode::kCycle;
}

struct RuntimeOptions {
  ExecMode mode = ExecMode::kCycle;
  bool keep_activations = false;  // return every layer's feature map
  // Fuse PAD directly into the following CONV batch when both fit on chip
  // unstriped: the padded map never round-trips through DDR (the banks
  // persist between instructions).  Falls back to separate execution when
  // striping is needed.
  bool fuse_pad_conv = true;
  // Observability (both null by default = disabled, near-zero overhead).
  // `trace` records per-layer / per-stripe / per-batch spans and DMA
  // transfers in simulated cycles; `metrics` aggregates counters and layer
  // latency histograms.  trace_scope prefixes every track name (the pool
  // runtime sets "worker<i>/" per serving worker); trace_kernels adds
  // per-kernel busy/stall spans inside each batch (cycle mode).
  obs::Recorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::string trace_scope = {};  // NSDMI: keeps designated inits warning-free
  bool trace_kernels = false;
  // Cooperative cancellation: when non-null, run_network / run_network_batch
  // poll the flag between steps and abort by throwing RequestCancelled.  The
  // serving layer uses this to stop in-flight requests without waiting for a
  // whole network pass to drain.
  const std::atomic<bool>* cancel = nullptr;
  // Per-run simulated-cycle budget: when non-zero, run_network /
  // run_network_batch throw BudgetExceeded once the run has advanced more
  // than this many cycles past its starting trace clock (checked between
  // steps, like `cancel`).  The serving layer derives it from per-request
  // execution budgets so a pathological request cannot hog a worker.
  std::uint64_t cycle_budget = 0;
};

// Thrown by run_network / run_network_batch when RuntimeOptions::cancel was
// raised mid-execution.  Completed layers' side effects (counters, DMA
// statistics in the context) remain — the request's outputs are simply never
// produced.
class RequestCancelled : public std::exception {
 public:
  const char* what() const noexcept override { return "request cancelled"; }
};

// Thrown between steps once a run has spent more simulated cycles than
// RuntimeOptions::cycle_budget.  Like RequestCancelled, completed layers'
// side effects (trace spans, counters, the advanced trace clock) remain.
class BudgetExceeded : public Error {
 public:
  BudgetExceeded() : Error("cycle budget exceeded") {}
};

// Per-layer execution record.
struct LayerRun {
  std::string name;
  nn::LayerKind kind = nn::LayerKind::kPad;
  bool on_accelerator = false;
  std::uint64_t cycles = 0;  // accelerator cycles (max over instances)
  // True when `cycles` (and the work counters) came from PerfModel rather
  // than a simulation engine — i.e. the layer ran in ExecMode::kFast.
  bool cycles_predicted = false;
  std::int64_t macs = 0;     // dense MACs (conv layers)
  int stripes = 0;
  int batches = 0;
  core::CounterSnapshot counters;  // deltas for this layer
  sim::DmaStats dma;
  // Host fast-path execution statistics (kFast conv layers only): gathered
  // regions and MAC tile-ops elided by the activation zero-skip.  Purely a
  // host-side account — the PerfModel counters above still charge the
  // modeled hardware for every MAC.
  core::FastConvStats fast;
  // Host wall-clock spent executing this step (microseconds; for fused
  // PAD+CONV steps the whole fusion is charged to the CONV record).  Unlike
  // `cycles` this measures the simulator/fast-path itself, not the modeled
  // hardware — it is what the fast-path perf work optimizes.
  std::int64_t host_wall_us = 0;

  // Clears every statistics field, keeping the caller-assigned name/kind.
  // Runtime entry points call this on entry so a LayerRun reused across
  // calls cannot accumulate stale batches/counters/DMA totals.
  void reset_stats() {
    on_accelerator = false;
    cycles = 0;
    cycles_predicted = false;
    macs = 0;
    stripes = 0;
    batches = 0;
    counters = core::CounterSnapshot{};
    dma = sim::DmaStats{};
    fast = core::FastConvStats{};
    host_wall_us = 0;
  }
};

struct NetworkRun {
  std::vector<LayerRun> layers;
  std::vector<std::int8_t> logits;       // final flat activation (if any)
  nn::FeatureMapI8 final_fm;             // final feature map (if not flat)
  bool flat_output = false;
  std::vector<nn::FeatureMapI8> activations;  // per layer, if requested
};

// One batched execution of a compiled network over same-shaped inputs.
// Outputs are bit-identical to running each input through run_network alone;
// statistics are aggregated per layer over the whole batch (a conv layer's
// cycles/counters/DMA cover all images, with each weight chunk staged once —
// the amortization dynamic batching buys).  The per-request NetworkRuns carry
// outputs only; their `layers` vectors stay empty.
struct BatchNetworkRun {
  std::vector<LayerRun> layers;
  std::vector<NetworkRun> requests;
};

class Runtime {
 public:
  // How many images one batch-major core::fast_conv call carries
  // (run_conv_batch in ExecMode::kFast): each gathered region then feeds
  // kFastBatchLanes·16 int8 lanes, so the weight walk, window loads and
  // dispatch amortize across the group while the accumulator working set
  // (out_c · lanes · 64 B) stays cache-resident.
  static constexpr int kFastBatchLanes = 8;

  Runtime(core::Accelerator& accelerator, sim::Dram& dram,
          sim::DmaEngine& dma, RuntimeOptions options = {});
  virtual ~Runtime() = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- Program execution (primary path) -------------------------------
  //
  // These entry points consume precompiled artifacts (driver/program.hpp):
  // no packing, planning, or fusion decisions happen on the request path.
  // Virtual: the pool runtime (pool_runtime.hpp) dispatches the stripes
  // onto worker threads instead of the serial loops here.

  // Executes one compiled convolution over an already-padded input feature
  // map.  Returns the output map; fills `run` with statistics.
  virtual pack::TiledFm run_conv(const pack::TiledFm& input,
                                 const ConvProgram& conv, LayerRun& run);

  // Executes a planned PAD or POOL layer.
  virtual pack::TiledFm run_pad_pool(const pack::TiledFm& input,
                                     const PoolPlan& plan, LayerRun& run);

  // Batched convolution: one striping/chunking plan, weights staged once per
  // chunk and reused across all images (the embedded-inference batching the
  // paper's driver would do for throughput workloads).  Statistics in `run`
  // cover the whole batch.
  virtual std::vector<pack::TiledFm> run_conv_batch(
      const std::vector<pack::TiledFm>& inputs, const ConvProgram& conv,
      LayerRun& run);

  // Executes a compiled FC-as-1x1-conv layer (compile_fc_conv) and returns
  // the logits.
  std::vector<std::int8_t> run_fc_as_conv(const std::vector<std::int8_t>& input,
                                          const ConvProgram& fc_conv,
                                          LayerRun& run);

  // Executes PAD and the following convolution as one instruction batch with
  // the padded map living only on chip, against a layout proved to fit by
  // plan_fused_pad_conv (`conv.plan` is unused — fused layers are unstriped).
  void run_fused_pad_conv(const pack::TiledFm& input, const ConvProgram& conv,
                          const FusedPadConvLayout& layout,
                          pack::TiledFm& output, LayerRun& pad_run,
                          LayerRun& conv_run);

  // Executes a compiled network: pad/conv/pool on the accelerator, flatten/
  // FC/softmax on the host.  Stages the program's weight image into DDR on
  // first use (ensure_program_staged); any number of executions share the
  // same const program.
  NetworkRun run_network(const NetworkProgram& program,
                         const nn::FeatureMapI8& input);

  // Executes a compiled network over a batch of same-shaped inputs in one
  // pass: conv layers go through run_conv_batch (weights staged once per
  // chunk for the whole batch), everything else loops per image.  Outputs
  // are bit-identical to per-input run_network; see BatchNetworkRun for the
  // statistics contract.
  BatchNetworkRun run_network_batch(const NetworkProgram& program,
                                    const std::vector<nn::FeatureMapI8>& inputs);

  // Pointer form — the zero-copy warm path.  The serving layer batches
  // requests whose inputs live inside queued Pending objects; staging `n`
  // pointers instead of `n` feature-map copies keeps request payloads
  // untouched (they are neither copied nor moved).  Bit-identical to the
  // vector form.
  BatchNetworkRun run_network_batch(const NetworkProgram& program,
                                    const nn::FeatureMapI8* const* inputs,
                                    std::size_t n);

  // Makes `program`'s weight image resident in this runtime's DDR (a host
  // write — no DMA statistics), so weight chunks DMA straight from it.
  // No-op when already resident.  The pool runtime stages every worker
  // context.
  virtual void ensure_program_staged(const NetworkProgram& program);

  // Marks a program image some other runtime already wrote to this DDR as
  // resident (PoolRuntime::serve hands staged contexts to per-request serial
  // runtimes this way, so requests never re-write the image).
  void adopt_staged_program(std::uint64_t stamp, std::uint64_t ddr_floor);

  // --- Compile-on-the-fly wrappers (back compat) ----------------------
  //
  // Same signatures the runtime exposed before the compile/execute split;
  // each compiles the per-layer artifact and delegates to the program
  // overloads above (so pool dispatch still applies).  Bit-identical
  // statistics: compilation performs no simulated work.

  pack::TiledFm run_conv(const pack::TiledFm& input,
                         const pack::PackedFilters& packed,
                         const std::vector<std::int32_t>& bias,
                         const nn::Requant& rq, LayerRun& run);

  // Executes a PAD (win=1, stride=1, offset=−pad) or POOL layer.
  pack::TiledFm run_pad_pool(const pack::TiledFm& input, core::Opcode op,
                             const nn::FmShape& out_shape, int win, int stride,
                             int offset_y, int offset_x, LayerRun& run);

  std::vector<pack::TiledFm> run_conv_batch(
      const std::vector<pack::TiledFm>& inputs,
      const pack::PackedFilters& packed,
      const std::vector<std::int32_t>& bias, const nn::Requant& rq,
      LayerRun& run);

  // Lowers a fully-connected layer to a 1x1 convolution over a 1x1 feature
  // map (in_dim channels -> out_dim channels) and runs it on the
  // accelerator.  This is the experiment the paper declined to run: with one
  // valid value per 16-value tile the datapath utilization is capped at
  // 1/16, which is why FC layers stay on the ARM (§III-A).  Returns the
  // logits; `run` records the (poor) cycle counts for the ablation bench.
  std::vector<std::int8_t> run_fc_as_conv(
      const std::vector<std::int8_t>& input,
      const std::vector<std::int8_t>& weights,  // row-major [out][in]
      const std::vector<std::int32_t>& bias, int out_dim,
      const nn::Requant& rq, LayerRun& run);

  // Fit-checks the fusion and executes it; returns false (doing nothing)
  // when PAD + CONV do not fit on chip unstriped.
  bool run_fused_pad_conv(const pack::TiledFm& input, const nn::Padding& pad,
                          const pack::PackedFilters& packed,
                          const std::vector<std::int32_t>& bias,
                          const nn::Requant& rq, pack::TiledFm& output,
                          LayerRun& pad_run, LayerRun& conv_run);

  // Compiles the network (NetworkProgram::compile, honouring
  // options_.fuse_pad_conv) and executes it once.
  NetworkRun run_network(const nn::Network& net,
                         const quant::QuantizedModel& model,
                         const nn::FeatureMapI8& input);

  // Simulated-cycle timeline position for tracing: each accelerator layer
  // advances it by the layer's cycles, so successive layer spans lay end to
  // end.  The pool runtime round-trips this through per-request runtimes.
  std::uint64_t trace_clock() const { return trace_clock_; }
  void set_trace_clock(std::uint64_t cycles) { trace_clock_ = cycles; }

  // Per-batch option updates for a Runtime reused across batches (the
  // serving workers keep one Runtime alive instead of constructing one per
  // batch): the cycle budget and cancellation flag are the only options
  // that legitimately change between batches.
  void set_cycle_budget(std::uint64_t budget) {
    options_.cycle_budget = budget;
  }
  void set_cancel(const std::atomic<bool>* cancel) {
    options_.cancel = cancel;
  }

  // Pre-sizes every reusable buffer — the fast-path conv scratch and the
  // feature-map recycle pool — to the program's largest layer over batches
  // of up to `max_batch` images, so even the first warm request after
  // staging allocates nothing.  Idempotent and monotonic (never shrinks);
  // call per program adopted into a long-lived runtime.
  void reserve_warm_scratch(const NetworkProgram& program, int max_batch);

  // Bytes held by the reusable warm-path storage (scratch + recycled maps):
  // the high-water figure behind the zero-allocation steady state.
  std::size_t warm_scratch_bytes() const;

 protected:
  // Per-layer trace handles: one compute track plus one ".dma" sibling per
  // execution unit (accelerator instance or pool worker), cursors rewound to
  // the layer's start.  Empty (bool false) when tracing is disabled.
  struct LayerTracer {
    std::vector<obs::Track*> compute;
    std::vector<obs::Track*> dma;
    explicit operator bool() const { return !compute.empty(); }
  };
  LayerTracer begin_layer_trace(int units, const char* unit_prefix);
  // Layer epilogue: records the layer span (duration == run.cycles) on the
  // "<scope>layers" track, bumps the metrics registry, and advances the
  // trace clock.  Called by every accelerator-layer entry point.
  void finish_layer(const LayerRun& run);
  // Execution context over this runtime's accelerator/DDR/DMA, residency
  // fields included.
  ExecCtx exec_ctx();
  // ExecMode::kFast layer bodies (core/fastpath.hpp executors + PerfModel
  // statistics).  The program entry points branch here before touching the
  // simulator; PoolRuntime delegates back to these too, and parallelism
  // enters through the fast_exec_* hooks below.
  pack::TiledFm fast_conv_layer(const pack::TiledFm& input,
                                const ConvProgram& conv, LayerRun& run);
  pack::TiledFm fast_pad_pool_layer(const pack::TiledFm& input,
                                    const PoolPlan& plan, LayerRun& run);
  std::vector<pack::TiledFm> fast_conv_batch(
      const std::vector<pack::TiledFm>& inputs, const ConvProgram& conv,
      LayerRun& run);
  // Warm-path form: replaces `fms` with the layer's outputs in place,
  // recycling the input maps' storage through the runtime's feature-map
  // pool instead of freeing it.  Outputs and statistics are bit-identical
  // to fast_conv_batch.
  void fast_conv_batch_inplace(std::vector<pack::TiledFm>& fms,
                               const ConvProgram& conv, LayerRun& run);
  // Fast executor hooks.  The serial bodies below run one full-height
  // batch-major call (conv) / a serial stripe loop (pad-pool); PoolRuntime
  // overrides them to fan the plan's stripe row-bands out across its
  // workers.  Bands write disjoint output tiles and per-band stats are
  // summed in stripe index order, so outputs *and* statistics are
  // bit-identical to the serial bodies for any worker count.
  virtual void fast_exec_conv(const pack::TiledFm* const* inputs, int batch,
                              const core::FastConvWeights& fw,
                              const ConvProgram& conv,
                              pack::TiledFm* const* outputs,
                              core::FastConvStats& stats);
  virtual void fast_exec_pool(const pack::TiledFm& input, const PoolPlan& plan,
                              pack::TiledFm& output);
  void fast_fused_pad_conv(const pack::TiledFm& input, const ConvProgram& conv,
                           const FusedPadConvLayout& layout,
                           pack::TiledFm& output, LayerRun& pad_run,
                           LayerRun& conv_run);
  // Batch-major fused pad+conv: all images share each weight walk in lane
  // groups of kFastBatchLanes (per-image outputs identical to serial runs);
  // pad_run/conv_run aggregate the per-image predictions exactly like the
  // serial per-image fold.  Requires a compile-time program (decoded fast
  // weights and filled predictions).
  void fast_fused_pad_conv_batch(std::vector<pack::TiledFm>& fms,
                                 const ConvProgram& conv,
                                 const FusedPadConvLayout& layout,
                                 LayerRun& pad_run, LayerRun& conv_run);
  // ExecMode::kFast host FC: SimdBackend::dot per output row.  Bit-identical
  // to nn::fc_i8 — int32 accumulation wraps mod 2^32 in any order — just
  // vectorized through the dispatched backend.
  std::vector<std::int8_t> fast_fc(const std::vector<std::int8_t>& in,
                                   const FcProgram& fc);
  // Batch-major FC: output-row outer, image inner, so each weight row is
  // streamed from memory once per batch instead of once per image (the FC
  // layers are memory-bound — the weight matrix dwarfs every activation).
  // Per-image results are bit-identical to fast_fc.
  std::vector<std::vector<std::int8_t>> fast_fc_batch(
      const std::vector<std::vector<std::int8_t>>& ins, const FcProgram& fc);
  // Reuse form: sizes `outs` (recycling element capacity) and fills it.
  // `outs` must not alias `ins`.
  void fast_fc_batch(const std::vector<std::vector<std::int8_t>>& ins,
                     const FcProgram& fc,
                     std::vector<std::vector<std::int8_t>>& outs);
  // Sizes a feature-map vector to `n` elements, moving removed maps'
  // storage into fm_pool_ and reusing pooled storage for added ones — the
  // vector and its maps stop allocating once they have seen their largest
  // batch.
  void size_fm_vec(std::vector<pack::TiledFm>& v, std::size_t n);
  core::Accelerator& acc_;
  sim::Dram& dram_;
  sim::DmaEngine& dma_;
  RuntimeOptions options_;
  std::uint64_t ddr_cursor_ = 0;  // bump allocator for staging buffers
  std::uint64_t trace_clock_ = 0;
  // Program residency in dram_ (see ExecCtx): stamp of the resident
  // NetworkProgram image (0 = none), its base address, and the first byte
  // the bump allocator may use.
  std::uint64_t resident_stamp_ = 0;
  std::uint64_t program_base_ = 0;
  std::uint64_t ddr_floor_ = 0;
  // --- Warm-path reusable storage (DESIGN.md §15) ---------------------
  // Everything below persists across run_network_batch calls on a reused
  // Runtime and only ever grows: once the runtime has executed its largest
  // batch through its largest program, the warm path touches none of the
  // system allocator.  A Runtime is single-threaded by contract, so none of
  // this needs locking; stripe-parallel fan-out uses the per-pool-context
  // scratches instead (AcceleratorPool::Context::fast_scratch).
  // Metric handles resolved once at construction (finish_layer runs per
  // layer per batch; looking names up there would put a heap-allocated
  // std::string key on the zero-allocation warm path).  All null when
  // options_.metrics is null.
  struct RunMetrics {
    obs::Counter* layers = nullptr;
    obs::Counter* accel_cycles = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* stripes = nullptr;
    obs::Counter* macs = nullptr;
    obs::Counter* dma_bytes_to_fpga = nullptr;
    obs::Counter* dma_bytes_to_dram = nullptr;
    obs::Counter* predicted_layers = nullptr;
    obs::Counter* fast_regions = nullptr;
    obs::Counter* fast_regions_zero = nullptr;
    obs::Counter* fast_mac_tiles = nullptr;
    obs::Counter* fast_mac_tiles_skipped = nullptr;
    obs::Histogram* layer_cycles = nullptr;
  };
  RunMetrics rm_;
  core::FastScratch fast_scratch_;          // fast conv working set
  std::vector<pack::TiledFm> fm_pool_;      // recycled feature-map storage
  std::vector<pack::TiledFm> batch_out_fms_;  // layer output staging
  std::vector<pack::TiledFm> batch_fms_;      // run_network_batch currents
  std::vector<std::vector<std::int8_t>> batch_flats_;   // flat activations
  std::vector<std::vector<std::int8_t>> batch_flats2_;  // FC double buffer
  std::vector<std::vector<pack::TiledFm>> batch_slots_;  // residual slots
  std::vector<const pack::TiledFm*> scratch_ins_;   // lane-group pointers
  std::vector<pack::TiledFm*> scratch_outs_;
};

// Stripe (de)serialization between tiled feature maps and bank images:
// channels c ≡ lane (mod lanes), tile rows [row0, row0+rows), word layout
// [channel slot][tile row][tile col].
std::vector<std::uint8_t> bank_stripe_bytes(const pack::TiledFm& fm, int lane,
                                            int lanes, int row0, int rows);
void unpack_bank_stripe(pack::TiledFm& fm, const std::vector<std::uint8_t>& bytes,
                        int lane, int lanes, int row0, int rows);

}  // namespace tsca::driver
