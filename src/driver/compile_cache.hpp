// Persistent compile cache — cold starts without recompiling.
//
// NetworkProgram::compile is the expensive step of a cold start: packing
// every conv layer's filters, serializing weight streams, planning stripes,
// and decoding the fast-path weight form.  All of it is a pure function of
// (network topology, quantized weights, ArchConfig, ProgramOptions, code
// version), so the result can be written to disk once and reloaded by every
// later process.  The CompileCache does exactly that: programs are stored
// under one content-derived key per compile request, and a hit deserializes
// the finished artifact instead of compiling.
//
// Key derivation (DESIGN.md §15): FNV-1a over the code-version tag, the
// ArchConfig, the ProgramOptions, the full topology (every LayerSpec), and
// every quantized weight/bias/requant byte.  Change any input — retrain,
// re-quantize, retarget the architecture, or bump kCompileCacheVersion after
// editing the compiler — and the key moves, so stale artifacts are never
// loaded (they simply stop being referenced; stale files are small and
// finite, so no GC pass is needed).
//
// File format: a version-stamped, bounds-checked binary serialization of the
// compiled artifact minus the Network (the caller holds the recipe and
// passes it to load(), so topology is never parsed from disk).  PoolPlan
// fast-path decodes and predictions are recomputed on load via
// finalize_pool_plan — they derive from the plan in microseconds and keeping
// them out of the format halves its surface.  Everything else (weight
// images, stripe plans, fast conv weights, the DDR image) loads bit-exact:
// a cached program executes identically to a freshly compiled one, only the
// stamp differs (each load mints a new one so runtimes restage correctly).
//
// Durability: store() writes to a temp file in the cache directory and
// renames it into place — atomic on POSIX, so concurrent writers (or a
// crash mid-write) can never publish a torn file.  load() treats any parse
// failure — truncation, bad magic, version skew, key mismatch — as a miss;
// the subsequent store() overwrites the bad file.
//
// The default directory is $TSCA_CACHE_DIR, else $HOME/.cache/tsca, else
// a .tsca-cache directory under the CWD.  Thread-safe (stats under a mutex;
// file publication is atomic).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "driver/program.hpp"

namespace tsca::driver {

class CompileCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;     // load() returned a program
    std::uint64_t misses = 0;   // no file for the key
    std::uint64_t invalid = 0;  // file present but unusable (subset of misses)
    std::uint64_t stores = 0;   // programs written
  };

  // Empty dir = default_dir().  The directory is created on first store().
  explicit CompileCache(std::string dir = "");

  // $TSCA_CACHE_DIR, else $HOME/.cache/tsca, else ./.tsca-cache.
  static std::string default_dir();

  // The cache key of one compile request.  Covers everything compile()
  // reads, plus the code-version tag.
  static std::uint64_t key(const nn::Network& net,
                           const quant::QuantizedModel& model,
                           const core::ArchConfig& cfg,
                           const ProgramOptions& options = {});

  // Loads the program stored under `key`.  `net`/`cfg`/`options` must be the
  // same recipe the key was derived from — they are copied into the loaded
  // program (all three are part of the key, never of the file).  nullopt on
  // miss or a bad file.
  std::optional<NetworkProgram> load(std::uint64_t key, const nn::Network& net,
                                     const core::ArchConfig& cfg,
                                     const ProgramOptions& options = {});

  // Serializes `program` under `key` (atomic rename-on-write).  Returns
  // false — without throwing — when the directory or file cannot be written;
  // a read-only home directory degrades to compiling every time, not to a
  // crash.
  bool store(std::uint64_t key, const NetworkProgram& program);

  // load-or-compile-and-store in one call (what registry recipes use).
  NetworkProgram get_or_compile(const nn::Network& net,
                                const quant::QuantizedModel& model,
                                const core::ArchConfig& cfg,
                                const ProgramOptions& options = {});

  const std::string& dir() const { return dir_; }
  std::string path_for(std::uint64_t key) const;
  Stats stats() const;

 private:
  std::string dir_;
  mutable std::mutex mu_;  // stats only; file publication is atomic rename
  Stats stats_;
};

// Bump when compiled-artifact semantics change (new plan fields, different
// packing, serialization layout edits): the tag feeds both the key and the
// file header, so old caches invalidate on either side.
inline constexpr const char* kCompileCacheVersion = "tsca-prog-v1";

}  // namespace tsca::driver
