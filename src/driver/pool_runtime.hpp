// Host-parallel runtime on top of AcceleratorPool.
//
// Drop-in replacement for the serial Runtime: the stripe loops of run_conv /
// run_pad_pool fan out over the pool's workers (one stripe per unit), batched
// convolution fans out over images, and serve() runs whole-network requests
// concurrently — one request per context, exactly the scale-out axis the
// paper's 512-opt uses and PipeCNN-style hosts exploit with concurrent
// pipeline kernels.
//
// Determinism guarantee: simulated cycle counts, hardware counters, and
// output feature maps are bit-identical to the serial Runtime for any worker
// count.  Every unit runs through the shared per-stripe executors
// (driver/stripe_exec.hpp) on a private context; merges are index-ordered
// sums (commutative in exact integer arithmetic) with the serial path's
// max-over-instances / sum-over-stripes cycle accounting.  DMA statistics
// match too: the only staging the pool adds — replicating a batch chunk's
// weights into more than one context — is performed unaccounted and charged
// analytically once, as the hardware would stage it.
#pragma once

#include <vector>

#include "driver/accelerator_pool.hpp"
#include "driver/runtime.hpp"

namespace tsca::driver {

class PoolRuntime final : public Runtime {
 public:
  // The pool must outlive the runtime.  Serial paths (fused pad+conv, FC
  // lowering, host-side layers) run on context 0.
  explicit PoolRuntime(AcceleratorPool& pool, RuntimeOptions options = {});

  // The compile-on-the-fly wrappers from Runtime stay visible alongside the
  // program overloads overridden below.
  using Runtime::run_conv;
  using Runtime::run_pad_pool;
  using Runtime::run_conv_batch;

  pack::TiledFm run_conv(const pack::TiledFm& input, const ConvProgram& conv,
                         LayerRun& run) override;

  pack::TiledFm run_pad_pool(const pack::TiledFm& input, const PoolPlan& plan,
                             LayerRun& run) override;

  std::vector<pack::TiledFm> run_conv_batch(
      const std::vector<pack::TiledFm>& inputs, const ConvProgram& conv,
      LayerRun& run) override;

  // Stages the program's weight image into every worker context's DDR (and
  // the base runtime's, i.e. context 0), so pooled stripes and served
  // requests all read weights from a resident image.
  void ensure_program_staged(const NetworkProgram& program) override;

  // Whole-network request parallelism: each request runs a full serial
  // network pass on a private context, all sharing `program` by const
  // reference.  Results (including per-layer statistics) are bit-identical
  // to running each request through a fresh serial Runtime.
  std::vector<NetworkRun> serve(const NetworkProgram& program,
                                const std::vector<nn::FeatureMapI8>& inputs);

  // Compile-on-the-fly serve: compiles the network once (honouring
  // options_.fuse_pad_conv) and delegates to the program overload.
  std::vector<NetworkRun> serve(const nn::Network& net,
                                const quant::QuantizedModel& model,
                                const std::vector<nn::FeatureMapI8>& inputs);

 protected:
  // Fast-path stripe parallelism: the plan's stripe row-bands fan out across
  // the pool's workers (bands write disjoint output tiles — nothing to
  // reduce), with per-band FastConvStats summed in stripe index order.
  // Outputs and statistics are bit-identical to the serial bodies.
  void fast_exec_conv(const pack::TiledFm* const* inputs, int batch,
                      const core::FastConvWeights& fw, const ConvProgram& conv,
                      pack::TiledFm* const* outputs,
                      core::FastConvStats& stats) override;
  void fast_exec_pool(const pack::TiledFm& input, const PoolPlan& plan,
                      pack::TiledFm& output) override;

 private:
  // Captures per-context counter/DMA snapshots around a parallel region and
  // merges the deltas into `run`.
  struct ScopedMerge;

  AcceleratorPool& pool_;
};

}  // namespace tsca::driver
