#include "driver/lowering.hpp"

#include <utility>

#include "pack/weight_pack.hpp"

namespace tsca::driver {

const nn::Network& LoweringContext::net() const { return program_.net_; }
const quant::QuantizedModel& LoweringContext::model() const { return model_; }
const core::ArchConfig& LoweringContext::cfg() const { return program_.cfg_; }
const ProgramOptions& LoweringContext::options() const {
  return program_.options_;
}

const nn::LayerSpec& LoweringContext::spec() const {
  return program_.net_.layers()[index_];
}

bool LoweringContext::layer_needs_slot(std::size_t layer) const {
  return slots_.find(layer) != slots_.end();
}

int LoweringContext::slot_for_layer(std::size_t layer) const {
  const auto it = slots_.find(layer);
  return it == slots_.end() ? -1 : it->second;
}

int LoweringContext::add_conv(ConvProgram conv) {
  program_.convs_.push_back(std::move(conv));
  return static_cast<int>(program_.convs_.size()) - 1;
}

int LoweringContext::add_pool(PoolPlan plan) {
  finalize_pool_plan(program_.cfg_, plan);
  program_.pools_.push_back(std::move(plan));
  return static_cast<int>(program_.pools_.size()) - 1;
}

int LoweringContext::add_fused(FusedPadConvLayout layout) {
  program_.fused_.push_back(std::move(layout));
  return static_cast<int>(program_.fused_.size()) - 1;
}

int LoweringContext::add_fc(FcProgram fc) {
  program_.fcs_.push_back(std::move(fc));
  return static_cast<int>(program_.fcs_.size()) - 1;
}

int LoweringContext::add_eltwise(nn::EltwiseQ q) {
  program_.eltwise_.push_back(q);
  return static_cast<int>(program_.eltwise_.size()) - 1;
}

void LoweringContext::push_step(NetworkProgram::Step step) {
  step.layer = index_;
  program_.steps_.push_back(step);
}

LoweringRegistry& LoweringRegistry::instance() {
  static LoweringRegistry registry;
  return registry;
}

LoweringFn LoweringRegistry::exchange(nn::LayerKind kind, LoweringFn fn) {
  const int key = static_cast<int>(kind);
  std::lock_guard<std::mutex> lock(mu_);
  LoweringFn previous;
  const auto it = map_.find(key);
  if (it != map_.end()) previous = std::move(it->second);
  if (fn)
    map_[key] = std::move(fn);
  else if (it != map_.end())
    map_.erase(it);
  return previous;
}

LoweringFn LoweringRegistry::find(nn::LayerKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(static_cast<int>(kind));
  return it == map_.end() ? LoweringFn{} : it->second;
}

namespace {

using Step = NetworkProgram::Step;

void lower_pad(LoweringContext& ctx) {
  TSCA_CHECK(!ctx.is_flat, "pad after flatten");
  const nn::LayerSpec& spec = ctx.spec();
  const nn::Network& net = ctx.net();
  const std::size_t i = ctx.index();
  // Fuse with a directly following conv when both fit on chip — the same
  // fit predicate the per-call path evaluated, decided here once.  Fusion
  // hides the padded map inside the batch, so it must be declined when some
  // residual skip needs this pad's output as a live tensor slot.
  if (ctx.options().fuse_pad_conv && i + 1 < net.layers().size() &&
      net.layers()[i + 1].kind == nn::LayerKind::kConv &&
      !ctx.layer_needs_slot(i)) {
    const pack::PackedFilters packed =
        pack::pack_filters(ctx.model().weights.conv[i + 1]);
    TSCA_CHECK(packed.shape().ic == ctx.fm.c);
    TSCA_CHECK(packed.shape().kh == packed.shape().kw);
    ConvProgram conv;
    conv.wimg = WeightImage(packed, ctx.cfg().lanes, ctx.cfg().group);
    const std::optional<FusedPadConvLayout> layout = plan_fused_pad_conv(
        ctx.cfg(), ctx.fm, spec.pad, packed.shape().kh, packed.shape().oc,
        conv.wimg);
    if (layout.has_value()) {
      conv.bias = ctx.model().weights.conv_bias[i + 1];
      conv.rq = ctx.model().weights.conv_requant[i + 1];
      conv.macs = conv_macs(layout->padded, layout->out.c, layout->kernel);
      FusedPadConvLayout fused_layout = *layout;
      fill_fused_predictions(ctx.cfg(), conv, fused_layout);
      Step step;
      step.exec = Step::Exec::kFusedPadConv;
      step.conv = ctx.add_conv(std::move(conv));
      step.fused = ctx.add_fused(std::move(fused_layout));
      ctx.push_step(step);
      ctx.fm = layout->out;
      ctx.consumed = 2;  // the conv layer was consumed
      return;
    }
    // Does not fit fused: fall through to a standalone pad step; the conv
    // layer is compiled on its own iteration (its WeightImage is rebuilt
    // there against the striped plan — compile-time only).
  }
  const nn::FmShape out{ctx.fm.c, ctx.fm.h + spec.pad.top + spec.pad.bottom,
                        ctx.fm.w + spec.pad.left + spec.pad.right};
  Step step;
  step.exec = Step::Exec::kPadPool;
  step.pool = ctx.add_pool(plan_pool(ctx.cfg(), ctx.fm, out, core::Opcode::kPad,
                                     1, 1, -spec.pad.top, -spec.pad.left));
  ctx.push_step(step);
  ctx.fm = out;
}

void lower_conv(LoweringContext& ctx) {
  TSCA_CHECK(!ctx.is_flat, "conv after flatten");
  const std::size_t i = ctx.index();
  ConvProgram conv = compile_conv(
      ctx.cfg(), ctx.fm, pack::pack_filters(ctx.model().weights.conv[i]),
      ctx.model().weights.conv_bias[i], ctx.model().weights.conv_requant[i]);
  ctx.fm = conv.plan.out_shape;
  Step step;
  step.exec = Step::Exec::kConv;
  step.conv = ctx.add_conv(std::move(conv));
  ctx.push_step(step);
}

void lower_maxpool(LoweringContext& ctx) {
  TSCA_CHECK(!ctx.is_flat, "pool after flatten");
  const nn::PoolParams& pool = ctx.spec().pool;
  const nn::FmShape out{ctx.fm.c,
                        nn::conv_out_extent(ctx.fm.h, pool.size, pool.stride),
                        nn::conv_out_extent(ctx.fm.w, pool.size, pool.stride)};
  Step step;
  step.exec = Step::Exec::kPadPool;
  step.pool = ctx.add_pool(plan_pool(ctx.cfg(), ctx.fm, out,
                                     core::Opcode::kPool, pool.size,
                                     pool.stride, 0, 0));
  ctx.push_step(step);
  ctx.fm = out;
}

void lower_global_pool(LoweringContext& ctx) {
  TSCA_CHECK(!ctx.is_flat, "global pool after flatten");
  TSCA_CHECK(ctx.fm.h == ctx.fm.w,
             "global pool needs a square map: " << ctx.fm.h << "x" << ctx.fm.w);
  const nn::FmShape out{ctx.fm.c, 1, 1};
  Step step;
  step.exec = Step::Exec::kGlobalPool;
  step.pool = ctx.add_pool(plan_pool(ctx.cfg(), ctx.fm, out,
                                     core::Opcode::kPool, ctx.fm.h, ctx.fm.h,
                                     0, 0));
  ctx.push_step(step);
  ctx.fm = out;
}

void lower_eltwise_add(LoweringContext& ctx) {
  TSCA_CHECK(!ctx.is_flat, "eltwise add after flatten");
  const std::size_t i = ctx.index();
  const int from = ctx.spec().eltwise.from;
  TSCA_CHECK(from >= 0 && from < static_cast<int>(i),
             "eltwise skip source out of range at layer " << i);
  const int slot = ctx.slot_for_layer(static_cast<std::size_t>(from));
  TSCA_CHECK(slot >= 0, "eltwise skip source has no tensor slot");
  TSCA_CHECK(i < ctx.model().weights.eltwise.size(),
             "missing eltwise requant for layer " << i);
  Step step;
  step.exec = Step::Exec::kEltwiseAdd;
  step.rhs_slot = slot;
  step.eltwise = ctx.add_eltwise(ctx.model().weights.eltwise[i]);
  ctx.push_step(step);
}

void lower_flatten(LoweringContext& ctx) {
  Step step;
  step.exec = Step::Exec::kFlatten;
  ctx.push_step(step);
  ctx.is_flat = true;
}

void lower_fc(LoweringContext& ctx) {
  TSCA_CHECK(ctx.is_flat, "fc before flatten");
  const std::size_t i = ctx.index();
  Step step;
  step.exec = Step::Exec::kFc;
  step.fc = ctx.add_fc(FcProgram{ctx.model().weights.fc[i],
                                 ctx.model().weights.fc_bias[i],
                                 ctx.model().weights.fc_requant[i],
                                 ctx.spec().fc.out_dim});
  ctx.push_step(step);
}

void lower_softmax(LoweringContext& ctx) {
  Step step;
  step.exec = Step::Exec::kSoftmax;
  ctx.push_step(step);
}

}  // namespace

void register_builtin_lowerings() {
  static const bool registered = [] {
    LoweringRegistry& reg = LoweringRegistry::instance();
    reg.exchange(nn::LayerKind::kPad, lower_pad);
    reg.exchange(nn::LayerKind::kConv, lower_conv);
    reg.exchange(nn::LayerKind::kMaxPool, lower_maxpool);
    reg.exchange(nn::LayerKind::kGlobalPool, lower_global_pool);
    reg.exchange(nn::LayerKind::kEltwiseAdd, lower_eltwise_add);
    reg.exchange(nn::LayerKind::kFlatten, lower_flatten);
    reg.exchange(nn::LayerKind::kFullyConnected, lower_fc);
    reg.exchange(nn::LayerKind::kSoftmax, lower_softmax);
    return true;
  }();
  (void)registered;
}

}  // namespace tsca::driver
