// Ahead-of-time network compilation — the compile/execute split of the
// paper's host framework (§IV-C).
//
// The paper prepares weights and instruction schedules once, offline; the
// ARM driver then only stages data and fires batches.  NetworkProgram makes
// that split explicit in the runtime: compile(net, model, cfg) performs every
// per-layer preparation exactly once —
//
//   * quantization-packs each conv layer's filters (pack::pack_filters),
//   * serializes the per-(group, lane) weight streams (WeightImage),
//   * plans striping / bank layout / weight-chunk schedules (ConvPlan,
//     PoolPlan),
//   * resolves each pad→conv fusion decision (the fit check is a pure
//     function of shapes and the ArchConfig, so it is compile-time
//     decidable),
//   * copies the host-side FC weights, and
//   * concatenates every serialized weight stream into one DDR image with
//     per-stream offsets, so executors can DMA weights bank-ward from a
//     resident image instead of re-writing DDR on every call —
//
// producing an immutable artifact that any number of executions (and any
// number of pool workers, concurrently) can share by const reference.
// Execution through a program is bit-identical to the compile-per-call
// wrappers: same instructions, same cycle counts, same counters, and the
// same DMA statistics (a weight transfer from the resident image moves the
// same bytes in the same number of transfers as one staged through the
// bump allocator).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/counters.hpp"
#include "core/fastpath.hpp"
#include "driver/compiler.hpp"
#include "nn/network.hpp"
#include "quant/quantize.hpp"

namespace tsca::driver {

// One conv layer compiled against an (ArchConfig, input shape) pair: the
// serialized weight streams, the striping/chunk schedule, and the layer's
// bias/requant constants.  Immutable after compilation.
struct ConvProgram {
  WeightImage wimg;
  ConvPlan plan;  // empty stripes when the layer only runs fused (pad+conv)
  std::vector<std::int32_t> bias;
  nn::Requant rq;
  std::int64_t macs = 0;  // dense MACs over the (padded) input

  // DDR residency: when this layer belongs to a NetworkProgram, `owner` is
  // the program's stamp and `ddr_offset[g * lanes + lane]` locates the
  // (group, lane) stream inside the program's DDR image.  Standalone layers
  // (owner == 0) stage weights through the bump allocator instead.
  std::uint64_t owner = 0;
  std::vector<std::uint64_t> ddr_offset;

  // ExecMode::kFast artifacts, filled at compile time: the weight streams
  // decoded into the fast executor's flat form, and the PerfModel prediction
  // that stands in for measured cycles/counters (LayerRun.cycles_predicted).
  // Only meaningful for layers with a striped plan (fused-only layers carry
  // their predictions on the FusedPadConvLayout instead).
  core::FastConvWeights fastw;
  std::uint64_t predicted_cycles = 0;
  core::CounterSnapshot predicted;

  std::uint64_t stream_ddr_offset(int g, int lane) const {
    const std::size_t i =
        static_cast<std::size_t>(g) * static_cast<std::size_t>(wimg.lanes()) +
        static_cast<std::size_t>(lane);
    TSCA_CHECK(i < ddr_offset.size(), "stream offset out of range");
    return ddr_offset[i];
  }
};

// Compiles one standalone conv layer (the compile-on-the-fly path behind the
// packed-filters entry points).  Checks shape compatibility the same way the
// original run_conv did.
ConvProgram compile_conv(const core::ArchConfig& cfg,
                         const nn::FmShape& in_shape,
                         const pack::PackedFilters& packed,
                         std::vector<std::int32_t> bias, const nn::Requant& rq);

// Lowers a fully-connected layer (row-major [out][in] weights) to a 1x1
// convolution over a 1x1 feature map and compiles it.  The packing artifact
// this builds is what run_fc_as_conv used to reconstruct on every call.
ConvProgram compile_fc_conv(const core::ArchConfig& cfg, int in_dim,
                            int out_dim,
                            const std::vector<std::int8_t>& weights,
                            const std::vector<std::int32_t>& bias,
                            const nn::Requant& rq);

// On-chip layout of a fused PAD+CONV executed as two dependent batches with
// the padded map living only on chip:
//   [0, raw)  raw input | [padded_base) padded map | [ofm_base) OFM |
//   [weight_base) all filter groups' streams, resident at once.
struct FusedPadConvLayout {
  nn::Padding pad;
  nn::FmShape raw;
  nn::FmShape padded;
  nn::FmShape out;
  int kernel = 3;
  int padded_base = 0;
  int ofm_base = 0;
  int weight_base = 0;

  // ExecMode::kFast predictions, mirroring the engine's split: the pad
  // batch's cycles vs the conv batch's, with every work counter attributed
  // to the conv side (the engine snapshots counters across the whole
  // fusion, so the pad LayerRun reports zero counters there too).
  std::uint64_t predicted_pad_cycles = 0;
  std::uint64_t predicted_conv_cycles = 0;
  core::CounterSnapshot predicted;
};

// The PAD instruction of a fused pad+conv batch — shared by the engine
// executor, the fast path and the prediction model, so all three agree on
// the exact geometry.
core::PadPoolInstr make_fused_pad_instr(const FusedPadConvLayout& layout);

// The CONV instruction of filter group g in a fused batch.
core::ConvInstr make_fused_conv_instr(const ConvProgram& conv,
                                      const FusedPadConvLayout& layout, int g,
                                      int weight_base_for_group);

// Decodes a WeightImage into the fast executor's flat (value, offset) form,
// validating every stream (offsets sorted and < 16, streams fully consumed).
core::FastConvWeights decode_fast_weights(const WeightImage& wimg,
                                          int in_channels, int kernel);

// Fills conv.fastw and layout.predicted_* for a fused pad+conv layer.
void fill_fused_predictions(const core::ArchConfig& cfg, ConvProgram& conv,
                            FusedPadConvLayout& layout);

// Fit check + layout.  Returns nullopt when the fused form does not fit on
// chip (the caller falls back to a separate pad layer + striped conv).  Pure
// in (cfg, shapes, weight stream sizes), so compile-time fusion decisions
// are guaranteed to match what the run-time check would have decided.
std::optional<FusedPadConvLayout> plan_fused_pad_conv(
    const core::ArchConfig& cfg, const nn::FmShape& raw,
    const nn::Padding& pad, int kernel, int out_channels,
    const WeightImage& wimg);

// Host-side fully-connected layer: weights copied out of the model so a
// program execution never touches the QuantizedModel again.
struct FcProgram {
  std::vector<std::int8_t> weights;  // row-major [out][in]
  std::vector<std::int32_t> bias;
  nn::Requant rq;
  int out_dim = 0;
};

struct ProgramOptions {
  // Mirrors RuntimeOptions::fuse_pad_conv; the decision is resolved here, at
  // compile time, and baked into the step list.
  bool fuse_pad_conv = true;
};

// The compiled network: an immutable step list plus the per-layer artifacts
// each step consumes.  Compile once, execute many times — concurrently from
// any number of threads (all accessors are const and the object is never
// mutated after compile() returns).
class NetworkProgram {
 public:
  struct Step {
    enum class Exec {
      kFusedPadConv,  // pad layer + following conv as one on-chip fusion
      kPadPool,       // standalone PAD or POOL via a PoolPlan
      kConv,          // striped conv via a ConvProgram
      kFlatten,       // host
      kFc,            // host
      kSoftmax,       // host (logits pass through)
      kEltwiseAdd,    // host residual add via an EltwiseQ + tensor slot
      kGlobalPool,    // whole-map pool via a PoolPlan (kPadPool machinery)
    };
    Exec exec = Exec::kPadPool;
    std::size_t layer = 0;  // index into net().layers(); for kFusedPadConv
                            // this is the pad layer, layer + 1 the conv
    int conv = -1;          // conv() index (kConv, kFusedPadConv)
    int pool = -1;          // pool() index (kPadPool, kGlobalPool)
    int fused = -1;         // fused() index (kFusedPadConv)
    int fc = -1;            // fc() index (kFc)
    int eltwise = -1;       // eltwise() index (kEltwiseAdd)
    // Tensor-slot plumbing for residual skips: a step whose output is a
    // later step's second operand writes it into slot `save_slot`;
    // kEltwiseAdd reads its right-hand operand from slot `rhs_slot`.
    int save_slot = -1;
    int rhs_slot = -1;
  };

  // One-time compilation.  Throws ConfigError on inconsistent topology or a
  // layer that cannot fit on chip — the same errors the per-call path would
  // raise, just moved out of the request path.
  static NetworkProgram compile(const nn::Network& net,
                                const quant::QuantizedModel& model,
                                const core::ArchConfig& cfg,
                                const ProgramOptions& options = {});

  const nn::Network& net() const { return net_; }
  const core::ArchConfig& config() const { return cfg_; }
  const ProgramOptions& options() const { return options_; }
  const std::vector<Step>& steps() const { return steps_; }

  const ConvProgram& conv(int i) const {
    return convs_[static_cast<std::size_t>(i)];
  }
  const PoolPlan& pool(int i) const {
    return pools_[static_cast<std::size_t>(i)];
  }
  const FusedPadConvLayout& fused(int i) const {
    return fused_[static_cast<std::size_t>(i)];
  }
  const FcProgram& fc(int i) const { return fcs_[static_cast<std::size_t>(i)]; }
  const nn::EltwiseQ& eltwise(int i) const {
    return eltwise_[static_cast<std::size_t>(i)];
  }

  // Number of tensor slots an execution must hold live for residual skips.
  int slot_count() const { return slot_count_; }

  // Concatenation of every conv layer's serialized weight streams.  Runtimes
  // write it into a context's DDR once (at address 0) and then DMA weight
  // chunks straight out of it on every execution.
  const std::vector<std::uint8_t>& ddr_image() const { return ddr_image_; }

  // Unique per compile() call — the key runtimes use to decide whether the
  // image already resident in a context's DDR is this program's.
  std::uint64_t stamp() const { return stamp_; }

 private:
  NetworkProgram() = default;

  friend class LoweringContext;  // per-layer lowerings build these vectors
  friend class CompileCache;     // (de)serializes the compiled artifact

  nn::Network net_{nn::FmShape{}};
  core::ArchConfig cfg_;
  ProgramOptions options_;
  std::vector<Step> steps_;
  std::vector<ConvProgram> convs_;
  std::vector<PoolPlan> pools_;
  std::vector<FusedPadConvLayout> fused_;
  std::vector<FcProgram> fcs_;
  std::vector<nn::EltwiseQ> eltwise_;
  int slot_count_ = 0;
  std::vector<std::uint8_t> ddr_image_;
  std::uint64_t stamp_ = 0;
};

// Decodes every stripe's fast-path pool plan and caches the PerfModel
// prediction, so neither executor derives them again per request/image.
// Called by LoweringContext::add_pool on every plan a lowering emits.
void finalize_pool_plan(const core::ArchConfig& cfg, PoolPlan& plan);

// Mints a process-unique program stamp.  compile() takes one per program;
// the CompileCache takes a fresh one for every deserialized program so
// runtimes restage exactly as they would after an in-process compile.
std::uint64_t next_program_stamp();

}  // namespace tsca::driver
