// Structural area model (substitute for Quartus synthesis, Fig. 6).
//
// We have no FPGA toolchain here, so per-unit resource use is estimated from
// datapath structure: multiplexers, adders, comparators and registers map to
// ALMs with per-primitive costs typical of Arria 10 (a 4:1 mux per ALM, one
// ALM per adder bit, ~1.15 ALM overhead factor for control/routing);
// multipliers map to DSP halves; SRAM bytes map to M20K blocks.
//
// The constants are calibrated so the 256-opt variant lands on the paper's
// reported utilization (≈44 % ALM, ≈25 % DSP, ≈49 % M20K of an SX660) and the
// per-unit breakdown preserves Fig. 6's ordering: convolution, accumulator
// and data-staging/control dominate, all because of heavy MUX'ing.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "model/fpga.hpp"

namespace tsca::model {

struct UnitArea {
  std::string unit;
  int instances = 0;
  int alms = 0;        // total across instances
  int dsp_blocks = 0;  // total across instances
  int m20k_blocks = 0;
};

struct AreaReport {
  std::vector<UnitArea> units;
  int total_alms = 0;
  int total_dsp = 0;
  int total_m20k = 0;

  double alm_utilization(const FpgaDevice& dev) const {
    return static_cast<double>(total_alms) / dev.alms;
  }
  double dsp_utilization(const FpgaDevice& dev) const {
    return static_cast<double>(total_dsp) / dev.dsp_blocks;
  }
  double m20k_utilization(const FpgaDevice& dev) const {
    return static_cast<double>(total_m20k) / dev.m20k_blocks;
  }
};

// Estimates the whole multi-instance accelerator (banks + compute units +
// controller + DMA).
AreaReport estimate_area(const core::ArchConfig& cfg);

}  // namespace tsca::model
