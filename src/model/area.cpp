#include "model/area.hpp"

#include <cmath>

namespace tsca::model {

namespace {

// --- Arria-10-flavoured primitive costs -----------------------------------

// n:1 multiplexer, `bits` wide: an ALM implements a 4:1 mux per bit; a tree
// of them implements wider selects.
int mux_alms(int inputs, int bits) {
  if (inputs <= 1) return 0;
  const int per_bit = (inputs - 1 + 2) / 3;  // (n-1)/3 rounded up
  return per_bit * bits;
}

// Ripple/carry adder: ~1 ALM per bit.
int adder_alms(int bits) { return bits; }

// Registers: 4 FFs per ALM, but packing with logic is imperfect.
int reg_alms(int bits) { return (bits + 2) / 3; }

// 8-bit comparator (for MAX trees).
int cmp8_alms() { return 6; }

// Fabric overhead for control, routing and retiming registers in the
// optimized builds.
double fabric_overhead(const core::ArchConfig& cfg) {
  return cfg.optimized_build ? 1.35 : 1.15;
}

int m20k_for_bits(double bits) {
  // 80 % achievable utilization of a 20 Kbit block at wide aspect ratios.
  return static_cast<int>(std::ceil(bits / (20'480.0 * 0.8)));
}

}  // namespace

AreaReport estimate_area(const core::ArchConfig& cfg) {
  cfg.validate();
  const int L = cfg.lanes;
  const int G = cfg.group;
  const double oh = fabric_overhead(cfg);
  AreaReport report;

  auto add = [&](const std::string& name, int instances, double alms_each,
                 int dsp_each, int m20k_each) {
    UnitArea unit;
    unit.unit = name;
    unit.instances = instances;
    unit.alms = static_cast<int>(alms_each * instances * oh);
    unit.dsp_blocks = dsp_each * instances;
    unit.m20k_blocks = m20k_each * instances;
    report.units.push_back(unit);
  };

  // Convolution unit (Fig. 4(b)): per concurrent filter, 16 offset-steered
  // 16:1 byte muxes feeding 16 multipliers; window + product registers.
  const double conv_alms = G * 16 * mux_alms(16, 8)  // steering network
                           + reg_alms(8 * 64)        // window registers
                           + G * reg_alms(16 * 16)   // product registers
                           + 600;                    // command decode/ctrl
  const int conv_dsp = (G * 16 + 1) / 2;  // two 8-bit multiplies per block
  add("convolution", L * cfg.instances, conv_alms, conv_dsp, 0);

  // Accumulator unit: 16 OFM values × (lanes + 1)-input adder reduction at
  // 32 bits, full-precision tile register, DSP blocks in accumulate mode.
  const double accum_alms = 16 * L * adder_alms(32)  // reduction adders
                            + reg_alms(16 * 32)      // tile register
                            + 16 * mux_alms(L, 32) / 4  // lane gating
                            + 400;
  const int accum_dsp = 16 * L;  // one accumulator chain per value per lane
  add("accumulator", G * cfg.instances, accum_alms, accum_dsp, 0);

  // Data-staging/control (fetch + inject halves): address generation, the
  // packed-stream parser, scratchpad barrel shifter, window assembly and the
  // big instruction FSMs the paper calls out.
  const double staging_alms = 1'400                     // address generation
                              + 1'600                   // stream unpacker
                              + 16 * mux_alms(16, 8)    // scratch barrel mux
                              + 4 * mux_alms(4, 128) / 8  // window assembly
                              + G * 320                 // per-filter inject
                              + 1'200;                  // FSM + stall logic
  const int staging_dsp = 8;  // address multipliers
  // Weight scratchpad.
  const int staging_m20k =
      m20k_for_bits(static_cast<double>(cfg.weight_scratch_words) * 128);
  add("data-staging/ctrl", L * cfg.instances, staging_alms, staging_dsp,
      staging_m20k);

  // Write-to-memory unit: 16 rounding shifters + saturation + port mux.
  const double write_alms = 16 * (adder_alms(32) + 24) + 500;
  add("write-to-memory", L * cfg.instances, write_alms, 0, 0);

  // Pool/pad unit (Fig. 5): 4 MAX trees (15 comparators each) + 16 output
  // muxes selecting among 4 MAX outputs / combine / keep.
  const double pool_alms = 4 * 15 * cmp8_alms() + 16 * mux_alms(9, 8) +
                           reg_alms(16 * 8) + 700;
  add("pool/pad", L * cfg.instances, pool_alms, 0, 0);

  // Controller (split conv / pad-pool FSMs per the paper's fix).
  add("controller", cfg.instances, 2'400, 0, 0);

  // FIFO queues: implemented in LUT RAM (the paper's pragma edit), so they
  // cost ALMs, not M20K.
  const int fifo_count = cfg.instances * (L * (6 + G) + 2 * G + 1);
  const double fifo_alms = fifo_count * (cfg.fifo_depth * 3.0 + 60);
  add("FIFO queues", 1, fifo_alms, 0, 0);

  // On-FPGA SRAM banks.
  const int bank_m20k =
      m20k_for_bits(static_cast<double>(cfg.bank_words) * 128);
  add("SRAM banks", L * cfg.instances, 350, 0, bank_m20k);

  // DMA engine (the one hand-written RTL block) + Qsys interconnect.
  add("DMA + interconnect", 1, 8'500, 0, 4);

  for (const UnitArea& unit : report.units) {
    report.total_alms += unit.alms;
    report.total_dsp += unit.dsp_blocks;
    report.total_m20k += unit.m20k_blocks;
  }
  return report;
}

}  // namespace tsca::model
