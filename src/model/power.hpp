// Activity-based power model (substitute for board measurements, Table I).
//
//   P_fpga   = P_static(device, utilization) + P_dynamic(activity)
//   P_board  = P_fpga / VRM efficiency + fixed board overhead (DDR4,
//              peripherals, fans)
//
// Dynamic power is energy-per-event times event rate: multiply-accumulates,
// SRAM tile-words and clock-tree/register toggling.  Constants are calibrated
// to Table I's 256-opt measurement (2.3 W peak / 0.5 W dynamic on the FPGA;
// 9.5 W at the board) and validated against the 512-opt row in the tests.
#pragma once

#include "core/config.hpp"
#include "model/area.hpp"

namespace tsca::model {

// Event rates while running a workload (per second).
struct Activity {
  double mac_rate = 0.0;        // multiply-accumulates/s (performed)
  double sram_word_rate = 0.0;  // 16-byte bank words/s (reads + writes)
  double dma_byte_rate = 0.0;   // DDR traffic bytes/s

  // Peak activity of a configuration: every MAC lane busy, every bank port
  // streaming a word per cycle.
  static Activity peak(const core::ArchConfig& cfg);
};

struct PowerEstimate {
  double static_w = 0.0;
  double dynamic_w = 0.0;
  double fpga_w() const { return static_w + dynamic_w; }
  double board_w = 0.0;
};

struct PowerConstants {
  double mac_energy_pj = 6.0;         // per 8-bit MAC incl. local routing
  double sram_word_energy_pj = 80.0;  // per 16-byte bank word access
  double dma_byte_energy_pj = 30.0;   // per DDR byte moved
  double clock_w_per_mhz = 4.0e-4;    // clock tree + register toggle
  double static_base_w = 1.10;        // device leakage floor
  double static_per_alm_util_w = 1.75;
  double vrm_efficiency = 0.85;
  double board_overhead_w = 6.8;      // DDR4 + peripherals + fan
};

PowerEstimate estimate_power(const core::ArchConfig& cfg,
                             const AreaReport& area, const Activity& activity,
                             const FpgaDevice& device,
                             const PowerConstants& constants = {});

}  // namespace tsca::model
