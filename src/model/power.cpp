#include "model/power.hpp"

#include <algorithm>

namespace tsca::model {

Activity Activity::peak(const core::ArchConfig& cfg) {
  Activity a;
  const double hz = cfg.clock_mhz * 1e6;
  a.mac_rate = static_cast<double>(cfg.macs_per_cycle()) * hz;
  // Every bank: one read word + one write word per cycle.
  a.sram_word_rate =
      2.0 * cfg.lanes * cfg.instances * hz;
  // Sustained stripe traffic on the 256-bit DMA bus.
  a.dma_byte_rate = 2e9;
  return a;
}

PowerEstimate estimate_power(const core::ArchConfig& cfg,
                             const AreaReport& area, const Activity& activity,
                             const FpgaDevice& device,
                             const PowerConstants& constants) {
  PowerEstimate p;
  const double util = std::min(1.0, area.alm_utilization(device));
  p.static_w =
      constants.static_base_w + constants.static_per_alm_util_w * util;
  p.dynamic_w = activity.mac_rate * constants.mac_energy_pj * 1e-12 +
                activity.sram_word_rate * constants.sram_word_energy_pj *
                    1e-12 +
                activity.dma_byte_rate * constants.dma_byte_energy_pj * 1e-12 +
                cfg.clock_mhz * constants.clock_w_per_mhz *
                    (static_cast<double>(area.total_alms) / 50'000.0);
  p.board_w = p.fpga_w() / constants.vrm_efficiency +
              constants.board_overhead_w;
  return p;
}

}  // namespace tsca::model
