// FPGA device database.
//
// Resource inventories of the Intel Arria 10 parts the paper targets (SX660)
// and mentions as the scale-out path (GT1150).  Numbers are from the Arria 10
// device overview: ALMs (adaptive logic modules), M20K memory blocks and
// DSP blocks.
#pragma once

#include <string>

namespace tsca::model {

struct FpgaDevice {
  std::string name;
  int alms = 0;
  int m20k_blocks = 0;   // 20 Kbit each
  int dsp_blocks = 0;    // each: 2 × 18×19 multipliers (4 × 9-bit capable)

  static FpgaDevice arria10_sx660() {
    return {"Arria 10 SX660", 251'680, 2'133, 1'687};
  }
  static FpgaDevice arria10_gt1150() {
    return {"Arria 10 GT1150", 427'200, 2'713, 1'518};
  }

  double m20k_kbits() const { return m20k_blocks * 20.0; }
};

}  // namespace tsca::model
