// Ternary weight networks (paper §VII future work).
//
// Ternary-weight quantization in the style of TWN: per layer, weights below
// a threshold Δ = factor · mean|w| become zero, the rest ±1; the layer scale
// α = mean|w| over the survivors is rounded to a power of two so it folds
// into the accelerator's rounded-shift requantization (the datapath is
// unchanged — only the packed weight stream gets denser, 1 byte per entry,
// see pack::LaneStream::ternary).
#pragma once

#include "nn/network.hpp"
#include "quant/quantize.hpp"

namespace tsca::quant {

struct TernarizeOptions {
  double delta_factor = 0.7;  // Δ = factor · mean|w|
};

struct TernaryLayer {
  nn::FilterBankI8 weights;  // values in {-1, 0, +1}
  int weight_exp = 0;        // w_real ≈ w_t · 2^(-weight_exp)
  double density = 0.0;      // fraction of ±1 entries
};

// Ternarizes one float filter bank.
TernaryLayer ternarize_filters(const nn::FilterBankF& bank,
                               const TernarizeOptions& options = {});

// Full-network ternarization: conv layers become ternary (per-layer
// power-of-two scale folded into the requant shift); FC layers are
// quantized to int8 as usual (they run on the host).  Activation ranges are
// calibrated with the float oracle, exactly like quantize_network.
QuantizedModel ternarize_network(const nn::Network& net,
                                 const nn::WeightsF& weights,
                                 const std::vector<nn::FeatureMapF>& samples,
                                 const TernarizeOptions& options = {});

}  // namespace tsca::quant
