#include "quant/prune.hpp"

#include <algorithm>
#include <cmath>

namespace tsca::quant {

PruneProfile PruneProfile::uniform(double density, int conv_layers,
                                   int fc_layers) {
  TSCA_CHECK(density >= 0.0 && density <= 1.0, "density=" << density);
  PruneProfile profile;
  profile.conv_density.assign(static_cast<std::size_t>(conv_layers), density);
  profile.fc_density.assign(static_cast<std::size_t>(fc_layers), density);
  return profile;
}

PruneProfile vgg16_han_profile() {
  // Han et al., Deep Compression, Table 4 (fraction of weights kept).
  PruneProfile profile;
  profile.conv_density = {0.58, 0.22, 0.34, 0.36, 0.53, 0.24, 0.42,
                          0.32, 0.27, 0.34, 0.35, 0.29, 0.36};
  profile.fc_density = {0.04, 0.04, 0.23};
  return profile;
}

namespace {

double profile_entry(const std::vector<double>& entries, std::size_t index) {
  TSCA_CHECK(!entries.empty(), "empty prune profile");
  const double d =
      entries[std::min(index, entries.size() - 1)];
  TSCA_CHECK(d >= 0.0 && d <= 1.0, "density=" << d);
  return d;
}

// Zeroes the smallest-magnitude values of `data` so that round(n * density)
// values remain.  Deterministic: ties are broken by index order via
// stable partial selection on (|v|, index).
double prune_array(float* data, std::size_t n, double density) {
  if (n == 0) return 1.0;
  const std::size_t keep = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * density));
  const std::size_t drop = n - keep;
  if (drop == 0) return 1.0;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return std::abs(data[a]) < std::abs(data[b]);
                   });
  for (std::size_t i = 0; i < drop; ++i) data[order[i]] = 0.0f;
  return static_cast<double>(keep) / static_cast<double>(n);
}

}  // namespace

std::vector<double> prune_weights(const nn::Network& net,
                                  nn::WeightsF& weights,
                                  const PruneProfile& profile) {
  std::vector<double> achieved;
  std::size_t conv_pos = 0;
  std::size_t fc_pos = 0;
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const nn::LayerSpec& spec = net.layers()[i];
    if (spec.kind == nn::LayerKind::kConv) {
      nn::FilterBankF& bank = weights.conv[i];
      TSCA_CHECK(bank.size() > 0, "missing conv weights for layer " << i);
      achieved.push_back(prune_array(
          bank.data(), bank.size(),
          profile_entry(profile.conv_density, conv_pos++)));
    } else if (spec.kind == nn::LayerKind::kFullyConnected) {
      std::vector<float>& mat = weights.fc[i];
      TSCA_CHECK(!mat.empty(), "missing fc weights for layer " << i);
      prune_array(mat.data(), mat.size(),
                  profile_entry(profile.fc_density, fc_pos++));
    }
  }
  return achieved;
}

}  // namespace tsca::quant
