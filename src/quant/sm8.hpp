// 8-bit sign + magnitude codec.
//
// The paper's accelerator computes in "8-bit magnitude + sign" format: one
// sign bit and a 7-bit magnitude, i.e. representable values are
// -127 … +127 with two encodings of zero (+0 and -0; the packer normalises
// to +0).  Arithmetic in the library is done on decoded two's-complement
// integers; this codec defines the storage/transport format used in SRAM
// banks, FIFOs and the packed weight stream.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace tsca::quant {

// Raw sign-magnitude octet: bit 7 = sign (1 = negative), bits 6..0 = magnitude.
using Sm8Bits = std::uint8_t;

inline constexpr int kSm8MagnitudeBits = 7;
inline constexpr std::int32_t kSm8Max = 127;
inline constexpr std::int32_t kSm8Min = -127;

// Encodes a value in [-127, 127]; checks range.
inline Sm8Bits sm8_encode(std::int32_t value) {
  TSCA_CHECK(value >= kSm8Min && value <= kSm8Max, "sm8 range: " << value);
  if (value >= 0) return static_cast<Sm8Bits>(value);
  return static_cast<Sm8Bits>(0x80u | static_cast<std::uint32_t>(-value));
}

// Decodes; -0 decodes to 0.
inline std::int32_t sm8_decode(Sm8Bits bits) {
  const std::int32_t mag = bits & 0x7f;
  return (bits & 0x80) ? -mag : mag;
}

// Saturating encode from a wide integer.
inline Sm8Bits sm8_encode_sat(std::int64_t value) {
  if (value > kSm8Max) value = kSm8Max;
  if (value < kSm8Min) value = kSm8Min;
  return sm8_encode(static_cast<std::int32_t>(value));
}

// True if the octet is a canonical encoding (no negative zero).
inline bool sm8_is_canonical(Sm8Bits bits) { return bits != 0x80; }

// Canonicalises -0 to +0.
inline Sm8Bits sm8_canonicalize(Sm8Bits bits) {
  return sm8_is_canonical(bits) ? bits : Sm8Bits{0};
}

}  // namespace tsca::quant
