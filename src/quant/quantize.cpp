#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "quant/sm8.hpp"

namespace tsca::quant {

int choose_exponent(float max_abs) {
  TSCA_CHECK(max_abs >= 0.0f && std::isfinite(max_abs));
  if (max_abs == 0.0f) return kMaxExp;
  int exp = kMaxExp;
  while (exp > kMinExp &&
         std::round(static_cast<double>(max_abs) * std::ldexp(1.0, exp)) >
             kSm8Max)
    --exp;
  TSCA_CHECK(std::round(static_cast<double>(max_abs) * std::ldexp(1.0, exp)) <=
                 kSm8Max,
             "activation magnitude too large to quantize: " << max_abs);
  return exp;
}

std::int8_t quantize_value(float v, int exp) {
  const double scaled = std::round(static_cast<double>(v) * std::ldexp(1.0, exp));
  return static_cast<std::int8_t>(
      std::clamp<double>(scaled, nn::kInt8Min, nn::kInt8Max));
}

float dequantize_value(std::int8_t q, int exp) {
  return static_cast<float>(std::ldexp(static_cast<double>(q), -exp));
}

nn::FeatureMapI8 quantize_fm(const nn::FeatureMapF& fm, int exp) {
  nn::FeatureMapI8 out(fm.shape());
  for (std::size_t i = 0; i < fm.size(); ++i)
    out.data()[i] = quantize_value(fm.data()[i], exp);
  return out;
}

nn::FilterBankI8 quantize_filters(const nn::FilterBankF& bank, int exp) {
  nn::FilterBankI8 out(bank.shape());
  for (std::size_t i = 0; i < bank.size(); ++i)
    out.data()[i] = quantize_value(bank.data()[i], exp);
  return out;
}

double sparsity(const nn::FilterBankI8& bank) {
  if (bank.size() == 0) return 0.0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (bank.data()[i] == 0) ++zeros;
  return static_cast<double>(zeros) / static_cast<double>(bank.size());
}

namespace {

float max_abs(const float* data, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(data[i]));
  return m;
}

}  // namespace

QuantizedModel quantize_network(const nn::Network& net,
                                const nn::WeightsF& weights,
                                const std::vector<nn::FeatureMapF>& samples) {
  TSCA_CHECK(!samples.empty(), "need at least one calibration sample");
  const std::size_t n = net.layers().size();

  // Calibrate activation ranges over all samples.
  float input_max = 0.0f;
  std::vector<float> act_max(n, 0.0f);
  for (const nn::FeatureMapF& sample : samples) {
    input_max = std::max(input_max, max_abs(sample.data(), sample.size()));
    const std::vector<nn::ActivationF> acts =
        nn::forward_f_all(net, weights, sample);
    for (std::size_t i = 0; i < n; ++i) {
      const nn::ActivationF& act = acts[i];
      const float m = act.is_flat ? max_abs(act.flat.data(), act.flat.size())
                                  : max_abs(act.fm.data(), act.fm.size());
      act_max[i] = std::max(act_max[i], m);
    }
  }

  QuantizedModel model;
  model.input_exp = choose_exponent(input_max);
  model.act_exp.assign(n, 0);
  model.weight_exp.assign(n, 0);
  model.weights.conv.resize(n);
  model.weights.conv_bias.resize(n);
  model.weights.conv_requant.resize(n);
  model.weights.fc.resize(n);
  model.weights.fc_bias.resize(n);
  model.weights.fc_requant.resize(n);
  model.weights.eltwise.resize(n);

  int exp_in = model.input_exp;
  for (std::size_t i = 0; i < n; ++i) {
    const nn::LayerSpec& spec = net.layers()[i];
    switch (spec.kind) {
      case nn::LayerKind::kPad:
      case nn::LayerKind::kMaxPool:
      case nn::LayerKind::kGlobalPool:
      case nn::LayerKind::kFlatten:
      case nn::LayerKind::kSoftmax:
        // Value-preserving (or host-side) layers keep the exponent.
        model.act_exp[i] = exp_in;
        break;
      case nn::LayerKind::kEltwiseAdd: {
        // The two operands can sit on different exponents; align both to
        // the finer one (larger exp) with left shifts, then requantize down
        // to the calibrated output exponent.
        const int from = spec.eltwise.from;
        TSCA_CHECK(from >= 0 && from < static_cast<int>(i),
                   "eltwise skip source for layer " << i);
        const int rhs_exp = model.act_exp[static_cast<std::size_t>(from)];
        const int acc_exp = std::max(exp_in, rhs_exp);
        int out_exp = choose_exponent(act_max[i]);
        out_exp = std::min(out_exp, acc_exp);  // shift must be >= 0
        model.act_exp[i] = out_exp;
        model.weights.eltwise[i] = {
            .lhs_shift = acc_exp - exp_in,
            .rhs_shift = acc_exp - rhs_exp,
            .rq = {.shift = acc_exp - out_exp, .relu = spec.eltwise.relu}};
        break;
      }
      case nn::LayerKind::kConv: {
        const nn::FilterBankF& bank = weights.conv[i];
        TSCA_CHECK(bank.size() > 0, "missing conv weights for layer " << i);
        const int w_exp = choose_exponent(max_abs(bank.data(), bank.size()));
        int out_exp = choose_exponent(act_max[i]);
        out_exp = std::min(out_exp, exp_in + w_exp);  // shift must be >= 0
        model.weight_exp[i] = w_exp;
        model.act_exp[i] = out_exp;
        model.weights.conv[i] = quantize_filters(bank, w_exp);
        const double bias_scale = std::ldexp(1.0, exp_in + w_exp);
        model.weights.conv_bias[i].reserve(weights.conv_bias[i].size());
        for (float b : weights.conv_bias[i])
          model.weights.conv_bias[i].push_back(static_cast<std::int32_t>(
              std::llround(static_cast<double>(b) * bias_scale)));
        model.weights.conv_requant[i] = {.shift = exp_in + w_exp - out_exp,
                                         .relu = spec.conv.relu};
        exp_in = out_exp;
        break;
      }
      case nn::LayerKind::kFullyConnected: {
        const std::vector<float>& mat = weights.fc[i];
        TSCA_CHECK(!mat.empty(), "missing fc weights for layer " << i);
        const int w_exp = choose_exponent(max_abs(mat.data(), mat.size()));
        int out_exp = choose_exponent(act_max[i]);
        out_exp = std::min(out_exp, exp_in + w_exp);
        model.weight_exp[i] = w_exp;
        model.act_exp[i] = out_exp;
        model.weights.fc[i].reserve(mat.size());
        for (float v : mat)
          model.weights.fc[i].push_back(quantize_value(v, w_exp));
        const double bias_scale = std::ldexp(1.0, exp_in + w_exp);
        model.weights.fc_bias[i].reserve(weights.fc_bias[i].size());
        for (float b : weights.fc_bias[i])
          model.weights.fc_bias[i].push_back(static_cast<std::int32_t>(
              std::llround(static_cast<double>(b) * bias_scale)));
        model.weights.fc_requant[i] = {.shift = exp_in + w_exp - out_exp,
                                       .relu = spec.fc.relu};
        exp_in = out_exp;
        break;
      }
    }
    if (spec.kind != nn::LayerKind::kConv &&
        spec.kind != nn::LayerKind::kFullyConnected)
      exp_in = model.act_exp[i];
  }
  return model;
}

}  // namespace tsca::quant
