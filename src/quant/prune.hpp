// Magnitude pruning.
//
// The paper prunes VGG-16 in Caffe "in a manner similar to [Han et al.]" and
// evaluates two models: reduced precision, and reduced precision + pruning.
// We reproduce that with deterministic magnitude pruning: in each layer the
// smallest-magnitude weights are set to zero until a target *density*
// (fraction kept) is reached.  The default VGG-16 profile uses the per-layer
// densities published for VGG-16 in Han et al.'s Deep Compression paper.
#pragma once

#include <vector>

#include "nn/network.hpp"

namespace tsca::quant {

// Fraction of weights KEPT per prunable layer, in network layer order
// (conv layers first 13 entries for VGG-16, then fc6/fc7/fc8).
struct PruneProfile {
  std::vector<double> conv_density;  // one entry per conv layer, in order
  std::vector<double> fc_density;    // one entry per fc layer, in order

  // Uniform density across all layers.
  static PruneProfile uniform(double density, int conv_layers, int fc_layers);
};

// Per-layer densities for pruned VGG-16 following Han, Mao & Dally,
// "Deep Compression" (ICLR'16), Table 4.
PruneProfile vgg16_han_profile();

// Prunes in place; layer k's density is taken from the profile entry matching
// its position among conv (resp. fc) layers.  Profiles shorter than the
// network reuse their last entry.  Returns achieved per-conv-layer density.
std::vector<double> prune_weights(const nn::Network& net, nn::WeightsF& weights,
                                  const PruneProfile& profile);

}  // namespace tsca::quant
