#include "quant/ternary.hpp"

#include <algorithm>
#include <cmath>

namespace tsca::quant {

TernaryLayer ternarize_filters(const nn::FilterBankF& bank,
                               const TernarizeOptions& options) {
  TSCA_CHECK(options.delta_factor >= 0.0);
  TernaryLayer layer;
  layer.weights = nn::FilterBankI8(bank.shape());
  if (bank.size() == 0) return layer;

  double mean_abs = 0.0;
  for (std::size_t i = 0; i < bank.size(); ++i)
    mean_abs += std::abs(static_cast<double>(bank.data()[i]));
  mean_abs /= static_cast<double>(bank.size());
  const double delta = options.delta_factor * mean_abs;

  double alpha_sum = 0.0;
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const float w = bank.data()[i];
    if (std::abs(static_cast<double>(w)) > delta) {
      layer.weights.data()[i] = w > 0 ? 1 : -1;
      alpha_sum += std::abs(static_cast<double>(w));
      ++survivors;
    }
  }
  layer.density =
      static_cast<double>(survivors) / static_cast<double>(bank.size());
  if (survivors == 0) {
    layer.weight_exp = 0;
    return layer;
  }
  const double alpha = alpha_sum / static_cast<double>(survivors);
  // Round the layer scale to a power of two: w_real ≈ ±2^(-weight_exp).
  layer.weight_exp = -static_cast<int>(std::lround(std::log2(alpha)));
  layer.weight_exp = std::clamp(layer.weight_exp, kMinExp, kMaxExp);
  return layer;
}

QuantizedModel ternarize_network(const nn::Network& net,
                                 const nn::WeightsF& weights,
                                 const std::vector<nn::FeatureMapF>& samples,
                                 const TernarizeOptions& options) {
  TSCA_CHECK(!samples.empty(), "need at least one calibration sample");
  const std::size_t n = net.layers().size();

  // Ternarize conv layers, then calibrate activations with the *effective*
  // float weights (±2^-weight_exp) so the shifts see what will actually run.
  std::vector<TernaryLayer> ternary(n);
  nn::WeightsF effective = weights;
  for (std::size_t i = 0; i < n; ++i) {
    if (net.layers()[i].kind != nn::LayerKind::kConv) continue;
    ternary[i] = ternarize_filters(weights.conv[i], options);
    const double scale = std::ldexp(1.0, -ternary[i].weight_exp);
    nn::FilterBankF& bank = effective.conv[i];
    for (std::size_t k = 0; k < bank.size(); ++k)
      bank.data()[k] =
          static_cast<float>(ternary[i].weights.data()[k] * scale);
  }

  // Reuse the int8 calibration machinery on the effective network, then
  // substitute the ternary weights and their exponents.
  QuantizedModel model = quantize_network(net, effective, samples);
  int exp_in = model.input_exp;
  for (std::size_t i = 0; i < n; ++i) {
    const nn::LayerSpec& spec = net.layers()[i];
    if (spec.kind == nn::LayerKind::kConv) {
      const int w_exp = ternary[i].weight_exp;
      int out_exp = model.act_exp[i];
      out_exp = std::min(out_exp, exp_in + w_exp);
      model.weight_exp[i] = w_exp;
      model.act_exp[i] = out_exp;
      model.weights.conv[i] = ternary[i].weights;
      const double bias_scale = std::ldexp(1.0, exp_in + w_exp);
      model.weights.conv_bias[i].clear();
      for (float b : weights.conv_bias[i])
        model.weights.conv_bias[i].push_back(static_cast<std::int32_t>(
            std::llround(static_cast<double>(b) * bias_scale)));
      model.weights.conv_requant[i] = {.shift = exp_in + w_exp - out_exp,
                                       .relu = spec.conv.relu};
    } else if (spec.kind == nn::LayerKind::kEltwiseAdd) {
      // Conv substitution above may have moved the chain's exponent, so the
      // skip-add alignment must be recomputed against the substituted
      // exponents of both operands.
      const int rhs_exp =
          model.act_exp[static_cast<std::size_t>(spec.eltwise.from)];
      const int acc_exp = std::max(exp_in, rhs_exp);
      const int out_exp = std::min(model.act_exp[i], acc_exp);
      model.act_exp[i] = out_exp;
      model.weights.eltwise[i] = {
          .lhs_shift = acc_exp - exp_in,
          .rhs_shift = acc_exp - rhs_exp,
          .rq = {.shift = acc_exp - out_exp, .relu = spec.eltwise.relu}};
    }
    exp_in = model.act_exp[i];
  }
  return model;
}

}  // namespace tsca::quant
