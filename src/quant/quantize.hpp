// Float → int8 quantization with power-of-two scales.
//
// Mirrors the paper's flow: starting from a (pre-trained, here synthetic)
// float model, weights and activations are scaled into 8-bit sign+magnitude
// range.  Scales are powers of two so that requantization between layers is a
// single rounded right shift — exactly what the accelerator datapath
// implements (see nn::requantize).
//
// Quantized value q represents real value q * 2^-exp ("exp" = binary point).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace tsca::quant {

// Largest exponent e such that round(max_abs * 2^e) <= 127.  max_abs == 0
// yields kMaxExp (any scale works; pick a large one).
int choose_exponent(float max_abs);
inline constexpr int kMaxExp = 24;
inline constexpr int kMinExp = -24;

// Element-wise quantization q = sat(round(v * 2^exp)).
std::int8_t quantize_value(float v, int exp);
nn::FeatureMapI8 quantize_fm(const nn::FeatureMapF& fm, int exp);
nn::FilterBankI8 quantize_filters(const nn::FilterBankF& bank, int exp);
float dequantize_value(std::int8_t q, int exp);

// A fully quantized model: int8 weights + per-layer requant shifts, plus the
// activation exponents needed to quantize inputs / interpret outputs.
struct QuantizedModel {
  nn::WeightsI8 weights;
  int input_exp = 0;                // exponent of the network input
  std::vector<int> act_exp;         // exponent of every layer's output
  std::vector<int> weight_exp;      // per-layer weight exponent (conv/fc)
};

// Calibrates activation ranges by running the float oracle on the given
// sample inputs, then quantizes weights and derives per-layer shifts:
//   shift(layer) = exp_in + exp_w - exp_out   (clamped to >= 0 by lowering
//   exp_out when needed).
QuantizedModel quantize_network(const nn::Network& net,
                                const nn::WeightsF& weights,
                                const std::vector<nn::FeatureMapF>& samples);

// Fraction of zero-valued weights in a filter bank / across conv layers.
double sparsity(const nn::FilterBankI8& bank);

}  // namespace tsca::quant
