#include "pack/lane_stream.hpp"

#include <algorithm>

#include "quant/sm8.hpp"

namespace tsca::pack {

bool is_ternary(const PackedFilters& packed) {
  const nn::FilterShape& fs = packed.shape();
  for (int oc = 0; oc < fs.oc; ++oc)
    for (int ic = 0; ic < fs.ic; ++ic)
      for (int wty = 0; wty < packed.wtiles_y(); ++wty)
        for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx)
          for (const PackedEntry& entry : packed.list(oc, ic, wty, wtx)) {
            const int v = quant::sm8_decode(entry.value);
            if (v != 1 && v != -1) return false;
          }
  return true;
}

LaneStream build_lane_stream(const PackedFilters& packed, int oc0, int active,
                             int lane, int lanes, bool ternary) {
  const nn::FilterShape& fs = packed.shape();
  TSCA_CHECK(lanes >= 1 && lane >= 0 && lane < lanes);
  TSCA_CHECK(active >= 1 && active <= kMaxConcurrentFilters);
  TSCA_CHECK(oc0 >= 0 && oc0 + active <= fs.oc,
             "filter group [" << oc0 << ',' << oc0 + active << ") of "
                              << fs.oc);
  LaneStream stream;
  stream.active = active;
  stream.ternary = ternary;
  stream.wtiles = packed.wtiles_y() * packed.wtiles_x();
  for (int c = lane; c < fs.ic; c += lanes) ++stream.channels;
  stream.groups.resize(static_cast<std::size_t>(stream.channels) *
                       stream.wtiles);

  const std::int64_t entry_bytes = ternary ? 1 : 2;
  std::int64_t offset = 0;
  int ci = 0;
  for (int c = lane; c < fs.ic; c += lanes, ++ci) {
    int wt = 0;
    for (int wty = 0; wty < packed.wtiles_y(); ++wty) {
      for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx, ++wt) {
        LaneTileGroup& group =
            stream.groups[static_cast<std::size_t>(ci) * stream.wtiles + wt];
        group.byte_begin = offset;
        for (int g = 0; g < active; ++g) {
          const auto& list = packed.list(oc0 + g, c, wty, wtx);
          if (ternary)
            for (const PackedEntry& entry : list) {
              const int v = quant::sm8_decode(entry.value);
              TSCA_CHECK(v == 1 || v == -1,
                         "non-ternary weight in ternary stream: " << v);
            }
          group.lists[static_cast<std::size_t>(g)] = list;
          offset += 1 + entry_bytes * static_cast<std::int64_t>(list.size());
        }
        group.byte_end = offset;
      }
    }
  }
  stream.total_bytes = offset;
  return stream;
}

std::vector<std::uint8_t> serialize_lane_stream(const LaneStream& stream) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(static_cast<std::size_t>(stream.total_bytes));
  for (const LaneTileGroup& group : stream.groups) {
    for (int g = 0; g < stream.active; ++g) {
      const auto& list = group.lists[static_cast<std::size_t>(g)];
      TSCA_CHECK(list.size() <= kTileSize);
      bytes.push_back(static_cast<std::uint8_t>(list.size()));
      for (const PackedEntry& entry : list) {
        if (stream.ternary) {
          // 1 byte: bit 7 = sign, bits 3..0 = intra-tile offset.
          const bool negative = (entry.value & 0x80u) != 0;
          bytes.push_back(static_cast<std::uint8_t>(
              (negative ? 0x80u : 0u) | entry.offset));
        } else {
          bytes.push_back(entry.value);
          bytes.push_back(entry.offset);
        }
      }
    }
  }
  TSCA_CHECK(static_cast<std::int64_t>(bytes.size()) == stream.total_bytes,
             "lane stream size mismatch");
  return bytes;
}

LaneStream parse_lane_stream_from(const std::function<std::uint8_t()>& take,
                                  int channels, int wtiles, int active,
                                  bool ternary) {
  TSCA_CHECK(channels >= 0 && wtiles >= 1 && active >= 1 &&
             active <= kMaxConcurrentFilters);
  LaneStream stream;
  stream.channels = channels;
  stream.wtiles = wtiles;
  stream.active = active;
  stream.ternary = ternary;
  stream.groups.resize(static_cast<std::size_t>(channels) * wtiles);
  std::int64_t pos = 0;
  auto next = [&]() -> std::uint8_t {
    ++pos;
    return take();
  };
  for (LaneTileGroup& group : stream.groups) {
    group.byte_begin = pos;
    for (int g = 0; g < active; ++g) {
      const int count = next();
      TSCA_CHECK(count <= kTileSize, "corrupt lane-stream count");
      auto& list = group.lists[static_cast<std::size_t>(g)];
      list.reserve(static_cast<std::size_t>(count));
      int prev = -1;
      for (int k = 0; k < count; ++k) {
        PackedEntry entry;
        if (ternary) {
          const std::uint8_t byte = next();
          entry.value = quant::sm8_encode((byte & 0x80u) != 0 ? -1 : 1);
          entry.offset = byte & 0x0fu;
          TSCA_CHECK((byte & 0x70u) == 0, "reserved ternary bits set");
        } else {
          entry.value = next();
          entry.offset = next();
        }
        TSCA_CHECK(entry.offset < kTileSize, "corrupt lane-stream offset");
        TSCA_CHECK(static_cast<int>(entry.offset) > prev,
                   "lane-stream offsets not increasing");
        prev = entry.offset;
        list.push_back(entry);
      }
    }
    group.byte_end = pos;
  }
  stream.total_bytes = pos;
  return stream;
}

LaneStream parse_lane_stream(const std::vector<std::uint8_t>& bytes,
                             int channels, int wtiles, int active,
                             bool ternary) {
  std::size_t pos = 0;
  return parse_lane_stream_from(
      [&bytes, &pos]() -> std::uint8_t {
        TSCA_CHECK(pos < bytes.size(), "truncated lane stream");
        return bytes[pos++];
      },
      channels, wtiles, active, ternary);
}

}  // namespace tsca::pack
