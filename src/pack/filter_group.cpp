#include "pack/filter_group.hpp"

#include <algorithm>
#include <numeric>

namespace tsca::pack {

std::vector<int> group_filters(const PackedFilters& packed, GroupPolicy policy,
                               int group_size) {
  TSCA_CHECK(group_size > 0);
  const int oc = packed.shape().oc;
  std::vector<int> perm(static_cast<std::size_t>(oc));
  std::iota(perm.begin(), perm.end(), 0);
  if (policy == GroupPolicy::kIdentity) return perm;

  // Total non-zeros per output channel.
  std::vector<std::int64_t> nnz(static_cast<std::size_t>(oc), 0);
  for (int o = 0; o < oc; ++o)
    for (int ic = 0; ic < packed.shape().ic; ++ic)
      for (int wty = 0; wty < packed.wtiles_y(); ++wty)
        for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx)
          nnz[static_cast<std::size_t>(o)] += packed.nnz(o, ic, wty, wtx);

  std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
    return nnz[static_cast<std::size_t>(a)] < nnz[static_cast<std::size_t>(b)];
  });
  return perm;
}

std::int64_t grouped_weight_cycles(const PackedFilters& packed,
                                   const std::vector<int>& perm,
                                   int group_size) {
  TSCA_CHECK(group_size > 0);
  const nn::FilterShape& fs = packed.shape();
  TSCA_CHECK(static_cast<int>(perm.size()) == fs.oc,
             "permutation size " << perm.size() << " != oc " << fs.oc);
  std::int64_t cycles = 0;
  for (int g = 0; g < fs.oc; g += group_size) {
    const int members = std::min(group_size, fs.oc - g);
    for (int ic = 0; ic < fs.ic; ++ic) {
      for (int wty = 0; wty < packed.wtiles_y(); ++wty) {
        for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx) {
          int worst = 0;
          for (int m = 0; m < members; ++m)
            worst = std::max(worst, packed.nnz(perm[static_cast<std::size_t>(
                                                   g + m)],
                                               ic, wty, wtx));
          cycles += worst;
        }
      }
    }
  }
  return cycles;
}

}  // namespace tsca::pack
