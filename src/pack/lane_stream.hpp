// Per-lane packed weight streams.
//
// Each data-staging unit owns one quarter of the IFM channels and feeds the
// weights of the (up to four) concurrently computed filters restricted to
// those channels.  The stream it consumes is laid out in exactly its
// iteration order — lane-local channel, then weight tile, then filter:
//
//   for ci (lane channel slot)  for wty,wtx  for g in [0, active):
//       u8 count, then count × { u8 sm8-value, u8 offset }
//
// so the unit streams it strictly sequentially, re-reading from the start at
// every OFM tile position (output-stationary reuse).  The byte extents per
// (channel, weight tile) group drive the scratchpad-spill model: bytes beyond
// the weight scratchpad must be re-fetched through the bank read port at
// every position.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "pack/weight_pack.hpp"

namespace tsca::pack {

inline constexpr int kMaxConcurrentFilters = 4;

// Weights one lane injects for one (channel, weight-tile) step.
struct LaneTileGroup {
  std::array<std::vector<PackedEntry>, kMaxConcurrentFilters> lists;
  std::int64_t byte_begin = 0;  // extent within the lane stream
  std::int64_t byte_end = 0;

  int max_nnz(int active) const {
    int n = 0;
    for (int g = 0; g < active; ++g)
      n = std::max(n, static_cast<int>(lists[static_cast<std::size_t>(g)].size()));
    return n;
  }
  int total_nnz(int active) const {
    int n = 0;
    for (int g = 0; g < active; ++g)
      n += static_cast<int>(lists[static_cast<std::size_t>(g)].size());
    return n;
  }
};

// The whole stream for one (lane, OFM group).
struct LaneStream {
  int channels = 0;  // lane-local channel count
  int wtiles = 0;    // weight tiles per channel (wtiles_y * wtiles_x)
  int active = 0;    // concurrent filters
  // Ternary streams (paper future work: "binarized, ternary ... networks")
  // carry only a sign with each offset: 1 byte per entry instead of 2,
  // halving weight traffic and scratchpad pressure.
  bool ternary = false;
  std::vector<LaneTileGroup> groups;  // [ci * wtiles + wt]
  std::int64_t total_bytes = 0;

  const LaneTileGroup& group(int ci, int wt) const {
    TSCA_CHECK(ci >= 0 && ci < channels && wt >= 0 && wt < wtiles);
    return groups[static_cast<std::size_t>(ci) * wtiles + wt];
  }
  std::int64_t total_words() const {
    return (total_bytes + 15) / 16;
  }
};

// Builds the stream for output channels [oc0, oc0+active) and the IFM
// channels { lane, lane+lanes, lane+2·lanes, … } of `packed`.  With
// `ternary`, every non-zero weight must be ±1 (see is_ternary).
LaneStream build_lane_stream(const PackedFilters& packed, int oc0, int active,
                             int lane, int lanes, bool ternary = false);

// True when every packed weight is ±1 — such layers are streamed in the
// dense 1-byte ternary format automatically.
bool is_ternary(const PackedFilters& packed);

// Byte serialization of a lane stream (the image DMA'd into the bank).
std::vector<std::uint8_t> serialize_lane_stream(const LaneStream& stream);

// Inverse of serialize_lane_stream; geometry must be supplied (it travels in
// the CONV instruction, not the stream).
LaneStream parse_lane_stream(const std::vector<std::uint8_t>& bytes,
                             int channels, int wtiles, int active,
                             bool ternary = false);

// Streaming parse from an arbitrary byte source (e.g. lazily read bank
// words); `take` is called once per consumed byte.
LaneStream parse_lane_stream_from(const std::function<std::uint8_t()>& take,
                                  int channels, int wtiles, int active,
                                  bool ternary = false);

}  // namespace tsca::pack
