// Zero-skip weight packing (paper §III-B).
//
// For a given CNN model the non-zero weights and their intra-tile offsets are
// packed offline, once.  During inference the accelerator reads the packed
// stream straight into scratchpad memory and applies one non-zero weight per
// clock cycle — no cycles are spent on zero weights.
//
// Packing granularity: each (output-channel, input-channel) filter plane is
// covered by a grid of 4×4 *weight tiles* (one tile for the ubiquitous 3×3
// kernels).  Each weight tile packs to a list of (sm8 value, offset) pairs,
// offset = intra-tile position y*4+x, sorted by offset.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"
#include "pack/tile.hpp"
#include "quant/sm8.hpp"

namespace tsca::pack {

// One packed non-zero weight: sign+magnitude value and intra-tile offset.
struct PackedEntry {
  quant::Sm8Bits value = 0;
  std::uint8_t offset = 0;  // 0..15, y*4+x within the weight tile

  bool operator==(const PackedEntry&) const = default;
};

// All packed weights of one convolution layer.
class PackedFilters {
 public:
  PackedFilters() = default;
  PackedFilters(nn::FilterShape shape, int wtiles_y, int wtiles_x);

  const nn::FilterShape& shape() const { return shape_; }
  int wtiles_y() const { return wtiles_y_; }
  int wtiles_x() const { return wtiles_x_; }

  std::vector<PackedEntry>& list(int oc, int ic, int wty, int wtx) {
    return lists_[list_index(oc, ic, wty, wtx)];
  }
  const std::vector<PackedEntry>& list(int oc, int ic, int wty,
                                       int wtx) const {
    return lists_[list_index(oc, ic, wty, wtx)];
  }

  // Non-zero count of one weight tile.
  int nnz(int oc, int ic, int wty, int wtx) const {
    return static_cast<int>(list(oc, ic, wty, wtx).size());
  }

  std::int64_t total_nonzeros() const;

  // Serialized size in bytes: per weight tile 1 count byte + 2 bytes/entry.
  // This is the stream the data-staging units unpack from SRAM; the byte
  // count drives the weight-unpacking overhead in the performance model.
  std::int64_t serialized_bytes() const;

  std::size_t list_index(int oc, int ic, int wty, int wtx) const;

 private:
  nn::FilterShape shape_;
  int wtiles_y_ = 0;
  int wtiles_x_ = 0;
  std::vector<std::vector<PackedEntry>> lists_;
};

// Packs a quantized filter bank.  Offsets within every list are strictly
// increasing; zero weights never appear.
PackedFilters pack_filters(const nn::FilterBankI8& bank);

// Exact inverse of pack_filters (zeros restored).
nn::FilterBankI8 unpack_filters(const PackedFilters& packed);

// Byte-stream (de)serialization — the format stored in SRAM banks:
//   for each (oc, ic, wty, wtx) in lexicographic order:
//     u8 count, then count × { u8 sm8-value, u8 offset }.
std::vector<std::uint8_t> serialize(const PackedFilters& packed);
PackedFilters deserialize(nn::FilterShape shape,
                          const std::vector<std::uint8_t>& bytes);

}  // namespace tsca::pack
