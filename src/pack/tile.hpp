// 4×4 tile data layout (paper Fig. 2).
//
// Feature maps are organised into tiles of 4×4 values stored row-major
// ("row-major of tiles; row-major within a tile"), per channel.  An SRAM bank
// delivers one whole tile (16 values) per cycle, which is what makes the
// zero-skip datapath work: one weight × 16 feature-map values each cycle.
//
// A *stripe* is a band of tile rows spanning the full width of a feature map;
// striping subdivides layers too large for on-chip SRAM (see
// driver/compiler.hpp for stripe planning).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace tsca::pack {

inline constexpr int kTileDim = 4;                      // 4×4 values
inline constexpr int kTileSize = kTileDim * kTileDim;   // 16 values

// Number of tiles covering `extent` values (ceiling division).
inline int tiles_for(int extent) {
  TSCA_CHECK(extent >= 0);
  return (extent + kTileDim - 1) / kTileDim;
}

// One 4×4 tile of int8 values, row-major: index = y*4 + x.
struct Tile {
  std::array<std::int8_t, kTileSize> v{};

  std::int8_t& at(int y, int x) {
    TSCA_CHECK(y >= 0 && y < kTileDim && x >= 0 && x < kTileDim);
    return v[static_cast<std::size_t>(y) * kTileDim + x];
  }
  std::int8_t at(int y, int x) const {
    TSCA_CHECK(y >= 0 && y < kTileDim && x >= 0 && x < kTileDim);
    return v[static_cast<std::size_t>(y) * kTileDim + x];
  }
  bool operator==(const Tile&) const = default;
};

// One 4×4 tile of 32-bit accumulator values.
struct TileAcc {
  std::array<std::int32_t, kTileSize> v{};
  bool operator==(const TileAcc&) const = default;
};

// A feature map in tiled layout.  Spatial extents are padded up to tile
// multiples with zeros; the logical (unpadded) shape is retained.
class TiledFm {
 public:
  TiledFm() = default;
  explicit TiledFm(nn::FmShape shape)
      : shape_(shape),
        tiles_y_(tiles_for(shape.h)),
        tiles_x_(tiles_for(shape.w)),
        tiles_(static_cast<std::size_t>(shape.c) * tiles_y_ * tiles_x_) {}

  const nn::FmShape& shape() const { return shape_; }
  int channels() const { return shape_.c; }
  int tiles_y() const { return tiles_y_; }
  int tiles_x() const { return tiles_x_; }
  std::size_t tile_count() const { return tiles_.size(); }

  // Tile index in storage order: channel-major, then tile row, then tile col.
  std::size_t tile_index(int c, int ty, int tx) const {
    TSCA_CHECK(c >= 0 && c < shape_.c && ty >= 0 && ty < tiles_y_ && tx >= 0 &&
                   tx < tiles_x_,
               "tile (" << c << ',' << ty << ',' << tx << ')');
    return (static_cast<std::size_t>(c) * tiles_y_ + ty) * tiles_x_ + tx;
  }

  Tile& tile(int c, int ty, int tx) { return tiles_[tile_index(c, ty, tx)]; }
  const Tile& tile(int c, int ty, int tx) const {
    return tiles_[tile_index(c, ty, tx)];
  }

  // Value access through the tiled layout (y/x in logical coordinates).
  std::int8_t value(int c, int y, int x) const {
    return tiles_[tile_index(c, y / kTileDim, x / kTileDim)].at(y % kTileDim,
                                                                x % kTileDim);
  }

  std::vector<Tile>& tiles() { return tiles_; }
  const std::vector<Tile>& tiles() const { return tiles_; }

  // Re-shapes in place: contents equal a freshly constructed TiledFm(shape)
  // (every tile zero), but the tile storage's capacity is reused — no
  // allocation once the map has grown to the largest shape it has carried.
  // This is what lets the warm serving path recycle feature maps across
  // layers and batches instead of constructing new ones.
  void reset(nn::FmShape shape) {
    shape_ = shape;
    tiles_y_ = tiles_for(shape.h);
    tiles_x_ = tiles_for(shape.w);
    tiles_.assign(
        static_cast<std::size_t>(shape.c) * tiles_y_ * tiles_x_, Tile{});
  }

  bool operator==(const TiledFm&) const = default;

 private:
  nn::FmShape shape_;
  int tiles_y_ = 0;
  int tiles_x_ = 0;
  std::vector<Tile> tiles_;
};

// Linear (CHW) ↔ tiled conversions.  to_tiled pads with zeros.
TiledFm to_tiled(const nn::FeatureMapI8& fm);
// Reuse form: resets `out` to fm's shape (recycling its storage) and fills
// it.  Identical result to the returning form.
void to_tiled(const nn::FeatureMapI8& fm, TiledFm& out);
nn::FeatureMapI8 from_tiled(const TiledFm& tiled);

// Reads the 4×4 region of `fm` whose top-left corner is (y0, x0) — the
// "four contiguous IFM tiles" window of Fig. 4(a) reads such regions at
// tile-aligned offsets.  Out-of-range positions read as zero.
Tile read_region(const nn::FeatureMapI8& fm, int c, int y0, int x0);

}  // namespace tsca::pack
