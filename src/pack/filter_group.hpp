// Filter grouping for balanced zero-skipping (paper §V, future work).
//
// The accelerator computes four OFM tiles concurrently; at each weight tile
// the group of four filters costs max(4, max_i nnz_i) cycles, so grouping
// filters with dissimilar non-zero counts wastes the skip.  The paper
// suggests "grouping filters in advance according to similarity in
// non-zero-entry counts" as future work; this module implements that pass
// and the benches ablate it (bench_zero_skip).
#pragma once

#include <vector>

#include "pack/weight_pack.hpp"

namespace tsca::pack {

// Grouping strategy for assigning output channels to groups of `group_size`.
enum class GroupPolicy {
  kIdentity,   // natural order (what the baseline accelerator does)
  kSortByNnz,  // sort filters by total non-zero count, group consecutively
};

// Returns a permutation `perm` of output channels such that filters
// perm[4k..4k+3] are computed concurrently.  perm.size() == shape().oc,
// rounded up conceptually — callers pad the final group with repeats of the
// last channel when oc is not a multiple of group_size.
std::vector<int> group_filters(const PackedFilters& packed, GroupPolicy policy,
                               int group_size = 4);

// Cost (in weight-application cycles, ignoring the 4-cycle floor and all
// other overheads) of processing groups under a permutation:
//   sum over groups, ics, weight tiles of max_i nnz.
// Used by tests and the ablation bench to quantify grouping benefit.
std::int64_t grouped_weight_cycles(const PackedFilters& packed,
                                   const std::vector<int>& perm,
                                   int group_size = 4);

}  // namespace tsca::pack
