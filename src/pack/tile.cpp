#include "pack/tile.hpp"

namespace tsca::pack {

TiledFm to_tiled(const nn::FeatureMapI8& fm) {
  TiledFm tiled;
  to_tiled(fm, tiled);
  return tiled;
}

void to_tiled(const nn::FeatureMapI8& fm, TiledFm& out) {
  out.reset(fm.shape());
  for (int c = 0; c < fm.channels(); ++c)
    for (int y = 0; y < fm.height(); ++y)
      for (int x = 0; x < fm.width(); ++x)
        out.tile(c, y / kTileDim, x / kTileDim)
            .at(y % kTileDim, x % kTileDim) = fm.at(c, y, x);
}

nn::FeatureMapI8 from_tiled(const TiledFm& tiled) {
  nn::FeatureMapI8 fm(tiled.shape());
  for (int c = 0; c < fm.channels(); ++c)
    for (int y = 0; y < fm.height(); ++y)
      for (int x = 0; x < fm.width(); ++x)
        fm.at(c, y, x) = tiled.value(c, y, x);
  return fm;
}

Tile read_region(const nn::FeatureMapI8& fm, int c, int y0, int x0) {
  Tile out;
  for (int dy = 0; dy < kTileDim; ++dy) {
    for (int dx = 0; dx < kTileDim; ++dx) {
      const int y = y0 + dy;
      const int x = x0 + dx;
      out.at(dy, dx) = fm.in_range(c, y, x) ? fm.at(c, y, x) : std::int8_t{0};
    }
  }
  return out;
}

}  // namespace tsca::pack
