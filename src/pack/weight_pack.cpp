#include "pack/weight_pack.hpp"

namespace tsca::pack {

PackedFilters::PackedFilters(nn::FilterShape shape, int wtiles_y, int wtiles_x)
    : shape_(shape),
      wtiles_y_(wtiles_y),
      wtiles_x_(wtiles_x),
      lists_(static_cast<std::size_t>(shape.oc) * shape.ic * wtiles_y *
             wtiles_x) {
  TSCA_CHECK(wtiles_y > 0 && wtiles_x > 0);
}

std::size_t PackedFilters::list_index(int oc, int ic, int wty, int wtx) const {
  TSCA_CHECK(oc >= 0 && oc < shape_.oc && ic >= 0 && ic < shape_.ic &&
                 wty >= 0 && wty < wtiles_y_ && wtx >= 0 && wtx < wtiles_x_,
             "packed list (" << oc << ',' << ic << ',' << wty << ',' << wtx
                             << ')');
  return ((static_cast<std::size_t>(oc) * shape_.ic + ic) * wtiles_y_ + wty) *
             wtiles_x_ +
         wtx;
}

std::int64_t PackedFilters::total_nonzeros() const {
  std::int64_t total = 0;
  for (const auto& list : lists_) total += static_cast<std::int64_t>(list.size());
  return total;
}

std::int64_t PackedFilters::serialized_bytes() const {
  return static_cast<std::int64_t>(lists_.size()) + 2 * total_nonzeros();
}

PackedFilters pack_filters(const nn::FilterBankI8& bank) {
  const nn::FilterShape& fs = bank.shape();
  PackedFilters packed(fs, tiles_for(fs.kh), tiles_for(fs.kw));
  for (int oc = 0; oc < fs.oc; ++oc) {
    for (int ic = 0; ic < fs.ic; ++ic) {
      for (int ky = 0; ky < fs.kh; ++ky) {
        for (int kx = 0; kx < fs.kw; ++kx) {
          const std::int8_t w = bank.at(oc, ic, ky, kx);
          if (w == 0) continue;
          const int offset = (ky % kTileDim) * kTileDim + (kx % kTileDim);
          packed.list(oc, ic, ky / kTileDim, kx / kTileDim)
              .push_back({quant::sm8_encode(w),
                          static_cast<std::uint8_t>(offset)});
        }
      }
    }
  }
  return packed;
}

nn::FilterBankI8 unpack_filters(const PackedFilters& packed) {
  const nn::FilterShape& fs = packed.shape();
  nn::FilterBankI8 bank(fs);
  for (int oc = 0; oc < fs.oc; ++oc) {
    for (int ic = 0; ic < fs.ic; ++ic) {
      for (int wty = 0; wty < packed.wtiles_y(); ++wty) {
        for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx) {
          for (const PackedEntry& entry : packed.list(oc, ic, wty, wtx)) {
            const int ky = wty * kTileDim + entry.offset / kTileDim;
            const int kx = wtx * kTileDim + entry.offset % kTileDim;
            TSCA_CHECK(ky < fs.kh && kx < fs.kw,
                       "packed offset outside kernel: oc=" << oc);
            bank.at(oc, ic, ky, kx) =
                static_cast<std::int8_t>(quant::sm8_decode(entry.value));
          }
        }
      }
    }
  }
  return bank;
}

std::vector<std::uint8_t> serialize(const PackedFilters& packed) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(static_cast<std::size_t>(packed.serialized_bytes()));
  const nn::FilterShape& fs = packed.shape();
  for (int oc = 0; oc < fs.oc; ++oc) {
    for (int ic = 0; ic < fs.ic; ++ic) {
      for (int wty = 0; wty < packed.wtiles_y(); ++wty) {
        for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx) {
          const auto& list = packed.list(oc, ic, wty, wtx);
          TSCA_CHECK(list.size() <= kTileSize);
          bytes.push_back(static_cast<std::uint8_t>(list.size()));
          for (const PackedEntry& entry : list) {
            bytes.push_back(entry.value);
            bytes.push_back(entry.offset);
          }
        }
      }
    }
  }
  return bytes;
}

PackedFilters deserialize(nn::FilterShape shape,
                          const std::vector<std::uint8_t>& bytes) {
  PackedFilters packed(shape, tiles_for(shape.kh), tiles_for(shape.kw));
  std::size_t pos = 0;
  auto take = [&]() -> std::uint8_t {
    TSCA_CHECK(pos < bytes.size(), "truncated packed-weight stream");
    return bytes[pos++];
  };
  for (int oc = 0; oc < shape.oc; ++oc) {
    for (int ic = 0; ic < shape.ic; ++ic) {
      for (int wty = 0; wty < packed.wtiles_y(); ++wty) {
        for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx) {
          const int count = take();
          TSCA_CHECK(count <= kTileSize, "corrupt packed-weight count");
          auto& list = packed.list(oc, ic, wty, wtx);
          list.reserve(static_cast<std::size_t>(count));
          int prev_offset = -1;
          for (int k = 0; k < count; ++k) {
            PackedEntry entry;
            entry.value = take();
            entry.offset = take();
            TSCA_CHECK(entry.offset < kTileSize, "corrupt packed offset");
            TSCA_CHECK(static_cast<int>(entry.offset) > prev_offset,
                       "packed offsets not strictly increasing");
            TSCA_CHECK(quant::sm8_decode(entry.value) != 0,
                       "zero weight in packed stream");
            prev_offset = entry.offset;
            list.push_back(entry);
          }
        }
      }
    }
  }
  TSCA_CHECK(pos == bytes.size(), "trailing bytes in packed-weight stream");
  return packed;
}

}  // namespace tsca::pack
