#include "tune/autotuner.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <thread>
#include <unordered_set>

#include "driver/accelerator_pool.hpp"

namespace tsca::tune {

namespace {

int default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

}  // namespace

Autotuner::Autotuner(const driver::StudyNetwork& network, TuneOptions options)
    : network_(network), options_(std::move(options)) {
  if (options_.workers <= 0) options_.workers = default_workers();
}

bool weakly_dominates(const CandidateEval& a, const CandidateEval& b) {
  return a.gops >= b.gops && a.gops_per_w >= b.gops_per_w &&
         a.area_alms <= b.area_alms;
}

std::vector<std::size_t> pareto_frontier(
    const std::vector<CandidateEval>& evals) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < evals.size() && !dominated; ++j) {
      if (j == i) continue;
      if (!weakly_dominates(evals[j], evals[i])) continue;
      // Strict dominance knocks i out; for objective-equal ties (distinct
      // configs, same figures of merit) only the earliest-generated point
      // represents the equivalence class on the frontier.
      const bool strict = evals[j].gops > evals[i].gops ||
                          evals[j].gops_per_w > evals[i].gops_per_w ||
                          evals[j].area_alms < evals[i].area_alms;
      if (strict || j < i) dominated = true;
    }
    if (!dominated) frontier.push_back(i);
  }
  std::sort(frontier.begin(), frontier.end(),
            [&](std::size_t a, std::size_t b) {
              if (evals[a].area_alms != evals[b].area_alms)
                return evals[a].area_alms < evals[b].area_alms;
              if (evals[a].gops != evals[b].gops)
                return evals[a].gops > evals[b].gops;
              return a < b;
            });
  return frontier;
}

TuneResult Autotuner::run() {
  obs::Counter* evaluated_ctr =
      options_.metrics ? &options_.metrics->counter("tune.configs_evaluated")
                       : nullptr;
  obs::Counter* pruned_ctr =
      options_.metrics ? &options_.metrics->counter("tune.configs_pruned")
                       : nullptr;
  obs::Histogram* eval_latency =
      options_.metrics ? &options_.metrics->histogram("tune.eval_latency_us")
                       : nullptr;

  TuneResult result;
  std::unordered_set<std::string> seen;

  // The pool only supplies worker threads here — evaluation is pure model
  // math, so the contexts' simulated accelerators and DDR stay untouched
  // (1 MiB keeps the per-context staging allocation token-sized).
  driver::AcceleratorPool pool(
      core::ArchConfig::k256_opt(),
      {.workers = options_.workers, .dram_bytes = 1u << 20});

  // Admits a candidate batch: dedup on the canonical key, prune on fit,
  // evaluate survivors in parallel, append in generation order.
  const auto evaluate_batch = [&](std::vector<core::ArchConfig> batch) {
    std::vector<core::ArchConfig> fresh;
    for (core::ArchConfig& cfg : batch) {
      ++result.considered;
      if (!seen.insert(config_key(cfg)).second) {
        ++result.deduped;
        continue;
      }
      const FitReport fit = check_fit(cfg, options_.device,
                                      options_.constraints);
      if (!fit.fits) {
        ++result.pruned;
        if (pruned_ctr != nullptr) pruned_ctr->add(1);
        continue;
      }
      fresh.push_back(std::move(cfg));
    }
    const std::size_t base = result.evaluated.size();
    result.evaluated.resize(base + fresh.size());
    pool.parallel_for(fresh.size(), [&](driver::AcceleratorPool::Context&,
                                        std::size_t i) {
      const auto t0 = std::chrono::steady_clock::now();
      result.evaluated[base + i] = evaluate_config(
          fresh[i], network_, options_.device, options_.constraints);
      if (eval_latency != nullptr)
        eval_latency->observe(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      if (evaluated_ctr != nullptr) evaluated_ctr->add(1);
    });
  };

  // Phase 1: seeds + grid.
  std::vector<core::ArchConfig> initial;
  if (options_.include_paper_variants)
    for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants())
      initial.push_back(cfg);
  for (core::ArchConfig& cfg : options_.space.grid())
    initial.push_back(std::move(cfg));
  evaluate_batch(std::move(initial));
  result.frontier = pareto_frontier(result.evaluated);

  // Phase 2: seeded local refinement around the frontier.  The Rng is
  // consumed serially in frontier order, so the mutation sequence (and with
  // it the whole search) is a function of the seed alone.
  Rng rng(options_.seed);
  for (int round = 0; round < options_.refine_rounds; ++round) {
    std::vector<core::ArchConfig> mutations;
    for (const std::size_t fi : result.frontier) {
      const core::ArchConfig& base = result.evaluated[fi].config;
      for (int m = 0; m < options_.mutations_per_point; ++m)
        mutations.push_back(options_.space.mutate(base, rng));
    }
    evaluate_batch(std::move(mutations));
    result.frontier = pareto_frontier(result.evaluated);
  }
  return result;
}

void write_frontier_table(std::ostream& os, const TuneResult& result) {
  write_eval_header(os);
  for (const std::size_t fi : result.frontier)
    write_eval_row(os, result.evaluated[fi]);
}

void write_result_json(std::ostream& os, const TuneResult& result,
                       bool include_evaluated) {
  os << "{\n  \"considered\": " << result.considered
     << ",\n  \"deduped\": " << result.deduped
     << ",\n  \"pruned\": " << result.pruned
     << ",\n  \"evaluated\": " << result.evaluated.size()
     << ",\n  \"frontier_size\": " << result.frontier.size()
     << ",\n  \"frontier\": [\n";
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    os << "    ";
    write_eval_json(os, result.evaluated[result.frontier[i]]);
    os << (i + 1 == result.frontier.size() ? "\n" : ",\n");
  }
  os << "  ]";
  if (include_evaluated) {
    os << ",\n  \"candidates\": [\n";
    for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
      os << "    ";
      write_eval_json(os, result.evaluated[i]);
      os << (i + 1 == result.evaluated.size() ? "\n" : ",\n");
    }
    os << "  ]";
  }
  os << "\n}\n";
}

}  // namespace tsca::tune
