// Heterogeneous-fleet capacity planning over a Pareto frontier.
//
// Turns the autotuner's frontier into a deployment decision: given a traffic
// model (per-class arrival rates, deadlines and per-request work — the same
// deterministic Poisson arrival streams serve::LoadGenerator uses) and an
// area/power budget, FleetPlanner picks how many instances of which variants
// to build, and the FleetRouter simulation plays offered load against that
// fleet, routing each request by deadline slack to the *cheapest* (lowest
// FPGA-power) variant instance that can still make its deadline, and
// shedding requests no instance can finish in time — the same
// feasibility-horizon shedding discipline the serve subsystem's
// BatchScheduler applies (tests/test_tune.cpp cross-checks the two).
//
// Everything here is deterministic: arrivals are seeded, the simulation is
// event-ordered in integer microseconds, and latency percentiles are exact
// (computed from the sorted completion times, not histogram buckets).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tune/evaluate.hpp"

namespace tsca::tune {

// One request class: an SLO bucket with its own arrival rate, deadline and
// per-request work (dense MACs, the paper's "ops" accounting).
struct TrafficClass {
  std::string name;
  double rate_rps = 0.0;
  std::int64_t deadline_us = 0;
  std::int64_t macs = 0;
};

struct TrafficModel {
  std::vector<TrafficClass> classes;
  double window_s = 1.0;   // simulated arrival window
  std::uint64_t seed = 1;  // arrival-stream seed (per class: seed + index)
};

// Modelled service time of one class-`cls` request on `variant`,
// microseconds (≥ 1): macs / network-GOPS.
std::int64_t service_us(const CandidateEval& variant, const TrafficClass& cls);

struct FleetBudget {
  int max_alms = 0;          // summed across instances
  double max_power_w = 0.0;  // summed FPGA watts across instances
};

struct FleetGroup {
  std::size_t candidate = 0;  // index into the variant set handed to plan()
  int count = 0;
};

struct FleetPlan {
  std::vector<FleetGroup> groups;  // ordered by candidate index
  int total_instances = 0;
  int total_alms = 0;
  double total_power_w = 0.0;
  // Planner-side estimate of mix-weighted serving capacity (rps) — the
  // router simulation is the ground truth, this is the planning signal.
  double planned_capacity_rps = 0.0;
  // Demand (x headroom) the budget could not cover (0 = fully planned).
  double uncovered_rps = 0.0;
};

struct PlanOptions {
  // Plan for this multiple of the offered rates (capacity headroom for
  // overload); the greedy loop keeps adding instances until demand x
  // headroom is covered or no affordable instance helps.
  double headroom = 2.0;
};

// Greedy marginal-coverage planner: each step adds the instance with the
// best (newly covered rps) / (budget fraction consumed), allocating each
// instance's capacity to the tightest-deadline classes it can serve first.
// Deterministic: ties break on the lower candidate index.
FleetPlan plan_fleet(const std::vector<CandidateEval>& variants,
                     const TrafficModel& traffic, const FleetBudget& budget,
                     const PlanOptions& options = {});

// Strongest single-variant fleet under the same budget: the variant must
// meet every class's deadline, replicated as many times as the budget
// allows; picks the candidate maximizing mix-weighted capacity.  The
// baseline the heterogeneous plan is benchmarked against.
FleetPlan plan_homogeneous(const std::vector<CandidateEval>& variants,
                           const TrafficModel& traffic,
                           const FleetBudget& budget);

struct RouterPolicy {
  // Route by deadline slack to the cheapest instance that can still make
  // the deadline, shedding infeasible requests.  false = the naive
  // baseline: earliest-free instance, no shedding (late work executes).
  bool slack_routing = true;
};

struct FleetClassReport {
  std::string name;
  int submitted = 0;
  int ok = 0;    // completed within deadline
  int shed = 0;  // no instance could make the deadline; never executed
  int late = 0;  // executed but finished past the deadline (naive policy)
  std::int64_t p50_us = 0;  // exact percentiles over completed requests
  std::int64_t p99_us = 0;
};

struct FleetReport {
  std::vector<FleetClassReport> classes;
  int submitted = 0;
  int ok = 0;
  int shed = 0;
  int late = 0;
  std::int64_t wall_us = 0;   // last arrival/completion
  double goodput_rps = 0.0;   // ok / wall
  double utilization = 0.0;   // busy time / (instances x wall)
};

// Plays `load_multiplier` x the traffic model's rates against the planned
// fleet.  Pure function of its arguments (seeded arrivals, integer-µs event
// simulation) — same inputs, same report, bit for bit.
FleetReport simulate_fleet(const std::vector<CandidateEval>& variants,
                           const FleetPlan& plan, const TrafficModel& traffic,
                           double load_multiplier,
                           const RouterPolicy& policy = {});

void write_plan_table(std::ostream& os,
                      const std::vector<CandidateEval>& variants,
                      const FleetPlan& plan);
void write_fleet_report_json(std::ostream& os, const FleetReport& report);

}  // namespace tsca::tune
