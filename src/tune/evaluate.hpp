// Candidate evaluation for design-space exploration (`src/tune/`).
//
// One CandidateEval bundles everything the autotuner, the fleet planner and
// the examples need to compare architecture variants: the validated
// performance model's whole-network numbers (driver::evaluate_variant), the
// structural area report, the activity-based power estimate, and the derived
// figures of merit the paper plots (GOPS, GOPS/W) plus device-fit
// utilizations.  `evaluate_config` is the single shared entry point —
// examples/arch_explorer.cpp and the autotuner both call it instead of
// duplicating the perf/area/power/fit plumbing inline.
//
// Evaluation is a pure function of (config, network, device, constraints):
// no clocks, no ambient state — the property the autotuner's determinism
// contract rests on.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "driver/study.hpp"
#include "model/area.hpp"
#include "model/power.hpp"

namespace tsca::tune {

// Device-fit constraints: a candidate whose post-place utilization would
// exceed these is pruned before (or flagged after) evaluation.  The ALM
// ceiling is below 1.0 because real designs stop routing long before the
// fabric is full (the paper's 512-opt "routed, with congestion" at ~90 %).
struct FitConstraints {
  double max_alm_utilization = 0.85;
  double max_dsp_utilization = 1.0;
  double max_m20k_utilization = 1.0;
};

// A fully evaluated design point.
struct CandidateEval {
  core::ArchConfig config;
  driver::VariantResult perf;
  model::AreaReport area;
  model::PowerEstimate power;

  // Derived figures of merit (the Pareto axes).
  double gops = 0.0;         // whole-network effective GOPS (perf.network_gops)
  double gops_per_w = 0.0;   // network GOPS per FPGA watt
  int area_alms = 0;         // total ALMs (the area objective)

  double alm_util = 0.0;
  double dsp_util = 0.0;
  double m20k_util = 0.0;
  bool fits = false;
};

// Area/power/fit only — cheap (no performance model walk).  Used by the
// autotuner to prune non-fitting candidates before paying for evaluation.
struct FitReport {
  model::AreaReport area;
  double alm_util = 0.0;
  double dsp_util = 0.0;
  double m20k_util = 0.0;
  bool fits = false;
};

FitReport check_fit(const core::ArchConfig& cfg, const model::FpgaDevice& device,
                    const FitConstraints& constraints = {});

// Full evaluation: performance model over `network`, area, power at peak
// activity, derived metrics, fit flags.
CandidateEval evaluate_config(const core::ArchConfig& cfg,
                              const driver::StudyNetwork& network,
                              const model::FpgaDevice& device,
                              const FitConstraints& constraints = {});

// Human-readable row (the arch_explorer table format): name, MACs/cycle,
// clock, GOPS, peak GOPS, utilizations, power, GOPS/W, fit marker.
void write_eval_row(std::ostream& os, const CandidateEval& eval);
void write_eval_header(std::ostream& os);

// Machine-readable row: one JSON object (no trailing newline).  Doubles are
// printed with enough digits to be bit-faithful, so two identical
// evaluations serialize to identical bytes (the reproducibility contract).
void write_eval_json(std::ostream& os, const CandidateEval& eval);

}  // namespace tsca::tune
