#include "tune/evaluate.hpp"

#include <cmath>
#include <ostream>

namespace tsca::tune {

namespace {

// Doubles in the JSON output must serialize identically for identical
// inputs.  %.17g round-trips any double exactly; trailing-digit noise is
// fine because the same bits always print the same bytes.
void json_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

FitReport check_fit(const core::ArchConfig& cfg,
                    const model::FpgaDevice& device,
                    const FitConstraints& constraints) {
  FitReport fit;
  fit.area = model::estimate_area(cfg);
  fit.alm_util = fit.area.alm_utilization(device);
  fit.dsp_util = fit.area.dsp_utilization(device);
  fit.m20k_util = fit.area.m20k_utilization(device);
  fit.fits = fit.alm_util <= constraints.max_alm_utilization &&
             fit.dsp_util <= constraints.max_dsp_utilization &&
             fit.m20k_util <= constraints.max_m20k_utilization;
  return fit;
}

CandidateEval evaluate_config(const core::ArchConfig& cfg,
                              const driver::StudyNetwork& network,
                              const model::FpgaDevice& device,
                              const FitConstraints& constraints) {
  CandidateEval eval;
  eval.config = cfg;
  eval.perf = driver::evaluate_variant(cfg, network);
  eval.area = model::estimate_area(cfg);
  eval.power = model::estimate_power(cfg, eval.area,
                                     model::Activity::peak(cfg), device);
  eval.gops = eval.perf.network_gops;
  eval.gops_per_w = eval.power.fpga_w() > 0.0
                        ? eval.perf.network_gops / eval.power.fpga_w()
                        : 0.0;
  eval.area_alms = eval.area.total_alms;
  eval.alm_util = eval.area.alm_utilization(device);
  eval.dsp_util = eval.area.dsp_utilization(device);
  eval.m20k_util = eval.area.m20k_utilization(device);
  eval.fits = eval.alm_util <= constraints.max_alm_utilization &&
              eval.dsp_util <= constraints.max_dsp_utilization &&
              eval.m20k_util <= constraints.max_m20k_utilization;
  return eval;
}

void write_eval_header(std::ostream& os) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-14s %4s %5s %8s %7s  %6s %6s %6s  %6s %7s\n", "variant",
                "MACs", "MHz", "GOPS", "peak", "ALM", "DSP", "M20K", "power",
                "GOPS/W");
  os << buf;
}

void write_eval_row(std::ostream& os, const CandidateEval& eval) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s %4d @%3.0f  %7.1f %7.1f  %5.1f%% %5.1f%% %5.1f%%  "
                "%5.2fW %7.1f  %s\n",
                eval.config.name.c_str(), eval.config.macs_per_cycle(),
                eval.config.clock_mhz, eval.gops, eval.perf.best_gops,
                100 * eval.alm_util, 100 * eval.dsp_util, 100 * eval.m20k_util,
                eval.power.fpga_w(), eval.gops_per_w,
                eval.fits ? "" : "(does not fit!)");
  os << buf;
}

void write_eval_json(std::ostream& os, const CandidateEval& eval) {
  const core::ArchConfig& cfg = eval.config;
  os << "{\"name\": \"" << cfg.name << "\", \"lanes\": " << cfg.lanes
     << ", \"group\": " << cfg.group << ", \"instances\": " << cfg.instances
     << ", \"bank_words\": " << cfg.bank_words
     << ", \"weight_scratch_words\": " << cfg.weight_scratch_words
     << ", \"fifo_depth\": " << cfg.fifo_depth
     << ", \"optimized_build\": " << (cfg.optimized_build ? "true" : "false")
     << ", \"clock_mhz\": ";
  json_double(os, cfg.clock_mhz);
  os << ", \"macs_per_cycle\": " << cfg.macs_per_cycle() << ", \"gops\": ";
  json_double(os, eval.gops);
  os << ", \"best_gops\": ";
  json_double(os, eval.perf.best_gops);
  os << ", \"gops_per_w\": ";
  json_double(os, eval.gops_per_w);
  os << ", \"mean_efficiency\": ";
  json_double(os, eval.perf.mean_efficiency);
  os << ", \"area_alms\": " << eval.area_alms
     << ", \"area_dsp\": " << eval.area.total_dsp
     << ", \"area_m20k\": " << eval.area.total_m20k << ", \"fpga_w\": ";
  json_double(os, eval.power.fpga_w());
  os << ", \"board_w\": ";
  json_double(os, eval.power.board_w);
  os << ", \"alm_util\": ";
  json_double(os, eval.alm_util);
  os << ", \"dsp_util\": ";
  json_double(os, eval.dsp_util);
  os << ", \"m20k_util\": ";
  json_double(os, eval.m20k_util);
  os << ", \"fits\": " << (eval.fits ? "true" : "false") << "}";
}

}  // namespace tsca::tune
