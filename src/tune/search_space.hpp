// The autotuner's design space over core::ArchConfig.
//
// The paper explored four hand-picked variants (16-unopt … 512-opt) produced
// by "software and constraint changes alone" (§V).  This file makes that
// space explicit: discrete axes for the datapath shape (lanes/group pairs,
// instances), the memory system (bank size, weight scratchpad), and the
// build/timing knobs (optimized build, clock target), plus two generation
// primitives the search driver composes:
//
//   * grid()   — the deterministic cartesian enumeration (fixed nested-loop
//                order, so candidate i is the same config on every run);
//   * mutate() — a seeded local move from an existing config (one axis
//                nudged a step), for refining around the Pareto frontier.
//
// Clock targets are tied to the build flavour the way the paper's timing
// closure was: unoptimized builds close at low clocks only (55–100 MHz),
// optimized builds reach 120–200 MHz.  mutate() keeps the clock inside the
// flavour's band.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "util/rng.hpp"

namespace tsca::tune {

struct SearchSpace {
  std::vector<int> lanes = {1, 2, 4};  // lanes == group (paper pairing)
  std::vector<int> instances = {1, 2, 4};
  std::vector<int> bank_words = {8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024,
                                 128 * 1024};
  std::vector<int> weight_scratch_words = {16, 64, 256, 1024};
  // Clock bands per build flavour (MHz).
  std::vector<double> unopt_clocks = {55.0, 100.0};
  std::vector<double> opt_clocks = {120.0, 150.0, 200.0};
  // Clock bounds mutate() clamps to, per flavour.
  double unopt_clock_min = 40.0, unopt_clock_max = 110.0;
  double opt_clock_min = 100.0, opt_clock_max = 220.0;

  // A smaller space for smoke runs (--quick): the paper's axes only.
  static SearchSpace quick();

  // Full cartesian product in fixed order.  Every config validates; names
  // are systematic ("<macs>@<clock><o|u>-b<bank>-w<scratch>").
  std::vector<core::ArchConfig> grid() const;

  // One local move from `base`: a uniformly chosen axis steps to a
  // neighbouring value (clock jitters ±10 % inside the flavour band, sizes
  // halve/double, lanes/instances step by one).  Deterministic in `rng`.
  core::ArchConfig mutate(const core::ArchConfig& base, Rng& rng) const;
};

// Canonical identity of a config: every field that affects evaluation
// (everything except `name`).  Two configs with equal keys are the same
// design point — the search driver dedups on this.
std::string config_key(const core::ArchConfig& cfg);

// Systematic display name for a generated candidate.
std::string config_name(const core::ArchConfig& cfg);

}  // namespace tsca::tune
