#include "tune/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>

#include "serve/load_generator.hpp"
#include "util/check.hpp"

namespace tsca::tune {

namespace {

// Exact nearest-rank percentile over a sorted sample (0 when empty).
std::int64_t percentile(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct Instance {
  std::size_t candidate = 0;
  std::int64_t free_at = 0;
  std::int64_t busy_us = 0;
};

std::vector<Instance> expand(const FleetPlan& plan) {
  std::vector<Instance> instances;
  for (const FleetGroup& g : plan.groups)
    for (int i = 0; i < g.count; ++i)
      instances.push_back({g.candidate, 0, 0});
  return instances;
}

}  // namespace

std::int64_t service_us(const CandidateEval& variant,
                        const TrafficClass& cls) {
  TSCA_CHECK(variant.gops > 0.0, "variant has no modelled throughput");
  // gops is effective GMAC/s; macs / (gops x 1e9) seconds = macs/(gops x 1e3) us.
  const double us =
      static_cast<double>(cls.macs) / (variant.gops * 1e3);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(us)));
}

FleetPlan plan_fleet(const std::vector<CandidateEval>& variants,
                     const TrafficModel& traffic, const FleetBudget& budget,
                     const PlanOptions& options) {
  TSCA_CHECK(budget.max_alms > 0 && budget.max_power_w > 0.0);
  TSCA_CHECK(!traffic.classes.empty());

  // Classes in tightest-deadline-first order: an instance's capacity goes to
  // the hardest-to-serve demand before the bulk.
  std::vector<std::size_t> order(traffic.classes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (traffic.classes[a].deadline_us != traffic.classes[b].deadline_us)
      return traffic.classes[a].deadline_us < traffic.classes[b].deadline_us;
    return a < b;
  });

  std::vector<double> remaining;
  for (const TrafficClass& cls : traffic.classes)
    remaining.push_back(cls.rate_rps * options.headroom);

  FleetPlan plan;
  std::map<std::size_t, int> counts;
  double covered_total = 0.0;

  // Marginal coverage of adding one instance of `v`, written into `takes`
  // (per-class rps) when `commit`.
  const auto coverage = [&](const CandidateEval& v,
                            std::vector<double>* takes) {
    double cap_frac = 1.0;
    double covered = 0.0;
    for (const std::size_t c : order) {
      const TrafficClass& cls = traffic.classes[c];
      const std::int64_t t_us = service_us(v, cls);
      if (t_us > cls.deadline_us) continue;  // can never make this deadline
      const double inst_rps = cap_frac * 1e6 / static_cast<double>(t_us);
      const double take = std::min(remaining[c], inst_rps);
      if (take <= 0.0) continue;
      covered += take;
      cap_frac -= take * static_cast<double>(t_us) / 1e6;
      if (takes != nullptr) (*takes)[c] = take;
      if (cap_frac <= 0.0) break;
    }
    return covered;
  };

  // One greedy step: among affordable variants (optionally restricted to
  // those that cover `must_cover`), add the one with the best newly covered
  // rps per budget fraction consumed.  Returns false when no candidate
  // helps.
  const auto add_best = [&](std::size_t must_cover) {
    double best_score = 0.0;
    std::size_t best = variants.size();
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const CandidateEval& v = variants[i];
      if (plan.total_alms + v.area_alms > budget.max_alms) continue;
      if (plan.total_power_w + v.power.fpga_w() > budget.max_power_w)
        continue;
      if (must_cover < traffic.classes.size() &&
          service_us(v, traffic.classes[must_cover]) >
              traffic.classes[must_cover].deadline_us)
        continue;
      const double covered = coverage(v, nullptr);
      if (covered <= 1e-9) continue;
      const double cost_frac = std::max(
          static_cast<double>(v.area_alms) /
              static_cast<double>(budget.max_alms),
          v.power.fpga_w() / budget.max_power_w);
      const double score = covered / std::max(cost_frac, 1e-12);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == variants.size()) return false;
    std::vector<double> takes(traffic.classes.size(), 0.0);
    covered_total += coverage(variants[best], &takes);
    for (std::size_t c = 0; c < takes.size(); ++c) remaining[c] -= takes[c];
    counts[best] += 1;
    plan.total_instances += 1;
    plan.total_alms += variants[best].area_alms;
    plan.total_power_w += variants[best].power.fpga_w();
    return true;
  };

  // Stage 1 — cover classes tightest deadline first, restricted to variants
  // that can actually serve the class under construction.  Without this
  // staging, the greedy would spend the whole budget on the cheapest bulk
  // capacity and leave no room for the (larger) variants the tight class
  // needs.
  for (const std::size_t c : order)
    while (remaining[c] > 1e-9)
      if (!add_best(c)) break;
  // Stage 2 — spend any leftover budget on whatever still covers demand.
  while (add_best(traffic.classes.size())) {
  }
  for (std::size_t c = 0; c < remaining.size(); ++c)
    plan.uncovered_rps += std::max(0.0, remaining[c]);

  for (const auto& [candidate, count] : counts)
    plan.groups.push_back({candidate, count});
  plan.planned_capacity_rps = covered_total;
  return plan;
}

FleetPlan plan_homogeneous(const std::vector<CandidateEval>& variants,
                           const TrafficModel& traffic,
                           const FleetBudget& budget) {
  TSCA_CHECK(budget.max_alms > 0 && budget.max_power_w > 0.0);
  TSCA_CHECK(!traffic.classes.empty());
  double total_rate = 0.0;
  for (const TrafficClass& cls : traffic.classes) total_rate += cls.rate_rps;

  FleetPlan plan;
  double best_capacity = 0.0;
  std::size_t best = variants.size();
  int best_count = 0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const CandidateEval& v = variants[i];
    // A homogeneous fleet must serve every class, tightest deadline included.
    bool serves_all = true;
    double mix_t_us = 0.0;  // mix-weighted service time per request
    for (const TrafficClass& cls : traffic.classes) {
      const std::int64_t t_us = service_us(v, cls);
      if (t_us > cls.deadline_us) {
        serves_all = false;
        break;
      }
      mix_t_us += (cls.rate_rps / total_rate) * static_cast<double>(t_us);
    }
    if (!serves_all || mix_t_us <= 0.0) continue;
    const int count = static_cast<int>(
        std::min(static_cast<double>(budget.max_alms / v.area_alms),
                 std::floor(budget.max_power_w / v.power.fpga_w())));
    if (count < 1) continue;
    const double capacity = count * 1e6 / mix_t_us;
    if (capacity > best_capacity) {
      best_capacity = capacity;
      best = i;
      best_count = count;
    }
  }
  if (best != variants.size()) {
    plan.groups.push_back({best, best_count});
    plan.total_instances = best_count;
    plan.total_alms = best_count * variants[best].area_alms;
    plan.total_power_w = best_count * variants[best].power.fpga_w();
    plan.planned_capacity_rps = best_capacity;
  }
  return plan;
}

FleetReport simulate_fleet(const std::vector<CandidateEval>& variants,
                           const FleetPlan& plan, const TrafficModel& traffic,
                           double load_multiplier,
                           const RouterPolicy& policy) {
  std::vector<Instance> instances = expand(plan);

  struct Event {
    std::int64_t t = 0;
    std::size_t cls = 0;
    int seq = 0;
  };
  std::vector<Event> events;
  for (std::size_t c = 0; c < traffic.classes.size(); ++c) {
    const TrafficClass& cls = traffic.classes[c];
    const double rate = cls.rate_rps * load_multiplier;
    if (rate <= 0.0) continue;
    const int n = std::max(
        1, static_cast<int>(std::llround(rate * traffic.window_s)));
    const std::vector<std::int64_t> offsets =
        serve::poisson_arrivals_us(traffic.seed + c, n, rate);
    for (int i = 0; i < n; ++i)
      events.push_back({offsets[static_cast<std::size_t>(i)], c, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.cls != b.cls) return a.cls < b.cls;
    return a.seq < b.seq;
  });

  FleetReport report;
  std::vector<FleetClassReport> cls_reports(traffic.classes.size());
  std::vector<std::vector<std::int64_t>> latencies(traffic.classes.size());
  for (std::size_t c = 0; c < traffic.classes.size(); ++c)
    cls_reports[c].name = traffic.classes[c].name;

  std::int64_t wall = 0;
  for (const Event& ev : events) {
    const TrafficClass& cls = traffic.classes[ev.cls];
    FleetClassReport& cr = cls_reports[ev.cls];
    ++cr.submitted;
    wall = std::max(wall, ev.t);
    const std::int64_t deadline = ev.t + cls.deadline_us;

    std::size_t chosen = instances.size();
    if (policy.slack_routing) {
      // Cheapest (lowest-power, then smallest, then first) instance whose
      // completion — after its current backlog — still makes the deadline.
      for (std::size_t i = 0; i < instances.size(); ++i) {
        const CandidateEval& v = variants[instances[i].candidate];
        const std::int64_t start = std::max(ev.t, instances[i].free_at);
        if (start + service_us(v, cls) > deadline) continue;
        if (chosen == instances.size()) {
          chosen = i;
          continue;
        }
        const CandidateEval& best = variants[instances[chosen].candidate];
        if (v.power.fpga_w() < best.power.fpga_w() ||
            (v.power.fpga_w() == best.power.fpga_w() &&
             v.area_alms < best.area_alms))
          chosen = i;
      }
      if (chosen == instances.size()) {
        // No instance can finish in time: shed before execution, exactly as
        // the serve scheduler's feasibility horizon does.
        ++cr.shed;
        continue;
      }
    } else {
      // Naive baseline: earliest-free instance, no deadline awareness.
      if (!instances.empty()) {
        chosen = 0;
        for (std::size_t i = 1; i < instances.size(); ++i)
          if (instances[i].free_at < instances[chosen].free_at) chosen = i;
      }
      if (chosen == instances.size()) {
        ++cr.shed;
        continue;
      }
    }

    Instance& inst = instances[chosen];
    const CandidateEval& v = variants[inst.candidate];
    const std::int64_t start = std::max(ev.t, inst.free_at);
    const std::int64_t finish = start + service_us(v, cls);
    inst.free_at = finish;
    inst.busy_us += finish - start;
    wall = std::max(wall, finish);
    latencies[ev.cls].push_back(finish - ev.t);
    if (finish <= deadline)
      ++cr.ok;
    else
      ++cr.late;
  }

  for (std::size_t c = 0; c < cls_reports.size(); ++c) {
    std::sort(latencies[c].begin(), latencies[c].end());
    cls_reports[c].p50_us = percentile(latencies[c], 0.50);
    cls_reports[c].p99_us = percentile(latencies[c], 0.99);
    report.submitted += cls_reports[c].submitted;
    report.ok += cls_reports[c].ok;
    report.shed += cls_reports[c].shed;
    report.late += cls_reports[c].late;
  }
  report.classes = std::move(cls_reports);
  report.wall_us = wall;
  report.goodput_rps =
      wall > 0 ? static_cast<double>(report.ok) * 1e6 /
                     static_cast<double>(wall)
               : 0.0;
  std::int64_t busy = 0;
  for (const Instance& inst : instances) busy += inst.busy_us;
  report.utilization =
      (wall > 0 && !instances.empty())
          ? static_cast<double>(busy) /
                (static_cast<double>(wall) *
                 static_cast<double>(instances.size()))
          : 0.0;
  return report;
}

void write_plan_table(std::ostream& os,
                      const std::vector<CandidateEval>& variants,
                      const FleetPlan& plan) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-16s %5s %10s %8s %8s\n", "variant",
                "count", "ALMs/inst", "W/inst", "GOPS");
  os << buf;
  for (const FleetGroup& g : plan.groups) {
    const CandidateEval& v = variants[g.candidate];
    std::snprintf(buf, sizeof(buf), "%-16s %5d %10d %8.2f %8.1f\n",
                  v.config.name.c_str(), g.count, v.area_alms,
                  v.power.fpga_w(), v.gops);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "total: %d instances, %d ALMs, %.2f W, planned %.0f rps\n",
                plan.total_instances, plan.total_alms, plan.total_power_w,
                plan.planned_capacity_rps);
  os << buf;
}

void write_fleet_report_json(std::ostream& os, const FleetReport& report) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"submitted\": %d, \"ok\": %d, \"shed\": %d, \"late\": %d, "
                "\"wall_us\": %lld, \"goodput_rps\": %.2f, "
                "\"utilization\": %.4f, \"classes\": [",
                report.submitted, report.ok, report.shed, report.late,
                static_cast<long long>(report.wall_us), report.goodput_rps,
                report.utilization);
  os << buf;
  for (std::size_t c = 0; c < report.classes.size(); ++c) {
    const FleetClassReport& cr = report.classes[c];
    std::snprintf(buf, sizeof(buf),
                  "{\"class\": \"%s\", \"submitted\": %d, \"ok\": %d, "
                  "\"shed\": %d, \"late\": %d, \"p50_us\": %lld, "
                  "\"p99_us\": %lld}%s",
                  cr.name.c_str(), cr.submitted, cr.ok, cr.shed, cr.late,
                  static_cast<long long>(cr.p50_us),
                  static_cast<long long>(cr.p99_us),
                  c + 1 == report.classes.size() ? "" : ", ");
    os << buf;
  }
  os << "]}";
}

}  // namespace tsca::tune
