#include "tune/search_space.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace tsca::tune {

namespace {

// Index of the choice closest to `value` (mutated configs can sit off-grid).
template <typename T>
std::size_t nearest_index(const std::vector<T>& choices, T value) {
  std::size_t best = 0;
  double best_d = -1.0;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const double d = std::abs(static_cast<double>(choices[i]) -
                              static_cast<double>(value));
    if (best_d < 0.0 || d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

template <typename T>
T step_choice(const std::vector<T>& choices, T value, bool up) {
  const std::size_t i = nearest_index(choices, value);
  if (up) return choices[std::min(i + 1, choices.size() - 1)];
  return choices[i == 0 ? 0 : i - 1];
}

}  // namespace

SearchSpace SearchSpace::quick() {
  SearchSpace s;
  s.lanes = {1, 4};
  s.instances = {1, 2};
  s.bank_words = {16 * 1024, 32 * 1024, 128 * 1024};
  s.weight_scratch_words = {64, 256};
  s.unopt_clocks = {55.0};
  s.opt_clocks = {120.0, 150.0};
  return s;
}

std::vector<core::ArchConfig> SearchSpace::grid() const {
  std::vector<core::ArchConfig> out;
  // Flavour-major order so the paper-like corners come early in each band.
  for (const bool optimized : {false, true}) {
    const std::vector<double>& clocks = optimized ? opt_clocks : unopt_clocks;
    for (const int l : lanes)
      for (const int inst : instances)
        for (const int bank : bank_words)
          for (const int scratch : weight_scratch_words)
            for (const double mhz : clocks) {
              core::ArchConfig cfg;
              cfg.lanes = l;
              cfg.group = l;
              cfg.instances = inst;
              cfg.bank_words = bank;
              cfg.weight_scratch_words = scratch;
              cfg.clock_mhz = mhz;
              cfg.optimized_build = optimized;
              cfg.name = config_name(cfg);
              cfg.validate();
              out.push_back(std::move(cfg));
            }
  }
  return out;
}

core::ArchConfig SearchSpace::mutate(const core::ArchConfig& base,
                                     Rng& rng) const {
  core::ArchConfig cfg = base;
  const int axis = rng.next_int(0, 5);
  const bool up = rng.next_bool();
  switch (axis) {
    case 0: {  // lanes (and group, paired)
      const int l = step_choice(lanes, cfg.lanes, up);
      cfg.lanes = l;
      cfg.group = l;
      break;
    }
    case 1:
      cfg.instances = step_choice(instances, cfg.instances, up);
      break;
    case 2:
      cfg.bank_words = up ? std::min(bank_words.back(), cfg.bank_words * 2)
                          : std::max(bank_words.front(), cfg.bank_words / 2);
      break;
    case 3:
      cfg.weight_scratch_words =
          up ? std::min(weight_scratch_words.back(),
                        cfg.weight_scratch_words * 2)
             : std::max(weight_scratch_words.front(),
                        cfg.weight_scratch_words / 2);
      break;
    case 4: {  // clock jitter inside the flavour band
      cfg.clock_mhz *= up ? 1.1 : 0.9;
      break;
    }
    case 5: {  // build flavour flip
      cfg.optimized_build = !cfg.optimized_build;
      break;
    }
    default:
      break;
  }
  const double lo = cfg.optimized_build ? opt_clock_min : unopt_clock_min;
  const double hi = cfg.optimized_build ? opt_clock_max : unopt_clock_max;
  cfg.clock_mhz = std::clamp(cfg.clock_mhz, lo, hi);
  cfg.name = config_name(cfg);
  cfg.validate();
  return cfg;
}

std::string config_key(const core::ArchConfig& cfg) {
  // The clock is a double; hash-identical keys must mean bit-identical
  // configs, so serialize its bit pattern rather than a rounded decimal.
  std::uint64_t clock_bits = 0;
  static_assert(sizeof(clock_bits) == sizeof(cfg.clock_mhz));
  std::memcpy(&clock_bits, &cfg.clock_mhz, sizeof(clock_bits));
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "l%d-g%d-i%d-b%d-w%d-f%d-pb%d-sk%d-c%016llx-o%d", cfg.lanes,
                cfg.group, cfg.instances, cfg.bank_words,
                cfg.weight_scratch_words, cfg.fifo_depth,
                cfg.position_barrier ? 1 : 0,
                cfg.skip_empty_tile_groups ? 1 : 0,
                static_cast<unsigned long long>(clock_bits),
                cfg.optimized_build ? 1 : 0);
  return buf;
}

std::string config_name(const core::ArchConfig& cfg) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%d@%.0f%s-b%dk-w%d", cfg.macs_per_cycle(),
                cfg.clock_mhz, cfg.optimized_build ? "o" : "u",
                cfg.bank_words / 1024, cfg.weight_scratch_words);
  return buf;
}

}  // namespace tsca::tune
