// Design-space autotuner: seeded, deterministic search over ArchConfig.
//
// Explores the SearchSpace against the validated perf/area/power models for
// one workload (a driver::StudyNetwork), in two phases:
//
//   1. Grid: the full cartesian enumeration (plus the paper's four variants
//      as seeds), pruned by device fit *before* evaluation — a config whose
//      structural area already exceeds the FitConstraints never pays for a
//      performance-model walk.
//   2. Refinement: `refine_rounds` rounds of local mutation around the
//      current Pareto frontier (mutations_per_point seeded moves per
//      frontier point), re-deduped against everything seen so far.
//
// Candidates are evaluated in parallel across AcceleratorPool workers, but
// results land in generation-order slots and every evaluation is a pure
// function of its config — so the emitted frontier is bit-reproducible for
// a fixed seed, independent of worker count or thread scheduling
// (tests/test_tune.cpp holds it to byte-equal JSON).
//
// The frontier is the non-dominated set over (maximize network GOPS,
// maximize GOPS/W, minimize ALMs).  Distinct configs with identical
// figures of merit (e.g. bank sizes the workload never stresses) collapse
// to the earliest-generated representative, so the frontier stays a set of
// genuinely different trade-off points.
//
// Progress is observable: `tune.configs_evaluated` / `tune.configs_pruned`
// counters and the `tune.eval_latency_us` per-candidate histogram land in
// the supplied MetricsRegistry (and from there in the Prometheus
// exposition).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "driver/study.hpp"
#include "obs/metrics.hpp"
#include "tune/evaluate.hpp"
#include "tune/search_space.hpp"

namespace tsca::tune {

struct TuneOptions {
  SearchSpace space;
  FitConstraints constraints;
  model::FpgaDevice device = model::FpgaDevice::arria10_sx660();
  std::uint64_t seed = 1;
  int refine_rounds = 2;
  int mutations_per_point = 8;  // mutations per frontier point per round
  int workers = 0;              // parallel evaluators; 0 = host-sized
  bool include_paper_variants = true;
  obs::MetricsRegistry* metrics = nullptr;  // optional progress counters
};

struct TuneResult {
  // Every candidate that fit the device, in generation order.
  std::vector<CandidateEval> evaluated;
  // Indices into `evaluated` of the Pareto-optimal set, sorted by ascending
  // area (ties: descending GOPS, then generation order).
  std::vector<std::size_t> frontier;
  int considered = 0;  // generated (grid + seeds + mutations, pre-dedup)
  int deduped = 0;     // dropped as duplicates of an earlier candidate
  int pruned = 0;      // dropped by device-fit pruning (never evaluated)

  const CandidateEval& frontier_at(std::size_t i) const {
    return evaluated[frontier[i]];
  }
};

class Autotuner {
 public:
  // `network` must outlive run().
  Autotuner(const driver::StudyNetwork& network, TuneOptions options);

  TuneResult run();

  const TuneOptions& options() const { return options_; }

 private:
  const driver::StudyNetwork& network_;
  TuneOptions options_;
};

// True iff `a` weakly dominates `b`: at least as good on all three axes.
bool weakly_dominates(const CandidateEval& a, const CandidateEval& b);

// Non-dominated subset of `evals` (indices, in the result's canonical
// order).  Exposed for tests and for re-deriving frontiers of merged sets.
std::vector<std::size_t> pareto_frontier(
    const std::vector<CandidateEval>& evals);

// Human-readable frontier table.
void write_frontier_table(std::ostream& os, const TuneResult& result);

// Structured result: search metadata, the frontier, and (optionally) every
// evaluated candidate.  Byte-reproducible for identical results.
void write_result_json(std::ostream& os, const TuneResult& result,
                       bool include_evaluated = false);

}  // namespace tsca::tune
