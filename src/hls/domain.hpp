// Execution domains for kernels.
//
// A Domain answers one question for the awaiters: what does "wait" mean.
//   * ThreadDomain — `clk` is a no-op and FIFO waits block the calling
//     thread; this is the plain pthreads producer/consumer program.
//   * CycleEngine (cycle_engine.hpp) — `clk` suspends the coroutine until the
//     next clock cycle; FIFO waits suspend until the scheduler wakes them.
#pragma once

#include <coroutine>
#include <cstdint>
#include <thread>

#include "util/check.hpp"

namespace tsca::hls {

// Thrown inside kernels when the system is being torn down after a failure
// elsewhere (thread mode) so that blocked threads unwind.
class PoisonedError : public Error {
 public:
  using Error::Error;
};

class Domain {
 public:
  virtual ~Domain() = default;

  // clk awaiter hooks: ready==true means "advancing the clock costs nothing"
  // (thread mode).  In cycle mode clk_ready() is false and clk_wait schedules
  // the kernel for the next cycle.
  virtual bool clk_ready() = 0;
  virtual void clk_wait(std::coroutine_handle<> h) = 0;
  virtual std::uint64_t cycle() const = 0;
  virtual bool is_cycle_accurate() const = 0;
};

// `co_await clk(domain)` — one clock cycle in cycle mode, no-op in thread
// mode.  Every streaming loop iteration in a kernel must contain exactly one
// of these; that is what gives the loop II=1 pipeline semantics.
struct ClkAwaiter {
  Domain& domain;
  bool await_ready() const { return domain.clk_ready(); }
  void await_suspend(std::coroutine_handle<> h) const { domain.clk_wait(h); }
  void await_resume() const {}
};

inline ClkAwaiter clk(Domain& domain) { return ClkAwaiter{domain}; }

// `co_await poll_wait(domain)` — used by polling loops (accumulators merging
// several input streams).  Cycle mode: one clock cycle.  Thread mode: yields
// the OS thread so a spin-poll does not starve producers, then continues.
struct PollWaitAwaiter {
  Domain& domain;
  bool await_ready() const {
    if (domain.clk_ready()) {
      std::this_thread::yield();
      return true;
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) const { domain.clk_wait(h); }
  void await_resume() const {}
};

inline PollWaitAwaiter poll_wait(Domain& domain) {
  return PollWaitAwaiter{domain};
}

// Thread-mode domain: time is free.
class ThreadDomain final : public Domain {
 public:
  bool clk_ready() override { return true; }
  void clk_wait(std::coroutine_handle<>) override {
    TSCA_CHECK(false, "clk_wait in thread domain");
  }
  std::uint64_t cycle() const override { return 0; }
  bool is_cycle_accurate() const override { return false; }
};

// Hooks the cycle engine polls while a primitive has suspended waiters.
class Waitable {
 public:
  virtual ~Waitable() = default;
  // Called right after the clock advances; wake any waiters that can now
  // make progress (via CycleScheduler::schedule).
  virtual void on_cycle_start() = 0;
  // True if some waiter will be able to make progress at a future cycle
  // boundary without external input — used for deadlock detection.
  virtual bool pending() const = 0;
  // True while any coroutine is suspended on this primitive; the engine
  // stops polling a primitive once its waiters are gone.
  virtual bool has_waiters() const = 0;

 private:
  friend class CycleEngine;
  // Maintained by the engine: true while this primitive sits in its waiting
  // list, keeping mark_waiting O(1) and the list duplicate-free.
  bool in_wait_list_ = false;
};

// Thread-mode blocking primitives that can be torn down on failure.
class Poisonable {
 public:
  virtual ~Poisonable() = default;
  virtual void poison() = 0;
};

// Minimal scheduler interface the cycle-domain primitives (FIFOs, barriers,
// SRAM ports) need; implemented by CycleEngine.
class CycleScheduler {
 public:
  virtual ~CycleScheduler() = default;
  virtual std::uint64_t scheduler_cycle() const = 0;
  // Schedule a woken coroutine to resume in the current cycle's run phase.
  virtual void schedule(std::coroutine_handle<> h) = 0;
  virtual void register_waitable(Waitable* waitable) = 0;
  // A waiter just suspended on `waitable`: poll it at cycle boundaries until
  // its waiters are gone.  Idempotent per boundary interval.
  virtual void mark_waiting(Waitable* waitable) = 0;
};

}  // namespace tsca::hls
