#include "hls/cycle_engine.hpp"

#include <sstream>
#include <utility>

namespace tsca::hls {

void CycleEngine::add_kernel(const std::string& name, const Kernel& kernel) {
  TSCA_CHECK(kernel.valid(), "invalid kernel: " << name);
  root_of_handle_[kernel.handle().address()] = roots_.size();
  roots_.push_back({name, kernel.handle()});
  resumes_.push_back(0);
  ready_.push_back(kernel.handle());
}

std::vector<CycleEngine::KernelActivity> CycleEngine::activity() const {
  std::vector<KernelActivity> result;
  result.reserve(roots_.size());
  for (std::size_t i = 0; i < roots_.size(); ++i)
    result.push_back({roots_[i].name, resumes_[i]});
  return result;
}

void CycleEngine::check_errors() const {
  for (const Root& root : roots_) {
    if (root.handle.promise().error)
      std::rethrow_exception(root.handle.promise().error);
  }
}

bool CycleEngine::all_done() const {
  for (const Root& root : roots_)
    if (!root.handle.promise().done) return false;
  return true;
}

void CycleEngine::throw_deadlock() const {
  std::ostringstream os;
  os << "cycle-engine deadlock at cycle " << cycle_ << "; stuck kernels:";
  for (const Root& root : roots_)
    if (!root.handle.promise().done) os << ' ' << root.name;
  throw DeadlockError(os.str());
}

std::uint64_t CycleEngine::run(std::uint64_t max_cycles) {
  TSCA_CHECK(!roots_.empty(), "no kernels to run");
  for (;;) {
    // Run phase: resume every runnable kernel; resumed kernels may schedule
    // others only for later cycles (registered FIFOs), so a plain sweep over
    // ready_ is complete for this cycle.
    std::vector<std::coroutine_handle<>> batch = std::move(ready_);
    ready_.clear();
    for (std::coroutine_handle<> h : batch) {
      if (track_resumes_) {
        const auto it = root_of_handle_.find(h.address());
        if (it != root_of_handle_.end()) ++resumes_[it->second];
      }
      h.resume();
    }
    check_errors();
    if (all_done()) return cycle_;

    // Advance phase.
    bool pending = !next_.empty() || !ready_.empty();
    if (!pending) {
      for (const Waitable* w : waiting_) {
        if (w->pending()) {
          pending = true;
          break;
        }
      }
    }
    if (!pending) throw_deadlock();
    if (cycle_ >= max_cycles)
      throw Error("cycle limit exceeded (" + std::to_string(max_cycles) +
                  " cycles) — runaway simulation?");
    ++cycle_;
    ready_.insert(ready_.end(), next_.begin(), next_.end());
    next_.clear();
    // Poll only primitives with suspended waiters; a primitive may appear
    // more than once in waiting_ (marked again after an earlier removal), so
    // compact duplicates while sweeping.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
      Waitable* w = waiting_[i];
      bool duplicate = false;
      for (std::size_t j = 0; j < keep; ++j)
        if (waiting_[j] == w) {
          duplicate = true;
          break;
        }
      if (duplicate) continue;
      w->on_cycle_start();
      if (w->has_waiters()) waiting_[keep++] = w;
    }
    waiting_.resize(keep);
  }
}

}  // namespace tsca::hls
