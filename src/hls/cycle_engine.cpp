#include "hls/cycle_engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace tsca::hls {

void CycleEngine::add_kernel(const std::string& name, const Kernel& kernel) {
  TSCA_CHECK(kernel.valid(), "invalid kernel: " << name);
  const Kernel::Handle handle = kernel.handle();
  handle.promise().sink = &sink_;
  handle.promise().root_index = static_cast<std::uint32_t>(roots_.size());
  ++sink_.live;
  roots_.push_back({name, handle});
  resumes_.push_back(0);
  ready_.push_back(handle);
}

std::vector<CycleEngine::KernelActivity> CycleEngine::activity() const {
  std::vector<KernelActivity> result;
  result.reserve(roots_.size());
  for (std::size_t i = 0; i < roots_.size(); ++i)
    result.push_back({roots_[i].name, resumes_[i]});
  return result;
}

void CycleEngine::set_trace(obs::Recorder* recorder, std::string scope,
                            std::uint64_t base_cycle) {
  trace_ = recorder;
  trace_scope_ = std::move(scope);
  trace_base_cycle_ = base_cycle;
  if (trace_ != nullptr) track_resumes_ = true;
}

void CycleEngine::emit_kernel_spans() const {
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    const std::uint64_t busy = std::min(resumes_[i], cycle_);
    trace_->track(trace_scope_ + roots_[i].name)
        .complete(roots_[i].name, "kernel", trace_base_cycle_, cycle_,
                  {{"busy_cycles", static_cast<std::int64_t>(busy)},
                   {"stall_cycles", static_cast<std::int64_t>(cycle_ - busy)}});
  }
}

void CycleEngine::throw_deadlock() const {
  std::ostringstream os;
  os << "cycle-engine deadlock at cycle " << cycle_ << "; stuck kernels:";
  for (const Root& root : roots_)
    if (!root.handle.promise().done) os << ' ' << root.name;
  throw DeadlockError(os.str());
}

std::uint64_t CycleEngine::run(std::uint64_t max_cycles) {
  TSCA_CHECK(!roots_.empty(), "no kernels to run");
  for (;;) {
    // Run phase: resume every runnable kernel; resumed kernels may schedule
    // others only for later cycles (registered FIFOs), so a plain sweep over
    // the batch is complete for this cycle.  ready_ is swapped into the
    // reused batch_ vector, so the steady state allocates nothing per cycle.
    batch_.clear();
    batch_.swap(ready_);
    for (std::coroutine_handle<> h : batch_) {
      if (track_resumes_) {
        // Every handle in the engine is a root kernel's frame, so the root
        // index lives in its promise — no hash lookup.
        ++resumes_[Kernel::Handle::from_address(h.address())
                       .promise()
                       .root_index];
      }
      h.resume();
    }
    if (sink_.first_error) std::rethrow_exception(sink_.first_error);
    if (sink_.live == 0) {
      if (trace_ != nullptr) emit_kernel_spans();
      return cycle_;
    }

    // Advance phase.
    bool pending = !next_.empty() || !ready_.empty();
    if (!pending) {
      for (const Waitable* w : waiting_) {
        if (w->pending()) {
          pending = true;
          break;
        }
      }
    }
    if (!pending) throw_deadlock();
    if (cycle_ >= max_cycles)
      throw Error("cycle limit exceeded (" + std::to_string(max_cycles) +
                  " cycles) — runaway simulation?");
    ++cycle_;
    ready_.insert(ready_.end(), next_.begin(), next_.end());
    next_.clear();
    // Poll only primitives with suspended waiters.  mark_waiting keeps the
    // list duplicate-free, so one linear pass suffices.
    std::size_t keep = 0;
    for (Waitable* w : waiting_) {
      w->on_cycle_start();
      if (w->has_waiters())
        waiting_[keep++] = w;
      else
        w->in_wait_list_ = false;
    }
    waiting_.resize(keep);
  }
}

}  // namespace tsca::hls
