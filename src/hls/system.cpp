#include "hls/system.hpp"

#include <chrono>
#include <sstream>
#include <thread>

namespace tsca::hls {

System::System(Mode mode, SystemOptions options)
    : mode_(mode), options_(options) {
  if (mode_ == Mode::kCycle)
    engine_ = std::make_unique<CycleEngine>();
  else
    thread_domain_ = std::make_unique<ThreadDomain>();
}

Domain& System::domain() {
  if (mode_ == Mode::kCycle) return *engine_;
  return *thread_domain_;
}

Barrier& System::make_barrier(std::string name, int participants) {
  if (mode_ == Mode::kCycle) {
    auto barrier = std::make_shared<CycleBarrier>(std::move(name),
                                                  participants, *engine_);
    Barrier& ref = *barrier;
    storage_.push_back(std::move(barrier));
    return ref;
  }
  auto barrier =
      std::make_shared<ThreadBarrier>(std::move(name), participants);
  poisonables_.push_back(barrier.get());
  Barrier& ref = *barrier;
  storage_.push_back(std::move(barrier));
  return ref;
}

void System::spawn(std::string name, Kernel kernel) {
  TSCA_CHECK(!ran_, "spawn after run");
  TSCA_CHECK(kernel.valid(), "invalid kernel: " << name);
  kernels_.emplace_back(std::move(name), std::move(kernel));
}

System::RunResult System::run() {
  TSCA_CHECK(!ran_, "System::run may only be called once");
  TSCA_CHECK(!kernels_.empty(), "no kernels spawned");
  ran_ = true;
  if (mode_ == Mode::kCycle) {
    if (options_.track_utilization) engine_->enable_resume_tracking();
    if (options_.trace != nullptr)
      engine_->set_trace(options_.trace, options_.trace_scope,
                         options_.trace_base_cycle);
    for (const auto& [name, kernel] : kernels_)
      engine_->add_kernel(name, kernel);
    RunResult result;
    result.cycles = engine_->run(options_.max_cycles);
    if (options_.track_utilization) result.activity = engine_->activity();
    return result;
  }
  return run_threads();
}

System::RunResult System::run_threads() {
  std::vector<std::thread> threads;
  threads.reserve(kernels_.size());
  for (auto& [name, kernel] : kernels_) {
    const Kernel::Handle handle = kernel.handle();
    threads.emplace_back([handle] { handle.resume(); });
  }

  // Watchdog: if nothing makes progress for watchdog_ms while kernels are
  // still running, poison every FIFO/barrier so blocked threads unwind.
  bool poisoned = false;
  {
    using Clock = std::chrono::steady_clock;
    std::uint64_t last_progress = progress_.load();
    Clock::time_point last_change = Clock::now();
    for (;;) {
      bool all_done = true;
      for (const auto& [name, kernel] : kernels_)
        if (!kernel.done()) all_done = false;
      if (all_done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const std::uint64_t now_progress = progress_.load();
      if (now_progress != last_progress) {
        last_progress = now_progress;
        last_change = Clock::now();
        continue;
      }
      if (Clock::now() - last_change >
          std::chrono::milliseconds(options_.watchdog_ms)) {
        poisoned = true;
        for (Poisonable* p : poisonables_) p->poison();
        break;
      }
    }
  }
  for (std::thread& t : threads) t.join();

  // Report the first non-poison error; poison-only errors mean the watchdog
  // fired on a genuine deadlock.
  std::exception_ptr first_real;
  bool saw_poison = false;
  for (const auto& [name, kernel] : kernels_) {
    if (!kernel.error()) continue;
    try {
      std::rethrow_exception(kernel.error());
    } catch (const PoisonedError&) {
      saw_poison = true;
    } catch (...) {
      if (!first_real) first_real = kernel.error();
    }
  }
  if (first_real) std::rethrow_exception(first_real);
  if (poisoned || saw_poison) {
    std::ostringstream os;
    os << "thread-system watchdog fired after " << options_.watchdog_ms
       << " ms without progress; stuck kernels:";
    for (const auto& [name, kernel] : kernels_)
      if (!kernel.done()) os << ' ' << name;
    throw DeadlockError(os.str());
  }
  return RunResult{};
}

}  // namespace tsca::hls
