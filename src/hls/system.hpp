// System — owns kernels, FIFOs and barriers, and runs them under one of the
// two execution modes.
//
//   System sys(Mode::kThread);         // pthreads producer/consumer program
//   System sys(Mode::kCycle);          // cycle-accurate hardware model
//   auto& q = sys.make_fifo<int>("q", 16);
//   sys.spawn("producer", producer_kernel(sys.domain(), q));
//   sys.spawn("consumer", consumer_kernel(sys.domain(), q));
//   auto result = sys.run();           // result.cycles valid in cycle mode
//
// Thread mode runs every kernel on its own std::thread with a watchdog that
// poisons all blocking primitives when the system stops making progress, so
// accidental deadlocks fail fast instead of hanging the test suite.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "hls/barrier.hpp"
#include "hls/cycle_engine.hpp"
#include "hls/fifo.hpp"
#include "hls/kernel.hpp"

namespace tsca::hls {

enum class Mode { kThread, kCycle };

struct SystemOptions {
  // Cycle mode: hard cap on simulated cycles.
  std::uint64_t max_cycles = 500'000'000;
  // Thread mode: poison everything after this long without progress.
  int watchdog_ms = 10'000;
  // Cycle mode: record per-kernel resume counts (≈ busy cycles).
  bool track_utilization = false;
  // Cycle mode: when set, the engine emits one span per kernel on track
  // "<trace_scope><kernel name>" covering [trace_base_cycle, + run cycles)
  // with busy/stall cycle args.  Implies resume tracking.
  obs::Recorder* trace = nullptr;
  std::string trace_scope = {};  // NSDMI: keeps designated inits warning-free
  std::uint64_t trace_base_cycle = 0;
};

class System : public ProgressSink {
 public:
  explicit System(Mode mode, SystemOptions options = {});
  ~System() override = default;
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  Mode mode() const { return mode_; }
  Domain& domain();
  // Null in thread mode — sim-layer components (SRAM ports) use this to
  // decide whether to model contention.
  CycleScheduler* scheduler() {
    return mode_ == Mode::kCycle ? engine_.get() : nullptr;
  }

  template <typename T>
  Fifo<T>& make_fifo(std::string name, int capacity) {
    if (mode_ == Mode::kCycle) {
      auto fifo = std::make_shared<CycleFifo<T>>(std::move(name), capacity,
                                                 *engine_);
      Fifo<T>& ref = *fifo;
      storage_.push_back(std::move(fifo));
      return ref;
    }
    auto fifo =
        std::make_shared<ThreadFifo<T>>(std::move(name), capacity, this);
    poisonables_.push_back(fifo.get());
    Fifo<T>& ref = *fifo;
    storage_.push_back(std::move(fifo));
    return ref;
  }

  Barrier& make_barrier(std::string name, int participants);

  void spawn(std::string name, Kernel kernel);

  struct RunResult {
    std::uint64_t cycles = 0;  // 0 in thread mode
    // Per-kernel busy-cycle estimates (cycle mode with track_utilization).
    std::vector<CycleEngine::KernelActivity> activity;
  };

  // Runs all spawned kernels to completion.  Rethrows the first kernel error;
  // throws DeadlockError when the watchdog (thread) or the scheduler (cycle)
  // detects a stall.
  RunResult run();

  // --- ProgressSink ---
  void note_progress() override {
    progress_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  RunResult run_threads();

  Mode mode_;
  SystemOptions options_;
  std::unique_ptr<CycleEngine> engine_;
  std::unique_ptr<ThreadDomain> thread_domain_;
  std::vector<std::shared_ptr<void>> storage_;
  std::vector<Poisonable*> poisonables_;
  std::vector<std::pair<std::string, Kernel>> kernels_;
  std::atomic<std::uint64_t> progress_{0};
  bool ran_ = false;
};

}  // namespace tsca::hls
