// FIFO queues connecting kernels — the LEGUP_PTHREAD_FIFO equivalent.
//
// One abstract interface, two implementations:
//   * ThreadFifo — bounded blocking queue (mutex + condvars): the pthreads
//     producer/consumer queue of the paper's software model.
//   * CycleFifo — registered hardware FIFO for the cycle engine: data pushed
//     in cycle N becomes poppable in cycle N+1; at most one push and one pop
//     per cycle (single read/write port), so a kernel that forgets a clk
//     await still cannot consume more than hardware bandwidth allows.
//
// Kernels use `co_await fifo.pop()` / `co_await fifo.push(v)`; in the thread
// domain these block instead of suspending.
#pragma once

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "hls/domain.hpp"
#include "util/check.hpp"

namespace tsca::hls {

// Per-FIFO occupancy/stall statistics (valid in cycle mode).
struct FifoStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t push_stalls = 0;  // cycles a producer waited for space
  std::uint64_t pop_stalls = 0;   // cycles a consumer waited for data
};

template <typename T>
class Fifo;

template <typename T>
struct PopAwaiter {
  Fifo<T>& fifo;
  T value{};
  bool got = false;

  bool await_ready() {
    got = fifo.try_pop(value);
    return got;
  }
  void await_suspend(std::coroutine_handle<> h) { fifo.subscribe_pop(h); }
  T await_resume() {
    if (!got) {
      const bool ok = fifo.try_pop(value);
      TSCA_CHECK(ok, "woken popper found no data: " << fifo.name());
    }
    return std::move(value);
  }
};

template <typename T>
struct PushAwaiter {
  Fifo<T>& fifo;
  T value;
  bool done_early = false;

  bool await_ready() {
    done_early = fifo.try_push(value);
    return done_early;
  }
  void await_suspend(std::coroutine_handle<> h) { fifo.subscribe_push(h); }
  void await_resume() {
    if (!done_early) {
      const bool ok = fifo.try_push(value);
      TSCA_CHECK(ok, "woken pusher found no space: " << fifo.name());
    }
  }
};

template <typename T>
class Fifo {
 public:
  Fifo(std::string name, int capacity) : name_(std::move(name)), capacity_(capacity) {
    TSCA_CHECK(capacity > 0, "fifo capacity: " << name_);
  }
  virtual ~Fifo() = default;
  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  const std::string& name() const { return name_; }
  int capacity() const { return capacity_; }

  PopAwaiter<T> pop() { return PopAwaiter<T>{*this}; }
  PushAwaiter<T> push(T value) { return PushAwaiter<T>{*this, std::move(value)}; }

  // Non-blocking pop in every mode (the accumulator units merge several
  // product streams per cycle with this).  Subject to the same one-pop-per-
  // cycle port rule as try_pop in cycle mode.
  virtual bool poll(T& out) = 0;

  // Host-side injection before the system starts (e.g. prefilled instruction
  // queues): bypasses port accounting, fails only when full.
  virtual bool seed(const T& value) = 0;

  // --- awaiter hooks ---
  virtual bool try_pop(T& out) = 0;
  virtual void subscribe_pop(std::coroutine_handle<> h) = 0;
  virtual bool try_push(const T& value) = 0;
  virtual void subscribe_push(std::coroutine_handle<> h) = 0;

  virtual FifoStats stats() const = 0;

 protected:
  const std::string name_;
  const int capacity_;
};

// Notified on every completed blocking operation; the thread system's
// watchdog uses it to detect global lack of progress.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void note_progress() = 0;
};

template <typename T>
class ThreadFifo final : public Fifo<T>, public Poisonable {
 public:
  ThreadFifo(std::string name, int capacity, ProgressSink* progress)
      : Fifo<T>(std::move(name), capacity), progress_(progress) {}

  bool seed(const T& value) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<int>(items_.size()) >= this->capacity()) return false;
    items_.push_back(value);
    ++stats_.pushes;
    return true;
  }

  bool poll(T& out) override {
    std::unique_lock<std::mutex> lock(mutex_);
    if (poisoned_ && items_.empty())
      throw PoisonedError("fifo poisoned: " + this->name());
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    lock.unlock();
    not_full_.notify_one();
    if (progress_ != nullptr) progress_->note_progress();
    return true;
  }

  bool try_pop(T& out) override {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || poisoned_; });
    if (items_.empty())
      throw PoisonedError("fifo poisoned: " + this->name());
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    lock.unlock();
    not_full_.notify_one();
    if (progress_ != nullptr) progress_->note_progress();
    return true;
  }

  void subscribe_pop(std::coroutine_handle<>) override {
    TSCA_CHECK(false, "thread fifo never suspends: " << this->name());
  }

  bool try_push(const T& value) override {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return static_cast<int>(items_.size()) < this->capacity() || poisoned_;
    });
    if (poisoned_) throw PoisonedError("fifo poisoned: " + this->name());
    items_.push_back(value);
    ++stats_.pushes;
    lock.unlock();
    not_empty_.notify_one();
    if (progress_ != nullptr) progress_->note_progress();
    return true;
  }

  void subscribe_push(std::coroutine_handle<>) override {
    TSCA_CHECK(false, "thread fifo never suspends: " << this->name());
  }

  void poison() override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      poisoned_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  FifoStats stats() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  ProgressSink* progress_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool poisoned_ = false;
  FifoStats stats_;
};

template <typename T>
class CycleFifo final : public Fifo<T>, public Waitable {
 public:
  CycleFifo(std::string name, int capacity, CycleScheduler& sched)
      : Fifo<T>(std::move(name), capacity), sched_(sched) {
    sched_.register_waitable(this);
  }

  bool try_pop(T& out) override {
    if (!pop_possible_now()) return false;
    out = std::move(items_.front().value);
    items_.pop_front();
    last_pop_cycle_ = sched_.scheduler_cycle();
    ++stats_.pops;
    return true;
  }

  bool poll(T& out) override { return try_pop(out); }

  bool seed(const T& value) override {
    if (static_cast<int>(items_.size()) >= this->capacity()) return false;
    items_.push_back({value, 0});  // visible from cycle 1 onward
    ++stats_.pushes;
    return true;
  }

  void subscribe_pop(std::coroutine_handle<> h) override {
    TSCA_CHECK(!waiting_pop_, "two poppers on fifo " << this->name()
                                                     << " (SPSC only)");
    waiting_pop_ = h;
    sched_.mark_waiting(this);
  }

  bool try_push(const T& value) override {
    if (!push_possible_now()) return false;
    items_.push_back({value, sched_.scheduler_cycle()});
    last_push_cycle_ = sched_.scheduler_cycle();
    ++stats_.pushes;
    return true;
  }

  void subscribe_push(std::coroutine_handle<> h) override {
    TSCA_CHECK(!waiting_push_, "two pushers on fifo " << this->name()
                                                      << " (SPSC only)");
    waiting_push_ = h;
    sched_.mark_waiting(this);
  }

  bool has_waiters() const override {
    return waiting_pop_ != nullptr || waiting_push_ != nullptr;
  }

  void on_cycle_start() override {
    if (waiting_pop_) {
      if (pop_possible_now()) {
        sched_.schedule(std::exchange(waiting_pop_, nullptr));
      } else {
        ++stats_.pop_stalls;
      }
    }
    if (waiting_push_) {
      if (push_possible_now()) {
        sched_.schedule(std::exchange(waiting_push_, nullptr));
      } else {
        ++stats_.push_stalls;
      }
    }
  }

  bool pending() const override {
    // A popper wakes once a staged item becomes visible; a pusher wakes once
    // occupancy drops (or, if the port limit blocked it, next cycle).
    const bool popper_can_advance = waiting_pop_ != nullptr && !items_.empty();
    const bool pusher_can_advance =
        waiting_push_ != nullptr &&
        (static_cast<int>(items_.size()) < this->capacity());
    return popper_can_advance || pusher_can_advance;
  }

  FifoStats stats() const override { return stats_; }

  std::size_t occupancy() const { return items_.size(); }

 private:
  struct Item {
    T value;
    std::uint64_t push_cycle;
  };

  bool pop_possible_now() const {
    const std::uint64_t now = sched_.scheduler_cycle();
    if (last_pop_cycle_ == now) return false;  // read port already used
    return !items_.empty() && items_.front().push_cycle < now;
  }

  bool push_possible_now() const {
    const std::uint64_t now = sched_.scheduler_cycle();
    if (last_push_cycle_ == now) return false;  // write port already used
    return static_cast<int>(items_.size()) < this->capacity();
  }

  CycleScheduler& sched_;
  std::deque<Item> items_;
  std::coroutine_handle<> waiting_pop_ = nullptr;
  std::coroutine_handle<> waiting_push_ = nullptr;
  std::uint64_t last_pop_cycle_ = ~std::uint64_t{0};
  std::uint64_t last_push_cycle_ = ~std::uint64_t{0};
  FifoStats stats_;
};

}  // namespace tsca::hls
