// Kernel coroutine type.
//
// A kernel is the unit the paper synthesizes from one pthread: a streaming
// compute loop that pops inputs from FIFO queues, computes, and pushes
// results.  Kernels here are C++20 coroutines written once and executed under
// either of two domains (hls/system.hpp):
//
//   * thread domain — every kernel runs on its own std::thread and FIFO
//     awaiters block, i.e. the classic producer/consumer pthreads program the
//     paper's accelerator is written as;
//   * cycle domain — a single-threaded scheduler advances a clock; FIFO
//     awaiters suspend the coroutine until data/space becomes visible, and
//     `co_await clk(domain)` consumes exactly one cycle, modelling an II=1
//     pipelined loop.
#pragma once

#include <atomic>
#include <coroutine>
#include <exception>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace tsca::hls {

// Completion bookkeeping the cycle engine installs into every root kernel's
// promise: a live-kernel counter decremented at final suspension and the
// first kernel exception, latched.  This lets the per-cycle loop test
// "all done?" and "any error?" in O(1) instead of sweeping every root.
struct CompletionSink {
  std::uint64_t live = 0;          // kernels not yet finally suspended
  std::exception_ptr first_error;  // first kernel exception, latched
};

class Kernel {
 public:
  struct promise_type {
    std::exception_ptr error;
    // Atomic: in thread mode the watchdog polls done while the kernel's own
    // thread writes it at final suspension.
    std::atomic<bool> done{false};
    // Set by the cycle engine for root kernels; null in thread mode.
    CompletionSink* sink = nullptr;
    // Index into the cycle engine's root table (resume accounting without a
    // per-resume hash lookup).
    std::uint32_t root_index = 0;

    Kernel get_return_object() {
      return Kernel(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        promise_type& p = h.promise();
        p.done = true;
        if (p.sink != nullptr) --p.sink->live;
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      error = std::current_exception();
      done = true;
      if (sink != nullptr && !sink->first_error) sink->first_error = error;
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Kernel() = default;
  explicit Kernel(Handle handle) : handle_(handle) {}
  Kernel(Kernel&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Kernel& operator=(Kernel&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel() { destroy(); }

  Handle handle() const { return handle_; }
  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().done.load(); }
  std::exception_ptr error() const {
    return handle_ ? handle_.promise().error : nullptr;
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

}  // namespace tsca::hls
