// Cycle-accurate scheduler.
//
// Single-threaded discrete-time simulation: each cycle, every runnable kernel
// coroutine is resumed and runs until it suspends on `clk`, an empty/full
// FIFO, a barrier, or an SRAM port.  FIFO pushes become visible one cycle
// after the push (registered queues), which makes simulation results
// independent of resume order within a cycle.
//
// The engine detects deadlock: if no kernel is runnable this cycle, none is
// scheduled for a future cycle, and no waitable can make progress, it throws
// DeadlockError with a state dump.
#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "hls/domain.hpp"
#include "hls/kernel.hpp"
#include "obs/trace.hpp"

namespace tsca::hls {

class CycleEngine final : public Domain, public CycleScheduler {
 public:
  CycleEngine() = default;
  CycleEngine(const CycleEngine&) = delete;
  CycleEngine& operator=(const CycleEngine&) = delete;

  // --- Domain ---
  bool clk_ready() override { return false; }
  void clk_wait(std::coroutine_handle<> h) override { next_.push_back(h); }
  std::uint64_t cycle() const override { return cycle_; }
  bool is_cycle_accurate() const override { return true; }

  // --- CycleScheduler ---
  std::uint64_t scheduler_cycle() const override { return cycle_; }
  void schedule(std::coroutine_handle<> h) override { ready_.push_back(h); }
  void register_waitable(Waitable* waitable) override {
    // Registration exists for symmetry/debugging; polling is driven by
    // mark_waiting so idle primitives cost nothing per cycle.
    (void)waitable;
  }
  void mark_waiting(Waitable* waitable) override {
    // The in-list flag keeps waiting_ duplicate-free, so the advance-phase
    // sweep never has to compact repeated entries.
    if (waitable->in_wait_list_) return;
    waitable->in_wait_list_ = true;
    waiting_.push_back(waitable);
  }

  // Kernels to simulate.  The engine does not own the coroutines; the caller
  // (hls::System) keeps the Kernel objects alive for the whole run.
  void add_kernel(const std::string& name, const Kernel& kernel);

  // Per-kernel activity accounting: resumes ≈ cycles the unit did work (it
  // was neither FIFO- nor port-blocked).  Off by default — tracking costs a
  // hash lookup per resume.
  void enable_resume_tracking() { track_resumes_ = true; }
  struct KernelActivity {
    std::string name;
    std::uint64_t resumes = 0;
  };
  std::vector<KernelActivity> activity() const;

  // Observability: when set, the engine records one span per kernel on track
  // "<scope><kernel name>" covering [base_cycle, base_cycle + run cycles),
  // with busy (resume) and stall cycle counts as args — where cycles go
  // inside one instruction batch.  Implies resume tracking.
  void set_trace(obs::Recorder* recorder, std::string scope,
                 std::uint64_t base_cycle);

  // Runs until every kernel has finished.  Returns the number of simulated
  // cycles.  Throws the first kernel error, DeadlockError on deadlock, or
  // Error when max_cycles is exceeded.
  std::uint64_t run(std::uint64_t max_cycles);

 private:
  struct Root {
    std::string name;
    Kernel::Handle handle;
  };

  [[noreturn]] void throw_deadlock() const;
  void emit_kernel_spans() const;

  bool track_resumes_ = false;
  obs::Recorder* trace_ = nullptr;
  std::string trace_scope_;
  std::uint64_t trace_base_cycle_ = 0;
  std::vector<std::uint64_t> resumes_;
  std::uint64_t cycle_ = 1;  // cycle 0 is "before time"; pushes at 1 visible at 2
  // Done/error bookkeeping updated from the kernel promises, so the per-cycle
  // loop checks completion and errors in O(1) instead of sweeping roots_.
  CompletionSink sink_;
  std::vector<std::coroutine_handle<>> ready_;
  std::vector<std::coroutine_handle<>> next_;
  std::vector<std::coroutine_handle<>> batch_;  // reused run-phase scratch
  std::vector<Waitable*> waiting_;  // primitives with suspended waiters
  std::vector<Root> roots_;
};

}  // namespace tsca::hls
