// Reusable barrier — the pthread_barrier_t equivalent.
//
// The paper synchronizes completion of the four concurrently computed OFM
// tiles with a Pthreads barrier; both domains provide one.  The cycle-domain
// barrier releases all participants on the cycle *after* the last arrival
// (one cycle of synchronization latency, like a registered handshake).
#pragma once

#include <condition_variable>
#include <coroutine>
#include <mutex>
#include <string>
#include <vector>

#include "hls/domain.hpp"
#include "util/check.hpp"

namespace tsca::hls {

class Barrier {
 public:
  Barrier(std::string name, int participants)
      : name_(std::move(name)), participants_(participants) {
    TSCA_CHECK(participants > 0, "barrier participants: " << name_);
  }
  virtual ~Barrier() = default;
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  const std::string& name() const { return name_; }
  int participants() const { return participants_; }

  // Awaiter hooks: try_arrive returns true when the caller may continue
  // immediately (thread mode blocks inside and then returns true).
  virtual bool try_arrive() = 0;
  virtual void subscribe(std::coroutine_handle<> h) = 0;

  struct Awaiter {
    Barrier& barrier;
    bool await_ready() { return barrier.try_arrive(); }
    void await_suspend(std::coroutine_handle<> h) { barrier.subscribe(h); }
    void await_resume() {}
  };
  Awaiter arrive_and_wait() { return Awaiter{*this}; }

 protected:
  const std::string name_;
  const int participants_;
};

class ThreadBarrier final : public Barrier, public Poisonable {
 public:
  ThreadBarrier(std::string name, int participants)
      : Barrier(std::move(name), participants) {}

  bool try_arrive() override {
    std::unique_lock<std::mutex> lock(mutex_);
    if (poisoned_) throw PoisonedError("barrier poisoned: " + name_);
    const std::uint64_t generation = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      lock.unlock();
      released_.notify_all();
      return true;
    }
    released_.wait(lock,
                   [&] { return generation_ != generation || poisoned_; });
    if (generation_ == generation)
      throw PoisonedError("barrier poisoned: " + name_);
    return true;
  }

  void subscribe(std::coroutine_handle<>) override {
    TSCA_CHECK(false, "thread barrier never suspends: " << name_);
  }

  void poison() override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      poisoned_ = true;
    }
    released_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable released_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
};

class CycleBarrier final : public Barrier, public Waitable {
 public:
  CycleBarrier(std::string name, int participants, CycleScheduler& sched)
      : Barrier(std::move(name), participants), sched_(sched) {
    sched_.register_waitable(this);
  }

  bool try_arrive() override { return false; }  // always suspends ≥ 1 cycle

  void subscribe(std::coroutine_handle<> h) override {
    TSCA_CHECK(static_cast<int>(arrived_.size()) < participants_,
               "barrier over-subscribed: " << name_);
    arrived_.push_back(h);
    sched_.mark_waiting(this);
  }

  bool has_waiters() const override { return !arrived_.empty(); }

  void on_cycle_start() override {
    if (static_cast<int>(arrived_.size()) == participants_) {
      for (std::coroutine_handle<> h : arrived_) sched_.schedule(h);
      arrived_.clear();
      ++releases_;
    }
  }

  bool pending() const override {
    return static_cast<int>(arrived_.size()) == participants_;
  }

  std::uint64_t releases() const { return releases_; }

 private:
  CycleScheduler& sched_;
  std::vector<std::coroutine_handle<>> arrived_;
  std::uint64_t releases_ = 0;
};

}  // namespace tsca::hls
