#include "obs/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace tsca::obs {

namespace {

// Process-wide; the hooks touch nothing else, so they can run on any thread
// at any point after static initialization (atomics are constant-initialized).
std::atomic<bool> g_armed{false};
std::atomic<std::int64_t> g_count{0};
std::atomic<std::int64_t> g_bytes{0};

inline void note_alloc(std::size_t size) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::int64_t>(size),
                    std::memory_order_relaxed);
}

}  // namespace

bool alloc_counting_enabled() {
#ifdef TSCA_COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

AllocStats warm_alloc_stats() {
  AllocStats s;
  s.count = g_count.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_warm_alloc_stats() {
  g_count.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

void arm_warm_alloc_counting() {
  g_armed.store(true, std::memory_order_relaxed);
}

void disarm_warm_alloc_counting() {
  g_armed.store(false, std::memory_order_relaxed);
}

void publish_warm_alloc_stats(MetricsRegistry& m) {
  const AllocStats s = warm_alloc_stats();
  Counter& count = m.counter("alloc.warm.count");
  Counter& bytes = m.counter("alloc.warm.bytes");
  count.add(s.count - count.value());
  bytes.add(s.bytes - bytes.value());
}

}  // namespace tsca::obs

#ifdef TSCA_COUNT_ALLOCS

// Global allocation hooks — compiled only in the instrumented build so they
// never fight a sanitizer's interposed allocator.  malloc/free-backed, which
// matches the default implementation's contract; sized and aligned variants
// route through the same two primitives so every new has a matching delete.

namespace {

void* counted_alloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  tsca::obs::note_alloc(size);
  return p;
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  if (size == 0) size = 1;
  // aligned_alloc wants size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded);
  if (p == nullptr) throw std::bad_alloc();
  tsca::obs::note_alloc(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // TSCA_COUNT_ALLOCS
