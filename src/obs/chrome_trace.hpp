// Chrome `trace_event` JSON exporter.
//
// Renders a Recorder's events in the Trace Event Format understood by
// chrome://tracing and Perfetto: one "thread" (tid) per track, complete
// ("ph":"X") events with microsecond timestamps.  Simulated accelerator
// cycles map 1:1 onto trace microseconds — a span of N cycles renders as
// N µs, so relative durations read directly off the timeline.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace tsca::obs {

void write_chrome_trace(const Recorder& recorder, std::ostream& os);

// Convenience: returns the JSON as a string (tests, small traces).
std::string chrome_trace_json(const Recorder& recorder);

}  // namespace tsca::obs
