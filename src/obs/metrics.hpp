// In-memory metrics registry (observability layer).
//
// The always-on sibling of the trace recorder: monotonically increasing
// counters and power-of-two latency histograms, cheap enough to leave
// enabled in a serving loop (one atomic add per observation).  Benches and
// examples dump the registry as text or JSON next to their results.
//
// Names are dotted paths ("serve.requests", "runtime.accel_cycles");
// find-or-create handles are stable for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace tsca::obs {

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

// One consistent-enough read of a Histogram: summary statistics plus the
// standard percentile ladder, so consumers (benches, the serving report)
// never re-derive percentiles from raw buckets themselves.
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
};

// Histogram over non-negative values with power-of-two buckets: bucket b
// counts observations in [2^(b-1), 2^b) (bucket 0 counts zeros and ones).
// Quantiles are upper bounds read off the bucket boundaries — coarse (×2),
// but stable, lock-free and enough to tell p50 from p99 tail behaviour.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  void observe(std::int64_t value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const;  // 0 when empty
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  // Upper bound of the bucket holding quantile q (q in [0, 1]).
  std::int64_t quantile(double q) const;
  // Everything above in one call (count/sum/min/max/mean + p50/p90/p95/p99).
  HistogramSnapshot snapshot() const;
  std::int64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Human-readable dump, one metric per line; histograms report
  // count/mean/p50/p95/max.
  void write_text(std::ostream& os) const;
  // Machine-readable dump: {"counters": {...}, "histograms": {...}}.
  void write_json(std::ostream& os) const;
  // Prometheus text exposition (format 0.0.4), served by the socket
  // front-end's metrics endpoint: every metric under a `tsca_` prefix with
  // illegal name characters (the dots) mapped to underscores, counters as
  // `# TYPE ... counter` samples, histograms as the cumulative
  // `_bucket{le="..."}` ladder over the power-of-two bucket bounds plus
  // `_sum`/`_count`.
  void write_prometheus(std::ostream& os) const;
  std::string text() const;
  std::string json() const;
  std::string prometheus() const;

 private:
  mutable std::mutex m_;
  std::deque<Counter> counters_;
  std::deque<Histogram> histograms_;
};

}  // namespace tsca::obs
