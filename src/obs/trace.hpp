// Span/event recorder for the simulator (observability layer).
//
// Everything the runtime, the stripe executors, the DMA engine and the cycle
// engine want to report — per-layer, per-stripe and per-batch spans, DMA
// transfers, per-kernel busy summaries — is recorded here as events on named
// *tracks* with simulated-cycle timestamps.  One track per accelerator
// instance (serial runtime) or pool worker, plus a ".dma" sibling track per
// unit and a "layers"/"requests" track for the coarse timeline.
//
// Overhead contract: all instrumentation sites are guarded by a null-pointer
// check (`if (track == nullptr) return;`), so a run with tracing disabled
// pays one predictable branch per site and allocates nothing.  When enabled,
// events append to a mutex-guarded vector; a track's cycle cursor is only
// ever touched by the single worker that owns the track during a parallel
// region, so cursor arithmetic is unsynchronized.
//
// Sinks: obs/chrome_trace.hpp renders the recorded events as Chrome
// `trace_event` JSON (chrome://tracing / Perfetto); obs/metrics.hpp is the
// aggregate-counter sibling for always-on production metrics.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tsca::obs {

class Recorder;

// Small integer key/value annotations attached to an event (rendered into
// the Chrome trace "args" object).
using EventArgs = std::vector<std::pair<std::string, std::int64_t>>;

struct TraceEvent {
  int track = 0;                 // index into Recorder's track table
  std::string name;              // span name ("conv1", "stripe 3", "dma→fpga")
  std::string category;          // "layer", "stripe", "batch", "dma", ...
  std::uint64_t begin = 0;       // simulated cycles
  std::uint64_t duration = 0;    // simulated cycles (0 = instant event)
  EventArgs args;
};

// One named timeline.  Tracks keep a cycle cursor so instrumentation sites
// can lay spans end to end without threading timestamps through every call:
// `span()` records [now, now+cycles) and advances the cursor.
class Track {
 public:
  const std::string& name() const { return name_; }
  Recorder& recorder() const { return *recorder_; }

  std::uint64_t now() const { return now_; }
  void set_now(std::uint64_t cycles) { now_ = cycles; }
  void advance(std::uint64_t cycles) { now_ += cycles; }

  // Records a span at the cursor and advances the cursor past it.
  void span(std::string name, std::string category, std::uint64_t cycles,
            EventArgs args = {});

  // Records a span at an explicit begin cycle; the cursor is not moved.
  void complete(std::string name, std::string category, std::uint64_t begin,
                std::uint64_t cycles, EventArgs args = {});

 private:
  friend class Recorder;
  Track(Recorder* recorder, int id, std::string name)
      : recorder_(recorder), id_(id), name_(std::move(name)) {}

  Recorder* recorder_;
  int id_;
  std::string name_;
  std::uint64_t now_ = 0;
};

// Thread-safe event store.  Track handles are stable for the Recorder's
// lifetime (deque storage); find-or-create by name, so a pool worker that
// serves many requests keeps appending to the same timeline.
class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Finds or creates the track with this name.
  Track& track(const std::string& name);

  void record(TraceEvent event);

  std::size_t event_count() const;
  // Copies out the recorded events / track names (test + exporter access).
  std::vector<TraceEvent> events() const;
  std::vector<std::string> track_names() const;

 private:
  mutable std::mutex m_;
  std::deque<Track> tracks_;
  std::vector<TraceEvent> events_;
};

}  // namespace tsca::obs
