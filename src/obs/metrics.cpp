#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

namespace tsca::obs {

namespace {

int bucket_for(std::int64_t value) {
  if (value <= 1) return 0;
  return std::bit_width(static_cast<std::uint64_t>(value - 1));
}

// Lock-free monotonic min/max update.
void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(std::int64_t value) {
  if (value < 0) value = 0;
  buckets_[static_cast<std::size_t>(bucket_for(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::int64_t Histogram::min() const {
  const std::int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::int64_t Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(q * n + 0.5));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank) {
      // Upper bound of bucket b, clipped to the observed maximum.
      const std::int64_t bound =
          b == 0 ? 1 : static_cast<std::int64_t>(1) << b;
      return std::min(bound, max());
    }
  }
  return max();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(m_);
  for (Counter& c : counters_)
    if (c.name() == name) return c;
  counters_.emplace_back(name);
  return counters_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(m_);
  for (Histogram& h : histograms_)
    if (h.name() == name) return h;
  histograms_.emplace_back(name);
  return histograms_.back();
}

void MetricsRegistry::write_text(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(m_);
  for (const Counter& c : counters_)
    os << c.name() << " " << c.value() << "\n";
  for (const Histogram& h : histograms_)
    os << h.name() << " count=" << h.count() << " mean=" << h.mean()
       << " min=" << h.min() << " p50=" << h.quantile(0.5)
       << " p95=" << h.quantile(0.95) << " max=" << h.max() << "\n";
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(m_);
  os << "{\"counters\":{";
  bool first = true;
  for (const Counter& c : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << c.name() << "\":" << c.value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const Histogram& h : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << h.name() << "\":{\"count\":" << h.count()
       << ",\"sum\":" << h.sum() << ",\"mean\":" << h.mean()
       << ",\"min\":" << h.min() << ",\"p50\":" << h.quantile(0.5)
       << ",\"p95\":" << h.quantile(0.95) << ",\"max\":" << h.max() << "}";
  }
  os << "}}";
}

std::string MetricsRegistry::text() const {
  std::ostringstream os;
  write_text(os);
  return os.str();
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace tsca::obs
