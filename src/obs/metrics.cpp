#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>

namespace tsca::obs {

namespace {

int bucket_for(std::int64_t value) {
  if (value <= 1) return 0;
  return std::bit_width(static_cast<std::uint64_t>(value - 1));
}

// Lock-free monotonic min/max update.
void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(std::int64_t value) {
  if (value < 0) value = 0;
  buckets_[static_cast<std::size_t>(bucket_for(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::int64_t Histogram::min() const {
  const std::int64_t m = min_.load(std::memory_order_relaxed);
  return m == INT64_MAX ? 0 : m;
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::int64_t Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(q * n + 0.5));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank) {
      // Upper bound of bucket b, clipped to the observed maximum.
      const std::int64_t bound =
          b == 0 ? 1 : static_cast<std::int64_t>(1) << b;
      return std::min(bound, max());
    }
  }
  return max();
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = quantile(0.5);
  s.p90 = quantile(0.9);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(m_);
  for (Counter& c : counters_)
    if (c.name() == name) return c;
  counters_.emplace_back(name);
  return counters_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(m_);
  for (Histogram& h : histograms_)
    if (h.name() == name) return h;
  histograms_.emplace_back(name);
  return histograms_.back();
}

void MetricsRegistry::write_text(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(m_);
  for (const Counter& c : counters_)
    os << c.name() << " " << c.value() << "\n";
  for (const Histogram& h : histograms_) {
    const HistogramSnapshot s = h.snapshot();
    os << h.name() << " count=" << s.count << " mean=" << s.mean
       << " min=" << s.min << " p50=" << s.p50 << " p95=" << s.p95
       << " p99=" << s.p99 << " max=" << s.max << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(m_);
  os << "{\"counters\":{";
  bool first = true;
  for (const Counter& c : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << c.name() << "\":" << c.value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const Histogram& h : histograms_) {
    if (!first) os << ",";
    first = false;
    const HistogramSnapshot s = h.snapshot();
    os << "\"" << h.name() << "\":{\"count\":" << s.count
       << ",\"sum\":" << s.sum << ",\"mean\":" << s.mean
       << ",\"min\":" << s.min << ",\"p50\":" << s.p50
       << ",\"p90\":" << s.p90 << ",\"p95\":" << s.p95
       << ",\"p99\":" << s.p99 << ",\"max\":" << s.max << "}";
  }
  os << "}}";
}

namespace {

// Prometheus metric names admit [a-zA-Z0-9_:] only; our dotted paths don't.
std::string prom_name(const std::string& name) {
  std::string out = "tsca_";
  out.reserve(out.size() + name.size());
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(m_);
  for (const Counter& c : counters_) {
    const std::string name = prom_name(c.name());
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value() << "\n";
  }
  for (const Histogram& h : histograms_) {
    const std::string name = prom_name(h.name());
    os << "# TYPE " << name << " histogram\n";
    // Cumulative ladder over the power-of-two bounds, truncated after the
    // last occupied bucket (the +Inf sample always carries the total).
    int top = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b)
      if (h.bucket_count(b) > 0) top = b;
    std::int64_t cumulative = 0;
    for (int b = 0; b <= top; ++b) {
      cumulative += h.bucket_count(b);
      const std::uint64_t bound = b == 0 ? 1 : std::uint64_t(1) << b;
      os << name << "_bucket{le=\"" << bound << "\"} " << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    os << name << "_sum " << h.sum() << "\n";
    os << name << "_count " << h.count() << "\n";
  }
}

std::string MetricsRegistry::text() const {
  std::ostringstream os;
  write_text(os);
  return os.str();
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string MetricsRegistry::prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

}  // namespace tsca::obs
