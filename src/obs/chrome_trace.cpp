#include "obs/chrome_trace.hpp"

#include <ostream>
#include <sstream>

namespace tsca::obs {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';  // control characters never appear in our names
        else
          os << c;
    }
  }
}

}  // namespace

void write_chrome_trace(const Recorder& recorder, std::ostream& os) {
  const std::vector<std::string> tracks = recorder.track_names();
  const std::vector<TraceEvent> events = recorder.events();

  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata: one named "thread" per track, ordered as created.
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << t
       << ",\"args\":{\"name\":\"";
    write_escaped(os, tracks[t]);
    os << "\"}},\n{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,"
       << "\"tid\":" << t << ",\"args\":{\"sort_index\":" << t << "}}";
  }
  for (const TraceEvent& ev : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.track << ",\"ts\":"
       << ev.begin << ",\"dur\":" << ev.duration << ",\"name\":\"";
    write_escaped(os, ev.name);
    os << "\",\"cat\":\"";
    write_escaped(os, ev.category);
    os << "\"";
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"";
        write_escaped(os, ev.args[i].first);
        os << "\":" << ev.args[i].second;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"time_unit\":\"1 trace us = 1 simulated accelerator cycle\"}}\n";
}

std::string chrome_trace_json(const Recorder& recorder) {
  std::ostringstream os;
  write_chrome_trace(recorder, os);
  return os.str();
}

}  // namespace tsca::obs
