#include "obs/trace.hpp"

namespace tsca::obs {

void Track::span(std::string name, std::string category, std::uint64_t cycles,
                 EventArgs args) {
  complete(std::move(name), std::move(category), now_, cycles,
           std::move(args));
  now_ += cycles;
}

void Track::complete(std::string name, std::string category,
                     std::uint64_t begin, std::uint64_t cycles,
                     EventArgs args) {
  recorder_->record(TraceEvent{id_, std::move(name), std::move(category),
                               begin, cycles, std::move(args)});
}

Track& Recorder::track(const std::string& name) {
  const std::lock_guard<std::mutex> lock(m_);
  for (Track& t : tracks_)
    if (t.name_ == name) return t;
  tracks_.push_back(Track(this, static_cast<int>(tracks_.size()), name));
  return tracks_.back();
}

void Recorder::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(m_);
  events_.push_back(std::move(event));
}

std::size_t Recorder::event_count() const {
  const std::lock_guard<std::mutex> lock(m_);
  return events_.size();
}

std::vector<TraceEvent> Recorder::events() const {
  const std::lock_guard<std::mutex> lock(m_);
  return events_;
}

std::vector<std::string> Recorder::track_names() const {
  const std::lock_guard<std::mutex> lock(m_);
  std::vector<std::string> names;
  names.reserve(tracks_.size());
  for (const Track& t : tracks_) names.push_back(t.name_);
  return names;
}

}  // namespace tsca::obs
