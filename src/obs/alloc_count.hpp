// Warm-path allocation accounting (observability layer).
//
// "The warm path allocates nothing" is PR 9's headline invariant, and an
// invariant nobody measures rots.  This module makes it a number: when the
// build carries -DTSCA_COUNT_ALLOCS=ON, alloc_count.cpp replaces the global
// operator new/new[]/delete family with malloc-backed hooks that bump two
// process-wide atomics — allocation count and bytes — whenever counting is
// *armed*.  Arming is scoped by WarmPathGuard: the warm-allocation test and
// the throughput bench arm it after the first (cold) request has populated
// every reusable buffer, run N warm requests, and assert the delta stays at
// the small documented constant (DESIGN.md §15 lists what may allocate).
//
// The API below is always present; in a build without TSCA_COUNT_ALLOCS the
// hooks are not compiled (they would fight the sanitizers' interposed
// allocators), alloc_counting_enabled() returns false, and every stat reads
// zero — callers gate on enabled(), not on the preprocessor.
//
// The hooks themselves never allocate and never throw past the standard
// contract: counting is two relaxed fetch_adds behind one relaxed load of
// the armed flag, cheap enough that an instrumented build still runs the
// full test suite.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace tsca::obs {

struct AllocStats {
  std::int64_t count = 0;  // operator new calls observed while armed
  std::int64_t bytes = 0;  // bytes those calls requested
};

// True when the build was configured with TSCA_COUNT_ALLOCS and the hook
// translation unit is linked in.
bool alloc_counting_enabled();

// Totals accumulated while armed, since the last reset.
AllocStats warm_alloc_stats();
void reset_warm_alloc_stats();

// Arms/disarms counting process-wide (all threads).  Prefer WarmPathGuard.
void arm_warm_alloc_counting();
void disarm_warm_alloc_counting();

// RAII arming scope.  Construct after the cold request has warmed every
// reusable buffer; everything allocated while the guard lives is charged to
// the warm path.  Guards do not nest meaningfully (arming is a flag, not a
// count) — one scope at a time.
class WarmPathGuard {
 public:
  WarmPathGuard() { arm_warm_alloc_counting(); }
  ~WarmPathGuard() { disarm_warm_alloc_counting(); }
  WarmPathGuard(const WarmPathGuard&) = delete;
  WarmPathGuard& operator=(const WarmPathGuard&) = delete;
};

// Mirrors the current totals into `alloc.warm.count` / `alloc.warm.bytes`
// counters of `m` (idempotent: sets, not accumulates).  Zeros when counting
// is disabled — the counters still exist so dashboards need no conditionals.
void publish_warm_alloc_stats(MetricsRegistry& m);

}  // namespace tsca::obs
