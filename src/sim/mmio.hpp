// Memory-mapped control/status registers ("System II").
//
// The host ARM controls the accelerator and DMA unit through Avalon
// memory-mapped registers.  This is a functional register file with access
// accounting; the driver submits instructions by writing their words to the
// instruction window and hitting the doorbell, exactly one level of realism
// above calling a C++ method — enough to model the host/accelerator contract
// (and to inject malformed programs in tests).
#pragma once

#include <cstdint>
#include <vector>
#include <string>

#include "util/check.hpp"

namespace tsca::sim {

class RegisterFile {
 public:
  explicit RegisterFile(std::string name, int num_regs)
      : name_(std::move(name)), regs_(static_cast<std::size_t>(num_regs), 0) {}

  int size() const { return static_cast<int>(regs_.size()); }

  std::uint32_t read(int index) const {
    check_index(index);
    ++reads_;
    return regs_[static_cast<std::size_t>(index)];
  }

  void write(int index, std::uint32_t value) {
    check_index(index);
    ++writes_;
    regs_[static_cast<std::size_t>(index)] = value;
  }

  // Raw access without bus accounting (used by the device side).
  std::uint32_t peek(int index) const {
    check_index(index);
    return regs_[static_cast<std::size_t>(index)];
  }
  void poke(int index, std::uint32_t value) {
    check_index(index);
    regs_[static_cast<std::size_t>(index)] = value;
  }

  std::uint64_t bus_reads() const { return reads_; }
  std::uint64_t bus_writes() const { return writes_; }

 private:
  void check_index(int index) const {
    if (index < 0 || index >= size())
      throw MemoryError("register index out of range on " + name_ + ": " +
                        std::to_string(index));
  }

  std::string name_;
  std::vector<std::uint32_t> regs_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace tsca::sim
