// On-FPGA SRAM banks.
//
// The accelerator uses four dual-port banks: an entire 16-value tile is read
// per cycle from port A, writes go to port B (the paper's RTL script gives
// reads and writes exclusive ports to avoid arbitration).  A bank word is 16
// bytes — one tile of sm8 feature-map values, or 16 bytes of packed weight
// stream.
//
// Port timing: in the cycle domain each port grants one access per cycle;
// kernels acquire the port with `co_await port.grant()` and then perform the
// access combinationally.  In the thread domain grants are free (functional
// model) — the thread program is the paper's software build, which has no
// port contention.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hls/domain.hpp"
#include "pack/tile.hpp"
#include "quant/sm8.hpp"
#include "util/check.hpp"

namespace tsca::sim {

inline constexpr int kWordBytes = 16;

// One bank word: 16 raw octets.
struct Word {
  std::array<std::uint8_t, kWordBytes> b{};
  bool operator==(const Word&) const = default;
};

// Tile (decoded int8 values) ↔ word (sm8 octets).
Word word_from_tile(const pack::Tile& tile);
pack::Tile tile_from_word(const Word& word);

// A single-access-per-cycle port.
class SramPort final : public hls::Waitable {
 public:
  SramPort(std::string name, hls::CycleScheduler* sched)
      : name_(std::move(name)), sched_(sched) {
    if (sched_ != nullptr) sched_->register_waitable(this);
  }

  struct GrantAwaiter {
    SramPort& port;
    bool await_ready() { return port.try_grant(); }
    void await_suspend(std::coroutine_handle<> h) { port.subscribe(h); }
    void await_resume() {
      // A woken waiter was granted the port by on_cycle_start.
    }
  };
  GrantAwaiter grant() { return GrantAwaiter{*this}; }

  // --- Waitable ---
  void on_cycle_start() override {
    if (!waiters_.empty() && try_grant()) {
      sched_->schedule(waiters_.front());
      waiters_.erase(waiters_.begin());
    }
  }
  bool pending() const override { return !waiters_.empty(); }
  bool has_waiters() const override { return !waiters_.empty(); }

  std::uint64_t grants() const { return grants_; }
  std::uint64_t stall_cycles() const { return stalls_; }

 private:
  bool try_grant() {
    if (sched_ == nullptr) {  // thread/functional mode: no contention model
      ++grants_;
      return true;
    }
    const std::uint64_t now = sched_->scheduler_cycle();
    if (granted_cycle_ == now) {
      ++stalls_;
      return false;
    }
    granted_cycle_ = now;
    ++grants_;
    return true;
  }

  void subscribe(std::coroutine_handle<> h) {
    waiters_.push_back(h);
    if (sched_ != nullptr) sched_->mark_waiting(this);
  }

  const std::string name_;
  hls::CycleScheduler* sched_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::uint64_t granted_cycle_ = ~std::uint64_t{0};
  std::uint64_t grants_ = 0;
  std::uint64_t stalls_ = 0;
};

// A dual-port bank: port A reads, port B writes.
class SramBank {
 public:
  SramBank(std::string name, int words) : name_(std::move(name)) {
    TSCA_CHECK(words > 0, "bank size: " << name_);
    storage_.resize(static_cast<std::size_t>(words));
  }

  const std::string& name() const { return name_; }
  int size_words() const { return static_cast<int>(storage_.size()); }

  // Bind the ports to an execution domain for one run.  Ports are recreated
  // per run because cycle schedulers do not outlive an hls::System.
  void bind(hls::CycleScheduler* sched) {
    read_port_ = std::make_unique<SramPort>(name_ + ".portA", sched);
    write_port_ = std::make_unique<SramPort>(name_ + ".portB", sched);
  }

  SramPort& read_port() {
    TSCA_CHECK(read_port_ != nullptr, "bank not bound: " << name_);
    return *read_port_;
  }
  SramPort& write_port() {
    TSCA_CHECK(write_port_ != nullptr, "bank not bound: " << name_);
    return *write_port_;
  }

  // Combinational accesses (acquire the port first in cycle-accurate code).
  Word read_word(int addr) const {
    check_addr(addr);
    return storage_[static_cast<std::size_t>(addr)];
  }
  void write_word(int addr, const Word& word) {
    check_addr(addr);
    storage_[static_cast<std::size_t>(addr)] = word;
  }

  pack::Tile read_tile(int addr) const { return tile_from_word(read_word(addr)); }
  void write_tile(int addr, const pack::Tile& tile) {
    write_word(addr, word_from_tile(tile));
  }

  // Bulk host/DMA access (no port accounting; DMA cost is modelled by the
  // DMA engine).
  void load(int addr, const std::uint8_t* bytes, std::size_t n);
  void store(int addr, std::uint8_t* bytes, std::size_t n) const;
  void fill(int addr, int words, std::uint8_t value);

 private:
  void check_addr(int addr) const {
    if (addr < 0 || addr >= size_words())
      throw MemoryError("bank " + name_ + " address out of range: " +
                        std::to_string(addr) + " / " +
                        std::to_string(size_words()));
  }

  const std::string name_;
  std::vector<Word> storage_;
  std::unique_ptr<SramPort> read_port_;
  std::unique_ptr<SramPort> write_port_;
};

}  // namespace tsca::sim
