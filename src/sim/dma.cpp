#include "sim/dma.hpp"

namespace tsca::sim {

std::uint64_t DmaEngine::transfer_cycles(std::size_t bytes) const {
  const auto& t = dram_.timing();
  const std::uint64_t beats =
      (bytes + static_cast<std::size_t>(t.bus_bytes) - 1) /
      static_cast<std::size_t>(t.bus_bytes);
  return static_cast<std::uint64_t>(setup_cycles_) +
         static_cast<std::uint64_t>(t.access_latency_cycles) + beats;
}

void DmaEngine::trace_transfer(const char* name, std::size_t bytes,
                               std::uint64_t cycles) {
  trace_->span(name, "dma", cycles,
               {{"bytes", static_cast<std::int64_t>(bytes)}});
}

void DmaEngine::to_bank(SramBank& bank, int word_addr, std::uint64_t dram_addr,
                        std::size_t bytes, bool count_stats) {
  if (bytes == 0) return;
  bank.load(word_addr, dram_.raw(dram_addr, bytes), bytes);
  if (!count_stats) return;
  const std::uint64_t cycles = transfer_cycles(bytes);
  ++stats_.transfers;
  stats_.bytes_to_fpga += bytes;
  stats_.modelled_cycles += cycles;
  if (trace_ != nullptr) trace_transfer("dma→fpga", bytes, cycles);
}

void DmaEngine::account_to_fpga(std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t cycles = transfer_cycles(bytes);
  ++stats_.transfers;
  stats_.bytes_to_fpga += bytes;
  stats_.modelled_cycles += cycles;
  if (trace_ != nullptr) trace_transfer("dma→fpga (batch weights)", bytes, cycles);
}

void DmaEngine::to_dram(const SramBank& bank, int word_addr,
                        std::uint64_t dram_addr, std::size_t bytes) {
  if (bytes == 0) return;
  bank.store(word_addr, dram_.raw(dram_addr, bytes), bytes);
  const std::uint64_t cycles = transfer_cycles(bytes);
  ++stats_.transfers;
  stats_.bytes_to_dram += bytes;
  stats_.modelled_cycles += cycles;
  if (trace_ != nullptr) trace_transfer("dma→ddr", bytes, cycles);
}

}  // namespace tsca::sim
