// Off-chip DDR4 model.
//
// Functionally a flat byte array; the timing side is a simple
// bandwidth/latency model used by the DMA engine for traffic accounting.
// The paper's performance results are accelerator-cycle based (DMA is
// overlapped with compute through bank double-buffering), so DDR timing only
// feeds the traffic/energy accounting, not the headline cycle counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace tsca::sim {

struct DramTiming {
  double clock_mhz = 1200.0;  // DDR4-2400 data rate / 2
  int bus_bytes = 32;         // 256-bit DMA path (paper "System I")
  int access_latency_cycles = 30;
};

class Dram {
 public:
  explicit Dram(std::size_t bytes, DramTiming timing = {})
      : storage_(bytes, 0), timing_(timing) {}

  std::size_t size() const { return storage_.size(); }
  const DramTiming& timing() const { return timing_; }

  void write(std::uint64_t addr, const std::uint8_t* data, std::size_t n) {
    check_range(addr, n);
    std::copy(data, data + n, storage_.begin() + static_cast<std::ptrdiff_t>(addr));
  }
  void read(std::uint64_t addr, std::uint8_t* data, std::size_t n) const {
    check_range(addr, n);
    std::copy(storage_.begin() + static_cast<std::ptrdiff_t>(addr),
              storage_.begin() + static_cast<std::ptrdiff_t>(addr + n), data);
  }

  std::uint8_t* raw(std::uint64_t addr, std::size_t n) {
    check_range(addr, n);
    return storage_.data() + addr;
  }
  const std::uint8_t* raw(std::uint64_t addr, std::size_t n) const {
    check_range(addr, n);
    return storage_.data() + addr;
  }

 private:
  void check_range(std::uint64_t addr, std::size_t n) const {
    if (addr + n > storage_.size())
      throw MemoryError("DRAM access out of range: addr=" +
                        std::to_string(addr) + " len=" + std::to_string(n) +
                        " size=" + std::to_string(storage_.size()));
  }

  std::vector<std::uint8_t> storage_;
  DramTiming timing_;
};

}  // namespace tsca::sim
