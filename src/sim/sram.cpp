#include "sim/sram.hpp"

#include <cstring>

namespace tsca::sim {

Word word_from_tile(const pack::Tile& tile) {
  Word word;
  for (int i = 0; i < pack::kTileSize; ++i)
    word.b[static_cast<std::size_t>(i)] =
        quant::sm8_encode(tile.v[static_cast<std::size_t>(i)]);
  return word;
}

pack::Tile tile_from_word(const Word& word) {
  pack::Tile tile;
  for (int i = 0; i < pack::kTileSize; ++i)
    tile.v[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(
        quant::sm8_decode(word.b[static_cast<std::size_t>(i)]));
  return tile;
}

void SramBank::load(int addr, const std::uint8_t* bytes, std::size_t n) {
  const int words = static_cast<int>((n + kWordBytes - 1) / kWordBytes);
  if (words == 0) return;
  check_addr(addr);
  check_addr(addr + words - 1);
  std::size_t remaining = n;
  for (int w = 0; w < words; ++w) {
    Word& word = storage_[static_cast<std::size_t>(addr + w)];
    const std::size_t chunk =
        remaining < kWordBytes ? remaining : std::size_t{kWordBytes};
    word = Word{};
    std::memcpy(word.b.data(), bytes + static_cast<std::size_t>(w) * kWordBytes,
                chunk);
    remaining -= chunk;
  }
}

void SramBank::store(int addr, std::uint8_t* bytes, std::size_t n) const {
  const int words = static_cast<int>((n + kWordBytes - 1) / kWordBytes);
  if (words == 0) return;
  check_addr(addr);
  check_addr(addr + words - 1);
  std::size_t remaining = n;
  for (int w = 0; w < words; ++w) {
    const Word& word = storage_[static_cast<std::size_t>(addr + w)];
    const std::size_t chunk =
        remaining < kWordBytes ? remaining : std::size_t{kWordBytes};
    std::memcpy(bytes + static_cast<std::size_t>(w) * kWordBytes, word.b.data(),
                chunk);
    remaining -= chunk;
  }
}

void SramBank::fill(int addr, int words, std::uint8_t value) {
  if (words <= 0) return;
  check_addr(addr);
  check_addr(addr + words - 1);
  for (int w = 0; w < words; ++w)
    storage_[static_cast<std::size_t>(addr + w)].b.fill(value);
}

}  // namespace tsca::sim
