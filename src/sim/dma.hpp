// DMA engine between DDR and the on-FPGA SRAM banks.
//
// The paper's DMA unit is the one hand-written RTL block; it is driven by the
// host via memory-mapped control registers and moves stripes of feature maps
// and packed weights over a 256-bit bus ("System I").  Here it is a
// functional copy engine with a transfer-cycle model:
//   cycles = setup + ceil(bytes / bus_bytes) + dram.access_latency.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/dram.hpp"
#include "sim/sram.hpp"
#include "util/check.hpp"

namespace tsca::sim {

struct DmaStats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes_to_fpga = 0;
  std::uint64_t bytes_to_dram = 0;
  std::uint64_t modelled_cycles = 0;

  bool operator==(const DmaStats&) const = default;

  DmaStats& operator+=(const DmaStats& other) {
    transfers += other.transfers;
    bytes_to_fpga += other.bytes_to_fpga;
    bytes_to_dram += other.bytes_to_dram;
    modelled_cycles += other.modelled_cycles;
    return *this;
  }
};

// after − before, for per-layer / per-stripe accounting.  The guard catches
// a reset_stats() (or any other counter rollback) inside a measurement
// window — e.g. between a PoolRuntime ScopedMerge snapshot and its merge —
// which would otherwise wrap the unsigned fields into garbage deltas.
inline DmaStats operator-(const DmaStats& after, const DmaStats& before) {
  TSCA_CHECK(after.transfers >= before.transfers &&
                 after.bytes_to_fpga >= before.bytes_to_fpga &&
                 after.bytes_to_dram >= before.bytes_to_dram &&
                 after.modelled_cycles >= before.modelled_cycles,
             "DmaStats delta would underflow — reset_stats() inside a "
             "measurement window?");
  DmaStats d;
  d.transfers = after.transfers - before.transfers;
  d.bytes_to_fpga = after.bytes_to_fpga - before.bytes_to_fpga;
  d.bytes_to_dram = after.bytes_to_dram - before.bytes_to_dram;
  d.modelled_cycles = after.modelled_cycles - before.modelled_cycles;
  return d;
}

class DmaEngine {
 public:
  explicit DmaEngine(Dram& dram, int setup_cycles = 8)
      : dram_(dram), setup_cycles_(setup_cycles) {}

  // DDR → bank.  `bytes` need not be word-aligned; the tail word is
  // zero-padded.  `count_stats = false` moves the data without accounting —
  // used by the host-parallel pool when replicating already-accounted weight
  // streams into worker contexts (the modelled hardware stages them once).
  void to_bank(SramBank& bank, int word_addr, std::uint64_t dram_addr,
               std::size_t bytes, bool count_stats = true);

  // Bank → DDR.
  void to_dram(const SramBank& bank, int word_addr, std::uint64_t dram_addr,
               std::size_t bytes);

  // Stats-only: accounts one DDR → FPGA transfer of `bytes` without moving
  // data, exactly as to_bank would.  Pairs with the uncounted replication
  // above so pooled execution reports the same DMA totals as the serial path.
  void account_to_fpga(std::size_t bytes);

  const DmaStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DmaStats{}; }

  // Observability: every *accounted* transfer is recorded as a span of its
  // modelled cycles on this track (null disables; uncounted replication
  // stays invisible, matching the statistics).  The runtime points this at
  // the owning instance/worker's ".dma" track for the current layer.
  void set_trace(obs::Track* track) { trace_ = track; }

 private:
  std::uint64_t transfer_cycles(std::size_t bytes) const;
  void trace_transfer(const char* name, std::size_t bytes,
                      std::uint64_t cycles);

  Dram& dram_;
  int setup_cycles_;
  DmaStats stats_;
  obs::Track* trace_ = nullptr;
};

}  // namespace tsca::sim
