#include "util/rng.hpp"

#include <cmath>

namespace tsca {

double Rng::next_gaussian() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.141592653589793238462643383279502884 * u2);
}

}  // namespace tsca
