// Minimal leveled logger.
//
// Hardware simulations produce torrents of per-cycle detail; the logger keeps
// that behind a global level so tests run silent and examples/benches can opt
// into progress output.  Not thread-safe by design beyond a per-call mutex on
// the sink: kernels in the threaded engine may log concurrently.
#pragma once

#include <sstream>
#include <string>

namespace tsca {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

// Global threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

#define TSCA_LOG(level, ...)                                        \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::tsca::log_level())) {                    \
      std::ostringstream tsca_log_os_;                              \
      tsca_log_os_ << __VA_ARGS__;                                  \
      ::tsca::detail::log_emit(level, tsca_log_os_.str());          \
    }                                                               \
  } while (0)

#define TSCA_TRACE(...) TSCA_LOG(::tsca::LogLevel::kTrace, __VA_ARGS__)
#define TSCA_DEBUG(...) TSCA_LOG(::tsca::LogLevel::kDebug, __VA_ARGS__)
#define TSCA_INFO(...) TSCA_LOG(::tsca::LogLevel::kInfo, __VA_ARGS__)
#define TSCA_WARN(...) TSCA_LOG(::tsca::LogLevel::kWarn, __VA_ARGS__)
#define TSCA_ERROR(...) TSCA_LOG(::tsca::LogLevel::kError, __VA_ARGS__)

}  // namespace tsca
