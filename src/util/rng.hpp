// Deterministic pseudo-random number generation.
//
// All stochastic inputs in the library (synthetic weights, images, pruning
// masks, workload generators) draw from this generator so every test, example
// and benchmark is reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace tsca {

// xoshiro256** by Blackman & Vigna — fast, high quality, trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    TSCA_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi) {
    TSCA_CHECK(lo <= hi);
    return lo + static_cast<int>(next_below(
                    static_cast<std::uint64_t>(hi) - lo + 1));
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Standard normal via Box-Muller (no cached second value: determinism
  // is simpler to reason about when each call consumes a fixed stream).
  double next_gaussian();

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tsca
