#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tsca {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "[tsca %s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail

}  // namespace tsca
