// Error handling primitives used across the library.
//
// TSCA models a hardware system; most "impossible" conditions are programmer
// or configuration errors (bad instruction fields, out-of-range bank
// addresses).  These raise typed exceptions so tests can assert on failure
// injection, per the failure-injection strategy in DESIGN.md.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tsca {

// Base class of all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Invalid configuration (architecture parameters, layer shapes).
class ConfigError : public Error {
 public:
  using Error::Error;
};

// Malformed or out-of-range accelerator instruction.
class InstructionError : public Error {
 public:
  using Error::Error;
};

// Illegal memory access (bank/DDR out of range, port conflict).
class MemoryError : public Error {
 public:
  using Error::Error;
};

// The streaming system stopped making progress (FIFO deadlock watchdog).
class DeadlockError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind,
                                             const char* cond,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

// Always-on invariant check.  `msg` is streamed, e.g.
//   TSCA_CHECK(x < n, "x=" << x << " n=" << n);
#define TSCA_CHECK(cond, ...)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream tsca_check_os_;                                    \
      tsca_check_os_ << "" __VA_ARGS__;                                     \
      ::tsca::detail::throw_check_failure("TSCA_CHECK", #cond, __FILE__,    \
                                          __LINE__, tsca_check_os_.str()); \
    }                                                                       \
  } while (0)

}  // namespace tsca
