// VGG-16 topology (Simonyan & Zisserman), the paper's test vehicle.
//
// Padding appears as explicit layers (the accelerator executes PAD as its own
// instruction before every convolution).  A scaled-down builder produces
// topologically identical networks small enough for the cycle-accurate engine
// and the test suite.
#pragma once

#include "nn/network.hpp"

namespace tsca::nn {

// The VGG configuration family (Simonyan & Zisserman, Table 1): number of
// 3x3 convolutions per block.  VGG-16 ("D") is the paper's test vehicle.
enum class VggVariant { kVgg11, kVgg13, kVgg16, kVgg19 };

const char* vgg_variant_name(VggVariant variant);

struct Vgg16Options {
  VggVariant variant = VggVariant::kVgg16;
  int input_extent = 224;  // square RGB input
  // Channel counts are divided by this factor (floor, min 4).  1 = the real
  // network.  Use e.g. 16 for fast end-to-end tests.
  int channel_divisor = 1;
  bool include_classifier = true;  // flatten + 3 FC + softmax
  int num_classes = 1000;
};

// Builds a VGG-family network.  Layer names follow the usual convention
// (conv1_1 … conv5_3, pool1 … pool5, fc6/fc7/fc8).
Network build_vgg16(const Vgg16Options& options = {});

// Indices (into Network::layers()) of the 13 convolution layers, in order.
std::vector<std::size_t> vgg16_conv_layers(const Network& net);

}  // namespace tsca::nn
