// Sequential network description.
//
// A Network is a list of layer specs (pad / conv / max-pool / flatten / fully
// connected / softmax).  Padding is an explicit layer — the paper's
// accelerator executes padding as its own instruction, so the network
// description mirrors the instruction stream the driver will compile.
//
// Weight storage is separate from topology: the same Network can be run with
// float weights (oracle) or quantized weights (accelerator semantics).
#pragma once

#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace tsca::nn {

enum class LayerKind {
  kPad,
  kConv,
  kMaxPool,
  kFlatten,
  kFullyConnected,
  kSoftmax,
  kEltwiseAdd,   // residual skip: current activation + an earlier layer's
  kGlobalPool,   // whole-map max pool to 1x1 (square maps)
};

const char* layer_kind_name(LayerKind kind);

struct ConvSpec {
  int out_c = 0;
  int kernel = 3;
  int stride = 1;
  bool relu = true;
  // Depthwise convolution: one filter per channel (out_c must equal the
  // input channel count).  Represented as a dense filter bank whose
  // cross-channel taps are zero — the accelerator's weight zero-skip makes
  // the dense form cost only the diagonal taps, so depthwise needs no new
  // datapath, only this spec bit for builders and shape checks.
  bool depthwise = false;
  bool operator==(const ConvSpec&) const = default;
};

// Residual skip connection: adds the output of layer `from` (an earlier,
// shape-identical feature map) to the current activation.
struct EltwiseSpec {
  int from = -1;  // absolute layer index of the skip source
  bool relu = true;
  bool operator==(const EltwiseSpec&) const = default;
};

struct FcSpec {
  int out_dim = 0;
  bool relu = true;
  bool operator==(const FcSpec&) const = default;
};

struct LayerSpec {
  LayerKind kind = LayerKind::kPad;
  std::string name;
  Padding pad;          // kPad
  ConvSpec conv;        // kConv
  PoolParams pool;      // kMaxPool
  FcSpec fc;            // kFullyConnected
  EltwiseSpec eltwise;  // kEltwiseAdd
};

// Per-layer output shape after shape inference.  For kFlatten and later
// layers `flat_dim` is used and `fm` is zero-sized.
struct LayerShape {
  FmShape fm;
  int flat_dim = 0;
};

class Network {
 public:
  explicit Network(FmShape input_shape, std::string name = "net")
      : input_shape_(input_shape), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const FmShape& input_shape() const { return input_shape_; }
  const std::vector<LayerSpec>& layers() const { return layers_; }

  Network& add_pad(const Padding& pad, std::string name = "");
  Network& add_conv(const ConvSpec& conv, std::string name = "");
  Network& add_maxpool(const PoolParams& pool, std::string name = "");
  Network& add_flatten(std::string name = "");
  Network& add_fc(const FcSpec& fc, std::string name = "");
  Network& add_softmax(std::string name = "");
  // Residual skip: adds the output of earlier layer `from` to the current
  // activation (shapes must match; see infer_shapes).
  Network& add_eltwise_add(const EltwiseSpec& eltwise, std::string name = "");
  // Whole-map max pool to 1x1 (the input map must be square).
  Network& add_global_pool(std::string name = "");
  // Escape hatch for custom layer kinds lowered through the driver's
  // lowering registry.  The spec is appended verbatim; infer_shapes rejects
  // kinds it does not know, but the driver compiles straight from the layer
  // list, so registered custom lowerings work end to end.
  Network& add_layer(LayerSpec spec);

  // Validates the topology and returns the output shape of every layer
  // (element i is the shape *after* layer i).  Throws ConfigError on
  // inconsistent topology (e.g. fc before flatten).
  std::vector<LayerShape> infer_shapes() const;

  // Total multiply-accumulates per conv layer (keyed by layer index); pads
  // and pools contribute zero.  Used for GOPS accounting.
  std::vector<std::int64_t> conv_macs() const;

 private:
  FmShape input_shape_;
  std::string name_;
  std::vector<LayerSpec> layers_;
};

// Float weights for every parameterised layer, indexed by layer position.
struct WeightsF {
  // conv[i] valid iff layer i is kConv; fc[i] valid iff layer i is kFC.
  std::vector<FilterBankF> conv;
  std::vector<std::vector<float>> conv_bias;
  std::vector<std::vector<float>> fc;  // row-major [out][in]
  std::vector<std::vector<float>> fc_bias;
};

// Int8 weights plus requantization parameters (accelerator semantics).
struct WeightsI8 {
  std::vector<FilterBankI8> conv;
  std::vector<std::vector<std::int32_t>> conv_bias;
  std::vector<Requant> conv_requant;
  std::vector<std::vector<std::int8_t>> fc;
  std::vector<std::vector<std::int32_t>> fc_bias;
  std::vector<Requant> fc_requant;
  std::vector<EltwiseQ> eltwise;  // eltwise[i] valid iff layer i is kEltwiseAdd
};

// Gaussian-initialised float weights (He-style scale), deterministic in rng.
WeightsF init_random_weights(const Network& net, Rng& rng);

// Runs the float oracle end to end.  Returns the final activation: if the
// network ends in fc/softmax layers the flat vector, otherwise the feature
// map flattened in CHW order.
std::vector<float> forward_f(const Network& net, const WeightsF& weights,
                             const FeatureMapF& input);

// Per-layer float forward; returns activations after every layer (feature
// maps flattened for post-flatten layers).
struct ActivationF {
  FeatureMapF fm;
  std::vector<float> flat;
  bool is_flat = false;
};
std::vector<ActivationF> forward_f_all(const Network& net,
                                       const WeightsF& weights,
                                       const FeatureMapF& input);

// Runs the int8 reference (accelerator arithmetic) end to end.
struct ActivationI8 {
  FeatureMapI8 fm;
  std::vector<std::int8_t> flat;
  bool is_flat = false;
};
std::vector<ActivationI8> forward_i8_all(const Network& net,
                                         const WeightsI8& weights,
                                         const FeatureMapI8& input);

}  // namespace tsca::nn
