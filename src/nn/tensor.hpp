// Dense tensors for the NN substrate.
//
// Feature maps are stored CHW (channel, row, column) and filter banks OIHW
// (output channel, input channel, row, column), both row-major.  The
// accelerator side of the library uses its own tiled layout (see
// pack/tile.hpp); conversions live in pack/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace tsca::nn {

// Shape of a feature-map tensor: channels × height × width.
struct FmShape {
  int c = 0;
  int h = 0;
  int w = 0;

  std::size_t count() const {
    return static_cast<std::size_t>(c) * h * w;
  }
  bool operator==(const FmShape&) const = default;
};

// Shape of a filter bank: out-channels × in-channels × kernel-h × kernel-w.
struct FilterShape {
  int oc = 0;
  int ic = 0;
  int kh = 0;
  int kw = 0;

  std::size_t count() const {
    return static_cast<std::size_t>(oc) * ic * kh * kw;
  }
  bool operator==(const FilterShape&) const = default;
};

// A CHW feature map.
template <typename T>
class FeatureMap {
 public:
  FeatureMap() = default;
  explicit FeatureMap(FmShape shape, T fill = T{})
      : shape_(shape), data_(shape.count(), fill) {
    TSCA_CHECK(shape.c >= 0 && shape.h >= 0 && shape.w >= 0);
  }

  const FmShape& shape() const { return shape_; }
  int channels() const { return shape_.c; }
  int height() const { return shape_.h; }
  int width() const { return shape_.w; }
  std::size_t size() const { return data_.size(); }

  T& at(int c, int y, int x) {
    TSCA_CHECK(in_range(c, y, x),
               "fm index (" << c << ',' << y << ',' << x << ") shape ("
                            << shape_.c << ',' << shape_.h << ',' << shape_.w
                            << ')');
    return data_[index(c, y, x)];
  }
  const T& at(int c, int y, int x) const {
    TSCA_CHECK(in_range(c, y, x),
               "fm index (" << c << ',' << y << ',' << x << ") shape ("
                            << shape_.c << ',' << shape_.h << ',' << shape_.w
                            << ')');
    return data_[index(c, y, x)];
  }

  // Unchecked access for hot loops.
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t index(int c, int y, int x) const {
    return (static_cast<std::size_t>(c) * shape_.h + y) * shape_.w + x;
  }

  bool in_range(int c, int y, int x) const {
    return c >= 0 && c < shape_.c && y >= 0 && y < shape_.h && x >= 0 &&
           x < shape_.w;
  }

  bool operator==(const FeatureMap&) const = default;

 private:
  FmShape shape_;
  std::vector<T> data_;
};

// An OIHW filter bank.
template <typename T>
class FilterBank {
 public:
  FilterBank() = default;
  explicit FilterBank(FilterShape shape, T fill = T{})
      : shape_(shape), data_(shape.count(), fill) {
    TSCA_CHECK(shape.oc >= 0 && shape.ic >= 0 && shape.kh >= 0 &&
               shape.kw >= 0);
  }

  const FilterShape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }

  T& at(int oc, int ic, int ky, int kx) {
    TSCA_CHECK(in_range(oc, ic, ky, kx),
               "filter index (" << oc << ',' << ic << ',' << ky << ',' << kx
                                << ')');
    return data_[index(oc, ic, ky, kx)];
  }
  const T& at(int oc, int ic, int ky, int kx) const {
    TSCA_CHECK(in_range(oc, ic, ky, kx),
               "filter index (" << oc << ',' << ic << ',' << ky << ',' << kx
                                << ')');
    return data_[index(oc, ic, ky, kx)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t index(int oc, int ic, int ky, int kx) const {
    return ((static_cast<std::size_t>(oc) * shape_.ic + ic) * shape_.kh + ky) *
               shape_.kw +
           kx;
  }
  bool in_range(int oc, int ic, int ky, int kx) const {
    return oc >= 0 && oc < shape_.oc && ic >= 0 && ic < shape_.ic && ky >= 0 &&
           ky < shape_.kh && kx >= 0 && kx < shape_.kw;
  }

  bool operator==(const FilterBank&) const = default;

 private:
  FilterShape shape_;
  std::vector<T> data_;
};

using FeatureMapF = FeatureMap<float>;
using FeatureMapI8 = FeatureMap<std::int8_t>;
using FeatureMapI32 = FeatureMap<std::int32_t>;
using FilterBankF = FilterBank<float>;
using FilterBankI8 = FilterBank<std::int8_t>;

}  // namespace tsca::nn
