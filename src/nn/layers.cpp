#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

namespace tsca::nn {

int conv_out_extent(int in, int kernel, int stride) {
  TSCA_CHECK(stride > 0 && kernel > 0 && in >= kernel,
             "in=" << in << " kernel=" << kernel << " stride=" << stride);
  return (in - kernel) / stride + 1;
}

std::int8_t requantize(std::int32_t acc, const Requant& rq) {
  std::int64_t v = acc;
  if (rq.shift > 0) {
    // Round half away from zero, matching the accelerator's rounder.
    const std::int64_t half = std::int64_t{1} << (rq.shift - 1);
    v = (v >= 0) ? ((v + half) >> rq.shift) : (-((-v + half) >> rq.shift));
  }
  if (rq.relu && v < 0) v = 0;
  v = std::clamp<std::int64_t>(v, kInt8Min, kInt8Max);
  return static_cast<std::int8_t>(v);
}

// ---- float ----------------------------------------------------------------

FeatureMapF pad_f(const FeatureMapF& in, const Padding& pad) {
  TSCA_CHECK(pad.top >= 0 && pad.bottom >= 0 && pad.left >= 0 &&
             pad.right >= 0);
  FeatureMapF out({in.channels(), in.height() + pad.top + pad.bottom,
                   in.width() + pad.left + pad.right});
  for (int c = 0; c < in.channels(); ++c)
    for (int y = 0; y < in.height(); ++y)
      for (int x = 0; x < in.width(); ++x)
        out.at(c, y + pad.top, x + pad.left) = in.at(c, y, x);
  return out;
}

FeatureMapF conv2d_f(const FeatureMapF& in, const FilterBankF& filters,
                     const std::vector<float>& bias, int stride, bool relu) {
  const FilterShape& fs = filters.shape();
  TSCA_CHECK(fs.ic == in.channels(), "filter ic=" << fs.ic << " input c="
                                                  << in.channels());
  TSCA_CHECK(bias.empty() || static_cast<int>(bias.size()) == fs.oc);
  const int oh = conv_out_extent(in.height(), fs.kh, stride);
  const int ow = conv_out_extent(in.width(), fs.kw, stride);
  FeatureMapF out({fs.oc, oh, ow});
  for (int oc = 0; oc < fs.oc; ++oc) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float acc = bias.empty() ? 0.0f : bias[oc];
        for (int ic = 0; ic < fs.ic; ++ic)
          for (int ky = 0; ky < fs.kh; ++ky)
            for (int kx = 0; kx < fs.kw; ++kx)
              acc += in.at(ic, oy * stride + ky, ox * stride + kx) *
                     filters.at(oc, ic, ky, kx);
        if (relu && acc < 0.0f) acc = 0.0f;
        out.at(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

FeatureMapF maxpool_f(const FeatureMapF& in, const PoolParams& pool) {
  const int oh = conv_out_extent(in.height(), pool.size, pool.stride);
  const int ow = conv_out_extent(in.width(), pool.size, pool.stride);
  FeatureMapF out({in.channels(), oh, ow});
  for (int c = 0; c < in.channels(); ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float best = in.at(c, oy * pool.stride, ox * pool.stride);
        for (int py = 0; py < pool.size; ++py)
          for (int px = 0; px < pool.size; ++px)
            best = std::max(best, in.at(c, oy * pool.stride + py,
                                        ox * pool.stride + px));
        out.at(c, oy, ox) = best;
      }
    }
  }
  return out;
}

FeatureMapF eltwise_add_f(const FeatureMapF& lhs, const FeatureMapF& rhs,
                          bool relu) {
  TSCA_CHECK(lhs.shape() == rhs.shape(), "eltwise operand shape mismatch");
  FeatureMapF out(lhs.shape());
  for (std::size_t i = 0; i < out.size(); ++i) {
    float v = lhs.data()[i] + rhs.data()[i];
    if (relu && v < 0.0f) v = 0.0f;
    out.data()[i] = v;
  }
  return out;
}

FeatureMapF relu_f(const FeatureMapF& in) {
  FeatureMapF out = in;
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = std::max(0.0f, out.data()[i]);
  return out;
}

std::vector<float> fc_f(const std::vector<float>& in,
                        const std::vector<float>& weights,
                        const std::vector<float>& bias, int out_dim,
                        bool relu) {
  TSCA_CHECK(out_dim > 0);
  TSCA_CHECK(weights.size() == in.size() * static_cast<std::size_t>(out_dim));
  TSCA_CHECK(bias.empty() || static_cast<int>(bias.size()) == out_dim);
  std::vector<float> out(static_cast<std::size_t>(out_dim), 0.0f);
  for (int o = 0; o < out_dim; ++o) {
    float acc = bias.empty() ? 0.0f : bias[o];
    const float* row = &weights[static_cast<std::size_t>(o) * in.size()];
    for (std::size_t i = 0; i < in.size(); ++i) acc += row[i] * in[i];
    out[o] = (relu && acc < 0.0f) ? 0.0f : acc;
  }
  return out;
}

std::vector<float> softmax_f(const std::vector<float>& in) {
  TSCA_CHECK(!in.empty());
  const float mx = *std::max_element(in.begin(), in.end());
  std::vector<float> out(in.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = std::exp(in[i] - mx);
    sum += out[i];
  }
  for (auto& v : out) v = static_cast<float>(v / sum);
  return out;
}

// ---- int8 -------------------------------------------------------------

FeatureMapI8 pad_i8(const FeatureMapI8& in, const Padding& pad) {
  TSCA_CHECK(pad.top >= 0 && pad.bottom >= 0 && pad.left >= 0 &&
             pad.right >= 0);
  FeatureMapI8 out({in.channels(), in.height() + pad.top + pad.bottom,
                    in.width() + pad.left + pad.right});
  for (int c = 0; c < in.channels(); ++c)
    for (int y = 0; y < in.height(); ++y)
      for (int x = 0; x < in.width(); ++x)
        out.at(c, y + pad.top, x + pad.left) = in.at(c, y, x);
  return out;
}

FeatureMapI32 conv2d_i8_raw(const FeatureMapI8& in,
                            const FilterBankI8& filters,
                            const std::vector<std::int32_t>& bias,
                            int stride) {
  const FilterShape& fs = filters.shape();
  TSCA_CHECK(fs.ic == in.channels());
  TSCA_CHECK(bias.empty() || static_cast<int>(bias.size()) == fs.oc);
  const int oh = conv_out_extent(in.height(), fs.kh, stride);
  const int ow = conv_out_extent(in.width(), fs.kw, stride);
  FeatureMapI32 out({fs.oc, oh, ow});
  for (int oc = 0; oc < fs.oc; ++oc) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::int32_t acc = bias.empty() ? 0 : bias[oc];
        for (int ic = 0; ic < fs.ic; ++ic)
          for (int ky = 0; ky < fs.kh; ++ky)
            for (int kx = 0; kx < fs.kw; ++kx)
              acc += static_cast<std::int32_t>(
                         in.at(ic, oy * stride + ky, ox * stride + kx)) *
                     filters.at(oc, ic, ky, kx);
        out.at(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

FeatureMapI8 conv2d_i8(const FeatureMapI8& in, const FilterBankI8& filters,
                       const std::vector<std::int32_t>& bias, int stride,
                       const Requant& rq) {
  const FeatureMapI32 raw = conv2d_i8_raw(in, filters, bias, stride);
  FeatureMapI8 out(raw.shape());
  for (std::size_t i = 0; i < raw.size(); ++i)
    out.data()[i] = requantize(raw.data()[i], rq);
  return out;
}

FeatureMapI8 maxpool_i8(const FeatureMapI8& in, const PoolParams& pool) {
  const int oh = conv_out_extent(in.height(), pool.size, pool.stride);
  const int ow = conv_out_extent(in.width(), pool.size, pool.stride);
  FeatureMapI8 out({in.channels(), oh, ow});
  for (int c = 0; c < in.channels(); ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::int8_t best = in.at(c, oy * pool.stride, ox * pool.stride);
        for (int py = 0; py < pool.size; ++py)
          for (int px = 0; px < pool.size; ++px)
            best = std::max(best, in.at(c, oy * pool.stride + py,
                                        ox * pool.stride + px));
        out.at(c, oy, ox) = best;
      }
    }
  }
  return out;
}

std::int8_t eltwise_add_q(std::int8_t lhs, std::int8_t rhs,
                          const EltwiseQ& q) {
  // Align both operands to the finer exponent in a 64-bit accumulator, add,
  // then requantize with the accelerator's rounder.  Identical arithmetic to
  // requantize() but the accumulator enters already wide — the left shifts
  // can overflow 32 bits even though each operand is int8.
  std::int64_t v = (std::int64_t{lhs} << q.lhs_shift) +
                   (std::int64_t{rhs} << q.rhs_shift);
  if (q.rq.shift > 0) {
    const std::int64_t half = std::int64_t{1} << (q.rq.shift - 1);
    v = (v >= 0) ? ((v + half) >> q.rq.shift) : (-((-v + half) >> q.rq.shift));
  }
  if (q.rq.relu && v < 0) v = 0;
  v = std::clamp<std::int64_t>(v, kInt8Min, kInt8Max);
  return static_cast<std::int8_t>(v);
}

FeatureMapI8 eltwise_add_i8(const FeatureMapI8& lhs, const FeatureMapI8& rhs,
                            const EltwiseQ& q) {
  TSCA_CHECK(lhs.shape() == rhs.shape(), "eltwise operand shape mismatch");
  TSCA_CHECK(q.lhs_shift >= 0 && q.rhs_shift >= 0 && q.lhs_shift < 56 &&
                 q.rhs_shift < 56,
             "eltwise shift out of range: " << q.lhs_shift << "/"
                                            << q.rhs_shift);
  FeatureMapI8 out(lhs.shape());
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = eltwise_add_q(lhs.data()[i], rhs.data()[i], q);
  return out;
}

std::vector<std::int8_t> fc_i8(const std::vector<std::int8_t>& in,
                               const std::vector<std::int8_t>& weights,
                               const std::vector<std::int32_t>& bias,
                               int out_dim, const Requant& rq) {
  TSCA_CHECK(out_dim > 0);
  TSCA_CHECK(weights.size() == in.size() * static_cast<std::size_t>(out_dim));
  TSCA_CHECK(bias.empty() || static_cast<int>(bias.size()) == out_dim);
  std::vector<std::int8_t> out(static_cast<std::size_t>(out_dim));
  for (int o = 0; o < out_dim; ++o) {
    std::int32_t acc = bias.empty() ? 0 : bias[o];
    const std::int8_t* row = &weights[static_cast<std::size_t>(o) * in.size()];
    for (std::size_t i = 0; i < in.size(); ++i)
      acc += static_cast<std::int32_t>(row[i]) * in[i];
    out[o] = requantize(acc, rq);
  }
  return out;
}

}  // namespace tsca::nn
