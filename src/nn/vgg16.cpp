#include "nn/vgg16.hpp"

#include <algorithm>
#include <array>

namespace tsca::nn {

namespace {

// Channels per block are common to the family; depth varies per variant.
constexpr std::array<int, 5> kBlockChannels = {64, 128, 256, 512, 512};

std::array<int, 5> block_convs(VggVariant variant) {
  switch (variant) {
    case VggVariant::kVgg11:
      return {1, 1, 2, 2, 2};
    case VggVariant::kVgg13:
      return {2, 2, 2, 2, 2};
    case VggVariant::kVgg16:
      return {2, 2, 3, 3, 3};
    case VggVariant::kVgg19:
      return {2, 2, 4, 4, 4};
  }
  TSCA_CHECK(false, "unknown VGG variant");
  return {};
}

int scaled_channels(int channels, int divisor) {
  return std::max(4, channels / divisor);
}

}  // namespace

const char* vgg_variant_name(VggVariant variant) {
  switch (variant) {
    case VggVariant::kVgg11:
      return "vgg11";
    case VggVariant::kVgg13:
      return "vgg13";
    case VggVariant::kVgg16:
      return "vgg16";
    case VggVariant::kVgg19:
      return "vgg19";
  }
  return "?";
}

Network build_vgg16(const Vgg16Options& options) {
  TSCA_CHECK(options.input_extent >= 32,
             "VGG-16 needs >= 32 px input (5 pooling stages), got "
                 << options.input_extent);
  TSCA_CHECK(options.input_extent % 32 == 0,
             "input extent must be a multiple of 32, got "
                 << options.input_extent);
  TSCA_CHECK(options.channel_divisor >= 1);

  const std::array<int, 5> convs_per_block = block_convs(options.variant);
  Network net({3, options.input_extent, options.input_extent},
              vgg_variant_name(options.variant));
  for (std::size_t b = 0; b < kBlockChannels.size(); ++b) {
    const int out_c = scaled_channels(kBlockChannels[b],
                                      options.channel_divisor);
    for (int conv = 0; conv < convs_per_block[b]; ++conv) {
      const std::string tag =
          std::to_string(b + 1) + "_" + std::to_string(conv + 1);
      net.add_pad(Padding::uniform(1), "pad" + tag);
      net.add_conv({.out_c = out_c, .kernel = 3, .stride = 1, .relu = true},
                   "conv" + tag);
    }
    net.add_maxpool({.size = 2, .stride = 2},
                    "pool" + std::to_string(b + 1));
  }
  if (options.include_classifier) {
    net.add_flatten("flatten");
    const int fc_dim = scaled_channels(4096, options.channel_divisor);
    net.add_fc({.out_dim = fc_dim, .relu = true}, "fc6");
    net.add_fc({.out_dim = fc_dim, .relu = true}, "fc7");
    net.add_fc({.out_dim = options.num_classes, .relu = false}, "fc8");
    net.add_softmax("softmax");
  }
  return net;
}

std::vector<std::size_t> vgg16_conv_layers(const Network& net) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < net.layers().size(); ++i)
    if (net.layers()[i].kind == LayerKind::kConv) indices.push_back(i);
  return indices;
}

}  // namespace tsca::nn
