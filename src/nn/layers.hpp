// Reference layer implementations ("the oracle").
//
// Two families:
//   * float ops — stand-in for the Caffe model the paper trains against;
//   * int8 ops — bit-exact software model of the accelerator's arithmetic
//     (int8 operands in [-127,127], 32-bit accumulation, rounded right-shift
//     requantization, optional fused ReLU, saturation to [-127,127]).
//
// Every accelerator engine (threaded, cycle-accurate) is tested for bit-exact
// agreement with the int8 ops here.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace tsca::nn {

// Padding amounts around a feature map (paper: zeros around the perimeter).
struct Padding {
  int top = 0;
  int bottom = 0;
  int left = 0;
  int right = 0;

  static Padding uniform(int p) { return {p, p, p, p}; }
  bool operator==(const Padding&) const = default;
};

// Max-pooling window geometry.
struct PoolParams {
  int size = 2;
  int stride = 2;
  bool operator==(const PoolParams&) const = default;
};

// Requantization applied after integer accumulation.
struct Requant {
  int shift = 0;    // arithmetic right shift with round-half-up
  bool relu = false;

  bool operator==(const Requant&) const = default;
};

// Saturating int8 range used throughout: sign+magnitude has no -128.
inline constexpr std::int32_t kInt8Min = -127;
inline constexpr std::int32_t kInt8Max = 127;

// Rounded arithmetic right shift, then optional ReLU, then saturation.
std::int8_t requantize(std::int32_t acc, const Requant& rq);

// Elementwise-add (residual skip) requantization.  Both operands live on
// power-of-two exponents, so aligning them is a left shift into a wide
// accumulator, then the usual rounded right shift back down:
//   acc = (lhs << lhs_shift) + (rhs << rhs_shift);  out = requantize(acc).
// The accumulator is 64-bit: shifts are bounded by the quantizer's exponent
// span, which can exceed what 127 << shift fits in 32 bits.
struct EltwiseQ {
  int lhs_shift = 0;
  int rhs_shift = 0;
  Requant rq;

  bool operator==(const EltwiseQ&) const = default;
};

// ---- float reference ----------------------------------------------------

FeatureMapF pad_f(const FeatureMapF& in, const Padding& pad);
FeatureMapF conv2d_f(const FeatureMapF& in, const FilterBankF& filters,
                     const std::vector<float>& bias, int stride, bool relu);
FeatureMapF maxpool_f(const FeatureMapF& in, const PoolParams& pool);
FeatureMapF eltwise_add_f(const FeatureMapF& lhs, const FeatureMapF& rhs,
                          bool relu);
FeatureMapF relu_f(const FeatureMapF& in);
std::vector<float> fc_f(const std::vector<float>& in,
                        const std::vector<float>& weights,  // [out][in]
                        const std::vector<float>& bias, int out_dim, bool relu);
std::vector<float> softmax_f(const std::vector<float>& in);

// ---- int8 reference (accelerator semantics) ------------------------------

FeatureMapI8 pad_i8(const FeatureMapI8& in, const Padding& pad);

// Raw 32-bit accumulator output (bias pre-loaded), before requantization.
FeatureMapI32 conv2d_i8_raw(const FeatureMapI8& in,
                            const FilterBankI8& filters,
                            const std::vector<std::int32_t>& bias, int stride);

FeatureMapI8 conv2d_i8(const FeatureMapI8& in, const FilterBankI8& filters,
                       const std::vector<std::int32_t>& bias, int stride,
                       const Requant& rq);

FeatureMapI8 maxpool_i8(const FeatureMapI8& in, const PoolParams& pool);

// Residual add: shape-identical operands, EltwiseQ alignment + requantize.
FeatureMapI8 eltwise_add_i8(const FeatureMapI8& lhs, const FeatureMapI8& rhs,
                            const EltwiseQ& q);

// Scalar form used by the tiled fast path (same arithmetic, no shape walk).
std::int8_t eltwise_add_q(std::int8_t lhs, std::int8_t rhs, const EltwiseQ& q);

std::vector<std::int8_t> fc_i8(const std::vector<std::int8_t>& in,
                               const std::vector<std::int8_t>& weights,
                               const std::vector<std::int32_t>& bias,
                               int out_dim, const Requant& rq);

// Output spatial size of a convolution/pool with given input extent.
int conv_out_extent(int in, int kernel, int stride);

}  // namespace tsca::nn
