#include "nn/zoo.hpp"

#include <utility>

#include "quant/ternary.hpp"
#include "util/rng.hpp"

namespace tsca::zoo {

namespace {

// Uniform calibration samples in [-1, 1), deterministic in `rng`.
std::vector<nn::FeatureMapF> calibration_samples(const nn::FmShape& shape,
                                                 Rng& rng, int count = 3) {
  std::vector<nn::FeatureMapF> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (int s = 0; s < count; ++s) {
    nn::FeatureMapF fm(shape);
    for (std::size_t i = 0; i < fm.size(); ++i)
      fm.data()[i] = static_cast<float>(rng.next_double() * 2.0 - 1.0);
    samples.push_back(std::move(fm));
  }
  return samples;
}

ZooModel quantize(nn::Network net, Rng& rng) {
  const nn::WeightsF weights = nn::init_random_weights(net, rng);
  const std::vector<nn::FeatureMapF> samples =
      calibration_samples(net.input_shape(), rng);
  quant::QuantizedModel model = quant::quantize_network(net, weights, samples);
  return ZooModel{std::move(net), std::move(model)};
}

}  // namespace

ZooModel make_residual_cifar(std::uint64_t seed) {
  Rng rng(seed);
  nn::Network net({3, 16, 16}, "residual_cifar");
  // Block 1: stem, then a two-conv residual whose skip source is the stem's
  // fused pad+conv step (slot saved off a kFusedPadConv step).
  net.add_pad(nn::Padding::uniform(1), "pad0");
  net.add_conv({.out_c = 16, .kernel = 3, .relu = true}, "conv0");  // layer 1
  net.add_pad(nn::Padding::uniform(1), "pad1a");
  net.add_conv({.out_c = 16, .kernel = 3, .relu = true}, "conv1a");
  net.add_pad(nn::Padding::uniform(1), "pad1b");
  net.add_conv({.out_c = 16, .kernel = 3, .relu = false}, "conv1b");
  net.add_eltwise_add({.from = 1, .relu = true}, "add1");
  // Block 2: pool (slot source is a kPadPool step), residual at 8x8.
  net.add_maxpool({.size = 2, .stride = 2}, "pool1");  // layer 7
  net.add_pad(nn::Padding::uniform(1), "pad2a");
  net.add_conv({.out_c = 16, .kernel = 3, .relu = true}, "conv2a");
  net.add_pad(nn::Padding::uniform(1), "pad2b");
  net.add_conv({.out_c = 16, .kernel = 3, .relu = false}, "conv2b");
  net.add_eltwise_add({.from = 7, .relu = true}, "add2");
  // Head: pool to 4x4, global pool, classifier.
  net.add_maxpool({.size = 2, .stride = 2}, "pool2");
  net.add_global_pool("gpool");
  net.add_flatten("flatten");
  net.add_fc({.out_dim = 10, .relu = false}, "fc");
  net.add_softmax("softmax");
  return quantize(std::move(net), rng);
}

ZooModel make_mobile_depthwise(std::uint64_t seed) {
  Rng rng(seed);
  nn::Network net({3, 16, 16}, "mobile_dw");
  // Stem: standard 3x3 conv to 8 channels.
  net.add_pad(nn::Padding::uniform(1), "pad0");
  net.add_conv({.out_c = 8, .kernel = 3, .relu = true}, "conv0");
  // Stage 1: depthwise 3x3 + pointwise 1x1 to 16 channels.
  net.add_pad(nn::Padding::uniform(1), "pad1");
  net.add_conv({.out_c = 8, .kernel = 3, .relu = true, .depthwise = true},
               "dw1");
  net.add_conv({.out_c = 16, .kernel = 1, .relu = true}, "pw1");
  net.add_maxpool({.size = 2, .stride = 2}, "pool1");
  // Stage 2: depthwise 3x3 + pointwise 1x1 to 32 channels at 8x8.
  net.add_pad(nn::Padding::uniform(1), "pad2");
  net.add_conv({.out_c = 16, .kernel = 3, .relu = true, .depthwise = true},
               "dw2");
  net.add_conv({.out_c = 32, .kernel = 1, .relu = true}, "pw2");
  // Head: global pool over the 8x8 map, classifier.
  net.add_global_pool("gpool");
  net.add_flatten("flatten");
  net.add_fc({.out_dim = 10, .relu = false}, "fc");
  net.add_softmax("softmax");
  return quantize(std::move(net), rng);
}

ZooModel make_ternary_mlp(std::uint64_t seed) {
  Rng rng(seed);
  // An MLP expressed as 1x1 convs over a {16,1,1} "feature map": each layer
  // is a dense matrix the ternary weight stream runs through the conv
  // datapath, exactly like the FC-as-1x1-conv lowering.
  nn::Network net({16, 1, 1}, "ternary_mlp");
  net.add_conv({.out_c = 32, .kernel = 1, .relu = true}, "mlp0");
  net.add_conv({.out_c = 32, .kernel = 1, .relu = true}, "mlp1");
  net.add_conv({.out_c = 16, .kernel = 1, .relu = false}, "mlp2");
  net.add_flatten("flatten");
  net.add_fc({.out_dim = 10, .relu = false}, "fc");
  net.add_softmax("softmax");

  const nn::WeightsF weights = nn::init_random_weights(net, rng);
  const std::vector<nn::FeatureMapF> samples =
      calibration_samples(net.input_shape(), rng);
  quant::QuantizedModel model =
      quant::ternarize_network(net, weights, samples);
  return ZooModel{std::move(net), std::move(model)};
}

}  // namespace tsca::zoo
