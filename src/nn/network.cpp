#include "nn/network.hpp"

#include <cmath>

namespace tsca::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kPad:
      return "pad";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kFlatten:
      return "flatten";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kEltwiseAdd:
      return "eltwise_add";
    case LayerKind::kGlobalPool:
      return "global_pool";
  }
  return "?";
}

namespace {

std::string default_name(const char* base, std::size_t index) {
  return std::string(base) + "_" + std::to_string(index);
}

}  // namespace

Network& Network::add_pad(const Padding& pad, std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kPad;
  spec.pad = pad;
  spec.name = name.empty() ? default_name("pad", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_conv(const ConvSpec& conv, std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kConv;
  spec.conv = conv;
  spec.name = name.empty() ? default_name("conv", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_maxpool(const PoolParams& pool, std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kMaxPool;
  spec.pool = pool;
  spec.name = name.empty() ? default_name("pool", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_flatten(std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kFlatten;
  spec.name = name.empty() ? default_name("flatten", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_fc(const FcSpec& fc, std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kFullyConnected;
  spec.fc = fc;
  spec.name = name.empty() ? default_name("fc", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_softmax(std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kSoftmax;
  spec.name = name.empty() ? default_name("softmax", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_eltwise_add(const EltwiseSpec& eltwise,
                                  std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kEltwiseAdd;
  spec.eltwise = eltwise;
  spec.name = name.empty() ? default_name("eltwise", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_global_pool(std::string name) {
  LayerSpec spec;
  spec.kind = LayerKind::kGlobalPool;
  spec.name = name.empty() ? default_name("gpool", layers_.size()) : name;
  layers_.push_back(std::move(spec));
  return *this;
}

Network& Network::add_layer(LayerSpec spec) {
  if (spec.name.empty())
    spec.name = default_name(layer_kind_name(spec.kind), layers_.size());
  layers_.push_back(std::move(spec));
  return *this;
}

std::vector<LayerShape> Network::infer_shapes() const {
  std::vector<LayerShape> shapes;
  shapes.reserve(layers_.size());
  FmShape fm = input_shape_;
  int flat_dim = 0;
  bool flat = false;
  TSCA_CHECK(fm.c > 0 && fm.h > 0 && fm.w > 0, "network input shape");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerSpec& spec = layers_[i];
    LayerShape out;
    switch (spec.kind) {
      case LayerKind::kPad:
        if (flat) throw ConfigError("pad layer after flatten: " + spec.name);
        fm.h += spec.pad.top + spec.pad.bottom;
        fm.w += spec.pad.left + spec.pad.right;
        out.fm = fm;
        break;
      case LayerKind::kConv: {
        if (flat) throw ConfigError("conv layer after flatten: " + spec.name);
        if (spec.conv.out_c <= 0 || spec.conv.kernel <= 0 ||
            spec.conv.stride <= 0)
          throw ConfigError("bad conv spec: " + spec.name);
        if (fm.h < spec.conv.kernel || fm.w < spec.conv.kernel)
          throw ConfigError("conv kernel larger than input: " + spec.name);
        if (spec.conv.depthwise && spec.conv.out_c != fm.c)
          throw ConfigError("depthwise conv must keep channel count: " +
                            spec.name);
        fm = {spec.conv.out_c,
              conv_out_extent(fm.h, spec.conv.kernel, spec.conv.stride),
              conv_out_extent(fm.w, spec.conv.kernel, spec.conv.stride)};
        out.fm = fm;
        break;
      }
      case LayerKind::kMaxPool:
        if (flat) throw ConfigError("pool layer after flatten: " + spec.name);
        if (fm.h < spec.pool.size || fm.w < spec.pool.size)
          throw ConfigError("pool window larger than input: " + spec.name);
        fm = {fm.c, conv_out_extent(fm.h, spec.pool.size, spec.pool.stride),
              conv_out_extent(fm.w, spec.pool.size, spec.pool.stride)};
        out.fm = fm;
        break;
      case LayerKind::kFlatten:
        if (flat) throw ConfigError("double flatten: " + spec.name);
        flat = true;
        flat_dim = static_cast<int>(fm.count());
        out.flat_dim = flat_dim;
        break;
      case LayerKind::kFullyConnected:
        if (!flat)
          throw ConfigError("fc layer before flatten: " + spec.name);
        if (spec.fc.out_dim <= 0) throw ConfigError("bad fc spec: " + spec.name);
        flat_dim = spec.fc.out_dim;
        out.flat_dim = flat_dim;
        break;
      case LayerKind::kSoftmax:
        if (!flat)
          throw ConfigError("softmax before flatten: " + spec.name);
        out.flat_dim = flat_dim;
        break;
      case LayerKind::kEltwiseAdd: {
        if (flat)
          throw ConfigError("eltwise layer after flatten: " + spec.name);
        const int from = spec.eltwise.from;
        if (from < 0 || from >= static_cast<int>(i))
          throw ConfigError("eltwise skip source out of range: " + spec.name);
        const LayerShape& src = shapes[static_cast<std::size_t>(from)];
        if (src.flat_dim != 0)
          throw ConfigError("eltwise skip source is flat: " + spec.name);
        if (!(src.fm == fm))
          throw ConfigError("eltwise skip shape mismatch: " + spec.name);
        out.fm = fm;
        break;
      }
      case LayerKind::kGlobalPool:
        if (flat)
          throw ConfigError("global pool after flatten: " + spec.name);
        if (fm.h != fm.w)
          throw ConfigError("global pool needs a square map: " + spec.name);
        fm = {fm.c, 1, 1};
        out.fm = fm;
        break;
      default:
        throw ConfigError("unknown layer kind in shape inference: " +
                          spec.name);
    }
    if (!flat) out.flat_dim = 0;
    shapes.push_back(out);
  }
  return shapes;
}

std::vector<std::int64_t> Network::conv_macs() const {
  const std::vector<LayerShape> shapes = infer_shapes();
  std::vector<std::int64_t> macs(layers_.size(), 0);
  FmShape in = input_shape_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerSpec& spec = layers_[i];
    if (spec.kind == LayerKind::kConv) {
      const FmShape& out = shapes[i].fm;
      macs[i] = static_cast<std::int64_t>(out.c) * out.h * out.w * in.c *
                spec.conv.kernel * spec.conv.kernel;
    }
    if (shapes[i].flat_dim == 0) in = shapes[i].fm;
  }
  return macs;
}

WeightsF init_random_weights(const Network& net, Rng& rng) {
  const std::vector<LayerShape> shapes = net.infer_shapes();
  const std::size_t n = net.layers().size();
  WeightsF w;
  w.conv.resize(n);
  w.conv_bias.resize(n);
  w.fc.resize(n);
  w.fc_bias.resize(n);
  FmShape in = net.input_shape();
  int flat_in = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LayerSpec& spec = net.layers()[i];
    if (spec.kind == LayerKind::kConv) {
      const FilterShape fs{spec.conv.out_c, in.c, spec.conv.kernel,
                           spec.conv.kernel};
      FilterBankF bank(fs);
      if (spec.conv.depthwise) {
        // One filter per channel: only the diagonal (oc == ic) taps are
        // populated; the rest of the dense bank stays zero and the
        // accelerator's weight zero-skip never streams it.
        const double scale =
            std::sqrt(2.0 / (static_cast<double>(fs.kh) * fs.kw));
        for (int oc = 0; oc < fs.oc; ++oc)
          for (int ky = 0; ky < fs.kh; ++ky)
            for (int kx = 0; kx < fs.kw; ++kx)
              bank.at(oc, oc, ky, kx) =
                  static_cast<float>(rng.next_gaussian() * scale);
      } else {
        const double scale =
            std::sqrt(2.0 / (static_cast<double>(fs.ic) * fs.kh * fs.kw));
        for (std::size_t k = 0; k < bank.size(); ++k)
          bank.data()[k] = static_cast<float>(rng.next_gaussian() * scale);
      }
      w.conv[i] = std::move(bank);
      w.conv_bias[i].assign(static_cast<std::size_t>(fs.oc), 0.0f);
      for (auto& b : w.conv_bias[i])
        b = static_cast<float>(rng.next_gaussian() * 0.01);
    } else if (spec.kind == LayerKind::kFullyConnected) {
      const std::size_t in_dim = static_cast<std::size_t>(flat_in);
      const std::size_t out_dim = static_cast<std::size_t>(spec.fc.out_dim);
      w.fc[i].resize(in_dim * out_dim);
      const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
      for (auto& v : w.fc[i])
        v = static_cast<float>(rng.next_gaussian() * scale);
      w.fc_bias[i].assign(out_dim, 0.0f);
      for (auto& b : w.fc_bias[i])
        b = static_cast<float>(rng.next_gaussian() * 0.01);
    }
    if (shapes[i].flat_dim == 0)
      in = shapes[i].fm;
    else
      flat_in = shapes[i].flat_dim;
  }
  return w;
}

std::vector<ActivationF> forward_f_all(const Network& net,
                                       const WeightsF& weights,
                                       const FeatureMapF& input) {
  TSCA_CHECK(input.shape() == net.input_shape(), "input shape mismatch");
  std::vector<ActivationF> acts;
  acts.reserve(net.layers().size());
  FeatureMapF fm = input;
  std::vector<float> flat;
  bool is_flat = false;
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const LayerSpec& spec = net.layers()[i];
    switch (spec.kind) {
      case LayerKind::kPad:
        fm = pad_f(fm, spec.pad);
        break;
      case LayerKind::kConv:
        fm = conv2d_f(fm, weights.conv[i], weights.conv_bias[i],
                      spec.conv.stride, spec.conv.relu);
        break;
      case LayerKind::kMaxPool:
        fm = maxpool_f(fm, spec.pool);
        break;
      case LayerKind::kFlatten:
        flat.assign(fm.data(), fm.data() + fm.size());
        is_flat = true;
        break;
      case LayerKind::kFullyConnected:
        flat = fc_f(flat, weights.fc[i], weights.fc_bias[i], spec.fc.out_dim,
                    spec.fc.relu);
        break;
      case LayerKind::kSoftmax:
        flat = softmax_f(flat);
        break;
      case LayerKind::kEltwiseAdd:
        fm = eltwise_add_f(fm,
                           acts[static_cast<std::size_t>(spec.eltwise.from)].fm,
                           spec.eltwise.relu);
        break;
      case LayerKind::kGlobalPool:
        fm = maxpool_f(fm, PoolParams{fm.height(), fm.height()});
        break;
    }
    ActivationF act;
    act.is_flat = is_flat;
    if (is_flat)
      act.flat = flat;
    else
      act.fm = fm;
    acts.push_back(std::move(act));
  }
  return acts;
}

std::vector<float> forward_f(const Network& net, const WeightsF& weights,
                             const FeatureMapF& input) {
  std::vector<ActivationF> acts = forward_f_all(net, weights, input);
  TSCA_CHECK(!acts.empty());
  ActivationF& last = acts.back();
  if (last.is_flat) return std::move(last.flat);
  return std::vector<float>(last.fm.data(), last.fm.data() + last.fm.size());
}

std::vector<ActivationI8> forward_i8_all(const Network& net,
                                         const WeightsI8& weights,
                                         const FeatureMapI8& input) {
  TSCA_CHECK(input.shape() == net.input_shape(), "input shape mismatch");
  std::vector<ActivationI8> acts;
  acts.reserve(net.layers().size());
  FeatureMapI8 fm = input;
  std::vector<std::int8_t> flat;
  bool is_flat = false;
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const LayerSpec& spec = net.layers()[i];
    switch (spec.kind) {
      case LayerKind::kPad:
        fm = pad_i8(fm, spec.pad);
        break;
      case LayerKind::kConv:
        fm = conv2d_i8(fm, weights.conv[i], weights.conv_bias[i],
                       spec.conv.stride, weights.conv_requant[i]);
        break;
      case LayerKind::kMaxPool:
        fm = maxpool_i8(fm, spec.pool);
        break;
      case LayerKind::kFlatten:
        flat.assign(fm.data(), fm.data() + fm.size());
        is_flat = true;
        break;
      case LayerKind::kFullyConnected:
        flat = fc_i8(flat, weights.fc[i], weights.fc_bias[i], spec.fc.out_dim,
                     weights.fc_requant[i]);
        break;
      case LayerKind::kSoftmax:
        // Softmax stays in the float domain on the host; the int8 pipeline
        // passes logits through unchanged (argmax is shift-invariant).
        break;
      case LayerKind::kEltwiseAdd:
        fm = eltwise_add_i8(
            fm, acts[static_cast<std::size_t>(spec.eltwise.from)].fm,
            weights.eltwise[i]);
        break;
      case LayerKind::kGlobalPool:
        fm = maxpool_i8(fm, PoolParams{fm.height(), fm.height()});
        break;
    }
    ActivationI8 act;
    act.is_flat = is_flat;
    if (is_flat)
      act.flat = flat;
    else
      act.fm = fm;
    acts.push_back(std::move(act));
  }
  return acts;
}

}  // namespace tsca::nn
