// The network zoo — small, architecturally diverse models exercising every
// lowering the compiler offers, sized so even the cycle-accurate engine runs
// them in test time.
//
// Three families beyond the VGG chain the paper compiles:
//   * a residual CIFAR-style net (skip connections → tensor slots,
//     kEltwiseAdd steps, global pooling);
//   * a MobileNet-style depthwise/pointwise net (depthwise 3x3 banks whose
//     off-diagonal taps the zero-skip datapath streams past, plus 1x1
//     pointwise convs — the FC-as-1x1-conv path generalized);
//   * a ternary MLP over quant/ternary.* (dense ternary weight streams).
//
// Every builder returns topology + calibrated quantized weights together,
// deterministic in the seed, ready for NetworkProgram::compile or a
// ProgramRegistry::add_model call.
#pragma once

#include "nn/network.hpp"
#include "quant/quantize.hpp"

namespace tsca::zoo {

struct ZooModel {
  nn::Network net;
  quant::QuantizedModel model;
};

// Residual-block CIFAR-style net over a {3,16,16} input: two skip
// connections (one sourced from a fused pad+conv step, one from a pool
// step), then global pool → fc → softmax.
ZooModel make_residual_cifar(std::uint64_t seed = 7);

// MobileNet-style net over a {3,16,16} input: stem conv, then two
// depthwise-3x3 + pointwise-1x1 stages with a pool between, global pool →
// fc → softmax.
ZooModel make_mobile_depthwise(std::uint64_t seed = 11);

// Ternary MLP over a {16,1,1} input: three 1x1 conv layers ternarized via
// quant::ternarize_network (dense ternary streams on the accelerator),
// flatten → int8 fc → softmax.
ZooModel make_ternary_mlp(std::uint64_t seed = 13);

}  // namespace tsca::zoo
