// Deterministic load generation against a Server.
//
// Two standard workload shapes:
//
//   * open loop — arrivals are a Poisson process at `rate_rps`, generated
//     from a seeded Rng before the clock starts, so the offered load is
//     independent of how the server keeps up (the shape that exposes
//     queueing collapse under overload);
//   * closed loop — `concurrency` logical clients, each submitting its next
//     request the moment the previous one completes (offered load adapts to
//     capacity; no overload by construction).
//
// Determinism contract: every stochastic input (arrival gaps, input images)
// is derived from LoadOptions::seed, and the report carries no ambient
// clocks — wall_us is measured between two steady_clock reads inside run(),
// and every latency statistic comes from the responses themselves.  Same
// seed + same server configuration ⇒ the same request sequence; only the
// measured timings vary run to run.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace tsca::serve {

struct LoadOptions {
  int requests = 64;
  double rate_rps = 0.0;    // open loop: mean arrival rate; <= 0 ⇒ closed loop
  int concurrency = 4;      // closed loop: in-flight clients
  std::int64_t deadline_us = -1;  // per request, relative; < 0 ⇒ none
  std::uint64_t seed = 1;
};

// Everything the load run measured, derived only from the responses.
struct LoadReport {
  int submitted = 0;
  int ok = 0;
  int rejected = 0;        // admission (queue full / shutdown)
  int deadline_missed = 0; // shed before execution or finished late
  int executed_late = 0;   // subset of deadline_missed that did execute
  int cancelled = 0;
  std::int64_t wall_us = 0;
  double offered_rps = 0.0;  // submitted / wall
  double goodput_rps = 0.0;  // ok / wall — the serving figure of merit
  // Distribution over *executed* requests (ok + late): a baseline that burns
  // capacity executing expired requests pays for it right here in the tail.
  obs::HistogramSnapshot latency_us;
  obs::HistogramSnapshot queued_us;
  int max_batch_seen = 1;
};

// Deterministic Poisson inter-arrival schedule: n cumulative arrival offsets
// in microseconds for mean rate `rate_rps`, from `seed` alone.
std::vector<std::int64_t> poisson_arrivals_us(std::uint64_t seed, int n,
                                              double rate_rps);

// Runs the configured workload against the server: same-shaped random inputs
// (from the server's program), submission per LoadOptions, then waits for
// every future and folds the responses into a LoadReport.
LoadReport run_load(Server& server, const LoadOptions& options);

}  // namespace tsca::serve
