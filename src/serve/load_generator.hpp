// Deterministic load generation against a Server (or a NetClient).
//
// Two standard workload shapes:
//
//   * open loop — arrivals are a Poisson process at `rate_rps`, generated
//     from a seeded Rng before the clock starts, so the offered load is
//     independent of how the server keeps up (the shape that exposes
//     queueing collapse under overload);
//   * closed loop — `concurrency` logical clients, each submitting its next
//     request the moment the previous one completes (offered load adapts to
//     capacity; no overload by construction).
//
// Determinism contract: every stochastic input (arrival gaps, input images)
// is derived from LoadOptions::seed, and the report carries no ambient
// clocks — wall_us is measured between two steady_clock reads inside run(),
// and every latency statistic comes from the responses themselves.  Same
// seed + same server configuration ⇒ the same request sequence; only the
// measured timings vary run to run.
//
// The generator is submission-path agnostic: run_load(Server&) submits
// in-process, run_load(NetClient&) drives the same workload over the wire —
// both delegate to run_load_with, which takes any submit functor.  Inputs
// are generated once and *moved* into submission (a FeatureMapI8 is a whole
// image; copying one per request would bill the generator's own allocator
// traffic to the server's measured latency).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace tsca::serve {

class NetClient;

struct LoadOptions {
  int requests = 64;
  double rate_rps = 0.0;    // open loop: mean arrival rate; <= 0 ⇒ closed loop
  int concurrency = 4;      // closed loop: in-flight clients
  std::int64_t deadline_us = -1;  // per request, relative; < 0 ⇒ none
  int priority = kPriorityHigh;   // SLO class for every request in the run
  std::uint64_t client_id = 0;    // fair-share identity (in-process path)
  std::uint64_t seed = 1;
};

// Everything the load run measured, derived only from the responses.
struct LoadReport {
  int submitted = 0;
  int ok = 0;
  int rejected = 0;        // admission (queue full / shutdown)
  int rejected_quota = 0;  // fair-share eviction (kRejectedQuota)
  int deadline_missed = 0; // shed before execution or finished late
  int executed_late = 0;   // subset of deadline_missed that did execute
  int cancelled = 0;
  int errors = 0;          // kError responses (wire) / thrown futures
  std::int64_t wall_us = 0;
  double offered_rps = 0.0;  // submitted / wall
  double goodput_rps = 0.0;  // ok / wall — the serving figure of merit
  // Distribution over *executed* requests (ok + late): a baseline that burns
  // capacity executing expired requests pays for it right here in the tail.
  obs::HistogramSnapshot latency_us;
  obs::HistogramSnapshot queued_us;
  int max_batch_seen = 1;
};

// Deterministic Poisson inter-arrival schedule: n cumulative arrival offsets
// in microseconds for mean rate `rate_rps`, from `seed` alone.
std::vector<std::int64_t> poisson_arrivals_us(std::uint64_t seed, int n,
                                              double rate_rps);

// One submission: consumes the input, returns the future the workload waits
// on.  Per-request knobs (deadline, priority, ...) are already bound.
using SubmitFn = std::function<std::future<Response>(nn::FeatureMapI8&&)>;

// Core: runs the configured workload through `submit` with same-shaped
// random inputs, then waits for every future and folds the responses into a
// LoadReport.  A future that throws counts as an error.
LoadReport run_load_with(const SubmitFn& submit, const nn::FmShape& shape,
                         const LoadOptions& options);

// In-process submission against the server's admission queue.
LoadReport run_load(Server& server, const LoadOptions& options);

// The same workload over the socket front-end.  The client's connection
// identity is its fair-share identity — LoadOptions::client_id is ignored.
LoadReport run_load(NetClient& client, const nn::FmShape& shape,
                    const LoadOptions& options);

}  // namespace tsca::serve
