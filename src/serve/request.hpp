// Serving-layer request/response types.
//
// The serving subsystem (queue → scheduler → workers, see server.hpp) deals
// in whole-network inference requests against one compiled NetworkProgram.
// Time here is *host* wall-clock (std::chrono::steady_clock): the serving
// layer schedules real concurrent work, unlike the simulated-cycle domain
// the runtime's traces live in.  Deadlines are absolute steady_clock points;
// a request without one carries kNoDeadline and never expires.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace tsca::serve {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

inline constexpr TimePoint kNoDeadline = TimePoint::max();

inline std::int64_t us_between(TimePoint a, TimePoint b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

// Terminal state of a request.  Exactly one Response per submitted request,
// always — rejected and cancelled requests complete too.
enum class Status {
  kOk,                 // executed, finished within its deadline
  kRejectedQueueFull,  // admission control: queue at capacity
  kRejectedShutdown,   // submitted after stop()
  kDeadlineMissed,     // expired before execution (shed) or finished late
  kCancelled,          // server stopped, or the client cancelled it
  kRejectedQuota,      // fair-share admission: evicted for an under-share
                       // client while its own client was over its share
  kError,              // execution failed (bad input shape, budget exceeded);
                       // Response::error carries the reason.  Wire-path
                       // requests always terminate in a Status — in-process
                       // futures receive the original exception instead.
  kRejectedUnknownModel,  // model routing: the request named a model_id the
                          // server's registry does not know
};

const char* status_name(Status status);

// SLO classes: small non-negative integers, 0 is the *highest* priority.
// The scheduler pops strictly by class (a class-1 request never runs while
// a class-0 request is queued), EDF within a class.
inline constexpr int kPriorityHigh = 0;

struct Request {
  std::uint64_t id = 0;
  nn::FeatureMapI8 input;
  TimePoint deadline = kNoDeadline;
  TimePoint submitted{};  // stamped by Server::submit at admission
  int priority = kPriorityHigh;  // SLO class (0 = highest)
  // Fair-share admission identity.  In-process callers pick any stable id;
  // the socket front-end stamps the connection's id (never a client-claimed
  // one — admission fairness is a trust boundary).
  std::uint64_t client_id = 0;
  // Per-request simulated-cycle execution budget (0 = unlimited): the
  // worker aborts the run with driver::BudgetExceeded once it has run this
  // many cycles, so a pathological request cannot hog a worker.  Only the
  // budget-setting request pays — co-batched neighbors re-run unharmed.
  std::uint64_t cycle_budget = 0;
  // Model routing: which registry model runs this request.  Resolved at
  // admission (empty submits get the server's default model), so queued
  // requests always carry a concrete id and batches stay single-model.
  std::string model_id;
};

// Per-submit knobs, shared by the in-process API (Server::submit), the wire
// protocol and the load generator.
struct SubmitOptions {
  std::int64_t deadline_us = -1;  // relative to submit; < 0 ⇒ no deadline
  int priority = kPriorityHigh;
  std::uint64_t client_id = 0;
  std::uint64_t cycle_budget = 0;
  std::string model_id;  // empty = the server's default model
};

// Where a request's latency went, in microseconds: waiting in the queue for
// the scheduler to pick it, waiting for its batch to reach a worker, and
// executing.  Shed or rejected requests only accrue the phases they reached.
struct PhaseLatency {
  std::int64_t queued_us = 0;   // submit → scheduler dispatched it
  std::int64_t batch_us = 0;    // dispatched → worker began executing
  std::int64_t exec_us = 0;     // execution
  std::int64_t total_us() const { return queued_us + batch_us + exec_us; }
};

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kCancelled;
  // Network outputs — filled for executed requests (kOk, and kDeadlineMissed
  // responses that finished late; shed requests never execute).
  std::vector<std::int8_t> logits;
  nn::FeatureMapI8 final_fm;
  bool flat_output = false;
  bool executed = false;  // the network actually ran for this request
  int batch_size = 0;     // size of the dynamic batch it was grouped into
  PhaseLatency latency;
  std::string error;  // kError only: what() of the execution failure

  bool ok() const { return status == Status::kOk; }
};

}  // namespace tsca::serve
