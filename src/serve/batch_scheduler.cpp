#include "serve/batch_scheduler.hpp"

#include <string>
#include <utility>

#include "util/check.hpp"

namespace tsca::serve {

BatchScheduler::BatchScheduler(RequestQueue& queue, const BatchPolicy& policy,
                               obs::MetricsRegistry& metrics,
                               obs::Recorder* trace, TimePoint epoch)
    : queue_(queue),
      policy_(policy),
      metrics_(metrics),
      trace_(trace),
      epoch_(epoch) {
  TSCA_CHECK(policy.max_batch >= 1, "max_batch=" << policy.max_batch);
}

void complete_expired(Pending& p, TimePoint now, obs::MetricsRegistry& metrics,
                      obs::Recorder* trace, TimePoint epoch) {
  Response r;
  r.id = p.request.id;
  r.status = Status::kDeadlineMissed;
  // Never executed: the only latency it accrued is queueing (plus the
  // dispatch hand-off when the worker was the one to shed it).
  const bool dispatched = p.dispatched != TimePoint{};
  r.latency.queued_us =
      us_between(p.request.submitted, dispatched ? p.dispatched : now);
  if (dispatched) r.latency.batch_us = us_between(p.dispatched, now);
  metrics.counter("serve.deadline_missed").add(1);
  metrics.counter("serve.expired_shed").add(1);
  metrics.counter("serve.class" + std::to_string(p.request.priority) + ".shed")
      .add(1);
  metrics.histogram("serve.queued_us").observe(r.latency.queued_us);
  if (trace != nullptr)
    trace->track("serve/requests")
        .complete("req " + std::to_string(r.id), "shed",
                  static_cast<std::uint64_t>(
                      us_between(epoch, p.request.submitted)),
                  static_cast<std::uint64_t>(r.latency.total_us()));
  complete(p, std::move(r));
}

std::vector<Pending> BatchScheduler::next_batch() {
  for (;;) {
    std::vector<Pending> batch =
        queue_.pop_wait(static_cast<std::size_t>(policy_.max_batch),
                        policy_.max_queue_delay_us, policy_.edf);
    if (batch.empty()) return {};  // queue closed

    const TimePoint now = Clock::now();
    const TimePoint horizon =
        now + std::chrono::microseconds(policy_.min_slack_us);
    std::vector<Pending> live;
    live.reserve(batch.size());
    for (Pending& p : batch) {
      p.dispatched = now;
      // kNoDeadline (TimePoint::max) never compares below the horizon.
      if (policy_.cancel_expired && p.request.deadline < horizon) {
        complete_expired(p, now, metrics_, trace_, epoch_);
        continue;
      }
      live.push_back(std::move(p));
    }
    if (live.empty()) continue;  // whole batch was dead — form another

    metrics_.counter("serve.batches").add(1);
    metrics_.histogram("serve.batch_size")
        .observe(static_cast<std::int64_t>(live.size()));
    metrics_.histogram("serve.queue_depth")
        .observe(static_cast<std::int64_t>(queue_.size()));
    return live;
  }
}

}  // namespace tsca::serve
