// Inference server over one compiled NetworkProgram — or, in registry mode,
// over a driver::ProgramRegistry of many models routed by request model_id.
//
// The serving pipeline end to end: submit() admits a request into the
// bounded RequestQueue (or rejects it immediately — queue full / shutdown /
// fair-share eviction — with the reason in the Response), a BatchScheduler
// coalesces queued requests into dynamic batches (strict priority across
// SLO classes, EDF within a class, expired requests shed before execution),
// and N worker threads each own a private accelerator context
// (AcceleratorPool::Context with the program's weight image staged once at
// startup) and execute batches through Runtime::run_network_batch —
// ExecMode::kFast by default, the cycle engine selectable for
// statistics-grade serving.
//
// Every submitted request completes exactly once, whatever happens:
// executed (kOk, or kDeadlineMissed when it finished late), shed
// (kDeadlineMissed, never executed), rejected at admission, evicted for
// fair share (kRejectedQuota), cancelled by the client (cancel()) or by
// stop(), or failed (the execution exception through the future, or a
// kError Response on the callback path).  In-process submitters hold a
// std::future<Response>; the socket front-end uses submit_with() and gets
// the Response through a completion callback instead (invoked on a worker
// thread).  stop() is cooperative and prompt: it raises the cancel flag
// (in-flight batches abort between network steps), closes the queue, joins
// the workers, and completes the backlog as kCancelled.
//
// Time domains: serving spans on the "serve/..." tracks are host wall-clock
// microseconds since the server's epoch; the workers' runtime-layer tracks
// ("serve/worker<w>/...") stay in simulated cycles like every other runtime
// trace.  The two share a Recorder but never a track.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/arena.hpp"
#include "driver/accelerator_pool.hpp"
#include "driver/program.hpp"
#include "driver/program_registry.hpp"
#include "driver/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/request_queue.hpp"

namespace tsca::serve {

struct ServerOptions {
  int workers = 1;
  std::size_t queue_capacity = 64;  // admission bound (reject when full)
  // Fair-share admission: when the queue is full, an under-share client's
  // push evicts an over-share client's entry (kRejectedQuota) instead of
  // bouncing off kQueueFull.  Identity is Request::client_id (the socket
  // front-end stamps the connection).  Single-client behaviour is identical
  // to a plain bounded queue.
  bool fair_share = true;
  BatchPolicy batch;
  driver::ExecMode mode = driver::ExecMode::kFast;
  std::size_t dram_bytes = 64u << 20;  // per-worker context DDR
  // Optional observability.  Metrics are always collected: when `metrics` is
  // null the server records into a registry it owns (metrics() returns
  // whichever is in use).
  obs::Recorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  // Compiles nothing: the program must outlive the server.  Stages its
  // weight image into every worker context before any worker starts.
  Server(const driver::NetworkProgram& program, ServerOptions options = {});

  // Registry mode — multi-model serving.  Requests are routed by
  // SubmitOptions::model_id (empty picks `default_model`); unknown ids are
  // rejected at admission with Status::kRejectedUnknownModel.  Batches are
  // single-model (the queue never mixes models into one batch); a worker
  // leases the batch's program from the registry and restages its context
  // when the staged stamp differs (first touch, or a recompile after
  // eviction).  The default model is acquired for the server's lifetime, so
  // it can never be evicted out from under program().  The registry must
  // outlive the server.  Throws UnknownModelError when `default_model` was
  // never added.
  Server(driver::ProgramRegistry& registry, std::string default_model,
         ServerOptions options = {});
  ~Server();  // stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Submits one inference request.  `deadline_us` is relative to now;
  // negative means no deadline.  Always returns a future that will be
  // completed — rejections complete it before submit() returns.
  std::future<Response> submit(nn::FeatureMapI8 input,
                               std::int64_t deadline_us = -1);
  std::future<Response> submit(nn::FeatureMapI8 input,
                               const SubmitOptions& opts);

  // Callback-path submission (the socket front-end): `on_complete` receives
  // the Response exactly once — possibly before submit_with returns
  // (rejection), possibly on a worker thread.  Returns the request id,
  // usable with cancel().
  std::uint64_t submit_with(nn::FeatureMapI8 input, const SubmitOptions& opts,
                            std::function<void(Response&&)> on_complete);

  // Client-initiated cancellation.  A still-queued request completes as
  // kCancelled immediately (returns true).  A dispatched request is
  // cancelled best-effort at the worker's last-chance check (returns
  // false); one already executing runs to completion — its batch cannot be
  // unwound per request.
  bool cancel(std::uint64_t id);

  // Stops serving: aborts in-flight batches between network steps, rejects
  // new submissions (kRejectedShutdown), completes the queued backlog as
  // kCancelled, joins the workers.  Idempotent.
  void stop();

  obs::MetricsRegistry& metrics() { return *metrics_; }
  // Single-program mode: the construction program.  Registry mode: the
  // default model's program (pinned by a held lease for the server's life).
  const driver::NetworkProgram& program() const { return *program_; }
  // Null in single-program mode.
  driver::ProgramRegistry* registry() const { return registry_; }
  const std::string& default_model() const { return default_model_; }
  const ServerOptions& options() const { return options_; }
  TimePoint epoch() const { return epoch_; }

 private:
  // Completion-path metric handles for one SLO class or one model, resolved
  // once and reused so the warm path never assembles metric name strings.
  struct ReqMetrics {
    obs::Counter* completed = nullptr;
    obs::Counter* deadline_missed = nullptr;
    obs::Histogram* latency_us = nullptr;
  };

  // Per-worker serving state that persists across batches (DESIGN.md §15).
  // The arena backs per-batch staging (the input-pointer table) and is
  // reset between batches — O(1), no free — so its high-water mark is the
  // worker's whole per-batch footprint.  The metric caches fill lazily on
  // each class/model's first completion.  Touched only by the owning
  // worker thread; the worker's Runtime lives on worker_loop's stack.
  struct WorkerState {
    core::Arena arena;
    std::unordered_map<int, ReqMetrics> classes;
    std::unordered_map<std::string, ReqMetrics> models;
  };

  // Fixed serving metrics, resolved once at start(): handles are stable for
  // the registry's lifetime, so the per-request completion path is pure
  // atomic adds.
  struct ServeMetrics {
    obs::Counter* completed = nullptr;
    obs::Counter* deadline_missed = nullptr;
    obs::Counter* late_executions = nullptr;
    obs::Counter* executed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* cancelled_by_client = nullptr;
    obs::Counter* exec_errors = nullptr;
    obs::Histogram* latency_us = nullptr;
    obs::Histogram* queued_us = nullptr;
    obs::Histogram* exec_us = nullptr;
    obs::Histogram* arena_bytes = nullptr;
    obs::Histogram* scratch_bytes = nullptr;
  };

  // Shared constructor tail: builds the worker contexts (program_ must be
  // set), stages the startup program into each, launches the workers.
  void start(const core::ArchConfig& cfg);
  void worker_loop(int w);
  // Builds the Pending, stamps id/times, admits it into the queue and
  // completes it on the spot when rejected/evicting.
  std::uint64_t admit(nn::FeatureMapI8 input, const SubmitOptions& opts,
                      std::function<void(Response&&)> on_complete,
                      std::future<Response>* future_out);
  // Runs one batch on worker w's persistent runtime over its private
  // context; completes every request in it.
  void execute_batch(int w, driver::AcceleratorPool::Context& ctx,
                     driver::Runtime& runtime, WorkerState& state,
                     std::vector<Pending> batch);
  ReqMetrics& class_metrics(WorkerState& state, int priority);
  ReqMetrics& model_metrics(WorkerState& state, const std::string& model_id);
  // Consumes a pending client-cancel mark for `id`.
  bool take_cancel_mark(std::uint64_t id);

  // Exactly one mode: program_ always points at a live program (the legacy
  // reference, or the default model's leased program); registry_ is null in
  // single-program mode.
  const driver::NetworkProgram* program_ = nullptr;
  driver::ProgramRegistry* registry_ = nullptr;
  std::string default_model_;
  driver::ProgramHandle default_handle_;
  ServerOptions options_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;  // options_.metrics or &own_metrics_
  ServeMetrics sm_;                // resolved against *metrics_ in start()
  TimePoint epoch_;
  RequestQueue queue_;
  BatchScheduler scheduler_;
  std::vector<std::unique_ptr<driver::AcceleratorPool::Context>> contexts_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> cancel_{false};
  std::atomic<bool> stopped_{false};
  // Client-cancel marks for requests already dispatched to a worker,
  // consumed at the last-chance check.  The atomic count gates the lock so
  // the common no-cancellation path never takes it.
  std::mutex cancel_m_;
  std::unordered_set<std::uint64_t> cancel_marks_;
  std::atomic<int> cancel_mark_count_{0};
};

}  // namespace tsca::serve
