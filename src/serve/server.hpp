// Inference server over one compiled NetworkProgram.
//
// The serving pipeline end to end: submit() admits a request into the
// bounded RequestQueue (or rejects it immediately — queue full / shutdown —
// with the reason in the Response), a BatchScheduler coalesces queued
// requests into dynamic batches (EDF order, expired requests shed before
// execution), and N worker threads each own a private accelerator context
// (AcceleratorPool::Context with the program's weight image staged once at
// startup) and execute batches through Runtime::run_network_batch —
// ExecMode::kFast by default, the cycle engine selectable for
// statistics-grade serving.
//
// Every submitted request completes its std::future<Response> exactly once,
// whatever happens: executed (kOk, or kDeadlineMissed when it finished
// late), shed (kDeadlineMissed, never executed), rejected at admission, or
// cancelled by stop().  stop() is cooperative and prompt: it raises the
// cancel flag (in-flight batches abort between network steps), closes the
// queue, joins the workers, and completes the backlog as kCancelled.
//
// Time domains: serving spans on the "serve/..." tracks are host wall-clock
// microseconds since the server's epoch; the workers' runtime-layer tracks
// ("serve/worker<w>/...") stay in simulated cycles like every other runtime
// trace.  The two share a Recorder but never a track.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "driver/accelerator_pool.hpp"
#include "driver/program.hpp"
#include "driver/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/request_queue.hpp"

namespace tsca::serve {

struct ServerOptions {
  int workers = 1;
  std::size_t queue_capacity = 64;  // admission bound (reject when full)
  BatchPolicy batch;
  driver::ExecMode mode = driver::ExecMode::kFast;
  std::size_t dram_bytes = 64u << 20;  // per-worker context DDR
  // Optional observability.  Metrics are always collected: when `metrics` is
  // null the server records into a registry it owns (metrics() returns
  // whichever is in use).
  obs::Recorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  // Compiles nothing: the program must outlive the server.  Stages its
  // weight image into every worker context before any worker starts.
  Server(const driver::NetworkProgram& program, ServerOptions options = {});
  ~Server();  // stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Submits one inference request.  `deadline_us` is relative to now;
  // negative means no deadline.  Always returns a future that will be
  // completed — rejections complete it before submit() returns.
  std::future<Response> submit(nn::FeatureMapI8 input,
                               std::int64_t deadline_us = -1);

  // Stops serving: aborts in-flight batches between network steps, rejects
  // new submissions (kRejectedShutdown), completes the queued backlog as
  // kCancelled, joins the workers.  Idempotent.
  void stop();

  obs::MetricsRegistry& metrics() { return *metrics_; }
  const driver::NetworkProgram& program() const { return program_; }
  const ServerOptions& options() const { return options_; }
  TimePoint epoch() const { return epoch_; }

 private:
  void worker_loop(int w);
  // Runs one batch on worker w's context; completes every promise in it.
  void execute_batch(int w, driver::AcceleratorPool::Context& ctx,
                     std::vector<Pending> batch);

  const driver::NetworkProgram& program_;
  ServerOptions options_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;  // options_.metrics or &own_metrics_
  TimePoint epoch_;
  RequestQueue queue_;
  BatchScheduler scheduler_;
  std::vector<std::unique_ptr<driver::AcceleratorPool::Context>> contexts_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> cancel_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace tsca::serve
