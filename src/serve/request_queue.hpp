// Bounded, thread-safe request queue with admission control.
//
// The first stage of the serving pipeline (queue → scheduler → workers): any
// number of submitters push, any number of scheduler threads pop.  Capacity
// is a hard bound — a full queue *rejects* at admission (push returns
// Admit::kQueueFull and the caller completes the request immediately) rather
// than blocking the submitter, which is the backpressure contract a serving
// frontend needs: latency is bounded by queue depth, never by a hidden wait.
//
// Fair-share admission (on by default): a client may use the whole queue
// while it is uncontended, but when the queue is full and another client is
// still under its fair share (capacity / active clients), one entry of an
// over-share client is *evicted* to admit the newcomer — push returns the
// victim so the caller can complete it as kRejectedQuota.  Work-conserving:
// with a single client this is exactly the plain bounded queue.
//
// pop_wait implements the batch-formation wait under the queue's own lock so
// concurrent scheduler threads race safely: block until a request arrives,
// then linger until either `max_batch` requests are queued or the oldest
// *live* request has waited `max_delay_us` (the anchor is recomputed from
// the current front after every wake — entries stolen by a concurrent popper
// must not leave their expired window behind for later arrivals), then pop
// up to max_batch entries.  EDF order is strict priority across SLO classes
// and earliest-deadline-first within a class (submission order among ties —
// deadline-less requests sort last); FIFO ignores both.  close() wakes
// everyone; a closed queue rejects pushes with Admit::kShutdown and pop_wait
// returns empty.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "serve/request.hpp"

namespace tsca::serve {

// A queued request with its completion path.  Whoever removes a Pending from
// the queue owns completing it — exactly once, always.  Completion goes
// through the promise (in-process submitters hold the future) unless
// `on_complete` is set (the socket front-end routes responses to the
// connection's writer instead); use complete()/complete_error(), never the
// promise directly.
struct Pending {
  Request request;
  std::promise<Response> promise;
  std::function<void(Response&&)> on_complete;
  TimePoint dispatched{};  // stamped when the scheduler pops it into a batch
};

// Completes a Pending exactly once: through on_complete when set, else the
// promise.
void complete(Pending& p, Response&& r);

// Error-path completion: a promise holder gets the original exception
// (future.get() rethrows); an on_complete holder gets a Status::kError
// Response with the exception's what() — the wire cannot carry C++
// exceptions.
void complete_error(Pending& p, std::exception_ptr error);

enum class Admit { kAdmitted, kQueueFull, kShutdown };

const char* admit_name(Admit admit);

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity, bool fair_share = true);
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Admission: moves from `p` only when admitted — on rejection the caller
  // still owns the Pending (and its promise) to complete with the reason.
  // When admission evicted another client's entry to make room (fair share),
  // the victim is returned through `evicted` and the caller owns completing
  // it as kRejectedQuota.
  Admit push(Pending&& p, std::optional<Pending>* evicted = nullptr);

  // Blocks until a batch is ready per the formation policy (see file
  // comment), then pops it.  Returns empty exactly when the queue is closed
  // — remaining entries are left for drain().
  std::vector<Pending> pop_wait(std::size_t max_batch,
                                std::int64_t max_delay_us, bool edf);

  // Removes a still-queued request by id; the caller owns completing it
  // (client-initiated cancellation).  Empty when the id is not queued —
  // already dispatched, completed, or never admitted.
  std::optional<Pending> take(std::uint64_t id);

  // Closes the queue: subsequent pushes are rejected kShutdown, blocked
  // pop_wait calls return empty.
  void close();
  bool closed() const;

  // Removes and returns everything still queued (stop-path: the server
  // completes these as cancelled).
  std::vector<Pending> drain();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  // Pops up to max_batch entries; m_ held.
  std::vector<Pending> pop_locked(std::size_t max_batch, bool edf);
  // Bookkeeping for any removal path; m_ held.
  void note_removed_locked(const Pending& p);
  // Fair-share eviction: picks a victim entry of an over-share client for a
  // pusher still under its own share; m_ held.  Returns entries_.end() when
  // no client is over its share (the push stays rejected kQueueFull).
  std::deque<Pending>::iterator pick_victim_locked(std::uint64_t pusher);

  const std::size_t capacity_;
  const bool fair_share_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Pending> entries_;  // submission order (front is oldest)
  // Queued-entry count per client (entries only — clients with zero queued
  // requests are erased, so size() is the active-client count).
  std::unordered_map<std::uint64_t, std::size_t> client_counts_;
  bool closed_ = false;
};

}  // namespace tsca::serve
