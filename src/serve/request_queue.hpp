// Bounded, thread-safe request queue with admission control.
//
// The first stage of the serving pipeline (queue → scheduler → workers): any
// number of submitters push, any number of scheduler threads pop.  Capacity
// is a hard bound — a full queue *rejects* at admission (push returns
// Admit::kQueueFull and the caller completes the request immediately) rather
// than blocking the submitter, which is the backpressure contract a serving
// frontend needs: latency is bounded by queue depth, never by a hidden wait.
//
// pop_wait implements the batch-formation wait under the queue's own lock so
// concurrent scheduler threads race safely: block until a request arrives,
// then linger until either `max_batch` requests are queued or the oldest has
// waited `max_delay_us`, then pop up to max_batch entries in EDF order
// (earliest deadline first, submission order among ties — deadline-less
// requests sort last) or FIFO order.  close() wakes everyone; a closed queue
// rejects pushes with Admit::kShutdown and pop_wait returns empty.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace tsca::serve {

// A queued request with its completion promise.  Whoever removes a Pending
// from the queue owns completing its promise — exactly once, always.
struct Pending {
  Request request;
  std::promise<Response> promise;
  TimePoint dispatched{};  // stamped when the scheduler pops it into a batch
};

enum class Admit { kAdmitted, kQueueFull, kShutdown };

const char* admit_name(Admit admit);

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Admission: moves from `p` only when admitted — on rejection the caller
  // still owns the Pending (and its promise) to complete with the reason.
  Admit push(Pending&& p);

  // Blocks until a batch is ready per the formation policy (see file
  // comment), then pops it.  Returns empty exactly when the queue is closed
  // — remaining entries are left for drain().
  std::vector<Pending> pop_wait(std::size_t max_batch,
                                std::int64_t max_delay_us, bool edf);

  // Closes the queue: subsequent pushes are rejected kShutdown, blocked
  // pop_wait calls return empty.
  void close();
  bool closed() const;

  // Removes and returns everything still queued (stop-path: the server
  // completes these as cancelled).
  std::vector<Pending> drain();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  // Pops up to max_batch entries; m_ held.
  std::vector<Pending> pop_locked(std::size_t max_batch, bool edf);

  const std::size_t capacity_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Pending> entries_;  // submission order (front is oldest)
  bool closed_ = false;
};

}  // namespace tsca::serve
