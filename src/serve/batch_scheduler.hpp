// Dynamic-batching scheduler: coalesces queued requests into batches.
//
// Sits between the RequestQueue and the Server's workers.  Each worker calls
// next_batch(), which blocks on the queue's batch-formation wait
// (max_batch / max_queue_delay_us), pops in deadline order, and — before the
// batch ever reaches an execution context — sheds requests whose deadline
// already passed, completing them as kDeadlineMissed.  Cancelling expired
// work *before* execution, not after, is the scheduler's whole contribution
// to goodput under overload: a worker never burns a network pass on a
// request nobody is waiting for anymore.
//
// EDF (earliest deadline first) ordering is the deadline-aware policy; FIFO
// with max_batch=1 and shedding off reproduces the naive baseline the bench
// compares against.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request_queue.hpp"

namespace tsca::serve {

struct BatchPolicy {
  int max_batch = 8;                     // coalesce at most this many
  std::int64_t max_queue_delay_us = 1000;  // flush a partial batch after this
  bool edf = true;             // earliest-deadline-first; false = FIFO
  bool cancel_expired = true;  // shed already-expired requests pre-execution
  // Feasibility horizon: also shed requests whose deadline is closer than
  // this (they cannot complete in time once the batch's service time is
  // paid, so executing them can only produce late responses).  0 = shed on
  // hard expiry only.  Callers set it to their expected batch service time.
  std::int64_t min_slack_us = 0;
};

class BatchScheduler {
 public:
  // The queue and registry (and recorder, when given) must outlive the
  // scheduler.  `epoch` anchors the wall-µs serve spans of shed requests.
  BatchScheduler(RequestQueue& queue, const BatchPolicy& policy,
                 obs::MetricsRegistry& metrics, obs::Recorder* trace = nullptr,
                 TimePoint epoch = {});

  // Blocks until a batch of live requests is ready; stamps each request's
  // `dispatched` time.  Returns empty exactly when the queue is closed.
  std::vector<Pending> next_batch();

  const BatchPolicy& policy() const { return policy_; }

 private:
  RequestQueue& queue_;
  BatchPolicy policy_;
  obs::MetricsRegistry& metrics_;
  obs::Recorder* trace_;
  TimePoint epoch_;
};

// Completes a pending request as expired-before-execution: kDeadlineMissed
// response with pre-execution latency only, the deadline-miss/shed counters,
// and (when `trace` is given) a "shed" span on the serve/requests track.
// Shared by the scheduler and the worker-side last-chance check (a deadline
// can expire in the hand-off race between the two).
void complete_expired(Pending& p, TimePoint now, obs::MetricsRegistry& metrics,
                      obs::Recorder* trace, TimePoint epoch);

}  // namespace tsca::serve
