#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tsca::serve {

NetClient::NetClient(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw ProtocolError(std::string("socket failed: ") +
                        std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw ProtocolError("bad server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    throw ProtocolError(std::string("connect failed: ") + std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = std::thread([this] { reader_loop(); });
}

NetClient::~NetClient() { close(); }

std::future<Response> NetClient::submit(nn::FeatureMapI8 input,
                                        const SubmitOptions& opts,
                                        std::uint64_t* id_out) {
  std::vector<std::uint8_t> payload;
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (closed_) throw ProtocolError("client closed");
    const std::uint64_t wire_id = next_id_++;
    if (id_out != nullptr) *id_out = wire_id;
    payload = encode_request(wire_id, opts, input);
    pending_.emplace(wire_id, std::move(promise));
    try {
      write_frame(fd_, MsgType::kRequest, payload);
    } catch (...) {
      pending_.erase(wire_id);
      throw;
    }
  }
  return future;
}

bool NetClient::cancel(std::uint64_t wire_id) {
  const std::lock_guard<std::mutex> lock(m_);
  if (closed_) return false;
  try {
    write_frame(fd_, MsgType::kCancel, encode_cancel(wire_id));
  } catch (const ProtocolError&) {
    return false;
  }
  return true;
}

std::string NetClient::metrics_text() {
  std::future<std::string> future;
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (closed_) throw ProtocolError("client closed");
    metrics_waiters_.emplace_back();
    future = metrics_waiters_.back().get_future();
    write_frame(fd_, MsgType::kMetricsRequest, {});
  }
  return future.get();
}

void NetClient::fail_all_locked(const std::string& why) {
  for (auto& [id, promise] : pending_)
    promise.set_exception(std::make_exception_ptr(ProtocolError(why)));
  pending_.clear();
  for (std::promise<std::string>& p : metrics_waiters_)
    p.set_exception(std::make_exception_ptr(ProtocolError(why)));
  metrics_waiters_.clear();
}

void NetClient::reader_loop() {
  std::string why = "connection closed";
  try {
    for (;;) {
      std::optional<Frame> frame = read_frame(fd_);
      if (!frame) break;
      if (frame->type == MsgType::kResponse) {
        WireResponse wr = decode_response(frame->payload);
        std::promise<Response> promise;
        bool found = false;
        {
          const std::lock_guard<std::mutex> lock(m_);
          const auto it = pending_.find(wr.wire_id);
          if (it != pending_.end()) {
            promise = std::move(it->second);
            pending_.erase(it);
            found = true;
          }
        }
        // An unmatched id is a server bug, not a client crash; drop it.
        if (found) promise.set_value(std::move(wr.response));
        continue;
      }
      if (frame->type == MsgType::kMetricsResponse) {
        std::string text = decode_metrics_response(frame->payload);
        std::promise<std::string> promise;
        bool found = false;
        {
          const std::lock_guard<std::mutex> lock(m_);
          if (!metrics_waiters_.empty()) {
            promise = std::move(metrics_waiters_.front());
            metrics_waiters_.erase(metrics_waiters_.begin());
            found = true;
          }
        }
        if (found) promise.set_value(std::move(text));
        continue;
      }
      throw ProtocolError("client-bound frame of client-to-server type " +
                          std::to_string(static_cast<int>(frame->type)));
    }
  } catch (const ProtocolError& e) {
    why = e.what();
  }
  const std::lock_guard<std::mutex> lock(m_);
  fail_all_locked(why);
}

void NetClient::close() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (closed_) return;
    closed_ = true;
  }
  // Wake the reader (it fails any survivors), then reclaim the fd.
  ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
  fd_ = -1;
}

}  // namespace tsca::serve
