// Blocking client for the socket front-end (net_server.hpp).
//
// One TCP connection, one background reader thread.  submit() assigns a
// wire id, sends the kRequest frame, and returns a future the reader
// completes when the matching kResponse arrives — so any number of
// submissions can be in flight and responses are matched by id, not order.
// cancel() sends a best-effort kCancel for an in-flight wire id; the
// request still completes exactly once (kCancelled when the cancel won the
// race, its normal status otherwise).  metrics_text() is a blocking
// round-trip for the server's Prometheus exposition.
//
// Error model: the wire cannot carry C++ exceptions, so server-side
// failures arrive as Status::kError responses with the error text.  A dead
// connection fails every outstanding and future submission with a
// ProtocolError through the future.  The client is thread-safe; frame
// writes are serialized internally.
#pragma once

#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"

namespace tsca::serve {

class NetClient {
 public:
  // Connects (blocking) to host:port; throws ProtocolError on failure.
  NetClient(const std::string& host, std::uint16_t port);
  ~NetClient();  // close()
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Sends one inference request; the future completes when its response
  // frame arrives.  `id_out`, when given, receives the wire id for
  // cancel().
  std::future<Response> submit(nn::FeatureMapI8 input,
                               const SubmitOptions& opts = {},
                               std::uint64_t* id_out = nullptr);

  // Best-effort cancellation of an in-flight submission by wire id.
  // Returns false when the connection is already closed.
  bool cancel(std::uint64_t wire_id);

  // Blocking metrics round-trip: the server's Prometheus text exposition.
  std::string metrics_text();

  // Closes the connection: every outstanding future fails with
  // ProtocolError, subsequent calls throw.  Idempotent.
  void close();

 private:
  void reader_loop();
  void fail_all_locked(const std::string& why);

  int fd_ = -1;
  std::thread reader_;
  std::mutex m_;  // guards fd writes, the pending maps, and closed_
  bool closed_ = false;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::promise<Response>> pending_;
  // Metrics responses carry no id; the protocol answers them in order.
  std::vector<std::promise<std::string>> metrics_waiters_;
};

}  // namespace tsca::serve
