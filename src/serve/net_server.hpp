// Socket front-end: serves the wire protocol (protocol.hpp) over TCP,
// feeding the in-process Server's admission queue.
//
// Thread model — per connection, two threads plus the shared accept thread:
//
//   accept ──► reader ──► Server::submit_with ──► worker callback ─┐
//                 ▲                                                │
//                 │            outbox (encoded frames)  ◄──────────┘
//                 │                     │
//              socket  ◄──── writer ◄───┘
//
// The reader decodes frames and submits; completion callbacks (which fire on
// whatever thread completes the request — a worker, the scheduler, or the
// submitting reader itself for synchronous rejections) encode the response
// and push it to the connection's outbox; the writer drains the outbox to
// the socket.  Responses therefore never block the request path and arrive
// in *completion* order, not submission order — the wire_id correlates.
//
// Trust boundary: the server stamps each connection with its own client_id
// for fair-share admission; nothing a client sends can impersonate another
// client's quota.  Priorities and deadlines ARE client-claimed — SLO class
// is cooperative by design (the bench's point is observing the scheduler
// honour it), not an authentication feature.
//
// A kCancel frame cancels by wire_id: the reader resolves it to the server
// id through the connection's private map (ids from other connections are
// unreachable) and calls Server::cancel.  The cancelled request's response
// (kCancelled — or its normal completion when the cancel lost the race)
// still arrives as a kResponse frame; cancel frames themselves have no ack.
//
// kMetricsRequest answers with the Prometheus text exposition of the
// server's registry — the metrics endpoint rides the same port and protocol
// instead of a separate HTTP listener.
//
// Lifetime: the NetServer must be destroyed before the Server it fronts
// (declare it after).  A finished connection (peer gone, both loops exited)
// is reaped — threads joined, fd closed, entry dropped — by the accept loop
// as new connections arrive, so resources track the live set, not the
// connection history.  stop() closes the listener, shuts every remaining
// connection down, and joins all threads; late completion callbacks after
// either park their frames in a dead outbox and the connection state is
// freed with the last shared_ptr.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace tsca::serve {

struct NetServerOptions {
  std::string host = "127.0.0.1";  // loopback by default — not a public bind
  std::uint16_t port = 0;          // 0 = ephemeral (read back via port())
  int backlog = 16;
};

class NetServer {
 public:
  // Binds and starts accepting immediately; throws ProtocolError when the
  // bind/listen fails.  `server` must outlive the NetServer.
  NetServer(Server& server, NetServerOptions options = {});
  ~NetServer();  // stop()
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // The bound port (the ephemeral one the OS picked when options.port == 0).
  std::uint16_t port() const { return port_; }

  // Stops accepting, tears down every connection, joins all threads.
  // Idempotent.  In-flight requests keep running in the Server; their
  // responses are dropped.
  void stop();

  // Connections currently tracked (live, plus finished ones not yet reaped).
  // Finished connections are reaped — threads joined, fd closed, entry
  // erased — by the accept loop on the next accept, so a long-lived server
  // does not accumulate an fd and two dead threads per disconnect.
  std::size_t tracked_connections();

 private:
  // One queued server-to-client frame (encoded payload + its type octet).
  struct OutFrame {
    MsgType type{};
    std::vector<std::uint8_t> payload;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t client_id = 0;
    std::mutex m;
    std::condition_variable cv;
    std::deque<OutFrame> outbox;
    // Drained payload buffers, recycled by the completion path so a settled
    // connection encodes responses into reused storage (DESIGN.md §15).
    // Bounded at kMaxSpareBuffers; guarded by `m` like the outbox.
    std::vector<std::vector<std::uint8_t>> spare;
    bool closing = false;  // reader gone or stop(): writer drains and exits
    // wire_id → server id for kCancel; entries live from submit to
    // completion.  `open` guards the insert against a callback that already
    // fired (synchronous rejection) before submit_with returned.
    std::unordered_map<std::uint64_t, std::uint64_t> wire_to_server;
    std::unordered_set<std::uint64_t> open;
    std::thread reader;
    std::thread writer;
    // Set as each loop's last act; once both are up the threads are join()
    // -able without blocking and the connection is reapable.
    std::atomic<bool> reader_done{false};
    std::atomic<bool> writer_done{false};
  };

  // Cap on recycled payload buffers held per connection — enough to cover a
  // full batch of completions landing between writer wakeups without letting
  // a burst pin memory forever.
  static constexpr std::size_t kMaxSpareBuffers = 16;

  // Pops a recycled payload buffer (empty vector when the pool is dry).
  static std::vector<std::uint8_t> take_spare(Connection& conn);
  // Returns a drained buffer to the pool (dropped when the pool is full).
  static void give_spare(Connection& conn, std::vector<std::uint8_t> buf);

  void accept_loop();
  void reap_finished_connections();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  static void enqueue(const std::shared_ptr<Connection>& conn, MsgType type,
                      std::vector<std::uint8_t> payload);

  Server& server_;
  NetServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> next_client_id_{1};
  std::mutex conns_m_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace tsca::serve
