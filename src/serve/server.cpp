#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "core/simd.hpp"
#include "util/check.hpp"

namespace tsca::serve {

Server::Server(const driver::NetworkProgram& program, ServerOptions options)
    : program_(&program),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics : &own_metrics_),
      epoch_(Clock::now()),
      queue_(options.queue_capacity, options.fair_share),
      scheduler_(queue_, options.batch, *metrics_, options.trace, epoch_) {
  start(program.config());
}

Server::Server(driver::ProgramRegistry& registry, std::string default_model,
               ServerOptions options)
    : registry_(&registry),
      default_model_(std::move(default_model)),
      // Lease the default model for the server's lifetime: it compiles here
      // (startup, never request latency) and can never be evicted out from
      // under program() or a default-routed batch.
      default_handle_(registry.acquire(default_model_)),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics : &own_metrics_),
      epoch_(Clock::now()),
      queue_(options.queue_capacity, options.fair_share),
      scheduler_(queue_, options.batch, *metrics_, options.trace, epoch_) {
  program_ = &default_handle_.program();
  start(registry.config());
}

void Server::start(const core::ArchConfig& cfg) {
  TSCA_CHECK(options_.workers >= 1, "workers=" << options_.workers);
  // Pin the kernel backend the fast path will serve with into the metrics
  // (as "serve.simd.<name>" = lane width), so a metrics dump names the
  // dispatch outcome next to the latency numbers it produced.
  metrics_
      ->counter(std::string("serve.simd.") + core::simd::backend_name())
      .add(core::simd::backend().width);
  // Resolve the fixed completion-path metric handles once; the registry's
  // find-or-create handles are stable for its lifetime, so workers record
  // through plain pointers with no name assembly or registry lock.
  sm_.completed = &metrics_->counter("serve.completed");
  sm_.deadline_missed = &metrics_->counter("serve.deadline_missed");
  sm_.late_executions = &metrics_->counter("serve.late_executions");
  sm_.executed = &metrics_->counter("serve.executed");
  sm_.cancelled = &metrics_->counter("serve.cancelled");
  sm_.cancelled_by_client = &metrics_->counter("serve.cancelled_by_client");
  sm_.exec_errors = &metrics_->counter("serve.exec_errors");
  sm_.latency_us = &metrics_->histogram("serve.latency_us");
  sm_.queued_us = &metrics_->histogram("serve.queued_us");
  sm_.exec_us = &metrics_->histogram("serve.exec_us");
  sm_.arena_bytes = &metrics_->histogram("serve.worker.arena_bytes");
  sm_.scratch_bytes = &metrics_->histogram("serve.worker.scratch_bytes");
  // Stage the startup program's weight image into every worker context up
  // front: part of server startup, never of any request's latency.
  contexts_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    contexts_.push_back(std::make_unique<driver::AcceleratorPool::Context>(
        cfg, options_.dram_bytes));
    contexts_.back()->worker = w;
    stage_program_in_context(*contexts_.back(), *program_);
  }
  threads_.reserve(contexts_.size());
  for (int w = 0; w < options_.workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

Server::~Server() { stop(); }

std::uint64_t Server::admit(nn::FeatureMapI8 input, const SubmitOptions& opts,
                            std::function<void(Response&&)> on_complete,
                            std::future<Response>* future_out) {
  TSCA_CHECK(opts.priority >= 0, "priority=" << opts.priority);
  Pending p;
  p.request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  p.request.input = std::move(input);
  p.request.submitted = Clock::now();
  if (opts.deadline_us >= 0)
    p.request.deadline =
        p.request.submitted + std::chrono::microseconds(opts.deadline_us);
  p.request.priority = opts.priority;
  p.request.client_id = opts.client_id;
  p.request.cycle_budget = opts.cycle_budget;
  p.on_complete = std::move(on_complete);
  if (future_out != nullptr) *future_out = p.promise.get_future();
  const std::uint64_t id = p.request.id;
  metrics_->counter("serve.submitted").add(1);

  // Model routing, resolved here at admission so every queued request
  // carries a concrete id and batches stay single-model.  A single-program
  // server knows no model names at all — any non-empty id is unknown.
  std::string model_id = opts.model_id;
  if (registry_ != nullptr && model_id.empty()) model_id = default_model_;
  const bool unknown = registry_ != nullptr ? !registry_->has_model(model_id)
                                            : !model_id.empty();
  if (unknown) {
    Response r;
    r.id = id;
    r.status = Status::kRejectedUnknownModel;
    metrics_->counter("serve.rejected_unknown_model").add(1);
    if (options_.trace != nullptr)
      options_.trace->track("serve/requests")
          .complete("req " + std::to_string(r.id), "rejected",
                    static_cast<std::uint64_t>(
                        us_between(epoch_, p.request.submitted)),
                    0, {{"unknown_model", 1}});
    complete(p, std::move(r));
    return id;
  }
  p.request.model_id = std::move(model_id);

  std::optional<Pending> evicted;
  const Admit admit = queue_.push(std::move(p), &evicted);
  if (evicted) {
    // Fair share made room by evicting an over-share client's entry; the
    // victim completes here, on the pusher's thread, as kRejectedQuota.
    Response r;
    r.id = evicted->request.id;
    r.status = Status::kRejectedQuota;
    r.latency.queued_us = us_between(evicted->request.submitted, Clock::now());
    metrics_->counter("serve.rejected_quota").add(1);
    if (options_.trace != nullptr)
      options_.trace->track("serve/requests")
          .complete("req " + std::to_string(r.id), "evicted",
                    static_cast<std::uint64_t>(
                        us_between(epoch_, evicted->request.submitted)),
                    static_cast<std::uint64_t>(r.latency.queued_us),
                    {{"client", static_cast<std::int64_t>(
                                    evicted->request.client_id)}});
    complete(*evicted, std::move(r));
  }
  if (admit == Admit::kAdmitted) {
    metrics_->counter("serve.admitted").add(1);
    metrics_
        ->counter("serve.class" + std::to_string(opts.priority) + ".admitted")
        .add(1);
    return id;
  }
  // Rejected: `p` was not consumed — complete it here, with the reason.
  Response r;
  r.id = id;
  r.status = admit == Admit::kQueueFull ? Status::kRejectedQueueFull
                                        : Status::kRejectedShutdown;
  metrics_->counter(admit == Admit::kQueueFull ? "serve.rejected_queue_full"
                                               : "serve.rejected_shutdown")
      .add(1);
  if (options_.trace != nullptr)
    options_.trace->track("serve/requests")
        .complete("req " + std::to_string(r.id), "rejected",
                  static_cast<std::uint64_t>(
                      us_between(epoch_, p.request.submitted)),
                  0, {{"queue_full", admit == Admit::kQueueFull ? 1 : 0}});
  complete(p, std::move(r));
  return id;
}

std::future<Response> Server::submit(nn::FeatureMapI8 input,
                                     std::int64_t deadline_us) {
  SubmitOptions opts;
  opts.deadline_us = deadline_us;
  return submit(std::move(input), opts);
}

std::future<Response> Server::submit(nn::FeatureMapI8 input,
                                     const SubmitOptions& opts) {
  std::future<Response> future;
  admit(std::move(input), opts, nullptr, &future);
  return future;
}

std::uint64_t Server::submit_with(nn::FeatureMapI8 input,
                                  const SubmitOptions& opts,
                                  std::function<void(Response&&)> on_complete) {
  TSCA_CHECK(on_complete != nullptr, "submit_with requires a callback");
  return admit(std::move(input), opts, std::move(on_complete), nullptr);
}

bool Server::take_cancel_mark(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(cancel_m_);
  if (cancel_marks_.erase(id) == 0) return false;
  cancel_mark_count_.store(static_cast<int>(cancel_marks_.size()),
                           std::memory_order_relaxed);
  return true;
}

bool Server::cancel(std::uint64_t id) {
  if (std::optional<Pending> p = queue_.take(id)) {
    Response r;
    r.id = id;
    r.status = Status::kCancelled;
    r.latency.queued_us = us_between(p->request.submitted, Clock::now());
    metrics_->counter("serve.cancelled").add(1);
    metrics_->counter("serve.cancelled_by_client").add(1);
    if (options_.trace != nullptr)
      options_.trace->track("serve/requests")
          .complete("req " + std::to_string(id), "cancelled",
                    static_cast<std::uint64_t>(
                        us_between(epoch_, p->request.submitted)),
                    static_cast<std::uint64_t>(r.latency.queued_us));
    complete(*p, std::move(r));
    return true;
  }
  // Already dispatched (or unknown): leave a mark for the worker's
  // last-chance check.  Best effort — a request already executing runs to
  // completion, and its stale mark is dropped after the batch (ids are
  // never reused, so a stale mark can't hit a future request).
  const std::lock_guard<std::mutex> lock(cancel_m_);
  cancel_marks_.insert(id);
  cancel_mark_count_.store(static_cast<int>(cancel_marks_.size()),
                           std::memory_order_relaxed);
  return false;
}

Server::ReqMetrics& Server::class_metrics(WorkerState& state, int priority) {
  const auto it = state.classes.find(priority);
  if (it != state.classes.end()) return it->second;
  const std::string cls = "serve.class" + std::to_string(priority);
  ReqMetrics m;
  m.completed = &metrics_->counter(cls + ".completed");
  m.deadline_missed = &metrics_->counter(cls + ".deadline_missed");
  m.latency_us = &metrics_->histogram(cls + ".latency_us");
  return state.classes.emplace(priority, m).first->second;
}

Server::ReqMetrics& Server::model_metrics(WorkerState& state,
                                          const std::string& model_id) {
  const auto it = state.models.find(model_id);
  if (it != state.models.end()) return it->second;
  const std::string mdl = "serve.model." + model_id;
  ReqMetrics m;
  m.completed = &metrics_->counter(mdl + ".completed");
  m.deadline_missed = &metrics_->counter(mdl + ".deadline_missed");
  m.latency_us = &metrics_->histogram(mdl + ".latency_us");
  return state.models.emplace(model_id, m).first->second;
}

void Server::worker_loop(int w) {
  driver::AcceleratorPool::Context& ctx =
      *contexts_[static_cast<std::size_t>(w)];
  // One Runtime for the worker's lifetime (the heart of the zero-allocation
  // warm path): its scratch arenas — conv planes, recycled feature maps, FC
  // double buffers — grow to the program's largest layer once, presized
  // below, and every subsequent batch reuses them.  The runtime adopts the
  // residency start() staged into this worker's context.
  driver::RuntimeOptions ropts;
  ropts.mode = options_.mode;
  ropts.trace = options_.trace;
  ropts.metrics = metrics_;
  ropts.trace_scope = "serve/worker" + std::to_string(w) + "/";
  ropts.cancel = &cancel_;
  driver::Runtime runtime(ctx.acc, ctx.dram, ctx.dma, ropts);
  runtime.adopt_staged_program(ctx.staged_stamp, ctx.ddr_floor);
  runtime.set_trace_clock(ctx.trace_clock);
  runtime.reserve_warm_scratch(*program_, options_.batch.max_batch);
  WorkerState state;
  for (;;) {
    std::vector<Pending> batch = scheduler_.next_batch();
    if (batch.empty()) return;  // queue closed
    execute_batch(w, ctx, runtime, state, std::move(batch));
  }
}

void Server::execute_batch(int w, driver::AcceleratorPool::Context& ctx,
                           driver::Runtime& runtime, WorkerState& state,
                           std::vector<Pending> batch) {
  const TimePoint exec_start = Clock::now();
  // Last-chance pass: a deadline can expire — and a client cancel can land —
  // between the scheduler's check and the batch reaching this worker.
  // Compacts in place: survivors slide down over the completed slots, so the
  // pass allocates nothing.
  const bool client_cancels =
      cancel_mark_count_.load(std::memory_order_relaxed) > 0;
  if (options_.batch.cancel_expired || client_cancels) {
    const TimePoint horizon =
        exec_start + std::chrono::microseconds(options_.batch.min_slack_us);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Pending& p = batch[i];
      if (client_cancels && take_cancel_mark(p.request.id)) {
        Response r;
        r.id = p.request.id;
        r.status = Status::kCancelled;
        r.latency.queued_us = us_between(p.request.submitted, p.dispatched);
        r.latency.batch_us = us_between(p.dispatched, exec_start);
        sm_.cancelled->add(1);
        sm_.cancelled_by_client->add(1);
        complete(p, std::move(r));
        continue;
      }
      if (options_.batch.cancel_expired && p.request.deadline < horizon) {
        complete_expired(p, exec_start, *metrics_, options_.trace, epoch_);
        continue;
      }
      if (kept != i) batch[kept] = std::move(batch[i]);
      ++kept;
    }
    batch.resize(kept);
    if (batch.empty()) return;
  }

  // Registry mode: lease the batch's program (the queue guarantees the batch
  // is single-model) and restage this worker's context when the staged stamp
  // differs — first touch of the model on this worker, or a recompile after
  // eviction invalidated what was resident.  An acquire failure (a model
  // evicted from the registry's catalog is impossible today, but a budget
  // infeasibility is not) fails the batch, never the server.
  driver::ProgramHandle lease;
  const driver::NetworkProgram* program = program_;
  if (registry_ != nullptr) {
    try {
      lease = registry_->acquire(batch.front().request.model_id);
    } catch (...) {
      metrics_->counter("serve.exec_errors").add(1);
      for (Pending& p : batch) complete_error(p, std::current_exception());
      return;
    }
    program = &lease.program();
    if (ctx.staged_stamp != program->stamp()) {
      stage_program_in_context(ctx, *program);
      metrics_->counter("serve.model_restage").add(1);
      // A model switch also re-sizes the warm scratch (no-op when this
      // program is smaller than anything the runtime has already served).
      runtime.reserve_warm_scratch(*program, options_.batch.max_batch);
    }
    // The persistent runtime must track whichever residency the context
    // holds before it runs this batch's program.
    runtime.adopt_staged_program(ctx.staged_stamp, ctx.ddr_floor);
  }

  // Whatever happens below — success, stop()-cancellation, a budget
  // abort, a typed validation error — the context must absorb the
  // simulated cycles the runtime burned before the throw, or the next
  // run on this worker rewinds the clock and its trace spans overlap
  // this batch's.
  struct ClockGuard {
    driver::AcceleratorPool::Context& ctx;
    driver::Runtime& runtime;
    ~ClockGuard() { ctx.trace_clock = runtime.trace_clock(); }
  } clock_guard{ctx, runtime};

  // Per-batch staging draws from the worker's arena: reset is O(1) and
  // frees nothing, so once the arena has grown to the largest batch's
  // footprint these vectors cost zero allocations.
  state.arena.reset();
  using FmPtrVec = std::vector<const nn::FeatureMapI8*,
                               core::ArenaAllocator<const nn::FeatureMapI8*>>;
  FmPtrVec inputs{core::ArenaAllocator<const nn::FeatureMapI8*>(
      &state.arena)};

  driver::BatchNetworkRun result;
  for (;;) {
    // The batch is the execution unit, so its strictest member's cycle
    // budget governs the run — but only that member pays for a budget
    // abort.  Batches form across clients and SLO classes, so on
    // BudgetExceeded the requests that imposed the governing budget fail
    // alone and the rest of the batch re-runs: one client submitting
    // cycle_budget=1 requests cannot poison its co-batched neighbors.
    std::uint64_t budget = 0;
    for (const Pending& p : batch)
      if (p.request.cycle_budget != 0)
        budget = budget == 0 ? p.request.cycle_budget
                             : std::min(budget, p.request.cycle_budget);
    runtime.set_cycle_budget(budget);

    // Request payloads are staged by pointer — never copied, never moved —
    // into the batch-order table run_network_batch consumes.
    inputs.clear();
    inputs.reserve(batch.size());
    for (const Pending& p : batch) inputs.push_back(&p.request.input);

    try {
      result = runtime.run_network_batch(*program, inputs.data(),
                                         inputs.size());
      break;
    } catch (const driver::RequestCancelled&) {
      for (Pending& p : batch) {
        Response r;
        r.id = p.request.id;
        r.status = Status::kCancelled;
        r.latency.queued_us = us_between(p.request.submitted, p.dispatched);
        r.latency.batch_us = us_between(p.dispatched, exec_start);
        r.latency.exec_us = us_between(exec_start, Clock::now());
        sm_.cancelled->add(1);
        complete(p, std::move(r));
      }
      return;
    } catch (const driver::BudgetExceeded&) {
      sm_.exec_errors->add(1);
      metrics_->counter("serve.budget_exceeded").add(1);
      const std::exception_ptr err = std::current_exception();
      std::size_t kept = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Pending& p = batch[i];
        if (p.request.cycle_budget != 0 && p.request.cycle_budget == budget) {
          complete_error(p, err);
          continue;
        }
        if (kept != i) batch[kept] = std::move(batch[i]);
        ++kept;
      }
      // budget == 0 never throws BudgetExceeded, so some request always
      // matched above — but never risk re-running an unshrunk batch.
      if (kept == batch.size()) {
        for (Pending& p : batch) complete_error(p, err);
        return;
      }
      batch.resize(kept);
      if (batch.empty()) return;
    } catch (...) {
      // Execution failed some other way (bad input shape, ...): the error
      // belongs to the submitters — the original exception through
      // in-process futures, a kError Response on the callback path.
      sm_.exec_errors->add(1);
      for (Pending& p : batch) complete_error(p, std::current_exception());
      return;
    }
  }

  const TimePoint exec_end = Clock::now();
  const int batch_size = static_cast<int>(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    Response r;
    r.id = p.request.id;
    r.executed = true;
    r.batch_size = batch_size;
    r.logits = std::move(result.requests[i].logits);
    r.final_fm = std::move(result.requests[i].final_fm);
    r.flat_output = result.requests[i].flat_output;
    r.latency.queued_us = us_between(p.request.submitted, p.dispatched);
    r.latency.batch_us = us_between(p.dispatched, exec_start);
    r.latency.exec_us = us_between(exec_start, exec_end);
    const bool late = exec_end > p.request.deadline;
    r.status = late ? Status::kDeadlineMissed : Status::kOk;
    // All through handles resolved at start() or cached on the class/model's
    // first completion — the warm path assembles no metric names.
    ReqMetrics& cls = class_metrics(state, p.request.priority);
    (late ? sm_.deadline_missed : sm_.completed)->add(1);
    (late ? cls.deadline_missed : cls.completed)->add(1);
    if (late) sm_.late_executions->add(1);
    sm_.executed->add(1);
    if (!p.request.model_id.empty()) {
      // Per-model serving metrics: registry-mode requests always carry a
      // concrete id (admission resolves empty submits to the default).
      ReqMetrics& mdl = model_metrics(state, p.request.model_id);
      (late ? mdl.deadline_missed : mdl.completed)->add(1);
      mdl.latency_us->observe(r.latency.total_us());
    }
    sm_.latency_us->observe(r.latency.total_us());
    cls.latency_us->observe(r.latency.total_us());
    sm_.queued_us->observe(r.latency.queued_us);
    sm_.exec_us->observe(r.latency.exec_us);
    if (options_.trace != nullptr)
      options_.trace->track("serve/requests")
          .complete("req " + std::to_string(r.id), late ? "late" : "request",
                    static_cast<std::uint64_t>(
                        us_between(epoch_, p.request.submitted)),
                    static_cast<std::uint64_t>(r.latency.total_us()),
                    {{"batch", batch_size}, {"worker", w}});
    complete(p, std::move(r));
  }
  if (options_.trace != nullptr)
    options_.trace->track("serve/worker" + std::to_string(w) + "/batches")
        .complete("batch x" + std::to_string(batch_size), "batch",
                  static_cast<std::uint64_t>(us_between(epoch_, exec_start)),
                  static_cast<std::uint64_t>(us_between(exec_start, exec_end)),
                  {{"batch", batch_size}});
  // Warm-path footprint observability: the arena's high-water mark is this
  // worker's whole per-batch staging footprint; the scratch bytes are the
  // runtime's persistent reusable storage.
  sm_.arena_bytes->observe(static_cast<std::int64_t>(state.arena.high_water()));
  sm_.scratch_bytes->observe(
      static_cast<std::int64_t>(runtime.warm_scratch_bytes()));
  // A cancel that raced with execution left its mark unconsumed; drop the
  // marks of everything this batch completed so the set stays bounded.
  if (cancel_mark_count_.load(std::memory_order_relaxed) > 0) {
    const std::lock_guard<std::mutex> lock(cancel_m_);
    for (const Pending& p : batch) cancel_marks_.erase(p.request.id);
    cancel_mark_count_.store(static_cast<int>(cancel_marks_.size()),
                             std::memory_order_relaxed);
  }
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  cancel_.store(true, std::memory_order_relaxed);
  queue_.close();
  for (std::thread& t : threads_) t.join();
  // The backlog never reached a worker; cancel it.
  for (Pending& p : queue_.drain()) {
    Response r;
    r.id = p.request.id;
    r.status = Status::kCancelled;
    r.latency.queued_us = us_between(p.request.submitted, Clock::now());
    metrics_->counter("serve.cancelled").add(1);
    complete(p, std::move(r));
  }
  {
    const std::lock_guard<std::mutex> lock(cancel_m_);
    cancel_marks_.clear();
    cancel_mark_count_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace tsca::serve
