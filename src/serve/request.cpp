#include "serve/request.hpp"

namespace tsca::serve {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kRejectedQueueFull:
      return "rejected-queue-full";
    case Status::kRejectedShutdown:
      return "rejected-shutdown";
    case Status::kDeadlineMissed:
      return "deadline-missed";
    case Status::kCancelled:
      return "cancelled";
    case Status::kRejectedQuota:
      return "rejected-quota";
    case Status::kError:
      return "error";
    case Status::kRejectedUnknownModel:
      return "rejected-unknown-model";
  }
  return "?";
}

}  // namespace tsca::serve
