#include "serve/load_generator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <utility>

#include "serve/client.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace tsca::serve {

std::vector<std::int64_t> poisson_arrivals_us(std::uint64_t seed, int n,
                                              double rate_rps) {
  TSCA_CHECK(rate_rps > 0.0, "rate_rps=" << rate_rps);
  Rng rng(seed);
  std::vector<std::int64_t> arrivals;
  arrivals.reserve(static_cast<std::size_t>(n));
  double t_us = 0.0;
  for (int i = 0; i < n; ++i) {
    // Exponential inter-arrival gap via inverse transform; next_double() is
    // in [0, 1) so 1-u is in (0, 1] and the log is finite.
    const double gap_s = -std::log(1.0 - rng.next_double()) / rate_rps;
    t_us += gap_s * 1e6;
    arrivals.push_back(static_cast<std::int64_t>(t_us));
  }
  return arrivals;
}

namespace {

std::vector<nn::FeatureMapI8> random_inputs(const nn::FmShape& shape, int n,
                                            std::uint64_t seed) {
  Rng rng(seed ^ 0xa5a5a5a5a5a5a5a5ull);
  std::vector<nn::FeatureMapI8> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nn::FeatureMapI8 fm(shape);
    for (std::size_t j = 0; j < fm.size(); ++j)
      fm.data()[j] = static_cast<std::int8_t>(rng.next_int(-40, 40));
    inputs.push_back(std::move(fm));
  }
  return inputs;
}

void fold_response(const Response& r, LoadReport& report, obs::Histogram& lat,
                   obs::Histogram& queued) {
  switch (r.status) {
    case Status::kOk:
      ++report.ok;
      break;
    case Status::kRejectedQueueFull:
    case Status::kRejectedShutdown:
    case Status::kRejectedUnknownModel:
      ++report.rejected;
      break;
    case Status::kRejectedQuota:
      ++report.rejected_quota;
      break;
    case Status::kDeadlineMissed:
      ++report.deadline_missed;
      if (r.executed) ++report.executed_late;
      break;
    case Status::kCancelled:
      ++report.cancelled;
      break;
    case Status::kError:
      ++report.errors;
      break;
  }
  if (r.executed) {
    lat.observe(r.latency.total_us());
    queued.observe(r.latency.queued_us);
    report.max_batch_seen = std::max(report.max_batch_seen, r.batch_size);
  }
}

// future.get() with the error path folded in: an in-process future rethrows
// the worker's exception; the workload counts it and keeps going.
void fold_future(std::future<Response>& f, LoadReport& report,
                 obs::Histogram& lat, obs::Histogram& queued) {
  try {
    fold_response(f.get(), report, lat, queued);
  } catch (...) {
    ++report.errors;
  }
}

}  // namespace

LoadReport run_load_with(const SubmitFn& submit, const nn::FmShape& shape,
                         const LoadOptions& options) {
  TSCA_CHECK(options.requests >= 1, "requests=" << options.requests);
  std::vector<nn::FeatureMapI8> inputs =
      random_inputs(shape, options.requests, options.seed);

  LoadReport report;
  report.submitted = options.requests;
  obs::Histogram lat("latency_us");
  obs::Histogram queued("queued_us");
  const TimePoint t0 = Clock::now();

  if (options.rate_rps > 0.0) {
    // Open loop: submit on the precomputed Poisson schedule regardless of
    // how the server keeps up, then wait for everything.
    const std::vector<std::int64_t> arrivals =
        poisson_arrivals_us(options.seed, options.requests, options.rate_rps);
    std::vector<std::future<Response>> futures;
    futures.reserve(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      std::this_thread::sleep_until(t0 +
                                    std::chrono::microseconds(arrivals[i]));
      futures.push_back(submit(std::move(inputs[i])));
    }
    for (std::future<Response>& f : futures)
      fold_future(f, report, lat, queued);
  } else {
    // Closed loop: `concurrency` clients, each with one request in flight.
    TSCA_CHECK(options.concurrency >= 1,
               "concurrency=" << options.concurrency);
    std::atomic<int> next{0};
    std::mutex fold_m;
    std::vector<std::thread> clients;
    const int nclients = std::min(options.concurrency, options.requests);
    clients.reserve(static_cast<std::size_t>(nclients));
    for (int c = 0; c < nclients; ++c)
      clients.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= options.requests) return;
          std::future<Response> f =
              submit(std::move(inputs[static_cast<std::size_t>(i)]));
          // Wait outside the fold lock — holding it across get() would
          // serialize the clients.
          Response r;
          bool errored = false;
          try {
            r = f.get();
          } catch (...) {
            errored = true;
          }
          const std::lock_guard<std::mutex> lock(fold_m);
          if (errored)
            ++report.errors;
          else
            fold_response(r, report, lat, queued);
        }
      });
    for (std::thread& t : clients) t.join();
  }

  report.wall_us = us_between(t0, Clock::now());
  const double wall_s = static_cast<double>(report.wall_us) * 1e-6;
  if (wall_s > 0.0) {
    report.offered_rps = static_cast<double>(report.submitted) / wall_s;
    report.goodput_rps = static_cast<double>(report.ok) / wall_s;
  }
  report.latency_us = lat.snapshot();
  report.queued_us = queued.snapshot();
  return report;
}

LoadReport run_load(Server& server, const LoadOptions& options) {
  SubmitOptions sopts;
  sopts.deadline_us = options.deadline_us;
  sopts.priority = options.priority;
  sopts.client_id = options.client_id;
  return run_load_with(
      [&server, &sopts](nn::FeatureMapI8&& input) {
        return server.submit(std::move(input), sopts);
      },
      server.program().net().input_shape(), options);
}

LoadReport run_load(NetClient& client, const nn::FmShape& shape,
                    const LoadOptions& options) {
  SubmitOptions sopts;
  sopts.deadline_us = options.deadline_us;
  sopts.priority = options.priority;
  return run_load_with(
      [&client, &sopts](nn::FeatureMapI8&& input) {
        return client.submit(std::move(input), sopts);
      },
      shape, options);
}

}  // namespace tsca::serve
