#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tsca::serve {

namespace {

// Little-endian, bounds-checked payload builder/parser.  Serialization is
// byte-at-a-time on purpose: no dependence on host endianness or struct
// layout, and the decoder can never read past the buffer.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}
  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  const std::uint8_t* take(std::size_t n) {
    if (in_.size() - pos_ < n)
      throw ProtocolError("truncated payload: need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) +
                          " of " + std::to_string(in_.size()));
    const std::uint8_t* p = in_.data() + pos_;
    pos_ += n;
    return p;
  }
  // Decoding must consume the payload exactly — trailing garbage means the
  // peer and we disagree about the layout, which is never safe to ignore.
  void done() const {
    if (pos_ != in_.size())
      throw ProtocolError("trailing bytes in payload: consumed " +
                          std::to_string(pos_) + " of " +
                          std::to_string(in_.size()));
  }

 private:
  std::uint64_t le(int n) {
    const std::uint8_t* p = take(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    return v;
  }
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

void put_fm(Writer& w, const nn::FeatureMapI8& fm) {
  const nn::FmShape& s = fm.shape();
  TSCA_CHECK(s.c >= 0 && s.c <= 0xffff && s.h >= 0 && s.h <= 0xffff &&
                 s.w >= 0 && s.w <= 0xffff,
             "feature map dims exceed wire format: " << s.c << "x" << s.h
                                                     << "x" << s.w);
  w.u16(static_cast<std::uint16_t>(s.c));
  w.u16(static_cast<std::uint16_t>(s.h));
  w.u16(static_cast<std::uint16_t>(s.w));
  w.bytes(fm.data(), fm.size());
}

nn::FeatureMapI8 get_fm(Reader& r) {
  nn::FmShape s;
  s.c = r.u16();
  s.h = r.u16();
  s.w = r.u16();
  const std::size_t count = static_cast<std::size_t>(s.count());
  nn::FeatureMapI8 fm;
  if (count == 0) return fm;
  // Bounds-check the wire-claimed element count against the payload BEFORE
  // sizing the allocation from it: a corrupt 65535³ header must throw
  // ProtocolError, not zero-fill terabytes or escape as bad_alloc.
  const std::uint8_t* p = r.take(count);
  fm = nn::FeatureMapI8(s);
  std::memcpy(fm.data(), p, count);
  return fm;
}

}  // namespace

std::vector<std::uint8_t> encode_request(std::uint64_t wire_id,
                                         const SubmitOptions& opts,
                                         const nn::FeatureMapI8& input) {
  TSCA_CHECK(opts.priority >= 0 && opts.priority <= 0xff,
             "priority=" << opts.priority);
  TSCA_CHECK(opts.model_id.size() <= kMaxModelIdBytes,
             "model id too long for the wire: " << opts.model_id.size()
                                                << " bytes");
  std::vector<std::uint8_t> out;
  out.reserve(36 + opts.model_id.size() + input.size());
  Writer w(out);
  w.u64(wire_id);
  w.i64(opts.deadline_us);
  w.u8(static_cast<std::uint8_t>(opts.priority));
  w.u64(opts.cycle_budget);
  w.u8(static_cast<std::uint8_t>(opts.model_id.size()));
  w.bytes(opts.model_id.data(), opts.model_id.size());
  put_fm(w, input);
  return out;
}

WireRequest decode_request(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  WireRequest req;
  req.wire_id = r.u64();
  req.opts.deadline_us = r.i64();
  req.opts.priority = r.u8();
  req.opts.cycle_budget = r.u64();
  const std::uint8_t nmodel = r.u8();
  if (nmodel > kMaxModelIdBytes)
    throw ProtocolError("model id too long: " + std::to_string(nmodel) +
                        " bytes (cap " + std::to_string(kMaxModelIdBytes) +
                        ")");
  const std::uint8_t* model = r.take(nmodel);
  req.opts.model_id.assign(reinterpret_cast<const char*>(model), nmodel);
  req.input = get_fm(r);
  r.done();
  return req;
}

std::vector<std::uint8_t> encode_response(std::uint64_t wire_id,
                                          const Response& response) {
  std::vector<std::uint8_t> out;
  encode_response(wire_id, response, out);
  return out;
}

void encode_response(std::uint64_t wire_id, const Response& response,
                     std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(64 + response.logits.size() + response.final_fm.size() +
              response.error.size());
  Writer w(out);
  w.u64(wire_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u8(response.executed ? 1 : 0);
  w.u8(response.flat_output ? 1 : 0);
  w.i32(response.batch_size);
  w.i64(response.latency.queued_us);
  w.i64(response.latency.batch_us);
  w.i64(response.latency.exec_us);
  w.u32(static_cast<std::uint32_t>(response.logits.size()));
  w.bytes(response.logits.data(), response.logits.size());
  put_fm(w, response.final_fm);
  w.u32(static_cast<std::uint32_t>(response.error.size()));
  w.bytes(response.error.data(), response.error.size());
}

WireResponse decode_response(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  WireResponse out;
  out.wire_id = r.u64();
  Response& resp = out.response;
  resp.id = out.wire_id;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::kRejectedUnknownModel))
    throw ProtocolError("unknown status code " + std::to_string(status));
  resp.status = static_cast<Status>(status);
  resp.executed = r.u8() != 0;
  resp.flat_output = r.u8() != 0;
  resp.batch_size = r.i32();
  resp.latency.queued_us = r.i64();
  resp.latency.batch_us = r.i64();
  resp.latency.exec_us = r.i64();
  const std::uint32_t nlogits = r.u32();
  const std::uint8_t* logits = r.take(nlogits);
  resp.logits.assign(reinterpret_cast<const std::int8_t*>(logits),
                     reinterpret_cast<const std::int8_t*>(logits) + nlogits);
  resp.final_fm = get_fm(r);
  const std::uint32_t nerr = r.u32();
  const std::uint8_t* err = r.take(nerr);
  resp.error.assign(reinterpret_cast<const char*>(err), nerr);
  r.done();
  return out;
}

std::vector<std::uint8_t> encode_cancel(std::uint64_t wire_id) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u64(wire_id);
  return out;
}

std::uint64_t decode_cancel(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  const std::uint64_t id = r.u64();
  r.done();
  return id;
}

std::vector<std::uint8_t> encode_metrics_response(const std::string& text) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + text.size());
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(text.size()));
  w.bytes(text.data(), text.size());
  return out;
}

std::string decode_metrics_response(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  const std::uint32_t n = r.u32();
  const std::uint8_t* p = r.take(n);
  std::string text(reinterpret_cast<const char*>(p), n);
  r.done();
  return text;
}

namespace {

// recv() exactly n bytes.  Returns false only on clean EOF before the first
// byte when `eof_ok`; every other short read is a ProtocolError.
bool read_exact(int fd, void* buf, std::size_t n, bool eof_ok) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw ProtocolError("connection closed mid-frame (" +
                          std::to_string(got) + "/" + std::to_string(n) +
                          " bytes)");
    }
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("recv failed: ") + std::strerror(errno));
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("send failed: ") + std::strerror(errno));
  }
}

}  // namespace

std::optional<Frame> read_frame(int fd) {
  Frame frame;
  if (!read_frame(fd, frame)) return std::nullopt;
  return frame;
}

bool read_frame(int fd, Frame& frame) {
  std::uint8_t header[4];
  if (!read_exact(fd, header, sizeof(header), /*eof_ok=*/true)) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) length |= std::uint32_t(header[i]) << (8 * i);
  if (length < 1) throw ProtocolError("empty frame (no type octet)");
  if (length > kMaxFrameBytes)
    throw ProtocolError("oversized frame: " + std::to_string(length) +
                        " bytes (cap " + std::to_string(kMaxFrameBytes) + ")");
  std::uint8_t type = 0;
  read_exact(fd, &type, 1, /*eof_ok=*/false);
  if (type < 1 || type > static_cast<std::uint8_t>(MsgType::kMetricsResponse))
    throw ProtocolError("unknown message type " + std::to_string(type));
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length - 1);  // shrinking keeps capacity: no realloc
  if (!frame.payload.empty())
    read_exact(fd, frame.payload.data(), frame.payload.size(),
               /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> scratch;
  write_frame(fd, type, payload, scratch);
}

void write_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload,
                 std::vector<std::uint8_t>& scratch) {
  TSCA_CHECK(payload.size() + 1 <= kMaxFrameBytes,
             "frame too large: " << payload.size());
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size() + 1);
  scratch.clear();
  scratch.reserve(5 + payload.size());
  for (int i = 0; i < 4; ++i)
    scratch.push_back(std::uint8_t(length >> (8 * i)));
  scratch.push_back(static_cast<std::uint8_t>(type));
  scratch.insert(scratch.end(), payload.begin(), payload.end());
  write_all(fd, scratch.data(), scratch.size());
}

}  // namespace tsca::serve
