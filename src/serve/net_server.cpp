#include "serve/net_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tsca::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw ProtocolError(std::string(what) + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  // One whole frame per send(); Nagle only adds latency to the
  // request-response exchange.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

NetServer::NetServer(Server& server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw ProtocolError("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw ProtocolError(std::string("bind/listen failed: ") +
                        std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    throw ProtocolError(std::string("getsockname failed: ") +
                        std::strerror(err));
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

NetServer::~NetServer() { stop(); }

void NetServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or fatal
    }
    if (stopped_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    // Every accept reclaims the connections that finished since the last
    // one, so held fds/threads are bounded by the live set, not by the
    // connection history (think one metrics scrape per connection, forever).
    reap_finished_connections();
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->client_id = next_client_id_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(conns_m_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
  }
}

void NetServer::reap_finished_connections() {
  std::vector<std::shared_ptr<Connection>> dead;
  {
    const std::lock_guard<std::mutex> lock(conns_m_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if ((*it)->reader_done.load(std::memory_order_acquire) &&
          (*it)->writer_done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Joins return immediately (both loops already ran their last statement).
  // Late completion callbacks may still hold the shared_ptr and park frames
  // in the outbox; they never touch the fd, so closing it here is safe.
  for (const std::shared_ptr<Connection>& conn : dead) {
    conn->reader.join();
    conn->writer.join();
    ::close(conn->fd);
  }
}

std::size_t NetServer::tracked_connections() {
  const std::lock_guard<std::mutex> lock(conns_m_);
  return conns_.size();
}

void NetServer::enqueue(const std::shared_ptr<Connection>& conn, MsgType type,
                        std::vector<std::uint8_t> payload) {
  {
    const std::lock_guard<std::mutex> lock(conn->m);
    conn->outbox.push_back(OutFrame{type, std::move(payload)});
  }
  conn->cv.notify_one();
}

std::vector<std::uint8_t> NetServer::take_spare(Connection& conn) {
  std::vector<std::uint8_t> buf;
  const std::lock_guard<std::mutex> lock(conn.m);
  if (!conn.spare.empty()) {
    buf = std::move(conn.spare.back());
    conn.spare.pop_back();
  }
  return buf;
}

void NetServer::give_spare(Connection& conn, std::vector<std::uint8_t> buf) {
  buf.clear();
  const std::lock_guard<std::mutex> lock(conn.m);
  if (conn.spare.size() < kMaxSpareBuffers)
    conn.spare.push_back(std::move(buf));
}

void NetServer::handle_frame(const std::shared_ptr<Connection>& conn,
                             const Frame& frame) {
  switch (frame.type) {
    case MsgType::kRequest: {
      WireRequest req = decode_request(frame.payload);
      const std::uint64_t wire_id = req.wire_id;
      SubmitOptions opts = req.opts;
      // The connection is the fair-share identity; whatever client_id the
      // peer encoded never reaches admission.
      opts.client_id = conn->client_id;
      {
        const std::lock_guard<std::mutex> lock(conn->m);
        // A wire_id may be reused only after its response: two in-flight
        // requests sharing one id would cross their cancel/response routing,
        // so reject the frame like any other malformed traffic.
        if (!conn->open.insert(wire_id).second)
          throw ProtocolError("wire_id " + std::to_string(wire_id) +
                              " is already in flight on this connection");
      }
      const std::shared_ptr<Connection> c = conn;
      const std::uint64_t sid = server_.submit_with(
          std::move(req.input), opts, [c, wire_id](Response&& r) {
            // Encode into a recycled buffer (outside the lock — the writer
            // may be draining) so a settled connection's response path
            // reuses the same storage frame after frame.
            std::vector<std::uint8_t> payload = take_spare(*c);
            encode_response(wire_id, r, payload);
            {
              const std::lock_guard<std::mutex> lock(c->m);
              c->open.erase(wire_id);
              c->wire_to_server.erase(wire_id);
              c->outbox.push_back(OutFrame{MsgType::kResponse,
                                           std::move(payload)});
            }
            c->cv.notify_one();
          });
      {
        // Map for kCancel — unless the callback already fired (synchronous
        // rejection completes inside submit_with).
        const std::lock_guard<std::mutex> lock(conn->m);
        if (conn->open.count(wire_id) != 0)
          conn->wire_to_server[wire_id] = sid;
      }
      return;
    }
    case MsgType::kCancel: {
      const std::uint64_t wire_id = decode_cancel(frame.payload);
      std::uint64_t sid = 0;
      bool known = false;
      {
        const std::lock_guard<std::mutex> lock(conn->m);
        const auto it = conn->wire_to_server.find(wire_id);
        if (it != conn->wire_to_server.end()) {
          sid = it->second;
          known = true;
        }
      }
      // Unknown ⇒ already completed (its response is on the way or
      // delivered) — nothing to do.  A successful cancel completes the
      // request through the normal callback; no separate ack.
      if (known) server_.cancel(sid);
      return;
    }
    case MsgType::kMetricsRequest:
      enqueue(conn, MsgType::kMetricsResponse,
              encode_metrics_response(server_.metrics().prometheus()));
      return;
    case MsgType::kResponse:
    case MsgType::kMetricsResponse:
      throw ProtocolError("server-bound frame of server-to-client type " +
                          std::to_string(static_cast<int>(frame.type)));
  }
  throw ProtocolError("unhandled frame type");
}

void NetServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  try {
    // One Frame for the connection's lifetime: its payload buffer grows to
    // the largest frame seen and is recycled every iteration.
    Frame frame;
    while (read_frame(conn->fd, frame)) handle_frame(conn, frame);
  } catch (const ProtocolError&) {
    // Malformed traffic or a mid-frame disconnect: drop the connection.
    // Requests already admitted keep running; their responses have nowhere
    // to go and are parked in the dead outbox.
  }
  {
    const std::lock_guard<std::mutex> lock(conn->m);
    conn->closing = true;
  }
  conn->cv.notify_all();
  conn->reader_done.store(true, std::memory_order_release);
}

void NetServer::writer_loop(const std::shared_ptr<Connection>& conn) {
  // Wire-assembly scratch, reused across every frame this connection sends.
  std::vector<std::uint8_t> wire;
  OutFrame out;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(conn->m);
      conn->cv.wait(lock,
                    [&] { return conn->closing || !conn->outbox.empty(); });
      if (conn->outbox.empty()) break;  // closing, fully drained
      out = std::move(conn->outbox.front());
      conn->outbox.pop_front();
    }
    try {
      write_frame(conn->fd, out.type, out.payload, wire);
    } catch (const ProtocolError&) {
      break;  // peer gone
    }
    // The drained payload buffer goes back to the completion path's pool.
    give_spare(*conn, std::move(out.payload));
  }
  // The connection is finished either way.  The shutdown sends the FIN the
  // peer is waiting on (reader bailed on malformed traffic) and unblocks the
  // reader when the *writer* failed first (peer stopped reading but never
  // closed).  The fd itself is reclaimed by the accept loop's reap pass (or
  // by stop()) once the reader is done too — never here, so a racing stop()
  // cannot shutdown() a recycled descriptor.
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->writer_done.store(true, std::memory_order_release);
}

void NetServer::stop() {
  if (stopped_.exchange(true)) return;
  // Wake the accept loop (accept() fails once the listener is shut down),
  // then tear down every connection.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::lock_guard<std::mutex> lock(conns_m_);
    conns.swap(conns_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
    if (conn->reader.joinable()) conn->reader.join();
    {
      const std::lock_guard<std::mutex> lock(conn->m);
      conn->closing = true;
    }
    conn->cv.notify_all();
    if (conn->writer.joinable()) conn->writer.join();
    ::close(conn->fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace tsca::serve
