// Wire protocol for the socket front-end: length-prefixed binary frames.
//
// Frame layout (all integers little-endian, fixed width):
//
//   u32  length     // bytes that follow: 1 (type) + payload
//   u8   type       // MsgType
//   ...  payload    // per-type layout below
//
// Payloads:
//
//   kRequest    u64 wire_id | i64 deadline_us (relative; <0 ⇒ none) |
//               u8 priority | u64 cycle_budget |
//               u8 nmodel | nmodel bytes (model id; 0 ⇒ server default) |
//               u16 c | u16 h | u16 w | c*h*w bytes (i8 feature map, CHW)
//   kResponse   u64 wire_id | u8 status | u8 executed | u8 flat_output |
//               i32 batch_size | i64 queued_us | i64 batch_us | i64 exec_us |
//               u32 nlogits | nlogits bytes |
//               u16 c | u16 h | u16 w | c*h*w bytes (final fm; 0×0×0 ⇒ none) |
//               u32 nerr | nerr bytes (UTF-8 error text, kError only)
//   kCancel     u64 wire_id
//   kMetricsRequest   (empty)
//   kMetricsResponse  u32 n | n bytes (Prometheus text exposition)
//
// The wire_id is the *client's* correlation id — chosen by the client,
// echoed verbatim in the response, the handle for kCancel.  The server's
// internal request ids never cross the wire.
//
// Decoding is strict: every read is bounds-checked and trailing bytes are an
// error — a malformed frame throws ProtocolError (a tsca::Error), never
// reads out of bounds, and never aborts the process.  Frames are capped at
// kMaxFrameBytes so a corrupt length prefix cannot trigger a giant
// allocation.
//
// read_frame/write_frame do the fd I/O (POSIX sockets): write_frame sends
// one whole frame (looping over short writes, MSG_NOSIGNAL so a closed peer
// surfaces as an error, not SIGPIPE); read_frame blocks for one whole frame
// and distinguishes clean EOF at a frame boundary (nullopt) from a
// mid-frame disconnect (ProtocolError).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "util/check.hpp"

namespace tsca::serve {

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kCancel = 3,
  kMetricsRequest = 4,
  kMetricsResponse = 5,
};

// Frames above this are rejected at the length prefix (both directions).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

// Longest model id the wire carries (matches the registry's id validation).
// The length rides in one octet, so the decoder rejects anything above this
// before touching the bytes.
inline constexpr std::size_t kMaxModelIdBytes = 64;

class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

// A decoded kRequest.  SubmitOptions::client_id is *not* on the wire — the
// server stamps the connection's identity (fairness is a trust boundary).
struct WireRequest {
  std::uint64_t wire_id = 0;
  SubmitOptions opts;
  nn::FeatureMapI8 input;
};

struct WireResponse {
  std::uint64_t wire_id = 0;
  Response response;  // response.id is set to wire_id on decode
};

// Payload encoders/decoders (payload = frame bytes after the type octet).
std::vector<std::uint8_t> encode_request(std::uint64_t wire_id,
                                         const SubmitOptions& opts,
                                         const nn::FeatureMapI8& input);
WireRequest decode_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_response(std::uint64_t wire_id,
                                          const Response& response);
// Reuse form: clears `out` and encodes into it, recycling its capacity.
// The socket front-end's completion path pulls spare buffers from a
// per-connection pool, so a settled connection encodes responses without
// touching the allocator.
void encode_response(std::uint64_t wire_id, const Response& response,
                     std::vector<std::uint8_t>& out);
WireResponse decode_response(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_cancel(std::uint64_t wire_id);
std::uint64_t decode_cancel(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_metrics_response(const std::string& text);
std::string decode_metrics_response(const std::vector<std::uint8_t>& payload);

// One whole frame in/out of a connected socket.
struct Frame {
  MsgType type{};
  std::vector<std::uint8_t> payload;
};

// Blocks until a full frame arrives.  nullopt = peer closed cleanly at a
// frame boundary; ProtocolError = mid-frame EOF, I/O error, oversized or
// unknown-type frame.
std::optional<Frame> read_frame(int fd);

// Reuse form: fills `frame` in place, recycling its payload buffer, so a
// connection's read loop stops allocating once the buffer has grown to the
// largest frame it has carried.  Returns false on clean EOF at a frame
// boundary; same errors as above.
bool read_frame(int fd, Frame& frame);

// Sends one whole frame; ProtocolError on any send failure.
void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload);

// Reuse form: assembles length/type/payload in `scratch` (capacity recycled
// across calls) before the single send.
void write_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload,
                 std::vector<std::uint8_t>& scratch);

}  // namespace tsca::serve
