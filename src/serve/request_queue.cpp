#include "serve/request_queue.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "util/check.hpp"

namespace tsca::serve {

void complete(Pending& p, Response&& r) {
  if (p.on_complete) {
    p.on_complete(std::move(r));
    return;
  }
  p.promise.set_value(std::move(r));
}

void complete_error(Pending& p, std::exception_ptr error) {
  if (!p.on_complete) {
    p.promise.set_exception(std::move(error));
    return;
  }
  Response r;
  r.id = p.request.id;
  r.status = Status::kError;
  try {
    std::rethrow_exception(std::move(error));
  } catch (const std::exception& e) {
    r.error = e.what();
  } catch (...) {
    r.error = "unknown execution error";
  }
  p.on_complete(std::move(r));
}

const char* admit_name(Admit admit) {
  switch (admit) {
    case Admit::kAdmitted:
      return "admitted";
    case Admit::kQueueFull:
      return "queue-full";
    case Admit::kShutdown:
      return "shutdown";
  }
  return "?";
}

RequestQueue::RequestQueue(std::size_t capacity, bool fair_share)
    : capacity_(capacity), fair_share_(fair_share) {
  TSCA_CHECK(capacity >= 1, "queue capacity=" << capacity);
}

void RequestQueue::note_removed_locked(const Pending& p) {
  const auto it = client_counts_.find(p.request.client_id);
  TSCA_CHECK(it != client_counts_.end() && it->second > 0,
             "client count underflow");
  if (--it->second == 0) client_counts_.erase(it);
}

std::deque<Pending>::iterator RequestQueue::pick_victim_locked(
    std::uint64_t pusher) {
  // Fair share with the pusher counted as active: it is about to hold an
  // entry.  A pusher at or over its own share never evicts.
  const std::size_t active =
      client_counts_.size() + (client_counts_.count(pusher) != 0 ? 0 : 1);
  const std::size_t share = std::max<std::size_t>(1, capacity_ / active);
  const auto mine = client_counts_.find(pusher);
  if (mine != client_counts_.end() && mine->second >= share)
    return entries_.end();
  // Victim: an entry of a client holding more than its share — the most
  // expendable one (lowest class first, then latest deadline, then newest).
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (client_counts_.at(it->request.client_id) <= share) continue;
    if (victim == entries_.end() ||
        std::make_tuple(it->request.priority, it->request.deadline,
                        it->request.id) >
            std::make_tuple(victim->request.priority,
                            victim->request.deadline, victim->request.id))
      victim = it;
  }
  return victim;
}

Admit RequestQueue::push(Pending&& p, std::optional<Pending>* evicted) {
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (closed_) return Admit::kShutdown;
    if (entries_.size() >= capacity_) {
      if (!fair_share_) return Admit::kQueueFull;
      const auto victim = pick_victim_locked(p.request.client_id);
      if (victim == entries_.end()) return Admit::kQueueFull;
      note_removed_locked(*victim);
      if (evicted != nullptr) evicted->emplace(std::move(*victim));
      entries_.erase(victim);
    }
    ++client_counts_[p.request.client_id];
    entries_.push_back(std::move(p));
  }
  cv_.notify_one();
  return Admit::kAdmitted;
}

std::vector<Pending> RequestQueue::pop_wait(std::size_t max_batch,
                                            std::int64_t max_delay_us,
                                            bool edf) {
  TSCA_CHECK(max_batch >= 1);
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    cv_.wait(lock, [&] { return closed_ || !entries_.empty(); });
    if (closed_) return {};
    // Batch formation: wait until the batch fills or the oldest *live*
    // request has waited max_delay_us.  The anchor is recomputed from the
    // current front after every wake: a concurrent popper may steal the
    // entries the window was opened for, and a request that arrives after
    // the steal must open a fresh window, not inherit the expired one.
    while (!closed_ && !entries_.empty() && entries_.size() < max_batch &&
           max_delay_us > 0) {
      const TimePoint flush_at =
          entries_.front().request.submitted +
          std::chrono::microseconds(max_delay_us);
      if (Clock::now() >= flush_at) break;
      cv_.wait_until(lock, flush_at);
    }
    if (closed_) return {};
    if (entries_.empty()) continue;
    std::vector<Pending> out = pop_locked(max_batch, edf);
    // Hand off a remaining backlog: push() only ever notified one waiter,
    // and this pop may not have emptied the queue.
    if (!entries_.empty()) cv_.notify_one();
    return out;
  }
}

std::vector<Pending> RequestQueue::pop_locked(std::size_t max_batch,
                                              bool edf) {
  std::vector<Pending> out;
  out.reserve(std::min(max_batch, entries_.size()));
  // Batches are single-model: run_network_batch executes one program, so the
  // first pick fixes the batch's model and later picks skip entries routed
  // elsewhere (those stay queued for the next batch — a popper per model
  // drains a mixed queue without ever mixing a batch).  model_id is resolved
  // at admission, so string equality means "same registry program".
  std::string model;
  while (out.size() < max_batch && !entries_.empty()) {
    auto it = entries_.end();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (!out.empty() && cand->request.model_id != model) continue;
      if (it == entries_.end()) {
        it = cand;
        if (!edf) break;  // FIFO: the first eligible entry wins
        continue;
      }
      // Strict priority across SLO classes, EDF within a class (submission
      // order among ties; kNoDeadline sorts last within its class).
      if (std::make_tuple(cand->request.priority, cand->request.deadline,
                          cand->request.id) <
          std::make_tuple(it->request.priority, it->request.deadline,
                          it->request.id))
        it = cand;
    }
    if (it == entries_.end()) break;  // only other-model entries remain
    if (out.empty()) model = it->request.model_id;
    note_removed_locked(*it);
    out.push_back(std::move(*it));
    entries_.erase(it);
  }
  return out;
}

std::optional<Pending> RequestQueue::take(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(m_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->request.id != id) continue;
    note_removed_locked(*it);
    std::optional<Pending> out(std::move(*it));
    entries_.erase(it);
    return out;
  }
  return std::nullopt;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(m_);
  return closed_;
}

std::vector<Pending> RequestQueue::drain() {
  const std::lock_guard<std::mutex> lock(m_);
  std::vector<Pending> out;
  out.reserve(entries_.size());
  for (Pending& p : entries_) out.push_back(std::move(p));
  entries_.clear();
  client_counts_.clear();
  return out;
}

std::size_t RequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(m_);
  return entries_.size();
}

}  // namespace tsca::serve
