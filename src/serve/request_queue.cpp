#include "serve/request_queue.hpp"

#include <algorithm>
#include <tuple>

#include "util/check.hpp"

namespace tsca::serve {

const char* admit_name(Admit admit) {
  switch (admit) {
    case Admit::kAdmitted:
      return "admitted";
    case Admit::kQueueFull:
      return "queue-full";
    case Admit::kShutdown:
      return "shutdown";
  }
  return "?";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  TSCA_CHECK(capacity >= 1, "queue capacity=" << capacity);
}

Admit RequestQueue::push(Pending&& p) {
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (closed_) return Admit::kShutdown;
    if (entries_.size() >= capacity_) return Admit::kQueueFull;
    entries_.push_back(std::move(p));
  }
  cv_.notify_one();
  return Admit::kAdmitted;
}

std::vector<Pending> RequestQueue::pop_wait(std::size_t max_batch,
                                            std::int64_t max_delay_us,
                                            bool edf) {
  TSCA_CHECK(max_batch >= 1);
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    cv_.wait(lock, [&] { return closed_ || !entries_.empty(); });
    if (closed_) return {};
    // Batch formation: the first request opens a window that closes when the
    // batch fills or when that request has waited max_delay_us.  Concurrent
    // poppers may steal the entries while we wait — loop back if so.
    if (entries_.size() < max_batch && max_delay_us > 0) {
      const TimePoint flush_at =
          entries_.front().request.submitted +
          std::chrono::microseconds(max_delay_us);
      cv_.wait_until(lock, flush_at, [&] {
        return closed_ || entries_.size() >= max_batch || entries_.empty();
      });
      if (closed_) return {};
      if (entries_.empty()) continue;
    }
    return pop_locked(max_batch, edf);
  }
}

std::vector<Pending> RequestQueue::pop_locked(std::size_t max_batch,
                                              bool edf) {
  std::vector<Pending> out;
  out.reserve(std::min(max_batch, entries_.size()));
  while (out.size() < max_batch && !entries_.empty()) {
    auto it = entries_.begin();
    if (edf)
      it = std::min_element(
          entries_.begin(), entries_.end(), [](const Pending& a,
                                               const Pending& b) {
            return std::make_tuple(a.request.deadline, a.request.id) <
                   std::make_tuple(b.request.deadline, b.request.id);
          });
    out.push_back(std::move(*it));
    entries_.erase(it);
  }
  return out;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(m_);
  return closed_;
}

std::vector<Pending> RequestQueue::drain() {
  const std::lock_guard<std::mutex> lock(m_);
  std::vector<Pending> out;
  out.reserve(entries_.size());
  for (Pending& p : entries_) out.push_back(std::move(p));
  entries_.clear();
  return out;
}

std::size_t RequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(m_);
  return entries_.size();
}

}  // namespace tsca::serve
