#include "core/poolgen.hpp"

#include <algorithm>
#include <map>

namespace tsca::core {

namespace {

// A single output value's contribution from one input tile.
struct Contribution {
  int out_idx;             // 0..15 within the output tile
  std::uint16_t mask;      // input-tile values in this output's window
  bool first_for_output;   // take (replace) vs running-max combine
};

}  // namespace

std::vector<PoolStep> make_pool_steps(const PadPoolInstr& instr, int oty,
                                      int otx) {
  // Gather contributions keyed by input tile, in (ty, tx) scan order.
  std::map<std::pair<int, int>, std::vector<Contribution>> by_tile;
  std::array<bool, pack::kTileSize> touched{};  // output already written once

  for (int vy = 0; vy < pack::kTileDim; ++vy) {
    for (int vx = 0; vx < pack::kTileDim; ++vx) {
      const int oy = oty * pack::kTileDim + vy;
      const int ox = otx * pack::kTileDim + vx;
      if (oy >= instr.ofm_h || ox >= instr.ofm_w) continue;
      const int out_idx = vy * pack::kTileDim + vx;

      // Source window in input coordinates (half-open).
      int y0 = oy * instr.stride + instr.offset_y;
      int x0 = ox * instr.stride + instr.offset_x;
      int y1 = y0 + instr.win;
      int x1 = x0 + instr.win;
      y0 = std::max(y0, 0);
      x0 = std::max(x0, 0);
      y1 = std::min(y1, instr.ifm_h);
      x1 = std::min(x1, instr.ifm_w);
      if (y0 >= y1 || x0 >= x1) continue;  // padding region: stays zero

      // Split the window across the input tiles it straddles.
      for (int ty = y0 / pack::kTileDim; ty <= (y1 - 1) / pack::kTileDim;
           ++ty) {
        for (int tx = x0 / pack::kTileDim; tx <= (x1 - 1) / pack::kTileDim;
             ++tx) {
          std::uint16_t mask = 0;
          for (int y = std::max(y0, ty * pack::kTileDim);
               y < std::min(y1, (ty + 1) * pack::kTileDim); ++y)
            for (int x = std::max(x0, tx * pack::kTileDim);
                 x < std::min(x1, (tx + 1) * pack::kTileDim); ++x)
              mask = static_cast<std::uint16_t>(
                  mask | (1u << ((y % pack::kTileDim) * pack::kTileDim +
                                 (x % pack::kTileDim))));
          if (mask == 0) continue;
          by_tile[{ty, tx}].push_back(
              {out_idx, mask,
               !touched[static_cast<std::size_t>(out_idx)]});
          touched[static_cast<std::size_t>(out_idx)] = true;
        }
      }
    }
  }

  std::vector<PoolStep> steps;
  for (const auto& [tile_yx, contributions] : by_tile) {
    // Chunk contributions into groups of ≤ 4 MAX units.
    for (std::size_t base = 0; base < contributions.size();
         base += kNumMaxUnits) {
      PoolStep step;
      step.in_ty = tile_yx.first;
      step.in_tx = tile_yx.second;
      step.load = (base == 0);
      const std::size_t n =
          std::min<std::size_t>(kNumMaxUnits, contributions.size() - base);
      for (std::size_t k = 0; k < n; ++k) {
        const Contribution& c = contributions[base + k];
        step.op.max_mask[k] = c.mask;
        step.op.out_sel[static_cast<std::size_t>(c.out_idx)] =
            c.first_for_output
                ? static_cast<std::uint8_t>(kSelTake0 + k)
                : static_cast<std::uint8_t>(kSelCombine0 + k);
      }
      steps.push_back(std::move(step));
    }
  }
  if (steps.empty()) {
    // Entire tile is padding / out of logical range: one no-op step so the
    // unit still emits a (zero) output tile.
    steps.push_back(PoolStep{});
  }
  steps.front().first = true;
  steps.back().last = true;
  return steps;
}

std::int64_t count_pool_steps(const PadPoolInstr& instr) {
  std::int64_t total = 0;
  for (int oty = 0; oty < instr.ofm_tiles_y; ++oty)
    for (int otx = 0; otx < instr.ofm_tiles_x; ++otx)
      total += static_cast<std::int64_t>(
          make_pool_steps(instr, oty, otx).size());
  return total;
}

}  // namespace tsca::core
