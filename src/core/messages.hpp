// Messages flowing between the accelerator kernels.
//
// Every edge in the block diagram (Fig. 3) is a FIFO of one of these types:
//
//   controller ─FetchCmd→ data-staging (fetch)  ─WindowBundle→ inject
//   inject ─ConvCmd→ convolution ─ProductMsg→ accumulator ─AccTileMsg→ write
//   controller ─AccCtrl→ accumulator,  controller ─WriteCtrl→ write
//   fetch ─PoolCmd→ pool/pad ─PoolOutMsg→ write
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/datapath.hpp"
#include "core/isa.hpp"
#include "nn/layers.hpp"
#include "pack/lane_stream.hpp"

namespace tsca::core {

// Controller → data-staging: one instruction to execute (or halt).
struct FetchCmd {
  bool halt = false;
  Instruction instr;
};

// Data-staging fetch half → inject half: one (channel, weight-tile) step —
// the four preloaded IFM tiles plus a reference to the packed weight lists
// of the group (shared_ptr keeps the parsed stream alive while bundles are
// in flight across an instruction boundary).
struct WindowBundle {
  Window window{};
  std::shared_ptr<const pack::LaneStream> stream;
  int group_index = 0;  // index into stream->groups
  int active = 0;
  bool empty_marker = false;  // lane owns no channels: end-of-position only
  bool end_tile = false;      // last bundle of this OFM tile position
  bool halt = false;

  const pack::LaneTileGroup& group() const {
    TSCA_CHECK(stream != nullptr && group_index >= 0 &&
               group_index < static_cast<int>(stream->groups.size()));
    return stream->groups[static_cast<std::size_t>(group_index)];
  }
};

// Inject half → convolution unit: one cycle of work — one weight (or bubble)
// per concurrent filter, plus the window on the first command of a step.
struct ConvCmd {
  std::array<std::int8_t, kMaxGroup> w{};
  std::array<std::uint8_t, kMaxGroup> offset{};
  bool load_window = false;
  Window window{};
  bool end_tile = false;
  bool halt = false;
};

// Convolution unit → accumulator g: 16 products for that filter's OFM tile.
struct ProductMsg {
  std::array<std::int32_t, pack::kTileSize> p{};
  bool end_tile = false;
};

// Controller → accumulator: one convolution instruction's worth of work.
struct AccCtrl {
  bool halt = false;
  std::int32_t positions = 0;
  std::int32_t bias = 0;
};

// Accumulator → write unit: a finished OFM tile (full precision).
struct AccTileMsg {
  pack::TileAcc acc{};
};

// Controller → write unit.
struct WriteCtrl {
  bool halt = false;
  bool is_conv = false;
  // Conv: positions tiles arrive from the accumulator; pool/pad: `count`
  // tiles arrive from the pool/pad unit carrying their own addresses.
  std::int32_t positions = 0;
  std::int32_t count = 0;
  bool active = true;  // inactive group slots discard their tiles
  nn::Requant requant;
  std::int32_t ofm_base = 0;
  std::int32_t ofm_tiles_x = 0;
  std::int32_t ofm_tiles_y = 0;
  std::int32_t channel_slot = 0;  // (oc0 + g) / lanes
};

// Data-staging → pool/pad unit: one injected IFM tile and its micro-op.
struct PoolCmd {
  bool halt = false;
  pack::Tile in_tile{};
  PoolPadOp op{};
  bool first = false;      // reset the output-tile register
  bool last = false;       // emit the output tile afterwards
  std::int32_t out_addr = 0;
};

// Pool/pad unit → write unit: a finished (already int8) output tile.
struct PoolOutMsg {
  pack::Tile tile{};
  std::int32_t out_addr = 0;
};

}  // namespace tsca::core
