// Shared datapath arithmetic.
//
// Pure functions implementing the compute fabric of Fig. 4(b) and Fig. 5:
// the offset-steered multiply grid of the convolution unit, the accumulator
// adds, the requantizing write-back, and the MAX/mux network of the
// padding/pooling unit.  Both execution engines (threaded and cycle-accurate)
// call exactly these functions, which is what makes their outputs bit-exact
// by construction.
#pragma once

#include <array>
#include <cstdint>

#include "nn/layers.hpp"
#include "pack/tile.hpp"
#include "util/check.hpp"

namespace tsca::core {

// Four contiguous IFM tiles (Fig. 4(a)): a tile-aligned 8×8 window from which
// a weight with intra-tile offset (oy, ox) selects the 4×4 region at (oy, ox).
struct Window {
  // [0] top-left, [1] top-right, [2] bottom-left, [3] bottom-right.
  std::array<pack::Tile, 4> tiles{};

  std::int8_t at(int y, int x) const {
    TSCA_CHECK(y >= 0 && y < 8 && x >= 0 && x < 8);
    const int quadrant = (y / pack::kTileDim) * 2 + (x / pack::kTileDim);
    return tiles[static_cast<std::size_t>(quadrant)].at(y % pack::kTileDim,
                                                        x % pack::kTileDim);
  }
  bool operator==(const Window&) const = default;
};

// 16 products of one weight applied to the window region selected by its
// intra-tile offset (the multiplexer + multiplier array of Fig. 4(b)).
std::array<std::int32_t, pack::kTileSize> steer_multiply(const Window& window,
                                                         std::int8_t weight,
                                                         int offset);

// Adds 16 products into an accumulator tile.
void accumulate(pack::TileAcc& acc,
                const std::array<std::int32_t, pack::kTileSize>& products);

// Requantizes an accumulator tile into an int8 output tile (rounded shift,
// optional ReLU, saturation to ±127) — the write-to-memory unit's datapath.
pack::Tile requantize_tile(const pack::TileAcc& acc, const nn::Requant& rq);

// ---- padding/pooling unit (Fig. 5) ----------------------------------------

inline constexpr int kNumMaxUnits = 4;

// Output-mux select encodings: take MAX k, running-max with the old value
// (library extension for windows that straddle tiles), or keep.
inline constexpr std::uint8_t kSelTake0 = 0;  // .. kSelTake0+3
inline constexpr std::uint8_t kSelCombine0 = 4;  // .. kSelCombine0+3
inline constexpr std::uint8_t kSelKeep = 8;

// One cycle of the pool/pad unit: masks select which of the 16 injected IFM
// values each MAX unit reduces; out_sel routes MAX outputs (or the old value)
// to each of the 16 OFM tile values.
struct PoolPadOp {
  std::array<std::uint16_t, kNumMaxUnits> max_mask{};  // bit i = value i
  std::array<std::uint8_t, pack::kTileSize> out_sel{};

  PoolPadOp() { out_sel.fill(kSelKeep); }
};

// Applies one op to the output-tile register.
void apply_pool_pad(const PoolPadOp& op, const pack::Tile& in_tile,
                    pack::Tile& out_reg);

}  // namespace tsca::core
