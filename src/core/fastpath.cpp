#include "core/fastpath.hpp"

#include <algorithm>
#include <cstring>

#include "core/poolgen.hpp"
#include "core/simd.hpp"
#include "pack/lane_stream.hpp"
#include "quant/sm8.hpp"

namespace tsca::core {

FastWeightsBuilder::FastWeightsBuilder(int in_channels, int wtiles_y,
                                       int wtiles_x, int out_channels) {
  TSCA_CHECK(in_channels > 0 && wtiles_y > 0 && wtiles_x > 0 &&
             out_channels > 0);
  fw_.channels = in_channels;
  fw_.wtiles_y = wtiles_y;
  fw_.wtiles_x = wtiles_x;
  fw_.out_channels = out_channels;
  buckets_.resize(static_cast<std::size_t>(in_channels) * fw_.wtiles());
}

void FastWeightsBuilder::add_stream(const std::vector<std::uint8_t>& bytes,
                                    int oc0, int active, int lane, int lanes,
                                    bool ternary) {
  TSCA_CHECK(lanes > 0 && lane >= 0 && lane < lanes);
  TSCA_CHECK(active > 0 && oc0 >= 0 && oc0 + active <= fw_.out_channels);
  const int my_channels =
      fw_.channels <= lane ? 0 : (fw_.channels - lane + lanes - 1) / lanes;
  if (my_channels == 0) {
    TSCA_CHECK(bytes.empty(), "stream bytes for a channel-less lane");
    return;
  }
  const pack::LaneStream stream = pack::parse_lane_stream(
      bytes, my_channels, fw_.wtiles(), active, ternary);
  TSCA_CHECK(stream.total_bytes == static_cast<std::int64_t>(bytes.size()),
             "trailing bytes after lane stream");
  for (int ci = 0; ci < my_channels; ++ci) {
    const int c = lane + ci * lanes;
    for (int wt = 0; wt < fw_.wtiles(); ++wt) {
      const pack::LaneTileGroup& group = stream.group(ci, wt);
      auto& bucket = buckets_[static_cast<std::size_t>(c) * fw_.wtiles() + wt];
      for (int g = 0; g < active; ++g) {
        const std::vector<pack::PackedEntry>& list =
            group.lists[static_cast<std::size_t>(g)];
        int prev = -1;
        for (const pack::PackedEntry& e : list) {
          // The fast path walks these lists with no framing to resynchronize
          // on — a corrupt pack must die here, not misread silently.
          TSCA_CHECK(e.offset < pack::kTileSize,
                     "packed offset " << int{e.offset} << " out of tile");
          TSCA_CHECK(static_cast<int>(e.offset) > prev,
                     "packed offsets not sorted");
          prev = e.offset;
          const std::int32_t w = quant::sm8_decode(e.value);
          TSCA_CHECK(w != 0, "zero weight in packed stream");
          bucket.push_back({static_cast<std::uint16_t>(oc0 + g),
                            static_cast<std::int8_t>(w), e.offset});
        }
      }
    }
  }
}

FastConvWeights FastWeightsBuilder::finish() {
  fw_.begin.assign(buckets_.size() + 1, 0);
  std::size_t total = 0;
  for (const auto& b : buckets_) total += b.size();
  fw_.entries.reserve(total);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    auto& bucket = buckets_[i];
    std::sort(bucket.begin(), bucket.end(),
              [](const FastConvWeights::Entry& a,
                 const FastConvWeights::Entry& b) {
                return a.offset != b.offset ? a.offset < b.offset
                                            : a.oc < b.oc;
              });
    fw_.begin[i] = static_cast<std::uint32_t>(fw_.entries.size());
    fw_.entries.insert(fw_.entries.end(), bucket.begin(), bucket.end());
  }
  fw_.begin[buckets_.size()] = static_cast<std::uint32_t>(fw_.entries.size());
  buckets_.clear();
  return std::move(fw_);
}

namespace {

// Copies the four window tiles (Fig. 4(a)) whose top-left tile is
// (ity0, itx0) into a flat 8×8 row-major buffer; out-of-grid tiles are zero.
void load_window(const pack::TiledFm& fm, int c, int ity0, int itx0,
                 std::int8_t* win) {
  for (int t = 0; t < 4; ++t) {
    const int ity = ity0 + t / 2;
    const int itx = itx0 + t % 2;
    const int row0 = (t / 2) * pack::kTileDim;
    const int col0 = (t % 2) * pack::kTileDim;
    if (ity < fm.tiles_y() && itx < fm.tiles_x()) {
      const pack::Tile& tile = fm.tile(c, ity, itx);
      for (int r = 0; r < pack::kTileDim; ++r)
        std::memcpy(win + (row0 + r) * 8 + col0,
                    tile.v.data() + r * pack::kTileDim, pack::kTileDim);
    } else {
      for (int r = 0; r < pack::kTileDim; ++r)
        std::memset(win + (row0 + r) * 8 + col0, 0, pack::kTileDim);
    }
  }
}

}  // namespace

void fast_conv(const pack::TiledFm& input, const FastConvWeights& fw,
               const std::vector<std::int32_t>& bias, const nn::Requant& rq,
               pack::TiledFm& output) {
  TSCA_CHECK(fw.decoded(), "fast conv weights not decoded");
  TSCA_CHECK(input.channels() == fw.channels &&
                 output.channels() == fw.out_channels,
             "fast conv shape mismatch");
  const int oc_count = fw.out_channels;
  std::vector<std::int32_t> bias_of(static_cast<std::size_t>(oc_count));
  for (int oc = 0; oc < oc_count; ++oc)
    bias_of[static_cast<std::size_t>(oc)] =
        oc < static_cast<int>(bias.size())
            ? bias[static_cast<std::size_t>(oc)]
            : 0;
  // One accumulator tile per output channel, reused at every position.
  std::vector<std::int32_t> acc(static_cast<std::size_t>(oc_count) *
                                pack::kTileSize);
  alignas(16) std::int8_t win[64];
  alignas(16) std::int8_t region[pack::kTileSize];

  for (int oty = 0; oty < output.tiles_y(); ++oty) {
    for (int otx = 0; otx < output.tiles_x(); ++otx) {
      for (int oc = 0; oc < oc_count; ++oc)
        std::fill_n(acc.begin() +
                        static_cast<std::ptrdiff_t>(oc) * pack::kTileSize,
                    pack::kTileSize, bias_of[static_cast<std::size_t>(oc)]);
      for (int c = 0; c < fw.channels; ++c) {
        for (int wty = 0; wty < fw.wtiles_y; ++wty) {
          for (int wtx = 0; wtx < fw.wtiles_x; ++wtx) {
            const std::size_t b =
                (static_cast<std::size_t>(c) * fw.wtiles_y + wty) *
                    fw.wtiles_x +
                wtx;
            const std::uint32_t e0 = fw.begin[b];
            const std::uint32_t e1 = fw.begin[b + 1];
            if (e0 == e1) continue;
            load_window(input, c, oty + wty, otx + wtx, win);
            int cached_offset = -1;
            for (std::uint32_t e = e0; e < e1; ++e) {
              const FastConvWeights::Entry& entry = fw.entries[e];
              if (entry.offset != cached_offset) {
                cached_offset = entry.offset;
                const int oy = cached_offset / pack::kTileDim;
                const int ox = cached_offset % pack::kTileDim;
                for (int r = 0; r < pack::kTileDim; ++r)
                  std::memcpy(region + r * pack::kTileDim,
                              win + (oy + r) * 8 + ox, pack::kTileDim);
              }
              simd::mac16(acc.data() + static_cast<std::size_t>(entry.oc) *
                                           pack::kTileSize,
                          region, entry.w);
            }
          }
        }
      }
      for (int oc = 0; oc < oc_count; ++oc)
        simd::requantize16(acc.data() + static_cast<std::size_t>(oc) *
                                            pack::kTileSize,
                           output.tile(oc, oty, otx).v.data(), rq.shift,
                           rq.relu);
    }
  }
}

namespace {

// make_pool_steps output with the MAX-unit masks expanded to byte masks for
// simd::masked_max16; steps are channel-independent, so one expansion per
// output tile serves every channel.
struct FastPoolStep {
  PoolStep step;
  std::array<std::array<std::uint8_t, pack::kTileSize>, kNumMaxUnits> masks;
};

}  // namespace

void fast_pad_pool(const pack::TiledFm& input, const PadPoolInstr& instr,
                   int in_tile_row0, int otile_row0, pack::TiledFm& output) {
  TSCA_CHECK(instr.channels <= input.channels() &&
                 instr.channels <= output.channels(),
             "fast pool channel mismatch");
  TSCA_CHECK(in_tile_row0 + instr.ifm_tiles_y <= input.tiles_y() &&
                 otile_row0 + instr.ofm_tiles_y <= output.tiles_y(),
             "fast pool stripe outside feature map");
  std::vector<FastPoolStep> steps;
  static const pack::Tile kZeroTile{};
  for (int oty = 0; oty < instr.ofm_tiles_y; ++oty) {
    for (int otx = 0; otx < instr.ofm_tiles_x; ++otx) {
      steps.clear();
      for (const PoolStep& st : make_pool_steps(instr, oty, otx)) {
        FastPoolStep fs{st, {}};
        for (int m = 0; m < kNumMaxUnits; ++m)
          for (int i = 0; i < pack::kTileSize; ++i)
            fs.masks[static_cast<std::size_t>(m)]
                    [static_cast<std::size_t>(i)] =
                (st.op.max_mask[static_cast<std::size_t>(m)] >> i) & 1
                    ? 0xff
                    : 0x00;
        steps.push_back(fs);
      }
      for (int c = 0; c < instr.channels; ++c) {
        const pack::Tile* held = &kZeroTile;
        pack::Tile out{};
        for (const FastPoolStep& fs : steps) {
          const PoolStep& st = fs.step;
          if (st.load) {
            held = (st.in_ty >= 0 && st.in_ty < instr.ifm_tiles_y &&
                    st.in_tx >= 0 && st.in_tx < instr.ifm_tiles_x)
                       ? &input.tile(c, in_tile_row0 + st.in_ty, st.in_tx)
                       : &kZeroTile;
          }
          if (st.first) out = pack::Tile{};
          std::array<std::int8_t, kNumMaxUnits> max_out;
          for (int m = 0; m < kNumMaxUnits; ++m)
            max_out[static_cast<std::size_t>(m)] = simd::masked_max16(
                held->v.data(), fs.masks[static_cast<std::size_t>(m)].data());
          for (int i = 0; i < pack::kTileSize; ++i) {
            const std::uint8_t sel = st.op.out_sel[static_cast<std::size_t>(i)];
            if (sel < kSelCombine0) {
              out.v[static_cast<std::size_t>(i)] =
                  max_out[static_cast<std::size_t>(sel)];
            } else if (sel < kSelKeep) {
              out.v[static_cast<std::size_t>(i)] =
                  std::max(out.v[static_cast<std::size_t>(i)],
                           max_out[static_cast<std::size_t>(sel - kSelCombine0)]);
            }
          }
          if (st.last) output.tile(c, otile_row0 + oty, otx) = out;
        }
      }
    }
  }
}

}  // namespace tsca::core
