#include "core/fastpath.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "core/poolgen.hpp"
#include "core/simd.hpp"
#include "pack/lane_stream.hpp"
#include "quant/sm8.hpp"

namespace tsca::core {

FastWeightsBuilder::FastWeightsBuilder(int in_channels, int wtiles_y,
                                       int wtiles_x, int out_channels) {
  TSCA_CHECK(in_channels > 0 && wtiles_y > 0 && wtiles_x > 0 &&
             out_channels > 0);
  fw_.channels = in_channels;
  fw_.wtiles_y = wtiles_y;
  fw_.wtiles_x = wtiles_x;
  fw_.out_channels = out_channels;
  buckets_.resize(static_cast<std::size_t>(in_channels) * fw_.wtiles());
}

void FastWeightsBuilder::add_stream(const std::vector<std::uint8_t>& bytes,
                                    int oc0, int active, int lane, int lanes,
                                    bool ternary) {
  TSCA_CHECK(lanes > 0 && lane >= 0 && lane < lanes);
  TSCA_CHECK(active > 0 && oc0 >= 0 && oc0 + active <= fw_.out_channels);
  const int my_channels =
      fw_.channels <= lane ? 0 : (fw_.channels - lane + lanes - 1) / lanes;
  if (my_channels == 0) {
    TSCA_CHECK(bytes.empty(), "stream bytes for a channel-less lane");
    return;
  }
  const pack::LaneStream stream = pack::parse_lane_stream(
      bytes, my_channels, fw_.wtiles(), active, ternary);
  TSCA_CHECK(stream.total_bytes == static_cast<std::int64_t>(bytes.size()),
             "trailing bytes after lane stream");
  for (int ci = 0; ci < my_channels; ++ci) {
    const int c = lane + ci * lanes;
    for (int wt = 0; wt < fw_.wtiles(); ++wt) {
      const pack::LaneTileGroup& group = stream.group(ci, wt);
      auto& bucket = buckets_[static_cast<std::size_t>(c) * fw_.wtiles() + wt];
      for (int g = 0; g < active; ++g) {
        const std::vector<pack::PackedEntry>& list =
            group.lists[static_cast<std::size_t>(g)];
        int prev = -1;
        for (const pack::PackedEntry& e : list) {
          // The fast path walks these lists with no framing to resynchronize
          // on — a corrupt pack must die here, not misread silently.
          TSCA_CHECK(e.offset < pack::kTileSize,
                     "packed offset " << int{e.offset} << " out of tile");
          TSCA_CHECK(static_cast<int>(e.offset) > prev,
                     "packed offsets not sorted");
          prev = e.offset;
          const std::int32_t w = quant::sm8_decode(e.value);
          TSCA_CHECK(w != 0, "zero weight in packed stream");
          bucket.push_back({.row = static_cast<std::uint16_t>(oc0 + g),
                            .w = static_cast<std::int8_t>(w),
                            .tag = e.offset});
        }
      }
    }
  }
}

namespace {

// Builds the conv_win quad pack (see FastConvWeights) for a decoded
// single-weight-tile layer: per channel, the bucket's entries regrouped by
// accumulator row (rows ascending, taps in offset order within a row) and
// cut into quads of ≤ 4.  Deterministic: derived from the sorted entries.
void build_vnni_pack(FastConvWeights& fw) {
  fw.vnni_begin.assign(static_cast<std::size_t>(fw.channels) + 1, 0);
  std::vector<std::vector<FastConvWeights::Entry>> rows(
      static_cast<std::size_t>(fw.out_channels));
  for (int c = 0; c < fw.channels; ++c) {
    for (auto& r : rows) r.clear();
    for (std::uint32_t e = fw.begin[static_cast<std::size_t>(c)];
         e < fw.begin[static_cast<std::size_t>(c) + 1]; ++e)
      rows[fw.entries[e].row].push_back(fw.entries[e]);
    for (const std::vector<FastConvWeights::Entry>& taps : rows) {
      for (std::size_t t0 = 0; t0 < taps.size(); t0 += 4) {
        std::uint32_t wq = 0;
        std::int32_t corr = 0;
        std::uint8_t idx[64] = {};
        for (std::size_t j = 0; j + t0 < taps.size() && j < 4; ++j) {
          const FastConvWeights::Entry& e = taps[t0 + j];
          wq |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(e.w))
                << (8 * j);
          corr += 128 * e.w;
          const int oy = e.tag / pack::kTileDim;
          const int ox = e.tag % pack::kTileDim;
          for (int p = 0; p < pack::kTileSize; ++p)
            idx[4 * p + j] = static_cast<std::uint8_t>(
                (oy + p / pack::kTileDim) * 8 + ox + p % pack::kTileDim);
        }
        fw.vnni_idx.insert(fw.vnni_idx.end(), idx, idx + 64);
        fw.vnni_w.push_back(wq);
        fw.vnni_corr.push_back(corr);
        fw.vnni_row.push_back(taps[t0].row);
      }
    }
    fw.vnni_begin[static_cast<std::size_t>(c) + 1] =
        static_cast<std::uint32_t>(fw.vnni_w.size());
  }
}

}  // namespace

FastConvWeights FastWeightsBuilder::finish() {
  fw_.begin.assign(buckets_.size() + 1, 0);
  std::size_t total = 0;
  for (const auto& b : buckets_) total += b.size();
  fw_.entries.reserve(total);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    auto& bucket = buckets_[i];
    std::sort(bucket.begin(), bucket.end(),
              [](const FastConvWeights::Entry& a,
                 const FastConvWeights::Entry& b) {
                return a.tag != b.tag ? a.tag < b.tag : a.row < b.row;
              });
    fw_.begin[i] = static_cast<std::uint32_t>(fw_.entries.size());
    fw_.entries.insert(fw_.entries.end(), bucket.begin(), bucket.end());
  }
  fw_.begin[buckets_.size()] = static_cast<std::uint32_t>(fw_.entries.size());
  if (fw_.wtiles_y == 1 && fw_.wtiles_x == 1) build_vnni_pack(fw_);
  buckets_.clear();
  return std::move(fw_);
}

namespace {

// Expands the tile rows [row0, row0 + rows) of one channel of a TiledFm into
// a zero-padded row-major pixel plane of `cols` tile columns.  The plane is
// the flat image the per-position window loads used to re-copy out of the
// tile grid over and over; building it once per fast_conv call turns every
// window access into plain pointer arithmetic.  Out-of-grid tiles stay zero
// (the caller value-initializes the buffer), which reproduces the zero
// window tiles of the tiled path exactly.
void expand_plane(const pack::TiledFm& fm, int c, int row0, int rows, int cols,
                  std::int8_t* plane) {
  const int pw = cols * pack::kTileDim;
  const int gcols = std::min(cols, fm.tiles_x());
  for (int ty = 0; ty < rows; ++ty) {
    const int gy = row0 + ty;
    if (gy >= fm.tiles_y()) break;
    for (int tx = 0; tx < gcols; ++tx) {
      const pack::Tile& tile = fm.tile(c, gy, tx);
      std::int8_t* dst =
          plane + static_cast<std::ptrdiff_t>(ty) * pack::kTileDim * pw +
          tx * pack::kTileDim;
      for (int r = 0; r < pack::kTileDim; ++r)
        std::memcpy(dst + r * pw, tile.v.data() + r * pack::kTileDim,
                    pack::kTileDim);
    }
  }
}

// Fused-pad expansion: lays the LOGICAL pixels of one raw channel into the
// plane shifted by (top, left), clipped exactly like the PAD window clip —
// pixels past the logical extents (including a raw tile's own padding bytes)
// never reach the plane, so the result is byte-identical to expanding a
// materialized zero-padded TiledFm.  prow0_px is the plane's first pixel row
// in padded-image coordinates (otile_row0 * kTileDim).
void expand_plane_padded(const pack::TiledFm& fm, int c, int top, int left,
                         int prow0_px, int ph, int pw, std::int8_t* plane) {
  const nn::FmShape s = fm.shape();
  TSCA_CHECK(left >= 0 && left + s.w <= pw, "fused pad outside conv plane");
  for (int y = 0; y < s.h; ++y) {
    const int py = y + top - prow0_px;
    if (py < 0) continue;
    if (py >= ph) break;
    const int ty = y / pack::kTileDim;
    const int r = y % pack::kTileDim;
    std::int8_t* dst = plane + static_cast<std::ptrdiff_t>(py) * pw + left;
    for (int tx = 0; tx * pack::kTileDim < s.w; ++tx) {
      const int nbytes = std::min(pack::kTileDim, s.w - tx * pack::kTileDim);
      std::memcpy(dst + tx * pack::kTileDim,
                  fm.tile(c, ty, tx).v.data() + r * pack::kTileDim,
                  static_cast<std::size_t>(nbytes));
    }
  }
}

// Shift of the raw input inside the conv's input planes; null = inputs are
// already padded and expand whole tiles verbatim.
struct PadSpec {
  int top = 0;
  int left = 0;
};

// Nonzero-byte bitmask of tap `tag`'s 16-value region within an 8×8 window
// mask (bit r*8 + x): masks[i] & kRegionMask[tag] == 0 is exactly conv_run's
// per-image zero probe, reconstructed from conv_win's whole-window mask.
constexpr std::array<std::uint64_t, pack::kTileSize> make_region_masks() {
  std::array<std::uint64_t, pack::kTileSize> m{};
  for (int t = 0; t < pack::kTileSize; ++t)
    for (int r = 0; r < pack::kTileDim; ++r)
      for (int x = 0; x < pack::kTileDim; ++x)
        m[static_cast<std::size_t>(t)] |=
            1ull << ((t / pack::kTileDim + r) * 8 + t % pack::kTileDim + x);
  return m;
}
constexpr std::array<std::uint64_t, pack::kTileSize> kRegionMask =
    make_region_masks();

void fast_conv_impl(const pack::TiledFm* const* inputs, int batch,
                    const FastConvWeights& fw,
                    const std::vector<std::int32_t>& bias,
                    const nn::Requant& rq, pack::TiledFm* const* outputs,
                    int otile_row0, int otile_rows, const PadSpec* pad,
                    FastConvStats* stats, FastScratch* scratch) {
  // Scratch-less callers pay a call-local working set, exactly the old
  // behaviour; scratch owners amortize it to zero.
  FastScratch local;
  FastScratch& sc = scratch != nullptr ? *scratch : local;
  TSCA_CHECK(fw.decoded(), "fast conv weights not decoded");
  TSCA_CHECK(batch > 0, "fast conv empty batch");
  const pack::TiledFm& in0 = *inputs[0];
  const pack::TiledFm& out0 = *outputs[0];
  for (int i = 0; i < batch; ++i) {
    TSCA_CHECK(inputs[i]->channels() == fw.channels &&
                   outputs[i]->channels() == fw.out_channels,
               "fast conv shape mismatch");
    TSCA_CHECK(inputs[i]->tiles_y() == in0.tiles_y() &&
                   inputs[i]->tiles_x() == in0.tiles_x() &&
                   outputs[i]->tiles_y() == out0.tiles_y() &&
                   outputs[i]->tiles_x() == out0.tiles_x(),
               "fast conv ragged batch");
  }
  TSCA_CHECK(otile_row0 >= 0 && otile_rows >= 0 &&
                 otile_row0 + otile_rows <= out0.tiles_y(),
             "fast conv row range outside OFM");
  const int oc_count = fw.out_channels;
  const std::size_t lane_bytes =
      static_cast<std::size_t>(batch) * pack::kTileSize;
  std::vector<std::int32_t>& bias_of = sc.bias_of;
  bias_of.resize(static_cast<std::size_t>(oc_count));
  for (int oc = 0; oc < oc_count; ++oc)
    bias_of[static_cast<std::size_t>(oc)] =
        oc < static_cast<int>(bias.size())
            ? bias[static_cast<std::size_t>(oc)]
            : 0;
  const simd::SimdBackend& be = simd::backend();
  FastConvStats st;
  // Flat zero-padded pixel planes, one per (image, channel), covering every
  // tile row this call's window loads can touch: rows [otile_row0,
  // otile_row0 + otile_rows + wtiles_y) and wtiles_x columns beyond the
  // grid.  Built once up front so the per-position inner loop gathers
  // regions with pure pointer arithmetic instead of re-copying 8×8 windows
  // out of the tile grid at every (position, channel, weight tile).
  const int prows = otile_rows + fw.wtiles_y;
  const int pcols = out0.tiles_x() + fw.wtiles_x;
  const int pw = pcols * pack::kTileDim;
  const std::size_t plane_sz =
      static_cast<std::size_t>(prows) * pack::kTileDim * pw;
  // Channel-major, image-minor: the batch's planes for one channel sit
  // back to back, so a region gather's per-image hops span one plane_sz
  // instead of the whole (channels × images) buffer — the gather's working
  // set per (position, channel) is a few cache lines, not the full batch.
  // assign() re-zeroes reused capacity: out-of-grid plane bytes must read
  // zero on every call, exactly like a freshly value-initialized vector.
  std::vector<std::int8_t>& planes = sc.planes;
  planes.assign(static_cast<std::size_t>(batch) * fw.channels * plane_sz, 0);
  for (int i = 0; i < batch; ++i)
    for (int c = 0; c < fw.channels; ++c) {
      std::int8_t* plane =
          planes.data() +
          (static_cast<std::size_t>(c) * batch + i) * plane_sz;
      if (pad == nullptr)
        expand_plane(*inputs[i], c, otile_row0, prows, pcols, plane);
      else
        expand_plane_padded(*inputs[i], c, pad->top, pad->left,
                            otile_row0 * pack::kTileDim,
                            prows * pack::kTileDim, pw, plane);
    }

  // Batch-major working set, reused at every position: acc is [oc][img][pos]
  // so one conv_run call per region run covers all images.
  const std::ptrdiff_t img_stride = static_cast<std::ptrdiff_t>(plane_sz);
  std::vector<std::int32_t>& acc = sc.acc;
  acc.resize(static_cast<std::size_t>(oc_count) * lane_bytes);
  std::vector<std::int8_t>& rqout = sc.rqout;
  rqout.resize(lane_bytes);

  // Whole-window path: one window load + one permute/dot-accumulate per tap
  // quad replaces a conv_run per offset run.  The per-image window masks
  // reproduce conv_run's per-region zero probes, so the work counters below
  // are bit-equal to the run path's.
  const bool use_win =
      fw.vnni() && be.conv_win != nullptr && simd::conv_win_host_ok();
  std::vector<std::uint64_t>& masks = sc.masks;
  masks.resize(use_win ? static_cast<std::size_t>(batch) : 0);

  for (int oty = otile_row0; oty < otile_row0 + otile_rows; ++oty) {
    for (int otx = 0; otx < out0.tiles_x(); ++otx) {
      for (int oc = 0; oc < oc_count; ++oc)
        std::fill_n(acc.begin() + static_cast<std::ptrdiff_t>(oc) *
                                      static_cast<std::ptrdiff_t>(lane_bytes),
                    lane_bytes, bias_of[static_cast<std::size_t>(oc)]);
      for (int c = 0; c < fw.channels; ++c) {
        // Pixel origin of this position's windows within the channel's
        // image-minor plane block.
        const std::int8_t* plane0 =
            planes.data() + static_cast<std::size_t>(c) * batch * plane_sz;
        const std::ptrdiff_t pos0 =
            static_cast<std::ptrdiff_t>(oty - otile_row0) * pack::kTileDim *
                pw +
            static_cast<std::ptrdiff_t>(otx) * pack::kTileDim;
        if (use_win) {
          const std::uint32_t e0 = fw.begin[static_cast<std::size_t>(c)];
          const std::uint32_t e1 = fw.begin[static_cast<std::size_t>(c) + 1];
          if (e0 == e1) continue;
          const std::uint32_t q0 = fw.vnni_begin[static_cast<std::size_t>(c)];
          const std::uint32_t q1 =
              fw.vnni_begin[static_cast<std::size_t>(c) + 1];
          be.conv_win(acc.data(), lane_bytes,
                      fw.vnni_idx.data() + static_cast<std::size_t>(q0) * 64,
                      fw.vnni_w.data() + q0, fw.vnni_corr.data() + q0,
                      fw.vnni_row.data() + q0, static_cast<int>(q1 - q0),
                      plane0 + pos0, img_stride, pw, batch, masks.data());
          // Same run walk as the conv_run path, counted from the window
          // masks instead of re-gathered regions.
          std::uint32_t e = e0;
          while (e < e1) {
            const std::uint8_t off = fw.entries[e].tag;
            std::uint32_t re = e + 1;
            while (re < e1 && fw.entries[re].tag == off) ++re;
            const std::uint64_t run = re - e;
            const std::uint64_t rm = kRegionMask[off];
            int nz_images = 0;
            for (int i = 0; i < batch; ++i)
              nz_images += (masks[static_cast<std::size_t>(i)] & rm) != 0;
            ++st.regions;
            if (nz_images == 0) {
              ++st.regions_zero;
              st.mac_tiles_skipped += run;
            } else {
              st.mac_tiles += run;
            }
            e = re;
          }
          continue;
        }
        for (int wty = 0; wty < fw.wtiles_y; ++wty) {
          for (int wtx = 0; wtx < fw.wtiles_x; ++wtx) {
            const std::size_t b =
                (static_cast<std::size_t>(c) * fw.wtiles_y + wty) *
                    fw.wtiles_x +
                wtx;
            const std::uint32_t e0 = fw.begin[b];
            const std::uint32_t e1 = fw.begin[b + 1];
            if (e0 == e1) continue;
            const std::ptrdiff_t wbase =
                pos0 + static_cast<std::ptrdiff_t>(wty) * pack::kTileDim * pw +
                static_cast<std::ptrdiff_t>(wtx) * pack::kTileDim;
            // Entries are (offset, oc)-sorted: each distinct offset is a
            // contiguous run sharing one gathered region, executed as a
            // single backend conv_run call (gather + zero probe + MACs
            // fused, one dispatch per run).
            std::uint32_t e = e0;
            while (e < e1) {
              const std::uint8_t off = fw.entries[e].tag;
              std::uint32_t re = e + 1;
              while (re < e1 && fw.entries[re].tag == off) ++re;
              const std::uint64_t run = re - e;
              const int oy = off / pack::kTileDim;
              const int ox = off % pack::kTileDim;
              const std::ptrdiff_t src0 =
                  wbase + static_cast<std::ptrdiff_t>(oy) * pw + ox;
              ++st.regions;
              // The backend gathers the region straight from the planes,
              // probes it for zero per image (acc += 0 * w is a no-op, so
              // skipping a zero image is exact) and applies the run; a
              // region zero across every image elides the runs entirely.
              const int nz_images = be.conv_run(
                  acc.data(), lane_bytes, &fw.entries[e],
                  static_cast<int>(run), plane0 + src0, img_stride, pw, batch);
              if (nz_images == 0) {
                ++st.regions_zero;
                st.mac_tiles_skipped += run;
              } else {
                st.mac_tiles += run;
              }
              e = re;
            }
          }
        }
      }
      for (int oc = 0; oc < oc_count; ++oc) {
        be.requantize(
            acc.data() + static_cast<std::size_t>(oc) * lane_bytes,
            rqout.data(), rq.shift, rq.relu, batch);
        for (int i = 0; i < batch; ++i)
          std::memcpy(outputs[i]->tile(oc, oty, otx).v.data(),
                      rqout.data() +
                          static_cast<std::ptrdiff_t>(i) * pack::kTileSize,
                      pack::kTileSize);
      }
    }
  }
  if (stats != nullptr) *stats += st;
}

}  // namespace

void FastScratch::reserve_conv(int batch, int channels, int out_channels,
                               int prows, int pcols) {
  TSCA_CHECK(batch > 0 && channels > 0 && out_channels > 0 && prows > 0 &&
             pcols > 0);
  const std::size_t lane_bytes =
      static_cast<std::size_t>(batch) * pack::kTileSize;
  const std::size_t plane_sz = static_cast<std::size_t>(prows) *
                               pack::kTileDim * pcols * pack::kTileDim;
  bias_of.reserve(static_cast<std::size_t>(out_channels));
  planes.reserve(static_cast<std::size_t>(batch) * channels * plane_sz);
  acc.reserve(static_cast<std::size_t>(out_channels) * lane_bytes);
  rqout.reserve(lane_bytes);
  masks.reserve(static_cast<std::size_t>(batch));
}

std::size_t FastScratch::capacity_bytes() const {
  return bias_of.capacity() * sizeof(std::int32_t) + planes.capacity() +
         acc.capacity() * sizeof(std::int32_t) + rqout.capacity() +
         masks.capacity() * sizeof(std::uint64_t);
}

void fast_conv(const pack::TiledFm* const* inputs, int batch,
               const FastConvWeights& fw, const std::vector<std::int32_t>& bias,
               const nn::Requant& rq, pack::TiledFm* const* outputs,
               int otile_row0, int otile_rows, FastConvStats* stats,
               FastScratch* scratch) {
  fast_conv_impl(inputs, batch, fw, bias, rq, outputs, otile_row0, otile_rows,
                 nullptr, stats, scratch);
}

void fast_conv_padded(const pack::TiledFm* const* inputs, int batch,
                      const FastConvWeights& fw,
                      const std::vector<std::int32_t>& bias,
                      const nn::Requant& rq, int pad_top, int pad_left,
                      pack::TiledFm* const* outputs, int otile_row0,
                      int otile_rows, FastConvStats* stats,
                      FastScratch* scratch) {
  const PadSpec pad{pad_top, pad_left};
  fast_conv_impl(inputs, batch, fw, bias, rq, outputs, otile_row0, otile_rows,
                 &pad, stats, scratch);
}

void fast_conv(const pack::TiledFm& input, const FastConvWeights& fw,
               const std::vector<std::int32_t>& bias, const nn::Requant& rq,
               pack::TiledFm& output, FastConvStats* stats) {
  const pack::TiledFm* in = &input;
  pack::TiledFm* out = &output;
  fast_conv(&in, 1, fw, bias, rq, &out, 0, output.tiles_y(), stats);
}

FastPoolPlan make_fast_pool_plan(const PadPoolInstr& instr) {
  FastPoolPlan plan;
  plan.channels = instr.channels;
  plan.ifm_tiles_y = instr.ifm_tiles_y;
  plan.ifm_tiles_x = instr.ifm_tiles_x;
  plan.ofm_tiles_y = instr.ofm_tiles_y;
  plan.ofm_tiles_x = instr.ofm_tiles_x;
  plan.begin.reserve(
      static_cast<std::size_t>(instr.ofm_tiles_y) * instr.ofm_tiles_x + 1);
  for (int oty = 0; oty < instr.ofm_tiles_y; ++oty) {
    for (int otx = 0; otx < instr.ofm_tiles_x; ++otx) {
      plan.begin.push_back(static_cast<std::uint32_t>(plan.steps.size()));
      for (const PoolStep& st : make_pool_steps(instr, oty, otx)) {
        FastPoolPlan::Step fs;
        fs.in_ty = static_cast<std::int16_t>(st.in_ty);
        fs.in_tx = static_cast<std::int16_t>(st.in_tx);
        fs.load = st.load;
        fs.first = st.first;
        fs.last = st.last;
        for (int m = 0; m < kNumMaxUnits; ++m)
          for (int i = 0; i < pack::kTileSize; ++i)
            fs.ctl.max_mask[m][i] =
                (st.op.max_mask[static_cast<std::size_t>(m)] >> i) & 1 ? 0xff
                                                                       : 0x00;
        for (int i = 0; i < pack::kTileSize; ++i) {
          const std::uint8_t sel = st.op.out_sel[static_cast<std::size_t>(i)];
          fs.ctl.unit4[i] =
              sel < kSelKeep ? static_cast<std::uint8_t>((sel & 3) * 4) : 0;
          fs.ctl.take[i] = sel < kSelCombine0 ? 0xff : 0x00;
          fs.ctl.comb[i] =
              sel >= kSelCombine0 && sel < kSelKeep ? 0xff : 0x00;
        }
        plan.steps.push_back(fs);
      }
    }
  }
  plan.begin.push_back(static_cast<std::uint32_t>(plan.steps.size()));
  return plan;
}

void fast_pad_pool(const pack::TiledFm& input, const FastPoolPlan& plan,
                   int in_tile_row0, int otile_row0, pack::TiledFm& output) {
  TSCA_CHECK(plan.decoded(), "fast pool plan not decoded");
  TSCA_CHECK(plan.channels <= input.channels() &&
                 plan.channels <= output.channels(),
             "fast pool channel mismatch");
  TSCA_CHECK(in_tile_row0 + plan.ifm_tiles_y <= input.tiles_y() &&
                 otile_row0 + plan.ofm_tiles_y <= output.tiles_y(),
             "fast pool stripe outside feature map");
  const simd::SimdBackend& be = simd::backend();
  static const pack::Tile kZeroTile{};
  std::size_t p = 0;
  for (int oty = 0; oty < plan.ofm_tiles_y; ++oty) {
    for (int otx = 0; otx < plan.ofm_tiles_x; ++otx, ++p) {
      const std::uint32_t s0 = plan.begin[p];
      const std::uint32_t s1 = plan.begin[p + 1];
      for (int c = 0; c < plan.channels; ++c) {
        const pack::Tile* held = &kZeroTile;
        pack::Tile out{};
        for (std::uint32_t s = s0; s < s1; ++s) {
          const FastPoolPlan::Step& fs = plan.steps[s];
          if (fs.load) {
            held = (fs.in_ty >= 0 && fs.in_ty < plan.ifm_tiles_y &&
                    fs.in_tx >= 0 && fs.in_tx < plan.ifm_tiles_x)
                       ? &input.tile(c, in_tile_row0 + fs.in_ty, fs.in_tx)
                       : &kZeroTile;
          }
          if (fs.first) out = pack::Tile{};
          be.pool_step(held->v.data(), fs.ctl, out.v.data());
          if (fs.last) output.tile(c, otile_row0 + oty, otx) = out;
        }
      }
    }
  }
}

void fast_pad_pool(const pack::TiledFm& input, const PadPoolInstr& instr,
                   int in_tile_row0, int otile_row0, pack::TiledFm& output) {
  fast_pad_pool(input, make_fast_pool_plan(instr), in_tile_row0, otile_row0,
                output);
}

void fast_eltwise_add(const pack::TiledFm& lhs, const pack::TiledFm& rhs,
                      const nn::EltwiseQ& q, pack::TiledFm& out) {
  TSCA_CHECK(lhs.shape() == rhs.shape(), "eltwise operand shape mismatch");
  if (!(out.shape() == lhs.shape())) out = pack::TiledFm(lhs.shape());
  const std::vector<pack::Tile>& a = lhs.tiles();
  const std::vector<pack::Tile>& b = rhs.tiles();
  std::vector<pack::Tile>& o = out.tiles();
  for (std::size_t t = 0; t < a.size(); ++t)
    for (std::size_t k = 0; k < static_cast<std::size_t>(pack::kTileSize); ++k)
      o[t].v[k] = nn::eltwise_add_q(a[t].v[k], b[t].v[k], q);
}

}  // namespace tsca::core
