#include "core/kernels.hpp"

#include <algorithm>
#include <memory>

#include "core/poolgen.hpp"
#include "pack/lane_stream.hpp"
#include "quant/sm8.hpp"

namespace tsca::core {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

void bump(std::atomic<std::int64_t>& counter, std::int64_t n = 1) {
  counter.fetch_add(n, kRelaxed);
}

}  // namespace

int lane_channel_count(int channels, int lane, int lanes) {
  TSCA_CHECK(channels >= 0 && lane >= 0 && lane < lanes);
  if (channels <= lane) return 0;
  return (channels - lane + lanes - 1) / lanes;
}

// ---------------------------------------------------------------------------
// Controller: decodes host instructions and dispatches per-unit work.
// ---------------------------------------------------------------------------
hls::Kernel controller_kernel(ControllerCtx ctx) {
  hls::Domain& d = *ctx.shared.domain;
  const ArchConfig& cfg = *ctx.shared.cfg;
  Counters& ctr = *ctx.shared.counters;
  for (;;) {
    const Instruction instr = co_await ctx.host_q->pop();
    co_await hls::clk(d);
    if (instr.op == Opcode::kHalt) {
      FetchCmd halt;
      halt.halt = true;
      for (auto* fifo : ctx.fetch_cmd) {
        co_await fifo->push(halt);
        co_await hls::clk(d);
      }
      for (auto* fifo : ctx.acc_ctrl) {
        co_await fifo->push(AccCtrl{.halt = true});
        co_await hls::clk(d);
      }
      for (auto* fifo : ctx.write_ctrl) {
        WriteCtrl halt_ctrl;
        halt_ctrl.halt = true;
        co_await fifo->push(halt_ctrl);
        co_await hls::clk(d);
      }
      break;
    }

    FetchCmd cmd;
    cmd.instr = instr;
    for (auto* fifo : ctx.fetch_cmd) {
      co_await fifo->push(cmd);
      co_await hls::clk(d);
    }

    if (instr.op == Opcode::kConv) {
      bump(ctr.conv_instrs);
      const ConvInstr& c = instr.conv;
      for (int g = 0; g < cfg.group; ++g) {
        AccCtrl a;
        a.positions = c.positions();
        a.bias = (g < c.active_filters)
                     ? c.bias[static_cast<std::size_t>(g)]
                     : 0;
        co_await ctx.acc_ctrl[static_cast<std::size_t>(g)]->push(a);
        co_await hls::clk(d);
      }
      for (int lane = 0; lane < cfg.lanes; ++lane) {
        // Group slot g maps to write unit/bank (oc0 + g) % lanes == g
        // (oc0 is a multiple of group and group == lanes).
        WriteCtrl w;
        w.is_conv = true;
        w.positions = c.positions();
        w.active = lane < c.active_filters;
        w.requant = nn::Requant{.shift = static_cast<int>(c.shift),
                                .relu = c.relu};
        w.ofm_base = c.ofm_base;
        w.ofm_tiles_x = c.ofm_tiles_x;
        w.ofm_tiles_y = c.ofm_tiles_y;
        w.channel_slot = (c.oc0 + lane) / cfg.lanes;
        co_await ctx.write_ctrl[static_cast<std::size_t>(lane)]->push(w);
        co_await hls::clk(d);
      }
    } else {
      bump(instr.op == Opcode::kPad ? ctr.pad_instrs : ctr.pool_instrs);
      const PadPoolInstr& p = instr.pp;
      for (int lane = 0; lane < cfg.lanes; ++lane) {
        WriteCtrl w;
        w.is_conv = false;
        w.count = lane_channel_count(p.channels, lane, cfg.lanes) *
                  p.ofm_tiles_x * p.ofm_tiles_y;
        co_await ctx.write_ctrl[static_cast<std::size_t>(lane)]->push(w);
        co_await hls::clk(d);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Data-staging, memory half: streams packed weights and IFM tile windows
// through the bank read port.
// ---------------------------------------------------------------------------
namespace {

// Lazy byte cursor over consecutive bank words.
struct BankCursor {
  sim::SramBank& bank;
  int addr;
  sim::Word current{};
  int index = sim::kWordBytes;

  std::uint8_t next() {
    if (index == sim::kWordBytes) {
      current = bank.read_word(addr++);
      index = 0;
    }
    return current.b[static_cast<std::size_t>(index++)];
  }
};

}  // namespace

hls::Kernel fetch_kernel(FetchCtx ctx) {
  hls::Domain& d = *ctx.shared.domain;
  const ArchConfig& cfg = *ctx.shared.cfg;
  Counters& ctr = *ctx.shared.counters;
  sim::SramBank& bank = *ctx.bank;

  for (;;) {
    const FetchCmd cmd = co_await ctx.cmd_in->pop();
    co_await hls::clk(d);
    if (cmd.halt) {
      WindowBundle halt;
      halt.halt = true;
      co_await ctx.bundle_out->push(halt);
      PoolCmd pool_halt;
      pool_halt.halt = true;
      co_await ctx.pool_out->push(pool_halt);
      break;
    }

    if (cmd.instr.op == Opcode::kConv) {
      const ConvInstr& c = cmd.instr.conv;
      const int my_channels =
          lane_channel_count(c.ifm_channels, ctx.lane, cfg.lanes);
      const int wtiles_x = c.wtiles_x();
      const int wtiles = c.wtiles_y() * wtiles_x;

      // Parse this lane's packed stream (offline-packed, §III-B); reading is
      // functional here, the port cost is charged below.
      auto stream = std::make_shared<pack::LaneStream>();
      if (my_channels > 0) {
        BankCursor cursor{bank, c.weight_base};
        *stream = pack::parse_lane_stream_from(
            [&cursor] { return cursor.next(); }, my_channels, wtiles,
            c.active_filters, c.ternary_weights);
      }

      // Scratchpad preload: the DMA'd packed stream is staged into the
      // weight scratchpad once per instruction.
      const std::int64_t preload_words =
          std::min<std::int64_t>(stream->total_words(),
                                 cfg.weight_scratch_words);
      for (std::int64_t w = 0; w < preload_words; ++w) {
        co_await bank.read_port().grant();
        bump(ctr.weight_word_reads);
        co_await hls::clk(d);
      }
      const std::int64_t scratch_bytes =
          static_cast<std::int64_t>(cfg.weight_scratch_words) *
          sim::kWordBytes;

      // Count compute steps per position (for end-of-tile marking).
      int total_steps = 0;
      for (int ci = 0; ci < my_channels; ++ci)
        for (int wt = 0; wt < wtiles; ++wt)
          if (!cfg.skip_empty_tile_groups ||
              stream->group(ci, wt).total_nnz(c.active_filters) > 0)
            ++total_steps;

      for (int oty = 0; oty < c.ofm_tiles_y; ++oty) {
        for (int otx = 0; otx < c.ofm_tiles_x; ++otx) {
          int step = 0;
          for (int ci = 0; ci < my_channels; ++ci) {
            for (int wt = 0; wt < wtiles; ++wt) {
              const pack::LaneTileGroup& group = stream->group(ci, wt);
              if (cfg.skip_empty_tile_groups &&
                  group.total_nnz(c.active_filters) == 0)
                continue;
              ++step;
              const int wty = wt / wtiles_x;
              const int wtx = wt % wtiles_x;

              WindowBundle bundle;
              bundle.stream = stream;
              bundle.group_index = ci * wtiles + wt;
              bundle.active = c.active_filters;
              bundle.end_tile = step == total_steps;

              // Preload the four contiguous IFM tiles (Fig. 4(a)): one tile
              // per cycle through port A; out-of-grid tiles read as zero.
              for (int t = 0; t < 4; ++t) {
                const int ity = oty + wty + t / 2;
                const int itx = otx + wtx + t % 2;
                pack::Tile tile{};
                if (ity < c.ifm_tiles_y && itx < c.ifm_tiles_x) {
                  co_await bank.read_port().grant();
                  tile = bank.read_tile(
                      c.ifm_base +
                      (ci * c.ifm_tiles_y + ity) * c.ifm_tiles_x + itx);
                  bump(ctr.ifm_tile_reads);
                }
                bundle.window.tiles[static_cast<std::size_t>(t)] = tile;
                co_await hls::clk(d);
              }

              // Weight bytes that spilled past the scratchpad must be
              // re-fetched through the same port at every position — the
              // deep-layer "unpacking overhead".
              const std::int64_t spill_begin =
                  std::max(group.byte_begin, scratch_bytes);
              const std::int64_t spill_bytes =
                  std::max<std::int64_t>(0, group.byte_end - spill_begin);
              const std::int64_t spill_words =
                  (spill_bytes + sim::kWordBytes - 1) / sim::kWordBytes;
              for (std::int64_t w = 0; w < spill_words; ++w) {
                co_await bank.read_port().grant();
                bump(ctr.weight_word_reads);
                bump(ctr.weight_spill_reads);
                co_await hls::clk(d);
              }

              co_await ctx.bundle_out->push(bundle);
            }
          }
          if (total_steps == 0) {
            WindowBundle marker;
            marker.empty_marker = true;
            marker.end_tile = true;
            marker.active = c.active_filters;
            co_await ctx.bundle_out->push(marker);
            co_await hls::clk(d);
          }
          if (ctx.position_barrier != nullptr)
            co_await ctx.position_barrier->arrive_and_wait();
          if (ctx.lane == 0) bump(ctr.positions);
        }
      }
    } else {
      // PAD / POOL: generate (IFM tile, micro-op) streams for the Fig. 5
      // unit, one micro-op per cycle.
      const PadPoolInstr& p = cmd.instr.pp;
      const int my_channels =
          lane_channel_count(p.channels, ctx.lane, cfg.lanes);
      pack::Tile held{};  // the unit's input register (mirrored here)
      for (int ci = 0; ci < my_channels; ++ci) {
        for (int oty = 0; oty < p.ofm_tiles_y; ++oty) {
          for (int otx = 0; otx < p.ofm_tiles_x; ++otx) {
            const int out_addr =
                p.ofm_base + (ci * p.ofm_tiles_y + oty) * p.ofm_tiles_x + otx;
            const std::vector<PoolStep> steps =
                make_pool_steps(p, oty, otx);
            for (const PoolStep& st : steps) {
              PoolCmd pc;
              pc.op = st.op;
              pc.first = st.first;
              pc.last = st.last;
              pc.out_addr = out_addr;
              if (st.load) {
                if (st.in_ty >= 0 && st.in_ty < p.ifm_tiles_y &&
                    st.in_tx >= 0 && st.in_tx < p.ifm_tiles_x) {
                  co_await bank.read_port().grant();
                  held = bank.read_tile(
                      p.ifm_base +
                      (ci * p.ifm_tiles_y + st.in_ty) * p.ifm_tiles_x +
                      st.in_tx);
                  bump(ctr.ifm_tile_reads);
                } else {
                  held = pack::Tile{};
                }
              }
              pc.in_tile = held;
              co_await ctx.pool_out->push(pc);
              co_await hls::clk(d);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Data-staging, inject half: one non-zero weight per filter per cycle.
// ---------------------------------------------------------------------------
hls::Kernel inject_kernel(InjectCtx ctx) {
  hls::Domain& d = *ctx.shared.domain;
  Counters& ctr = *ctx.shared.counters;
  for (;;) {
    const WindowBundle bundle = co_await ctx.bundle_in->pop();
    if (bundle.halt) {
      ConvCmd halt;
      halt.halt = true;
      co_await ctx.conv_out->push(halt);
      break;
    }
    if (bundle.empty_marker) {
      ConvCmd cmd;
      cmd.end_tile = true;
      bump(ctr.weight_cmds);
      bump(ctr.weight_bubbles, bundle.active);
      co_await ctx.conv_out->push(cmd);
      co_await hls::clk(d);
      continue;
    }
    const pack::LaneTileGroup& group = bundle.group();
    const int n = std::max(1, group.max_nnz(bundle.active));
    for (int k = 0; k < n; ++k) {
      ConvCmd cmd;
      if (k == 0) {
        cmd.load_window = true;
        cmd.window = bundle.window;
      }
      int bubbles = 0;
      for (int g = 0; g < bundle.active; ++g) {
        const auto& list = group.lists[static_cast<std::size_t>(g)];
        if (k < static_cast<int>(list.size())) {
          const pack::PackedEntry& entry = list[static_cast<std::size_t>(k)];
          cmd.w[static_cast<std::size_t>(g)] = static_cast<std::int8_t>(
              quant::sm8_decode(entry.value));
          cmd.offset[static_cast<std::size_t>(g)] = entry.offset;
        } else {
          ++bubbles;
        }
      }
      cmd.end_tile = bundle.end_tile && k == n - 1;
      bump(ctr.weight_cmds);
      bump(ctr.weight_bubbles, bubbles);
      co_await ctx.conv_out->push(cmd);
      co_await hls::clk(d);
    }
  }
}

// ---------------------------------------------------------------------------
// Convolution unit: 4 weights × 16 IFM values per cycle (Fig. 4(b)).
// ---------------------------------------------------------------------------
hls::Kernel conv_kernel(ConvCtx ctx) {
  hls::Domain& d = *ctx.shared.domain;
  const ArchConfig& cfg = *ctx.shared.cfg;
  Counters& ctr = *ctx.shared.counters;
  Window window{};
  for (;;) {
    const ConvCmd cmd = co_await ctx.cmd_in->pop();
    if (cmd.halt) break;
    if (cmd.load_window) window = cmd.window;
    int performed = 0;
    for (int g = 0; g < cfg.group; ++g) {
      ProductMsg msg;
      msg.end_tile = cmd.end_tile;
      msg.p = steer_multiply(window, cmd.w[static_cast<std::size_t>(g)],
                             cmd.offset[static_cast<std::size_t>(g)]);
      if (cmd.w[static_cast<std::size_t>(g)] != 0) ++performed;
      co_await ctx.product_out[static_cast<std::size_t>(g)]->push(msg);
    }
    bump(ctr.macs_performed, static_cast<std::int64_t>(performed) *
                                 pack::kTileSize);
    co_await hls::clk(d);
  }
}

// ---------------------------------------------------------------------------
// Accumulator unit: owns one OFM tile, output stationary, full precision.
// ---------------------------------------------------------------------------
hls::Kernel accum_kernel(AccumCtx ctx) {
  hls::Domain& d = *ctx.shared.domain;
  const int lanes = static_cast<int>(ctx.product_in.size());
  for (;;) {
    const AccCtrl ctrl = co_await ctx.ctrl_in->pop();
    if (ctrl.halt) break;
    for (std::int32_t p = 0; p < ctrl.positions; ++p) {
      pack::TileAcc acc;
      acc.v.fill(ctrl.bias);
      std::array<bool, kMaxLanes> lane_done{};
      int done = 0;
      // Merge product streams: up to one message per lane per cycle.  A lane
      // already past its end-of-tile marker is not polled, so products of
      // the next position wait in its FIFO (this, plus the position barrier
      // in the staging units, is the synchronization of §III-B.1).
      while (done < lanes) {
        for (int lane = 0; lane < lanes; ++lane) {
          if (lane_done[static_cast<std::size_t>(lane)]) continue;
          ProductMsg msg;
          if (ctx.product_in[static_cast<std::size_t>(lane)]->poll(msg)) {
            accumulate(acc, msg.p);
            if (msg.end_tile) {
              lane_done[static_cast<std::size_t>(lane)] = true;
              ++done;
            }
          }
        }
        if (done < lanes) co_await hls::poll_wait(d);
      }
      co_await ctx.tile_out->push(AccTileMsg{acc});
      co_await hls::clk(d);
    }
  }
}

// ---------------------------------------------------------------------------
// Write-to-memory unit: requantize + ReLU + write through port B.
// ---------------------------------------------------------------------------
hls::Kernel write_kernel(WriteCtx ctx) {
  hls::Domain& d = *ctx.shared.domain;
  Counters& ctr = *ctx.shared.counters;
  sim::SramBank& bank = *ctx.bank;
  for (;;) {
    const WriteCtrl ctrl = co_await ctx.ctrl_in->pop();
    if (ctrl.halt) break;
    if (ctrl.is_conv) {
      for (std::int32_t p = 0; p < ctrl.positions; ++p) {
        const AccTileMsg msg = co_await ctx.acc_in->pop();
        if (ctrl.active) {
          const pack::Tile tile = requantize_tile(msg.acc, ctrl.requant);
          const int ty = p / ctrl.ofm_tiles_x;
          const int tx = p % ctrl.ofm_tiles_x;
          const int addr =
              ctrl.ofm_base +
              (ctrl.channel_slot * ctrl.ofm_tiles_y + ty) * ctrl.ofm_tiles_x +
              tx;
          co_await bank.write_port().grant();
          bank.write_tile(addr, tile);
          bump(ctr.ofm_tile_writes);
        }
        co_await hls::clk(d);
      }
    } else {
      for (std::int32_t i = 0; i < ctrl.count; ++i) {
        const PoolOutMsg msg = co_await ctx.pool_in->pop();
        co_await bank.write_port().grant();
        bank.write_tile(msg.out_addr, msg.tile);
        bump(ctr.ofm_tile_writes);
        co_await hls::clk(d);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Padding/pooling unit (Fig. 5): 4 MAX units + 16 output muxes per cycle.
// ---------------------------------------------------------------------------
hls::Kernel pool_pad_kernel(PoolPadCtx ctx) {
  hls::Domain& d = *ctx.shared.domain;
  Counters& ctr = *ctx.shared.counters;
  pack::Tile out_reg{};
  for (;;) {
    const PoolCmd cmd = co_await ctx.cmd_in->pop();
    if (cmd.halt) break;
    if (cmd.first) out_reg = pack::Tile{};
    apply_pool_pad(cmd.op, cmd.in_tile, out_reg);
    bump(ctr.pool_ops);
    if (cmd.last) {
      PoolOutMsg msg;
      msg.tile = out_reg;
      msg.out_addr = cmd.out_addr;
      co_await ctx.out->push(msg);
    }
    co_await hls::clk(d);
  }
}

}  // namespace tsca::core
