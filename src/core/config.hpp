// Accelerator architecture configuration.
//
// One ArchConfig describes one accelerator *instance* (Fig. 3 of the paper):
// `lanes` data-staging/convolution/write/pool-pad units and SRAM banks, and
// `group` concurrently computed OFM tiles (accumulator units).  The paper's
// variants:
//
//   16-unopt   lanes=1 group=1   55 MHz   16 MACs/cycle, no synchronisation
//   256-unopt  lanes=4 group=4   55 MHz   256 MACs/cycle, area-minimal build
//   256-opt    lanes=4 group=4  150 MHz   performance-optimized build
//   512-opt    2 × (lanes=4 group=4) 120 MHz, instances work on separate
//              stripes (scale-out, Section IV-D)
//
// The HLS "constraint changes alone" knobs of the paper appear here as plain
// fields: clock target, FIFO depths, scratchpad size, pipeline options.
#pragma once

#include <string>
#include <vector>

#include "pack/tile.hpp"
#include "util/check.hpp"

namespace tsca::core {

inline constexpr int kMaxGroup = 4;
inline constexpr int kMaxLanes = 4;

struct ArchConfig {
  std::string name = "256-opt";
  int lanes = 4;   // staging/conv/write/pool-pad units and SRAM banks
  int group = 4;   // OFM tiles computed concurrently (accumulator units)
  int instances = 1;  // accelerator instances working on separate stripes

  // Per-bank capacity in 16-byte words.  The paper sizes banks to "maximize
  // bank size given the number of available RAMs" — ~49 % of the SX660's
  // M20K across 4 banks ≈ 512 KiB/bank ≈ 32 K words/bank.
  int bank_words = 32 * 1024;

  // Per-lane packed-weight scratchpad in 16-byte words.  Weight stream bytes
  // beyond this must be re-fetched through the bank read port on every OFM
  // tile position — the "unpacking overhead" that grows for deep layers.
  int weight_scratch_words = 64;  // 1 KiB

  // FIFO depth between kernels (the LEGUP_PTHREAD_FIFO length).
  int fifo_depth = 8;

  // Synchronize lanes with a barrier at every OFM tile position (the paper's
  // pthread barrier).  Off = rely purely on FIFO flow control (ablation).
  bool position_barrier = true;

  // Skip (ic, weight-tile) groups whose four filters are all zero, saving
  // the 4-cycle IFM load floor.  The paper does not do this (its stated
  // upper bound on zero-skip savings is 75 %); implemented as the
  // future-work ablation.
  bool skip_empty_tile_groups = false;

  // Timing/build parameters (do not affect cycle counts, only wall-clock
  // performance and the area/power models).
  double clock_mhz = 150.0;
  bool optimized_build = true;  // retiming/physical synthesis, deeper pipeline

  int macs_per_cycle() const {
    return lanes * group * pack::kTileSize * instances;
  }

  void validate() const {
    TSCA_CHECK(lanes >= 1 && lanes <= kMaxLanes, "lanes=" << lanes);
    TSCA_CHECK(group >= 1 && group <= kMaxGroup, "group=" << group);
    TSCA_CHECK(lanes == group,
               "this architecture pairs accumulators with lanes (paper uses "
               "4/4 and 1/1); lanes="
                   << lanes << " group=" << group);
    TSCA_CHECK(instances >= 1 && instances <= 4);
    TSCA_CHECK(bank_words >= 64, "bank_words=" << bank_words);
    TSCA_CHECK(weight_scratch_words >= 16);
    TSCA_CHECK(fifo_depth >= 2);
    TSCA_CHECK(clock_mhz > 0);
  }

  // --- the paper's four variants ---
  static ArchConfig k16_unopt();
  static ArchConfig k256_unopt();
  static ArchConfig k256_opt();
  static ArchConfig k512_opt();
  static const std::vector<ArchConfig>& paper_variants();
};

}  // namespace tsca::core
