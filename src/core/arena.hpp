// Bump-pointer arena for the warm serving path.
//
// The steady-state contract (DESIGN.md §15) is that a warm request touches
// the system allocator zero times.  Persistent buffers (weight images,
// FastScratch, frame buffers) get there by being owned and reused; the
// *transient* per-batch storage — pointer tables, index lists, survivor
// sets — gets there by drawing from an Arena that each worker resets at
// batch end.  Allocation is a pointer bump; deallocation is a no-op; reset
// rewinds the whole arena in O(1) once it has coalesced to a single block
// sized to its high-water mark.  After the first few batches the arena
// stops calling malloc entirely: reset() keeps the block, and every batch
// replays into the same storage.
//
// Not thread-safe: one Arena per worker, by construction.  High-water and
// block-allocation counts are exposed so tests and metrics can assert the
// steady state was actually reached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace tsca::core {

class Arena {
 public:
  // `initial_bytes` pre-sizes the first block so a well-estimated arena
  // never reallocates at all; 0 defers until first use.
  explicit Arena(std::size_t initial_bytes = 0) {
    if (initial_bytes > 0) add_block(initial_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (a power of two).  Falls over
  // to a fresh block — doubling, and at least the request — when the
  // current block is exhausted.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    TSCA_CHECK(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    if (!blocks_.empty()) {
      Block& b = blocks_.back();
      const std::size_t at = (b.used + align - 1) & ~(align - 1);
      if (at + bytes <= b.size) {
        b.used = at + bytes;
        used_ = used_before_last_ + b.used;
        if (used_ > high_water_) high_water_ = used_;
        return b.data.get() + at;
      }
    }
    std::size_t want = blocks_.empty() ? kMinBlock : blocks_.back().size * 2;
    if (want < bytes + align) want = bytes + align;
    add_block(want);
    return allocate(bytes, align);
  }

  // Rewinds every block and, once the high-water mark is known, coalesces
  // to a single block that can hold it — after which reset is pure pointer
  // arithmetic and the arena never mallocs again.
  void reset() {
    ++resets_;
    if (blocks_.size() > 1 ||
        (!blocks_.empty() && blocks_.front().size < high_water_)) {
      std::size_t want = kMinBlock;
      while (want < high_water_) want *= 2;
      blocks_.clear();
      add_block(want);
    }
    for (Block& b : blocks_) b.used = 0;
    used_ = 0;
    used_before_last_ = 0;
  }

  std::size_t used() const { return used_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t capacity() const {
    std::size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }
  // Times a fresh block was taken from the system allocator; stops growing
  // once the arena reaches steady state.
  std::uint64_t block_allocs() const { return block_allocs_; }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinBlock = 4096;

  void add_block(std::size_t size) {
    used_before_last_ = 0;
    for (const Block& b : blocks_) used_before_last_ += b.used;
    blocks_.push_back(
        Block{std::make_unique<std::uint8_t[]>(size), size, 0});
    ++block_allocs_;
  }

  std::vector<Block> blocks_;
  std::size_t used_ = 0;
  std::size_t used_before_last_ = 0;  // bytes burned in non-tail blocks
  std::size_t high_water_ = 0;
  std::uint64_t block_allocs_ = 0;
  std::uint64_t resets_ = 0;
};

// Minimal std-compatible allocator over an Arena: containers built with it
// grow by bumping the worker's arena and free nothing — the worker's
// per-batch reset() reclaims everything at once.  The container must not
// outlive the arena or survive a reset.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // bump arena: reset() reclaims

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const {
    return arena_ != o.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace tsca::core
