#include "core/accelerator.hpp"

#include <string>

#include "core/kernels.hpp"

namespace tsca::core {

Accelerator::Accelerator(ArchConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  banks_.reserve(static_cast<std::size_t>(cfg_.lanes));
  for (int lane = 0; lane < cfg_.lanes; ++lane)
    banks_.push_back(std::make_unique<sim::SramBank>(
        "bank" + std::to_string(lane), cfg_.bank_words));
}

sim::SramBank& Accelerator::bank(int lane) {
  TSCA_CHECK(lane >= 0 && lane < num_banks(), "bank " << lane);
  return *banks_[static_cast<std::size_t>(lane)];
}

BatchStats Accelerator::run_batch(const std::vector<Instruction>& instructions,
                                  hls::Mode mode, hls::SystemOptions options) {
  for (const Instruction& instr : instructions)
    validate_instruction(instr, cfg_);

  hls::System sys(mode, options);
  for (auto& bank : banks_) bank->bind(sys.scheduler());

  const int lanes = cfg_.lanes;
  const int group = cfg_.group;
  const int depth = cfg_.fifo_depth;

  // FIFOs (the edges of Fig. 3).
  auto& host_q = sys.make_fifo<Instruction>(
      "host_q", static_cast<int>(instructions.size()) + 1);
  std::vector<hls::Fifo<FetchCmd>*> fetch_cmd;
  std::vector<hls::Fifo<WindowBundle>*> bundles;
  std::vector<hls::Fifo<ConvCmd>*> conv_cmds;
  std::vector<hls::Fifo<AccCtrl>*> acc_ctrl;
  std::vector<hls::Fifo<AccTileMsg>*> acc_out;
  std::vector<hls::Fifo<WriteCtrl>*> write_ctrl;
  std::vector<hls::Fifo<PoolCmd>*> pool_cmds;
  std::vector<hls::Fifo<PoolOutMsg>*> pool_out;
  std::vector<std::vector<hls::Fifo<ProductMsg>*>> products(
      static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    const std::string suffix = std::to_string(l);
    fetch_cmd.push_back(&sys.make_fifo<FetchCmd>("fetch_cmd" + suffix, 4));
    bundles.push_back(
        &sys.make_fifo<WindowBundle>("bundles" + suffix, depth));
    conv_cmds.push_back(&sys.make_fifo<ConvCmd>("conv_cmd" + suffix, depth));
    write_ctrl.push_back(&sys.make_fifo<WriteCtrl>("write_ctrl" + suffix, 4));
    pool_cmds.push_back(&sys.make_fifo<PoolCmd>("pool_cmd" + suffix, depth));
    pool_out.push_back(&sys.make_fifo<PoolOutMsg>("pool_out" + suffix, depth));
    for (int g = 0; g < group; ++g)
      products[static_cast<std::size_t>(l)].push_back(
          &sys.make_fifo<ProductMsg>(
              "prod" + suffix + "_" + std::to_string(g), depth));
  }
  for (int g = 0; g < group; ++g) {
    const std::string suffix = std::to_string(g);
    acc_ctrl.push_back(&sys.make_fifo<AccCtrl>("acc_ctrl" + suffix, 4));
    acc_out.push_back(&sys.make_fifo<AccTileMsg>("acc_out" + suffix, 4));
  }
  hls::Barrier* barrier = nullptr;
  if (cfg_.position_barrier && lanes > 1)
    barrier = &sys.make_barrier("position", lanes);

  SharedCtx shared{&sys.domain(), &cfg_, &counters_};

  // Kernels (20 units in the paper's full configuration, plus the
  // controller and the split data-staging halves).
  {
    ControllerCtx ctx;
    ctx.shared = shared;
    ctx.host_q = &host_q;
    ctx.fetch_cmd = fetch_cmd;
    ctx.acc_ctrl = acc_ctrl;
    ctx.write_ctrl = write_ctrl;
    sys.spawn("controller", controller_kernel(std::move(ctx)));
  }
  for (int l = 0; l < lanes; ++l) {
    const std::string suffix = std::to_string(l);
    {
      FetchCtx ctx;
      ctx.shared = shared;
      ctx.lane = l;
      ctx.bank = banks_[static_cast<std::size_t>(l)].get();
      ctx.cmd_in = fetch_cmd[static_cast<std::size_t>(l)];
      ctx.bundle_out = bundles[static_cast<std::size_t>(l)];
      ctx.pool_out = pool_cmds[static_cast<std::size_t>(l)];
      ctx.position_barrier = barrier;
      sys.spawn("fetch" + suffix, fetch_kernel(std::move(ctx)));
    }
    {
      InjectCtx ctx;
      ctx.shared = shared;
      ctx.lane = l;
      ctx.bundle_in = bundles[static_cast<std::size_t>(l)];
      ctx.conv_out = conv_cmds[static_cast<std::size_t>(l)];
      sys.spawn("inject" + suffix, inject_kernel(std::move(ctx)));
    }
    {
      ConvCtx ctx;
      ctx.shared = shared;
      ctx.lane = l;
      ctx.cmd_in = conv_cmds[static_cast<std::size_t>(l)];
      ctx.product_out = products[static_cast<std::size_t>(l)];
      sys.spawn("conv" + suffix, conv_kernel(std::move(ctx)));
    }
    {
      WriteCtx ctx;
      ctx.shared = shared;
      ctx.lane = l;
      ctx.bank = banks_[static_cast<std::size_t>(l)].get();
      ctx.ctrl_in = write_ctrl[static_cast<std::size_t>(l)];
      ctx.acc_in = acc_out[static_cast<std::size_t>(l)];
      ctx.pool_in = pool_out[static_cast<std::size_t>(l)];
      sys.spawn("write" + suffix, write_kernel(std::move(ctx)));
    }
    {
      PoolPadCtx ctx;
      ctx.shared = shared;
      ctx.lane = l;
      ctx.cmd_in = pool_cmds[static_cast<std::size_t>(l)];
      ctx.out = pool_out[static_cast<std::size_t>(l)];
      sys.spawn("poolpad" + suffix, pool_pad_kernel(std::move(ctx)));
    }
  }
  for (int g = 0; g < group; ++g) {
    AccumCtx ctx;
    ctx.shared = shared;
    ctx.slot = g;
    ctx.ctrl_in = acc_ctrl[static_cast<std::size_t>(g)];
    ctx.tile_out = acc_out[static_cast<std::size_t>(g)];
    for (int l = 0; l < lanes; ++l)
      ctx.product_in.push_back(
          products[static_cast<std::size_t>(l)][static_cast<std::size_t>(g)]);
    sys.spawn("accum" + std::to_string(g), accum_kernel(std::move(ctx)));
  }

  // Enqueue the program before starting (the host's instruction window).
  for (const Instruction& instr : instructions) {
    const bool ok = host_q.seed(instr);
    TSCA_CHECK(ok, "host queue overflow");
  }
  {
    const bool ok = host_q.seed(Instruction::halt());
    TSCA_CHECK(ok, "host queue overflow");
  }

  const hls::System::RunResult result = sys.run();

  BatchStats stats;
  stats.cycles = result.cycles;
  stats.kernel_activity = result.activity;
  stats.counters = snapshot(counters_);
  auto add_fifo = [&stats](const hls::FifoStats& fs) {
    stats.fifo_push_stalls += fs.push_stalls;
    stats.fifo_pop_stalls += fs.pop_stalls;
  };
  add_fifo(host_q.stats());
  for (int l = 0; l < lanes; ++l) {
    add_fifo(fetch_cmd[static_cast<std::size_t>(l)]->stats());
    add_fifo(bundles[static_cast<std::size_t>(l)]->stats());
    add_fifo(conv_cmds[static_cast<std::size_t>(l)]->stats());
    add_fifo(write_ctrl[static_cast<std::size_t>(l)]->stats());
    add_fifo(pool_cmds[static_cast<std::size_t>(l)]->stats());
    add_fifo(pool_out[static_cast<std::size_t>(l)]->stats());
    for (int g = 0; g < group; ++g)
      add_fifo(products[static_cast<std::size_t>(l)]
                       [static_cast<std::size_t>(g)]
                           ->stats());
    stats.port_stalls +=
        banks_[static_cast<std::size_t>(l)]->read_port().stall_cycles();
  }
  for (int g = 0; g < group; ++g) {
    add_fifo(acc_ctrl[static_cast<std::size_t>(g)]->stats());
    add_fifo(acc_out[static_cast<std::size_t>(g)]->stats());
  }
  return stats;
}

}  // namespace tsca::core
