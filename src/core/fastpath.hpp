// Functional fast-path executor (serving mode).
//
// The cycle engine exists to model *time*; callers that only want outputs
// (a serving process, batch scoring) pay for FIFO messages, kernel threads
// and barriers they never look at.  This module evaluates the same packed
// (value, offset) weight streams with the same arithmetic — steered 16-value
// tile MACs, rounded-shift requantization, the pool/pad MAX network — as
// tight fused loops over whole feature maps: no FIFOs, no barrier, no
// per-message allocation.  Outputs are bit-identical to the engines by
// construction (tests/test_engine_equivalence.cpp sweeps all three); cycle
// counts for fast runs come from driver::PerfModel instead (flagged as
// predicted in LayerRun).
//
// The 16-wide tile operations vectorize through core/simd.hpp (SSE/AVX2 with
// a scalar fallback, gated by the TSCA_SIMD CMake option).
#pragma once

#include <cstdint>
#include <vector>

#include "core/isa.hpp"
#include "nn/layers.hpp"
#include "pack/tile.hpp"

namespace tsca::core {

// One conv layer's packed weights decoded into a flat, position-reusable
// form: entries bucketed by (input channel, weight tile), each entry naming
// its output channel, decoded weight and intra-tile offset.  Buckets are
// sorted by (offset, oc) so the steered 16-byte region is extracted once per
// distinct offset; int32 accumulation is commutative, so reordering within a
// bucket cannot change the result.
struct FastConvWeights {
  struct Entry {
    std::uint16_t oc = 0;
    std::int8_t w = 0;
    std::uint8_t offset = 0;  // 0..15, y*4+x within the weight tile
  };

  int channels = 0;  // IFM channels (padded input)
  int wtiles_y = 0;
  int wtiles_x = 0;
  int out_channels = 0;
  std::vector<Entry> entries;
  // Bucket extents: entries of (c, wt) live in
  // [begin[c*wtiles+wt], begin[c*wtiles+wt+1]).  Empty when not decoded.
  std::vector<std::uint32_t> begin;

  int wtiles() const { return wtiles_y * wtiles_x; }
  bool decoded() const { return !begin.empty(); }
};

// Decodes serialized per-lane streams (pack::serialize_lane_stream format)
// into a FastConvWeights.  Feed every (group, lane) stream of the layer, then
// finish().  Each stream is parsed with the validating pack parser and
// additionally TSCA_CHECKed — offsets sorted, < 16, stream fully consumed —
// so a corrupt pack can never be silently misread.
class FastWeightsBuilder {
 public:
  FastWeightsBuilder(int in_channels, int wtiles_y, int wtiles_x,
                     int out_channels);

  // `bytes` is the serialized stream of lane `lane` for output channels
  // [oc0, oc0 + active).
  void add_stream(const std::vector<std::uint8_t>& bytes, int oc0, int active,
                  int lane, int lanes, bool ternary);

  FastConvWeights finish();

 private:
  FastConvWeights fw_;
  std::vector<std::vector<FastConvWeights::Entry>> buckets_;
};

// Convolves `input` (already padded) into `output` — every output channel,
// every tile position, matching the conv unit bit-for-bit: out-of-grid
// window tiles read zero, bias[oc] (0 past the end) seeds the accumulator,
// nn::requantize writes back.  `output` must be sized to the layer's OFM.
void fast_conv(const pack::TiledFm& input, const FastConvWeights& fw,
               const std::vector<std::int32_t>& bias, const nn::Requant& rq,
               pack::TiledFm& output);

// Replays one PAD/POOL instruction functionally.  `instr` is stripe-local
// exactly as built by driver::make_pool_instr; `in_tile_row0` / `otile_row0`
// relocate its tile reads/writes into the global feature maps, so a striped
// plan replayed stripe by stripe reproduces the engine's output bit-for-bit.
void fast_pad_pool(const pack::TiledFm& input, const PadPoolInstr& instr,
                   int in_tile_row0, int otile_row0, pack::TiledFm& output);

}  // namespace tsca::core
