// Functional fast-path executor (serving mode).
//
// The cycle engine exists to model *time*; callers that only want outputs
// (a serving process, batch scoring) pay for FIFO messages, kernel threads
// and barriers they never look at.  This module evaluates the same packed
// (value, offset) weight streams with the same arithmetic — steered 16-value
// tile MACs, rounded-shift requantization, the pool/pad MAX network — as
// tight fused loops over whole feature maps: no FIFOs, no barrier, no
// per-message allocation.  Outputs are bit-identical to the engines by
// construction (tests/test_engine_equivalence.cpp sweeps all three); cycle
// counts for fast runs come from driver::PerfModel instead (flagged as
// predicted in LayerRun).
//
// The tile operations vectorize through the runtime-dispatched backends in
// core/simd.hpp (scalar/SSE2/AVX2/AVX-512, gated by the TSCA_SIMD CMake
// option).  fast_conv is batch-major: it convolves N images at once with the
// weight stream walked a single time, each gathered region holding the same
// 16 positions of all N images back to back ([img][pos], 16·N int8) so one
// backend mac call covers the whole batch.  N = 1 is the plain serving case.
//
// Two levers on top of the layout:
//   - a row range (otile_row0, otile_rows) restricts execution to a band of
//     output tile rows, which is how ConvPlan stripes are fanned out across
//     pool workers — bands write disjoint output tiles, so parallel
//     execution is bit-exact with no reduction order to pin down;
//   - an activation-sparsity probe inside SimdBackend::conv_run tests each
//     gathered region per image and skips every MAC against an all-zero
//     region — the feature-map-side mirror of the paper's weight zero-skip.
//     Regions zero across the whole batch are counted in FastConvStats,
//     never in the PerfModel work counters: the modeled hardware still
//     executes those MACs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/isa.hpp"
#include "core/simd.hpp"
#include "nn/layers.hpp"
#include "pack/tile.hpp"

namespace tsca::core {

// One conv layer's packed weights decoded into a flat, position-reusable
// form: entries bucketed by (input channel, weight tile), each entry naming
// its output channel (`row` — the accumulator row a conv_run scatters into),
// decoded weight and intra-tile offset (`tag`, 0..15 = y*4+x).  Buckets are
// sorted by (offset, oc), so entries sharing a steered 16-byte region form a
// contiguous run handed to SimdBackend::conv_run as-is; int32 accumulation is
// commutative, so reordering within a bucket cannot change the result.
struct FastConvWeights {
  using Entry = simd::MacRunEntry;  // row = output channel, tag = offset

  int channels = 0;  // IFM channels (padded input)
  int wtiles_y = 0;
  int wtiles_x = 0;
  int out_channels = 0;
  std::vector<Entry> entries;
  // Whole-window quad pack, built at decode time for single-weight-tile
  // layers (every 3×3 kernel): per channel, each accumulator row's taps are
  // grouped into quads of ≤ 4 entries for SimdBackend::conv_win.  Per quad q
  // in [vnni_begin[c], vnni_begin[c+1]):
  //   vnni_idx [q*64..)  byte-gather pattern pulling the four taps' 16-value
  //                      regions, interleaved per lane, out of the 8×8 pixel
  //                      window (lane 4p+j reads tap j's region byte p)
  //   vnni_w   [q]       the four int8 weights packed little-endian
  //   vnni_corr[q]       128 * (sum of the four weights) — the exact bias
  //                      removal for the kernel's unsigned-operand form
  //   vnni_row [q]       the accumulator row all four taps scatter into
  // Unused slots of a short quad carry weight 0 (region · 0 adds nothing).
  // Empty when the layer has several weight tiles; conv_run runs those.
  std::vector<std::uint8_t> vnni_idx;
  std::vector<std::uint32_t> vnni_w;
  std::vector<std::int32_t> vnni_corr;
  std::vector<std::uint16_t> vnni_row;
  std::vector<std::uint32_t> vnni_begin;
  // Bucket extents: entries of (c, wt) live in
  // [begin[c*wtiles+wt], begin[c*wtiles+wt+1]).  Empty when not decoded.
  std::vector<std::uint32_t> begin;

  int wtiles() const { return wtiles_y * wtiles_x; }
  bool decoded() const { return !begin.empty(); }
  bool vnni() const { return !vnni_begin.empty(); }
};

// Decodes serialized per-lane streams (pack::serialize_lane_stream format)
// into a FastConvWeights.  Feed every (group, lane) stream of the layer, then
// finish().  Each stream is parsed with the validating pack parser and
// additionally TSCA_CHECKed — offsets sorted, < 16, stream fully consumed —
// so a corrupt pack can never be silently misread.
class FastWeightsBuilder {
 public:
  FastWeightsBuilder(int in_channels, int wtiles_y, int wtiles_x,
                     int out_channels);

  // `bytes` is the serialized stream of lane `lane` for output channels
  // [oc0, oc0 + active).
  void add_stream(const std::vector<std::uint8_t>& bytes, int oc0, int active,
                  int lane, int lanes, bool ternary);

  FastConvWeights finish();

 private:
  FastConvWeights fw_;
  std::vector<std::vector<FastConvWeights::Entry>> buckets_;
};

// Host-execution statistics for one fast_conv call.  These describe what the
// *host* skipped, not what the modeled hardware would do — PerfModel work
// counters are untouched by the activation skip.
struct FastConvStats {
  std::uint64_t regions = 0;          // distinct steered regions gathered
  std::uint64_t regions_zero = 0;     // regions probed all-zero (all images)
  std::uint64_t mac_tiles = 0;        // backend mac tile-group calls issued
  std::uint64_t mac_tiles_skipped = 0;  // elided by the zero-region skip

  FastConvStats& operator+=(const FastConvStats& o) {
    regions += o.regions;
    regions_zero += o.regions_zero;
    mac_tiles += o.mac_tiles;
    mac_tiles_skipped += o.mac_tiles_skipped;
    return *this;
  }
};

// Reusable working set for fast_conv / fast_conv_padded.  One call needs a
// bias table, the flat zero-padded pixel planes, the batch-major accumulator
// block, a requantize staging row and (conv_win path) per-image window
// masks; without a scratch every call allocates all five.  A caller that
// owns a FastScratch and passes it to consecutive calls amortizes those
// allocations to zero once the vectors reach the largest layer's size —
// the warm serving path's per-worker Runtime does exactly that, presized
// via reserve_conv() to the program's maximum layer so even the first warm
// request stays allocation-free.  A scratch must not be shared across
// threads; stripe-parallel callers hold one per worker.
struct FastScratch {
  std::vector<std::int32_t> bias_of;
  std::vector<std::int8_t> planes;
  std::vector<std::int32_t> acc;
  std::vector<std::int8_t> rqout;
  std::vector<std::uint64_t> masks;

  // Grows every vector's capacity to what a conv over `channels` input /
  // `out_channels` output channels with plane geometry (`prows` tile rows ×
  // `pcols` tile columns) over `batch` images will ask for.  Monotonic:
  // never shrinks, so one pass over a program's layers sizes the scratch
  // for all of them.
  void reserve_conv(int batch, int channels, int out_channels, int prows,
                    int pcols);

  // Total capacity in bytes across the five vectors (high-water metric).
  std::size_t capacity_bytes() const;
};

// Convolves `batch` images (already padded) into their outputs — every output
// channel, every tile position in rows [otile_row0, otile_row0 + otile_rows),
// matching the conv unit bit-for-bit: out-of-grid window tiles read zero,
// bias[oc] (0 past the end) seeds the accumulator, nn::requantize writes
// back.  All inputs share one shape, all outputs share one shape sized to
// the layer's OFM.  Per-image results are identical to `batch` separate
// calls (the batch-major layout only changes which values sit in one vector
// register together, never the per-image arithmetic).  `stats`, when
// non-null, is accumulated into (callers sum stripes in index order).
// `scratch`, when non-null, supplies the working set (see FastScratch);
// null falls back to call-local vectors with identical results.
void fast_conv(const pack::TiledFm* const* inputs, int batch,
               const FastConvWeights& fw, const std::vector<std::int32_t>& bias,
               const nn::Requant& rq, pack::TiledFm* const* outputs,
               int otile_row0, int otile_rows, FastConvStats* stats = nullptr,
               FastScratch* scratch = nullptr);

// Single-image, full-height convenience form (the original PR 4 interface).
void fast_conv(const pack::TiledFm& input, const FastConvWeights& fw,
               const std::vector<std::int32_t>& bias, const nn::Requant& rq,
               pack::TiledFm& output, FastConvStats* stats = nullptr);

// Fused-pad form: convolves `batch` UNPADDED images as if each had first been
// zero-padded by `pad_top` rows / `pad_left` columns (the fused PAD batch,
// make_fused_pad_instr's pure shift/copy).  The pad never materializes: the
// raw pixels — clipped to each input's logical extents, exactly like the PAD
// window clip — land shifted inside the conv's zero-initialized input planes,
// which is bit-identical to padding into a TiledFm and convolving that,
// including the FastConvStats (the gathered regions are the same bytes).
void fast_conv_padded(const pack::TiledFm* const* inputs, int batch,
                      const FastConvWeights& fw,
                      const std::vector<std::int32_t>& bias,
                      const nn::Requant& rq, int pad_top, int pad_left,
                      pack::TiledFm* const* outputs, int otile_row0,
                      int otile_rows, FastConvStats* stats = nullptr,
                      FastScratch* scratch = nullptr);

// One PAD/POOL instruction decoded into replayable form: every output tile
// position's micro-op steps generated once (core::make_pool_steps) with the
// MAX-unit masks and output mux expanded into simd::PoolStepCtl blocks.  The
// steps are channel-independent, so a plan decoded at program-compile time
// amortizes all generation and mask-expansion work across every channel,
// image and request that replays the instruction.
struct FastPoolPlan {
  struct Step {
    std::int16_t in_ty = 0;  // input tile coordinates; out-of-grid ⇒ zero
    std::int16_t in_tx = 0;
    bool load = false;   // first step touching this tile: (re)fetch it
    bool first = false;  // reset the output register before applying
    bool last = false;   // emit the output tile afterwards
    simd::PoolStepCtl ctl;
  };

  int channels = 0;
  int ifm_tiles_y = 0;
  int ifm_tiles_x = 0;
  int ofm_tiles_y = 0;
  int ofm_tiles_x = 0;
  std::vector<Step> steps;
  // Steps of output position (oty, otx) live in
  // [begin[oty*ofm_tiles_x + otx], begin[.. + 1]).  Empty when not decoded.
  std::vector<std::uint32_t> begin;

  bool decoded() const { return !begin.empty(); }
};

FastPoolPlan make_fast_pool_plan(const PadPoolInstr& instr);

// Replays one decoded PAD/POOL instruction functionally.  The plan is
// stripe-local exactly like the instruction it was decoded from;
// `in_tile_row0` / `otile_row0` relocate its tile reads/writes into the
// global feature maps, so a striped plan replayed stripe by stripe
// reproduces the engine's output bit-for-bit.
void fast_pad_pool(const pack::TiledFm& input, const FastPoolPlan& plan,
                   int in_tile_row0, int otile_row0, pack::TiledFm& output);

// Convenience form decoding `instr` on the fly (tests, ad-hoc callers).
void fast_pad_pool(const pack::TiledFm& input, const PadPoolInstr& instr,
                   int in_tile_row0, int otile_row0, pack::TiledFm& output);

// Residual skip add over tiled maps: out = requantize(lhs<<a + rhs<<b).
// Shape-identical operands; tile padding stays zero (requantize(0) == 0).
// This is the single eltwise kernel shared by every ExecMode — the operation
// is host-side in all of them, so cycle/thread/fast agreement is structural.
// `out` may alias `lhs` or `rhs` (the combine is element-wise), which is how
// the warm path adds in place without a scratch map.
void fast_eltwise_add(const pack::TiledFm& lhs, const pack::TiledFm& rhs,
                      const nn::EltwiseQ& q, pack::TiledFm& out);

}  // namespace tsca::core
