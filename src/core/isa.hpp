// Accelerator instruction set.
//
// The host issues three kinds of work (paper §III-A): convolution, padding
// and max-pooling; a halt instruction shuts the streaming kernels down at the
// end of a batch.  One CONV instruction computes a *group* of output feature
// maps (up to 4) over every tile position of one stripe; one PAD/POOL
// instruction processes all channels of one stripe.
//
// All addresses are per-bank word addresses (16-byte words): channel c lives
// in bank c % lanes at channel slot c / lanes, so the same base address is
// valid in every bank.
#pragma once

#include <array>
#include <cstdint>

#include "core/config.hpp"
#include "util/check.hpp"

namespace tsca::core {

enum class Opcode : std::uint8_t { kConv = 1, kPad = 2, kPool = 3, kHalt = 0xf };

const char* opcode_name(Opcode op);

// Convolution of one OFM group over one stripe, output stationary.
struct ConvInstr {
  // IFM (already padded by a preceding PAD instruction).
  std::int32_t ifm_base = 0;
  std::int32_t ifm_tiles_x = 0;
  std::int32_t ifm_tiles_y = 0;
  std::int32_t ifm_channels = 0;

  // Packed zero-skip weight stream, one per lane, laid out back to back in
  // each bank starting at weight_base (see pack::serialize_lane_stream).
  std::int32_t weight_base = 0;

  // OFM destination.
  std::int32_t ofm_base = 0;
  std::int32_t ofm_tiles_x = 0;
  std::int32_t ofm_tiles_y = 0;
  std::int32_t oc0 = 0;             // first output channel (multiple of group)
  std::int32_t active_filters = 0;  // 1..group

  // Filter geometry.
  std::int32_t kernel_h = 3;
  std::int32_t kernel_w = 3;

  // Numerics.
  std::array<std::int32_t, kMaxGroup> bias{};
  std::int32_t shift = 0;
  bool relu = true;
  // Packed stream uses the dense 1-byte ternary entry format (weights ±1).
  bool ternary_weights = false;

  std::int32_t positions() const { return ofm_tiles_x * ofm_tiles_y; }
  std::int32_t wtiles_y() const { return (kernel_h + 3) / 4; }
  std::int32_t wtiles_x() const { return (kernel_w + 3) / 4; }
};

// Padding or max-pooling of one stripe (paper Fig. 5 unit).
struct PadPoolInstr {
  std::int32_t ifm_base = 0;
  std::int32_t ifm_tiles_x = 0;
  std::int32_t ifm_tiles_y = 0;
  std::int32_t ifm_h = 0;  // logical (unpadded-to-tile) extents
  std::int32_t ifm_w = 0;
  std::int32_t channels = 0;

  std::int32_t ofm_base = 0;
  std::int32_t ofm_tiles_x = 0;
  std::int32_t ofm_tiles_y = 0;
  std::int32_t ofm_h = 0;
  std::int32_t ofm_w = 0;

  // Unified source-window geometry: output value (oy, ox) reduces (MAX) the
  // input window starting at (oy*stride + offset_y, ox*stride + offset_x) of
  // size win×win, clipped to the logical input extents; an empty window
  // leaves the zero-initialised output value (that is what zero-padding is).
  //   kPad : win=1, stride=1, offset = −pad  (pure shift/copy)
  //   kPool: win=s, stride=st, offset usually 0
  // Offsets may be negative and also absorb stripe-local coordinate shifts.
  std::int32_t win = 1;
  std::int32_t stride = 1;
  std::int32_t offset_y = 0;
  std::int32_t offset_x = 0;
};

struct Instruction {
  Opcode op = Opcode::kHalt;
  ConvInstr conv;
  PadPoolInstr pp;

  static Instruction halt() { return Instruction{}; }
  static Instruction make_conv(const ConvInstr& c) {
    Instruction i;
    i.op = Opcode::kConv;
    i.conv = c;
    return i;
  }
  static Instruction make_pad(const PadPoolInstr& p) {
    Instruction i;
    i.op = Opcode::kPad;
    i.pp = p;
    return i;
  }
  static Instruction make_pool(const PadPoolInstr& p) {
    Instruction i;
    i.op = Opcode::kPool;
    i.pp = p;
    return i;
  }
};

// Throws InstructionError if the instruction is malformed or references
// memory outside the banks.  weight_words = extent of the packed stream.
void validate_instruction(const Instruction& instr, const ArchConfig& cfg,
                          int weight_words = 0);

}  // namespace tsca::core
