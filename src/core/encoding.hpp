// Binary instruction encoding.
//
// The host ARM writes instructions into the accelerator's memory-mapped
// instruction window as 32-bit words (System II, §IV-D).  An instruction is
// 16 words (512 bits): word 0 carries a magic/version tag and the opcode,
// the rest the operation's fields.  decode_instruction validates the tag and
// field ranges structurally; full semantic validation stays in
// validate_instruction.
//
//   CONV  w1 ifm_base           w2 ifm_tiles_x | ifm_tiles_y<<16
//         w3 ifm_channels       w4 weight_base
//         w5 ofm_base           w6 ofm_tiles_x | ofm_tiles_y<<16
//         w7 oc0 | active<<24   w8 kernel_h | kernel_w<<16
//         w9 shift | relu<<8    w10..13 bias[0..3]
//   PAD/  w1 ifm_base           w2 ifm_tiles_x | ifm_tiles_y<<16
//   POOL  w3 ifm_h | ifm_w<<16  w4 channels
//         w5 ofm_base           w6 ofm_tiles_x | ofm_tiles_y<<16
//         w7 ofm_h | ofm_w<<16  w8 win | stride<<16
//         w9 offset_y           w10 offset_x
#pragma once

#include <array>
#include <cstdint>

#include "core/isa.hpp"

namespace tsca::core {

inline constexpr int kInstrWords = 16;
inline constexpr std::uint32_t kInstrMagic = 0x75CA0000u;  // + opcode

using EncodedInstruction = std::array<std::uint32_t, kInstrWords>;

EncodedInstruction encode_instruction(const Instruction& instr);

// Throws InstructionError on a bad magic tag, unknown opcode or field
// corruption detectable from the encoding itself.
Instruction decode_instruction(const EncodedInstruction& words);

}  // namespace tsca::core
