// The accelerator's streaming kernels.
//
// Each function below is one of the paper's software threads (§II-A coding
// style): an endless loop that pops from input FIFOs, computes, and pushes to
// output FIFOs, terminating on a halt token.  The same coroutine bodies run
// under the threaded engine (the paper's pthreads program) and the cycle
// engine (the synthesized hardware's timing model).
//
// Per lane (×4 in the full accelerator):
//   fetch_kernel   — data-staging, memory half: streams packed weights and
//                    preloads IFM tile windows through the bank read port;
//   inject_kernel  — data-staging, inject half: one weight per filter per
//                    cycle into the convolution unit (bubbles when the four
//                    filters' non-zero counts differ);
//   conv_kernel    — 4 weights × 16 IFM values = 64 multiplies per cycle;
//   write_kernel   — requantizes finished tiles and writes them to port B;
//   pool_pad_kernel— the Fig. 5 MAX/mux unit.
// Per group slot (×4):
//   accum_kernel   — owns one OFM tile, merges products from all lanes.
// Plus one controller that decodes host instructions and dispatches work.
#pragma once

#include "core/counters.hpp"
#include "core/messages.hpp"
#include "hls/barrier.hpp"
#include "hls/fifo.hpp"
#include "hls/kernel.hpp"
#include "sim/sram.hpp"

namespace tsca::core {

// Shared context: references outlive the kernels (owned by Accelerator /
// hls::System for the duration of a batch).
struct SharedCtx {
  hls::Domain* domain = nullptr;
  const ArchConfig* cfg = nullptr;
  Counters* counters = nullptr;
};

struct ControllerCtx {
  SharedCtx shared;
  hls::Fifo<Instruction>* host_q = nullptr;
  std::vector<hls::Fifo<FetchCmd>*> fetch_cmd;    // per lane
  std::vector<hls::Fifo<AccCtrl>*> acc_ctrl;      // per group slot
  std::vector<hls::Fifo<WriteCtrl>*> write_ctrl;  // per lane
};

struct FetchCtx {
  SharedCtx shared;
  int lane = 0;
  sim::SramBank* bank = nullptr;
  hls::Fifo<FetchCmd>* cmd_in = nullptr;
  hls::Fifo<WindowBundle>* bundle_out = nullptr;
  hls::Fifo<PoolCmd>* pool_out = nullptr;
  hls::Barrier* position_barrier = nullptr;  // null: no barrier
};

struct InjectCtx {
  SharedCtx shared;
  int lane = 0;
  hls::Fifo<WindowBundle>* bundle_in = nullptr;
  hls::Fifo<ConvCmd>* conv_out = nullptr;
};

struct ConvCtx {
  SharedCtx shared;
  int lane = 0;
  hls::Fifo<ConvCmd>* cmd_in = nullptr;
  std::vector<hls::Fifo<ProductMsg>*> product_out;  // per group slot
};

struct AccumCtx {
  SharedCtx shared;
  int slot = 0;
  hls::Fifo<AccCtrl>* ctrl_in = nullptr;
  std::vector<hls::Fifo<ProductMsg>*> product_in;  // per lane
  hls::Fifo<AccTileMsg>* tile_out = nullptr;
};

struct WriteCtx {
  SharedCtx shared;
  int lane = 0;
  sim::SramBank* bank = nullptr;
  hls::Fifo<WriteCtrl>* ctrl_in = nullptr;
  hls::Fifo<AccTileMsg>* acc_in = nullptr;
  hls::Fifo<PoolOutMsg>* pool_in = nullptr;
};

struct PoolPadCtx {
  SharedCtx shared;
  int lane = 0;
  hls::Fifo<PoolCmd>* cmd_in = nullptr;
  hls::Fifo<PoolOutMsg>* out = nullptr;
};

hls::Kernel controller_kernel(ControllerCtx ctx);
hls::Kernel fetch_kernel(FetchCtx ctx);
hls::Kernel inject_kernel(InjectCtx ctx);
hls::Kernel conv_kernel(ConvCtx ctx);
hls::Kernel accum_kernel(AccumCtx ctx);
hls::Kernel write_kernel(WriteCtx ctx);
hls::Kernel pool_pad_kernel(PoolPadCtx ctx);

// Channels a lane owns for a given channel count (round-robin distribution).
int lane_channel_count(int channels, int lane, int lanes);

}  // namespace tsca::core
