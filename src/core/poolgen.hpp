// Micro-op generation for the padding/pooling unit.
//
// The data-staging/control unit drives the pool/pad unit (Fig. 5) with a
// stream of (IFM tile, micro-op) pairs.  This module compiles one PAD or
// POOL instruction into that stream, one output tile at a time:
//
//   * every output value's source window is computed from the instruction
//     (a 1×1 "window" for padding, size×size at the given stride for
//     pooling);
//   * sources are grouped by the input tile that holds them;
//   * each input tile's contributions are chunked ≤ 4 at a time (four MAX
//     units per cycle), with running-max combining when a window straddles
//     input tiles.
//
// The same generator serves any pool size/stride and any padding — the
// paper's generality claim — and the property tests sweep it against the
// nn:: reference.
#pragma once

#include <vector>

#include "core/datapath.hpp"
#include "core/isa.hpp"

namespace tsca::core {

// One cycle of pool/pad work for a given output tile.
struct PoolStep {
  int in_ty = 0;  // input tile coordinates; out-of-grid ⇒ zero tile
  int in_tx = 0;
  bool load = false;  // first step touching this input tile: read the bank
  PoolPadOp op{};
  bool first = false;  // reset the output register before applying
  bool last = false;   // emit the output tile afterwards
};

// Steps for output tile (oty, otx) of a PAD or POOL instruction.  Never
// empty: a fully-out-of-range tile produces one no-op step so the write unit
// still receives a (zero) tile.
std::vector<PoolStep> make_pool_steps(const PadPoolInstr& instr, int oty,
                                      int otx);

// Total steps (≈ cycles) for a whole instruction — used by the performance
// model.
std::int64_t count_pool_steps(const PadPoolInstr& instr);

}  // namespace tsca::core
