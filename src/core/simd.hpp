// Runtime-dispatched SIMD kernel backends for the functional fast path.
//
// The datapath applies one non-zero weight to a 16-value IFM tile per cycle
// (§III-B) — one host SIMD multiply-accumulate per tile.  The paper widens
// its dot-product datapath from 16 to 512 MACs across variants; this layer
// widens the host kernels the same way: a SimdBackend is a small vtable of
// tile-group operations —
//
//   mac          acc[i] += x[i] * w over n groups of 16 (int8 × int8 → int32)
//   conv_run     the fast path's inner loop: gather one 4×4 region per image
//                straight from a strided pixel plane, probe it for zero, and
//                apply a run of (accumulator row, weight) entries to every
//                non-zero image — gather, widen, sparsity test and MACs fused
//                into one dispatch per run, images that gathered all-zero
//                skipped entirely (acc += 0·w is a no-op, so the skip is
//                bit-exact)
//   conv_win     optional whole-window kernel (3×3-kernel layers): one 8×8
//                pixel window load per (channel, image), then each quad of
//                ≤ 4 taps lands with a single byte-permute + int8
//                dot-accumulate — the widest backend's replacement for a
//                conv_run per offset run
//   dot          sum of a[i] * b[i] over n groups of 16, wrapped mod 2^32
//                (int32 addition is commutative/associative under wrapping,
//                so every backend returns the identical value)
//   dot4         four dot products against one shared stream in a single
//                dispatch — the batch-major FC path's op, streaming each
//                weight row's bytes through the registers once for four
//                images instead of once per image
//   requantize   nn::requantize over n groups of 16 int32 accumulators
//   masked_max16 max over the selected bytes of one tile (pool max unit)
//   pool_step    one whole pool/pad micro-op: all four masked MAX units plus
//                the take/combine/keep output mux applied to a 16-byte output
//                register in a single dispatch (controls precompiled into a
//                PoolStepCtl once per step, reused across channels/images)
//   is_zero      all-zero probe over n groups of 16 (activation zero-skip)
//
// implemented at 16 (scalar, SSE2), 32 (AVX2) and 64 (AVX-512) int8 lanes
// per native vector op.  The group-count form is what lets batch-major
// execution put several images' tiles into one call: n images × 16 values
// is a single contiguous mac regardless of the backend's native width.
//
// Backend selection happens once, at first use, via CPUID
// (__builtin_cpu_supports): the widest supported implementation wins.
// TSCA_FORCE_BACKEND=<scalar|sse2|avx2|avx512> overrides the choice (and
// fails hard when the named backend is missing or unsupported — a typo'd
// test matrix must not silently measure the wrong kernels).  Tests may also
// switch backends in-process with select_backend().  Every backend is
// bit-exact against nn::requantize and the cycle engine; the wider
// implementations are compiled with per-function target attributes, so no
// global -mavx2 style flags are ever added and the library cannot fault on
// older hosts.  The TSCA_SIMD CMake option (default ON) gates every
// intrinsic path; -DTSCA_SIMD=OFF leaves only the scalar backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tsca::core::simd {

// One step of a conv_run: accumulate `w` times the shared region into
// accumulator row `row` (rows are `stride` int32s apart).  The layout matches
// the fast path's packed weight entries so a sorted entry run can be handed
// to the backend without repacking; `tag` is carried, never read.
struct MacRunEntry {
  std::uint16_t row;
  std::int8_t w;
  std::uint8_t tag;
};

// One pool/pad micro-op (core::PoolPadOp) precompiled into the byte-vector
// controls the SIMD mux needs, so a step decoded once can be replayed for
// every channel (and image) with zero per-call expansion work.  Built by the
// fast path from the op's bit masks / select codes:
//
//   max_mask[m][i]  0xff when input value i feeds MAX unit m (else 0x00)
//   unit4[i]        4 * (out_sel[i] & 3) — the byte index of output i's MAX
//                   unit in a vector that packs unit m's result at byte 4m
//                   (0 when out_sel keeps the old value; never read then)
//   take[i]         0xff when out_sel takes a fresh MAX output (sel < 4)
//   comb[i]         0xff when out_sel running-max combines with the old value
//
// take and comb are disjoint; a byte with neither keeps the old value.
struct PoolStepCtl {
  alignas(16) std::uint8_t max_mask[4][16];
  alignas(16) std::uint8_t unit4[16];
  alignas(16) std::uint8_t take[16];
  alignas(16) std::uint8_t comb[16];
};

struct SimdBackend {
  const char* name;  // "scalar", "sse2", "avx2", "avx512"
  int width;         // int8 lanes per native vector op: 16, 32 or 64

  // acc[i] += x[i] * w for i in [0, n*16).
  void (*mac)(std::int32_t* acc, const std::int8_t* x, std::int8_t w, int n);
  // The fast conv inner loop over one region run.  For each image i in
  // [0, n) the 16-value region is the four 4-byte rows at
  //   src + i*img_stride + r*row_stride        (r in 0..3, row-major),
  // gathered directly from the caller's pixel plane.  An image whose region
  // is entirely zero is skipped; otherwise every entry e applies
  //   acc[e.row*stride + i*16 + p] += region[p] * e.w    (p in 0..15)
  // in entry order.  Returns how many images gathered non-zero (0 lets the
  // caller count the whole run as activation-skipped).  Bit-exact across
  // backends and with the unskipped loop: the elided MACs all add 0·w.
  int (*conv_run)(std::int32_t* acc, std::size_t stride, const MacRunEntry* e,
                  int count, const std::int8_t* src, std::ptrdiff_t img_stride,
                  std::ptrdiff_t row_stride, int n);
  // Optional whole-window kernel (nullptr when the backend has none; callers
  // must also check conv_win_host_ok()).  For each image i in [0, n) the 8×8
  // pixel window at src + i*img_stride (8-byte rows, row_stride apart) is
  // loaded once and masks[i] receives its nonzero-byte bitmask (bit r*8 + x,
  // the per-region zero probe's raw material).  Each quad q then applies up
  // to four taps to accumulator row qrow[q]: idx + q*64 byte-gathers the
  // taps' 16-value regions interleaved per lane, w[q] packs their four int8
  // weights little-endian, and corr[q] = 128 * (their sum) removes the
  // kernel's unsigned-operand bias exactly.  Images whose window is all zero
  // are skipped (their true contribution is zero).  Bit-exact with the
  // equivalent conv_run runs: int32 accumulation wraps, so regrouping taps
  // cannot change the result.
  void (*conv_win)(std::int32_t* acc, std::size_t stride,
                   const std::uint8_t* idx, const std::uint32_t* w,
                   const std::int32_t* corr, const std::uint16_t* qrow,
                   int quads, const std::int8_t* src,
                   std::ptrdiff_t img_stride, std::ptrdiff_t row_stride, int n,
                   std::uint64_t* masks);
  // Sum of a[i] * b[i] over [0, n*16), accumulated mod 2^32 (identical
  // across backends for any summation order, overflow included).
  std::int32_t (*dot)(const std::int8_t* a, const std::int8_t* b, int n);
  // out[k] = dot(a, b[k], n) for k in 0..3, loading each group of `a` once
  // for all four streams.  Exactly equal to four dot calls on every backend.
  void (*dot4)(const std::int8_t* a, const std::int8_t* const b[4], int n,
               std::int32_t out[4]);
  // nn::requantize (round half away from zero, optional ReLU, clamp to
  // [-127, 127]) over [0, n*16).  Any shift; backends fall back to the
  // scalar formula outside their fast range.
  void (*requantize)(const std::int32_t* acc, std::int8_t* out, int shift,
                     bool relu, int n);
  // Max over the bytes of one 16-value tile selected by `mask` (0xFF take /
  // 0x00 skip), starting from the datapath's fill value kInt8Min (-127) —
  // NOT -128, so a fully-masked unit bit-matches the hardware max tree.
  std::int8_t (*masked_max16)(const std::int8_t* v, const std::uint8_t* mask);
  // Applies one precompiled pool/pad micro-op to the 16-byte output register
  // `out`: every MAX unit reduces the bytes of `tile` its mask selects
  // (starting from kInt8Min, like masked_max16), then each output byte takes
  // its unit's max, running-max combines with it, or keeps its old value per
  // the ctl select masks.  Bit-exact with four masked_max16 calls plus the
  // scalar mux across all backends.
  void (*pool_step)(const std::int8_t* tile, const PoolStepCtl& ctl,
                    std::int8_t* out);
  // True when x[0 .. n*16) is entirely zero — the activation-sparsity probe
  // mirroring the paper's weight zero-skip on the feature-map side.
  bool (*is_zero)(const std::int8_t* x, int n);
};

// The active backend: chosen on first call (CPUID, overridable with the
// TSCA_FORCE_BACKEND environment variable) and stable until select_backend.
const SimdBackend& backend();
inline const char* backend_name() { return backend().name; }

// Every backend this build supports on this host, widest last.
std::vector<const SimdBackend*> available_backends();

// True when the host CPU can execute the active backend's conv_win
// specialization (AVX-512 VBMI + VNNI for the avx512 backend).  A non-null
// conv_win may still be unusable on narrower hosts the backend itself runs
// on, so callers check both.
bool conv_win_host_ok();

// Forces `name` as the active backend (tests; the equivalence matrix).
// Returns false — leaving the active backend unchanged — when the name is
// unknown, compiled out, or unsupported by the host CPU.
bool select_backend(const char* name);

// --- Convenience single-tile wrappers (legacy call sites) -----------------

inline void mac16(std::int32_t* acc, const std::int8_t* region,
                  std::int8_t w) {
  backend().mac(acc, region, w, 1);
}

inline void requantize16(const std::int32_t* acc, std::int8_t* out, int shift,
                         bool relu) {
  backend().requantize(acc, out, shift, relu, 1);
}

inline std::int8_t masked_max16(const std::int8_t* v,
                                const std::uint8_t* mask) {
  return backend().masked_max16(v, mask);
}

}  // namespace tsca::core::simd
