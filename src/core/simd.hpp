// Portable 16-lane SIMD primitives for the functional fast path.
//
// The datapath applies one non-zero weight to a 16-value IFM tile per cycle
// (§III-B) — exactly one host SIMD multiply-accumulate.  This header wraps
// the three tile-wide operations the fast path needs:
//
//   mac16          acc[i] += region[i] * w          (int8 × int8 → int32)
//   requantize16   nn::requantize over a 16-int32 accumulator tile
//   masked_max16   max over the selected bytes of a tile (pool max unit)
//
// Backend selection is purely compile-time: AVX2 when the compiler already
// targets it, else SSE2 (baseline on x86-64), else portable scalar.  The
// TSCA_SIMD CMake option (default ON) gates the intrinsic paths so
// -DTSCA_SIMD=OFF exercises the scalar fallback with identical results —
// every backend must be bit-exact against nn::requantize / the cycle engine.
// No -mavx2 style flags are ever added: we only use what the ambient
// compiler flags provide, so the library can't fault on older hosts.
#pragma once

#include <cstdint>

#include "nn/layers.hpp"

#if defined(TSCA_SIMD) && (defined(__SSE2__) || defined(__AVX2__))
#define TSCA_SIMD_X86 1
#include <immintrin.h>
#endif

namespace tsca::core::simd {

inline const char* backend() {
#if defined(TSCA_SIMD_X86) && defined(__AVX2__)
  return "avx2";
#elif defined(TSCA_SIMD_X86)
  return "sse2";
#else
  return "scalar";
#endif
}

// acc[i] += region[i] * w for one 16-value tile.
inline void mac16(std::int32_t* acc, const std::int8_t* region,
                  std::int8_t w) {
#if defined(TSCA_SIMD_X86)
  const __m128i r =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(region));
  const __m128i zero = _mm_setzero_si128();
  // Sign-extend i8 → i16 (shift trick keeps this SSE2-only).
  const __m128i lo16 = _mm_srai_epi16(_mm_unpacklo_epi8(zero, r), 8);
  const __m128i hi16 = _mm_srai_epi16(_mm_unpackhi_epi8(zero, r), 8);
  const __m128i wv = _mm_set1_epi16(static_cast<short>(w));
  // i8 × i8 fits in i16 exactly.
  const __m128i mlo = _mm_mullo_epi16(lo16, wv);
  const __m128i mhi = _mm_mullo_epi16(hi16, wv);
  __m128i* a = reinterpret_cast<__m128i*>(acc);
  const __m128i p0 = _mm_srai_epi32(_mm_unpacklo_epi16(zero, mlo), 16);
  const __m128i p1 = _mm_srai_epi32(_mm_unpackhi_epi16(zero, mlo), 16);
  const __m128i p2 = _mm_srai_epi32(_mm_unpacklo_epi16(zero, mhi), 16);
  const __m128i p3 = _mm_srai_epi32(_mm_unpackhi_epi16(zero, mhi), 16);
  _mm_storeu_si128(a + 0, _mm_add_epi32(_mm_loadu_si128(a + 0), p0));
  _mm_storeu_si128(a + 1, _mm_add_epi32(_mm_loadu_si128(a + 1), p1));
  _mm_storeu_si128(a + 2, _mm_add_epi32(_mm_loadu_si128(a + 2), p2));
  _mm_storeu_si128(a + 3, _mm_add_epi32(_mm_loadu_si128(a + 3), p3));
#else
  for (int i = 0; i < 16; ++i)
    acc[i] += static_cast<std::int32_t>(region[i]) * w;
#endif
}

// nn::requantize over a 16-int32 tile: round-half-away-from-zero shift,
// optional ReLU, clamp to [-127, 127].
inline void requantize16(const std::int32_t* acc, std::int8_t* out, int shift,
                         bool relu) {
#if defined(TSCA_SIMD_X86)
  if (shift >= 0 && shift <= 30) {
    const __m128i* a = reinterpret_cast<const __m128i*>(acc);
    const __m128i half =
        _mm_set1_epi32(shift > 0 ? (1 << (shift - 1)) : 0);
    const __m128i count = _mm_cvtsi32_si128(shift);
    const __m128i lo = _mm_set1_epi32(nn::kInt8Min);
    const __m128i hi = _mm_set1_epi32(nn::kInt8Max);
    const __m128i zero = _mm_setzero_si128();
    __m128i q[4];
    for (int k = 0; k < 4; ++k) {
      const __m128i v = _mm_loadu_si128(a + k);
      // Round half away from zero: |v|, add half, logical shift, re-sign.
      // |v| + half < 2^32 and the shifted result < 2^31 for shift >= 1, so
      // the unsigned arithmetic is exact (including v == INT32_MIN).
      const __m128i s = _mm_srai_epi32(v, 31);
      const __m128i absv = _mm_sub_epi32(_mm_xor_si128(v, s), s);
      const __m128i t = _mm_srl_epi32(_mm_add_epi32(absv, half), count);
      __m128i r = _mm_sub_epi32(_mm_xor_si128(t, s), s);
      if (relu) r = _mm_and_si128(r, _mm_cmpgt_epi32(r, zero));
      // clamp(r, lo, hi) without SSE4.1 min/max_epi32.
      __m128i gt = _mm_cmpgt_epi32(r, hi);
      r = _mm_or_si128(_mm_and_si128(gt, hi), _mm_andnot_si128(gt, r));
      gt = _mm_cmpgt_epi32(lo, r);
      r = _mm_or_si128(_mm_and_si128(gt, lo), _mm_andnot_si128(gt, r));
      q[k] = r;
    }
    // Values are already in [-127, 127]; the saturating packs are lossless.
    const __m128i p16a = _mm_packs_epi32(q[0], q[1]);
    const __m128i p16b = _mm_packs_epi32(q[2], q[3]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                     _mm_packs_epi16(p16a, p16b));
    return;
  }
#endif
  const nn::Requant rq{.shift = shift, .relu = relu};
  for (int i = 0; i < 16; ++i) out[i] = nn::requantize(acc[i], rq);
}

// Max over the bytes of `v` selected by `mask` (0xFF take / 0x00 skip),
// starting from the datapath's fill value kInt8Min (-127) — NOT -128, so a
// fully-masked unit bit-matches the hardware max tree.
inline std::int8_t masked_max16(const std::int8_t* v,
                                const std::uint8_t* mask) {
#if defined(TSCA_SIMD_X86)
  const __m128i val = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
  const __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask));
  const __m128i fill = _mm_set1_epi8(static_cast<char>(nn::kInt8Min));
  const __m128i sel =
      _mm_or_si128(_mm_and_si128(m, val), _mm_andnot_si128(m, fill));
  // Signed byte max via the unsigned max after an XOR 0x80 bias (SSE2 has
  // only _mm_max_epu8).
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  __m128i x = _mm_xor_si128(sel, bias);
  x = _mm_max_epu8(x, _mm_srli_si128(x, 8));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 4));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 2));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 1));
  return static_cast<std::int8_t>(
      static_cast<std::uint8_t>(_mm_cvtsi128_si32(x) & 0xff) ^ 0x80u);
#else
  std::int8_t best = nn::kInt8Min;
  for (int i = 0; i < 16; ++i)
    if (mask[i] != 0 && v[i] > best) best = v[i];
  return best;
#endif
}

}  // namespace tsca::core::simd
