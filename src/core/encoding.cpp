#include "core/encoding.hpp"

namespace tsca::core {

namespace {

std::uint32_t pack16(std::int32_t lo, std::int32_t hi) {
  TSCA_CHECK(lo >= 0 && lo <= 0xffff && hi >= 0 && hi <= 0xffff,
             "field exceeds 16 bits: " << lo << ", " << hi);
  return static_cast<std::uint32_t>(lo) |
         (static_cast<std::uint32_t>(hi) << 16);
}

std::int32_t lo16(std::uint32_t w) { return static_cast<std::int32_t>(w & 0xffff); }
std::int32_t hi16(std::uint32_t w) {
  return static_cast<std::int32_t>(w >> 16);
}

std::uint32_t from_i32(std::int32_t v) { return static_cast<std::uint32_t>(v); }
std::int32_t to_i32(std::uint32_t w) { return static_cast<std::int32_t>(w); }

}  // namespace

EncodedInstruction encode_instruction(const Instruction& instr) {
  EncodedInstruction words{};
  words[0] = kInstrMagic | static_cast<std::uint32_t>(instr.op);
  switch (instr.op) {
    case Opcode::kHalt:
      break;
    case Opcode::kConv: {
      const ConvInstr& c = instr.conv;
      words[1] = from_i32(c.ifm_base);
      words[2] = pack16(c.ifm_tiles_x, c.ifm_tiles_y);
      words[3] = from_i32(c.ifm_channels);
      words[4] = from_i32(c.weight_base);
      words[5] = from_i32(c.ofm_base);
      words[6] = pack16(c.ofm_tiles_x, c.ofm_tiles_y);
      TSCA_CHECK(c.oc0 >= 0 && c.oc0 < (1 << 24) && c.active_filters >= 0 &&
                 c.active_filters <= 0xff);
      words[7] = static_cast<std::uint32_t>(c.oc0) |
                 (static_cast<std::uint32_t>(c.active_filters) << 24);
      words[8] = pack16(c.kernel_h, c.kernel_w);
      TSCA_CHECK(c.shift >= 0 && c.shift <= 0xff);
      words[9] = static_cast<std::uint32_t>(c.shift) |
                 (c.relu ? 0x100u : 0u) |
                 (c.ternary_weights ? 0x200u : 0u);
      for (int k = 0; k < kMaxGroup; ++k)
        words[static_cast<std::size_t>(10 + k)] =
            from_i32(c.bias[static_cast<std::size_t>(k)]);
      break;
    }
    case Opcode::kPad:
    case Opcode::kPool: {
      const PadPoolInstr& p = instr.pp;
      words[1] = from_i32(p.ifm_base);
      words[2] = pack16(p.ifm_tiles_x, p.ifm_tiles_y);
      words[3] = pack16(p.ifm_h, p.ifm_w);
      words[4] = from_i32(p.channels);
      words[5] = from_i32(p.ofm_base);
      words[6] = pack16(p.ofm_tiles_x, p.ofm_tiles_y);
      words[7] = pack16(p.ofm_h, p.ofm_w);
      words[8] = pack16(p.win, p.stride);
      words[9] = from_i32(p.offset_y);
      words[10] = from_i32(p.offset_x);
      break;
    }
  }
  return words;
}

Instruction decode_instruction(const EncodedInstruction& words) {
  if ((words[0] & 0xffff0000u) != kInstrMagic)
    throw InstructionError("bad instruction magic word");
  const std::uint32_t op = words[0] & 0xffu;
  Instruction instr;
  switch (op) {
    case static_cast<std::uint32_t>(Opcode::kHalt):
      instr.op = Opcode::kHalt;
      return instr;
    case static_cast<std::uint32_t>(Opcode::kConv): {
      instr.op = Opcode::kConv;
      ConvInstr& c = instr.conv;
      c.ifm_base = to_i32(words[1]);
      c.ifm_tiles_x = lo16(words[2]);
      c.ifm_tiles_y = hi16(words[2]);
      c.ifm_channels = to_i32(words[3]);
      c.weight_base = to_i32(words[4]);
      c.ofm_base = to_i32(words[5]);
      c.ofm_tiles_x = lo16(words[6]);
      c.ofm_tiles_y = hi16(words[6]);
      c.oc0 = static_cast<std::int32_t>(words[7] & 0xffffffu);
      c.active_filters = static_cast<std::int32_t>(words[7] >> 24);
      c.kernel_h = lo16(words[8]);
      c.kernel_w = hi16(words[8]);
      c.shift = static_cast<std::int32_t>(words[9] & 0xffu);
      c.relu = (words[9] & 0x100u) != 0;
      c.ternary_weights = (words[9] & 0x200u) != 0;
      if ((words[9] & ~0x3ffu) != 0)
        throw InstructionError("reserved bits set in CONV word 9");
      for (int k = 0; k < kMaxGroup; ++k)
        c.bias[static_cast<std::size_t>(k)] =
            to_i32(words[static_cast<std::size_t>(10 + k)]);
      return instr;
    }
    case static_cast<std::uint32_t>(Opcode::kPad):
    case static_cast<std::uint32_t>(Opcode::kPool): {
      instr.op = static_cast<Opcode>(op);
      PadPoolInstr& p = instr.pp;
      p.ifm_base = to_i32(words[1]);
      p.ifm_tiles_x = lo16(words[2]);
      p.ifm_tiles_y = hi16(words[2]);
      p.ifm_h = lo16(words[3]);
      p.ifm_w = hi16(words[3]);
      p.channels = to_i32(words[4]);
      p.ofm_base = to_i32(words[5]);
      p.ofm_tiles_x = lo16(words[6]);
      p.ofm_tiles_y = hi16(words[6]);
      p.ofm_h = lo16(words[7]);
      p.ofm_w = hi16(words[7]);
      p.win = lo16(words[8]);
      p.stride = hi16(words[8]);
      p.offset_y = to_i32(words[9]);
      p.offset_x = to_i32(words[10]);
      return instr;
    }
    default:
      throw InstructionError("unknown opcode in encoded instruction: " +
                             std::to_string(op));
  }
}

}  // namespace tsca::core
