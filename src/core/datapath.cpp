#include "core/datapath.hpp"

#include <algorithm>

namespace tsca::core {

std::array<std::int32_t, pack::kTileSize> steer_multiply(const Window& window,
                                                         std::int8_t weight,
                                                         int offset) {
  TSCA_CHECK(offset >= 0 && offset < pack::kTileSize, "offset=" << offset);
  std::array<std::int32_t, pack::kTileSize> products{};
  if (weight == 0) return products;  // bubble: gated multipliers
  const int oy = offset / pack::kTileDim;
  const int ox = offset % pack::kTileDim;
  for (int i = 0; i < pack::kTileSize; ++i) {
    const int dy = i / pack::kTileDim;
    const int dx = i % pack::kTileDim;
    products[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(window.at(oy + dy, ox + dx)) *
        static_cast<std::int32_t>(weight);
  }
  return products;
}

void accumulate(pack::TileAcc& acc,
                const std::array<std::int32_t, pack::kTileSize>& products) {
  for (int i = 0; i < pack::kTileSize; ++i)
    acc.v[static_cast<std::size_t>(i)] += products[static_cast<std::size_t>(i)];
}

pack::Tile requantize_tile(const pack::TileAcc& acc, const nn::Requant& rq) {
  pack::Tile out;
  for (int i = 0; i < pack::kTileSize; ++i)
    out.v[static_cast<std::size_t>(i)] =
        nn::requantize(acc.v[static_cast<std::size_t>(i)], rq);
  return out;
}

void apply_pool_pad(const PoolPadOp& op, const pack::Tile& in_tile,
                    pack::Tile& out_reg) {
  // MAX units: reduce the masked subset of the 16 injected values.  An empty
  // mask yields the most negative representable value so that an (incorrect)
  // take from an unused unit is conspicuous rather than silently zero.
  std::array<std::int8_t, kNumMaxUnits> max_out{};
  for (int m = 0; m < kNumMaxUnits; ++m) {
    std::int32_t best = nn::kInt8Min;
    const std::uint16_t mask = op.max_mask[static_cast<std::size_t>(m)];
    for (int i = 0; i < pack::kTileSize; ++i)
      if (mask & (1u << i))
        best = std::max<std::int32_t>(best,
                                      in_tile.v[static_cast<std::size_t>(i)]);
    max_out[static_cast<std::size_t>(m)] = static_cast<std::int8_t>(best);
  }
  // Output muxes.
  for (int i = 0; i < pack::kTileSize; ++i) {
    const std::uint8_t sel = op.out_sel[static_cast<std::size_t>(i)];
    std::int8_t& out = out_reg.v[static_cast<std::size_t>(i)];
    if (sel < kSelCombine0) {
      out = max_out[sel];
    } else if (sel < kSelKeep) {
      out = std::max(out, max_out[static_cast<std::size_t>(sel - kSelCombine0)]);
    } else {
      TSCA_CHECK(sel == kSelKeep, "bad out_sel " << int{sel});
    }
  }
}

}  // namespace tsca::core
