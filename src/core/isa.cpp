#include "core/isa.hpp"

#include <sstream>

namespace tsca::core {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kConv:
      return "CONV";
    case Opcode::kPad:
      return "PAD";
    case Opcode::kPool:
      return "POOL";
    case Opcode::kHalt:
      return "HALT";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(const char* what, const Instruction& instr) {
  std::ostringstream os;
  os << "bad " << opcode_name(instr.op) << " instruction: " << what;
  throw InstructionError(os.str());
}

void check_region(const char* what, std::int64_t base, std::int64_t words,
                  const ArchConfig& cfg, const Instruction& instr) {
  if (base < 0 || words < 0 || base + words > cfg.bank_words) {
    std::ostringstream os;
    os << what << " region [" << base << ", " << base + words
       << ") outside bank of " << cfg.bank_words << " words";
    fail(os.str().c_str(), instr);
  }
}

// Words a region of `channels` channels × tiles_y × tiles_x occupies per
// bank (channels are distributed round-robin over lanes).
std::int64_t region_words(std::int64_t channels, std::int64_t tiles_y,
                          std::int64_t tiles_x, int lanes) {
  const std::int64_t slots = (channels + lanes - 1) / lanes;
  return slots * tiles_y * tiles_x;
}

}  // namespace

void validate_instruction(const Instruction& instr, const ArchConfig& cfg,
                          int weight_words) {
  cfg.validate();
  switch (instr.op) {
    case Opcode::kHalt:
      return;
    case Opcode::kConv: {
      const ConvInstr& c = instr.conv;
      if (c.ifm_tiles_x <= 0 || c.ifm_tiles_y <= 0)
        fail("non-positive IFM tile grid", instr);
      if (c.ifm_channels <= 0) fail("no IFM channels", instr);
      if (c.ofm_tiles_x <= 0 || c.ofm_tiles_y <= 0)
        fail("non-positive OFM tile grid", instr);
      if (c.kernel_h <= 0 || c.kernel_w <= 0) fail("bad kernel size", instr);
      if (c.kernel_h > c.ifm_tiles_y * pack::kTileDim ||
          c.kernel_w > c.ifm_tiles_x * pack::kTileDim)
        fail("kernel larger than stripe", instr);
      if (c.active_filters < 1 || c.active_filters > cfg.group)
        fail("active_filters out of range", instr);
      if (c.oc0 < 0 || c.oc0 % cfg.group != 0)
        fail("oc0 must be a non-negative multiple of group", instr);
      if (c.shift < 0 || c.shift > 31) fail("shift out of range", instr);
      check_region("IFM", c.ifm_base,
                   region_words(c.ifm_channels, c.ifm_tiles_y, c.ifm_tiles_x,
                                cfg.lanes),
                   cfg, instr);
      // OFM region: this instruction writes one channel slot per active
      // filter; the enclosing layer may use more, which the driver checks.
      check_region("OFM", c.ofm_base,
                   region_words(cfg.group, c.ofm_tiles_y, c.ofm_tiles_x,
                                cfg.lanes),
                   cfg, instr);
      check_region("weights", c.weight_base, weight_words, cfg, instr);
      return;
    }
    case Opcode::kPad:
    case Opcode::kPool: {
      const PadPoolInstr& p = instr.pp;
      if (p.channels <= 0) fail("no channels", instr);
      if (p.ifm_tiles_x <= 0 || p.ifm_tiles_y <= 0 || p.ofm_tiles_x <= 0 ||
          p.ofm_tiles_y <= 0)
        fail("non-positive tile grid", instr);
      if (p.ifm_h <= 0 || p.ifm_w <= 0 || p.ofm_h <= 0 || p.ofm_w <= 0)
        fail("non-positive logical extent", instr);
      if (p.ifm_h > p.ifm_tiles_y * pack::kTileDim ||
          p.ifm_w > p.ifm_tiles_x * pack::kTileDim ||
          p.ofm_h > p.ofm_tiles_y * pack::kTileDim ||
          p.ofm_w > p.ofm_tiles_x * pack::kTileDim)
        fail("logical extent exceeds tile grid", instr);
      if (p.win <= 0 || p.stride <= 0) fail("bad window geometry", instr);
      if (instr.op == Opcode::kPad && (p.win != 1 || p.stride != 1))
        fail("PAD requires win=1 stride=1", instr);
      if (instr.op == Opcode::kPool && (p.win > p.ifm_h || p.win > p.ifm_w))
        fail("pool window larger than input", instr);
      check_region("IFM", p.ifm_base,
                   region_words(p.channels, p.ifm_tiles_y, p.ifm_tiles_x,
                                cfg.lanes),
                   cfg, instr);
      check_region("OFM", p.ofm_base,
                   region_words(p.channels, p.ofm_tiles_y, p.ofm_tiles_x,
                                cfg.lanes),
                   cfg, instr);
      return;
    }
  }
  fail("unknown opcode", instr);
}

}  // namespace tsca::core
