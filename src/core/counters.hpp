// Hardware event counters.
//
// Incremented by the kernels in both execution modes (atomically — the
// threaded engine updates them from 20+ threads).  They feed the GOPS
// accounting, the efficiency study (Fig. 7) and the activity-based power
// model (Table I).
#pragma once

#include <atomic>
#include <cstdint>

namespace tsca::core {

struct Counters {
  // Weight commands entering convolution units (one per cycle per lane in
  // steady state), split into real weights and bubbles from unbalanced
  // sparsity across the concurrent filters.
  std::atomic<std::int64_t> weight_cmds{0};
  std::atomic<std::int64_t> weight_bubbles{0};

  // Multiply-accumulates actually performed (non-zero weight × 16 values ×
  // active filters).
  std::atomic<std::int64_t> macs_performed{0};

  // SRAM traffic (tile-wide words).
  std::atomic<std::int64_t> ifm_tile_reads{0};
  std::atomic<std::int64_t> weight_word_reads{0};   // scratch preload + spill
  std::atomic<std::int64_t> weight_spill_reads{0};  // the per-position spill
  std::atomic<std::int64_t> ofm_tile_writes{0};

  // Pool/pad unit activity.
  std::atomic<std::int64_t> pool_ops{0};

  // Instruction counts.
  std::atomic<std::int64_t> conv_instrs{0};
  std::atomic<std::int64_t> pad_instrs{0};
  std::atomic<std::int64_t> pool_instrs{0};

  // OFM tile positions completed (barrier releases in the 4-lane variants).
  std::atomic<std::int64_t> positions{0};

  void reset() {
    weight_cmds = 0;
    weight_bubbles = 0;
    macs_performed = 0;
    ifm_tile_reads = 0;
    weight_word_reads = 0;
    weight_spill_reads = 0;
    ofm_tile_writes = 0;
    pool_ops = 0;
    conv_instrs = 0;
    pad_instrs = 0;
    pool_instrs = 0;
    positions = 0;
  }
};

// Plain-value snapshot of Counters (copyable, for reporting).
struct CounterSnapshot {
  std::int64_t weight_cmds = 0;
  std::int64_t weight_bubbles = 0;
  std::int64_t macs_performed = 0;
  std::int64_t ifm_tile_reads = 0;
  std::int64_t weight_word_reads = 0;
  std::int64_t weight_spill_reads = 0;
  std::int64_t ofm_tile_writes = 0;
  std::int64_t pool_ops = 0;
  std::int64_t conv_instrs = 0;
  std::int64_t pad_instrs = 0;
  std::int64_t pool_instrs = 0;
  std::int64_t positions = 0;

  bool operator==(const CounterSnapshot&) const = default;
};

inline CounterSnapshot& operator+=(CounterSnapshot& a,
                                   const CounterSnapshot& b) {
  a.weight_cmds += b.weight_cmds;
  a.weight_bubbles += b.weight_bubbles;
  a.macs_performed += b.macs_performed;
  a.ifm_tile_reads += b.ifm_tile_reads;
  a.weight_word_reads += b.weight_word_reads;
  a.weight_spill_reads += b.weight_spill_reads;
  a.ofm_tile_writes += b.ofm_tile_writes;
  a.pool_ops += b.pool_ops;
  a.conv_instrs += b.conv_instrs;
  a.pad_instrs += b.pad_instrs;
  a.pool_instrs += b.pool_instrs;
  a.positions += b.positions;
  return a;
}

// after − before, for per-layer / per-stripe accounting.
inline CounterSnapshot operator-(const CounterSnapshot& after,
                                 const CounterSnapshot& before) {
  CounterSnapshot d;
  d.weight_cmds = after.weight_cmds - before.weight_cmds;
  d.weight_bubbles = after.weight_bubbles - before.weight_bubbles;
  d.macs_performed = after.macs_performed - before.macs_performed;
  d.ifm_tile_reads = after.ifm_tile_reads - before.ifm_tile_reads;
  d.weight_word_reads = after.weight_word_reads - before.weight_word_reads;
  d.weight_spill_reads = after.weight_spill_reads - before.weight_spill_reads;
  d.ofm_tile_writes = after.ofm_tile_writes - before.ofm_tile_writes;
  d.pool_ops = after.pool_ops - before.pool_ops;
  d.conv_instrs = after.conv_instrs - before.conv_instrs;
  d.pad_instrs = after.pad_instrs - before.pad_instrs;
  d.pool_instrs = after.pool_instrs - before.pool_instrs;
  d.positions = after.positions - before.positions;
  return d;
}

inline CounterSnapshot snapshot(const Counters& c) {
  CounterSnapshot s;
  s.weight_cmds = c.weight_cmds.load();
  s.weight_bubbles = c.weight_bubbles.load();
  s.macs_performed = c.macs_performed.load();
  s.ifm_tile_reads = c.ifm_tile_reads.load();
  s.weight_word_reads = c.weight_word_reads.load();
  s.weight_spill_reads = c.weight_spill_reads.load();
  s.ofm_tile_writes = c.ofm_tile_writes.load();
  s.pool_ops = c.pool_ops.load();
  s.conv_instrs = c.conv_instrs.load();
  s.pad_instrs = c.pad_instrs.load();
  s.pool_instrs = c.pool_instrs.load();
  s.positions = c.positions.load();
  return s;
}

}  // namespace tsca::core
