// Hardware event counters.
//
// Incremented by the kernels in both execution modes (atomically — the
// threaded engine updates them from 20+ threads).  They feed the GOPS
// accounting, the efficiency study (Fig. 7) and the activity-based power
// model (Table I).
#pragma once

#include <atomic>
#include <cstdint>

namespace tsca::core {

struct Counters {
  // Weight commands entering convolution units (one per cycle per lane in
  // steady state), split into real weights and bubbles from unbalanced
  // sparsity across the concurrent filters.
  std::atomic<std::int64_t> weight_cmds{0};
  std::atomic<std::int64_t> weight_bubbles{0};

  // Multiply-accumulates actually performed (non-zero weight × 16 values ×
  // active filters).
  std::atomic<std::int64_t> macs_performed{0};

  // SRAM traffic (tile-wide words).
  std::atomic<std::int64_t> ifm_tile_reads{0};
  std::atomic<std::int64_t> weight_word_reads{0};   // scratch preload + spill
  std::atomic<std::int64_t> weight_spill_reads{0};  // the per-position spill
  std::atomic<std::int64_t> ofm_tile_writes{0};

  // Pool/pad unit activity.
  std::atomic<std::int64_t> pool_ops{0};

  // Instruction counts.
  std::atomic<std::int64_t> conv_instrs{0};
  std::atomic<std::int64_t> pad_instrs{0};
  std::atomic<std::int64_t> pool_instrs{0};

  // OFM tile positions completed (barrier releases in the 4-lane variants).
  std::atomic<std::int64_t> positions{0};

  void reset() {
    weight_cmds = 0;
    weight_bubbles = 0;
    macs_performed = 0;
    ifm_tile_reads = 0;
    weight_word_reads = 0;
    weight_spill_reads = 0;
    ofm_tile_writes = 0;
    pool_ops = 0;
    conv_instrs = 0;
    pad_instrs = 0;
    pool_instrs = 0;
    positions = 0;
  }
};

// Plain-value snapshot of Counters (copyable, for reporting).
struct CounterSnapshot {
  std::int64_t weight_cmds = 0;
  std::int64_t weight_bubbles = 0;
  std::int64_t macs_performed = 0;
  std::int64_t ifm_tile_reads = 0;
  std::int64_t weight_word_reads = 0;
  std::int64_t weight_spill_reads = 0;
  std::int64_t ofm_tile_writes = 0;
  std::int64_t pool_ops = 0;
  std::int64_t conv_instrs = 0;
  std::int64_t pad_instrs = 0;
  std::int64_t pool_instrs = 0;
  std::int64_t positions = 0;
};

inline CounterSnapshot snapshot(const Counters& c) {
  CounterSnapshot s;
  s.weight_cmds = c.weight_cmds.load();
  s.weight_bubbles = c.weight_bubbles.load();
  s.macs_performed = c.macs_performed.load();
  s.ifm_tile_reads = c.ifm_tile_reads.load();
  s.weight_word_reads = c.weight_word_reads.load();
  s.weight_spill_reads = c.weight_spill_reads.load();
  s.ofm_tile_writes = c.ofm_tile_writes.load();
  s.pool_ops = c.pool_ops.load();
  s.conv_instrs = c.conv_instrs.load();
  s.pad_instrs = c.pad_instrs.load();
  s.pool_instrs = c.pool_instrs.load();
  s.positions = c.positions.load();
  return s;
}

}  // namespace tsca::core
