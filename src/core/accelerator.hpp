// The accelerator instance: banks + kernels + wiring (paper Fig. 3).
//
// Bank contents persist across batches (feature maps stay on-chip between
// layer instructions); the streaming kernels and their FIFOs are constructed
// fresh for every run_batch call, under either execution mode.
//
// Typical use (the driver::Runtime does all of this for whole networks):
//   Accelerator acc(ArchConfig::k256_opt());
//   ... DMA stripes and packed weights into acc.bank(l) ...
//   auto stats = acc.run_batch(instructions, hls::Mode::kCycle);
#pragma once

#include <memory>
#include <vector>

#include "core/counters.hpp"
#include "core/isa.hpp"
#include "hls/system.hpp"
#include "sim/sram.hpp"

namespace tsca::core {

struct BatchStats {
  std::uint64_t cycles = 0;  // 0 in thread mode
  CounterSnapshot counters;
  // Per-kernel busy cycles (cycle mode with track_utilization).
  std::vector<hls::CycleEngine::KernelActivity> kernel_activity;
  // Aggregate FIFO stall cycles (cycle mode): producer / consumer waits.
  std::uint64_t fifo_push_stalls = 0;
  std::uint64_t fifo_pop_stalls = 0;
  // Read-port stalls across banks.
  std::uint64_t port_stalls = 0;
};

class Accelerator {
 public:
  explicit Accelerator(ArchConfig cfg);
  Accelerator(const Accelerator&) = delete;
  Accelerator& operator=(const Accelerator&) = delete;

  const ArchConfig& config() const { return cfg_; }
  int num_banks() const { return static_cast<int>(banks_.size()); }
  sim::SramBank& bank(int lane);

  // Validates and executes a batch of instructions to completion.  A HALT is
  // appended automatically.  Counters accumulate across batches until
  // reset_counters().
  BatchStats run_batch(const std::vector<Instruction>& instructions,
                       hls::Mode mode,
                       hls::SystemOptions options = default_options());

  Counters& counters() { return counters_; }
  void reset_counters() { counters_.reset(); }

  static hls::SystemOptions default_options() {
    return hls::SystemOptions{.max_cycles = 2'000'000'000, .watchdog_ms = 20'000};
  }

 private:
  ArchConfig cfg_;
  std::vector<std::unique_ptr<sim::SramBank>> banks_;
  Counters counters_;
};

}  // namespace tsca::core
