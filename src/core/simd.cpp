// SimdBackend implementations: scalar, SSE2, AVX2, AVX-512.
//
// Every implementation computes exactly the same integers — the scalar loops
// are the specification, the vector bodies are transcriptions of them.  The
// AVX2/AVX-512 functions carry per-function target attributes, so this file
// compiles with the ambient (baseline) flags and the wider code is only ever
// reached through the dispatch table after a CPUID check.
#include "core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "nn/layers.hpp"
#include "util/check.hpp"

#if defined(TSCA_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    defined(__SSE2__) && (defined(__GNUC__) || defined(__clang__))
#define TSCA_SIMD_X86 1
#include <immintrin.h>
#endif

namespace tsca::core::simd {

namespace {

// --- scalar (specification) ----------------------------------------------

void mac_scalar(std::int32_t* acc, const std::int8_t* x, std::int8_t w,
                int n) {
  for (int i = 0; i < n * 16; ++i)
    acc[i] += static_cast<std::int32_t>(x[i]) * w;
}

int conv_run_scalar(std::int32_t* acc, std::size_t stride,
                    const MacRunEntry* e, int count, const std::int8_t* src,
                    std::ptrdiff_t img_stride, std::ptrdiff_t row_stride,
                    int n) {
  int nz_images = 0;
  for (int i = 0; i < n; ++i) {
    const std::int8_t* s = src + i * img_stride;
    std::int8_t region[16];
    std::uint32_t nz = 0;
    for (int r = 0; r < 4; ++r) {
      std::uint32_t w32;
      std::memcpy(&w32, s + r * row_stride, sizeof(w32));
      nz |= w32;
      std::memcpy(region + r * 4, &w32, sizeof(w32));
    }
    if (nz == 0) continue;
    ++nz_images;
    for (int k = 0; k < count; ++k)
      mac_scalar(acc + e[k].row * stride + i * 16, region, e[k].w, 1);
  }
  return nz_images;
}

std::int32_t dot_scalar(const std::int8_t* a, const std::int8_t* b, int n) {
  // Unsigned accumulation: wraps mod 2^32 without UB, matching the vector
  // backends' wrapping adds for any summation order.
  std::uint32_t s = 0;
  for (int i = 0; i < n * 16; ++i)
    s += static_cast<std::uint32_t>(static_cast<std::int32_t>(a[i]) * b[i]);
  return static_cast<std::int32_t>(s);
}

void dot4_scalar(const std::int8_t* a, const std::int8_t* const b[4], int n,
                 std::int32_t out[4]) {
  for (int k = 0; k < 4; ++k) out[k] = dot_scalar(a, b[k], n);
}

void requantize_scalar(const std::int32_t* acc, std::int8_t* out, int shift,
                       bool relu, int n) {
  const nn::Requant rq{.shift = shift, .relu = relu};
  for (int i = 0; i < n * 16; ++i) out[i] = nn::requantize(acc[i], rq);
}

std::int8_t masked_max16_scalar(const std::int8_t* v,
                                const std::uint8_t* mask) {
  std::int8_t best = nn::kInt8Min;
  for (int i = 0; i < 16; ++i)
    if (mask[i] != 0 && v[i] > best) best = v[i];
  return best;
}

// The pool_step specification: four masked horizontal maxes, then the
// take / running-max-combine / keep output mux.
void pool_step_scalar(const std::int8_t* tile, const PoolStepCtl& ctl,
                      std::int8_t* out) {
  std::int8_t mx[4];
  for (int m = 0; m < 4; ++m)
    mx[m] = masked_max16_scalar(tile, ctl.max_mask[m]);
  for (int i = 0; i < 16; ++i) {
    const std::int8_t u = mx[ctl.unit4[i] / 4];
    if (ctl.take[i] != 0)
      out[i] = u;
    else if (ctl.comb[i] != 0 && u > out[i])
      out[i] = u;
  }
}

bool is_zero_scalar(const std::int8_t* x, int n) {
  for (int i = 0; i < n * 16; ++i)
    if (x[i] != 0) return false;
  return true;
}

constexpr SimdBackend kScalar{"scalar",        16,
                              mac_scalar,      conv_run_scalar,
                              nullptr,
                              dot_scalar,      dot4_scalar,
                              requantize_scalar,
                              masked_max16_scalar, pool_step_scalar,
                              is_zero_scalar};

#if defined(TSCA_SIMD_X86)

// 4-byte region row loaded through memcpy: the planes are byte buffers with
// no alignment promise.
inline std::int32_t load_row32(const std::int8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::int64_t load_row64(const std::int8_t* p) {
  std::int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// --- SSE2 (x86-64 baseline, 16 int8 lanes) -------------------------------

void mac_sse2(std::int32_t* acc, const std::int8_t* x, std::int8_t w, int n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i wv = _mm_set1_epi16(static_cast<short>(w));
  for (int g = 0; g < n; ++g) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + g * 16));
    // Sign-extend i8 → i16 (shift trick keeps this SSE2-only); i8 × i8 fits
    // in i16 exactly, then widen the products to i32 the same way.
    const __m128i lo16 = _mm_srai_epi16(_mm_unpacklo_epi8(zero, r), 8);
    const __m128i hi16 = _mm_srai_epi16(_mm_unpackhi_epi8(zero, r), 8);
    const __m128i mlo = _mm_mullo_epi16(lo16, wv);
    const __m128i mhi = _mm_mullo_epi16(hi16, wv);
    __m128i* a = reinterpret_cast<__m128i*>(acc + g * 16);
    const __m128i p0 = _mm_srai_epi32(_mm_unpacklo_epi16(zero, mlo), 16);
    const __m128i p1 = _mm_srai_epi32(_mm_unpackhi_epi16(zero, mlo), 16);
    const __m128i p2 = _mm_srai_epi32(_mm_unpacklo_epi16(zero, mhi), 16);
    const __m128i p3 = _mm_srai_epi32(_mm_unpackhi_epi16(zero, mhi), 16);
    _mm_storeu_si128(a + 0, _mm_add_epi32(_mm_loadu_si128(a + 0), p0));
    _mm_storeu_si128(a + 1, _mm_add_epi32(_mm_loadu_si128(a + 1), p1));
    _mm_storeu_si128(a + 2, _mm_add_epi32(_mm_loadu_si128(a + 2), p2));
    _mm_storeu_si128(a + 3, _mm_add_epi32(_mm_loadu_si128(a + 3), p3));
  }
}

// Images gathered per chunk by the vector conv_run bodies: the widened
// regions of one chunk live in a stack array so the entry loop can hoist the
// weight broadcast out of the per-image work.
constexpr int kConvRunChunk = 16;

int conv_run_sse2(std::int32_t* acc, std::size_t stride, const MacRunEntry* e,
                  int count, const std::int8_t* src, std::ptrdiff_t img_stride,
                  std::ptrdiff_t row_stride, int n) {
  const __m128i zero = _mm_setzero_si128();
  int nz_images = 0;
  for (int i0 = 0; i0 < n; i0 += kConvRunChunk) {
    const int chunk = n - i0 < kConvRunChunk ? n - i0 : kConvRunChunk;
    // Gather + zero-probe + widen each image once; the entry loop below
    // touches only the images that gathered non-zero.
    __m128i x16[2 * kConvRunChunk];
    std::int32_t aoff[kConvRunChunk];
    int m = 0;
    for (int i = 0; i < chunk; ++i) {
      const std::int8_t* s = src + (i0 + i) * img_stride;
      // The whole 4×4 region is one xmm: four strided 32-bit row loads.
      const __m128i r =
          _mm_setr_epi32(load_row32(s), load_row32(s + row_stride),
                         load_row32(s + 2 * row_stride),
                         load_row32(s + 3 * row_stride));
      if (_mm_movemask_epi8(_mm_cmpeq_epi8(r, zero)) == 0xffff) continue;
      x16[2 * m + 0] = _mm_srai_epi16(_mm_unpacklo_epi8(zero, r), 8);
      x16[2 * m + 1] = _mm_srai_epi16(_mm_unpackhi_epi8(zero, r), 8);
      aoff[m] = (i0 + i) * 16;
      ++m;
    }
    nz_images += m;
    if (m == 0) continue;
    for (int k = 0; k < count; ++k) {
      const __m128i wv = _mm_set1_epi16(static_cast<short>(e[k].w));
      std::int32_t* const base = acc + e[k].row * stride;
      for (int j = 0; j < m; ++j) {
        __m128i* a = reinterpret_cast<__m128i*>(base + aoff[j]);
        const __m128i mlo = _mm_mullo_epi16(x16[2 * j + 0], wv);
        const __m128i mhi = _mm_mullo_epi16(x16[2 * j + 1], wv);
        const __m128i p0 = _mm_srai_epi32(_mm_unpacklo_epi16(zero, mlo), 16);
        const __m128i p1 = _mm_srai_epi32(_mm_unpackhi_epi16(zero, mlo), 16);
        const __m128i p2 = _mm_srai_epi32(_mm_unpacklo_epi16(zero, mhi), 16);
        const __m128i p3 = _mm_srai_epi32(_mm_unpackhi_epi16(zero, mhi), 16);
        _mm_storeu_si128(a + 0, _mm_add_epi32(_mm_loadu_si128(a + 0), p0));
        _mm_storeu_si128(a + 1, _mm_add_epi32(_mm_loadu_si128(a + 1), p1));
        _mm_storeu_si128(a + 2, _mm_add_epi32(_mm_loadu_si128(a + 2), p2));
        _mm_storeu_si128(a + 3, _mm_add_epi32(_mm_loadu_si128(a + 3), p3));
      }
    }
  }
  return nz_images;
}

std::int32_t dot_sse2(const std::int8_t* a, const std::int8_t* b, int n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  for (int g = 0; g < n; ++g) {
    const __m128i av =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + g * 16));
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + g * 16));
    const __m128i alo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, av), 8);
    const __m128i ahi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, av), 8);
    const __m128i blo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, bv), 8);
    const __m128i bhi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, bv), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, blo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(ahi, bhi));
  }
  acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 8));
  acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 4));
  return _mm_cvtsi128_si32(acc);
}

void dot4_sse2(const std::int8_t* a, const std::int8_t* const b[4], int n,
               std::int32_t out[4]) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc[4] = {zero, zero, zero, zero};
  for (int g = 0; g < n; ++g) {
    const __m128i av =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + g * 16));
    const __m128i alo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, av), 8);
    const __m128i ahi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, av), 8);
    for (int k = 0; k < 4; ++k) {
      const __m128i bv =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b[k] + g * 16));
      const __m128i blo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, bv), 8);
      const __m128i bhi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, bv), 8);
      acc[k] = _mm_add_epi32(acc[k], _mm_madd_epi16(alo, blo));
      acc[k] = _mm_add_epi32(acc[k], _mm_madd_epi16(ahi, bhi));
    }
  }
  for (int k = 0; k < 4; ++k) {
    __m128i s = acc[k];
    s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    out[k] = _mm_cvtsi128_si32(s);
  }
}

void requantize_sse2(const std::int32_t* acc, std::int8_t* out, int shift,
                     bool relu, int n) {
  if (shift < 0 || shift > 30) {
    requantize_scalar(acc, out, shift, relu, n);
    return;
  }
  const __m128i half = _mm_set1_epi32(shift > 0 ? (1 << (shift - 1)) : 0);
  const __m128i count = _mm_cvtsi32_si128(shift);
  const __m128i lo = _mm_set1_epi32(nn::kInt8Min);
  const __m128i hi = _mm_set1_epi32(nn::kInt8Max);
  const __m128i zero = _mm_setzero_si128();
  for (int g = 0; g < n; ++g) {
    const __m128i* a = reinterpret_cast<const __m128i*>(acc + g * 16);
    __m128i q[4];
    for (int k = 0; k < 4; ++k) {
      const __m128i v = _mm_loadu_si128(a + k);
      // Round half away from zero: |v|, add half, logical shift, re-sign.
      // |v| + half < 2^32 and the shifted result < 2^31 for shift >= 1, so
      // the unsigned arithmetic is exact (including v == INT32_MIN).
      const __m128i s = _mm_srai_epi32(v, 31);
      const __m128i absv = _mm_sub_epi32(_mm_xor_si128(v, s), s);
      const __m128i t = _mm_srl_epi32(_mm_add_epi32(absv, half), count);
      __m128i r = _mm_sub_epi32(_mm_xor_si128(t, s), s);
      if (relu) r = _mm_and_si128(r, _mm_cmpgt_epi32(r, zero));
      // clamp(r, lo, hi) without SSE4.1 min/max_epi32.
      __m128i gt = _mm_cmpgt_epi32(r, hi);
      r = _mm_or_si128(_mm_and_si128(gt, hi), _mm_andnot_si128(gt, r));
      gt = _mm_cmpgt_epi32(lo, r);
      r = _mm_or_si128(_mm_and_si128(gt, lo), _mm_andnot_si128(gt, r));
      q[k] = r;
    }
    // Values are already in [-127, 127]; the saturating packs are lossless.
    const __m128i p16a = _mm_packs_epi32(q[0], q[1]);
    const __m128i p16b = _mm_packs_epi32(q[2], q[3]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + g * 16),
                     _mm_packs_epi16(p16a, p16b));
  }
}

std::int8_t masked_max16_sse2(const std::int8_t* v, const std::uint8_t* mask) {
  const __m128i val = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
  const __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask));
  const __m128i fill = _mm_set1_epi8(static_cast<char>(nn::kInt8Min));
  const __m128i sel =
      _mm_or_si128(_mm_and_si128(m, val), _mm_andnot_si128(m, fill));
  // Signed byte max via the unsigned max after an XOR 0x80 bias (SSE2 has
  // only _mm_max_epu8).
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  __m128i x = _mm_xor_si128(sel, bias);
  x = _mm_max_epu8(x, _mm_srli_si128(x, 8));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 4));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 2));
  x = _mm_max_epu8(x, _mm_srli_si128(x, 1));
  return static_cast<std::int8_t>(
      static_cast<std::uint8_t>(_mm_cvtsi128_si32(x) & 0xff) ^ 0x80u);
}

// SSE2 has neither pshufb nor pmaxsb: horizontal maxes run in the unsigned
// domain after an XOR 0x80 bias (like masked_max16_sse2) and the unit-pick
// shuffle becomes four compare-and-mask broadcasts.  All masks come straight
// from the precompiled ctl block.
void pool_step_sse2(const std::int8_t* tile, const PoolStepCtl& ctl,
                    std::int8_t* out) {
  const __m128i val = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tile));
  const __m128i fill = _mm_set1_epi8(static_cast<char>(nn::kInt8Min));
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  __m128i hmax[4];  // each unit's max, biased unsigned, broadcast to 16 bytes
  for (int m = 0; m < 4; ++m) {
    const __m128i mk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.max_mask[m]));
    const __m128i sel =
        _mm_or_si128(_mm_and_si128(mk, val), _mm_andnot_si128(mk, fill));
    __m128i x = _mm_xor_si128(sel, bias);
    x = _mm_max_epu8(x, _mm_srli_si128(x, 8));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 4));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 2));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 1));
    hmax[m] = _mm_set1_epi8(static_cast<char>(_mm_cvtsi128_si32(x) & 0xff));
  }
  // u[i] = the (biased) max of the unit byte i selects; unit4 values are
  // {0, 4, 8, 12}, so exactly one compare matches per byte.
  const __m128i unit4 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.unit4));
  __m128i u = _mm_setzero_si128();
  for (int m = 0; m < 4; ++m) {
    const __m128i pick =
        _mm_cmpeq_epi8(unit4, _mm_set1_epi8(static_cast<char>(4 * m)));
    u = _mm_or_si128(u, _mm_and_si128(pick, hmax[m]));
  }
  const __m128i oldv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out));
  const __m128i comb =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.comb));
  const __m128i take =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.take));
  // candidate = max(comb ? old : fill, u), computed in the biased domain;
  // take bytes see fill (the identity of the max tree), so they get u.
  const __m128i oldb = _mm_xor_si128(oldv, bias);
  const __m128i fillb = _mm_xor_si128(fill, bias);
  const __m128i base =
      _mm_or_si128(_mm_and_si128(comb, oldb), _mm_andnot_si128(comb, fillb));
  const __m128i cand = _mm_xor_si128(_mm_max_epu8(base, u), bias);
  const __m128i wr = _mm_or_si128(take, comb);
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(out),
      _mm_or_si128(_mm_and_si128(wr, cand), _mm_andnot_si128(wr, oldv)));
}

bool is_zero_sse2(const std::int8_t* x, int n) {
  __m128i any = _mm_setzero_si128();
  for (int g = 0; g < n; ++g)
    any = _mm_or_si128(
        any, _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + g * 16)));
  return _mm_movemask_epi8(_mm_cmpeq_epi8(any, _mm_setzero_si128())) == 0xffff;
}

constexpr SimdBackend kSse2{"sse2",        16,
                            mac_sse2,      conv_run_sse2,
                            nullptr,
                            dot_sse2,      dot4_sse2,
                            requantize_sse2,
                            masked_max16_sse2, pool_step_sse2,
                            is_zero_sse2};

// --- AVX2 (32 int8 lanes per iteration) ----------------------------------

__attribute__((target("avx2"))) void mac_avx2(std::int32_t* acc,
                                              const std::int8_t* x,
                                              std::int8_t w, int n) {
  const __m256i wv = _mm256_set1_epi32(w);
  for (int g = 0; g < n; ++g) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + g * 16));
    const __m256i v0 = _mm256_cvtepi8_epi32(b);
    const __m256i v1 = _mm256_cvtepi8_epi32(_mm_srli_si128(b, 8));
    std::int32_t* a = acc + g * 16;
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(a),
        _mm256_add_epi32(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
            _mm256_mullo_epi32(v0, wv)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(a + 8),
        _mm256_add_epi32(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 8)),
            _mm256_mullo_epi32(v1, wv)));
  }
}

__attribute__((target("avx2"))) int conv_run_avx2(
    std::int32_t* acc, std::size_t stride, const MacRunEntry* e, int count,
    const std::int8_t* src, std::ptrdiff_t img_stride,
    std::ptrdiff_t row_stride, int n) {
  int nz_images = 0;
  for (int i0 = 0; i0 < n; i0 += kConvRunChunk) {
    const int chunk = n - i0 < kConvRunChunk ? n - i0 : kConvRunChunk;
    __m256i xi[2 * kConvRunChunk];
    std::int32_t aoff[kConvRunChunk];
    int m = 0;
    for (int i = 0; i < chunk; ++i) {
      const std::int8_t* s = src + (i0 + i) * img_stride;
      const __m128i r =
          _mm_setr_epi32(load_row32(s), load_row32(s + row_stride),
                         load_row32(s + 2 * row_stride),
                         load_row32(s + 3 * row_stride));
      if (_mm_testz_si128(r, r) != 0) continue;
      xi[2 * m + 0] = _mm256_cvtepi8_epi32(r);
      xi[2 * m + 1] = _mm256_cvtepi8_epi32(_mm_srli_si128(r, 8));
      aoff[m] = (i0 + i) * 16;
      ++m;
    }
    nz_images += m;
    if (m == 0) continue;
    for (int k = 0; k < count; ++k) {
      const __m256i wv = _mm256_set1_epi32(e[k].w);
      std::int32_t* const base = acc + e[k].row * stride;
      for (int j = 0; j < m; ++j) {
        std::int32_t* a = base + aoff[j];
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(a),
            _mm256_add_epi32(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
                _mm256_mullo_epi32(xi[2 * j + 0], wv)));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(a + 8),
            _mm256_add_epi32(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 8)),
                _mm256_mullo_epi32(xi[2 * j + 1], wv)));
      }
    }
  }
  return nz_images;
}

__attribute__((target("avx2"))) std::int32_t dot_avx2(const std::int8_t* a,
                                                      const std::int8_t* b,
                                                      int n) {
  __m256i acc = _mm256_setzero_si256();
  for (int g = 0; g < n; ++g) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + g * 16)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + g * 16)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2"))) void dot4_avx2(const std::int8_t* a,
                                               const std::int8_t* const b[4],
                                               int n, std::int32_t out[4]) {
  __m256i acc[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                    _mm256_setzero_si256(), _mm256_setzero_si256()};
  for (int g = 0; g < n; ++g) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + g * 16)));
    for (int k = 0; k < 4; ++k) {
      const __m256i bv = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b[k] + g * 16)));
      acc[k] = _mm256_add_epi32(acc[k], _mm256_madd_epi16(av, bv));
    }
  }
  for (int k = 0; k < 4; ++k) {
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc[k]),
                              _mm256_extracti128_si256(acc[k], 1));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    out[k] = _mm_cvtsi128_si32(s);
  }
}

__attribute__((target("avx2"))) void requantize_avx2(const std::int32_t* acc,
                                                     std::int8_t* out,
                                                     int shift, bool relu,
                                                     int n) {
  if (shift < 0 || shift > 30) {
    requantize_scalar(acc, out, shift, relu, n);
    return;
  }
  const __m256i half = _mm256_set1_epi32(shift > 0 ? (1 << (shift - 1)) : 0);
  const __m128i count = _mm_cvtsi32_si128(shift);
  const __m256i lo = _mm256_set1_epi32(nn::kInt8Min);
  const __m256i hi = _mm256_set1_epi32(nn::kInt8Max);
  const __m256i zero = _mm256_setzero_si256();
  for (int g = 0; g < n; ++g) {
    __m256i q[2];
    for (int k = 0; k < 2; ++k) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(acc + g * 16 + k * 8));
      const __m256i s = _mm256_srai_epi32(v, 31);
      const __m256i absv = _mm256_abs_epi32(v);
      const __m256i t = _mm256_srl_epi32(_mm256_add_epi32(absv, half), count);
      __m256i r = _mm256_sub_epi32(_mm256_xor_si256(t, s), s);
      if (relu) r = _mm256_max_epi32(r, zero);
      r = _mm256_min_epi32(_mm256_max_epi32(r, lo), hi);
      q[k] = r;
    }
    // packs_epi32 interleaves 128-bit lanes; permute the qwords back into
    // order before the final 16-bit pack.
    __m256i p16 = _mm256_packs_epi32(q[0], q[1]);
    p16 = _mm256_permute4x64_epi64(p16, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i lo16 = _mm256_castsi256_si128(p16);
    const __m128i hi16 = _mm256_extracti128_si256(p16, 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + g * 16),
                     _mm_packs_epi16(lo16, hi16));
  }
}

__attribute__((target("avx2"))) bool is_zero_avx2(const std::int8_t* x,
                                                  int n) {
  __m256i any = _mm256_setzero_si256();
  int g = 0;
  for (; g + 1 < n; g += 2)
    any = _mm256_or_si256(
        any, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + g * 16)));
  if (g < n) {
    const __m128i tail =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + g * 16));
    any = _mm256_or_si256(any, _mm256_castsi128_si256(tail));
  }
  return _mm256_testz_si256(any, any) != 0;
}

// With pmaxsb/pshufb/pblendvb in reach the maxes run signed directly and the
// whole mux is three instructions: pack the four unit maxes at bytes
// {0, 4, 8, 12} (matching ctl.unit4), pshufb-route, blend.
__attribute__((target("avx2"))) void pool_step_avx2(const std::int8_t* tile,
                                                    const PoolStepCtl& ctl,
                                                    std::int8_t* out) {
  const __m128i val = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tile));
  const __m128i fill = _mm_set1_epi8(static_cast<char>(nn::kInt8Min));
  __m128i h[4];  // byte 0 = unit m's masked max
  for (int m = 0; m < 4; ++m) {
    const __m128i mk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.max_mask[m]));
    __m128i x = _mm_blendv_epi8(fill, val, mk);
    x = _mm_max_epi8(x, _mm_srli_si128(x, 8));
    x = _mm_max_epi8(x, _mm_srli_si128(x, 4));
    x = _mm_max_epi8(x, _mm_srli_si128(x, 2));
    x = _mm_max_epi8(x, _mm_srli_si128(x, 1));
    h[m] = x;
  }
  const __m128i t0 = _mm_unpacklo_epi32(h[0], h[1]);
  const __m128i t1 = _mm_unpacklo_epi32(h[2], h[3]);
  const __m128i packed = _mm_unpacklo_epi64(t0, t1);  // unit m max at byte 4m
  const __m128i u = _mm_shuffle_epi8(
      packed, _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.unit4)));
  const __m128i oldv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out));
  const __m128i comb =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.comb));
  const __m128i take =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.take));
  const __m128i cand = _mm_max_epi8(_mm_blendv_epi8(fill, oldv, comb), u);
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(out),
      _mm_blendv_epi8(oldv, cand, _mm_or_si128(take, comb)));
}

constexpr SimdBackend kAvx2{"avx2",        32,
                            mac_avx2,      conv_run_avx2,
                            nullptr,
                            dot_avx2,      dot4_avx2,
                            requantize_avx2,
                            masked_max16_sse2, pool_step_avx2,
                            is_zero_avx2};

// --- AVX-512 (64 int8 lanes per iteration) -------------------------------

#define TSCA_AVX512_TARGET __attribute__((target("avx512f,avx512bw")))

TSCA_AVX512_TARGET void mac_avx512(std::int32_t* acc, const std::int8_t* x,
                                   std::int8_t w, int n) {
  const __m512i wv = _mm512_set1_epi32(w);
  int g = 0;
  // Four 16-value groups (one whole 64-byte vector of int8) per iteration.
  for (; g + 3 < n; g += 4) {
    const __m512i b =
        _mm512_loadu_si512(reinterpret_cast<const void*>(x + g * 16));
    std::int32_t* a = acc + g * 16;
    const __m512i v0 = _mm512_cvtepi8_epi32(_mm512_castsi512_si128(b));
    const __m512i v1 = _mm512_cvtepi8_epi32(_mm512_extracti32x4_epi32(b, 1));
    const __m512i v2 = _mm512_cvtepi8_epi32(_mm512_extracti32x4_epi32(b, 2));
    const __m512i v3 = _mm512_cvtepi8_epi32(_mm512_extracti32x4_epi32(b, 3));
    _mm512_storeu_si512(a, _mm512_add_epi32(_mm512_loadu_si512(a),
                                            _mm512_mullo_epi32(v0, wv)));
    _mm512_storeu_si512(
        a + 16, _mm512_add_epi32(_mm512_loadu_si512(a + 16),
                                 _mm512_mullo_epi32(v1, wv)));
    _mm512_storeu_si512(
        a + 32, _mm512_add_epi32(_mm512_loadu_si512(a + 32),
                                 _mm512_mullo_epi32(v2, wv)));
    _mm512_storeu_si512(
        a + 48, _mm512_add_epi32(_mm512_loadu_si512(a + 48),
                                 _mm512_mullo_epi32(v3, wv)));
  }
  for (; g < n; ++g) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + g * 16));
    std::int32_t* a = acc + g * 16;
    _mm512_storeu_si512(
        a, _mm512_add_epi32(_mm512_loadu_si512(a),
                            _mm512_mullo_epi32(_mm512_cvtepi8_epi32(b), wv)));
  }
}

TSCA_AVX512_TARGET int conv_run_avx512(std::int32_t* acc, std::size_t stride,
                                       const MacRunEntry* e, int count,
                                       const std::int8_t* src,
                                       std::ptrdiff_t img_stride,
                                       std::ptrdiff_t row_stride, int n) {
  int nz_images = 0;
  for (int i0 = 0; i0 < n; i0 += kConvRunChunk) {
    const int chunk = n - i0 < kConvRunChunk ? n - i0 : kConvRunChunk;
    // One image's widened region is exactly one int32 vector.
    __m512i xi[kConvRunChunk];
    std::int32_t aoff[kConvRunChunk];
    int m = 0;
    for (int i = 0; i < chunk; ++i) {
      const std::int8_t* s = src + (i0 + i) * img_stride;
      const __m128i r =
          _mm_setr_epi32(load_row32(s), load_row32(s + row_stride),
                         load_row32(s + 2 * row_stride),
                         load_row32(s + 3 * row_stride));
      // Branchless compaction: always write the slot, bump m only when the
      // region is live.  Skip-heavy layers mispredict the obvious `continue`
      // on nearly every image; the unconditional store is cheaper.
      xi[m] = _mm512_cvtepi8_epi32(r);
      aoff[m] = (i0 + i) * 16;
      m += _mm_testz_si128(r, r) == 0 ? 1 : 0;
    }
    nz_images += m;
    if (m == 0) continue;
    if (m == chunk) {
      // No image skipped: accumulator rows are contiguous, walk them with a
      // bumped pointer instead of the aoff indirection.
      for (int k = 0; k < count; ++k) {
        const __m512i wv = _mm512_set1_epi32(e[k].w);
        std::int32_t* a = acc + e[k].row * stride + i0 * 16;
        for (int j = 0; j < m; ++j, a += 16)
          _mm512_storeu_si512(
              a, _mm512_add_epi32(_mm512_loadu_si512(a),
                                  _mm512_mullo_epi32(xi[j], wv)));
      }
      continue;
    }
    for (int k = 0; k < count; ++k) {
      const __m512i wv = _mm512_set1_epi32(e[k].w);
      std::int32_t* const base = acc + e[k].row * stride;
      for (int j = 0; j < m; ++j) {
        std::int32_t* a = base + aoff[j];
        _mm512_storeu_si512(
            a, _mm512_add_epi32(_mm512_loadu_si512(a),
                                _mm512_mullo_epi32(xi[j], wv)));
      }
    }
  }
  return nz_images;
}

// The whole-window kernel needs byte permutes (VBMI) and int8 dot-accumulate
// (VNNI) on top of the backend's baseline; conv_win_host_ok() gates calls.
#define TSCA_AVX512_WIN_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512dq,avx512vbmi,avx512vnni")))

TSCA_AVX512_WIN_TARGET void conv_win_avx512(
    std::int32_t* acc, std::size_t stride, const std::uint8_t* idx,
    const std::uint32_t* w, const std::int32_t* corr,
    const std::uint16_t* qrow, int quads, const std::int8_t* src,
    std::ptrdiff_t img_stride, std::ptrdiff_t row_stride, int n,
    std::uint64_t* masks) {
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  for (int i0 = 0; i0 < n; i0 += kConvRunChunk) {
    const int chunk = n - i0 < kConvRunChunk ? n - i0 : kConvRunChunk;
    // One image's 8×8 window is exactly one byte vector, biased to the
    // unsigned domain for vpdpbusd (corr removes the bias exactly).
    __m512i win[kConvRunChunk];
    std::int32_t aoff[kConvRunChunk];
    int m = 0;
    for (int i = 0; i < chunk; ++i) {
      const std::int8_t* s = src + (i0 + i) * img_stride;
      const __m128i r01 =
          _mm_set_epi64x(load_row64(s + row_stride), load_row64(s));
      const __m128i r23 = _mm_set_epi64x(load_row64(s + 3 * row_stride),
                                         load_row64(s + 2 * row_stride));
      const __m128i r45 = _mm_set_epi64x(load_row64(s + 5 * row_stride),
                                         load_row64(s + 4 * row_stride));
      const __m128i r67 = _mm_set_epi64x(load_row64(s + 7 * row_stride),
                                         load_row64(s + 6 * row_stride));
      __m512i wv = _mm512_castsi128_si512(r01);
      wv = _mm512_inserti64x2(wv, r23, 1);
      wv = _mm512_inserti64x2(wv, r45, 2);
      wv = _mm512_inserti64x2(wv, r67, 3);
      const std::uint64_t mk =
          _cvtmask64_u64(_mm512_test_epi8_mask(wv, wv));
      masks[i0 + i] = mk;
      win[m] = _mm512_xor_si512(wv, bias);
      aoff[m] = (i0 + i) * 16;
      m += mk != 0 ? 1 : 0;
    }
    if (m == 0) continue;
    for (int q = 0; q < quads; ++q) {
      const __m512i ix =
          _mm512_loadu_si512(idx + static_cast<std::size_t>(q) * 64);
      const __m512i wv = _mm512_set1_epi32(static_cast<int>(w[q]));
      const __m512i cv = _mm512_set1_epi32(corr[q]);
      std::int32_t* const base = acc + qrow[q] * stride;
      for (int j = 0; j < m; ++j) {
        std::int32_t* a = base + aoff[j];
        const __m512i quadv = _mm512_permutexvar_epi8(ix, win[j]);
        __m512i av = _mm512_loadu_si512(a);
        av = _mm512_dpbusd_epi32(av, quadv, wv);
        av = _mm512_sub_epi32(av, cv);
        _mm512_storeu_si512(a, av);
      }
    }
  }
}

TSCA_AVX512_TARGET std::int32_t dot_avx512(const std::int8_t* a,
                                           const std::int8_t* b, int n) {
  __m512i acc = _mm512_setzero_si512();
  int g = 0;
  // Two 16-value groups (32 int8 → 32 int16 → madd) per iteration.
  for (; g + 1 < n; g += 2) {
    const __m512i av = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + g * 16)));
    const __m512i bv = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + g * 16)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(av, bv));
  }
  std::uint32_t total =
      static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc));
  if (g < n)
    total += static_cast<std::uint32_t>(dot_sse2(a + g * 16, b + g * 16, 1));
  return static_cast<std::int32_t>(total);
}

TSCA_AVX512_TARGET void dot4_avx512(const std::int8_t* a,
                                    const std::int8_t* const b[4], int n,
                                    std::int32_t out[4]) {
  // Same group order and reduction as dot_avx512, with the shared stream's
  // widened groups loaded once for all four dot products.
  __m512i acc[4] = {_mm512_setzero_si512(), _mm512_setzero_si512(),
                    _mm512_setzero_si512(), _mm512_setzero_si512()};
  int g = 0;
  for (; g + 1 < n; g += 2) {
    const __m512i av = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + g * 16)));
    for (int k = 0; k < 4; ++k) {
      const __m512i bv = _mm512_cvtepi8_epi16(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b[k] + g * 16)));
      acc[k] = _mm512_add_epi32(acc[k], _mm512_madd_epi16(av, bv));
    }
  }
  for (int k = 0; k < 4; ++k) {
    std::uint32_t total =
        static_cast<std::uint32_t>(_mm512_reduce_add_epi32(acc[k]));
    if (g < n)
      total +=
          static_cast<std::uint32_t>(dot_sse2(a + g * 16, b[k] + g * 16, 1));
    out[k] = static_cast<std::int32_t>(total);
  }
}

TSCA_AVX512_TARGET void requantize_avx512(const std::int32_t* acc,
                                          std::int8_t* out, int shift,
                                          bool relu, int n) {
  if (shift < 0 || shift > 30) {
    requantize_scalar(acc, out, shift, relu, n);
    return;
  }
  const __m512i half = _mm512_set1_epi32(shift > 0 ? (1 << (shift - 1)) : 0);
  const __m128i count = _mm_cvtsi32_si128(shift);
  const __m512i lo = _mm512_set1_epi32(nn::kInt8Min);
  const __m512i hi = _mm512_set1_epi32(nn::kInt8Max);
  const __m512i zero = _mm512_setzero_si512();
  for (int g = 0; g < n; ++g) {
    const __m512i v = _mm512_loadu_si512(acc + g * 16);
    const __m512i s = _mm512_srai_epi32(v, 31);
    const __m512i absv = _mm512_abs_epi32(v);
    const __m512i t = _mm512_srl_epi32(_mm512_add_epi32(absv, half), count);
    __m512i r = _mm512_sub_epi32(_mm512_xor_si512(t, s), s);
    if (relu) r = _mm512_max_epi32(r, zero);
    r = _mm512_min_epi32(_mm512_max_epi32(r, lo), hi);
    // Values are in [-127, 127]: the saturating narrow is lossless.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + g * 16),
                     _mm512_cvtsepi32_epi8(r));
  }
}

TSCA_AVX512_TARGET bool is_zero_avx512(const std::int8_t* x, int n) {
  int g = 0;
  __mmask64 any = 0;
  for (; g + 3 < n; g += 4)
    any |= _mm512_test_epi8_mask(
        _mm512_loadu_si512(reinterpret_cast<const void*>(x + g * 16)),
        _mm512_set1_epi8(-1));
  __m128i tail = _mm_setzero_si128();
  for (; g < n; ++g)
    tail = _mm_or_si128(
        tail, _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + g * 16)));
  return any == 0 &&
         _mm_movemask_epi8(_mm_cmpeq_epi8(tail, _mm_setzero_si128())) ==
             0xffff;
}

// All four MAX units reduce in parallel: the tile broadcast into the four
// 128-bit lanes of one zmm, the contiguous ctl.max_mask block selecting each
// lane's bytes in a single ternlog, and vpsrldq (which shifts per 128-bit
// lane) running the four horizontal maxes at once.
TSCA_AVX512_TARGET void pool_step_avx512(const std::int8_t* tile,
                                         const PoolStepCtl& ctl,
                                         std::int8_t* out) {
  const __m128i val = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tile));
  const __m512i t = _mm512_broadcast_i32x4(val);
  const __m512i mk = _mm512_loadu_si512(ctl.max_mask);  // unit m in lane m
  const __m512i fill512 = _mm512_set1_epi8(static_cast<char>(nn::kInt8Min));
  // 0xCA: bitwise mk ? t : fill.
  __m512i x = _mm512_ternarylogic_epi32(mk, t, fill512, 0xCA);
  x = _mm512_max_epi8(x, _mm512_bsrli_epi128(x, 8));
  x = _mm512_max_epi8(x, _mm512_bsrli_epi128(x, 4));
  x = _mm512_max_epi8(x, _mm512_bsrli_epi128(x, 2));
  x = _mm512_max_epi8(x, _mm512_bsrli_epi128(x, 1));
  // Byte 0 of lane m = unit m's max; collect the lane-leading dwords so unit
  // m sits at byte 4m (ctl.unit4's layout), then route and blend as in AVX2.
  const __m512i idx =
      _mm512_setr_epi32(0, 4, 8, 12, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0);
  const __m128i packed =
      _mm512_castsi512_si128(_mm512_permutexvar_epi32(idx, x));
  const __m128i u = _mm_shuffle_epi8(
      packed, _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.unit4)));
  const __m128i fill = _mm_set1_epi8(static_cast<char>(nn::kInt8Min));
  const __m128i oldv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out));
  const __m128i comb =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.comb));
  const __m128i take =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctl.take));
  const __m128i cand = _mm_max_epi8(_mm_blendv_epi8(fill, oldv, comb), u);
  _mm_storeu_si128(
      reinterpret_cast<__m128i*>(out),
      _mm_blendv_epi8(oldv, cand, _mm_or_si128(take, comb)));
}

constexpr SimdBackend kAvx512{"avx512",      64,
                              mac_avx512,    conv_run_avx512,
                              conv_win_avx512,
                              dot_avx512,    dot4_avx512,
                              requantize_avx512,
                              masked_max16_sse2, pool_step_avx512,
                              is_zero_avx512};

#endif  // TSCA_SIMD_X86

bool host_supports(const SimdBackend& b) {
#if defined(TSCA_SIMD_X86)
  if (&b == &kAvx2) return __builtin_cpu_supports("avx2") != 0;
  if (&b == &kAvx512)
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0;
#endif
  (void)b;
  return true;  // scalar and the compile-time baseline (SSE2)
}

const SimdBackend* const kAll[] = {
    &kScalar,
#if defined(TSCA_SIMD_X86)
    &kSse2,
    &kAvx2,
    &kAvx512,
#endif
};

const SimdBackend* find(const char* name) {
  for (const SimdBackend* b : kAll)
    if (std::strcmp(b->name, name) == 0 && host_supports(*b)) return b;
  return nullptr;
}

const SimdBackend* pick_default() {
  // Widest supported wins; TSCA_FORCE_BACKEND overrides, and a name that
  // does not resolve is a hard error — a forced test matrix must never
  // silently measure the wrong kernels.
  if (const char* forced = std::getenv("TSCA_FORCE_BACKEND")) {
    const SimdBackend* b = find(forced);
    TSCA_CHECK(b != nullptr, "TSCA_FORCE_BACKEND=" << forced
                                                   << " is unknown, compiled "
                                                      "out, or unsupported "
                                                      "by this CPU");
    return b;
  }
  const SimdBackend* best = &kScalar;
  for (const SimdBackend* b : kAll)
    if (host_supports(*b) && b->width >= best->width) best = b;
  return best;
}

std::atomic<const SimdBackend*>& active() {
  static std::atomic<const SimdBackend*> a{pick_default()};
  return a;
}

}  // namespace

const SimdBackend& backend() {
  return *active().load(std::memory_order_acquire);
}

bool conv_win_host_ok() {
#if defined(TSCA_SIMD_X86)
  static const bool ok = __builtin_cpu_supports("avx512vbmi") != 0 &&
                         __builtin_cpu_supports("avx512vnni") != 0;
  return ok;
#else
  return false;
#endif
}

std::vector<const SimdBackend*> available_backends() {
  std::vector<const SimdBackend*> out;
  for (const SimdBackend* b : kAll)
    if (host_supports(*b)) out.push_back(b);
  return out;
}

bool select_backend(const char* name) {
  const SimdBackend* b = find(name);
  if (b == nullptr) return false;
  active().store(b, std::memory_order_release);
  return true;
}

}  // namespace tsca::core::simd
