#include "core/config.hpp"

#include <vector>

namespace tsca::core {

ArchConfig ArchConfig::k16_unopt() {
  ArchConfig cfg;
  cfg.name = "16-unopt";
  cfg.lanes = 1;
  cfg.group = 1;
  cfg.instances = 1;
  // A single lane keeps the whole bank budget: 4 banks' worth of RAM.
  cfg.bank_words = 4 * 32 * 1024;
  cfg.clock_mhz = 55.0;
  cfg.optimized_build = false;
  return cfg;
}

ArchConfig ArchConfig::k256_unopt() {
  ArchConfig cfg;
  cfg.name = "256-unopt";
  cfg.clock_mhz = 55.0;
  cfg.optimized_build = false;
  return cfg;
}

ArchConfig ArchConfig::k256_opt() {
  ArchConfig cfg;
  cfg.name = "256-opt";
  cfg.clock_mhz = 150.0;
  cfg.optimized_build = true;
  return cfg;
}

ArchConfig ArchConfig::k512_opt() {
  ArchConfig cfg;
  cfg.name = "512-opt";
  cfg.instances = 2;
  // Two instances share the FPGA's RAM blocks: half the bank size each.
  cfg.bank_words = 16 * 1024;
  cfg.clock_mhz = 120.0;
  cfg.optimized_build = true;
  return cfg;
}

const std::vector<ArchConfig>& ArchConfig::paper_variants() {
  static const std::vector<ArchConfig> variants = {
      k16_unopt(), k256_unopt(), k256_opt(), k512_opt()};
  return variants;
}

}  // namespace tsca::core
