// End-to-end network execution through the driver and accelerator.
//
// A channel-scaled VGG-16 (identical topology, fewer channels) runs through
// the full flow — quantization, pruning, packing, striping, DMA, both
// execution engines — and must match the int8 reference network bit-exactly
// and the float oracle within quantization error.
#include <gtest/gtest.h>

#include <cmath>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapF random_image(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapF fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
  return fm;
}

struct Scenario {
  nn::Network net;
  nn::WeightsF weights;
  quant::QuantizedModel model;
  nn::FeatureMapF input_f;
};

Scenario make_scenario(bool pruned, std::uint64_t seed) {
  Rng rng(seed);
  nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 16, .num_classes = 10});
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  if (pruned)
    quant::prune_weights(net, weights, quant::vgg16_han_profile());
  const nn::FeatureMapF image = random_image(net.input_shape(), rng);
  quant::QuantizedModel model = quant::quantize_network(net, weights, {image});
  return Scenario{std::move(net), std::move(weights), std::move(model), image};
}

nn::FeatureMapI8 quantized_input(const Scenario& s) {
  return quant::quantize_fm(s.input_f, s.model.input_exp);
}

core::ArchConfig test_config() {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 128;  // small banks force striping on most layers
  return cfg;
}

TEST(NetworkE2E, ScaledVgg16MatchesInt8ReferenceCycleMode) {
  const Scenario s = make_scenario(/*pruned=*/true, 42);
  const nn::FeatureMapI8 input = quantized_input(s);
  const std::vector<nn::ActivationI8> ref =
      nn::forward_i8_all(s.net, s.model.weights, input);

  core::Accelerator acc(test_config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma,
                          {.mode = driver::ExecMode::kCycle,
                           .keep_activations = true});
  const driver::NetworkRun run = runtime.run_network(s.net, s.model, input);

  ASSERT_TRUE(run.flat_output);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(run.logits, ref.back().flat) << "final logits differ";

  // Every on-accelerator feature map must match the reference layer by layer.
  std::size_t act = 0;
  for (std::size_t i = 0; i < s.net.layers().size(); ++i) {
    if (ref[i].is_flat) break;
    ASSERT_LT(act, run.activations.size());
    EXPECT_EQ(run.activations[act], ref[i].fm)
        << "layer " << s.net.layers()[i].name;
    ++act;
  }
  // Cycle counts and stripes were actually exercised.
  std::uint64_t total_cycles = 0;
  int striped_layers = 0;
  for (const driver::LayerRun& lr : run.layers) {
    total_cycles += lr.cycles;
    if (lr.stripes > 1) ++striped_layers;
  }
  EXPECT_GT(total_cycles, 6'000u);
  EXPECT_GT(striped_layers, 0);
}

TEST(NetworkE2E, ThreadAndCycleEnginesAgreeBitExactly) {
  const Scenario s = make_scenario(/*pruned=*/true, 7);
  const nn::FeatureMapI8 input = quantized_input(s);

  auto run_mode = [&](driver::ExecMode mode) {
    core::Accelerator acc(test_config());
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = mode});
    return runtime.run_network(s.net, s.model, input);
  };
  const driver::NetworkRun cycle = run_mode(driver::ExecMode::kCycle);
  const driver::NetworkRun thread = run_mode(driver::ExecMode::kThread);
  const driver::NetworkRun fast = run_mode(driver::ExecMode::kFast);
  EXPECT_EQ(cycle.logits, thread.logits);
  EXPECT_EQ(cycle.logits, fast.logits);
}

TEST(NetworkE2E, QuantizedPipelineTracksFloatOracle) {
  const Scenario s = make_scenario(/*pruned=*/false, 11);
  const nn::FeatureMapI8 input = quantized_input(s);

  core::Accelerator acc(test_config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  const driver::NetworkRun run = runtime.run_network(s.net, s.model, input);

  // Float oracle logits (last FC output, before softmax).
  const std::vector<nn::ActivationF> facts =
      nn::forward_f_all(s.net, s.weights, s.input_f);
  std::vector<float> flogits;
  for (std::size_t i = 0; i < s.net.layers().size(); ++i)
    if (s.net.layers()[i].kind == nn::LayerKind::kFullyConnected)
      flogits = facts[i].flat;
  ASSERT_FALSE(flogits.empty());
  ASSERT_EQ(flogits.size(), run.logits.size());

  const auto argmax_f = static_cast<std::size_t>(
      std::max_element(flogits.begin(), flogits.end()) - flogits.begin());
  const auto argmax_q = static_cast<std::size_t>(
      std::max_element(run.logits.begin(), run.logits.end()) -
      run.logits.begin());
  // Quantized and float argmax must agree on this input (strong signal that
  // scaling/shift bookkeeping is right end to end).
  EXPECT_EQ(argmax_q, argmax_f);
}

}  // namespace
}  // namespace tsca
