// NetworkProgram compile/execute split: compiling once and executing many
// times — serially or across pool workers sharing one const program — must be
// bit-identical to the seed's compile-per-request path in outputs, cycle
// counts, hardware counters, and DMA statistics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/accelerator_pool.hpp"
#include "driver/pool_runtime.hpp"
#include "driver/program.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "pack/weight_pack.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));
  return bank;
}

void expect_same_run(const driver::LayerRun& a, const driver::LayerRun& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stripes, b.stripes);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.dma, b.dma);
}

void expect_same_network_run(const driver::NetworkRun& a,
                             const driver::NetworkRun& b) {
  EXPECT_EQ(a.flat_output, b.flat_output);
  EXPECT_EQ(a.logits, b.logits);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    SCOPED_TRACE("layer " + a.layers[l].name);
    EXPECT_EQ(a.layers[l].name, b.layers[l].name);
    EXPECT_EQ(a.layers[l].kind, b.layers[l].kind);
    expect_same_run(a.layers[l], b.layers[l]);
  }
}

core::ArchConfig striped_config(int instances = 1) {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 128;  // small banks force stripes + weight chunks
  cfg.instances = instances;
  return cfg;
}

struct Vgg16Fixture {
  explicit Vgg16Fixture(std::uint64_t seed) : rng(seed) {
    net = nn::build_vgg16(
        {.input_extent = 32, .channel_divisor = 16, .num_classes = 10});
    nn::WeightsF weights = nn::init_random_weights(net, rng);
    quant::prune_weights(net, weights, quant::vgg16_han_profile());
    nn::FeatureMapF calib(net.input_shape());
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
    model = quant::quantize_network(net, weights, {calib});
  }

  Rng rng;
  nn::Network net{nn::FmShape{}};
  quant::QuantizedModel model;
};

// The compiled step list mirrors the network: every layer is covered exactly
// once, fused steps consume the pad and the following conv, and disabling
// fusion removes every fused step.
TEST(Program, CompileResolvesStepsAndFusion) {
  Vgg16Fixture fx(301);
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();

  const driver::NetworkProgram fused =
      driver::NetworkProgram::compile(fx.net, fx.model, cfg);
  std::size_t covered = 0;
  bool any_fused = false;
  for (const driver::NetworkProgram::Step& step : fused.steps()) {
    EXPECT_EQ(step.layer, covered);
    if (step.exec == driver::NetworkProgram::Step::Exec::kFusedPadConv) {
      any_fused = true;
      EXPECT_GE(step.conv, 0);
      EXPECT_GE(step.fused, 0);
      // Fused layers carry no striped plan; striped layers always do.
      EXPECT_TRUE(fused.conv(step.conv).plan.stripes.empty());
      covered += 2;
    } else {
      if (step.exec == driver::NetworkProgram::Step::Exec::kConv)
        EXPECT_FALSE(fused.conv(step.conv).plan.stripes.empty());
      covered += 1;
    }
  }
  EXPECT_EQ(covered, fx.net.layers().size());
  EXPECT_TRUE(any_fused) << "VGG16 pad+conv layers should fuse on 256-opt";
  EXPECT_FALSE(fused.ddr_image().empty());
  EXPECT_NE(fused.stamp(), 0u);

  const driver::NetworkProgram unfused = driver::NetworkProgram::compile(
      fx.net, fx.model, cfg, {.fuse_pad_conv = false});
  for (const driver::NetworkProgram::Step& step : unfused.steps())
    EXPECT_NE(step.exec, driver::NetworkProgram::Step::Exec::kFusedPadConv);
  EXPECT_NE(unfused.stamp(), fused.stamp());
}

// Compile once, execute N requests on one runtime: every request is
// bit-identical to a fresh-compile-per-request run on a fresh runtime (the
// seed's only path).
TEST(Program, CompileOnceExecuteManyMatchesFreshCompile) {
  Vgg16Fixture fx(302);
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  const driver::RuntimeOptions options{.mode = driver::ExecMode::kCycle};

  constexpr int kRequests = 3;
  std::vector<nn::FeatureMapI8> inputs;
  for (int i = 0; i < kRequests; ++i)
    inputs.push_back(random_fm(fx.net.input_shape(), fx.rng));

  std::vector<driver::NetworkRun> baseline;
  for (const nn::FeatureMapI8& input : inputs) {
    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, options);
    baseline.push_back(runtime.run_network(fx.net, fx.model, input));
  }

  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(fx.net, fx.model, cfg);
  core::Accelerator acc(cfg);
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, options);
  for (int i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    const driver::NetworkRun run = runtime.run_network(program, inputs[i]);
    expect_same_network_run(baseline[static_cast<std::size_t>(i)], run);
  }
}

// Alternating two programs on one runtime re-stages the weight image each
// switch and still matches fresh-runtime baselines for both networks.
TEST(Program, RestagesWhenProgramsAlternate) {
  Vgg16Fixture fx(303);
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  const driver::RuntimeOptions options{.mode = driver::ExecMode::kCycle};
  const nn::FeatureMapI8 input = random_fm(fx.net.input_shape(), fx.rng);

  const driver::NetworkProgram fused =
      driver::NetworkProgram::compile(fx.net, fx.model, cfg);
  const driver::NetworkProgram unfused = driver::NetworkProgram::compile(
      fx.net, fx.model, cfg, {.fuse_pad_conv = false});

  driver::NetworkRun base_fused, base_unfused;
  {
    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, options);
    base_fused = runtime.run_network(fused, input);
  }
  {
    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, options);
    base_unfused = runtime.run_network(unfused, input);
  }

  core::Accelerator acc(cfg);
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, options);
  expect_same_network_run(base_fused, runtime.run_network(fused, input));
  expect_same_network_run(base_unfused, runtime.run_network(unfused, input));
  expect_same_network_run(base_fused, runtime.run_network(fused, input));
}

// The packed-filters wrapper and a precompiled ConvProgram produce identical
// results — including on a striped plan with weight chunks.
TEST(Program, ConvOverloadsMatch) {
  Rng rng(304);
  const pack::TiledFm input = pack::to_tiled(random_fm({16, 28, 28}, rng));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(16, -4);
  const nn::Requant rq{.shift = 6, .relu = true};
  const core::ArchConfig cfg = striped_config();

  driver::LayerRun legacy_run;
  pack::TiledFm legacy_out;
  {
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    legacy_out = runtime.run_conv(input, packed, bias, rq, legacy_run);
  }

  const driver::ConvProgram conv =
      driver::compile_conv(cfg, input.shape(), packed, bias, rq);
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  for (int rep = 0; rep < 2; ++rep) {
    SCOPED_TRACE("rep " + std::to_string(rep));
    driver::LayerRun run;
    EXPECT_EQ(legacy_out, runtime.run_conv(input, conv, run));
    expect_same_run(legacy_run, run);
  }
}

// Batched convolution through a precompiled program matches the wrapper.
TEST(Program, ConvBatchOverloadsMatch) {
  Rng rng(305);
  std::vector<pack::TiledFm> images;
  for (int i = 0; i < 4; ++i)
    images.push_back(pack::to_tiled(random_fm({16, 28, 28}, rng)));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(16, 3);
  const nn::Requant rq{.shift = 6, .relu = true};
  const core::ArchConfig cfg = striped_config();

  driver::LayerRun legacy_run;
  std::vector<pack::TiledFm> legacy_out;
  {
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    legacy_out = runtime.run_conv_batch(images, packed, bias, rq, legacy_run);
  }

  const driver::ConvProgram conv =
      driver::compile_conv(cfg, images.front().shape(), packed, bias, rq);
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun run;
  EXPECT_EQ(legacy_out, runtime.run_conv_batch(images, conv, run));
  expect_same_run(legacy_run, run);
}

// FC lowering through compile_fc_conv matches the raw-weights wrapper.
TEST(Program, FcAsConvOverloadsMatch) {
  Rng rng(306);
  constexpr int kIn = 64, kOut = 10;
  std::vector<std::int8_t> input(kIn), weights(kIn * kOut);
  for (auto& v : input) v = static_cast<std::int8_t>(rng.next_int(-40, 40));
  for (auto& v : weights) v = static_cast<std::int8_t>(rng.next_int(-15, 15));
  const std::vector<std::int32_t> bias(kOut, 2);
  const nn::Requant rq{.shift = 7, .relu = false};
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();

  driver::LayerRun legacy_run;
  std::vector<std::int8_t> legacy_logits;
  {
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    legacy_logits =
        runtime.run_fc_as_conv(input, weights, bias, kOut, rq, legacy_run);
  }

  const driver::ConvProgram fc_conv =
      driver::compile_fc_conv(cfg, kIn, kOut, weights, bias, rq);
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun run;
  EXPECT_EQ(legacy_logits, runtime.run_fc_as_conv(input, fc_conv, run));
  expect_same_run(legacy_run, run);
}

// The compile-time fusion decision matches what the run-time fit check
// decides for the same shapes and config.
TEST(Program, FusionDecisionMatchesRuntimeCheck) {
  Rng rng(307);
  const core::ArchConfig big = core::ArchConfig::k256_opt();
  core::ArchConfig small = big;
  small.bank_words = 128;

  const pack::TiledFm input = pack::to_tiled(random_fm({16, 14, 14}, rng));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const nn::Padding pad{1, 1, 1, 1};

  for (const core::ArchConfig& cfg : {big, small}) {
    const driver::WeightImage wimg(packed, cfg.lanes, cfg.group);
    const bool planned =
        driver::plan_fused_pad_conv(cfg, input.shape(), pad, 3, 16, wimg)
            .has_value();

    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    driver::LayerRun pad_run, conv_run;
    pack::TiledFm output;
    const bool ran = runtime.run_fused_pad_conv(
        input, pad, packed, std::vector<std::int32_t>(16, 0),
        nn::Requant{.shift = 6, .relu = true}, output, pad_run, conv_run);
    EXPECT_EQ(planned, ran) << "bank_words=" << cfg.bank_words;
  }
}

// Pool workers share one const NetworkProgram.  Exercised under TSan by the
// sanitize-thread tier-1 configuration; results stay bit-identical to fresh
// serial runtimes for every worker count.
class ProgramPoolWorkers : public ::testing::TestWithParam<int> {};

TEST_P(ProgramPoolWorkers, ServeSharedProgramMatchesSerial) {
  Vgg16Fixture fx(308);
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  const driver::RuntimeOptions options{.mode = driver::ExecMode::kCycle};

  constexpr int kRequests = 6;
  std::vector<nn::FeatureMapI8> inputs;
  for (int i = 0; i < kRequests; ++i)
    inputs.push_back(random_fm(fx.net.input_shape(), fx.rng));

  std::vector<driver::NetworkRun> baseline;
  for (const nn::FeatureMapI8& input : inputs) {
    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, options);
    baseline.push_back(runtime.run_network(fx.net, fx.model, input));
  }

  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(fx.net, fx.model, cfg);
  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, options);
  const std::vector<driver::NetworkRun> served = pooled.serve(program, inputs);

  ASSERT_EQ(served.size(), baseline.size());
  for (int i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    expect_same_network_run(baseline[static_cast<std::size_t>(i)],
                            served[static_cast<std::size_t>(i)]);
  }
}

TEST_P(ProgramPoolWorkers, PooledStripedLayersShareProgram) {
  Rng rng(309);
  const pack::TiledFm input = pack::to_tiled(random_fm({16, 28, 28}, rng));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(16, -4);
  const nn::Requant rq{.shift = 6, .relu = true};
  const core::ArchConfig cfg = striped_config();

  const driver::ConvProgram conv =
      driver::compile_conv(cfg, input.shape(), packed, bias, rq);

  driver::LayerRun serial_run;
  pack::TiledFm serial_out;
  {
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    serial_out = runtime.run_conv(input, conv, serial_run);
  }

  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun pooled_run;
  const pack::TiledFm pooled_out = pooled.run_conv(input, conv, pooled_run);

  EXPECT_GT(serial_run.stripes, 1);
  EXPECT_EQ(serial_out, pooled_out);
  expect_same_run(serial_run, pooled_run);
}

INSTANTIATE_TEST_SUITE_P(Workers, ProgramPoolWorkers,
                         ::testing::Values(1, 2, 8), [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tsca
