// End-to-end accelerator correctness: the streaming-kernel pipeline (both
// execution modes) must produce bit-exactly the int8 reference layers.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "nn/layers.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-25, 25));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i) {
    if (rng.next_double() < density) {
      int w = 0;
      while (w == 0) w = rng.next_int(-12, 12);
      bank.data()[i] = static_cast<std::int8_t>(w);
    }
  }
  return bank;
}

core::ArchConfig small_config(int lanes) {
  core::ArchConfig cfg = lanes == 1 ? core::ArchConfig::k16_unopt()
                                    : core::ArchConfig::k256_opt();
  cfg.bank_words = 4096;
  cfg.weight_scratch_words = 32;  // force some spill traffic
  return cfg;
}

struct ConvCase {
  nn::FmShape in;
  int oc;
  int kernel;
  double density;
};

class ConvMatrix
    : public ::testing::TestWithParam<std::tuple<ConvCase, int, driver::ExecMode>> {};

TEST_P(ConvMatrix, MatchesInt8Reference) {
  const auto& [case_, lanes, mode] = GetParam();
  Rng rng(0xC0FFEEu ^ static_cast<std::uint64_t>(case_.in.c * 1315423911) ^
          static_cast<std::uint64_t>(case_.oc * 2654435761u) ^
          static_cast<std::uint64_t>(case_.kernel));
  const nn::FeatureMapI8 input = random_fm(case_.in, rng);
  const nn::FilterBankI8 filters = random_filters(
      {case_.oc, case_.in.c, case_.kernel, case_.kernel}, case_.density, rng);
  std::vector<std::int32_t> bias(static_cast<std::size_t>(case_.oc));
  for (auto& b : bias) b = rng.next_int(-300, 300);
  const nn::Requant rq{.shift = 6, .relu = true};

  const nn::FeatureMapI8 expected = nn::conv2d_i8(input, filters, bias, 1, rq);

  core::Accelerator acc(small_config(lanes));
  sim::Dram dram(8u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = mode});
  driver::LayerRun run;
  const pack::TiledFm out = runtime.run_conv(
      pack::to_tiled(input), pack::pack_filters(filters), bias, rq, run);
  const nn::FeatureMapI8 actual = pack::from_tiled(out);

  ASSERT_EQ(actual.shape(), expected.shape());
  EXPECT_EQ(actual, expected) << "conv mismatch (lanes=" << lanes << ")";
  if (mode == driver::ExecMode::kCycle) {
    EXPECT_GT(run.cycles, 0u);
  }
  if (case_.density > 0.0) {
    EXPECT_GT(run.counters.macs_performed, 0);
  } else {
    EXPECT_EQ(run.counters.macs_performed, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvMatrix,
    ::testing::Combine(
        ::testing::Values(
            ConvCase{{3, 10, 10}, 4, 3, 1.0},    // dense, ic < lanes
            ConvCase{{4, 8, 8}, 8, 3, 0.5},      // pruned
            ConvCase{{8, 12, 12}, 6, 3, 0.3},    // partial last group
            ConvCase{{5, 9, 9}, 4, 1, 1.0},      // 1x1 kernel, odd extent
            ConvCase{{4, 11, 11}, 4, 5, 0.4},    // 5x5: multiple weight tiles
            ConvCase{{2, 6, 6}, 3, 3, 0.0}),     // all-zero weights
        ::testing::Values(1, 4),
        ::testing::Values(driver::ExecMode::kThread, driver::ExecMode::kCycle,
                          driver::ExecMode::kFast)),
    [](const auto& info) {
      const ConvCase& c = std::get<0>(info.param);
      const int lanes = std::get<1>(info.param);
      const driver::ExecMode mode = std::get<2>(info.param);
      return "c" + std::to_string(c.in.c) + "x" + std::to_string(c.in.h) +
             "_oc" + std::to_string(c.oc) + "_k" + std::to_string(c.kernel) +
             "_d" + std::to_string(static_cast<int>(c.density * 100)) +
             "_l" + std::to_string(lanes) +
             "_" + driver::exec_mode_name(mode);
    });

struct PoolCase {
  nn::FmShape in;
  int win;
  int stride;
};

class PoolMatrix
    : public ::testing::TestWithParam<std::tuple<PoolCase, int, driver::ExecMode>> {};

TEST_P(PoolMatrix, MatchesInt8Reference) {
  const auto& [case_, lanes, mode] = GetParam();
  Rng rng(0xBEEF ^ static_cast<std::uint64_t>(case_.in.h * 31 + case_.win * 7 +
                                              case_.stride));
  const nn::FeatureMapI8 input = random_fm(case_.in, rng);
  const nn::FeatureMapI8 expected =
      nn::maxpool_i8(input, {case_.win, case_.stride});

  core::Accelerator acc(small_config(lanes));
  sim::Dram dram(8u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = mode});
  driver::LayerRun run;
  const pack::TiledFm out = runtime.run_pad_pool(
      pack::to_tiled(input), core::Opcode::kPool, expected.shape(), case_.win,
      case_.stride, 0, 0, run);
  const nn::FeatureMapI8 actual = pack::from_tiled(out);

  ASSERT_EQ(actual.shape(), expected.shape());
  EXPECT_EQ(actual, expected) << "pool mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PoolMatrix,
    ::testing::Combine(
        ::testing::Values(PoolCase{{4, 8, 8}, 2, 2},    // the VGG pool
                          PoolCase{{3, 12, 12}, 3, 3},  // 3x3/3
                          PoolCase{{2, 10, 10}, 3, 2},  // overlapping windows
                          PoolCase{{5, 9, 9}, 5, 2},    // window > tile
                          PoolCase{{1, 7, 7}, 2, 1}),   // stride 1
        ::testing::Values(1, 4),
        ::testing::Values(driver::ExecMode::kThread, driver::ExecMode::kCycle,
                          driver::ExecMode::kFast)),
    [](const auto& info) {
      const PoolCase& c = std::get<0>(info.param);
      const int lanes = std::get<1>(info.param);
      const driver::ExecMode mode = std::get<2>(info.param);
      return "h" + std::to_string(c.in.h) + "_w" + std::to_string(c.win) +
             "_s" + std::to_string(c.stride) + "_l" + std::to_string(lanes) +
             "_" + driver::exec_mode_name(mode);
    });

class PadMatrix
    : public ::testing::TestWithParam<std::tuple<nn::Padding, int, driver::ExecMode>> {
};

TEST_P(PadMatrix, MatchesInt8Reference) {
  const auto& [pad, lanes, mode] = GetParam();
  Rng rng(0x9A7 + static_cast<std::uint64_t>(pad.top * 37 + pad.left));
  const nn::FeatureMapI8 input = random_fm({5, 9, 10}, rng);
  const nn::FeatureMapI8 expected = nn::pad_i8(input, pad);

  core::Accelerator acc(small_config(lanes));
  sim::Dram dram(8u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = mode});
  driver::LayerRun run;
  const pack::TiledFm out = runtime.run_pad_pool(
      pack::to_tiled(input), core::Opcode::kPad, expected.shape(), 1, 1,
      -pad.top, -pad.left, run);
  const nn::FeatureMapI8 actual = pack::from_tiled(out);

  ASSERT_EQ(actual.shape(), expected.shape());
  EXPECT_EQ(actual, expected) << "pad mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    Pads, PadMatrix,
    ::testing::Combine(::testing::Values(nn::Padding::uniform(1),
                                         nn::Padding::uniform(2),
                                         nn::Padding{2, 0, 1, 3}),
                       ::testing::Values(1, 4),
                       ::testing::Values(driver::ExecMode::kThread,
                                         driver::ExecMode::kCycle,
                                         driver::ExecMode::kFast)),
    [](const auto& info) {
      const nn::Padding& pad = std::get<0>(info.param);
      const int lanes = std::get<1>(info.param);
      const driver::ExecMode mode = std::get<2>(info.param);
      return "t" + std::to_string(pad.top) + "l" + std::to_string(pad.left) +
             "b" + std::to_string(pad.bottom) + "r" +
             std::to_string(pad.right) + "_l" + std::to_string(lanes) +
             "_" + driver::exec_mode_name(mode);
    });

// Striping: a config with tiny banks forces multi-stripe, multi-chunk
// execution; the result must still be exact.
TEST(ConvStriping, TinyBanksForceStripesAndChunksExactResult) {
  Rng rng(77);
  const nn::FeatureMapI8 input = random_fm({8, 18, 18}, rng);
  const nn::FilterBankI8 filters = random_filters({8, 8, 3, 3}, 0.6, rng);
  const std::vector<std::int32_t> bias(8, 10);
  const nn::Requant rq{.shift = 5, .relu = false};
  const nn::FeatureMapI8 expected = nn::conv2d_i8(input, filters, bias, 1, rq);

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 80;  // small enough to force several stripes
  cfg.weight_scratch_words = 16;
  core::Accelerator acc(cfg);
  sim::Dram dram(8u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun run;
  const pack::TiledFm out = runtime.run_conv(
      pack::to_tiled(input), pack::pack_filters(filters), bias, rq, run);
  EXPECT_GT(run.stripes, 1);
  EXPECT_EQ(pack::from_tiled(out), expected);
}

// Zero-skipping must never change results, only cycles: a sparse layer runs
// in fewer cycles than its dense twin.
TEST(ZeroSkip, SparseLayerRunsFasterThanDense) {
  Rng rng(123);
  const nn::FeatureMapI8 input = random_fm({8, 16, 16}, rng);
  const nn::FilterBankI8 dense = random_filters({8, 8, 3, 3}, 1.0, rng);
  nn::FilterBankI8 sparse = dense;
  // Zero 80 % of weights deterministically.
  for (std::size_t i = 0; i < sparse.size(); ++i)
    if (i % 5 != 0) sparse.data()[i] = 0;
  const std::vector<std::int32_t> bias(8, 0);
  const nn::Requant rq{.shift = 6, .relu = true};

  auto run_cycles = [&](const nn::FilterBankI8& filters) {
    core::Accelerator acc(small_config(4));
    sim::Dram dram(8u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    driver::LayerRun run;
    const pack::TiledFm out = runtime.run_conv(
        pack::to_tiled(input), pack::pack_filters(filters), bias, rq, run);
    EXPECT_EQ(pack::from_tiled(out), nn::conv2d_i8(input, filters, bias, 1, rq));
    return run.cycles;
  };

  const std::uint64_t dense_cycles = run_cycles(dense);
  const std::uint64_t sparse_cycles = run_cycles(sparse);
  EXPECT_LT(sparse_cycles, dense_cycles);
  // The 4-cycle IFM floor bounds the possible gain at 75 % (paper §III-B.1).
  EXPECT_GT(sparse_cycles * 4, dense_cycles);
}

}  // namespace
}  // namespace tsca
