// Driver: stripe/chunk planning, weight images, stripe (de)serialization.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "driver/runtime.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

namespace tsca::driver {
namespace {

nn::FilterBankI8 random_bank(nn::FilterShape shape, double density, Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(1, 40));
  return bank;
}

TEST(WeightImage, GroupsLanesAndActiveFilters) {
  Rng rng(1);
  const pack::PackedFilters packed =
      pack::pack_filters(random_bank({10, 8, 3, 3}, 0.5, rng));
  const WeightImage image(packed, /*lanes=*/4, /*group=*/4);
  EXPECT_EQ(image.groups(), 3);  // ceil(10/4)
  EXPECT_EQ(image.active_filters(0), 4);
  EXPECT_EQ(image.active_filters(2), 2);
  for (int g = 0; g < image.groups(); ++g) {
    int max_words = 0;
    for (int lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(static_cast<int>((image.bytes(g, lane).size() + 15) / 16),
                image.words(g, lane));
      max_words = std::max(max_words, image.words(g, lane));
    }
    EXPECT_EQ(image.aligned_words(g), max_words);
  }
}

TEST(PlanConv, SingleStripeWhenEverythingFits) {
  Rng rng(2);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  const pack::PackedFilters packed =
      pack::pack_filters(random_bank({8, 8, 3, 3}, 0.5, rng));
  const WeightImage image(packed, cfg.lanes, cfg.group);
  const ConvPlan plan = plan_conv(cfg, {8, 18, 18}, 8, 3, image);
  ASSERT_EQ(plan.stripes.size(), 1u);
  EXPECT_EQ(plan.stripes[0].otile_rows, pack::tiles_for(16));
  EXPECT_EQ(plan.stripes[0].in_tile_rows, pack::tiles_for(18));
  ASSERT_EQ(plan.stripes[0].chunks.size(), 1u);
  EXPECT_EQ(plan.stripes[0].chunks[0].count, 2);  // both groups in one chunk
  EXPECT_EQ(plan.out_shape, (nn::FmShape{8, 16, 16}));
}

TEST(PlanConv, StripesCoverOutputWithHalo) {
  Rng rng(3);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 160;  // force multiple stripes
  const pack::PackedFilters packed =
      pack::pack_filters(random_bank({8, 8, 3, 3}, 0.4, rng));
  const WeightImage image(packed, cfg.lanes, cfg.group);
  const ConvPlan plan = plan_conv(cfg, {8, 26, 26}, 8, 3, image);
  ASSERT_GT(plan.stripes.size(), 1u);
  int covered = 0;
  const int out_rows = pack::tiles_for(24);
  const int in_rows = pack::tiles_for(26);
  for (const ConvStripe& stripe : plan.stripes) {
    EXPECT_EQ(stripe.otile_row0, covered);
    covered += stripe.otile_rows;
    // Halo: the stripe's input rows start at its first output row and
    // extend one weight-tile row further (3x3 kernel -> wtiles_y = 1).
    EXPECT_EQ(stripe.in_tile_row0, stripe.otile_row0);
    EXPECT_EQ(stripe.in_tile_rows,
              std::min(stripe.otile_rows + 1, in_rows - stripe.in_tile_row0));
    for (const ConvStripe::Chunk& chunk : stripe.chunks)
      EXPECT_GT(chunk.count, 0);
  }
  EXPECT_EQ(covered, out_rows);
  // Region layout leaves room for at least one weight group.
  EXPECT_LE(plan.weight_base, cfg.bank_words);
}

TEST(PlanConv, ChunksPartitionGroupsWithinBudget) {
  Rng rng(4);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 300;
  const pack::PackedFilters packed =
      pack::pack_filters(random_bank({32, 16, 3, 3}, 0.9, rng));
  const WeightImage image(packed, cfg.lanes, cfg.group);
  const ConvPlan plan = plan_conv(cfg, {16, 14, 14}, 32, 3, image);
  for (const ConvStripe& stripe : plan.stripes) {
    int next_group = 0;
    for (const ConvStripe::Chunk& chunk : stripe.chunks) {
      EXPECT_EQ(chunk.g0, next_group);
      next_group += chunk.count;
      int used = 0;
      for (int k = 0; k < chunk.count; ++k)
        used += image.aligned_words(chunk.g0 + k);
      EXPECT_LE(used, plan.weight_budget_words);
    }
    EXPECT_EQ(next_group, image.groups());
  }
}

TEST(PlanConv, BalancesStripesAcrossInstances) {
  Rng rng(5);
  core::ArchConfig cfg = core::ArchConfig::k512_opt();
  const pack::PackedFilters packed =
      pack::pack_filters(random_bank({8, 8, 3, 3}, 0.5, rng));
  const WeightImage image(packed, cfg.lanes, cfg.group);
  // 8 output tile rows on 2 instances: expect an even split.
  const ConvPlan plan = plan_conv(cfg, {8, 34, 34}, 8, 3, image);
  ASSERT_GE(plan.stripes.size(), 2u);
  EXPECT_EQ(plan.stripes.size() % 2, 0u);
  int rows0 = 0;
  int rows1 = 0;
  for (std::size_t i = 0; i < plan.stripes.size(); ++i)
    (i % 2 == 0 ? rows0 : rows1) += plan.stripes[i].otile_rows;
  EXPECT_LE(std::abs(rows0 - rows1), 1);
}

TEST(PlanConv, ThrowsWhenLayerCannotFit) {
  Rng rng(6);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 64;  // hopeless
  const pack::PackedFilters packed =
      pack::pack_filters(random_bank({64, 64, 3, 3}, 1.0, rng));
  const WeightImage image(packed, cfg.lanes, cfg.group);
  EXPECT_THROW(plan_conv(cfg, {64, 114, 114}, 64, 3, image), ConfigError);
}

TEST(PlanPool, StripeLocalOffsetsReconstructGlobalWindows) {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 64;
  const PoolPlan plan = plan_pool(cfg, {4, 32, 32}, {4, 16, 16},
                                  core::Opcode::kPool, 2, 2, 0, 0);
  ASSERT_GT(plan.stripes.size(), 1u);
  for (const PoolStripe& stripe : plan.stripes) {
    // Global source row of the stripe's first output row equals the local
    // offset plus the loaded window start.
    const int global_out_row = stripe.otile_row0 * pack::kTileDim;
    const int global_src = global_out_row * plan.stride + plan.offset_y;
    EXPECT_EQ(stripe.local_offset_y + stripe.in_tile_row0 * pack::kTileDim,
              global_src);
    const core::PadPoolInstr instr = make_pool_instr(plan, stripe);
    EXPECT_NO_THROW(core::validate_instruction(
        core::Instruction::make_pool(instr), cfg));
  }
}

TEST(ConvMacsHelper, MatchesFormula) {
  EXPECT_EQ(conv_macs({3, 226, 226}, 64, 3),
            3LL * 64 * 9 * 224 * 224);
  EXPECT_THROW(conv_macs({3, 2, 2}, 4, 3), Error);
}

TEST(BankStripe, RoundTripsThroughBytes) {
  Rng rng(7);
  nn::FeatureMapI8 fm({6, 12, 10});
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-100, 100));
  const pack::TiledFm tiled = pack::to_tiled(fm);
  pack::TiledFm restored(fm.shape());
  for (int lane = 0; lane < 4; ++lane) {
    const std::vector<std::uint8_t> bytes =
        bank_stripe_bytes(tiled, lane, 4, 1, 2);
    unpack_bank_stripe(restored, bytes, lane, 4, 1, 2);
  }
  // Rows 1..2 restored for every channel; others untouched (zero).
  for (int c = 0; c < 6; ++c)
    for (int r = 1; r < 3; ++r)
      for (int x = 0; x < tiled.tiles_x(); ++x)
        EXPECT_EQ(restored.tile(c, r, x), tiled.tile(c, r, x));
  EXPECT_EQ(restored.tile(0, 0, 0), pack::Tile{});
}

TEST(BankStripe, RejectsOutOfRangeRows) {
  const pack::TiledFm tiled(nn::FmShape{2, 8, 8});
  EXPECT_THROW(bank_stripe_bytes(tiled, 0, 4, 1, 5), Error);
  pack::TiledFm out(nn::FmShape{2, 8, 8});
  EXPECT_THROW(unpack_bank_stripe(out, {}, 0, 4, 0, 3), Error);
}

}  // namespace
}  // namespace tsca::driver
