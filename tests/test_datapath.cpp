// Datapath arithmetic: the pure functions both engines share.
#include <gtest/gtest.h>

#include "core/datapath.hpp"
#include "util/rng.hpp"

namespace tsca::core {
namespace {

Window random_window(Rng& rng) {
  Window w;
  for (auto& tile : w.tiles)
    for (auto& v : tile.v) v = static_cast<std::int8_t>(rng.next_int(-90, 90));
  return w;
}

TEST(WindowTest, AtIndexesQuadrantsRowMajor) {
  Window w;
  // Tag each quadrant with a distinct base so misrouting is obvious.
  for (int q = 0; q < 4; ++q)
    for (int i = 0; i < pack::kTileSize; ++i)
      w.tiles[static_cast<std::size_t>(q)].v[static_cast<std::size_t>(i)] =
          static_cast<std::int8_t>(q * 20 + i);
  EXPECT_EQ(w.at(0, 0), 0);
  EXPECT_EQ(w.at(0, 4), 20);   // top-right quadrant, value 0
  EXPECT_EQ(w.at(4, 0), 40);   // bottom-left
  EXPECT_EQ(w.at(4, 4), 60);   // bottom-right
  EXPECT_EQ(w.at(3, 3), 15);   // last value of top-left
  EXPECT_EQ(w.at(7, 7), 75);   // last value of bottom-right
  EXPECT_EQ(w.at(2, 5), 20 + 2 * 4 + 1);
}

class SteerMultiplyAllOffsets : public ::testing::TestWithParam<int> {};

TEST_P(SteerMultiplyAllOffsets, MatchesNaiveRegionProduct) {
  const int offset = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(offset));
  const Window w = random_window(rng);
  const std::int8_t weight = static_cast<std::int8_t>(rng.next_int(-50, 50));
  const auto products = steer_multiply(w, weight, offset);
  const int oy = offset / 4;
  const int ox = offset % 4;
  for (int i = 0; i < pack::kTileSize; ++i) {
    const int expected =
        static_cast<int>(w.at(oy + i / 4, ox + i % 4)) * weight;
    EXPECT_EQ(products[static_cast<std::size_t>(i)], expected)
        << "offset " << offset << " value " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, SteerMultiplyAllOffsets,
                         ::testing::Range(0, 16));

TEST(SteerMultiply, ZeroWeightGatesToZero) {
  Rng rng(3);
  const Window w = random_window(rng);
  const auto products = steer_multiply(w, 0, 5);
  for (const std::int32_t p : products) EXPECT_EQ(p, 0);
}

TEST(SteerMultiply, RejectsOutOfRangeOffset) {
  Window w;
  EXPECT_THROW(steer_multiply(w, 1, 16), Error);
  EXPECT_THROW(steer_multiply(w, 1, -1), Error);
}

TEST(Accumulate, AddsElementwise) {
  pack::TileAcc acc;
  acc.v.fill(100);
  std::array<std::int32_t, pack::kTileSize> products{};
  for (int i = 0; i < pack::kTileSize; ++i)
    products[static_cast<std::size_t>(i)] = i - 8;
  accumulate(acc, products);
  for (int i = 0; i < pack::kTileSize; ++i)
    EXPECT_EQ(acc.v[static_cast<std::size_t>(i)], 100 + i - 8);
}

TEST(RequantizeTile, ShiftReluSaturate) {
  pack::TileAcc acc;
  acc.v = {0,    63,   64,   -63,  -64,  8191,  -8191, 100000,
           -100000, 1,    -1,   127,  -127, 12800, -12800, 32};
  const pack::Tile out = requantize_tile(acc, {.shift = 6, .relu = false});
  EXPECT_EQ(out.v[0], 0);
  EXPECT_EQ(out.v[1], 1);    // 63 rounds up at half
  EXPECT_EQ(out.v[2], 1);
  EXPECT_EQ(out.v[3], -1);   // symmetric rounding
  EXPECT_EQ(out.v[4], -1);
  EXPECT_EQ(out.v[5], 127);  // 8191>>6 = 127.98 -> sat
  EXPECT_EQ(out.v[6], -127);
  EXPECT_EQ(out.v[7], 127);  // saturate high
  EXPECT_EQ(out.v[8], -127);
  EXPECT_EQ(out.v[13], 127);  // 12800>>6 = 200 -> sat
  const pack::Tile relu = requantize_tile(acc, {.shift = 6, .relu = true});
  EXPECT_EQ(relu.v[3], 0);
  EXPECT_EQ(relu.v[6], 0);
  EXPECT_EQ(relu.v[8], 0);
  EXPECT_EQ(relu.v[1], 1);
}

TEST(PoolPadOp, TakeRoutesMaxOfMask) {
  pack::Tile in;
  for (int i = 0; i < 16; ++i)
    in.v[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i * 3 - 20);
  PoolPadOp op;
  op.max_mask[0] = 0b0000000000110011;  // values 0,1,4,5 -> max = in[5]
  op.max_mask[1] = 0b1000000000000000;  // value 15 only
  op.out_sel[2] = kSelTake0;
  op.out_sel[7] = kSelTake0 + 1;
  pack::Tile out;
  out.v.fill(99);
  apply_pool_pad(op, in, out);
  EXPECT_EQ(out.v[2], in.v[5]);
  EXPECT_EQ(out.v[7], in.v[15]);
  EXPECT_EQ(out.v[0], 99);  // keep
}

TEST(PoolPadOp, CombineTakesRunningMax) {
  pack::Tile in;
  in.v.fill(10);
  PoolPadOp op;
  op.max_mask[2] = 1;  // value 0 = 10
  op.out_sel[4] = kSelCombine0 + 2;
  pack::Tile out;
  out.v.fill(0);
  out.v[4] = 50;
  apply_pool_pad(op, in, out);
  EXPECT_EQ(out.v[4], 50);  // old larger, kept
  out.v[4] = -5;
  apply_pool_pad(op, in, out);
  EXPECT_EQ(out.v[4], 10);  // new larger
}

TEST(PoolPadOp, DefaultOpKeepsEverything) {
  pack::Tile in;
  in.v.fill(77);
  pack::Tile out;
  for (int i = 0; i < 16; ++i)
    out.v[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i);
  const pack::Tile before = out;
  apply_pool_pad(PoolPadOp{}, in, out);
  EXPECT_EQ(out, before);
}

}  // namespace
}  // namespace tsca::core
