// Instruction encoding round-trips and the memory-mapped host interface.
#include <gtest/gtest.h>

#include "core/encoding.hpp"
#include "driver/host_interface.hpp"
#include "core/kernels.hpp"
#include "driver/runtime.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

core::ConvInstr random_conv(Rng& rng) {
  core::ConvInstr c;
  c.ifm_base = rng.next_int(0, 1 << 20);
  c.ifm_tiles_x = rng.next_int(1, 60000);
  c.ifm_tiles_y = rng.next_int(1, 60000);
  c.ifm_channels = rng.next_int(1, 4096);
  c.weight_base = rng.next_int(0, 1 << 20);
  c.ofm_base = rng.next_int(0, 1 << 20);
  c.ofm_tiles_x = rng.next_int(1, 60000);
  c.ofm_tiles_y = rng.next_int(1, 60000);
  c.oc0 = 4 * rng.next_int(0, 1000);
  c.active_filters = rng.next_int(1, 4);
  c.kernel_h = rng.next_int(1, 11);
  c.kernel_w = rng.next_int(1, 11);
  for (auto& b : c.bias) b = rng.next_int(-1000000, 1000000);
  c.shift = rng.next_int(0, 31);
  c.relu = rng.next_bool();
  return c;
}

core::PadPoolInstr random_pp(Rng& rng) {
  core::PadPoolInstr p;
  p.ifm_base = rng.next_int(0, 1 << 20);
  p.ifm_tiles_x = rng.next_int(1, 60000);
  p.ifm_tiles_y = rng.next_int(1, 60000);
  p.ifm_h = rng.next_int(1, 60000);
  p.ifm_w = rng.next_int(1, 60000);
  p.channels = rng.next_int(1, 4096);
  p.ofm_base = rng.next_int(0, 1 << 20);
  p.ofm_tiles_x = rng.next_int(1, 60000);
  p.ofm_tiles_y = rng.next_int(1, 60000);
  p.ofm_h = rng.next_int(1, 60000);
  p.ofm_w = rng.next_int(1, 60000);
  p.win = rng.next_int(1, 16);
  p.stride = rng.next_int(1, 16);
  p.offset_y = rng.next_int(-1000, 1000);
  p.offset_x = rng.next_int(-1000, 1000);
  return p;
}

bool conv_equal(const core::ConvInstr& a, const core::ConvInstr& b) {
  return a.ifm_base == b.ifm_base && a.ifm_tiles_x == b.ifm_tiles_x &&
         a.ifm_tiles_y == b.ifm_tiles_y && a.ifm_channels == b.ifm_channels &&
         a.weight_base == b.weight_base && a.ofm_base == b.ofm_base &&
         a.ofm_tiles_x == b.ofm_tiles_x && a.ofm_tiles_y == b.ofm_tiles_y &&
         a.oc0 == b.oc0 && a.active_filters == b.active_filters &&
         a.kernel_h == b.kernel_h && a.kernel_w == b.kernel_w &&
         a.bias == b.bias && a.shift == b.shift && a.relu == b.relu;
}

bool pp_equal(const core::PadPoolInstr& a, const core::PadPoolInstr& b) {
  return a.ifm_base == b.ifm_base && a.ifm_tiles_x == b.ifm_tiles_x &&
         a.ifm_tiles_y == b.ifm_tiles_y && a.ifm_h == b.ifm_h &&
         a.ifm_w == b.ifm_w && a.channels == b.channels &&
         a.ofm_base == b.ofm_base && a.ofm_tiles_x == b.ofm_tiles_x &&
         a.ofm_tiles_y == b.ofm_tiles_y && a.ofm_h == b.ofm_h &&
         a.ofm_w == b.ofm_w && a.win == b.win && a.stride == b.stride &&
         a.offset_y == b.offset_y && a.offset_x == b.offset_x;
}

TEST(Encoding, ConvRoundTripFuzz) {
  Rng rng(0xE11C0DE);
  for (int i = 0; i < 200; ++i) {
    const core::ConvInstr c = random_conv(rng);
    const core::Instruction decoded = core::decode_instruction(
        core::encode_instruction(core::Instruction::make_conv(c)));
    ASSERT_EQ(decoded.op, core::Opcode::kConv);
    EXPECT_TRUE(conv_equal(decoded.conv, c)) << "iteration " << i;
  }
}

TEST(Encoding, PadPoolRoundTripFuzz) {
  Rng rng(0xE11C0DF);
  for (int i = 0; i < 200; ++i) {
    const core::PadPoolInstr p = random_pp(rng);
    const bool pool = rng.next_bool();
    const core::Instruction instr = pool ? core::Instruction::make_pool(p)
                                         : core::Instruction::make_pad(p);
    const core::Instruction decoded =
        core::decode_instruction(core::encode_instruction(instr));
    ASSERT_EQ(decoded.op, instr.op);
    EXPECT_TRUE(pp_equal(decoded.pp, p)) << "iteration " << i;
  }
}

TEST(Encoding, HaltRoundTrip) {
  const core::Instruction decoded = core::decode_instruction(
      core::encode_instruction(core::Instruction::halt()));
  EXPECT_EQ(decoded.op, core::Opcode::kHalt);
}

TEST(Encoding, RejectsCorruptWords) {
  core::EncodedInstruction words =
      core::encode_instruction(core::Instruction::halt());
  words[0] = 0x12345678;  // bad magic
  EXPECT_THROW(core::decode_instruction(words), InstructionError);

  words = core::encode_instruction(core::Instruction::halt());
  words[0] = core::kInstrMagic | 0x7;  // unknown opcode
  EXPECT_THROW(core::decode_instruction(words), InstructionError);

  Rng rng(1);
  words = core::encode_instruction(
      core::Instruction::make_conv(random_conv(rng)));
  words[9] |= 0x8000;  // reserved bit
  EXPECT_THROW(core::decode_instruction(words), InstructionError);
}

TEST(Encoding, RejectsUnencodableFields) {
  core::ConvInstr c;
  c.ifm_tiles_x = 1 << 17;  // exceeds the 16-bit field
  c.ifm_tiles_y = 1;
  EXPECT_THROW(core::encode_instruction(core::Instruction::make_conv(c)),
               Error);
}

// --- host interface -----------------------------------------------------

TEST(HostInterface, MmioPathMatchesDirectExecution) {
  Rng rng(0x105);
  nn::FeatureMapI8 input({4, 8, 8});
  for (std::size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<std::int8_t>(rng.next_int(-30, 30));
  nn::FilterBankI8 filters({4, 4, 3, 3});
  for (std::size_t i = 0; i < filters.size(); ++i)
    if (rng.next_double() < 0.6)
      filters.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));
  const std::vector<std::int32_t> bias(4, 5);
  const nn::Requant rq{.shift = 5, .relu = true};

  // Reference result via the runtime.
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 2048;
  const nn::FeatureMapI8 expected =
      nn::conv2d_i8(input, filters, bias, 1, rq);

  // MMIO path: stage data manually, submit CONV through the register file.
  core::Accelerator acc(cfg);
  const pack::PackedFilters packed = pack::pack_filters(filters);
  const driver::WeightImage wimg(packed, cfg.lanes, cfg.group);
  const driver::ConvPlan plan =
      driver::plan_conv(cfg, input.shape(), 4, 3, wimg);
  const pack::TiledFm tiled = pack::to_tiled(input);
  for (int lane = 0; lane < cfg.lanes; ++lane) {
    const auto bytes = driver::bank_stripe_bytes(
        tiled, lane, cfg.lanes, 0, plan.stripes[0].in_tile_rows);
    acc.bank(lane).load(plan.ifm_base, bytes.data(), bytes.size());
    const auto& wbytes = wimg.bytes(0, lane);
    if (!wbytes.empty())
      acc.bank(lane).load(plan.weight_base, wbytes.data(), wbytes.size());
  }

  driver::HostInterface host(acc, hls::Mode::kCycle);
  host.submit(core::Instruction::make_conv(driver::make_conv_instr(
      plan, plan.stripes[0], 0, plan.weight_base, wimg, bias, rq,
      cfg.group)));
  EXPECT_EQ(host.read(driver::HostInterface::kStatus),
            driver::HostInterface::kStatusQueued);
  EXPECT_EQ(host.read(driver::HostInterface::kQueued), 1u);

  const core::BatchStats stats = host.go();
  EXPECT_EQ(host.read(driver::HostInterface::kStatus),
            driver::HostInterface::kStatusDone);
  EXPECT_EQ(host.read(driver::HostInterface::kQueued), 0u);
  const std::uint64_t cycles =
      host.read(driver::HostInterface::kCyclesLo) |
      (static_cast<std::uint64_t>(
           host.read(driver::HostInterface::kCyclesHi))
       << 32);
  EXPECT_EQ(cycles, stats.cycles);
  EXPECT_GT(cycles, 0u);

  // Read the OFM region back and compare.
  pack::TiledFm out(plan.out_shape);
  for (int lane = 0; lane < cfg.lanes; ++lane) {
    const int words = core::lane_channel_count(4, lane, cfg.lanes) *
                      plan.stripes[0].otile_rows * plan.out_tiles_x;
    if (words == 0) continue;
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(words) * sim::kWordBytes);
    acc.bank(lane).store(plan.ofm_base, bytes.data(), bytes.size());
    driver::unpack_bank_stripe(out, bytes, lane, cfg.lanes, 0,
                               plan.stripes[0].otile_rows);
  }
  EXPECT_EQ(pack::from_tiled(out), expected);
}

TEST(HostInterface, MalformedDoorbellSetsErrorStatus) {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 256;
  core::Accelerator acc(cfg);
  driver::HostInterface host(acc, hls::Mode::kCycle);
  // Garbage window.
  host.regs().write(0, 0xdeadbeef);
  EXPECT_THROW(host.write(driver::HostInterface::kDoorbell, 1),
               InstructionError);
  EXPECT_EQ(host.read(driver::HostInterface::kStatus),
            driver::HostInterface::kStatusError);
}

}  // namespace
}  // namespace tsca
